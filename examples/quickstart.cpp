// Quickstart: run XHC collectives on real host threads.
//
// Creates a thread-backed machine with 8 ranks, builds the XHC component,
// and performs a broadcast and an allreduce, verifying the results —
// the minimal end-to-end use of the public API.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstring>

#include "coll/registry.h"
#include "mach/real_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

int main() {
  using namespace xhc;

  // A machine hosting 8 ranks on a small 2-socket/4-NUMA topology. On the
  // thread-backed RealMachine the topology shapes the hierarchy; timing is
  // wall clock.
  mach::RealMachine machine(topo::mini8(), /*n_ranks=*/8);

  // The XHC component with default tuning: numa+socket hierarchy, XPMEM
  // single-copy above 1 KB, CICO below, 16 KB pipeline chunks.
  auto xhc = coll::make_component("xhc", machine);

  // --- MPI_Bcast ----------------------------------------------------------
  constexpr std::size_t kBytes = 1 << 16;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < machine.n_ranks(); ++r) {
    bufs.emplace_back(machine, r, kBytes);
  }
  util::fill_pattern(bufs[0].get(), kBytes, /*seed=*/2024);

  machine.run([&](mach::Ctx& ctx) {
    xhc->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
               /*root=*/0);
  });

  std::vector<std::byte> expect(kBytes);
  util::fill_pattern(expect.data(), kBytes, 2024);
  for (int r = 0; r < machine.n_ranks(); ++r) {
    if (std::memcmp(bufs[static_cast<std::size_t>(r)].get(), expect.data(),
                    kBytes) != 0) {
      std::printf("bcast FAILED at rank %d\n", r);
      return 1;
    }
  }
  std::printf("bcast: 64 KiB to %d ranks — OK\n", machine.n_ranks());

  // --- MPI_Allreduce -------------------------------------------------------
  constexpr std::size_t kCount = 1024;
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < machine.n_ranks(); ++r) {
    sbufs.emplace_back(machine, r, kCount * sizeof(double));
    rbufs.emplace_back(machine, r, kCount * sizeof(double));
    auto* s = static_cast<double*>(sbufs.back().get());
    for (std::size_t i = 0; i < kCount; ++i) {
      s[i] = static_cast<double>(r + 1);
    }
  }

  machine.run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    xhc->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                   mach::DType::kF64, mach::ROp::kSum);
  });

  const double expect_sum = 8.0 * 9.0 / 2.0;  // sum of 1..8
  for (int r = 0; r < machine.n_ranks(); ++r) {
    const auto* got =
        static_cast<const double*>(rbufs[static_cast<std::size_t>(r)].get());
    for (std::size_t i = 0; i < kCount; ++i) {
      if (got[i] != expect_sum) {
        std::printf("allreduce FAILED at rank %d elem %zu\n", r, i);
        return 1;
      }
    }
  }
  std::printf("allreduce: 1024 doubles summed across %d ranks — OK\n",
              machine.n_ranks());
  if (const auto stats = xhc->reg_cache_stats()) {
    std::printf("registration cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(stats->hits),
                static_cast<unsigned long long>(stats->misses));
  }
  return 0;
}
