// Extending the framework: write your own collective component.
//
// Implements a deliberately naive "linear" component directly against the
// per-rank Ctx interface — root-centric, no hierarchy, no pipelining — and
// races it against XHC on a simulated Epyc-1P. This is the template for
// experimenting with new algorithms inside the framework.
//
//   $ ./examples/custom_component
#include <iostream>

#include "coll/registry.h"
#include "core/ctl.h"
#include "mach/machine.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/table.h"

namespace {

using namespace xhc;

/// Root-centric linear collectives: every rank copies straight from the
/// root (bcast) or the root reduces everyone serially (allreduce) — the
/// fan-in/fan-out pattern the paper's hierarchy is designed to avoid.
class LinearComponent final : public coll::Component {
 public:
  explicit LinearComponent(mach::Machine& machine)
      : machine_(&machine), arena_() {
    ctl_ = arena_.add_group(machine, /*home_rank=*/0, machine.n_ranks());
  }

  std::string_view name() const noexcept override { return "linear"; }

  void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
             int root) override {
    if (bytes == 0 || ctx.size() == 1) return;
    const int r = ctx.rank();
    const std::uint64_t s = ++seq_[static_cast<std::size_t>(r)].v;
    if (r == root) {
      ctl_.info[0]->buf = buf;
      ctx.flag_store(*ctl_.seq[0], s);
      for (int j = 0; j < ctx.size(); ++j) {
        if (j != root) ctx.flag_wait_ge(*ctl_.ack[j], s);
      }
    } else {
      ctx.flag_wait_ge(*ctl_.seq[0], s);
      ctx.copy(buf, ctl_.info[0]->buf, bytes);  // everyone hits the root
      ctx.flag_store(*ctl_.ack[r], s);
    }
  }

  void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                 std::size_t count, mach::DType dtype,
                 mach::ROp op) override {
    const std::size_t bytes = count * mach::dtype_size(dtype);
    if (count == 0) return;
    const int r = ctx.rank();
    if (ctx.size() == 1) {
      if (sbuf != rbuf) ctx.copy(rbuf, sbuf, bytes);
      return;
    }
    const std::uint64_t s = ++seq_[static_cast<std::size_t>(r)].v;
    // Publish contributions; rank 0 reduces them one by one, then
    // broadcasts the result — all strictly serial.
    ctl_.minfo[r]->contrib = sbuf;
    ctx.flag_store(*ctl_.member_seq[r], s);
    if (r == 0) {
      if (sbuf != rbuf) ctx.copy(rbuf, sbuf, bytes);
      for (int j = 1; j < ctx.size(); ++j) {
        ctx.flag_wait_ge(*ctl_.member_seq[j], s);
        ctx.reduce(rbuf, ctl_.minfo[j]->contrib, count, dtype, op);
      }
      ctl_.info[0]->buf = rbuf;
      ctx.flag_store(*ctl_.seq[0], s);
      for (int j = 1; j < ctx.size(); ++j) {
        ctx.flag_wait_ge(*ctl_.ack[j], s);
      }
    } else {
      ctx.flag_wait_ge(*ctl_.seq[0], s);
      ctx.copy(rbuf, ctl_.info[0]->buf, bytes);
      ctx.flag_store(*ctl_.ack[r], s);
    }
  }

 private:
  struct Seq {
    alignas(64) std::uint64_t v = 0;
  };
  mach::Machine* machine_;
  core::CtlArena arena_;
  core::GroupCtl ctl_;
  std::array<Seq, 1024> seq_{};
};

}  // namespace

int main() {
  using namespace xhc;
  std::cout << "Custom 'linear' component vs XHC, simulated Epyc-1P "
               "(osu_allreduce_mb)\n\n";

  const std::vector<std::size_t> sizes{64, 4096, 262144};
  util::Table table({"Size", "linear (us)", "xhc (us)", "speedup"});
  for (const std::size_t bytes : sizes) {
    double lat[2] = {0, 0};
    for (int which = 0; which < 2; ++which) {
      sim::SimMachine machine(topo::epyc1p(), 32);
      std::unique_ptr<coll::Component> comp;
      if (which == 0) {
        comp = std::make_unique<LinearComponent>(machine);
      } else {
        comp = coll::make_component("xhc", machine);
      }
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = 2;
      lat[which] =
          osu::allreduce_sweep(machine, *comp, {bytes}, cfg).front().avg_us;
    }
    table.add_row({util::Table::fmt_bytes(bytes),
                   util::Table::fmt_double(lat[0], 2),
                   util::Table::fmt_double(lat[1], 2),
                   util::Table::fmt_double(lat[0] / lat[1], 1) + "x"});
  }
  table.print(std::cout);
  return 0;
}
