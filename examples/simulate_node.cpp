// Simulate a multicore node: compare collective components on a machine you
// don't have.
//
// Runs an osu_bcast_mb-style sweep on the simulated Epyc-2P (64 ranks,
// 8 NUMA nodes, 2 sockets) for a chosen set of components and prints the
// latency table, plus the XHC hierarchy the topology produces.
//
//   $ ./examples/simulate_node [--system=epyc2p] [--sizes=4,4096,1M]
#include <iostream>

#include "coll/registry.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "topo/hierarchy.h"
#include "topo/presets.h"
#include "util/str.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace xhc;
  const util::Args args(argc, argv);
  const std::string system = args.get("system", "epyc2p");

  std::vector<std::size_t> sizes;
  for (const auto& tok : util::split(args.get("sizes", "4,4096,1M"), ',')) {
    if (const auto s = util::parse_size(tok)) sizes.push_back(*s);
  }

  topo::Topology topo = topo::by_name(system);
  const int ranks = topo.n_cores();
  std::cout << "Simulating " << system << ": " << ranks << " cores, "
            << topo.n_numa() << " NUMA nodes, " << topo.n_sockets()
            << " sockets\n\n";

  {
    sim::SimMachine machine(topo::by_name(system), ranks);
    const topo::Hierarchy hier(machine.topology(), machine.map(),
                               topo::parse_sensitivity("numa+socket"), 0);
    std::cout << "XHC numa+socket hierarchy (* marks group leaders):\n"
              << hier.describe() << "\n";
  }

  util::Table table([&] {
    std::vector<std::string> header{"Size"};
    for (const auto c : coll::bcast_component_names()) header.emplace_back(c);
    return header;
  }());
  std::vector<std::vector<std::string>> rows(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
  }
  for (const auto comp_name : coll::bcast_component_names()) {
    sim::SimMachine machine(topo::by_name(system), ranks);
    auto comp = coll::make_component(comp_name, machine);
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = 2;
    const auto res = osu::bcast_sweep(machine, *comp, sizes, cfg);
    for (std::size_t i = 0; i < res.size(); ++i) {
      rows[i].push_back(util::Table::fmt_double(res[i].avg_us, 2));
    }
  }
  for (auto& row : rows) table.add_row(std::move(row));
  std::cout << "Broadcast latency (us, simulated):\n";
  table.print(std::cout);
  return 0;
}
