// Observability demo: trace XHC collectives and export a Chrome trace.
//
// Runs a broadcast and an allreduce on the simulated 64-core Epyc-1P with
// Tuning::trace enabled, then writes `xhc_bcast.trace.json` (load it at
// ui.perfetto.dev or chrome://tracing — one process per rank, spans on the
// virtual-time axis) and prints the span and counter summary tables.
//
//   $ ./examples/trace_bcast [out.trace.json]
#include <cstdio>
#include <iostream>

#include "coll/registry.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

int main(int argc, char** argv) {
  using namespace xhc;
  const std::string out = argc > 1 ? argv[1] : "xhc_bcast.trace.json";

  topo::Topology topo = topo::epyc1p();
  const int n = topo.n_cores();
  sim::SimMachine machine(std::move(topo), n);

  // Tracing is opt-in per component: the Tuning::trace knob plus an attached
  // Observer. Default-tuned components skip every span/counter site.
  coll::Tuning tuning;
  tuning.trace = true;
  auto xhc = coll::make_component("xhc", machine, tuning);
  obs::Observer observer(machine.n_ranks());
  xhc->set_observer(&observer);

  constexpr std::size_t kBytes = 1 << 20;  // 1 MiB: the pipelined regime
  std::vector<mach::Buffer> bufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < n; ++r) {
    bufs.emplace_back(machine, r, kBytes);
    rbufs.emplace_back(machine, r, kBytes);
  }
  util::fill_pattern(bufs[0].get(), kBytes, /*seed=*/7);

  machine.run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    xhc->bcast(ctx, bufs[r].get(), kBytes, /*root=*/0);
    xhc->allreduce(ctx, bufs[r].get(), rbufs[r].get(),
                   kBytes / sizeof(float), mach::DType::kF32, mach::ROp::kSum);
  });

  obs::write_chrome_trace_file(out, observer.trace(), "xhc");
  std::printf("wrote %s: %llu spans over %d ranks (%llu dropped)\n",
              out.c_str(),
              static_cast<unsigned long long>(observer.trace().recorded()), n,
              static_cast<unsigned long long>(observer.trace().dropped()));

  std::cout << "\nSpan summary:\n";
  observer.span_table().print(std::cout);
  std::cout << "\nCounter summary:\n";
  observer.metrics_table().print(std::cout);
  return 0;
}
