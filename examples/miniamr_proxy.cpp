// Application-level comparison: the miniAMR proxy on a simulated node.
//
// Shows how to drive an application communication pattern against multiple
// collective components and read out total vs in-collective time — the
// experiment structure behind the paper's Fig. 13.
//
//   $ ./examples/miniamr_proxy [--system=armn1] [--steps=200]
#include <iostream>

#include "apps/miniamr.h"
#include "coll/registry.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/str.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace xhc;
  const util::Args args(argc, argv);
  const std::string system = args.get("system", "armn1");
  const long steps = args.get_long("steps", 200);

  apps::MiniAmrConfig config = apps::miniamr_1k_levels();
  config.timesteps = static_cast<int>(steps);

  std::cout << "miniAMR proxy (" << config.timesteps << " timesteps, "
            << config.reduce_bytes << " B allreduces, every "
            << config.refine_every << " step(s)) on simulated " << system
            << "\n\n";

  util::Table table({"Component", "Total (ms)", "In-allreduce (ms)",
                     "Allreduce calls"});
  for (const char* comp_name : {"xhc", "xhc-flat", "tuned", "ucc", "xbrc"}) {
    topo::Topology topo = topo::by_name(system);
    sim::SimMachine machine(std::move(topo), topo::by_name(system).n_cores());
    auto comp = coll::make_component(comp_name, machine);
    const apps::AppResult res = apps::run_miniamr(machine, *comp, config);
    table.add_row({comp_name, util::Table::fmt_double(res.total_time * 1e3, 2),
                   util::Table::fmt_double(res.collective_time * 1e3, 2),
                   std::to_string(res.collective_calls)});
  }
  table.print(std::cout);
  std::cout << "\nThe gap between components is confined to the "
               "in-allreduce column; compute time is identical.\n";
  return 0;
}
