// Ablations over XHC's design choices (DESIGN.md §4, "extra"):
//   * hierarchy sensitivity: flat / numa / socket / numa+socket /
//     l3+numa+socket (paper §III-A: which levels pay off where);
//   * pipeline chunk size (paper §III-B and §V-D2's note that 128K–1M
//     allreduce is sensitive to chunk configuration);
//   * CICO threshold (paper §III-D: where the copy-in-copy-out path stops
//     paying off);
//   * registration cache on/off for the full XHC data path (§III-C).
#include "bench/bench_common.h"
#include "core/xhc_component.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  // --- sensitivity ablation (bcast, Epyc-2P + ARM-N1) ----------------------
  {
    const std::vector<std::size_t> sizes =
        args.quick ? std::vector<std::size_t>{4096}
                   : std::vector<std::size_t>{4, 4096, 262144, 1048576};
    for (const char* system : {"epyc2p", "armn1"}) {
      util::Table table({"Size", "flat", "numa", "socket", "numa+socket",
                         "l3+numa+socket"});
      std::vector<std::vector<std::string>> rows(sizes.size());
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
      }
      for (const char* sens :
           {"flat", "numa", "socket", "numa+socket", "l3+numa+socket"}) {
        auto machine = bench::make_system(system);
        coll::Tuning tuning;
        args.apply_tuning(tuning);
        tuning.sensitivity = sens;
        core::XhcComponent comp(*machine, tuning, "xhc-ablate");
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 1 : 2;
        const auto res = osu::bcast_sweep(*machine, comp, sizes, cfg);
        for (std::size_t i = 0; i < res.size(); ++i) {
          rows[i].push_back(bench::us(res[i].avg_us));
        }
      }
      for (auto& row : rows) table.add_row(std::move(row));
      bench::emit(args, table,
                  std::string("Ablation: hierarchy sensitivity, bcast (us), ") +
                      system);
    }
  }

  // --- chunk size ablation (allreduce 1 MB, Epyc-2P) -----------------------
  {
    util::Table table({"Chunk", "bcast 1M (us)", "allreduce 1M (us)"});
    const std::vector<std::size_t> chunks =
        args.quick ? std::vector<std::size_t>{16384}
                   : std::vector<std::size_t>{4096, 16384, 65536, 262144};
    for (const std::size_t chunk : chunks) {
      double lat[2];
      for (int which = 0; which < 2; ++which) {
        auto machine = bench::make_system("epyc2p");
        coll::Tuning tuning;
        args.apply_tuning(tuning);
        tuning.chunk_bytes = {chunk};
        core::XhcComponent comp(*machine, tuning, "xhc-chunk");
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 1 : 2;
        lat[which] =
            which == 0
                ? osu::bcast_sweep(*machine, comp, {1u << 20}, cfg)
                      .front()
                      .avg_us
                : osu::allreduce_sweep(*machine, comp, {1u << 20}, cfg)
                      .front()
                      .avg_us;
      }
      table.add_row({util::Table::fmt_bytes(chunk), bench::us(lat[0]),
                     bench::us(lat[1])});
    }
    bench::emit(args, table,
                "Ablation: pipeline chunk size (Epyc-2P, 1 MB)");
  }

  // --- CICO threshold ablation (Epyc-1P) -----------------------------------
  {
    util::Table table({"Size", "cico=0 (always 1-copy)", "cico=1K (default)",
                       "cico=16K"});
    const std::vector<std::size_t> sizes{64, 512, 2048, 8192};
    std::vector<std::vector<std::string>> rows(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
    }
    for (const std::size_t threshold : {std::size_t{0}, std::size_t{1024},
                                        std::size_t{16384}}) {
      auto machine = bench::make_system("epyc1p");
      coll::Tuning tuning;
      args.apply_tuning(tuning);
      tuning.cico_threshold = threshold;
      core::XhcComponent comp(*machine, tuning, "xhc-cico");
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 2 : 4;
      const auto res = osu::bcast_sweep(*machine, comp, sizes, cfg);
      for (std::size_t i = 0; i < res.size(); ++i) {
        rows[i].push_back(bench::us(res[i].avg_us));
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    bench::emit(args, table,
                "Ablation: CICO threshold, bcast (us), Epyc-1P");
  }

  // --- registration cache on/off for XHC (Epyc-2P) -------------------------
  {
    util::Table table({"Size", "regcache on", "regcache off", "penalty"});
    for (const std::size_t bytes :
         {std::size_t{16384}, std::size_t{262144}, std::size_t{1} << 20}) {
      double lat[2];
      int i = 0;
      for (const bool cache : {true, false}) {
        auto machine = bench::make_system("epyc2p");
        coll::Tuning tuning;
        args.apply_tuning(tuning);
        tuning.reg_cache = cache;
        core::XhcComponent comp(*machine, tuning, "xhc-rc");
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 1 : 2;
        lat[i++] =
            osu::bcast_sweep(*machine, comp, {bytes}, cfg).front().avg_us;
      }
      table.add_row({util::Table::fmt_bytes(bytes), bench::us(lat[0]),
                     bench::us(lat[1]),
                     util::Table::fmt_double(lat[1] / lat[0], 2) + "x"});
    }
    bench::emit(args, table,
                "Ablation: XHC registration cache on/off, bcast (Epyc-2P)");
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
