// Fig. 14 — CNTK AlexNet training (one scaled epoch) per component.
//
// Data-parallel SGD allreduces large layered gradient tensors after every
// minibatch. Expected: XHC-tree reduces epoch time over tuned/ucc/xbrc with
// the largest margin on ARM-N1, and the time spent *inside* Allreduce drops
// by a multiple even where the end-to-end win is modest (paper §V-D3).
// Gradient buffers are reused every minibatch, so XPMEM registration-cache
// hit ratios exceed 99%.
#include "apps/cntk.h"
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  util::Table table({"System", "Component", "Epoch (ms)", "In-coll (ms)",
                     "RegCache hit%"});
  for (const auto system : topo::paper_systems()) {
    for (const char* comp_name : {"xhc", "tuned", "ucc", "xbrc"}) {
      auto machine = bench::make_system(system);
      auto comp = coll::make_component(comp_name, *machine);
      apps::CntkConfig cfg;
      // 4 minibatches x 4 MB of gradients keep the sweep CI-sized (see
      // DESIGN.md §5 on the ranking-neutral scaling).
      cfg.minibatches = args.quick ? 2 : 4;
      cfg.layer_bytes = args.quick
                            ? std::vector<std::size_t>{512 * 1024,
                                                       2 * 1024 * 1024}
                            : std::vector<std::size_t>{1024 * 1024,
                                                       2 * 1024 * 1024,
                                                       1024 * 1024};
      const apps::AppResult res = apps::run_cntk(*machine, *comp, cfg);
      std::string hit = "-";
      if (const auto stats = comp->reg_cache_stats()) {
        hit = util::Table::fmt_double(stats->hit_ratio() * 100.0, 1);
      }
      table.add_row({std::string(system), comp_name,
                     util::Table::fmt_double(res.total_time * 1e3, 2),
                     util::Table::fmt_double(res.collective_time * 1e3, 2),
                     hit});
    }
  }
  bench::emit(args, table, "Fig. 14: CNTK AlexNet proxy (one scaled epoch)");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
