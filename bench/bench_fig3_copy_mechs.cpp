// Fig. 3 — data copy schemes: XPMEM / KNEM / CMA / CICO, plus XPMEM with
// the registration cache disabled (Epyc-2P).
//
//   (a) osu_latency, 2 ranks in different NUMA nodes of one socket;
//   (b) osu_bcast over the tuned component, 64 ranks.
//
// Expected relationships (paper §III-C): XPMEM(+regcache) fastest, then
// KNEM, then CMA, all ahead of CICO; XPMEM *without* the registration cache
// pays attach+detach per operation and drops behind the alternatives.
#include "base/tuned.h"
#include "bench/bench_common.h"
#include "p2p/fabric.h"

namespace {

using namespace xhc;

struct Mech {
  const char* label;
  smsc::Mechanism mech;
  bool reg_cache;
};

const Mech kMechs[] = {
    {"xpmem", smsc::Mechanism::kXpmem, true},
    {"knem", smsc::Mechanism::kKnem, true},
    {"cma", smsc::Mechanism::kCma, true},
    {"cico", smsc::Mechanism::kCico, true},
    {"xpmem-nocache", smsc::Mechanism::kXpmem, false},
};

}  // namespace

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{16384, 1048576}
                 : std::vector<std::size_t>{16384, 65536, 262144, 1048576,
                                            4194304};

  // (a) point-to-point, two ranks in different NUMA nodes, same socket.
  {
    util::Table table({"Size", "xpmem", "knem", "cma", "cico",
                       "xpmem-nocache"});
    for (const std::size_t bytes : sizes) {
      std::vector<std::string> row{util::Table::fmt_bytes(bytes)};
      for (const Mech& m : kMechs) {
        auto machine = bench::make_system("epyc2p");
        p2p::Fabric::Config cfg;
        cfg.mechanism = m.mech;
        cfg.reg_cache = m.reg_cache;
        p2p::Fabric fabric(*machine, cfg);
        // Rank 8 sits in the next NUMA node of socket 0 (8 cores per NUMA).
        osu::Config ocfg;
        ocfg.warmup = 1;
        ocfg.iters = args.quick ? 1 : 3;
        row.push_back(bench::us(
            osu::pt2pt_latency_us(*machine, fabric, 0, 8, bytes, ocfg)));
      }
      table.add_row(std::move(row));
    }
    bench::emit(args, table,
                "Fig. 3a: pt2pt one-way latency (us), 2 ranks, Epyc-2P");
  }

  // (b) broadcast over tuned, full node.
  {
    util::Table table({"Size", "xpmem", "knem", "cma", "cico",
                       "xpmem-nocache"});
    std::vector<std::vector<std::string>> rows(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
    }
    for (const Mech& m : kMechs) {
      auto machine = bench::make_system("epyc2p");
      coll::Tuning tuning;
      args.apply_tuning(tuning);
      tuning.mechanism = m.mech;
      tuning.reg_cache = m.reg_cache;
      auto comp = coll::make_component("tuned", *machine, tuning);
      osu::Config ocfg;
      ocfg.warmup = 1;
      ocfg.iters = args.quick ? 1 : 2;
      const auto res = osu::bcast_sweep(*machine, *comp, sizes, ocfg);
      for (std::size_t i = 0; i < res.size(); ++i) {
        rows[i].push_back(bench::us(res[i].avg_us));
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    bench::emit(args, table,
                "Fig. 3b: broadcast latency (us), tuned, 64 ranks, Epyc-2P");
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
