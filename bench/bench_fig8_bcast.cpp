// Fig. 8 — MPI_Bcast latency vs message size, all components, all three
// systems (osu_bcast_mb, paper §V-D1).
//
// Expected shapes: XHC-tree leads for medium/large messages everywhere;
// XHC-flat beats XHC-tree for *small* messages on the shared-LLC Epycs
// (implicit cache assist) but collapses on SLC-based ARM-N1; sm's
// atomics-based sync is catastrophic on ARM-N1; SMHC's double copies hurt
// at large sizes; the XHC-tree advantage grows with node density.
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto sizes = bench::figure_sizes(args.quick, args.large);
  const auto comps = coll::bcast_component_names();
  const auto systems = args.systems();

  // One independent sim point per (system, component) pair. Each point owns
  // a private SimMachine, so the worker pool may run them on any host
  // thread in any order while the tables, assembled by point index below,
  // stay byte-identical to a sequential sweep.
  std::vector<std::vector<std::vector<osu::SizeResult>>> results(
      systems.size(), std::vector<std::vector<osu::SizeResult>>(comps.size()));
  std::vector<std::unique_ptr<obs::Observer>> observers(systems.size());
  std::vector<std::vector<obs::NamedHist>> hists(systems.size() *
                                                 comps.size());
  std::vector<std::string> coh_reports(systems.size() * comps.size());

  osu::run_points(
      systems.size() * comps.size(), args.effective_jobs(),
      [&](std::size_t i) {
        const std::size_t si = i / comps.size();
        const std::size_t ci = i % comps.size();
        auto machine = bench::make_system(systems[si]);
        coll::Tuning tuning;
        args.apply_tuning(tuning);
        auto comp = coll::make_component(comps[ci], *machine, tuning);
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 1 : 2;
        cfg.verify = args.verify;
        if (args.observe()) {
          // Observability forces effective_jobs()==1, so sharing one
          // Observer across a system's components stays race-free.
          if (!observers[si]) {
            observers[si] = std::make_unique<obs::Observer>(machine->n_ranks());
          }
          cfg.observer = observers[si].get();
        }
        if (args.hist_on()) cfg.size_hists = &hists[i];
        bench::wire_wait_hist(args, *machine, cfg.observer);
        bench::wire_coherence(args, *machine);
        results[si][ci] = osu::bcast_sweep(*machine, *comp, sizes, cfg);
        // Each point owns its machine, so the report is private to this
        // worker; buffering keeps print order deterministic under --jobs.
        coh_reports[i] = bench::coh_report_string(
            args, *machine,
            std::string(systems[si]) + "/" + std::string(comps[ci]));
      });

  for (std::size_t si = 0; si < systems.size(); ++si) {
    util::Table table([&] {
      std::vector<std::string> header{"Size"};
      for (const auto c : comps) header.emplace_back(c);
      return header;
    }());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row{util::Table::fmt_bytes(sizes[i])};
      for (std::size_t ci = 0; ci < comps.size(); ++ci) {
        row.push_back(bench::us(results[si][ci][i].avg_us));
      }
      table.add_row(std::move(row));
    }
    std::string title = "Fig. 8: MPI_Bcast latency (us), ";
    title += systems[si];
    bench::emit(args, table, title);
    if (args.hist_on()) {
      std::vector<std::pair<std::string, std::vector<obs::NamedHist>>>
          per_comp;
      for (std::size_t ci = 0; ci < comps.size(); ++ci) {
        per_comp.emplace_back(std::string(comps[ci]),
                              std::move(hists[si * comps.size() + ci]));
      }
      bench::emit_hists(args, std::string(systems[si]), per_comp,
                        observers[si].get());
    }
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      std::cout << coh_reports[si * comps.size() + ci];
    }
    if (observers[si]) {
      bench::emit_observability(args, *observers[si],
                                std::string(systems[si]));
      bench::emit_critpath(args, *observers[si], std::string(systems[si]));
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
