// Fig. 8 — MPI_Bcast latency vs message size, all components, all three
// systems (osu_bcast_mb, paper §V-D1).
//
// Expected shapes: XHC-tree leads for medium/large messages everywhere;
// XHC-flat beats XHC-tree for *small* messages on the shared-LLC Epycs
// (implicit cache assist) but collapses on SLC-based ARM-N1; sm's
// atomics-based sync is catastrophic on ARM-N1; SMHC's double copies hurt
// at large sizes; the XHC-tree advantage grows with node density.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto sizes = bench::figure_sizes(args.quick);
  const auto comps = coll::bcast_component_names();

  for (const auto system : topo::paper_systems()) {
    util::Table table([&] {
      std::vector<std::string> header{"Size"};
      for (const auto c : comps) header.emplace_back(c);
      return header;
    }());
    std::vector<std::vector<std::string>> rows(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
    }
    std::unique_ptr<obs::Observer> observer;
    for (const auto comp_name : comps) {
      auto machine = bench::make_system(system);
      coll::Tuning tuning;
      tuning.trace = args.observe();
      auto comp = coll::make_component(comp_name, *machine, tuning);
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 1 : 2;
      if (args.observe()) {
        if (!observer) {
          observer = std::make_unique<obs::Observer>(machine->n_ranks());
        }
        cfg.observer = observer.get();
      }
      const auto res = osu::bcast_sweep(*machine, *comp, sizes, cfg);
      for (std::size_t i = 0; i < res.size(); ++i) {
        rows[i].push_back(bench::us(res[i].avg_us));
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    std::string title = "Fig. 8: MPI_Bcast latency (us), ";
    title += system;
    bench::emit(args, table, title);
    if (observer) {
      bench::emit_observability(args, *observer, std::string(system));
    }
  }
  return 0;
}
