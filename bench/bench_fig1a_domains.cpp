// Fig. 1a — one-way pt2pt latency across topological domains (1 MB), and
// the latency-wise counterpart the paper mentions (4 B).
//
// Pairs of ranks are chosen so the two cores are cache-local (shared LLC),
// intra-NUMA, cross-NUMA, or cross-socket. Expected relationships:
// cache-local < intra-NUMA < cross-NUMA << cross-socket on the Epycs, and
// intra-NUMA ≈ cross-NUMA on ARM-N1 (paper §III-A).
#include "bench/bench_common.h"
#include "p2p/fabric.h"

namespace {

using namespace xhc;

/// First rank whose core is at `want` distance from rank 0's core, or -1.
int pair_at(const topo::Topology& topo, const topo::RankMap& map,
            topo::Distance want) {
  for (int r = 1; r < map.n_ranks(); ++r) {
    if (map.distance(topo, 0, r) == want) return r;
  }
  return -1;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  for (const std::size_t bytes : {std::size_t{1} << 20, std::size_t{4}}) {
    util::Table table({"System", "cache-local", "intra-numa", "cross-numa",
                       "cross-socket"});
    for (const auto name : topo::paper_systems()) {
      auto machine = bench::make_system(name);
      p2p::Fabric fabric(*machine, {});
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 1 : 3;

      std::vector<std::string> row{std::string(name)};
      for (const topo::Distance d :
           {topo::Distance::kLlcLocal, topo::Distance::kIntraNuma,
            topo::Distance::kCrossNuma, topo::Distance::kCrossSocket}) {
        const int peer = pair_at(machine->topology(), machine->map(), d);
        if (peer < 0) {
          row.push_back("n/a");
          continue;
        }
        const double us =
            osu::pt2pt_latency_us(*machine, fabric, 0, peer, bytes, cfg);
        row.push_back(bench::us(us));
      }
      table.add_row(std::move(row));
    }
    bench::emit(args, table,
                "Fig. 1a: one-way latency (us), " +
                    util::Table::fmt_bytes(bytes) + " messages");
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
