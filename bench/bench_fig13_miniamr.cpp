// Fig. 13 — miniAMR ("expanding sphere") per component, two configurations.
//
//   (a) default: 4 refinement levels, small (tens of bytes) allreduces —
//       differences are marginal on the Epycs and visible on ARM-N1;
//   (b) 1K refinement levels, refine every timestep, ~1 KB allreduces —
//       XHC wins clearly and XBRC struggles (paper §V-D3).
#include "apps/miniamr.h"
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const struct {
    const char* label;
    apps::MiniAmrConfig config;
  } configs[] = {
      {"4 refinement levels", apps::miniamr_default()},
      {"1K refinement levels", apps::miniamr_1k_levels()},
  };

  for (const auto& [label, base_config] : configs) {
    util::Table table(
        {"System", "Component", "Total (ms)", "In-coll (ms)", "Calls"});
    for (const auto system : topo::paper_systems()) {
      for (const char* comp_name : {"xhc", "tuned", "ucc", "xbrc"}) {
        auto machine = bench::make_system(system);
        auto comp = coll::make_component(comp_name, *machine);
        apps::MiniAmrConfig cfg = base_config;
        // An eighth of the paper's timesteps keeps the three-system sweep
        // CI-sized; per-step behaviour (and the ranking) is unchanged.
        cfg.timesteps /= args.quick ? 20 : 8;
        const apps::AppResult res = apps::run_miniamr(*machine, *comp, cfg);
        table.add_row({std::string(system), comp_name,
                       util::Table::fmt_double(res.total_time * 1e3, 2),
                       util::Table::fmt_double(res.collective_time * 1e3, 2),
                       std::to_string(res.collective_calls)});
      }
    }
    bench::emit(args, table,
                std::string("Fig. 13: miniAMR proxy, ") + label);
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
