// Protocol analyzer driver: static schedule verification over whole
// preset x op x size-class grids, without executing a single collective.
//
//   analyze_protocol                     # sweep everything, text reports
//   analyze_protocol --preset=mini8      # one target
//   analyze_protocol --op=allreduce --size=262144
//   analyze_protocol --json --out=schedules.json
//   analyze_protocol --tune=xhc_stripe_threshold=4096
//
// Each cell extracts the first-op ScheduleModel from a freshly built
// component and runs every analyzer check (single-writer, monotonicity,
// threshold reachability, acyclicity, slot reuse, payload coverage).
// Output is byte-deterministic; the exit status is the total finding
// count clamped to 1, so CI can gate on it directly.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/analyzer.h"
#include "check/schedule_model.h"
#include "coll/tuning.h"
#include "core/xhc_component.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/str.h"

namespace {

using namespace xhc;

/// Paper systems, the test minis, and two synthetic shapes the presets do
/// not cover (a flat single-domain machine and an odd 3-NUMA grid).
const std::vector<std::string> kTargets = {
    "epyc1p", "epyc2p", "armn1", "mini8", "mini16", "flat4", "flat8", "grid12",
};

topo::Topology target_by_name(const std::string& name) {
  if (name == "flat4") return topo::flat(4);
  if (name == "flat8") return topo::flat(8);
  if (name == "grid12") return topo::grid("grid12", 2, 3, 2, 2);
  return topo::by_name(name);
}

struct OpSpec {
  check::Op op;
  const char* name;
};

const std::vector<OpSpec> kOps = {
    {check::Op::kBcast, "bcast"},
    {check::Op::kAllreduce, "allreduce"},
    {check::Op::kReduce, "reduce"},
    {check::Op::kBarrier, "barrier"},
};

/// One size per regime: CICO (< cico_threshold), pipelined latency
/// (multi-chunk), and past the large-message thresholds (rs+ag / striping).
const std::vector<std::size_t> kSizes = {512, 32768, 262144};

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::string only_preset = args.get("preset", "");
  const std::string only_op = args.get("op", "");
  const long only_size = args.get_long("size", -1);
  const int root = static_cast<int>(args.get_long("root", 0));
  const bool json = args.has("json");
  const std::string out_path = args.get("out", "");

  coll::Tuning tuning;
  for (const auto& t : args.get_all("tune")) coll::apply_param(tuning, t);

  std::vector<std::string> targets = kTargets;
  if (!only_preset.empty()) {
    (void)target_by_name(only_preset);  // fail fast on unknown names
    targets = {only_preset};
  }

  std::ostringstream os;
  std::size_t cells = 0;
  std::size_t total_findings = 0;
  if (json) os << "[";
  for (const std::string& target : targets) {
    topo::Topology topo = target_by_name(target);
    const int ranks = topo.n_cores();
    sim::SimMachine machine(std::move(topo), ranks);
    core::XhcComponent comp(machine, tuning, "analyze");
    for (const OpSpec& spec : kOps) {
      if (!only_op.empty() && only_op != spec.name) continue;
      std::vector<std::size_t> sizes = kSizes;
      if (spec.op == check::Op::kBarrier) sizes = {0};
      if (only_size >= 0) {
        sizes = {static_cast<std::size_t>(only_size)};
        if (spec.op == check::Op::kBarrier) sizes = {0};
      }
      for (const std::size_t bytes : sizes) {
        const check::ScheduleModel model =
            check::extract_schedule(comp, spec.op, bytes, root);
        const check::AnalysisReport rep =
            check::analyze(model, machine.verify_ledger());
        total_findings += rep.findings.size();
        if (json) {
          os << (cells == 0 ? "\n" : ",\n")
             << "{\"preset\":\"" << target << "\",\"report\":" << rep.json()
             << "}";
        } else {
          os << "-- preset=" << target << " --\n" << rep.text() << "\n";
        }
        ++cells;
      }
    }
  }
  if (json) os << "\n]\n";

  os << (json ? "" : "") << std::flush;
  std::string body = std::move(os).str();
  if (!json) {
    body += "analyzed " + std::to_string(cells) + " schedules, " +
            std::to_string(total_findings) + " findings\n";
  }
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    XHC_REQUIRE(f.good(), "cannot open --out file ", out_path);
    f << body;
    std::cout << "report written: " << out_path << " (" << cells
              << " schedules)\n";
  } else {
    std::cout << body;
  }
  return total_findings == 0 ? 0 : 1;
}
