// Fig. 4 — 4-byte broadcast with atomics- vs single-writer-based
// synchronization as the node fills up (ARM-N1).
//
// The same flat shared-memory broadcast runs with its completion flags
// either stored by each member (single-writer) or bumped with an atomic
// fetch-add. On the SLC-based ARM system every RMW serializes an exclusive
// ownership transfer of the counter's cache line, so the atomics variant
// degrades dramatically with rank count (the paper measures 23x at 160
// ranks).
#include "bench/bench_common.h"
#include "core/xhc_component.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  util::Table table({"Ranks", "single-writer (us)", "atomics (us)", "ratio"});
  const std::vector<int> rank_counts =
      args.quick ? std::vector<int>{20, 160}
                 : std::vector<int>{10, 20, 40, 80, 120, 160};

  for (const int ranks : rank_counts) {
    double lat[2] = {0.0, 0.0};
    int idx = 0;
    for (const coll::SyncMethod sync :
         {coll::SyncMethod::kSingleWriter, coll::SyncMethod::kAtomicFetchAdd}) {
      sim::SimMachine machine(topo::armn1(), ranks);
      coll::Tuning tuning;
      args.apply_tuning(tuning);
      tuning.sensitivity = "flat";
      tuning.sync = sync;
      auto comp = std::make_unique<core::XhcComponent>(
          machine, tuning,
          sync == coll::SyncMethod::kSingleWriter ? "flat-sw" : "flat-atomic");
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 2 : 4;
      const auto res = osu::bcast_sweep(machine, *comp, {4}, cfg);
      lat[idx++] = res.front().avg_us;
    }
    table.add_row({std::to_string(ranks), bench::us(lat[0]),
                   bench::us(lat[1]),
                   util::Table::fmt_double(lat[1] / lat[0], 1) + "x"});
  }
  bench::emit(args, table,
              "Fig. 4: 4 B broadcast, atomics vs single-writer sync "
              "(ARM-N1, flat tree)");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
