// Fig. 4 — 4-byte broadcast with atomics- vs single-writer-based
// synchronization as the node fills up (ARM-N1, flat tree).
//
// The same flat shared-memory broadcast runs with its completion flags
// either stored by each member (single-writer) or bumped with an atomic
// fetch-add. On the SLC-based ARM system every RMW serializes an exclusive
// ownership transfer of the counter's cache line, so the atomics variant
// degrades dramatically with rank count (the paper measures 23x at 160
// ranks).
//
// The coherence observatory runs with tracking always on here: N
// concurrent RMWs on the shared counter must migrate its exclusive
// ownership on nearly every bump (asserted below — Fig. 4's mechanism),
// and the single-writer variant must never touch the counter at all.
#include "bench/bench_common.h"
#include "core/xhc_component.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::string system = args.preset.empty() ? "armn1" : args.preset;
  const int n_cores = topo::by_name(system).n_cores();

  // Rank counts scaled to the preset's core count; on armn1 (160 cores)
  // this reproduces the paper's 10..160 sweep.
  std::vector<int> rank_counts;
  for (const int frac : args.quick ? std::vector<int>{8, 1}
                                   : std::vector<int>{16, 8, 4, 2}) {
    const int r = std::max(2, n_cores / frac);
    if (rank_counts.empty() || rank_counts.back() != r) {
      rank_counts.push_back(r);
    }
  }
  if (!args.quick) {
    const int three_q = std::max(2, 3 * n_cores / 4);
    if (rank_counts.back() != three_q) rank_counts.push_back(three_q);
    if (rank_counts.back() != n_cores) rank_counts.push_back(n_cores);
  }

  const std::size_t n_points = rank_counts.size() * 2;
  std::vector<double> lat(n_points, 0.0);
  std::unique_ptr<obs::Observer> observer;
  std::vector<std::vector<obs::NamedHist>> hists(n_points);
  std::vector<std::string> coh_reports(n_points);
  std::vector<obs::CohReport> reports(n_points);
  std::vector<char> have_report(n_points, 0);

  osu::run_points(n_points, args.effective_jobs(), [&](std::size_t i) {
    const std::size_t ri = i / 2;
    const bool atomics = (i % 2) != 0;
    const int ranks = rank_counts[ri];
    sim::SimMachine machine(topo::by_name(system), ranks);
    coll::Tuning tuning;
    args.apply_tuning(tuning);
    tuning.sensitivity = "flat";
    tuning.sync = atomics ? coll::SyncMethod::kAtomicFetchAdd
                          : coll::SyncMethod::kSingleWriter;
    core::XhcComponent comp(machine, tuning,
                            atomics ? "flat-atomic" : "flat-sw");
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = args.quick ? 2 : 4;
    cfg.verify = args.verify;
    if (args.observe()) {
      // Observability forces effective_jobs()==1; size the shared Observer
      // for the largest point so every rank has a metrics row.
      if (!observer) observer = std::make_unique<obs::Observer>(n_cores);
      cfg.observer = observer.get();
    }
    if (args.hist_on()) cfg.size_hists = &hists[i];
    bench::wire_wait_hist(args, machine, cfg.observer);
    bench::wire_coherence(args, machine);
    // The RMW-transfer assertion below needs the modeled counters even in
    // default runs; tracking never changes virtual time.
    machine.set_coh_tracking(true);
    const auto res = osu::bcast_sweep(machine, comp, {4}, cfg);
    lat[i] = res.front().avg_us;
    have_report[i] = machine.coh_report(&reports[i]) ? char(1) : char(0);
    coh_reports[i] = bench::coh_report_string(
        args, machine,
        system + "/" + std::to_string(ranks) +
            (atomics ? " atomics" : " single-writer"));
  });

  util::Table table({"Ranks", "single-writer (us)", "atomics (us)", "ratio"});
  for (std::size_t ri = 0; ri < rank_counts.size(); ++ri) {
    const double sw = lat[ri * 2];
    const double at = lat[ri * 2 + 1];
    table.add_row({std::to_string(rank_counts[ri]), bench::us(sw),
                   bench::us(at),
                   util::Table::fmt_double(at / sw, 1) + "x"});
  }
  bench::emit(args, table,
              "Fig. 4: 4 B broadcast, atomics vs single-writer sync, " +
                  system);
  for (const std::string& r : coh_reports) std::cout << r;
  if (args.hist_on()) {
    std::vector<std::pair<std::string, std::vector<obs::NamedHist>>> per_comp;
    for (std::size_t i = 0; i < n_points; ++i) {
      per_comp.emplace_back(std::to_string(rank_counts[i / 2]) +
                                ((i % 2) != 0 ? "-atomic" : "-sw"),
                            std::move(hists[i]));
    }
    bench::emit_hists(args, system, per_comp, observer.get());
  }
  if (observer) {
    bench::emit_observability(args, *observer, system);
    bench::emit_critpath(args, *observer, system);
  }

  // Scenario assertion (paper Fig. 4 mechanism): the shared counter's line
  // must migrate ownership on the overwhelming majority of RMW bumps (each
  // member's fetch-add steals it from the previous bumper; only back-to-
  // back bumps by one core keep it), and the single-writer variant must
  // never issue an RMW. Fault plans perturb publish counts; check clean
  // runs only.
  if (args.faults.empty()) {
    for (std::size_t i = 0; i < n_points; ++i) {
      if (have_report[i] == 0) continue;
      const int ranks = rank_counts[i / 2];
      const obs::CohTotals ctr =
          obs::coh_sum_matching(reports[i], "atomic_ctr");
      if ((i % 2) == 0) {
        XHC_CHECK(ctr.rmws == 0, "Fig. 4: single-writer run at ", ranks,
                  " ranks issued ", ctr.rmws, " RMWs on atomic_ctr");
        continue;
      }
      XHC_CHECK(ctr.rmws >= static_cast<std::uint64_t>(ranks - 1),
                "Fig. 4: atomics run at ", ranks, " ranks issued only ",
                ctr.rmws, " RMWs on atomic_ctr");
      // ~N transfers for N concurrent RMWs: at least half must migrate
      // (empirically ≥ (ranks-1)/ranks of them do). With a single bumping
      // member (2 ranks) every RMW stays on one core and nothing migrates,
      // so the migration check needs at least two contending members.
      if (ranks >= 3) {
        XHC_CHECK(ctr.transfers * 2 >= ctr.rmws,
                  "Fig. 4: atomics run at ", ranks, " ranks: only ",
                  ctr.transfers, " ownership transfers for ", ctr.rmws,
                  " RMWs — the counter line should migrate on nearly every "
                  "bump");
      }
    }
    std::cout << "coherence assertion: atomic_ctr migrates on RMW bumps; "
                 "single-writer never touches it\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
