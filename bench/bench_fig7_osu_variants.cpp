// Fig. 7 — osu_bcast vs the cache-defeating osu_bcast_mb variant, for
// XHC-flat and XHC-tree (Epyc-2P).
//
// With the stock benchmark (unchanged buffer every iteration) the flat
// tree's readers find the root's data in their local caches and the flat
// tree *appears* faster in the 2 KB–1 MB range; the `_mb` variant rewrites
// the buffer before each call and reveals that the hierarchical tree is in
// fact the faster one (paper §V-A). Below the CICO threshold and above the
// cache capacity the two benchmarks agree.
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto sizes = bench::figure_sizes(args.quick, args.large);

  util::Table table({"Size", "flat", "flat_mb", "tree", "tree_mb"});
  std::vector<std::vector<std::string>> rows(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
  }

  for (const char* comp_name : {"xhc-flat", "xhc"}) {
    for (const bool modify : {false, true}) {
      auto machine = bench::make_system("epyc2p");
      auto comp = coll::make_component(comp_name, *machine);
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 1 : 2;
      cfg.modify_buffer = modify;
      const auto res = osu::bcast_sweep(*machine, *comp, sizes, cfg);
      for (std::size_t i = 0; i < res.size(); ++i) {
        rows[i].push_back(bench::us(res[i].avg_us));
      }
    }
  }
  for (auto& row : rows) table.add_row(std::move(row));
  bench::emit(args, table,
              "Fig. 7: osu_bcast vs osu_bcast_mb (us), XHC flat/tree, "
              "Epyc-2P");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
