// Fig. 1b — memory-copy time of a singled-out rank vs participant count
// (Epyc-1P, 1 MB copies).
//
// Flat: every participant concurrently copies from the root rank's buffer —
// the fan-out congests the root's memory/cache ports and the observed
// rank's copy time grows with the participant count. Hierarchical: ranks
// copy from their NUMA leader instead, so participants in other NUMA nodes
// do not affect the observed rank (paper §III-A). The observed rank's NUMA
// node is fully occupied in every scenario.
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  constexpr std::size_t kBytes = 1u << 20;

  util::Table table({"Participants", "flat (us)", "hierarchical (us)"});
  const std::vector<int> participant_counts =
      args.quick ? std::vector<int>{8, 32} : std::vector<int>{8, 16, 24, 32};

  for (const int k : participant_counts) {
    double flat_us = 0.0;
    double hier_us = 0.0;
    for (const bool hierarchical : {false, true}) {
      auto machine = bench::make_system("epyc1p");
      const topo::Topology& topo = machine->topology();
      const int n = machine->n_ranks();
      std::vector<mach::Buffer> bufs;
      for (int r = 0; r < n; ++r) bufs.emplace_back(*machine, r, kBytes);
      // NUMA leader of each rank: the lowest core in its NUMA node
      // (rank 0 for the observed rank's node).
      std::vector<int> leader(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        leader[static_cast<std::size_t>(r)] =
            topo.cores_in_numa(topo.core(machine->map().core_of(r)).numa)
                .front();
      }
      constexpr int kObserved = 1;  // shares rank 0's (full) NUMA node
      double observed_us = 0.0;

      machine->run([&](mach::Ctx& ctx) {
        const int r = ctx.rank();
        if (r == 0) {
          ctx.write_payload(bufs[0].get(), kBytes, 7);
        }
        ctx.barrier();
        const bool participates = r != 0 && r < k;
        if (hierarchical) {
          // Stage 1: NUMA leaders pull from the root.
          if (participates && leader[static_cast<std::size_t>(r)] == r) {
            ctx.copy(bufs[static_cast<std::size_t>(r)].get(), bufs[0].get(),
                     kBytes);
          }
          ctx.barrier();
          // Stage 2: members pull from their local leader.
          if (participates && leader[static_cast<std::size_t>(r)] != r) {
            const int l = leader[static_cast<std::size_t>(r)];
            const double t0 = ctx.now();
            ctx.copy(bufs[static_cast<std::size_t>(r)].get(),
                     bufs[static_cast<std::size_t>(l)].get(), kBytes);
            if (r == kObserved) observed_us = (ctx.now() - t0) * 1e6;
          }
        } else if (participates) {
          const double t0 = ctx.now();
          ctx.copy(bufs[static_cast<std::size_t>(r)].get(), bufs[0].get(),
                   kBytes);
          if (r == kObserved) observed_us = (ctx.now() - t0) * 1e6;
        }
      });
      (hierarchical ? hier_us : flat_us) = observed_us;
    }
    table.add_row({std::to_string(k), bench::us(flat_us),
                   bench::us(hier_us)});
  }
  bench::emit(args, table,
              "Fig. 1b: singled-out rank 1 MB copy time vs participants "
              "(Epyc-1P)");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
