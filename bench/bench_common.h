// Shared helpers for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure of the paper on the three
// simulated evaluation systems and prints paper-style rows. `--quick`
// shrinks sweeps for smoke runs; `--csv` emits machine-readable output.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "coll/registry.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/str.h"
#include "util/table.h"

namespace xhc::bench {

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  bool metrics = false;    ///< --metrics: print span/counter summary tables
  std::string trace_out;   ///< --trace-out=<file>: Chrome trace JSON path

  static BenchArgs parse(int argc, char** argv) {
    util::Args args(argc, argv);
    BenchArgs b;
    b.quick = args.has("quick");
    b.csv = args.has("csv");
    b.metrics = args.has("metrics");
    b.trace_out = args.get("trace-out", "");
    return b;
  }

  /// Observability requested at all (either output form)?
  bool observe() const { return metrics || !trace_out.empty(); }
};

inline void emit(const BenchArgs& args, const util::Table& table,
                 const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout.flush();
}

/// Fresh simulated machine for one paper system, fully populated.
inline std::unique_ptr<sim::SimMachine> make_system(
    std::string_view name,
    topo::MapPolicy policy = topo::MapPolicy::kCore) {
  topo::Topology topo = topo::by_name(name);
  const int ranks = topo.n_cores();
  return std::make_unique<sim::SimMachine>(std::move(topo), ranks, policy);
}

/// Size sweep used by the latency figures: 4 B .. 4 MB. The paper uses x2
/// steps; x4 keeps the full suite CI-sized while preserving every regime
/// (CICO path, pipelined medium, cache-exceeding large).
inline std::vector<std::size_t> figure_sizes(bool quick) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (quick ? (64u << 10) : (4u << 20)); s *= 4) {
    sizes.push_back(s);
  }
  return sizes;
}

inline std::string us(double v) { return util::Table::fmt_double(v, 2); }

/// "fig8.json" + "armn1" -> "fig8.armn1.json" (benches loop over systems and
/// must not overwrite one system's trace with the next one's).
inline std::string trace_path_for(const std::string& base,
                                  std::string_view label) {
  const auto dot = base.rfind('.');
  const auto slash = base.rfind('/');
  std::string ins = ".";
  ins += label;
  if (dot == std::string::npos ||
      (slash != std::string::npos && slash > dot)) {
    return base + ins;  // no extension: plain suffix
  }
  std::string out = base;
  out.insert(dot, ins);
  return out;
}

/// Writes the Chrome trace (when --trace-out) and prints the span/metrics
/// summary tables (when --metrics) for one finished system run.
inline void emit_observability(const BenchArgs& args, const obs::Observer& o,
                               const std::string& label) {
  if (!args.trace_out.empty()) {
    const std::string path = trace_path_for(args.trace_out, label);
    obs::write_chrome_trace_file(path, o.trace(), label);
    std::cout << "trace written: " << path << " (" << o.trace().recorded()
              << " spans, " << o.trace().dropped() << " dropped)\n";
  }
  if (args.metrics) {
    std::cout << "\n== Spans, " << label << " ==\n";
    o.span_table().print(std::cout);
    std::cout << "\n== Metrics, " << label << " ==\n";
    o.metrics_table().print(std::cout);
  }
  std::cout.flush();
}

}  // namespace xhc::bench
