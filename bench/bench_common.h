// Shared helpers for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure of the paper on the three
// simulated evaluation systems and prints paper-style rows. `--quick`
// shrinks sweeps for smoke runs; `--csv` emits machine-readable output.
#pragma once

#if __has_include(<malloc.h>)
#include <malloc.h>
#endif

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "coll/registry.h"
#include "coll/tuning.h"
#include "fault/fault.h"
#include "obs/coh.h"
#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/str.h"
#include "util/table.h"

namespace xhc::bench {

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  bool metrics = false;    ///< --metrics: print span/counter summary tables
  std::string trace_out;   ///< --trace-out=<file>: Chrome trace JSON path
  bool hist = false;       ///< --hist: print latency histogram tables
  std::string hist_out;    ///< --hist-out=<file>: histogram JSON path
  bool critpath = false;   ///< --critpath: print blocking-chain report
  bool coherence = false;  ///< --coherence: print modeled coherence report
  std::string preset;      ///< --preset=<name>: run only this paper system
  int jobs = 1;            ///< --jobs=<n>: host workers for the sim sweep
                           ///  (0 = one per host core)
  /// --verify: re-check payload contents after each sweep. Off by default
  /// in the latency benches — correctness is pinned by the test suite, and
  /// the re-read of every rank's buffer costs more wall-clock than the
  /// simulations themselves at large sizes.
  bool verify = false;
  /// --fault=<spec>: fault-injection plan applied to every component built
  /// through apply_tuning() (same grammar as the xhc_fault tuning param).
  std::string faults;
  std::uint64_t fault_seed = 1;  ///< --fault-seed=<n>
  /// --large: extend the size sweep with the large-message points (256 KB,
  /// 1 MB, 4 MB). Mainly useful with --quick, whose sweep otherwise stops
  /// at 64 KB below the large-path thresholds; the full sweep already
  /// contains these sizes.
  bool large = false;
  /// --tune=key=value (repeatable): MCA-style parameter assignments applied
  /// to every component built through apply_tuning(), after the dedicated
  /// flags — the lever for A/B runs like disabling the large-message paths
  /// (--tune=xhc_rs_ag_threshold=0 --tune=xhc_stripe_threshold=0) without a
  /// rebuild. Same grammar as coll::apply_param; unknown keys fail fast.
  std::vector<std::string> tune;

  static BenchArgs parse(int argc, char** argv) {
    tune_allocator();
    util::Args args(argc, argv);
    BenchArgs b;
    b.quick = args.has("quick");
    b.csv = args.has("csv");
    b.metrics = args.has("metrics");
    b.trace_out = args.get("trace-out", "");
    b.hist = args.has("hist");
    b.hist_out = args.get("hist-out", "");
    b.critpath = args.has("critpath");
    b.coherence = args.has("coherence");
    b.preset = args.get("preset", "");
    b.jobs = static_cast<int>(args.get_long("jobs", 1));
    b.verify = args.has("verify");
    b.faults = args.get("fault", "");
    b.fault_seed =
        static_cast<std::uint64_t>(args.get_long("fault-seed", 1));
    b.large = args.has("large");
    b.tune = args.get_all("tune");
    if (!b.faults.empty()) {
      // Fail fast on malformed specs, before any sweep spins up.
      (void)fault::Plan::parse(b.faults);
    }
    for (const auto& t : b.tune) {
      // Fail fast on unknown keys / malformed values too.
      coll::Tuning probe;
      coll::apply_param(probe, t);
    }
    XHC_REQUIRE(b.jobs >= 0, "--jobs must be >= 0, got ", b.jobs);
    return b;
  }

  /// Applies the cross-cutting knobs (trace gate, fault plan) to the
  /// tuning a bench is about to build a component from.
  void apply_tuning(coll::Tuning& tuning) const {
    tuning.trace = observe();
    tuning.hist = hist_on();
    tuning.faults = faults;
    tuning.fault_seed = fault_seed;
    for (const auto& t : tune) coll::apply_param(tuning, t);
  }

  /// Observability requested at all (any output form)?
  bool observe() const {
    return metrics || !trace_out.empty() || hist_on() || critpath;
  }

  /// Latency histograms requested (either output form)?
  bool hist_on() const { return hist || !hist_out.empty(); }

  /// The sweeps allocate and free hundreds of multi-megabyte payload
  /// buffers. glibc's default serves those straight from mmap, so every
  /// simulation run pays a fresh page-fault storm and gives the pages
  /// right back; keeping them in the arena lets freed memory be reused
  /// warm and cuts the suite's kernel time substantially.
  static void tune_allocator() {
#if defined(M_MMAP_THRESHOLD) && defined(M_TRIM_THRESHOLD)
    mallopt(M_MMAP_THRESHOLD, 256 << 20);
    mallopt(M_TRIM_THRESHOLD, 256 << 20);
#endif
  }

  /// Effective sweep parallelism. The shared Observer is not thread-safe
  /// across machines, so observability forces the sequential path.
  int effective_jobs() const { return observe() ? 1 : jobs; }

  /// Paper systems honoring --preset (all three when unset; an unknown
  /// preset name fails fast via topo::by_name).
  std::vector<std::string_view> systems() const {
    auto all = topo::paper_systems();
    if (preset.empty()) return all;
    (void)topo::by_name(preset);  // validate, throws on unknown names
    for (const auto s : all) {
      if (s == preset) return {s};
    }
    // Valid topology but not a paper evaluation system (e.g. mini8):
    // still honor it so smoke runs can use the tiny presets. The view
    // points into this BenchArgs, which outlives the sweep.
    return {std::string_view(preset)};
  }
};

inline void emit(const BenchArgs& args, const util::Table& table,
                 const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout.flush();
}

/// Fresh simulated machine for one paper system, fully populated.
inline std::unique_ptr<sim::SimMachine> make_system(
    std::string_view name,
    topo::MapPolicy policy = topo::MapPolicy::kCore) {
  topo::Topology topo = topo::by_name(name);
  const int ranks = topo.n_cores();
  return std::make_unique<sim::SimMachine>(std::move(topo), ranks, policy);
}

/// Size sweep used by the latency figures: 4 B .. 4 MB. The paper uses x2
/// steps; x4 keeps the full suite CI-sized while preserving every regime
/// (CICO path, pipelined medium, cache-exceeding large).
inline std::vector<std::size_t> figure_sizes(bool quick, bool large = false) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (quick ? (64u << 10) : (4u << 20)); s *= 4) {
    sizes.push_back(s);
  }
  if (large) {
    // --large: the points past the large-path thresholds, skipping any the
    // base sweep already covers (the full sweep covers all of them).
    for (const std::size_t s :
         {std::size_t{256} << 10, std::size_t{1} << 20, std::size_t{4} << 20}) {
      if (s > sizes.back()) sizes.push_back(s);
    }
  }
  return sizes;
}

inline std::string us(double v) { return util::Table::fmt_double(v, 2); }

/// "fig8.json" + "armn1" -> "fig8.armn1.json" (benches loop over systems and
/// must not overwrite one system's trace with the next one's).
inline std::string trace_path_for(const std::string& base,
                                  std::string_view label) {
  const auto dot = base.rfind('.');
  const auto slash = base.rfind('/');
  std::string ins = ".";
  ins += label;
  if (dot == std::string::npos ||
      (slash != std::string::npos && slash > dot)) {
    return base + ins;  // no extension: plain suffix
  }
  std::string out = base;
  out.insert(dot, ins);
  return out;
}

/// Writes the Chrome trace (when --trace-out) and prints the span/metrics
/// summary tables (when --metrics) for one finished system run. Non-zero
/// coh_* counters ride along into the trace as counter events.
inline void emit_observability(const BenchArgs& args, const obs::Observer& o,
                               const std::string& label) {
  if (!args.trace_out.empty()) {
    const std::string path = trace_path_for(args.trace_out, label);
    obs::write_chrome_trace_file(path, o.trace(), label, &o.metrics());
    std::cout << "trace written: " << path << " (" << o.trace().recorded()
              << " spans, " << o.trace().dropped() << " dropped)\n";
  }
  if (args.metrics) {
    std::cout << "\n== Spans, " << label << " ==\n";
    o.span_table().print(std::cout);
    std::cout << "\n== Metrics, " << label << " ==\n";
    o.metrics_table().print(std::cout);
  }
  std::cout.flush();
}

/// Attaches the observer's histogram set to the machine's flag-wait hook.
/// Call before the sweep, outside any parallel region; a null observer or
/// histograms not requested leaves the hook disabled.
inline void wire_wait_hist(const BenchArgs& args, mach::Machine& machine,
                           obs::Observer* o) {
  if (args.hist_on() && o != nullptr) machine.set_wait_hist(&o->hists());
}

/// Prints the histogram table (--hist) and writes the JSON (--hist-out) for
/// one finished system run. `per_comp` holds the per-size op histograms each
/// component's sweep collected (prefixed "comp/size"); the observer, when
/// present, contributes the site-level kinds (flag_wait, wait_site, chunk,
/// op) accumulated across the system's components.
inline void emit_hists(
    const BenchArgs& args, const std::string& label,
    const std::vector<std::pair<std::string, std::vector<obs::NamedHist>>>&
        per_comp,
    const obs::Observer* o) {
  if (!args.hist_on()) return;
  std::vector<obs::NamedHist> all;
  for (const auto& [comp, hs] : per_comp) {
    for (const auto& nh : hs) all.push_back({comp + "/" + nh.name, nh.hist});
  }
  if (o != nullptr) {
    for (auto& nh : obs::named_hists(o->hists())) all.push_back(std::move(nh));
  }
  if (args.hist) {
    std::cout << "\n== Hist, " << label << " ==\n";
    const util::Table table = obs::hist_table(all);
    if (args.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
  if (!args.hist_out.empty()) {
    const std::string path = trace_path_for(args.hist_out, label);
    obs::write_hist_json_file(path, all, label);
    std::cout << "hist written: " << path << " (" << all.size()
              << " histograms)\n";
  }
  std::cout.flush();
}

/// Prints the critical-path report (--critpath) for one finished system run.
inline void emit_critpath(const BenchArgs& args, const obs::Observer& o,
                          const std::string& label) {
  if (!args.critpath) return;
  std::cout << "\n== Critical path, " << label << " ==\n";
  obs::write_critpath_report(std::cout, obs::analyze_critical_paths(o.trace()));
  std::cout.flush();
}

/// Enables the machine's modeled coherence accounting when any consumer of
/// it was requested (--coherence report, --metrics counters, --trace-out
/// counter events). Tracking is observational only — virtual timestamps are
/// identical on or off — so default runs stay byte-identical.
inline void wire_coherence(const BenchArgs& args, mach::Machine& machine) {
  machine.set_coh_tracking(args.coherence || args.metrics ||
                           !args.trace_out.empty());
}

/// The machine's coherence report formatted for --coherence output, or ""
/// when the machine models none / the flag is off. Returned (not printed)
/// so sweeps parallelized with --jobs can buffer per-point reports and
/// print them in deterministic point order.
inline std::string coh_report_string(const BenchArgs& args,
                                     const mach::Machine& machine,
                                     const std::string& label) {
  if (!args.coherence) return "";
  obs::CohReport report;
  if (!machine.coh_report(&report)) return "";
  std::ostringstream os;
  os << "\n== Coherence, " << label << " ==\n";
  obs::write_coh_report(os, report);
  return std::move(os).str();
}

}  // namespace xhc::bench
