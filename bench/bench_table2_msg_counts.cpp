// Table II — number and distance of exchanged messages per broadcast
// (Epyc-2P, 64 ranks, 64 KB — tuned's binomial-tree regime, whose pattern
// sensitivity is what the paper's Table II demonstrates).
//
// One message = one logical payload transfer between two ranks (a pt2pt
// message for tuned, a leader↔member pull for XHC). tuned's counts swing
// with the mapping policy and the root; XHC-tree's stay fixed at
// {1 inter-socket, 6 inter-NUMA, 56 intra-NUMA} — exactly the paper's XHC
// row: one top-level exchange, three NUMA leaders per socket, seven members
// per NUMA group.
#include "bench/bench_common.h"

namespace {

using namespace xhc;

struct Scenario {
  const char* comp;
  const char* label;
  topo::MapPolicy policy;
  int root;
};

}  // namespace

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  constexpr std::size_t kBytes = 64u << 10;  // binomial-tree regime

  const Scenario scenarios[] = {
      {"tuned", "map-core", topo::MapPolicy::kCore, 0},
      {"tuned", "map-numa", topo::MapPolicy::kNuma, 0},
      {"tuned", "root=0", topo::MapPolicy::kCore, 0},
      {"tuned", "root=10", topo::MapPolicy::kCore, 10},
      {"xhc", "map-core root=0", topo::MapPolicy::kCore, 0},
      {"xhc", "map-numa", topo::MapPolicy::kNuma, 0},
      {"xhc", "root=10", topo::MapPolicy::kCore, 10},
  };

  util::Table table({"Component", "Scenario", "Inter-Socket", "Inter-NUMA",
                     "Intra-NUMA"});
  for (const Scenario& sc : scenarios) {
    auto machine = bench::make_system("epyc2p", sc.policy);
    auto comp = coll::make_component(sc.comp, *machine);
    p2p::TrafficCounter counter(&machine->topology(), &machine->map());
    comp->set_traffic_counter(&counter);

    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < machine->n_ranks(); ++r) {
      bufs.emplace_back(*machine, r, kBytes);
    }
    machine->run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  kBytes, sc.root);
    });

    table.add_row({sc.comp, sc.label, std::to_string(counter.inter_socket()),
                   std::to_string(counter.inter_numa()),
                   std::to_string(counter.intra_numa())});
  }
  bench::emit(args, table,
              "Table II: messages by distance per 64 KB bcast (Epyc-2P)");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
