// Fig. 12 — PiSvM training time per component, three systems.
//
// The proxy replays PiSvM's bcast-dominated communication (kernel-matrix
// working-set rows + control words). Expected: XHC-tree at least matches
// tuned on the Epycs and clearly wins on ARM-N1; SMHC keeps up on Epyc-1P
// but falls behind on the larger systems (paper §V-D3). Registration-cache
// hit ratios should exceed 99% (§V-D3).
#include "apps/pisvm.h"
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  util::Table table({"System", "Component", "Total (ms)", "In-coll (ms)",
                     "RegCache hit%"});
  for (const auto system : topo::paper_systems()) {
    for (const char* comp_name : {"xhc", "tuned", "ucc", "smhc"}) {
      auto machine = bench::make_system(system);
      auto comp = coll::make_component(comp_name, *machine);
      apps::PisvmConfig cfg;
      // 120 iterations keep the sweep CI-sized; the collective share (and
      // therefore the component ranking) is iteration-count invariant.
      cfg.iterations = args.quick ? 40 : 120;
      const apps::AppResult res = apps::run_pisvm(*machine, *comp, cfg);
      std::string hit = "-";
      if (const auto stats = comp->reg_cache_stats()) {
        hit = util::Table::fmt_double(stats->hit_ratio() * 100.0, 1);
      }
      table.add_row({std::string(system), comp_name,
                     util::Table::fmt_double(res.total_time * 1e3, 2),
                     util::Table::fmt_double(res.collective_time * 1e3, 2),
                     hit});
    }
  }
  bench::emit(args, table, "Fig. 12: PiSvM proxy performance");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
