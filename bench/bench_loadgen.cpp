// Multi-tenant service soak (DESIGN.md § Multi-tenant service).
//
// Drives the svc:: layer with the deterministic loadgen: N overlapping
// communicators over one node, seed-driven open-loop arrivals of mixed
// bcast/allreduce/reduce/barrier streams with sizes straddling the 128 KiB
// large-path thresholds, admission control + backpressure against a shared
// Arbiter budget, per-request payload integrity verification, and
// p50/p99/p999 completion latency per op class.
//
// Expected shapes: barrier < bcast < reduce < allreduce at the median; tail
// percentiles grow with --arrival as op-token backoff engages; shed counts
// stay zero until the offered load crosses the deadline/queue budget.
//
// Knobs beyond the standard set: --comms=<n> tenants, --arrival=<req/s>
// offered load (virtual time), --duration=<n> total requests,
// --integrity=<0|1> payload verification, --inflight=<n> op tokens,
// --seed=<n> stream seed, --budget-mb=<n> shared-segment budget (0 = size
// it to fit every tenant undegraded; set it low to drive the degradation
// chain and admission rejections).
//
// Telemetry plane (DESIGN.md § Service telemetry plane): --windows=<sec>
// slices the soak into fixed windows (per-tenant counter deltas, phase
// samples, machine flag waits) and prints the cross-tenant interference
// report; --windows-out=<file> exports the windowed series as JSON;
// --reqlog=<file> dumps the per-request causal log; --slo=<spec> evaluates
// per-op-class latency targets per window (nonzero exit on violation;
// defaults --windows to 10 ms when unset). The standard observability set
// (--trace-out/--metrics/--hist/--hist-out/--critpath/--coherence) works
// here too, aggregated over every tenant. All of it is off-path: without
// these flags the soak is bit-identical to the un-instrumented build.
#include "bench/bench_common.h"
#include "obs/timeseries.h"
#include "svc/loadgen.h"
#include "svc/telemetry.h"

namespace {

struct LoadgenArgs {
  xhc::bench::BenchArgs base;
  xhc::svc::LoadgenConfig cfg;
  xhc::svc::Budget budget;
  long budget_mb = 0;  ///< 0 = auto-size per system
  double windows = 0.0;
  std::string windows_out;
  std::string reqlog;
  std::string slo;

  /// Any telemetry surface requested? Attaches the plane and forces the
  /// sequential sweep path (per-system state, deterministic print order).
  bool telemetry_on() const {
    return base.observe() || windows > 0.0 || !reqlog.empty();
  }
};

LoadgenArgs parse(int argc, char** argv) {
  using namespace xhc;
  LoadgenArgs a;
  a.base = bench::BenchArgs::parse(argc, argv);
  util::Args args(argc, argv);
  a.cfg.n_comms = static_cast<int>(args.get_long("comms", 8));
  a.cfg.arrival_rate = args.get_double("arrival", 2e4);
  a.cfg.requests = static_cast<std::uint64_t>(
      args.get_long("duration", a.base.quick ? 2000 : 20000));
  a.cfg.integrity = args.get_long("integrity", 1) != 0;
  a.cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  a.cfg.faults = a.base.faults;
  a.cfg.fault_seed = a.base.fault_seed;
  a.budget.inflight_ops = static_cast<int>(args.get_long("inflight", 8));
  a.budget_mb = args.get_long("budget-mb", 0);
  a.windows = args.get_double("windows", 0.0);
  a.windows_out = args.get("windows-out", "");
  a.reqlog = args.get("reqlog", "");
  a.slo = args.get("slo", "");
  if ((!a.slo.empty() || !a.windows_out.empty()) && a.windows <= 0.0) {
    a.windows = 0.01;  // the consumers need a plane: default 10 ms windows
  }
  if (!a.slo.empty()) {
    // Fail fast on malformed specs, before any soak spins up.
    (void)svc::parse_slo(a.slo);
  }
  XHC_REQUIRE(a.budget_mb >= 0, "--budget-mb must be >= 0");
  XHC_REQUIRE(a.cfg.n_comms >= 1, "--comms must be >= 1");
  XHC_REQUIRE(a.cfg.requests >= 1, "--duration must be >= 1");
  XHC_REQUIRE(a.cfg.arrival_rate > 0.0, "--arrival must be > 0");
  XHC_REQUIRE(a.windows >= 0.0, "--windows must be >= 0");
  return a;
}

std::string count(std::uint64_t v) { return std::to_string(v); }

}  // namespace

static int run(int argc, char** argv) {
  using namespace xhc;
  const LoadgenArgs a = parse(argc, argv);
  const auto systems = a.base.systems();
  const bool tele_on = a.telemetry_on();

  // One independent point per system: each owns a private machine, arbiter,
  // registry and telemetry plane, so the worker pool keeps the tables
  // byte-identical to a sequential sweep under any --jobs. Telemetry forces
  // the sequential path (same policy as BenchArgs::effective_jobs).
  std::vector<svc::LoadgenResult> results(systems.size());
  std::vector<std::unique_ptr<svc::Telemetry>> tels(systems.size());
  std::vector<std::string> coh_reports(systems.size());
  osu::run_points(systems.size(), tele_on ? 1 : a.base.effective_jobs(),
                  [&](std::size_t i) {
    auto machine = bench::make_system(systems[i]);
    coll::Tuning tuning;
    a.base.apply_tuning(tuning);
    if (tele_on) tuning.trace = true;  // observer gate (spans + counters)
    bench::wire_coherence(a.base, *machine);
    svc::Budget budget = a.budget;
    if (a.budget_mb > 0) {
      budget.segment_bytes = static_cast<std::size_t>(a.budget_mb) << 20;
    } else {
      // Auto-size: fit every tenant at full segment size even if all spanned
      // the whole node (subset tenants leave headroom). The budget is
      // accounting, not host memory, so generous costs nothing.
      budget.segment_bytes =
          static_cast<std::size_t>(machine->n_ranks()) *
          static_cast<std::size_t>(a.cfg.n_comms) *
          (tuning.cico_segment_bytes + svc::Arbiter::kCtlBytesPerRank);
    }
    svc::LoadgenConfig cfg = a.cfg;
    if (tele_on) {
      svc::TelemetryConfig tcfg;
      tcfg.window_seconds = a.windows;
      tcfg.machine_hist = a.base.hist_on();
      tcfg.slo = a.slo;
      tels[i] = std::make_unique<svc::Telemetry>(*machine, tcfg,
                                                 a.cfg.requests);
      cfg.telemetry = tels[i].get();
    }
    results[i] = svc::run_soak(*machine, cfg, budget, tuning);
    if (tels[i] != nullptr) {
      // End-of-run coherence deltas land in the parent-rank registry so the
      // --metrics table and the trace show them next to the tenant counters.
      machine->publish_coh_counters(tels[i]->parent_metrics());
    }
    coh_reports[i] =
        bench::coh_report_string(a.base, *machine, std::string(systems[i]));
  });

  std::uint64_t total_integrity_failures = 0;
  std::uint64_t total_slo_violations = 0;
  for (std::size_t si = 0; si < systems.size(); ++si) {
    const svc::LoadgenResult& r = results[si];
    const std::string label(systems[si]);
    total_integrity_failures += r.integrity_failures;
    util::Table table({"Class", "count", "shed", "integrity_fail", "p50_us",
                       "p99_us", "p999_us", "mean_us"});
    for (int k = 0; k < svc::kNumOpClasses; ++k) {
      const auto& pc = r.per_class[static_cast<std::size_t>(k)];
      table.add_row({svc::to_string(static_cast<svc::OpClass>(k)),
                     count(pc.completed), count(pc.shed),
                     count(pc.integrity_failures),
                     bench::us(pc.latency.percentile(0.50) * 1e6),
                     bench::us(pc.latency.percentile(0.99) * 1e6),
                     bench::us(pc.latency.percentile(0.999) * 1e6),
                     bench::us(pc.latency.mean() * 1e6)});
    }
    bench::emit(a.base, table, "Loadgen: service latency per op class, " +
                                   label);

    util::Table totals({"Class", "completed", "shed", "integrity_fail",
                        "backoff_stalls", "makespan_us"});
    totals.add_row({"all", count(r.completed), count(r.shed),
                    count(r.integrity_failures), count(r.backoff_stalls),
                    bench::us(r.makespan * 1e6)});
    bench::emit(a.base, totals, "Loadgen: service totals, " + label);

    svc::Telemetry* tele = tels[si].get();
    if (tele == nullptr) continue;

    if (tele->windowed()) {
      std::cout << "\n== Interference, " << label << " ==\n";
      tele->write_interference(std::cout);
    }
    if (!a.slo.empty()) {
      std::cout << "\n== SLO, " << label << " ==\n";
      tele->slo_table().print(std::cout);
      total_slo_violations += tele->slo_violations();
    }
    if (a.base.metrics) {
      std::cout << "\n== Spans, " << label << " ==\n";
      tele->span_table().print(std::cout);
      std::cout << "\n== Metrics, " << label << " ==\n";
      tele->metrics_table().print(std::cout);
    }
    // Histograms: service phase latencies, machine flag waits, then each
    // tenant's component-level kinds — all through the fig8-style emitter.
    std::vector<std::pair<std::string, std::vector<obs::NamedHist>>> per_comp;
    per_comp.emplace_back("svc", tele->phase_hists());
    per_comp.emplace_back("mach", obs::named_hists(tele->machine_hists()));
    for (int c = 0; c < tele->n_comms(); ++c) {
      per_comp.emplace_back(tele->comm_label(c),
                            obs::named_hists(tele->observer(c)->hists()));
    }
    bench::emit_hists(a.base, label, per_comp, nullptr);
    if (a.base.critpath) {
      for (int c = 0; c < tele->n_comms(); ++c) {
        std::cout << "\n== Critical path, " << label << " "
                  << tele->comm_label(c) << " ==\n";
        obs::write_critpath_report(
            std::cout,
            obs::analyze_critical_paths(tele->observer(c)->trace()));
      }
    }
    if (!coh_reports[si].empty()) std::cout << coh_reports[si];
    if (!a.base.trace_out.empty()) {
      const std::string path = bench::trace_path_for(a.base.trace_out, label);
      tele->write_chrome_trace_file(path, label);
      std::cout << "trace written: " << path << " (" << tele->spans_recorded()
                << " spans)\n";
    }
    if (!a.windows_out.empty()) {
      const std::string path = bench::trace_path_for(a.windows_out, label);
      obs::write_timeseries_json_file(path, *tele->series(), label);
      std::cout << "windows written: " << path << " ("
                << tele->series()->used_windows() << " windows)\n";
    }
    if (!a.reqlog.empty()) {
      const std::string path = bench::trace_path_for(a.reqlog, label);
      tele->write_reqlog_file(path);
      std::cout << "reqlog written: " << path << " ("
                << tele->records().size() << " requests)\n";
    }
    std::cout.flush();
  }
  // Shedding under pressure is expected service behavior; corrupted
  // payloads never are — fail the run so soak gates can't pass silently.
  if (total_integrity_failures != 0) {
    std::fprintf(stderr, "bench_loadgen: %llu integrity failures\n",
                 static_cast<unsigned long long>(total_integrity_failures));
    return 1;
  }
  // An SLO violation is the monitor doing its job: surface it as a gate
  // failure, after all reports are out.
  if (total_slo_violations != 0) {
    std::fprintf(stderr, "bench_loadgen: %llu SLO violations\n",
                 static_cast<unsigned long long>(total_slo_violations));
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
