// Multi-tenant service soak (DESIGN.md § Multi-tenant service).
//
// Drives the svc:: layer with the deterministic loadgen: N overlapping
// communicators over one node, seed-driven open-loop arrivals of mixed
// bcast/allreduce/reduce/barrier streams with sizes straddling the 128 KiB
// large-path thresholds, admission control + backpressure against a shared
// Arbiter budget, per-request payload integrity verification, and
// p50/p99/p999 completion latency per op class.
//
// Expected shapes: barrier < bcast < reduce < allreduce at the median; tail
// percentiles grow with --arrival as op-token backoff engages; shed counts
// stay zero until the offered load crosses the deadline/queue budget.
//
// Knobs beyond the standard set: --comms=<n> tenants, --arrival=<req/s>
// offered load (virtual time), --duration=<n> total requests,
// --integrity=<0|1> payload verification, --inflight=<n> op tokens,
// --seed=<n> stream seed, --budget-mb=<n> shared-segment budget (0 = size
// it to fit every tenant undegraded; set it low to drive the degradation
// chain and admission rejections).
#include "bench/bench_common.h"
#include "svc/loadgen.h"

namespace {

struct LoadgenArgs {
  xhc::bench::BenchArgs base;
  xhc::svc::LoadgenConfig cfg;
  xhc::svc::Budget budget;
  long budget_mb = 0;  ///< 0 = auto-size per system
};

LoadgenArgs parse(int argc, char** argv) {
  using namespace xhc;
  LoadgenArgs a;
  a.base = bench::BenchArgs::parse(argc, argv);
  util::Args args(argc, argv);
  a.cfg.n_comms = static_cast<int>(args.get_long("comms", 8));
  a.cfg.arrival_rate = args.get_double("arrival", 2e4);
  a.cfg.requests = static_cast<std::uint64_t>(
      args.get_long("duration", a.base.quick ? 2000 : 20000));
  a.cfg.integrity = args.get_long("integrity", 1) != 0;
  a.cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  a.cfg.faults = a.base.faults;
  a.cfg.fault_seed = a.base.fault_seed;
  a.budget.inflight_ops = static_cast<int>(args.get_long("inflight", 8));
  a.budget_mb = args.get_long("budget-mb", 0);
  XHC_REQUIRE(a.budget_mb >= 0, "--budget-mb must be >= 0");
  XHC_REQUIRE(a.cfg.n_comms >= 1, "--comms must be >= 1");
  XHC_REQUIRE(a.cfg.requests >= 1, "--duration must be >= 1");
  XHC_REQUIRE(a.cfg.arrival_rate > 0.0, "--arrival must be > 0");
  return a;
}

std::string count(std::uint64_t v) { return std::to_string(v); }

}  // namespace

static int run(int argc, char** argv) {
  using namespace xhc;
  const LoadgenArgs a = parse(argc, argv);
  const auto systems = a.base.systems();

  // One independent point per system: each owns a private machine, arbiter
  // and registry, so the worker pool keeps the tables byte-identical to a
  // sequential sweep under any --jobs.
  std::vector<svc::LoadgenResult> results(systems.size());
  osu::run_points(systems.size(), a.base.effective_jobs(), [&](std::size_t i) {
    auto machine = bench::make_system(systems[i]);
    coll::Tuning tuning;
    a.base.apply_tuning(tuning);
    bench::wire_coherence(a.base, *machine);
    svc::Budget budget = a.budget;
    if (a.budget_mb > 0) {
      budget.segment_bytes = static_cast<std::size_t>(a.budget_mb) << 20;
    } else {
      // Auto-size: fit every tenant at full segment size even if all spanned
      // the whole node (subset tenants leave headroom). The budget is
      // accounting, not host memory, so generous costs nothing.
      budget.segment_bytes =
          static_cast<std::size_t>(machine->n_ranks()) *
          static_cast<std::size_t>(a.cfg.n_comms) *
          (tuning.cico_segment_bytes + svc::Arbiter::kCtlBytesPerRank);
    }
    results[i] = svc::run_soak(*machine, a.cfg, budget, tuning);
  });

  std::uint64_t total_integrity_failures = 0;
  for (std::size_t si = 0; si < systems.size(); ++si) {
    const svc::LoadgenResult& r = results[si];
    total_integrity_failures += r.integrity_failures;
    util::Table table({"Class", "count", "shed", "integrity_fail", "p50_us",
                       "p99_us", "p999_us", "mean_us"});
    for (int k = 0; k < svc::kNumOpClasses; ++k) {
      const auto& pc = r.per_class[static_cast<std::size_t>(k)];
      table.add_row({svc::to_string(static_cast<svc::OpClass>(k)),
                     count(pc.completed), count(pc.shed),
                     count(pc.integrity_failures),
                     bench::us(pc.latency.percentile(0.50) * 1e6),
                     bench::us(pc.latency.percentile(0.99) * 1e6),
                     bench::us(pc.latency.percentile(0.999) * 1e6),
                     bench::us(pc.latency.mean() * 1e6)});
    }
    std::string title = "Loadgen: service latency per op class, ";
    title += systems[si];
    bench::emit(a.base, table, title);

    util::Table totals({"Class", "completed", "shed", "integrity_fail",
                        "backoff_stalls", "makespan_us"});
    totals.add_row({"all", count(r.completed), count(r.shed),
                    count(r.integrity_failures), count(r.backoff_stalls),
                    bench::us(r.makespan * 1e6)});
    std::string ttitle = "Loadgen: service totals, ";
    ttitle += systems[si];
    bench::emit(a.base, totals, ttitle);
  }
  // Shedding under pressure is expected service behavior; corrupted
  // payloads never are — fail the run so soak gates can't pass silently.
  if (total_integrity_failures != 0) {
    std::fprintf(stderr, "bench_loadgen: %llu integrity failures\n",
                 static_cast<unsigned long long>(total_integrity_failures));
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
