// Fig. 9 — sensitivity of tuned's static schedules to (a) the rank-to-core
// mapping policy and (b) the broadcast root, with XHC-tree as the
// topology-aware reference (Epyc-2P).
//
// tuned's rank-numbered trees change their physical communication pattern
// when ranks are laid out round-robin across NUMA nodes (map-numa) or when
// the root moves; XHC rebuilds its hierarchy around the actual placement
// and root, so its latency stays put (paper §V-D1, Table II).
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto sizes = bench::figure_sizes(args.quick, args.large);

  // (a) map-core vs map-numa.
  {
    util::Table table({"Size", "tuned map-core", "tuned map-numa",
                       "xhc map-core", "xhc map-numa"});
    std::vector<std::vector<std::string>> rows(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
    }
    for (const char* comp_name : {"tuned", "xhc"}) {
      for (const topo::MapPolicy policy :
           {topo::MapPolicy::kCore, topo::MapPolicy::kNuma}) {
        auto machine = bench::make_system("epyc2p", policy);
        auto comp = coll::make_component(comp_name, *machine);
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 1 : 2;
        const auto res = osu::bcast_sweep(*machine, *comp, sizes, cfg);
        for (std::size_t i = 0; i < res.size(); ++i) {
          rows[i].push_back(bench::us(res[i].avg_us));
        }
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    bench::emit(args, table,
                "Fig. 9a: bcast latency (us) under rank-to-core layouts, "
                "Epyc-2P");
  }

  // (b) root 0 vs root 10.
  {
    util::Table table({"Size", "tuned root=0", "tuned root=10", "xhc root=0",
                       "xhc root=10"});
    std::vector<std::vector<std::string>> rows(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
    }
    for (const char* comp_name : {"tuned", "xhc"}) {
      for (const int root : {0, 10}) {
        auto machine = bench::make_system("epyc2p");
        auto comp = coll::make_component(comp_name, *machine);
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 1 : 2;
        cfg.root = root;
        const auto res = osu::bcast_sweep(*machine, *comp, sizes, cfg);
        for (std::size_t i = 0; i < res.size(); ++i) {
          rows[i].push_back(bench::us(res[i].avg_us));
        }
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    bench::emit(args, table,
                "Fig. 9b: bcast latency (us) under different roots, Epyc-2P");
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
