// Host-native kernel microbenchmarks (google-benchmark).
//
// Measures, on the actual build host, the primitive operations whose
// modeled costs drive the simulator: memcpy streams, typed reductions,
// single-writer flag round trips, and contended atomic fetch-add — the
// real-hardware counterpart of the paper's §III-E experiment.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "mach/reduce_kernels.h"
#include "util/cacheline.h"
#include "util/prng.h"

namespace {

void BM_Memcpy(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(bytes);
  std::vector<std::byte> dst(bytes);
  xhc::util::fill_pattern(src.data(), bytes, 1);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Memcpy)->Range(4096, 4 << 20);

void BM_ReduceF32Sum(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> dst(count, 1.0f);
  std::vector<float> src(count, 2.0f);
  for (auto _ : state) {
    xhc::mach::reduce_apply(dst.data(), src.data(), count,
                            xhc::mach::DType::kF32, xhc::mach::ROp::kSum);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_ReduceF32Sum)->Range(1024, 1 << 20);

/// Single-writer flag round trip between two threads (ping-pong).
void BM_FlagRoundTrip(benchmark::State& state) {
  xhc::util::CachePadded<std::atomic<std::uint64_t>> ping;
  xhc::util::CachePadded<std::atomic<std::uint64_t>> pong;
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    std::uint64_t expected = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (ping->load(std::memory_order_acquire) >= expected) {
        pong->store(expected, std::memory_order_release);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    ping->store(seq, std::memory_order_release);
    while (pong->load(std::memory_order_acquire) < seq) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  ping->store(seq + 1, std::memory_order_release);
  peer.join();
}
BENCHMARK(BM_FlagRoundTrip);

/// Contended fetch-add: every thread hammers one counter (the sync style
/// whose scaling collapse the paper demonstrates in Fig. 4).
void BM_AtomicFetchAddContended(benchmark::State& state) {
  static xhc::util::CachePadded<std::atomic<std::uint64_t>> counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter->fetch_add(1, std::memory_order_acq_rel));
  }
}
BENCHMARK(BM_AtomicFetchAddContended)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
