// Host-native kernel microbenchmarks (google-benchmark).
//
// Measures, on the actual build host, the primitive operations whose
// modeled costs drive the simulator: memcpy streams, typed reductions,
// single-writer flag round trips, and contended atomic fetch-add — the
// real-hardware counterpart of the paper's §III-E experiment.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mach/reduce_kernels.h"
#include "sim/scheduler.h"
#include "util/cacheline.h"
#include "util/prng.h"

namespace {

using xhc::sim::SimBackend;
using xhc::sim::VirtualScheduler;

SimBackend backend_of(const benchmark::State& state) {
  return state.range(0) == 0 ? SimBackend::kFiber : SimBackend::kThreads;
}

void label_backend(benchmark::State& state) {
  state.SetLabel(state.range(0) == 0 ? "fiber" : "threads");
}

void BM_Memcpy(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(bytes);
  std::vector<std::byte> dst(bytes);
  xhc::util::fill_pattern(src.data(), bytes, 1);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Memcpy)->Range(4096, 4 << 20);

void BM_ReduceF32Sum(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> dst(count, 1.0f);
  std::vector<float> src(count, 2.0f);
  for (auto _ : state) {
    xhc::mach::reduce_apply(dst.data(), src.data(), count,
                            xhc::mach::DType::kF32, xhc::mach::ROp::kSum);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_ReduceF32Sum)->Range(1024, 1 << 20);

/// Operands that stay numerically tame under millions of repeated in-place
/// applications: +/-1 for the float types (sum random-walks, prod stays on
/// the unit circle, min/max saturate — no drift into inf/denormal territory
/// that would skew timing), 1 for the integer types (their timing is
/// data-independent and small values keep repeated sums far from overflow).
void fill_reduce_operands(void* p, std::size_t count, xhc::mach::DType t,
                          std::uint64_t seed) {
  xhc::util::SplitMix64 rng(seed);
  using xhc::mach::DType;
  for (std::size_t i = 0; i < count; ++i) {
    switch (t) {
      case DType::kU8:
        static_cast<std::uint8_t*>(p)[i] = 1;
        break;
      case DType::kI32:
        static_cast<std::int32_t*>(p)[i] = 1;
        break;
      case DType::kI64:
        static_cast<std::int64_t*>(p)[i] = 1;
        break;
      case DType::kF32:
        static_cast<float*>(p)[i] = (rng.next() & 1) != 0 ? 1.0f : -1.0f;
        break;
      case DType::kF64:
        static_cast<double*>(p)[i] = (rng.next() & 1) != 0 ? 1.0 : -1.0;
        break;
    }
  }
}

/// Full op x dtype matrix, fast kernel vs scalar reference, at one
/// bandwidth-representative size — the per-pair speedup the large-message
/// reduce-scatter path banks on. Args: (dtype, op, scalar?).
void BM_Reduce(benchmark::State& state) {
  const auto dtype = static_cast<xhc::mach::DType>(state.range(0));
  const auto op = static_cast<xhc::mach::ROp>(state.range(1));
  const bool scalar = state.range(2) != 0;
  constexpr std::size_t kCount = 64 << 10;
  const std::size_t bytes = kCount * xhc::mach::dtype_size(dtype);
  std::vector<std::byte> dst(bytes);
  std::vector<std::byte> src(bytes);
  fill_reduce_operands(dst.data(), kCount, dtype, 1);
  fill_reduce_operands(src.data(), kCount, dtype, 2);
  state.SetLabel(std::string(xhc::mach::to_string(dtype)) + "/" +
                 xhc::mach::to_string(op) + (scalar ? "/scalar" : "/fast"));
  for (auto _ : state) {
    if (scalar) {
      xhc::mach::reduce_apply_scalar(dst.data(), src.data(), kCount, dtype,
                                     op);
    } else {
      xhc::mach::reduce_apply(dst.data(), src.data(), kCount, dtype, op);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Reduce)->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2, 3}, {0, 1}});

/// Single-writer flag round trip between two threads (ping-pong).
void BM_FlagRoundTrip(benchmark::State& state) {
  xhc::util::CachePadded<std::atomic<std::uint64_t>> ping;
  xhc::util::CachePadded<std::atomic<std::uint64_t>> pong;
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    std::uint64_t expected = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (ping->load(std::memory_order_acquire) >= expected) {
        pong->store(expected, std::memory_order_release);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    ping->store(seq, std::memory_order_release);
    while (pong->load(std::memory_order_acquire) < seq) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  ping->store(seq + 1, std::memory_order_release);
  peer.join();
}
BENCHMARK(BM_FlagRoundTrip);

/// Contended fetch-add: every thread hammers one counter (the sync style
/// whose scaling collapse the paper demonstrates in Fig. 4).
void BM_AtomicFetchAddContended(benchmark::State& state) {
  static xhc::util::CachePadded<std::atomic<std::uint64_t>> counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter->fetch_add(1, std::memory_order_acq_rel));
  }
}
BENCHMARK(BM_AtomicFetchAddContended)->Threads(1)->Threads(2)->Threads(4);

// --------------------------------------------------------------------------
// Virtual-time scheduler microbenchmarks: the substrate every figure bench
// runs on. Arg 0 selects the backend (0 = fiber, 1 = threads) so the
// user-space-switch vs condvar-handoff gap is measured, not asserted.

/// Two ranks leapfrogging in virtual time: every advance() hands the token
/// to the other rank, so this is pure handoff latency.
void BM_SchedHandoff(benchmark::State& state) {
  constexpr int kInner = 4096;
  label_backend(state);
  for (auto _ : state) {
    auto sched = VirtualScheduler::create(2, 0.0, backend_of(state));
    sched->run([&](int r) {
      for (int i = 0; i < kInner; ++i) sched->advance(r, 1.0);
    });
  }
  state.SetItemsProcessed(state.iterations() * kInner * 2);
}
BENCHMARK(BM_SchedHandoff)->Arg(0)->Arg(1)->UseRealTime();

/// Producer stores a flag and notifies; consumer blocks on the channel —
/// the wait_until/notify pattern every simulated collective is built from.
void BM_SchedWaitNotify(benchmark::State& state) {
  constexpr std::uint64_t kInner = 2048;
  label_backend(state);
  for (auto _ : state) {
    auto sched = VirtualScheduler::create(2, 0.0, backend_of(state));
    std::uint64_t flag = 0;
    sched->run([&](int r) {
      if (r == 0) {
        for (std::uint64_t i = 0; i < kInner; ++i) {
          flag = i + 1;
          sched->notify(&flag);
          sched->advance(0, 1.0);
        }
      } else {
        for (std::uint64_t i = 0; i < kInner; ++i) {
          sched->wait_until(1, &flag, [&]() -> std::optional<double> {
            if (flag > i) return 0.0;
            return std::nullopt;
          });
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kInner));
}
BENCHMARK(BM_SchedWaitNotify)->Arg(0)->Arg(1)->UseRealTime();

/// All n ranks advance with distinct strides, keeping the ready structure
/// full: measures the (vtime, rank)-keyed pick at paper-system rank counts.
void BM_SchedPick(benchmark::State& state) {
  constexpr int kInner = 512;
  const int n = static_cast<int>(state.range(1));
  label_backend(state);
  for (auto _ : state) {
    auto sched = VirtualScheduler::create(n, 0.0, backend_of(state));
    sched->run([&](int r) {
      const double stride = 1.0 + static_cast<double>(r) * 1e-3;
      for (int i = 0; i < kInner; ++i) sched->advance(r, stride);
    });
  }
  state.SetItemsProcessed(state.iterations() * kInner *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedPick)
    ->UseRealTime()
    ->Args({0, 8})
    ->Args({0, 64})
    ->Args({0, 160})
    ->Args({1, 8})
    ->Args({1, 64})
    ->Args({1, 160});

}  // namespace

BENCHMARK_MAIN();
