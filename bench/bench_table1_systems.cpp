// Table I — evaluation systems.
//
// Prints the three simulated platforms with their internal features, plus
// the XHC hierarchy each one yields under numa+socket sensitivity
// (Epyc-1P: 2 levels; Epyc-2P and ARM-N1: 3 levels — paper §V-C).
#include "bench/bench_common.h"
#include "topo/hierarchy.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  util::Table table({"Codename", "Cores", "NUMA", "Sockets", "Shared LLC",
                     "XHC-tree levels"});
  for (const auto name : topo::paper_systems()) {
    const topo::Topology topo = topo::by_name(name);
    const topo::RankMap map(topo, topo.n_cores(), topo::MapPolicy::kCore);
    const topo::Hierarchy hier(topo, map,
                               topo::parse_sensitivity("numa+socket"), 0);
    table.add_row({std::string(name), std::to_string(topo.n_cores()),
                   std::to_string(topo.n_numa()),
                   std::to_string(topo.n_sockets()),
                   topo.has_shared_llc() ? "yes (4-core L3)" : "no (SLC)",
                   std::to_string(hier.n_levels())});
  }
  bench::emit(args, table, "Table I: evaluation systems");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
