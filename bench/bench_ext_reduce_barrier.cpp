// Extension benchmark (paper §VII, "our ongoing work focuses on the Reduce
// primitive ... and effects regarding Barrier"): MPI_Reduce latency and
// MPI_Barrier scaling for the native XHC implementations against tuned and
// the allreduce-fallback components.
#include "bench/bench_common.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  // --- Reduce latency sweep (Epyc-2P + ARM-N1) -----------------------------
  for (const char* system : {"epyc2p", "armn1"}) {
    const std::vector<std::size_t> sizes =
        args.quick ? std::vector<std::size_t>{4096}
                   : std::vector<std::size_t>{64, 4096, 65536, 1048576};
    util::Table table({"Size", "xhc (native)", "tuned (binomial)",
                       "ucc (fallback)", "xbrc"});
    std::vector<std::vector<std::string>> rows(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
    }
    for (const char* comp_name : {"xhc", "tuned", "ucc", "xbrc"}) {
      auto machine = bench::make_system(system);
      auto comp = coll::make_component(comp_name, *machine);
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 1 : 2;
      const auto res = osu::reduce_sweep(*machine, *comp, sizes, cfg);
      for (std::size_t i = 0; i < res.size(); ++i) {
        rows[i].push_back(bench::us(res[i].avg_us));
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    bench::emit(args, table,
                std::string("Extension: MPI_Reduce latency (us), ") + system);
  }

  // --- Barrier scaling on ARM-N1 -------------------------------------------
  {
    util::Table table({"Ranks", "xhc (hierarchical flags)",
                       "tuned (dissemination)", "sm (fallback)"});
    const std::vector<int> rank_counts =
        args.quick ? std::vector<int>{40, 160}
                   : std::vector<int>{20, 40, 80, 160};
    for (const int ranks : rank_counts) {
      std::vector<std::string> row{std::to_string(ranks)};
      for (const char* comp_name : {"xhc", "tuned", "sm"}) {
        sim::SimMachine machine(topo::armn1(), ranks);
        auto comp = coll::make_component(comp_name, machine);
        osu::Config cfg;
        cfg.warmup = 1;
        cfg.iters = args.quick ? 2 : 4;
        row.push_back(
            bench::us(osu::barrier_latency_us(machine, *comp, cfg)));
      }
      table.add_row(std::move(row));
    }
    bench::emit(args, table,
                "Extension: MPI_Barrier latency (us) vs node occupancy "
                "(ARM-N1)");
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
