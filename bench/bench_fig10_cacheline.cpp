// Fig. 10 — flag cache-line sharing schemes (Epyc-1P, small broadcasts).
//
// The leader→members progress flags are laid out either packed into shared
// cache lines ("shared", closest to XHC's actual single-flag design) or one
// line per member ("separated"). With shared lines, one core per L3 group
// pulls the line and its group peers hit locally — the flat tree stays
// ahead of the hierarchical one for tiny messages. With separated lines
// every member's fetch is serviced by the leader core's port, the flat
// tree's fan-out serializes there, and the trend reverses (paper §V-D1).
//
// The coherence observatory runs with tracking always on here: the packed
// layout must cost strictly more HITM-class services + ownership transfers
// on the announce lines than the separated one (asserted below; this is the
// figure's mechanism, so a model change that loses it should fail loudly).
#include "bench/bench_common.h"
#include "core/xhc_component.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{4}
                 : std::vector<std::size_t>{4, 16, 64, 256};
  const std::string system =
      args.preset.empty() ? "epyc1p" : args.preset;

  struct Point {
    const char* sensitivity;
    coll::FlagLayout layout;
    const char* label;
  };
  const std::vector<Point> points = {
      {"flat", coll::FlagLayout::kMultiSharedLine, "flat shared"},
      {"flat", coll::FlagLayout::kMultiSeparateLines, "flat separated"},
      {"numa+socket", coll::FlagLayout::kMultiSharedLine, "tree shared"},
      {"numa+socket", coll::FlagLayout::kMultiSeparateLines,
       "tree separated"},
  };

  std::vector<std::vector<osu::SizeResult>> results(points.size());
  std::unique_ptr<obs::Observer> observer;
  std::vector<std::vector<obs::NamedHist>> hists(points.size());
  std::vector<std::string> coh_reports(points.size());
  std::vector<obs::CohReport> reports(points.size());
  std::vector<char> have_report(points.size(), 0);

  osu::run_points(points.size(), args.effective_jobs(), [&](std::size_t i) {
    auto machine = bench::make_system(system);
    coll::Tuning tuning;
    args.apply_tuning(tuning);
    tuning.sensitivity = points[i].sensitivity;
    tuning.flag_layout = points[i].layout;
    core::XhcComponent comp(*machine, tuning, "xhc-layout");
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = args.quick ? 2 : 4;
    cfg.verify = args.verify;
    if (args.observe()) {
      // Observability forces effective_jobs()==1, so sharing one Observer
      // across the four layout points stays race-free.
      if (!observer) {
        observer = std::make_unique<obs::Observer>(machine->n_ranks());
      }
      cfg.observer = observer.get();
    }
    if (args.hist_on()) cfg.size_hists = &hists[i];
    bench::wire_wait_hist(args, *machine, cfg.observer);
    bench::wire_coherence(args, *machine);
    // The announce-line assertion below needs the modeled counters even in
    // default runs; tracking never changes virtual time.
    machine->set_coh_tracking(true);
    results[i] = osu::bcast_sweep(*machine, comp, sizes, cfg);
    have_report[i] =
        machine->coh_report(&reports[i]) ? char(1) : char(0);
    coh_reports[i] = bench::coh_report_string(
        args, *machine, system + "/" + points[i].label);
  });

  util::Table table([&] {
    std::vector<std::string> header{"Size"};
    for (const Point& p : points) header.emplace_back(p.label);
    return header;
  }());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{util::Table::fmt_bytes(sizes[i])};
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      row.push_back(bench::us(results[pi][i].avg_us));
    }
    table.add_row(std::move(row));
  }
  bench::emit(args, table,
              "Fig. 10: bcast latency (us) by flag cache-line scheme, " +
                  system);
  for (const std::string& r : coh_reports) std::cout << r;
  if (args.hist_on()) {
    std::vector<std::pair<std::string, std::vector<obs::NamedHist>>> per_comp;
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      per_comp.emplace_back(points[pi].label, std::move(hists[pi]));
    }
    bench::emit_hists(args, system, per_comp, observer.get());
  }
  if (observer) {
    bench::emit_observability(args, *observer, system);
    bench::emit_critpath(args, *observer, system);
  }

  // Scenario assertion (paper Fig. 10 mechanism): across the sweep, the
  // packed announce lines must pay strictly more HITM-class coherence
  // traffic + ownership transfers than the one-line-per-member layout.
  // Fault plans perturb the publish counts, so the check only runs clean.
  if (args.faults.empty()) {
    obs::CohTotals shared_sum;
    obs::CohTotals sep_sum;
    auto add = [](obs::CohTotals& into, const obs::CohTotals& from) {
      into.hitm += from.hitm;
      into.spin_refetches += from.spin_refetches;
      into.transfers += from.transfers;
    };
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      if (have_report[pi] == 0) continue;
      add(shared_sum, obs::coh_sum_matching(reports[pi], "announce_shared"));
      add(sep_sum, obs::coh_sum_matching(reports[pi], "announce_sep"));
    }
    const std::uint64_t shared_cost =
        shared_sum.hitm_class() + shared_sum.transfers;
    const std::uint64_t sep_cost = sep_sum.hitm_class() + sep_sum.transfers;
    XHC_CHECK(shared_cost > sep_cost,
              "Fig. 10 coherence assertion: packed announce lines cost ",
              shared_cost, " HITM-class + transfers, separated cost ",
              sep_cost, " — the packed layout must be strictly worse");
    std::cout << "coherence assertion: announce_shared "
              << shared_cost << " > announce_sep " << sep_cost
              << " (HITM-class + ownership transfers)\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
