// Fig. 10 — flag cache-line sharing schemes (Epyc-1P, small broadcasts).
//
// The leader→members progress flags are laid out either packed into shared
// cache lines ("shared", closest to XHC's actual single-flag design) or one
// line per member ("separated"). With shared lines, one core per L3 group
// pulls the line and its group peers hit locally — the flat tree stays
// ahead of the hierarchical one for tiny messages. With separated lines
// every member's fetch is serviced by the leader core's port, the flat
// tree's fan-out serializes there, and the trend reverses (paper §V-D1).
#include "bench/bench_common.h"
#include "core/xhc_component.h"

static int run(int argc, char** argv) {
  using namespace xhc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{4}
                 : std::vector<std::size_t>{4, 16, 64, 256};

  util::Table table({"Size", "flat shared", "flat separated", "tree shared",
                     "tree separated"});
  std::vector<std::vector<std::string>> rows(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rows[i].push_back(util::Table::fmt_bytes(sizes[i]));
  }

  for (const char* sensitivity : {"flat", "numa+socket"}) {
    for (const coll::FlagLayout layout :
         {coll::FlagLayout::kMultiSharedLine,
          coll::FlagLayout::kMultiSeparateLines}) {
      auto machine = bench::make_system("epyc1p");
      coll::Tuning tuning;
      args.apply_tuning(tuning);
      tuning.sensitivity = sensitivity;
      tuning.flag_layout = layout;
      core::XhcComponent comp(*machine, tuning, "xhc-layout");
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = args.quick ? 2 : 4;
      const auto res = osu::bcast_sweep(*machine, comp, sizes, cfg);
      for (std::size_t i = 0; i < res.size(); ++i) {
        rows[i].push_back(bench::us(res[i].avg_us));
      }
    }
  }
  for (auto& row : rows) table.add_row(std::move(row));
  bench::emit(args, table,
              "Fig. 10: bcast latency (us) by flag cache-line scheme "
              "(Epyc-1P)");
  return 0;
}

int main(int argc, char** argv) {
  return xhc::osu::guarded_main([&] { return run(argc, argv); });
}
