#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — optionally
# under a sanitizer or the protocol verifier (each mode gets its own build
# directory).
#
#   scripts/check.sh            # plain tier-1 build + ctest (build/)
#   scripts/check.sh thread     # ThreadSanitizer       (build-tsan/)
#   scripts/check.sh address    # Address+UB sanitizer  (build-asan/)
#   scripts/check.sh undefined  # UBSan alone           (build-ubsan/)
#   scripts/check.sh verify     # XHC_VERIFY=ON ledger  (build-verify/)
#   scripts/check.sh fault      # chaos suite: fixed seed sweep (build/)
#                               # plus the same under TSan (build-tsan/)
#   scripts/check.sh bench      # perf regression gate: quick fig8+fig11+
#                               # fig10+fig4 (+ large-size fig8L/fig11L)
#                               # sweep vs BENCH_perf.json + gate self-test
#   scripts/check.sh largemsg   # large-message path gate: bandwidth-engine
#                               # tests, verified --large sweeps, quick-table
#                               # bit-identity with the paths disabled,
#                               # seeded chaos over large sizes, TSan +
#                               # threads-backend reruns
#   scripts/check.sh coherence  # coherence observatory gate: scenario
#                               # assertions, --coherence determinism,
#                               # zero-cost contract, model tests under
#                               # TSan + the threads backend
#   scripts/check.sh service    # multi-tenant service gate: svc + fault
#                               # suites, a 100k-request/8-tenant soak with
#                               # byte-determinism across reruns and the
#                               # threads backend, seeded-fault soaks
#                               # (incl. comm=-filtered clauses), a
#                               # wider-node soak, and the svc tests under
#                               # TSan
#   scripts/check.sh telemetry  # service telemetry gate: obs/svc telemetry
#                               # suites, off-path bit-identity for fig8 +
#                               # loadgen with the plane disabled, byte-
#                               # determinism of every export across reruns
#                               # and the threads backend, table invariance
#                               # with the plane attached, and the SLO gate
#                               # self-test (seeded straggler must trip it)
#   scripts/check.sh lint       # full static pass: flag-protocol lints
#                               # (incl. --selftest) + run-clang-tidy over
#                               # src/ with warnings-as-errors (skipped
#                               # with a note when clang-tidy is absent)
#   scripts/check.sh analyze    # static schedule verification: the
#                               # analyzer sweep over every preset x op x
#                               # size class (build/bench/analyze_protocol)
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   scripts/check.sh thread -R Obs
set -euo pipefail
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

mode="${1:-}"
[ $# -gt 0 ] && shift

# Quick fig8+fig11 sweep through the regression gate (DESIGN.md §
# Observatory): first the self-test proving the gate can fail, then the
# candidate-vs-committed-baseline comparison. The sweeps run on the
# deterministic simulator, so the 5% default threshold has no flake margin.
run_bench_gate() {
  local build_dir="$1"
  scripts/bench_gate_selftest.sh "$build_dir"
  if [ -f BENCH_perf.json ]; then
    local cand
    cand="$(mktemp)"
    # shellcheck disable=SC2064
    trap "rm -f '$cand'" RETURN
    scripts/bench_store.py record --out="$cand" --build="$build_dir"
    scripts/bench_compare --store=BENCH_perf.json --candidate="$cand"
  else
    echo "no BENCH_perf.json — recording a baseline (commit it)"
    scripts/bench_store.py record --build="$build_dir"
  fi
}

case "$mode" in
  "")
    build_dir=build
    cmake_args=()
    ;;
  thread)
    build_dir=build-tsan
    cmake_args=(-DXHC_SANITIZE=thread)
    ;;
  address)
    build_dir=build-asan
    cmake_args=(-DXHC_SANITIZE=address)
    ;;
  undefined)
    build_dir=build-ubsan
    cmake_args=(-DXHC_SANITIZE=undefined)
    ;;
  verify)
    build_dir=build-verify
    cmake_args=(-DXHC_VERIFY=ON)
    ;;
  fault)
    # Chaos mode: the fault/degradation suite in the plain build, a seeded
    # bench sweep proving every scenario terminates, then the same tests
    # under TSan (fiber backend, annotated switches) to keep the watchdog
    # and abort paths race-clean.
    scripts/lint_flags.sh
    cmake -B build -S .
    cmake --build build -j
    (cd build && ctest --output-on-failure -j "$(nproc)" \
      -R 'Fault|GuardedMain|RegCache' "$@")
    echo "== seeded chaos sweep: bench_fig8_bcast --fault =="
    spec='attach,prob=0.2;regmiss,prob=0.3;straggler,prob=0.2,delay=2e-6;flagdelay,prob=0.1,delay=1e-6'
    for seed in 1 7 42 1337 12648430; do
      build/bench/bench_fig8_bcast --quick --preset=mini8 \
        --fault="$spec" --fault-seed="$seed" > /dev/null
      echo "seed $seed: ok"
    done
    cmake -B build-tsan -S . -DXHC_SANITIZE=thread
    cmake --build build-tsan -j
    (cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
      -R 'Fault|GuardedMain' "$@")
    exit 0
    ;;
  bench)
    cmake -B build -S .
    cmake --build build -j
    run_bench_gate build
    exit 0
    ;;
  largemsg)
    # Large-message path gate (DESIGN.md § Large-message paths): the
    # bandwidth-engine test groups, result-verified --large sweeps of the
    # allreduce and bcast benches, a bit-identity check that the quick
    # (below-threshold) tables are unchanged when the large paths are force
    # disabled, a seeded chaos sweep over large sizes, and the same test
    # groups again under the threads backend and TSan.
    scripts/lint_flags.sh
    cmake -B build -S .
    cmake --build build -j
    largemsg_tests='LargeMsg|Collectives|ReduceKernels|ShardPlan|Partition|ShardSchedule|Reduce\.'
    (cd build && ctest --output-on-failure -j "$(nproc)" \
      -R "$largemsg_tests" "$@")
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    echo "== result-verified large sweeps =="
    build/bench/bench_fig11_allreduce --quick --large --verify \
      --preset=epyc2p > /dev/null
    build/bench/bench_fig8_bcast --quick --large --verify \
      --preset=epyc2p > /dev/null
    # Tiny grids with the thresholds pulled down: the nested schedule and
    # striping run on every size of the quick sweep under verification.
    build/bench/bench_fig11_allreduce --quick --verify --preset=mini8 \
      --tune=xhc_rs_ag_threshold=4096 > /dev/null
    build/bench/bench_fig8_bcast --quick --verify --preset=mini16 \
      --tune=xhc_stripe_threshold=4096 > /dev/null
    echo "verified sweeps: ok"
    echo "== bit-identity: quick tables unchanged with large paths off =="
    for fig in fig8_bcast fig11_allreduce; do
      "build/bench/bench_$fig" --quick --csv --jobs=0 > "$tmp/$fig.on"
      "build/bench/bench_$fig" --quick --csv --jobs=0 \
        --tune=xhc_rs_ag_threshold=0 --tune=xhc_stripe_threshold=0 \
        > "$tmp/$fig.off"
      diff "$tmp/$fig.on" "$tmp/$fig.off"
      echo "$fig: below-threshold tables bit-identical"
    done
    echo "== seeded chaos sweep over large sizes =="
    spec='attach,prob=0.2;regmiss,prob=0.3;straggler,prob=0.2,delay=2e-6;flagdelay,prob=0.1,delay=1e-6'
    for seed in 1 42 1337; do
      build/bench/bench_fig11_allreduce --quick --large --preset=mini16 \
        --fault="$spec" --fault-seed="$seed" > /dev/null
      echo "seed $seed: ok"
    done
    echo "== threads backend =="
    (cd build && XHC_SIM_BACKEND=threads ctest --output-on-failure \
      -j "$(nproc)" -R "$largemsg_tests" "$@")
    echo "== TSan =="
    cmake -B build-tsan -S . -DXHC_SANITIZE=thread
    cmake --build build-tsan -j
    (cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
      -R "$largemsg_tests" "$@")
    echo "largemsg gate: OK"
    exit 0
    ;;
  coherence)
    # Coherence observatory gate (DESIGN.md § Coherence observatory).
    # The fig10/fig4 binaries carry always-on scenario assertions (packed
    # announce lines strictly costlier than separated; ~N ownership
    # transfers for N concurrent RMWs), so plain quick runs already gate
    # the model's mechanisms; on top of that this mode checks that
    # --coherence output is byte-deterministic across runs and --jobs,
    # that tracking never shifts virtual time (fig8 tables identical with
    # and without --coherence), and that the model tests stay clean under
    # TSan and the threads scheduler backend.
    scripts/lint_flags.sh
    cmake -B build -S .
    cmake --build build -j
    (cd build && ctest --output-on-failure -j "$(nproc)" \
      -R 'LineModel|SimMachineCoh|VerifyLayout' "$@")
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    echo "== scenario assertions + determinism: fig10 =="
    build/bench/bench_fig10_cacheline --quick --coherence > "$tmp/f10.a"
    build/bench/bench_fig10_cacheline --quick --coherence > "$tmp/f10.b"
    build/bench/bench_fig10_cacheline --quick --coherence --jobs=4 \
      > "$tmp/f10.j"
    diff "$tmp/f10.a" "$tmp/f10.b"
    diff "$tmp/f10.a" "$tmp/f10.j"
    grep -q 'coherence assertion' "$tmp/f10.a"
    echo "fig10: deterministic (repeat + --jobs=4), assertion passed"
    echo "== scenario assertions + determinism: fig4 =="
    build/bench/bench_fig4_atomics --quick --coherence > "$tmp/f4.a"
    build/bench/bench_fig4_atomics --quick --coherence --jobs=4 > "$tmp/f4.b"
    diff "$tmp/f4.a" "$tmp/f4.b"
    grep -q 'coherence assertion' "$tmp/f4.a"
    echo "fig4: deterministic (repeat + --jobs=4), assertion passed"
    echo "== zero-cost contract: fig8 tables unchanged by tracking =="
    # Single preset, so the coherence sections are strictly after the
    # latency table; blank lines are squeezed on both sides so only real
    # content is compared.
    build/bench/bench_fig8_bcast --quick --preset=mini8 \
      | awk 'NF' > "$tmp/f8.plain"
    build/bench/bench_fig8_bcast --quick --preset=mini8 --coherence \
      | sed '/^== Coherence/,$d' | awk 'NF' > "$tmp/f8.coh"
    diff "$tmp/f8.plain" "$tmp/f8.coh"
    echo "fig8: latency table identical with tracking on (report stripped)"
    echo "== threads backend =="
    XHC_SIM_BACKEND=threads build/bench/bench_fig10_cacheline --quick \
      > /dev/null
    (cd build && XHC_SIM_BACKEND=threads ctest --output-on-failure \
      -j "$(nproc)" -R 'LineModel|SimMachineCoh' "$@")
    echo "== TSan =="
    cmake -B build-tsan -S . -DXHC_SANITIZE=thread
    cmake --build build-tsan -j
    (cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
      -R 'LineModel|SimMachineCoh|VerifyLayout' "$@")
    echo "coherence gate: OK"
    exit 0
    ;;
  service)
    # Multi-tenant service gate (DESIGN.md § Multi-tenant service): the
    # svc unit/property suites plus the comm-aware fault tests, then a
    # 100k-request soak across 8 overlapping tenants on mini8 — run twice
    # and once under the threads backend, all three tables byte-identical —
    # then seeded chaos soaks (including a comm=-filtered straggler clause)
    # proving integrity holds under injected faults, a moderate soak on the
    # wider epyc2p node, and the svc + fault suites again under TSan.
    # bench_loadgen exits non-zero on any payload integrity mismatch, so
    # every soak line is a gate, not a smoke run.
    scripts/lint_flags.sh
    cmake -B build -S .
    cmake --build build -j
    (cd build && ctest --output-on-failure -j "$(nproc)" \
      -R 'Svc|FaultSpec|FaultDrop|ServiceSoakQuick' "$@")
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    echo "== 100k-request soak: 8 tenants, mini8 =="
    soak=(build/bench/bench_loadgen --preset=mini8 --comms=8
          --duration=100000 --csv --jobs=0)
    "${soak[@]}" > "$tmp/soak.a"
    "${soak[@]}" > "$tmp/soak.b"
    diff "$tmp/soak.a" "$tmp/soak.b"
    XHC_SIM_BACKEND=threads "${soak[@]}" > "$tmp/soak.t"
    diff "$tmp/soak.a" "$tmp/soak.t"
    echo "soak: clean, byte-deterministic (rerun + threads backend)"
    echo "== seeded chaos soaks =="
    spec='attach,prob=0.05;regmiss,prob=0.2;straggler,prob=0.1,delay=2e-6'
    spec+=';flagdelay,prob=0.05,delay=1e-6'
    spec+=';straggler,comm=3,prob=0.5,delay=1e-5'
    for seed in 1 42 1337; do
      build/bench/bench_loadgen --preset=mini8 --comms=8 --duration=20000 \
        --fault="$spec" --fault-seed="$seed" > /dev/null
      echo "seed $seed: ok"
    done
    echo "== wider-node soak: 8 tenants, epyc2p =="
    build/bench/bench_loadgen --preset=epyc2p --comms=8 --duration=5000 \
      > /dev/null
    echo "epyc2p: ok"
    echo "== TSan =="
    cmake -B build-tsan -S . -DXHC_SANITIZE=thread
    cmake --build build-tsan -j
    (cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
      -R 'Svc|FaultSpec|FaultDrop' "$@")
    echo "service gate: OK"
    exit 0
    ;;
  telemetry)
    # Service telemetry gate (DESIGN.md § Service telemetry plane): the
    # time-series and telemetry unit suites, the off-path contract (fig8
    # and the quick soak bit-identical with the plane disabled vs a plain
    # run; the soak's service tables unchanged when the plane is attached),
    # byte-determinism of every export (reqlog, windows JSON, interference
    # report, chrome trace) across reruns and the threads backend, and the
    # SLO gate self-test proving the monitor can fail.
    scripts/lint_flags.sh
    cmake -B build -S .
    cmake --build build -j
    (cd build && ctest --output-on-failure -j "$(nproc)" \
      -R 'Obs|SvcTelemetry|Hist|Metrics|TelemetryGateSelfTest' "$@")
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    echo "== off-path contract: quick tables with and without telemetry =="
    base=(build/bench/bench_loadgen --quick --preset=mini8 --csv --jobs=0)
    "${base[@]}" > "$tmp/soak.plain"
    # With the plane attached, the service tables (everything before the
    # interference report) must be byte-identical: recording never charges.
    "${base[@]}" --windows=0.01 --reqlog="$tmp/req.json" \
      --windows-out="$tmp/win.json" \
      | sed '/^== Interference/,$d' | awk 'NF' > "$tmp/soak.tele"
    diff <(awk 'NF' "$tmp/soak.plain") "$tmp/soak.tele"
    echo "loadgen: service tables identical with the plane attached"
    build/bench/bench_fig8_bcast --quick --preset=mini8 --csv --jobs=0 \
      > "$tmp/f8.plain"
    build/bench/bench_fig8_bcast --quick --preset=mini8 --csv --jobs=0 \
      --trace-out="$tmp/f8.trace.json" \
      | grep -v '^trace written' > "$tmp/f8.traced"
    diff "$tmp/f8.plain" "$tmp/f8.traced"
    echo "fig8: tables identical with tracing on (trace line stripped)"
    echo "== export byte-determinism: rerun + threads backend =="
    tele=(build/bench/bench_loadgen --quick --preset=mini8 --csv --jobs=0
          --windows=0.01 --slo='*:p99=5s' --metrics --hist --critpath)
    run_tele() {  # $1 = tag; exports land in a per-tag dir so names match
      mkdir -p "$tmp/$1"
      "${tele[@]}" --reqlog="$tmp/$1/req.json" \
        --windows-out="$tmp/$1/win.json" \
        --trace-out="$tmp/$1/trace.json" > "$tmp/$1/stdout"
      # Drop the export confirmation lines (their paths embed the tag).
      grep -v 'written: ' "$tmp/$1/stdout" > "$tmp/$1/stdout.cmp"
      rm "$tmp/$1/stdout"
    }
    run_tele a
    run_tele b
    (export XHC_SIM_BACKEND=threads; run_tele t)
    diff -r "$tmp/a" "$tmp/b"
    diff -r "$tmp/a" "$tmp/t"
    echo "exports: byte-deterministic (rerun + threads backend)"
    scripts/telemetry_gate_selftest.sh build
    echo "telemetry gate: OK"
    exit 0
    ;;
  lint)
    # Full static pass: the flag-protocol lints (plus their self-test, so a
    # broken rule 5 can't silently pass) and run-clang-tidy over all of
    # src/ with every finding promoted to an error. The tidy pass needs a
    # compilation database, so configure the plain build first; when the
    # tool itself is absent the pass is skipped with a note (lint_flags.sh
    # already ran its narrower clang-tidy core pass the same way).
    scripts/lint_flags.sh --selftest
    scripts/lint_flags.sh
    cmake -B build -S . > /dev/null
    tidy=""
    for t in run-clang-tidy run-clang-tidy.py; do
      if command -v "$t" > /dev/null 2>&1; then
        tidy="$t"
        break
      fi
    done
    if [ -n "$tidy" ]; then
      echo "== run-clang-tidy over src/ (warnings-as-errors) =="
      "$tidy" -p build -quiet -warnings-as-errors='*' "^$(pwd)/src/"
    else
      echo "note: run-clang-tidy not installed; skipping the enforced" >&2
      echo "tidy pass over src/ (grep lints above still gate)" >&2
    fi
    echo "lint gate: OK"
    exit 0
    ;;
  analyze)
    # Static schedule verification (DESIGN.md § Static analysis): build the
    # analyzer driver and sweep every preset x op x size class, verifying
    # single-writer discipline, monotonicity, threshold reachability,
    # deadlock-freedom (acyclicity), slot reuse, and payload coverage on
    # the pre-execution schedules. Extra args are forwarded to the driver
    # (e.g. --preset=mini8 --op=bcast --json).
    cmake -B build -S .
    cmake --build build -j --target analyze_protocol
    build/bench/analyze_protocol "$@"
    exit $?
    ;;
  *)
    echo "usage: $0" \
         "[thread|address|undefined|verify|fault|bench|largemsg|coherence|" \
         "service|lint|analyze] [ctest args...]" >&2
    exit 2
    ;;
esac

# Static pass first: raw atomic accesses on flags outside the mach layer are
# protocol escapes the runtime ledger can't see.
scripts/lint_flags.sh

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j
cd "$build_dir"
ctest --output-on-failure -j "$(nproc)" "$@"

# The virtual-time engine has two backends (fiber default; threads is the
# condvar reference). TSan builds now run the fiber backend natively via
# annotated switches, so re-run the simulation tests under the thread
# backend in both the plain and TSan modes to keep both handoff mechanisms
# covered by every check run. (ASan forces threads at compile time already;
# UBSan/verify reruns would only repeat identical single-threaded logic.)
if [ "$mode" = "" ] || [ "$mode" = thread ]; then
  echo "== re-running sim tests under XHC_SIM_BACKEND=threads =="
  XHC_SIM_BACKEND=threads ctest --output-on-failure -j "$(nproc)" \
    -R 'Sim|Backend|Sched|Collectives|Fault|Check|Svc' "$@"
fi

# The default full run also walks the quick sweeps through the perf gate.
if [ "$mode" = "" ]; then
  cd ..
  echo "== bench regression gate =="
  run_bench_gate "$build_dir"
fi
