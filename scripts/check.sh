#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — optionally
# under a sanitizer or the protocol verifier (each mode gets its own build
# directory).
#
#   scripts/check.sh            # plain tier-1 build + ctest (build/)
#   scripts/check.sh thread     # ThreadSanitizer       (build-tsan/)
#   scripts/check.sh address    # Address+UB sanitizer  (build-asan/)
#   scripts/check.sh undefined  # UBSan alone           (build-ubsan/)
#   scripts/check.sh verify     # XHC_VERIFY=ON ledger  (build-verify/)
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   scripts/check.sh thread -R Obs
set -euo pipefail
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

mode="${1:-}"
[ $# -gt 0 ] && shift

case "$mode" in
  "")
    build_dir=build
    cmake_args=()
    ;;
  thread)
    build_dir=build-tsan
    cmake_args=(-DXHC_SANITIZE=thread)
    ;;
  address)
    build_dir=build-asan
    cmake_args=(-DXHC_SANITIZE=address)
    ;;
  undefined)
    build_dir=build-ubsan
    cmake_args=(-DXHC_SANITIZE=undefined)
    ;;
  verify)
    build_dir=build-verify
    cmake_args=(-DXHC_VERIFY=ON)
    ;;
  *)
    echo "usage: $0 [thread|address|undefined|verify] [ctest args...]" >&2
    exit 2
    ;;
esac

# Static pass first: raw atomic accesses on flags outside the mach layer are
# protocol escapes the runtime ledger can't see.
scripts/lint_flags.sh

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j
cd "$build_dir"
ctest --output-on-failure -j "$(nproc)" "$@"

# The virtual-time engine has two backends (fiber default; threads is the
# condvar reference). TSan builds now run the fiber backend natively via
# annotated switches, so re-run the simulation tests under the thread
# backend in both the plain and TSan modes to keep both handoff mechanisms
# covered by every check run. (ASan forces threads at compile time already;
# UBSan/verify reruns would only repeat identical single-threaded logic.)
if [ "$mode" = "" ] || [ "$mode" = thread ]; then
  echo "== re-running sim tests under XHC_SIM_BACKEND=threads =="
  XHC_SIM_BACKEND=threads ctest --output-on-failure -j "$(nproc)" \
    -R 'Sim|Backend|Sched|Collectives' "$@"
fi
