#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — optionally
# under a sanitizer (each sanitizer gets its own build directory).
#
#   scripts/check.sh            # plain tier-1 build + ctest (build/)
#   scripts/check.sh thread     # ThreadSanitizer       (build-tsan/)
#   scripts/check.sh address    # Address+UB sanitizer  (build-asan/)
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   scripts/check.sh thread -R Obs
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
[ $# -gt 0 ] && shift

case "$mode" in
  "")
    build_dir=build
    cmake_args=()
    ;;
  thread)
    build_dir=build-tsan
    cmake_args=(-DXHC_SANITIZE=thread)
    ;;
  address)
    build_dir=build-asan
    cmake_args=(-DXHC_SANITIZE=address)
    ;;
  *)
    echo "usage: $0 [thread|address] [ctest args...]" >&2
    exit 2
    ;;
esac

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j
cd "$build_dir"
ctest --output-on-failure -j "$(nproc)" "$@"

# The virtual-time engine has two backends (fiber default; threads is the
# TSan-friendly reference — sanitizer builds already force it at compile
# time). In the plain build, re-run the simulation tests under the thread
# backend so both handoff mechanisms stay covered by every check run.
if [ "$mode" = "" ]; then
  echo "== re-running sim tests under XHC_SIM_BACKEND=threads =="
  XHC_SIM_BACKEND=threads ctest --output-on-failure -j "$(nproc)" \
    -R 'Sim|Backend|Sched|Collectives' "$@"
fi
