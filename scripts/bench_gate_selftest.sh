#!/usr/bin/env bash
# Proves the regression gate actually gates: against a freshly recorded
# baseline, a clean re-run must pass bench_compare and a seeded straggler
# injection (every op on every rank delayed 50 us) must fail it. Runs on the
# deterministic simulator, so the clean comparison is exact and the test has
# no flake margin. Used by `scripts/check.sh bench` and the BenchGate ctest.
#
#   scripts/bench_gate_selftest.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

common=(--build="$build" --quick --presets=mini8 --k=1)

echo "== bench gate self-test ($build, mini8) =="
scripts/bench_store.py record --store="$tmp/store.json" "${common[@]}" \
  --note="selftest baseline"

scripts/bench_store.py record --out="$tmp/clean.json" "${common[@]}"
scripts/bench_compare --store="$tmp/store.json" --candidate="$tmp/clean.json"

scripts/bench_store.py record --out="$tmp/slow.json" "${common[@]}" \
  --fault='straggler,prob=1,delay=5e-5'
if scripts/bench_compare --store="$tmp/store.json" \
    --candidate="$tmp/slow.json"; then
  echo "bench gate self-test: FAIL — straggler candidate passed the gate" >&2
  exit 1
fi
echo "bench gate self-test: ok (clean passes, straggler fails)"
