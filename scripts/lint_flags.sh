#!/usr/bin/env bash
# Static companion to the runtime protocol verifier (src/verify/): the
# ledger can only judge flag traffic that flows through the Machine flag
# API, so this pass rejects code that touches mach::Flag's atomic directly
# or reaches for seq_cst (the paper's protocol is release/acquire plus
# whitelisted acq_rel RMW — a seq_cst access is always a smell here).
#
#   scripts/lint_flags.sh             # grep passes + clang-tidy (if installed)
#   scripts/lint_flags.sh --selftest  # prove rule 5 can fail: a seeded
#                                     # unregistered wait must be rejected
#
# Exits nonzero on any violation.
set -euo pipefail
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

# --- rule 5 machinery (defined early so --selftest can reuse it) -----------
#
# Registered flag fields: every identifier that appears as the flag operand
# of a verify::Ledger::register_flag call (src/verify/layout.cpp for the
# XHC control blocks, plus the shm/p2p components' and the service layer's
# own registrations).
reg_fields=$(grep -RhoE 'register_flag\(&\*?[A-Za-z_][A-Za-z0-9_>.-]*' \
    src/verify src/core src/base src/p2p src/smsc src/svc 2> /dev/null \
  | sed -E 's/.*[.>]([A-Za-z_][A-Za-z0-9_]*)$/\1/' \
  | grep -vE '[(&*]' | sort -u)
fields_re=$(echo "$reg_fields" | paste -sd'|' -)

# Every blocking wait site must name a ledger-registered flag: the wait's
# flag operand has to reference one of the registered control-block fields.
# A wait on a scratch flag is invisible to both the runtime ledger and the
# static schedule analyzer (src/check/), so the deadlock/threshold analyses
# would silently lose coverage. Excluded: src/mach + src/sim (the machine
# implementations the API bottoms out in), src/check (the interpreter
# replays model events on fresh flags it registers itself at runtime), and
# the tenant forwarding shims in src/svc/tenant.h (pure pass-throughs to
# the parent machine; the flag operand is a parameter, and the real wait
# sites behind them are linted where they occur).
check_wait_sites() {
  local root="$1"
  local sites bad=""
  sites=$(grep -RnE 'flag_wait_ge\(' "$root/src" 2> /dev/null \
    | grep -vE "^$root/src/(mach|sim|check)/" \
    | grep -vE "^$root/src/svc/tenant\.h:" \
    | grep -vE ':[0-9]+: *(//|\*|///)' || true)
  while IFS= read -r line; do
    [ -z "$line" ] && continue
    if ! echo "$line" | grep -qE "flag_wait_ge\([^,]*\b($fields_re)\b"; then
      bad+="$line"$'\n'
    fi
  done <<< "$sites"
  if [ -n "$bad" ]; then
    echo "error: blocking wait on a flag that is never registered with the" >&2
    echo "verify ledger (register it so the protocol ledger and the static" >&2
    echo "schedule analyzer can see it):" >&2
    printf '%s' "$bad" >&2
    return 1
  fi
  return 0
}

if [ "${1:-}" = "--selftest" ]; then
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/src/core"
  cat > "$tmp/src/core/seeded.cpp" << 'EOF'
void seeded(xhc::mach::Ctx& ctx, xhc::mach::Flag& scratch) {
  ctx.flag_wait_ge(scratch, 1);  // seeded violation: unregistered flag
}
EOF
  if check_wait_sites "$tmp" > /dev/null 2>&1; then
    echo "lint_flags --selftest: FAILED (seeded unregistered wait passed)" >&2
    exit 1
  fi
  cat > "$tmp/src/core/seeded.cpp" << 'EOF'
void fine(xhc::mach::Ctx& ctx, xhc::core::GroupCtl& ctl) {
  ctx.flag_wait_ge(*ctl.seq[0], 1);
}
EOF
  check_wait_sites "$tmp"
  echo "lint_flags --selftest: OK (seeded violation caught, registered wait passes)"
  exit 0
fi

fail=0

# 1. Raw atomic accesses on Flag::v are legal only inside the two Machine
#    implementations (and the Flag definition itself) — everywhere else
#    they bypass the verifier hooks.
allow='^src/mach/real_machine\.cpp|^src/mach/flag\.h|^src/sim/sim_machine\.cpp'
raw=$(grep -RnE '\.v\.(store|load|fetch_add|exchange|compare_exchange)' \
        src tests bench examples | grep -vE "$allow" || true)
if [ -n "$raw" ]; then
  echo "error: raw Flag atomic access outside the mach API (use" >&2
  echo "Ctx::flag_store/flag_read/flag_wait_ge/fetch_add so the protocol" >&2
  echo "verifier sees it):" >&2
  echo "$raw" >&2
  fail=1
fi

# 2. seq_cst has no place in the single-writer protocol: stores are
#    release, loads are acquire, RMW is acq_rel (paper §III-E).
seq=$(grep -Rn 'memory_order_seq_cst' src tests bench examples || true)
if [ -n "$seq" ]; then
  echo "error: memory_order_seq_cst found (the flag protocol is" >&2
  echo "release/acquire; see DESIGN.md § Verification):" >&2
  echo "$seq" >&2
  fail=1
fi

# 3. The coherence models' state is simulator-internal: consumers read it
#    through the Machine virtuals (set_coh_tracking / coh_report /
#    publish_coh_counters), whose delta-publishing keeps repeated publishes
#    and metrics resets double-count free. Direct LineModel / CacheModel /
#    CohStats access is legal only inside src/sim/, the layout lint's
#    private replay (src/verify/layout.*), and the models' own unit tests.
allow_coh='^src/sim/|^src/verify/layout\.(h|cpp):'
allow_coh+='|^tests/test_line_model\.cpp:|^tests/test_sim_core\.cpp:'
allow_coh+='|^[^:]+:[0-9]+: *(//|\*)'  # prose mentions in comments
coh=$(grep -RnE '\b(LineModel|CacheModel|CohStats)\b|\bcoh_stats\(' \
        src tests bench examples | grep -vE "$allow_coh" || true)
if [ -n "$coh" ]; then
  echo "error: direct coherence-model access outside the simulator (use" >&2
  echo "mach::Machine::set_coh_tracking/coh_report/publish_coh_counters" >&2
  echo "so delta publishing stays double-count free):" >&2
  echo "$coh" >&2
  fail=1
fi

# 4. Every mach::Flag field declared in the shared control blocks must be
#    registered in src/verify/layout.cpp (register_group_ctl /
#    register_shard_ctl): a flag the layout pass never sees is invisible to
#    both the protocol ledger and the false-sharing lint, so adding a field
#    without registering it silently shrinks verification coverage.
ctl_fields=$(grep -oE '(util::CachePadded<mach::Flag>|mach::Flag)\* *[A-Za-z_]+' \
               src/core/ctl.h | awk '{print $NF}' | sort -u)
unreg=""
for f in $ctl_fields; do
  if ! grep -qE "ctl\.$f\b" src/verify/layout.cpp; then
    unreg+=" $f"
  fi
done
if [ -n "$unreg" ]; then
  echo "error: mach::Flag fields in src/core/ctl.h never registered in" >&2
  echo "src/verify/layout.cpp:$unreg" >&2
  fail=1
fi

# 5. Blocking wait sites name ledger-registered flags (machinery above;
#    self-testable via --selftest).
if ! check_wait_sites .; then
  fail=1
fi

# 6. clang-tidy (.clang-tidy: bugprone-*, concurrency-*, performance-*)
#    over the verifier and machine layers, when the tool and a compilation
#    database are available. `scripts/check.sh lint` widens this to all of
#    src/ via run-clang-tidy with -warnings-as-errors.
tidy_db=""
for d in build build-verify build-tsan; do
  if [ -f "$d/compile_commands.json" ]; then
    tidy_db="$d"
    break
  fi
done
if command -v clang-tidy > /dev/null 2>&1 && [ -n "$tidy_db" ]; then
  echo "== clang-tidy (db: $tidy_db) =="
  if ! clang-tidy -p "$tidy_db" --quiet \
      src/verify/ledger.cpp src/verify/layout.cpp \
      src/mach/real_machine.cpp src/sim/sim_machine.cpp; then
    fail=1
  fi
elif ! command -v clang-tidy > /dev/null 2>&1; then
  echo "note: clang-tidy not installed; skipping the .clang-tidy pass" >&2
else
  echo "note: no compile_commands.json yet (configure a build first);" >&2
  echo "skipping the .clang-tidy pass" >&2
fi

if [ "$fail" -ne 0 ]; then
  echo "lint_flags: FAILED" >&2
  exit 1
fi
echo "lint_flags: OK"
