#!/usr/bin/env bash
# Wall-clock trajectory of the simulation substrate: times a fixed bench
# subset (fig8 on armn1, fig11 on epyc2p) under both virtual-time backends
# and with the parallel sweep enabled, then emits BENCH_sched.json at the
# repo root. Future perf PRs append to the history by re-running this.
#
#   scripts/bench_wallclock.sh [build_dir]   # default: build/
set -euo pipefail
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

build="${1:-build}"
out="BENCH_sched.json"
jobs="$(nproc)"

for bin in bench_fig8_bcast bench_fig11_allreduce; do
  if [ ! -x "$build/bench/$bin" ]; then
    echo "error: $build/bench/$bin not built (run cmake --build $build -j)" >&2
    exit 2
  fi
done

# Best-of-2 wall-clock seconds for one invocation.
time_target() {
  local backend="$1"; shift
  local best=""
  for _ in 1 2; do
    local t0 t1 secs
    t0=$(date +%s.%N)
    XHC_SIM_BACKEND="$backend" "$@" > /dev/null
    t1=$(date +%s.%N)
    secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b - a}')
    if [ -z "$best" ] || awk -v s="$secs" -v m="$best" 'BEGIN{exit !(s < m)}'
    then
      best="$secs"
    fi
  done
  echo "$best"
}

declare -A secs
for target in fig8_armn1 fig11_epyc2p; do
  case "$target" in
    fig8_armn1)  cmd=("$build/bench/bench_fig8_bcast" --preset=armn1) ;;
    fig11_epyc2p) cmd=("$build/bench/bench_fig11_allreduce" --preset=epyc2p) ;;
  esac
  for backend in fiber threads; do
    key="${target}_${backend}"
    secs[$key]=$(time_target "$backend" "${cmd[@]}")
    echo "$key: ${secs[$key]} s"
  done
  key="${target}_fiber_jobs${jobs}"
  secs[$key]=$(time_target fiber "${cmd[@]}" "--jobs=$jobs")
  echo "$key: ${secs[$key]} s"
done

ratio() { awk -v a="$1" -v b="$2" 'BEGIN{printf "%.2f", a / b}'; }

{
  echo "{"
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"host_cores\": $jobs,"
  echo "  \"wall_clock_seconds\": {"
  first=1
  for key in fig8_armn1_fiber fig8_armn1_threads "fig8_armn1_fiber_jobs$jobs" \
             fig11_epyc2p_fiber fig11_epyc2p_threads \
             "fig11_epyc2p_fiber_jobs$jobs"; do
    [ $first -eq 0 ] && echo ","
    first=0
    printf '    "%s": %s' "$key" "${secs[$key]}"
  done
  echo ""
  echo "  },"
  echo "  \"speedup_fiber_vs_threads\": {"
  echo "    \"fig8_armn1\": $(ratio "${secs[fig8_armn1_threads]}" "${secs[fig8_armn1_fiber]}"),"
  echo "    \"fig11_epyc2p\": $(ratio "${secs[fig11_epyc2p_threads]}" "${secs[fig11_epyc2p_fiber]}")"
  echo "  }"
  echo "}"
} > "$out"

echo "wrote $out"
