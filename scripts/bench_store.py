#!/usr/bin/env python3
"""Benchmark regression store: records figure sweeps into BENCH_perf.json.

Runs the per-figure bench binaries in CSV mode, parses the section tables,
reduces k repetitions to per-point medians, and appends one run entry to a
JSON store (or writes a standalone candidate file for bench_compare).

    scripts/bench_store.py record [options]

Options:
    --store=FILE     append the run to FILE (default BENCH_perf.json)
    --out=FILE       write a one-run candidate store to FILE instead
    --build=DIR      build tree holding bench/ binaries (default build)
    --targets=LIST   comma list of fig8,fig11,fig10,fig4,fig8L,fig11L,svc
                     (default all; the L variants re-run the bcast and
                     allreduce sweeps with --large appended, extending the
                     size axis to 256K/1M/4M for the bandwidth-path gate;
                     svc runs the multi-tenant service loadgen and stores
                     per-op-class latency percentiles and shed counts)
    --presets=LIST   comma list of topology presets ('' = bench defaults)
    --quick          pass --quick to the benches (default on; --full negates)
    --k=N            repetitions per target, median per point (default 3)
    --fault=SPEC     forward a fault-injection spec (self-test lever)
    --note=TEXT      free-form annotation stored with the run

The store is {"version": 1, "runs": [...]}; each run carries a config
fingerprint (targets, presets, quick, sim backend) that bench_compare uses
to pick a comparable baseline, plus the flat point map
{"fig8/<preset>/<component>/<size>": latency_us}. The sweeps execute on the
deterministic simulator, so medians are exact and cross-machine stable.

Stdlib only; no third-party imports.
"""

import json
import os
import statistics
import subprocess
import sys
from datetime import datetime, timezone

TARGETS = {
    "fig8": ("bench_fig8_bcast", []),
    "fig11": ("bench_fig11_allreduce", []),
    "fig10": ("bench_fig10_cacheline", []),
    "fig4": ("bench_fig4_atomics", []),
    "fig8L": ("bench_fig8_bcast", ["--large"]),
    "fig11L": ("bench_fig11_allreduce", ["--large"]),
    "svc": ("bench_loadgen", []),
}


def fail(msg):
    print("bench_store: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    opts = {
        "store": "BENCH_perf.json",
        "out": None,
        "build": "build",
        "targets": "fig8,fig11,fig10,fig4,fig8L,fig11L,svc",
        "presets": "",
        "quick": True,
        "k": 3,
        "fault": "",
        "note": "",
    }
    if not argv or argv[0] != "record":
        fail("usage: bench_store.py record [--store=F|--out=F] [--build=DIR] "
             "[--targets=L] [--presets=L] [--quick|--full] [--k=N] "
             "[--fault=SPEC] [--note=TEXT]")
    for a in argv[1:]:
        if a == "--quick":
            opts["quick"] = True
        elif a == "--full":
            opts["quick"] = False
        elif a.startswith("--") and "=" in a:
            key, val = a[2:].split("=", 1)
            if key not in opts:
                fail("unknown option --%s" % key)
            opts[key] = int(val) if key == "k" else val
        else:
            fail("unrecognized argument %r" % a)
    if opts["k"] < 1:
        fail("--k must be >= 1")
    return opts


def parse_csv_sections(text, fig):
    """Yields (preset, component, size_label, latency_us) from CSV output.

    Sections look like:
        == Fig. 8: MPI_Bcast latency (us), mini8 ==
        Size,xhc,xhc-flat,...
        4,0.82,0.53,...
    fig4 keys its rows by rank count ("Ranks") and appends an "x" suffix to
    its ratio column; both are normalized here. The svc loadgen tables key
    rows by op class ("Class"). Non-section chatter (trace/hist/coherence
    notices) is skipped.
    """
    points = {}
    preset = None
    header = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("==") and "," in line:
            preset = line.rstrip("= ").rsplit(",", 1)[1].strip()
            header = None
            continue
        if preset is None or not line:
            continue
        cells = line.split(",")
        if header is None:
            if cells[0] not in ("Size", "Ranks", "Class"):
                fail("expected CSV header after section, got %r" % line)
            header = cells[1:]
            continue
        if len(cells) != len(header) + 1:
            preset = None  # section ended; trailing chatter
            continue
        size = cells[0]
        for comp, val in zip(header, cells[1:]):
            if val.endswith("x"):
                val = val[:-1]
            points["%s/%s/%s/%s" % (fig, preset, comp, size)] = float(val)
    return points


def run_target(fig, opts):
    name, extra = TARGETS[fig]
    binary = os.path.join(opts["build"], "bench", name)
    if not os.path.exists(binary):
        fail("missing bench binary %s (build first)" % binary)
    presets = [p for p in opts["presets"].split(",") if p]
    cmds = []
    if presets:
        for p in presets:
            cmds.append([binary, "--csv", "--jobs=0", "--preset=%s" % p]
                        + extra)
    else:
        cmds.append([binary, "--csv", "--jobs=0"] + extra)
    if opts["quick"]:
        for c in cmds:
            c.append("--quick")
    if opts["fault"]:
        for c in cmds:
            c.append("--fault=%s" % opts["fault"])

    reps = []
    for _ in range(opts["k"]):
        points = {}
        for cmd in cmds:
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                fail("%s exited %d:\n%s" % (" ".join(cmd), proc.returncode,
                                            proc.stderr.strip()))
            points.update(parse_csv_sections(proc.stdout, fig))
        if not points:
            fail("no CSV points parsed from %s" % " ".join(cmds[0]))
        reps.append(points)

    keys = set(reps[0])
    for r in reps[1:]:
        if set(r) != keys:
            fail("repetitions of %s produced different point sets" % fig)
    return {k: round(statistics.median(r[k] for r in reps), 4)
            for k in sorted(keys)}


def git_commit():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True)
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


def load_store(path):
    if not os.path.exists(path):
        return {"version": 1, "runs": []}
    with open(path) as f:
        store = json.load(f)
    if store.get("version") != 1 or not isinstance(store.get("runs"), list):
        fail("%s is not a version-1 bench store" % path)
    return store


def main(argv):
    opts = parse_args(argv)
    targets = [t for t in opts["targets"].split(",") if t]
    for t in targets:
        if t not in TARGETS:
            fail("unknown target %r (have: %s)" % (t, ",".join(TARGETS)))

    points = {}
    for t in targets:
        points.update(run_target(t, opts))

    run = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "commit": git_commit(),
        "config": {
            "targets": targets,
            "presets": opts["presets"],
            "quick": opts["quick"],
            "backend": os.environ.get("XHC_SIM_BACKEND", "fiber"),
            "k": opts["k"],
            "fault": opts["fault"],
        },
        "note": opts["note"],
        "points": points,
    }

    path = opts["out"] if opts["out"] else opts["store"]
    store = {"version": 1, "runs": []} if opts["out"] else load_store(path)
    store["runs"].append(run)
    with open(path, "w") as f:
        json.dump(store, f, indent=1, sort_keys=True)
        f.write("\n")
    print("bench_store: recorded %d points (%s) -> %s"
          % (len(points), "+".join(targets), path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
