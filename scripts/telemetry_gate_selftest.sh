#!/usr/bin/env bash
# Proves the SLO monitor actually gates: a clean quick soak under a tight-
# but-satisfiable p99 target must exit 0, and the same soak with a seeded
# straggler fault (2 ms delay, p=0.5) must blow the target and exit
# non-zero. Runs on the deterministic simulator, so both verdicts are exact
# and the test has no flake margin. Used by `scripts/check.sh telemetry`
# and the TelemetryGateSelfTest ctest.
#
#   scripts/telemetry_gate_selftest.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

common=("$build"/bench/bench_loadgen --quick --preset=mini8
        --windows=0.01 --slo='*:p99=5ms')

echo "== telemetry gate self-test ($build, mini8) =="
"${common[@]}" > /dev/null
echo "clean soak: SLO monitor passes (exit 0)"

if "${common[@]}" --fault='straggler,delay=2e-3,prob=0.5' > /dev/null; then
  echo "telemetry gate self-test: FAIL — straggler soak passed the SLO" >&2
  exit 1
fi
echo "straggler soak: SLO monitor trips (non-zero exit)"
echo "telemetry gate self-test: ok (clean passes, straggler fails)"
