# Empty dependencies file for simulate_node.
# This may be replaced when dependencies are built.
