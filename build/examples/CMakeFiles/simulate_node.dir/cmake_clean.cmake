file(REMOVE_RECURSE
  "CMakeFiles/simulate_node.dir/simulate_node.cpp.o"
  "CMakeFiles/simulate_node.dir/simulate_node.cpp.o.d"
  "simulate_node"
  "simulate_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
