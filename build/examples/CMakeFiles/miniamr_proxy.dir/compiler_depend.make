# Empty compiler generated dependencies file for miniamr_proxy.
# This may be replaced when dependencies are built.
