file(REMOVE_RECURSE
  "CMakeFiles/miniamr_proxy.dir/miniamr_proxy.cpp.o"
  "CMakeFiles/miniamr_proxy.dir/miniamr_proxy.cpp.o.d"
  "miniamr_proxy"
  "miniamr_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniamr_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
