file(REMOVE_RECURSE
  "../bench/bench_table1_systems"
  "../bench/bench_table1_systems.pdb"
  "CMakeFiles/bench_table1_systems.dir/bench_table1_systems.cpp.o"
  "CMakeFiles/bench_table1_systems.dir/bench_table1_systems.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
