file(REMOVE_RECURSE
  "../bench/bench_fig13_miniamr"
  "../bench/bench_fig13_miniamr.pdb"
  "CMakeFiles/bench_fig13_miniamr.dir/bench_fig13_miniamr.cpp.o"
  "CMakeFiles/bench_fig13_miniamr.dir/bench_fig13_miniamr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_miniamr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
