file(REMOVE_RECURSE
  "../bench/bench_fig4_atomics"
  "../bench/bench_fig4_atomics.pdb"
  "CMakeFiles/bench_fig4_atomics.dir/bench_fig4_atomics.cpp.o"
  "CMakeFiles/bench_fig4_atomics.dir/bench_fig4_atomics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
