file(REMOVE_RECURSE
  "../bench/bench_fig10_cacheline"
  "../bench/bench_fig10_cacheline.pdb"
  "CMakeFiles/bench_fig10_cacheline.dir/bench_fig10_cacheline.cpp.o"
  "CMakeFiles/bench_fig10_cacheline.dir/bench_fig10_cacheline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cacheline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
