# Empty dependencies file for bench_fig10_cacheline.
# This may be replaced when dependencies are built.
