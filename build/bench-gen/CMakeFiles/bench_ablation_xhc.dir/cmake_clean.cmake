file(REMOVE_RECURSE
  "../bench/bench_ablation_xhc"
  "../bench/bench_ablation_xhc.pdb"
  "CMakeFiles/bench_ablation_xhc.dir/bench_ablation_xhc.cpp.o"
  "CMakeFiles/bench_ablation_xhc.dir/bench_ablation_xhc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xhc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
