# Empty compiler generated dependencies file for bench_ablation_xhc.
# This may be replaced when dependencies are built.
