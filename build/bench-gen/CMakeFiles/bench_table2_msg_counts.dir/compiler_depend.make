# Empty compiler generated dependencies file for bench_table2_msg_counts.
# This may be replaced when dependencies are built.
