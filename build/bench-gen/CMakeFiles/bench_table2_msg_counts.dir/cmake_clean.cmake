file(REMOVE_RECURSE
  "../bench/bench_table2_msg_counts"
  "../bench/bench_table2_msg_counts.pdb"
  "CMakeFiles/bench_table2_msg_counts.dir/bench_table2_msg_counts.cpp.o"
  "CMakeFiles/bench_table2_msg_counts.dir/bench_table2_msg_counts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_msg_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
