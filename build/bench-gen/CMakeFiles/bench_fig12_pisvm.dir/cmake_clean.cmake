file(REMOVE_RECURSE
  "../bench/bench_fig12_pisvm"
  "../bench/bench_fig12_pisvm.pdb"
  "CMakeFiles/bench_fig12_pisvm.dir/bench_fig12_pisvm.cpp.o"
  "CMakeFiles/bench_fig12_pisvm.dir/bench_fig12_pisvm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pisvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
