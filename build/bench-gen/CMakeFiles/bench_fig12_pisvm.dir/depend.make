# Empty dependencies file for bench_fig12_pisvm.
# This may be replaced when dependencies are built.
