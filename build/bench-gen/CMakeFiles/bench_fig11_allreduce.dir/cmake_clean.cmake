file(REMOVE_RECURSE
  "../bench/bench_fig11_allreduce"
  "../bench/bench_fig11_allreduce.pdb"
  "CMakeFiles/bench_fig11_allreduce.dir/bench_fig11_allreduce.cpp.o"
  "CMakeFiles/bench_fig11_allreduce.dir/bench_fig11_allreduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
