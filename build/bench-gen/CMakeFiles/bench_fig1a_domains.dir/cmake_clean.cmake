file(REMOVE_RECURSE
  "../bench/bench_fig1a_domains"
  "../bench/bench_fig1a_domains.pdb"
  "CMakeFiles/bench_fig1a_domains.dir/bench_fig1a_domains.cpp.o"
  "CMakeFiles/bench_fig1a_domains.dir/bench_fig1a_domains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
