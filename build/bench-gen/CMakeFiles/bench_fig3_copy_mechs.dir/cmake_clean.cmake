file(REMOVE_RECURSE
  "../bench/bench_fig3_copy_mechs"
  "../bench/bench_fig3_copy_mechs.pdb"
  "CMakeFiles/bench_fig3_copy_mechs.dir/bench_fig3_copy_mechs.cpp.o"
  "CMakeFiles/bench_fig3_copy_mechs.dir/bench_fig3_copy_mechs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_copy_mechs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
