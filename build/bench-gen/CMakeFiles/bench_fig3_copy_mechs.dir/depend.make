# Empty dependencies file for bench_fig3_copy_mechs.
# This may be replaced when dependencies are built.
