# Empty compiler generated dependencies file for bench_fig9_mapping_root.
# This may be replaced when dependencies are built.
