file(REMOVE_RECURSE
  "../bench/bench_fig9_mapping_root"
  "../bench/bench_fig9_mapping_root.pdb"
  "CMakeFiles/bench_fig9_mapping_root.dir/bench_fig9_mapping_root.cpp.o"
  "CMakeFiles/bench_fig9_mapping_root.dir/bench_fig9_mapping_root.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mapping_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
