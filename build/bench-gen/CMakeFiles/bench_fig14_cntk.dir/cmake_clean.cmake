file(REMOVE_RECURSE
  "../bench/bench_fig14_cntk"
  "../bench/bench_fig14_cntk.pdb"
  "CMakeFiles/bench_fig14_cntk.dir/bench_fig14_cntk.cpp.o"
  "CMakeFiles/bench_fig14_cntk.dir/bench_fig14_cntk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cntk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
