# Empty compiler generated dependencies file for bench_ext_reduce_barrier.
# This may be replaced when dependencies are built.
