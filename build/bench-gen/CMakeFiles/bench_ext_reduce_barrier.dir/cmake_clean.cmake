file(REMOVE_RECURSE
  "../bench/bench_ext_reduce_barrier"
  "../bench/bench_ext_reduce_barrier.pdb"
  "CMakeFiles/bench_ext_reduce_barrier.dir/bench_ext_reduce_barrier.cpp.o"
  "CMakeFiles/bench_ext_reduce_barrier.dir/bench_ext_reduce_barrier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reduce_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
