file(REMOVE_RECURSE
  "../bench/bench_fig1b_congestion"
  "../bench/bench_fig1b_congestion.pdb"
  "CMakeFiles/bench_fig1b_congestion.dir/bench_fig1b_congestion.cpp.o"
  "CMakeFiles/bench_fig1b_congestion.dir/bench_fig1b_congestion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
