file(REMOVE_RECURSE
  "../bench/bench_fig8_bcast"
  "../bench/bench_fig8_bcast.pdb"
  "CMakeFiles/bench_fig8_bcast.dir/bench_fig8_bcast.cpp.o"
  "CMakeFiles/bench_fig8_bcast.dir/bench_fig8_bcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
