# Empty compiler generated dependencies file for bench_fig7_osu_variants.
# This may be replaced when dependencies are built.
