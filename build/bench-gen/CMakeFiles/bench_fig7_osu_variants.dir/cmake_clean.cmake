file(REMOVE_RECURSE
  "../bench/bench_fig7_osu_variants"
  "../bench/bench_fig7_osu_variants.pdb"
  "CMakeFiles/bench_fig7_osu_variants.dir/bench_fig7_osu_variants.cpp.o"
  "CMakeFiles/bench_fig7_osu_variants.dir/bench_fig7_osu_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_osu_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
