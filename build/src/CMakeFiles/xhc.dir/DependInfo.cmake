
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_common.cpp" "src/CMakeFiles/xhc.dir/apps/app_common.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/apps/app_common.cpp.o.d"
  "/root/repo/src/apps/cntk.cpp" "src/CMakeFiles/xhc.dir/apps/cntk.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/apps/cntk.cpp.o.d"
  "/root/repo/src/apps/miniamr.cpp" "src/CMakeFiles/xhc.dir/apps/miniamr.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/apps/miniamr.cpp.o.d"
  "/root/repo/src/apps/pisvm.cpp" "src/CMakeFiles/xhc.dir/apps/pisvm.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/apps/pisvm.cpp.o.d"
  "/root/repo/src/base/shm_component.cpp" "src/CMakeFiles/xhc.dir/base/shm_component.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/base/shm_component.cpp.o.d"
  "/root/repo/src/base/tuned.cpp" "src/CMakeFiles/xhc.dir/base/tuned.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/base/tuned.cpp.o.d"
  "/root/repo/src/base/ucc.cpp" "src/CMakeFiles/xhc.dir/base/ucc.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/base/ucc.cpp.o.d"
  "/root/repo/src/base/xbrc.cpp" "src/CMakeFiles/xhc.dir/base/xbrc.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/base/xbrc.cpp.o.d"
  "/root/repo/src/coll/registry.cpp" "src/CMakeFiles/xhc.dir/coll/registry.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/coll/registry.cpp.o.d"
  "/root/repo/src/coll/tuning.cpp" "src/CMakeFiles/xhc.dir/coll/tuning.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/coll/tuning.cpp.o.d"
  "/root/repo/src/core/allreduce.cpp" "src/CMakeFiles/xhc.dir/core/allreduce.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/core/allreduce.cpp.o.d"
  "/root/repo/src/core/bcast.cpp" "src/CMakeFiles/xhc.dir/core/bcast.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/core/bcast.cpp.o.d"
  "/root/repo/src/core/comm_tree.cpp" "src/CMakeFiles/xhc.dir/core/comm_tree.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/core/comm_tree.cpp.o.d"
  "/root/repo/src/core/ctl.cpp" "src/CMakeFiles/xhc.dir/core/ctl.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/core/ctl.cpp.o.d"
  "/root/repo/src/core/xhc_component.cpp" "src/CMakeFiles/xhc.dir/core/xhc_component.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/core/xhc_component.cpp.o.d"
  "/root/repo/src/mach/machine.cpp" "src/CMakeFiles/xhc.dir/mach/machine.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/mach/machine.cpp.o.d"
  "/root/repo/src/mach/real_machine.cpp" "src/CMakeFiles/xhc.dir/mach/real_machine.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/mach/real_machine.cpp.o.d"
  "/root/repo/src/osu/harness.cpp" "src/CMakeFiles/xhc.dir/osu/harness.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/osu/harness.cpp.o.d"
  "/root/repo/src/p2p/fabric.cpp" "src/CMakeFiles/xhc.dir/p2p/fabric.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/p2p/fabric.cpp.o.d"
  "/root/repo/src/sim/cache_model.cpp" "src/CMakeFiles/xhc.dir/sim/cache_model.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/sim/cache_model.cpp.o.d"
  "/root/repo/src/sim/line_model.cpp" "src/CMakeFiles/xhc.dir/sim/line_model.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/sim/line_model.cpp.o.d"
  "/root/repo/src/sim/params.cpp" "src/CMakeFiles/xhc.dir/sim/params.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/sim/params.cpp.o.d"
  "/root/repo/src/sim/resources.cpp" "src/CMakeFiles/xhc.dir/sim/resources.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/sim/resources.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/xhc.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/sim_machine.cpp" "src/CMakeFiles/xhc.dir/sim/sim_machine.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/sim/sim_machine.cpp.o.d"
  "/root/repo/src/smsc/endpoint.cpp" "src/CMakeFiles/xhc.dir/smsc/endpoint.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/smsc/endpoint.cpp.o.d"
  "/root/repo/src/smsc/mechanism.cpp" "src/CMakeFiles/xhc.dir/smsc/mechanism.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/smsc/mechanism.cpp.o.d"
  "/root/repo/src/smsc/reg_cache.cpp" "src/CMakeFiles/xhc.dir/smsc/reg_cache.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/smsc/reg_cache.cpp.o.d"
  "/root/repo/src/topo/hierarchy.cpp" "src/CMakeFiles/xhc.dir/topo/hierarchy.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/topo/hierarchy.cpp.o.d"
  "/root/repo/src/topo/mapping.cpp" "src/CMakeFiles/xhc.dir/topo/mapping.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/topo/mapping.cpp.o.d"
  "/root/repo/src/topo/presets.cpp" "src/CMakeFiles/xhc.dir/topo/presets.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/topo/presets.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/xhc.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/topo/topology.cpp.o.d"
  "/root/repo/src/util/check.cpp" "src/CMakeFiles/xhc.dir/util/check.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/util/check.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/xhc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/str.cpp" "src/CMakeFiles/xhc.dir/util/str.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/util/str.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/xhc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/xhc.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
