# Empty dependencies file for xhc.
# This may be replaced when dependencies are built.
