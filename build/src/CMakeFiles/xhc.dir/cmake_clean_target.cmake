file(REMOVE_RECURSE
  "libxhc.a"
)
