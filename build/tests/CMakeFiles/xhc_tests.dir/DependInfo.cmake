
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps_osu.cpp" "tests/CMakeFiles/xhc_tests.dir/test_apps_osu.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_apps_osu.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/xhc_tests.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_machines.cpp" "tests/CMakeFiles/xhc_tests.dir/test_machines.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_machines.cpp.o.d"
  "/root/repo/tests/test_p2p.cpp" "tests/CMakeFiles/xhc_tests.dir/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_p2p.cpp.o.d"
  "/root/repo/tests/test_reduce_barrier.cpp" "tests/CMakeFiles/xhc_tests.dir/test_reduce_barrier.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_reduce_barrier.cpp.o.d"
  "/root/repo/tests/test_sim_behavior.cpp" "tests/CMakeFiles/xhc_tests.dir/test_sim_behavior.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_sim_behavior.cpp.o.d"
  "/root/repo/tests/test_sim_core.cpp" "tests/CMakeFiles/xhc_tests.dir/test_sim_core.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_sim_core.cpp.o.d"
  "/root/repo/tests/test_sim_properties.cpp" "tests/CMakeFiles/xhc_tests.dir/test_sim_properties.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_sim_properties.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/xhc_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_smsc.cpp" "tests/CMakeFiles/xhc_tests.dir/test_smsc.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_smsc.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/xhc_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/xhc_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/xhc_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_xhc_internals.cpp" "tests/CMakeFiles/xhc_tests.dir/test_xhc_internals.cpp.o" "gcc" "tests/CMakeFiles/xhc_tests.dir/test_xhc_internals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xhc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
