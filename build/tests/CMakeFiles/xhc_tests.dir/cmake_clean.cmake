file(REMOVE_RECURSE
  "CMakeFiles/xhc_tests.dir/test_apps_osu.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_apps_osu.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_collectives.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_collectives.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_machines.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_machines.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_p2p.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_p2p.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_reduce_barrier.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_reduce_barrier.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_sim_behavior.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_sim_behavior.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_sim_core.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_sim_core.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_sim_properties.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_sim_properties.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_smoke.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_smoke.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_smsc.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_smsc.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_stress.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_stress.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_topo.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_topo.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_util.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_util.cpp.o.d"
  "CMakeFiles/xhc_tests.dir/test_xhc_internals.cpp.o"
  "CMakeFiles/xhc_tests.dir/test_xhc_internals.cpp.o.d"
  "xhc_tests"
  "xhc_tests.pdb"
  "xhc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xhc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
