# Empty dependencies file for xhc_tests.
# This may be replaced when dependencies are built.
