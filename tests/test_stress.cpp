// Randomized stress test: every component executes a seeded random sequence
// of mixed collectives (bcast / allreduce / reduce / barrier) with random
// sizes and roots, and every operation's payload is verified against a
// host-side reference. Exercises flag/sequence bookkeeping across op-type
// interleavings far beyond the targeted tests.
#include <gtest/gtest.h>

#include <cstring>

#include "coll/registry.h"
#include "mach/real_machine.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc {
namespace {

constexpr int kRanks = 16;
constexpr std::size_t kMaxElems = 2048;  // 16 KB of i64 — spans CICO,
                                         // single-chunk and multi-chunk

struct Op {
  enum Kind { kBcast, kAllreduce, kReduce, kBarrier } kind;
  std::size_t elems;
  int root;
};

std::vector<Op> make_plan(std::uint64_t seed, int n_ops) {
  util::SplitMix64 rng(seed);
  std::vector<Op> plan;
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    op.kind = static_cast<Op::Kind>(rng.next_below(4));
    // Bias toward interesting sizes: tiny, threshold-adjacent, multi-chunk.
    const std::uint64_t pick = rng.next_below(4);
    op.elems = pick == 0   ? 1 + rng.next_below(8)
               : pick == 1 ? 120 + rng.next_below(20)  // ~1 KB CICO edge
               : pick == 2 ? 1 + rng.next_below(kMaxElems)
                           : kMaxElems;
    op.root = static_cast<int>(rng.next_below(kRanks));
    plan.push_back(op);
  }
  return plan;
}

class StressTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string,
                                                 std::uint64_t>> {};

TEST_P(StressTest, MixedOpSequenceVerified) {
  const auto& [comp_name, machine_kind, seed] = GetParam();
  std::unique_ptr<mach::Machine> machine;
  if (machine_kind == "real") {
    machine = std::make_unique<mach::RealMachine>(topo::mini16(), kRanks);
  } else {
    machine = std::make_unique<sim::SimMachine>(topo::mini16(), kRanks);
  }
  auto comp = coll::make_component(comp_name, *machine);
  const std::vector<Op> plan = make_plan(seed, 24);

  // One payload buffer pair per rank, reused across every operation.
  std::vector<mach::Buffer> a;
  std::vector<mach::Buffer> b;
  for (int r = 0; r < kRanks; ++r) {
    a.emplace_back(*machine, r, kMaxElems * sizeof(std::int64_t));
    b.emplace_back(*machine, r, kMaxElems * sizeof(std::int64_t));
  }

  std::atomic<int> failures{0};
  machine->run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    util::SplitMix64 rng(seed * 1000 + static_cast<std::uint64_t>(r));
    for (std::size_t opi = 0; opi < plan.size(); ++opi) {
      const Op& op = plan[opi];
      auto* mine = static_cast<std::int64_t*>(
          a[static_cast<std::size_t>(r)].get());
      auto* out = static_cast<std::int64_t*>(
          b[static_cast<std::size_t>(r)].get());
      // Deterministic per-(op, rank) contribution, recomputable on the host.
      for (std::size_t i = 0; i < op.elems; ++i) {
        mine[i] = static_cast<std::int64_t>((opi + 1) * 100000 +
                                            static_cast<std::size_t>(r) * 331 +
                                            i * 7);
      }
      ctx.barrier();
      switch (op.kind) {
        case Op::kBcast: {
          comp->bcast(ctx, mine, op.elems * sizeof(std::int64_t), op.root);
          for (std::size_t i = 0; i < op.elems; ++i) {
            const auto want = static_cast<std::int64_t>(
                (opi + 1) * 100000 +
                static_cast<std::size_t>(op.root) * 331 + i * 7);
            if (mine[i] != want) {
              ++failures;
              return;
            }
          }
          break;
        }
        case Op::kAllreduce:
        case Op::kReduce: {
          if (op.kind == Op::kAllreduce) {
            comp->allreduce(ctx, mine, out, op.elems, mach::DType::kI64,
                            mach::ROp::kSum);
          } else {
            comp->reduce(ctx, mine, out, op.elems, mach::DType::kI64,
                         mach::ROp::kSum, op.root);
          }
          if (op.kind == Op::kAllreduce || r == op.root) {
            for (std::size_t i = 0; i < op.elems; ++i) {
              std::int64_t want = 0;
              for (int j = 0; j < kRanks; ++j) {
                want += static_cast<std::int64_t>(
                    (opi + 1) * 100000 + static_cast<std::size_t>(j) * 331 +
                    i * 7);
              }
              if (out[i] != want) {
                ++failures;
                return;
              }
            }
          }
          break;
        }
        case Op::kBarrier:
          comp->barrier(ctx);
          break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0)
      << comp_name << " on " << machine_kind << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StressTest,
    ::testing::Combine(::testing::Values("xhc", "xhc-flat", "tuned", "sm",
                                         "ucc", "smhc", "xbrc"),
                       ::testing::Values("real", "sim"),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_s" +
                         std::to_string(std::get<2>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace xhc
