// Unit tests for the util module: checks, stats, tables, strings, PRNG,
// cache-line helpers.
#include <gtest/gtest.h>

#include <sstream>
#include <cstring>

#include "util/cacheline.h"
#include "util/check.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/str.h"
#include "util/table.h"

namespace xhc::util {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    XHC_CHECK(1 == 2, "value was ", 42);
    FAIL() << "did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(XHC_CHECK(2 + 2 == 4, "fine"));
  EXPECT_NO_THROW(XHC_REQUIRE(true));
}

TEST(Stats, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MeanMinMax) {
  Stats s;
  for (const double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, VarianceMatchesDefinition) {
  Stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.9), 5.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
}

TEST(Stats, PercentileEmptyThrowsForEveryQ) {
  EXPECT_THROW(percentile({}, 0.0), Error);
  EXPECT_THROW(percentile({}, 1.0), Error);
}

TEST(Stats, PercentileRejectsNegativeQ) {
  EXPECT_THROW(percentile({1.0, 2.0}, -0.1), Error);
}

TEST(Stats, PercentileSingleSampleIsConstant) {
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 1.0), 7.5);
}

TEST(Stats, PercentileSortsUnorderedInput) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 1.0), 9.0);
}

TEST(Stats, VarianceUndefinedBelowTwoSamples) {
  Stats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.variance(), 0.0);  // n-1 denominator would divide by zero
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  s.add(42.0);  // two identical samples: defined, and exactly zero
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Table, AlignsAndCounts) {
  Table t({"A", "Bee"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("longer"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvOutput) {
  Table t({"A", "B"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "A,B\n1,2\n");
}

TEST(Table, FormatsBytes) {
  EXPECT_EQ(Table::fmt_bytes(4), "4");
  EXPECT_EQ(Table::fmt_bytes(2048), "2K");
  EXPECT_EQ(Table::fmt_bytes(3 << 20), "3M");
  EXPECT_EQ(Table::fmt_bytes(1500), "1500");  // not a whole K
}

TEST(Str, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Str, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(join({}, "+"), "");
}

TEST(Str, ParseSizeSuffixes) {
  EXPECT_EQ(parse_size("4"), 4u);
  EXPECT_EQ(parse_size("2K"), 2048u);
  EXPECT_EQ(parse_size("1m"), 1048576u);
  EXPECT_EQ(parse_size("1G"), 1073741824u);
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("K").has_value());
  EXPECT_FALSE(parse_size("12x").has_value());
}

TEST(Str, ArgsParsing) {
  const char* argv[] = {"prog", "--quick", "--n=42", "--rate=1.5"};
  Args args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("slow"));
  EXPECT_EQ(args.get_long("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 1.5);
  EXPECT_EQ(args.get("missing", "def"), "def");
}

TEST(Prng, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DoubleInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, FillPatternSeedSensitive) {
  std::vector<std::byte> a(100);
  std::vector<std::byte> b(100);
  fill_pattern(a.data(), a.size(), 1);
  fill_pattern(b.data(), b.size(), 2);
  EXPECT_NE(std::memcmp(a.data(), b.data(), a.size()), 0);
  fill_pattern(b.data(), b.size(), 1);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(Prng, FillPatternOddLengths) {
  // Exercise the sub-word tail path.
  for (const std::size_t len : {1u, 3u, 7u, 9u, 15u}) {
    std::vector<std::byte> buf(len + 1, std::byte{0xEE});
    fill_pattern(buf.data(), len, 5);
    EXPECT_EQ(buf[len], std::byte{0xEE}) << "overwrote past end, len=" << len;
  }
}

TEST(Cacheline, PaddedSizeIsLineMultiple) {
  EXPECT_EQ(sizeof(CachePadded<std::uint64_t>) % kCacheLine, 0u);
  EXPECT_EQ(sizeof(CachePadded<char>), kCacheLine);
  struct Big {
    char data[100];
  };
  EXPECT_EQ(sizeof(CachePadded<Big>) % kCacheLine, 0u);
}

TEST(Cacheline, LineOfGroupsNeighbours) {
  alignas(64) char buf[128];
  EXPECT_EQ(line_of(&buf[0]), line_of(&buf[63]));
  EXPECT_NE(line_of(&buf[0]), line_of(&buf[64]));
}

}  // namespace
}  // namespace xhc::util
