// Parameterized correctness tests for every collective component, across
// machines, topologies, payload sizes, roots, datatypes and reduction
// operators — the functional contract all of the paper's experiments
// depend on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <tuple>

#include "coll/registry.h"
#include "coll/tuning.h"
#include "mach/real_machine.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc {
namespace {

std::unique_ptr<mach::Machine> make_machine(const std::string& kind,
                                            const topo::Topology& topo,
                                            int ranks) {
  if (kind == "real") {
    return std::make_unique<mach::RealMachine>(topo, ranks);
  }
  return std::make_unique<sim::SimMachine>(topo, ranks);
}

// ---------------------------------------------------------------------------
// Bcast: component x machine x size (mini16, roots 0 and 5)

using BcastParam = std::tuple<std::string, std::string, std::size_t>;

class BcastCorrectness : public ::testing::TestWithParam<BcastParam> {};

TEST_P(BcastCorrectness, PayloadReachesEveryRank) {
  const auto& [comp_name, machine_kind, bytes] = GetParam();
  for (const int root : {0, 5}) {
    auto machine = make_machine(machine_kind, topo::mini16(), 16);
    auto comp = coll::make_component(comp_name, *machine);
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < 16; ++r) bufs.emplace_back(*machine, r, bytes);
    util::fill_pattern(bufs[static_cast<std::size_t>(root)].get(), bytes,
                       0xBC + static_cast<std::uint64_t>(root));

    machine->run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  bytes, root);
    });

    std::vector<std::byte> expect(bytes);
    util::fill_pattern(expect.data(), bytes,
                       0xBC + static_cast<std::uint64_t>(root));
    for (int r = 0; r < 16; ++r) {
      ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                            expect.data(), bytes),
                0)
          << comp_name << " on " << machine_kind << ", root " << root
          << ", rank " << r << ", " << bytes << " B";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BcastCorrectness,
    ::testing::Combine(
        ::testing::Values("xhc", "xhc-flat", "tuned", "sm", "ucc", "smhc",
                          "smhc-flat", "xbrc"),
        ::testing::Values("real", "sim"),
        // 1 B, the CICO threshold edge (1 KB +/- 1), a pipeline chunk
        // boundary, several chunks, an odd large size, and a size past the
        // default 128 KiB stripe threshold (the striped bcast path).
        ::testing::Values(std::size_t{1}, std::size_t{1023},
                          std::size_t{1024}, std::size_t{1025},
                          std::size_t{16384}, std::size_t{100000},
                          std::size_t{200000})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         std::to_string(std::get<2>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Allreduce: component x machine x count

using AllreduceParam = std::tuple<std::string, std::string, std::size_t>;

class AllreduceCorrectness
    : public ::testing::TestWithParam<AllreduceParam> {};

TEST_P(AllreduceCorrectness, SumOfI64) {
  const auto& [comp_name, machine_kind, count] = GetParam();
  auto machine = make_machine(machine_kind, topo::mini16(), 16);
  auto comp = coll::make_component(comp_name, *machine);
  const std::size_t bytes = count * sizeof(std::int64_t);
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  std::vector<std::int64_t> expect(count, 0);
  for (int r = 0; r < 16; ++r) {
    sbufs.emplace_back(*machine, r, bytes);
    rbufs.emplace_back(*machine, r, bytes);
    auto* s = static_cast<std::int64_t*>(sbufs.back().get());
    for (std::size_t i = 0; i < count; ++i) {
      s[i] = static_cast<std::int64_t>((r + 3) * 7 + i * 13);
      expect[i] += s[i];
    }
  }

  machine->run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                    mach::DType::kI64, mach::ROp::kSum);
  });

  for (int r = 0; r < 16; ++r) {
    const auto* got = static_cast<const std::int64_t*>(
        rbufs[static_cast<std::size_t>(r)].get());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], expect[i])
          << comp_name << " on " << machine_kind << ", rank " << r
          << ", elem " << i << "/" << count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllreduceCorrectness,
    ::testing::Combine(
        ::testing::Values("xhc", "xhc-flat", "tuned", "sm", "ucc", "smhc",
                          "smhc-flat", "xbrc"),
        ::testing::Values("real", "sim"),
        // 1 element, CICO-threshold edge (128 x 8B = 1 KB), chunk-crossing
        // counts, a non-divisible odd count, and a count past the default
        // 128 KiB rs_ag threshold (the reduce-scatter + allgather path).
        ::testing::Values(std::size_t{1}, std::size_t{128}, std::size_t{129},
                          std::size_t{5000}, std::size_t{12289},
                          std::size_t{40000})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         std::to_string(std::get<2>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Cross-cutting properties

class ComponentProps : public ::testing::TestWithParam<std::string> {};

TEST_P(ComponentProps, InPlaceAllreduce) {
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  constexpr std::size_t kCount = 700;
  std::vector<mach::Buffer> bufs;
  std::vector<std::int64_t> expect(kCount, 0);
  for (int r = 0; r < 8; ++r) {
    bufs.emplace_back(*machine, r, kCount * sizeof(std::int64_t));
    auto* s = static_cast<std::int64_t*>(bufs.back().get());
    for (std::size_t i = 0; i < kCount; ++i) {
      s[i] = static_cast<std::int64_t>(r * 100 + i);
      expect[i] += s[i];
    }
  }
  machine->run([&](mach::Ctx& ctx) {
    void* buf = bufs[static_cast<std::size_t>(ctx.rank())].get();
    comp->allreduce(ctx, buf, buf, kCount, mach::DType::kI64, mach::ROp::kSum);
  });
  for (int r = 0; r < 8; ++r) {
    const auto* got = static_cast<const std::int64_t*>(
        bufs[static_cast<std::size_t>(r)].get());
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(got[i], expect[i]) << GetParam() << " rank " << r;
    }
  }
}

TEST_P(ComponentProps, MinMaxProdOperators) {
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  constexpr std::size_t kCount = 64;
  for (const mach::ROp op : {mach::ROp::kMin, mach::ROp::kMax,
                             mach::ROp::kProd}) {
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    std::vector<double> expect(kCount);
    for (int r = 0; r < 8; ++r) {
      sbufs.emplace_back(*machine, r, kCount * sizeof(double));
      rbufs.emplace_back(*machine, r, kCount * sizeof(double));
      auto* s = static_cast<double*>(sbufs.back().get());
      for (std::size_t i = 0; i < kCount; ++i) {
        s[i] = 1.0 + static_cast<double>((r * 31 + i * 7) % 5) / 4.0;
        if (r == 0) {
          expect[i] = s[i];
        } else {
          switch (op) {
            case mach::ROp::kMin:
              expect[i] = std::min(expect[i], s[i]);
              break;
            case mach::ROp::kMax:
              expect[i] = std::max(expect[i], s[i]);
              break;
            default:
              expect[i] *= s[i];
              break;
          }
        }
      }
    }
    machine->run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kF64, op);
    });
    for (int r = 0; r < 8; ++r) {
      const auto* got = static_cast<const double*>(
          rbufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_DOUBLE_EQ(got[i], expect[i])
            << GetParam() << " op " << static_cast<int>(op) << " rank " << r;
      }
    }
  }
}

TEST_P(ComponentProps, BackToBackMixedOperations) {
  // Alternating bcasts and allreduces reuse the same control structures;
  // sequence/base bookkeeping must keep them apart.
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  constexpr std::size_t kBytes = 3000;
  constexpr std::size_t kCount = 400;
  std::vector<mach::Buffer> bufs;
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < 8; ++r) {
    bufs.emplace_back(*machine, r, kBytes);
    sbufs.emplace_back(*machine, r, kCount * sizeof(std::int64_t));
    rbufs.emplace_back(*machine, r, kCount * sizeof(std::int64_t));
  }
  std::atomic<int> failures{0};
  machine->run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    for (int round = 0; round < 5; ++round) {
      if (ctx.rank() == 0) {
        ctx.write_payload(bufs[0].get(), kBytes,
                          static_cast<std::uint64_t>(round));
      }
      ctx.barrier();
      comp->bcast(ctx, bufs[r].get(), kBytes, 0);
      std::vector<std::byte> expect(kBytes);
      util::fill_pattern(expect.data(), kBytes,
                         static_cast<std::uint64_t>(round));
      if (std::memcmp(bufs[r].get(), expect.data(), kBytes) != 0) ++failures;

      auto* s = static_cast<std::int64_t*>(sbufs[r].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        s[i] = static_cast<std::int64_t>(ctx.rank() + round);
      }
      ctx.barrier();
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kI64, mach::ROp::kSum);
      const auto* got = static_cast<const std::int64_t*>(rbufs[r].get());
      const std::int64_t want = 8 * round + 28;  // sum of ranks 0..7 + round
      for (std::size_t i = 0; i < kCount; ++i) {
        if (got[i] != want) {
          ++failures;
          break;
        }
      }
    }
  });
  EXPECT_EQ(failures.load(), 0) << GetParam();
}

TEST_P(ComponentProps, SingleRankDegenerates) {
  auto machine = make_machine("real", topo::flat(1), 1);
  auto comp = coll::make_component(GetParam(), *machine);
  mach::Buffer buf(*machine, 0, 64);
  mach::Buffer sbuf(*machine, 0, 8 * sizeof(double));
  mach::Buffer rbuf(*machine, 0, 8 * sizeof(double));
  auto* s = static_cast<double*>(sbuf.get());
  for (int i = 0; i < 8; ++i) s[i] = i;
  machine->run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, buf.get(), 64, 0);
    comp->allreduce(ctx, sbuf.get(), rbuf.get(), 8, mach::DType::kF64,
                    mach::ROp::kSum);
  });
  const auto* got = static_cast<const double*>(rbuf.get());
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(got[i], s[i]);
}

TEST_P(ComponentProps, ZeroBytesIsANoOp) {
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  mach::Buffer buf(*machine, 0, 64);
  EXPECT_NO_THROW(machine->run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, buf.get(), 0, 0);
    comp->allreduce(ctx, buf.get(), buf.get(), 0, mach::DType::kF64,
                    mach::ROp::kSum);
  }));
}

INSTANTIATE_TEST_SUITE_P(AllComponents, ComponentProps,
                         ::testing::Values("xhc", "xhc-flat", "tuned", "sm",
                                           "ucc", "smhc", "smhc-flat",
                                           "xbrc"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Large-message paths (DESIGN.md § Large-message paths): XHC with lowered
// dispatch thresholds, so the reduce-scatter + allgather allreduce and the
// striped bcast run at test-sized payloads across presets and both machines.

using LargeParam = std::tuple<std::string, std::string>;  // preset, machine

class LargeMsgPaths : public ::testing::TestWithParam<LargeParam> {
 protected:
  static std::unique_ptr<mach::Machine> machine(const LargeParam& p) {
    topo::Topology topo = topo::by_name(std::get<0>(p));
    const int ranks = topo.n_cores();
    return make_machine(std::get<1>(p), topo, ranks);
  }
  static coll::Tuning tuning(std::size_t threshold) {
    coll::Tuning t;
    t.rs_ag_threshold = threshold;
    t.stripe_threshold = threshold;
    return t;
  }
};

TEST_P(LargeMsgPaths, AllreduceSumExactAcrossThresholdStraddle) {
  auto m = machine(GetParam());
  const int n = m->n_ranks();
  auto comp = coll::make_component("xhc", *m, tuning(4096));
  // 511 x 8 B sits just below the lowered threshold (latency path), 513
  // just above (RS+AG path); the larger counts cross chunk boundaries and
  // partition remainders.
  for (const std::size_t count : {std::size_t{511}, std::size_t{513},
                                  std::size_t{3000}, std::size_t{12289}}) {
    const std::size_t bytes = count * sizeof(std::int64_t);
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    std::vector<std::int64_t> expect(count, 0);
    for (int r = 0; r < n; ++r) {
      sbufs.emplace_back(*m, r, bytes);
      rbufs.emplace_back(*m, r, bytes);
      auto* s = static_cast<std::int64_t*>(sbufs.back().get());
      for (std::size_t i = 0; i < count; ++i) {
        s[i] = static_cast<std::int64_t>((r + 3) * 7 + i * 13);
        expect[i] += s[i];
      }
    }
    m->run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                      mach::DType::kI64, mach::ROp::kSum);
    });
    for (int r = 0; r < n; ++r) {
      const auto* got = static_cast<const std::int64_t*>(
          rbufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[i], expect[i])
            << std::get<0>(GetParam()) << "/" << std::get<1>(GetParam())
            << ", rank " << r << ", elem " << i << "/" << count;
      }
    }
  }
}

TEST_P(LargeMsgPaths, AllreduceEmptyShardEdge) {
  // Threshold 8 with a tiny element count: bytes > threshold engages the
  // RS+AG path while most ranks' final shards are empty — the partition
  // remainder edge where wait thresholds and flag snaps must still line up.
  auto m = machine(GetParam());
  const int n = m->n_ranks();
  auto comp = coll::make_component("xhc", *m, tuning(8));
  for (const std::size_t count : {std::size_t{3}, std::size_t{17}}) {
    const std::size_t bytes = count * sizeof(std::int64_t);
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    std::vector<std::int64_t> expect(count, 0);
    for (int r = 0; r < n; ++r) {
      sbufs.emplace_back(*m, r, bytes);
      rbufs.emplace_back(*m, r, bytes);
      auto* s = static_cast<std::int64_t*>(sbufs.back().get());
      for (std::size_t i = 0; i < count; ++i) {
        s[i] = static_cast<std::int64_t>(r * 17 + static_cast<int>(i) + 1);
        expect[i] += s[i];
      }
    }
    m->run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                      mach::DType::kI64, mach::ROp::kSum);
    });
    for (int r = 0; r < n; ++r) {
      const auto* got = static_cast<const std::int64_t*>(
          rbufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[i], expect[i]) << "count " << count << ", rank " << r;
      }
    }
  }
}

TEST_P(LargeMsgPaths, AllreduceInPlaceAndNonSumOps) {
  auto m = machine(GetParam());
  const int n = m->n_ranks();
  auto comp = coll::make_component("xhc", *m, tuning(4096));
  constexpr std::size_t kCount = 3001;

  // In-place i64 sum on the RS+AG path (stage-0 peers read disjoint source
  // ranges, so sbuf == rbuf must be safe).
  {
    std::vector<mach::Buffer> bufs;
    std::vector<std::int64_t> expect(kCount, 0);
    for (int r = 0; r < n; ++r) {
      bufs.emplace_back(*m, r, kCount * sizeof(std::int64_t));
      auto* s = static_cast<std::int64_t*>(bufs.back().get());
      for (std::size_t i = 0; i < kCount; ++i) {
        s[i] = static_cast<std::int64_t>(r * 100 + static_cast<int>(i % 97));
        expect[i] += s[i];
      }
    }
    m->run([&](mach::Ctx& ctx) {
      void* buf = bufs[static_cast<std::size_t>(ctx.rank())].get();
      comp->allreduce(ctx, buf, buf, kCount, mach::DType::kI64,
                      mach::ROp::kSum);
    });
    for (int r = 0; r < n; ++r) {
      const auto* got = static_cast<const std::int64_t*>(
          bufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(got[i], expect[i]) << "in-place, rank " << r;
      }
    }
  }

  // min/max/prod on f64 with power-of-two operands: exact in any
  // association, so the hierarchical order change cannot hide behind a
  // tolerance.
  for (const mach::ROp op :
       {mach::ROp::kMin, mach::ROp::kMax, mach::ROp::kProd}) {
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    std::vector<double> expect(kCount);
    for (int r = 0; r < n; ++r) {
      sbufs.emplace_back(*m, r, kCount * sizeof(double));
      rbufs.emplace_back(*m, r, kCount * sizeof(double));
      auto* s = static_cast<double*>(sbufs.back().get());
      for (std::size_t i = 0; i < kCount; ++i) {
        const int e = static_cast<int>((r * 31 + i * 7) % 3) - 1;
        s[i] = std::ldexp(1.0, e);  // 0.5, 1, or 2
        if (r == 0) {
          expect[i] = s[i];
        } else if (op == mach::ROp::kMin) {
          expect[i] = std::min(expect[i], s[i]);
        } else if (op == mach::ROp::kMax) {
          expect[i] = std::max(expect[i], s[i]);
        } else {
          expect[i] *= s[i];
        }
      }
    }
    m->run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kF64, op);
    });
    for (int r = 0; r < n; ++r) {
      const auto* got = static_cast<const double*>(
          rbufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(got[i], expect[i])
            << "op " << static_cast<int>(op) << ", rank " << r;
      }
    }
  }
}

TEST_P(LargeMsgPaths, BcastStripedPayloadIntegrity) {
  auto m = machine(GetParam());
  const int n = m->n_ranks();
  auto comp = coll::make_component("xhc", *m, tuning(4096));
  // Straddle the lowered threshold (4096 stays on the latency path, 4097
  // stripes) plus an odd many-chunk size; roots at both hierarchy extremes.
  for (const std::size_t bytes : {std::size_t{4096}, std::size_t{4097},
                                  std::size_t{100003}}) {
    for (const int root : {0, n - 1}) {
      std::vector<mach::Buffer> bufs;
      for (int r = 0; r < n; ++r) bufs.emplace_back(*m, r, bytes);
      util::fill_pattern(bufs[static_cast<std::size_t>(root)].get(), bytes,
                         0x51 + static_cast<std::uint64_t>(root));
      m->run([&](mach::Ctx& ctx) {
        comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                    bytes, root);
      });
      std::vector<std::byte> expect(bytes);
      util::fill_pattern(expect.data(), bytes,
                         0x51 + static_cast<std::uint64_t>(root));
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                              expect.data(), bytes),
                  0)
            << std::get<0>(GetParam()) << ", root " << root << ", rank " << r
            << ", " << bytes << " B";
      }
    }
  }
}

TEST_P(LargeMsgPaths, MixedLargeAndSmallOpsInterleave) {
  // Alternating large (RS+AG / striped) and small (latency path) ops on one
  // component: the shard/stripe base bookkeeping must keep the timelines of
  // consecutive ops apart even when the dispatch flips between paths.
  auto m = machine(GetParam());
  const int n = m->n_ranks();
  auto comp = coll::make_component("xhc", *m, tuning(4096));
  constexpr std::size_t kBig = 2000;   // x8 B = 16000 B: large path
  constexpr std::size_t kSmall = 300;  // x8 B = 2400 B: latency path
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  std::vector<mach::Buffer> bbufs;
  for (int r = 0; r < n; ++r) {
    sbufs.emplace_back(*m, r, kBig * sizeof(std::int64_t));
    rbufs.emplace_back(*m, r, kBig * sizeof(std::int64_t));
    bbufs.emplace_back(*m, r, 9000);
  }
  std::atomic<int> failures{0};
  m->run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    for (int round = 0; round < 4; ++round) {
      const std::size_t count = (round % 2 == 0) ? kBig : kSmall;
      auto* s = static_cast<std::int64_t*>(sbufs[r].get());
      for (std::size_t i = 0; i < count; ++i) {
        s[i] = static_cast<std::int64_t>(ctx.rank() + round);
      }
      ctx.barrier();
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                      mach::DType::kI64, mach::ROp::kSum);
      const auto* got = static_cast<const std::int64_t*>(rbufs[r].get());
      const std::int64_t want =
          static_cast<std::int64_t>(n) * round + n * (n - 1) / 2;
      for (std::size_t i = 0; i < count; ++i) {
        if (got[i] != want) {
          ++failures;
          break;
        }
      }

      const std::size_t bytes = (round % 2 == 0) ? 9000 : 2048;
      if (ctx.rank() == 0) {
        ctx.write_payload(bbufs[0].get(), bytes,
                          static_cast<std::uint64_t>(round) + 0x77);
      }
      ctx.barrier();
      comp->bcast(ctx, bbufs[r].get(), bytes, 0);
      std::vector<std::byte> expect(bytes);
      util::fill_pattern(expect.data(), bytes,
                         static_cast<std::uint64_t>(round) + 0x77);
      if (std::memcmp(bbufs[r].get(), expect.data(), bytes) != 0) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(LargeMsgPaths, LargeMsgFaultChaosStillCorrect) {
  // Recoverable fault classes (attach fallback, registration-cache misses,
  // stragglers, delayed flag publications) across seeds: the large paths
  // must terminate and still produce exact payloads.
  for (const std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    auto m = machine(GetParam());
    const int n = m->n_ranks();
    coll::Tuning t = tuning(4096);
    t.faults =
        "attach,prob=0.2;regmiss,prob=0.3;straggler,prob=0.2,delay=2e-6;"
        "flagdelay,prob=0.1,delay=1e-6";
    t.fault_seed = seed;
    auto comp = coll::make_component("xhc", *m, t);

    constexpr std::size_t kCount = 2500;
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    std::vector<std::int64_t> expect(kCount, 0);
    for (int r = 0; r < n; ++r) {
      sbufs.emplace_back(*m, r, kCount * sizeof(std::int64_t));
      rbufs.emplace_back(*m, r, kCount * sizeof(std::int64_t));
      auto* s = static_cast<std::int64_t*>(sbufs.back().get());
      for (std::size_t i = 0; i < kCount; ++i) {
        s[i] = static_cast<std::int64_t>((r + 1) * 3 + static_cast<int>(i));
        expect[i] += s[i];
      }
    }
    constexpr std::size_t kBytes = 50000;
    std::vector<mach::Buffer> bbufs;
    for (int r = 0; r < n; ++r) bbufs.emplace_back(*m, r, kBytes);
    util::fill_pattern(bbufs[0].get(), kBytes, seed);

    m->run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kI64, mach::ROp::kSum);
      comp->bcast(ctx, bbufs[r].get(), kBytes, 0);
    });

    std::vector<std::byte> bexpect(kBytes);
    util::fill_pattern(bexpect.data(), kBytes, seed);
    for (int r = 0; r < n; ++r) {
      const auto* got = static_cast<const std::int64_t*>(
          rbufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(got[i], expect[i]) << "seed " << seed << ", rank " << r;
      }
      ASSERT_EQ(std::memcmp(bbufs[static_cast<std::size_t>(r)].get(),
                            bexpect.data(), kBytes),
                0)
          << "seed " << seed << ", rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LargeMsgPaths,
    ::testing::Values(LargeParam{"mini8", "real"},
                      LargeParam{"mini16", "real"},
                      LargeParam{"mini16", "sim"},
                      LargeParam{"epyc2p", "sim"}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

class LargeMsgDispatch : public ::testing::Test {};

TEST_F(LargeMsgDispatch, BelowThresholdVirtualTimeBitIdentical) {
  // The dispatcher's contract: at or below the thresholds nothing about the
  // latency path changes — simulated completion times of a 64 KiB op are
  // bit-identical between a default build and one with the large paths
  // disabled outright.
  auto run_once = [](std::size_t rs_thr, std::size_t stripe_thr) {
    sim::SimMachine m(topo::mini16(), 16);
    coll::Tuning t;
    t.rs_ag_threshold = rs_thr;
    t.stripe_threshold = stripe_thr;
    auto comp = coll::make_component("xhc", m, t);
    constexpr std::size_t kBytes = 64 << 10;
    constexpr std::size_t kCount = kBytes / sizeof(double);
    std::vector<mach::Buffer> bufs;
    std::vector<mach::Buffer> rbufs;
    for (int r = 0; r < 16; ++r) {
      bufs.emplace_back(m, r, kBytes);
      rbufs.emplace_back(m, r, kBytes);
    }
    std::vector<double> done(16, 0.0);
    m.run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->bcast(ctx, bufs[r].get(), kBytes, 0);
      comp->allreduce(ctx, bufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kF64, mach::ROp::kSum);
      done[r] = ctx.now();
    });
    return done;
  };
  // 64 KiB is below the default 128 KiB thresholds; 0 disables the paths.
  const std::vector<double> with_paths = run_once(128 << 10, 128 << 10);
  const std::vector<double> without_paths = run_once(0, 0);
  for (int r = 0; r < 16; ++r) {
    ASSERT_EQ(with_paths[static_cast<std::size_t>(r)],
              without_paths[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST_F(LargeMsgDispatch, TuningParamsParseAndClamp) {
  coll::Tuning t;
  coll::apply_param(t, "xhc_rs_ag_threshold=65536");
  coll::apply_param(t, "xhc_stripe_threshold=0");
  coll::apply_param(t, "xhc_large_chunk_bytes=32768,131072");
  EXPECT_EQ(t.rs_ag_threshold, 65536u);
  EXPECT_EQ(t.stripe_threshold, 0u);
  ASSERT_EQ(t.large_chunk_bytes.size(), 2u);
  EXPECT_EQ(t.large_chunk_for_level(0), 32768u);
  EXPECT_EQ(t.large_chunk_for_level(1), 131072u);
  EXPECT_EQ(t.large_chunk_for_level(5), 131072u);  // last entry repeats
  EXPECT_THROW(coll::apply_param(t, "xhc_rs_ag_threshold=banana"),
               util::Error);
  EXPECT_THROW(coll::apply_param(t, "xhc_large_chunk_bytes=0"), util::Error);
}

TEST_F(LargeMsgDispatch, ChunkFallbackSingleSourceOfTruth) {
  // Regression for the duplicated 16 KiB fallback: an empty chunk list must
  // fall back to the same constant the default initializer uses, for both
  // the latency and large chunk tables.
  coll::Tuning t;
  EXPECT_EQ(t.chunk_for_level(0), coll::Tuning::kDefaultChunkBytes);
  EXPECT_EQ(t.large_chunk_for_level(0), coll::Tuning::kDefaultLargeChunkBytes);
  t.chunk_bytes.clear();
  t.large_chunk_bytes.clear();
  EXPECT_EQ(t.chunk_for_level(0), coll::Tuning::kDefaultChunkBytes);
  EXPECT_EQ(t.chunk_for_level(7), coll::Tuning::kDefaultChunkBytes);
  EXPECT_EQ(t.large_chunk_for_level(0),
            coll::Tuning::kDefaultLargeChunkBytes);
  EXPECT_EQ(t.large_chunk_for_level(7),
            coll::Tuning::kDefaultLargeChunkBytes);
}

// ---------------------------------------------------------------------------
// Larger simulated topologies (full paper systems, reduced payloads)

class PaperSystems : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperSystems, XhcCorrectAtFullScale) {
  topo::Topology topo = topo::by_name(GetParam());
  const int ranks = topo.n_cores();
  sim::SimMachine machine(std::move(topo), ranks);
  auto comp = coll::make_component("xhc", machine);
  constexpr std::size_t kBytes = 40000;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < ranks; ++r) bufs.emplace_back(machine, r, kBytes);
  util::fill_pattern(bufs[0].get(), kBytes, 99);
  machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
                0);
  });
  std::vector<std::byte> expect(kBytes);
  util::fill_pattern(expect.data(), kBytes, 99);
  for (int r = 0; r < ranks; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), kBytes),
              0)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Systems, PaperSystems,
                         ::testing::Values("epyc1p", "epyc2p", "armn1"));

}  // namespace
}  // namespace xhc
