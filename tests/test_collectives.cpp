// Parameterized correctness tests for every collective component, across
// machines, topologies, payload sizes, roots, datatypes and reduction
// operators — the functional contract all of the paper's experiments
// depend on.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "coll/registry.h"
#include "mach/real_machine.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc {
namespace {

std::unique_ptr<mach::Machine> make_machine(const std::string& kind,
                                            const topo::Topology& topo,
                                            int ranks) {
  if (kind == "real") {
    return std::make_unique<mach::RealMachine>(topo, ranks);
  }
  return std::make_unique<sim::SimMachine>(topo, ranks);
}

// ---------------------------------------------------------------------------
// Bcast: component x machine x size (mini16, roots 0 and 5)

using BcastParam = std::tuple<std::string, std::string, std::size_t>;

class BcastCorrectness : public ::testing::TestWithParam<BcastParam> {};

TEST_P(BcastCorrectness, PayloadReachesEveryRank) {
  const auto& [comp_name, machine_kind, bytes] = GetParam();
  for (const int root : {0, 5}) {
    auto machine = make_machine(machine_kind, topo::mini16(), 16);
    auto comp = coll::make_component(comp_name, *machine);
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < 16; ++r) bufs.emplace_back(*machine, r, bytes);
    util::fill_pattern(bufs[static_cast<std::size_t>(root)].get(), bytes,
                       0xBC + static_cast<std::uint64_t>(root));

    machine->run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  bytes, root);
    });

    std::vector<std::byte> expect(bytes);
    util::fill_pattern(expect.data(), bytes,
                       0xBC + static_cast<std::uint64_t>(root));
    for (int r = 0; r < 16; ++r) {
      ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                            expect.data(), bytes),
                0)
          << comp_name << " on " << machine_kind << ", root " << root
          << ", rank " << r << ", " << bytes << " B";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BcastCorrectness,
    ::testing::Combine(
        ::testing::Values("xhc", "xhc-flat", "tuned", "sm", "ucc", "smhc",
                          "smhc-flat", "xbrc"),
        ::testing::Values("real", "sim"),
        // 1 B, the CICO threshold edge (1 KB +/- 1), a pipeline chunk
        // boundary, several chunks, and an odd large size.
        ::testing::Values(std::size_t{1}, std::size_t{1023},
                          std::size_t{1024}, std::size_t{1025},
                          std::size_t{16384}, std::size_t{100000})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         std::to_string(std::get<2>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Allreduce: component x machine x count

using AllreduceParam = std::tuple<std::string, std::string, std::size_t>;

class AllreduceCorrectness
    : public ::testing::TestWithParam<AllreduceParam> {};

TEST_P(AllreduceCorrectness, SumOfI64) {
  const auto& [comp_name, machine_kind, count] = GetParam();
  auto machine = make_machine(machine_kind, topo::mini16(), 16);
  auto comp = coll::make_component(comp_name, *machine);
  const std::size_t bytes = count * sizeof(std::int64_t);
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  std::vector<std::int64_t> expect(count, 0);
  for (int r = 0; r < 16; ++r) {
    sbufs.emplace_back(*machine, r, bytes);
    rbufs.emplace_back(*machine, r, bytes);
    auto* s = static_cast<std::int64_t*>(sbufs.back().get());
    for (std::size_t i = 0; i < count; ++i) {
      s[i] = static_cast<std::int64_t>((r + 3) * 7 + i * 13);
      expect[i] += s[i];
    }
  }

  machine->run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                    mach::DType::kI64, mach::ROp::kSum);
  });

  for (int r = 0; r < 16; ++r) {
    const auto* got = static_cast<const std::int64_t*>(
        rbufs[static_cast<std::size_t>(r)].get());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], expect[i])
          << comp_name << " on " << machine_kind << ", rank " << r
          << ", elem " << i << "/" << count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllreduceCorrectness,
    ::testing::Combine(
        ::testing::Values("xhc", "xhc-flat", "tuned", "sm", "ucc", "smhc",
                          "smhc-flat", "xbrc"),
        ::testing::Values("real", "sim"),
        // 1 element, CICO-threshold edge (128 x 8B = 1 KB), chunk-crossing
        // counts, a non-divisible odd count.
        ::testing::Values(std::size_t{1}, std::size_t{128}, std::size_t{129},
                          std::size_t{5000}, std::size_t{12289})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         std::to_string(std::get<2>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Cross-cutting properties

class ComponentProps : public ::testing::TestWithParam<std::string> {};

TEST_P(ComponentProps, InPlaceAllreduce) {
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  constexpr std::size_t kCount = 700;
  std::vector<mach::Buffer> bufs;
  std::vector<std::int64_t> expect(kCount, 0);
  for (int r = 0; r < 8; ++r) {
    bufs.emplace_back(*machine, r, kCount * sizeof(std::int64_t));
    auto* s = static_cast<std::int64_t*>(bufs.back().get());
    for (std::size_t i = 0; i < kCount; ++i) {
      s[i] = static_cast<std::int64_t>(r * 100 + i);
      expect[i] += s[i];
    }
  }
  machine->run([&](mach::Ctx& ctx) {
    void* buf = bufs[static_cast<std::size_t>(ctx.rank())].get();
    comp->allreduce(ctx, buf, buf, kCount, mach::DType::kI64, mach::ROp::kSum);
  });
  for (int r = 0; r < 8; ++r) {
    const auto* got = static_cast<const std::int64_t*>(
        bufs[static_cast<std::size_t>(r)].get());
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(got[i], expect[i]) << GetParam() << " rank " << r;
    }
  }
}

TEST_P(ComponentProps, MinMaxProdOperators) {
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  constexpr std::size_t kCount = 64;
  for (const mach::ROp op : {mach::ROp::kMin, mach::ROp::kMax,
                             mach::ROp::kProd}) {
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    std::vector<double> expect(kCount);
    for (int r = 0; r < 8; ++r) {
      sbufs.emplace_back(*machine, r, kCount * sizeof(double));
      rbufs.emplace_back(*machine, r, kCount * sizeof(double));
      auto* s = static_cast<double*>(sbufs.back().get());
      for (std::size_t i = 0; i < kCount; ++i) {
        s[i] = 1.0 + static_cast<double>((r * 31 + i * 7) % 5) / 4.0;
        if (r == 0) {
          expect[i] = s[i];
        } else {
          switch (op) {
            case mach::ROp::kMin:
              expect[i] = std::min(expect[i], s[i]);
              break;
            case mach::ROp::kMax:
              expect[i] = std::max(expect[i], s[i]);
              break;
            default:
              expect[i] *= s[i];
              break;
          }
        }
      }
    }
    machine->run([&](mach::Ctx& ctx) {
      const auto r = static_cast<std::size_t>(ctx.rank());
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kF64, op);
    });
    for (int r = 0; r < 8; ++r) {
      const auto* got = static_cast<const double*>(
          rbufs[static_cast<std::size_t>(r)].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_DOUBLE_EQ(got[i], expect[i])
            << GetParam() << " op " << static_cast<int>(op) << " rank " << r;
      }
    }
  }
}

TEST_P(ComponentProps, BackToBackMixedOperations) {
  // Alternating bcasts and allreduces reuse the same control structures;
  // sequence/base bookkeeping must keep them apart.
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  constexpr std::size_t kBytes = 3000;
  constexpr std::size_t kCount = 400;
  std::vector<mach::Buffer> bufs;
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < 8; ++r) {
    bufs.emplace_back(*machine, r, kBytes);
    sbufs.emplace_back(*machine, r, kCount * sizeof(std::int64_t));
    rbufs.emplace_back(*machine, r, kCount * sizeof(std::int64_t));
  }
  std::atomic<int> failures{0};
  machine->run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    for (int round = 0; round < 5; ++round) {
      if (ctx.rank() == 0) {
        ctx.write_payload(bufs[0].get(), kBytes,
                          static_cast<std::uint64_t>(round));
      }
      ctx.barrier();
      comp->bcast(ctx, bufs[r].get(), kBytes, 0);
      std::vector<std::byte> expect(kBytes);
      util::fill_pattern(expect.data(), kBytes,
                         static_cast<std::uint64_t>(round));
      if (std::memcmp(bufs[r].get(), expect.data(), kBytes) != 0) ++failures;

      auto* s = static_cast<std::int64_t*>(sbufs[r].get());
      for (std::size_t i = 0; i < kCount; ++i) {
        s[i] = static_cast<std::int64_t>(ctx.rank() + round);
      }
      ctx.barrier();
      comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                      mach::DType::kI64, mach::ROp::kSum);
      const auto* got = static_cast<const std::int64_t*>(rbufs[r].get());
      const std::int64_t want = 8 * round + 28;  // sum of ranks 0..7 + round
      for (std::size_t i = 0; i < kCount; ++i) {
        if (got[i] != want) {
          ++failures;
          break;
        }
      }
    }
  });
  EXPECT_EQ(failures.load(), 0) << GetParam();
}

TEST_P(ComponentProps, SingleRankDegenerates) {
  auto machine = make_machine("real", topo::flat(1), 1);
  auto comp = coll::make_component(GetParam(), *machine);
  mach::Buffer buf(*machine, 0, 64);
  mach::Buffer sbuf(*machine, 0, 8 * sizeof(double));
  mach::Buffer rbuf(*machine, 0, 8 * sizeof(double));
  auto* s = static_cast<double*>(sbuf.get());
  for (int i = 0; i < 8; ++i) s[i] = i;
  machine->run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, buf.get(), 64, 0);
    comp->allreduce(ctx, sbuf.get(), rbuf.get(), 8, mach::DType::kF64,
                    mach::ROp::kSum);
  });
  const auto* got = static_cast<const double*>(rbuf.get());
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(got[i], s[i]);
}

TEST_P(ComponentProps, ZeroBytesIsANoOp) {
  auto machine = make_machine("real", topo::mini8(), 8);
  auto comp = coll::make_component(GetParam(), *machine);
  mach::Buffer buf(*machine, 0, 64);
  EXPECT_NO_THROW(machine->run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, buf.get(), 0, 0);
    comp->allreduce(ctx, buf.get(), buf.get(), 0, mach::DType::kF64,
                    mach::ROp::kSum);
  }));
}

INSTANTIATE_TEST_SUITE_P(AllComponents, ComponentProps,
                         ::testing::Values("xhc", "xhc-flat", "tuned", "sm",
                                           "ucc", "smhc", "smhc-flat",
                                           "xbrc"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Larger simulated topologies (full paper systems, reduced payloads)

class PaperSystems : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperSystems, XhcCorrectAtFullScale) {
  topo::Topology topo = topo::by_name(GetParam());
  const int ranks = topo.n_cores();
  sim::SimMachine machine(std::move(topo), ranks);
  auto comp = coll::make_component("xhc", machine);
  constexpr std::size_t kBytes = 40000;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < ranks; ++r) bufs.emplace_back(machine, r, kBytes);
  util::fill_pattern(bufs[0].get(), kBytes, 99);
  machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
                0);
  });
  std::vector<std::byte> expect(kBytes);
  util::fill_pattern(expect.data(), kBytes, 99);
  for (int r = 0; r < ranks; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), kBytes),
              0)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Systems, PaperSystems,
                         ::testing::Values("epyc1p", "epyc2p", "armn1"));

}  // namespace
}  // namespace xhc
