// Unit tests for the topology module: presets (Table I), distances,
// mapping policies (Fig. 9a) and hierarchy construction (§III-A, Fig. 2).
#include <gtest/gtest.h>

#include <set>

#include "topo/hierarchy.h"
#include "topo/mapping.h"
#include "topo/presets.h"
#include "util/check.h"

namespace xhc::topo {
namespace {

TEST(Presets, TableIShapes) {
  const Topology e1 = epyc1p();
  EXPECT_EQ(e1.n_cores(), 32);
  EXPECT_EQ(e1.n_numa(), 4);
  EXPECT_EQ(e1.n_sockets(), 1);
  EXPECT_TRUE(e1.has_shared_llc());
  EXPECT_EQ(e1.n_llc(), 8);  // 4-core CCX

  const Topology e2 = epyc2p();
  EXPECT_EQ(e2.n_cores(), 64);
  EXPECT_EQ(e2.n_numa(), 8);
  EXPECT_EQ(e2.n_sockets(), 2);

  const Topology arm = armn1();
  EXPECT_EQ(arm.n_cores(), 160);
  EXPECT_EQ(arm.n_numa(), 8);
  EXPECT_EQ(arm.n_sockets(), 2);
  EXPECT_FALSE(arm.has_shared_llc());
}

TEST(Presets, ByNameRoundTrip) {
  for (const auto name : {"epyc1p", "epyc2p", "armn1", "mini8", "mini16"}) {
    EXPECT_EQ(by_name(name).name(), name);
  }
  EXPECT_THROW(by_name("nonsense"), util::Error);
}

TEST(Presets, FlatTopology) {
  const Topology f = flat(6);
  EXPECT_EQ(f.n_cores(), 6);
  EXPECT_EQ(f.n_numa(), 1);
  EXPECT_EQ(f.n_sockets(), 1);
  EXPECT_EQ(f.distance(0, 5), Distance::kLlcLocal);
}

TEST(Topology, DistanceClasses) {
  const Topology e2 = epyc2p();  // 8 cores/NUMA, 4-core LLC, 32 cores/socket
  EXPECT_EQ(e2.distance(0, 0), Distance::kSelf);
  EXPECT_EQ(e2.distance(0, 1), Distance::kLlcLocal);   // same CCX
  EXPECT_EQ(e2.distance(0, 4), Distance::kIntraNuma);  // other CCX, NUMA 0
  EXPECT_EQ(e2.distance(0, 8), Distance::kCrossNuma);
  EXPECT_EQ(e2.distance(0, 32), Distance::kCrossSocket);
}

TEST(Topology, ArmHasNoCacheLocalDistance) {
  const Topology arm = armn1();
  // Neighbouring cores do not share an LLC: nearest distance is intra-NUMA.
  EXPECT_EQ(arm.distance(0, 1), Distance::kIntraNuma);
  EXPECT_EQ(arm.distance(0, 20), Distance::kCrossNuma);
  EXPECT_EQ(arm.distance(0, 80), Distance::kCrossSocket);
}

TEST(Topology, CoresInDomains) {
  const Topology e1 = epyc1p();
  EXPECT_EQ(e1.cores_in_numa(0).size(), 8u);
  EXPECT_EQ(e1.cores_in_socket(0).size(), 32u);
  EXPECT_EQ(e1.cores_in_numa(3).front(), 24);
}

TEST(Topology, RejectsBadInput) {
  EXPECT_THROW(Topology("empty", {}, false), util::Error);
  std::vector<CorePlace> cores(2);
  cores[0].core = 0;
  cores[1].core = 5;  // not dense
  EXPECT_THROW(Topology("sparse", cores, false), util::Error);
}

TEST(Mapping, MapCoreIsIdentity) {
  const Topology e1 = epyc1p();
  const RankMap map(e1, 16, MapPolicy::kCore);
  for (int r = 0; r < 16; ++r) EXPECT_EQ(map.core_of(r), r);
  EXPECT_EQ(map.rank_on(3), 3);
  EXPECT_EQ(map.rank_on(20), -1);  // unused core
}

TEST(Mapping, MapNumaRoundRobin) {
  const Topology e1 = epyc1p();  // 4 NUMA nodes, 8 cores each
  const RankMap map(e1, 8, MapPolicy::kNuma);
  // Ranks 0..3 land on NUMA 0..3; ranks 4..7 wrap around.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(e1.core(map.core_of(r)).numa, r % 4) << "rank " << r;
  }
}

TEST(Mapping, MapNumaFullNode) {
  const Topology e2 = epyc2p();
  const RankMap map(e2, 64, MapPolicy::kNuma);
  // All cores used exactly once.
  std::set<int> used;
  for (int r = 0; r < 64; ++r) used.insert(map.core_of(r));
  EXPECT_EQ(used.size(), 64u);
  // Consecutive ranks land on different NUMA nodes.
  EXPECT_NE(e2.core(map.core_of(0)).numa, e2.core(map.core_of(1)).numa);
}

TEST(Mapping, RejectsOversubscription) {
  const Topology f = flat(4);
  EXPECT_THROW(RankMap(f, 5, MapPolicy::kCore), util::Error);
  EXPECT_THROW(RankMap(f, 0, MapPolicy::kCore), util::Error);
}

TEST(Sensitivity, Parsing) {
  EXPECT_TRUE(parse_sensitivity("flat").empty());
  EXPECT_EQ(parse_sensitivity("numa").size(), 1u);
  const auto ns = parse_sensitivity("numa+socket");
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[0], Domain::kNuma);
  EXPECT_EQ(ns[1], Domain::kSocket);
  EXPECT_EQ(parse_sensitivity("l3+numa+socket").size(), 3u);
  EXPECT_THROW(parse_sensitivity("numa+bogus"), util::Error);
}

TEST(Hierarchy, PaperLevelCounts) {
  // §V-C: numa+socket gives 3 levels on Epyc-2P and ARM-N1, 2 on Epyc-1P.
  const auto sens = parse_sensitivity("numa+socket");
  for (const auto& [name, want] :
       std::vector<std::pair<const char*, int>>{
           {"epyc1p", 2}, {"epyc2p", 3}, {"armn1", 3}}) {
    const Topology topo = by_name(name);
    const RankMap map(topo, topo.n_cores(), MapPolicy::kCore);
    const Hierarchy hier(topo, map, sens, 0);
    EXPECT_EQ(hier.n_levels(), want) << name;
  }
}

TEST(Hierarchy, Fig2Structure) {
  // The paper's Fig. 2: 16 cores, 2 sockets, 4 cores/NUMA (2 NUMA/socket),
  // numa+socket sensitivity → 3 levels.
  const Topology topo = grid("fig2", 2, 2, 4, 0);
  const RankMap map(topo, 16, MapPolicy::kCore);
  const Hierarchy hier(topo, map, parse_sensitivity("numa+socket"), 0);
  ASSERT_EQ(hier.n_levels(), 3);
  EXPECT_EQ(hier.level(0).size(), 4u);  // one group per NUMA node
  EXPECT_EQ(hier.level(1).size(), 2u);  // one group per socket
  EXPECT_EQ(hier.level(2).size(), 1u);  // node level
  // NUMA leaders are 0,4,8,12; socket leaders 0 and 8; root 0 at the top.
  EXPECT_EQ(hier.level(0)[0].leader, 0);
  EXPECT_EQ(hier.level(0)[1].leader, 4);
  EXPECT_EQ(hier.level(1)[1].leader, 8);
  EXPECT_EQ(hier.level(2)[0].leader, 0);
}

TEST(Hierarchy, RootLeadsEveryLevel) {
  const Topology topo = epyc2p();
  const RankMap map(topo, 64, MapPolicy::kCore);
  for (const int root : {0, 10, 33, 63}) {
    const Hierarchy hier(topo, map, parse_sensitivity("numa+socket"), root);
    for (int l = 0; l < hier.n_levels(); ++l) {
      EXPECT_TRUE(hier.is_leader(l, root)) << "root " << root << " level " << l;
    }
  }
}

TEST(Hierarchy, GroupPartitionIsRootIndependent) {
  const Topology topo = epyc2p();
  const RankMap map(topo, 64, MapPolicy::kCore);
  const auto sens = parse_sensitivity("numa+socket");
  const Hierarchy a(topo, map, sens, 0);
  const Hierarchy b(topo, map, sens, 10);
  ASSERT_EQ(a.n_levels(), b.n_levels());
  // Level-0 groups partition ranks identically regardless of root.
  ASSERT_EQ(a.level(0).size(), b.level(0).size());
  for (std::size_t g = 0; g < a.level(0).size(); ++g) {
    EXPECT_EQ(a.level(0)[g].ranks, b.level(0)[g].ranks);
  }
  // But the leader of root 10's NUMA group moves to 10.
  EXPECT_EQ(b.level(0)[1].leader, 10);
  EXPECT_EQ(a.level(0)[1].leader, 8);
}

TEST(Hierarchy, FlatHasOneGroup) {
  const Hierarchy flat = Hierarchy::make_flat(12, 3);
  ASSERT_EQ(flat.n_levels(), 1);
  EXPECT_EQ(flat.level(0)[0].ranks.size(), 12u);
  EXPECT_EQ(flat.level(0)[0].leader, 3);
}

TEST(Hierarchy, DegenerateLlcLevelSkippedOnArm) {
  // ARM-N1 has no shared LLCs: an "l3" level would be all-singleton and is
  // skipped; l3+numa+socket behaves like numa+socket.
  const Topology arm = armn1();
  const RankMap map(arm, 160, MapPolicy::kCore);
  const Hierarchy with_l3(arm, map, parse_sensitivity("l3+numa+socket"), 0);
  const Hierarchy without(arm, map, parse_sensitivity("numa+socket"), 0);
  EXPECT_EQ(with_l3.n_levels(), without.n_levels());
}

TEST(Hierarchy, L3SensitivityOnEpyc) {
  const Topology e1 = epyc1p();
  const RankMap map(e1, 32, MapPolicy::kCore);
  const Hierarchy hier(e1, map, parse_sensitivity("l3+numa+socket"), 0);
  ASSERT_GE(hier.n_levels(), 2);
  EXPECT_EQ(hier.level(0).size(), 8u);           // one group per CCX
  EXPECT_EQ(hier.level(0)[0].ranks.size(), 4u);  // 4 cores per CCX
}

TEST(Hierarchy, MembershipChain) {
  const Topology e2 = epyc2p();
  const RankMap map(e2, 64, MapPolicy::kCore);
  const Hierarchy hier(e2, map, parse_sensitivity("numa+socket"), 0);
  // Rank 9 is a plain member of NUMA group 1 and nothing above.
  EXPECT_NE(hier.group_of(0, 9), nullptr);
  EXPECT_EQ(hier.group_of(1, 9), nullptr);
  // Rank 8 leads NUMA group 1 and is a member at the socket level.
  EXPECT_TRUE(hier.is_leader(0, 8));
  EXPECT_NE(hier.group_of(1, 8), nullptr);
  EXPECT_FALSE(hier.is_leader(1, 8));
  EXPECT_EQ(hier.group_of(2, 8), nullptr);
  // Rank 32 leads its NUMA group and socket 1's group, and sits at the top.
  EXPECT_TRUE(hier.is_leader(0, 32));
  EXPECT_TRUE(hier.is_leader(1, 32));
  EXPECT_NE(hier.group_of(2, 32), nullptr);
  EXPECT_FALSE(hier.is_leader(2, 32));
}

TEST(Hierarchy, DescribeMentionsLeaders) {
  const Hierarchy flat = Hierarchy::make_flat(4, 2);
  const std::string text = flat.describe();
  EXPECT_NE(text.find("*2"), std::string::npos);
}

TEST(Hierarchy, PartialOccupancy) {
  // 12 ranks on Epyc-2P cover only NUMA 0 (8 ranks) and half of NUMA 1.
  const Topology e2 = epyc2p();
  const RankMap map(e2, 12, MapPolicy::kCore);
  const Hierarchy hier(e2, map, parse_sensitivity("numa+socket"), 0);
  EXPECT_EQ(hier.level(0).size(), 2u);
  EXPECT_EQ(hier.level(0)[0].ranks.size(), 8u);
  EXPECT_EQ(hier.level(0)[1].ranks.size(), 4u);
}

}  // namespace
}  // namespace xhc::topo
