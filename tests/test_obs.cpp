// Observability layer tests: recorder ring semantics, metrics registry,
// end-to-end tracing of bcast + allreduce on both machines, and the Chrome
// trace exporter (validated with a minimal JSON parser — no dependencies).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "mach/real_machine.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "obs/timeseries.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/cacheline.h"
#include "util/prng.h"

namespace xhc::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (enough to validate the exporter).

struct JValue {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  const JValue& at(const std::string& key) const {
    static const JValue kMissing;
    const auto it = obj.find(key);
    return it == obj.end() ? kMissing : it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  /// Parses the full input; `ok()` reports success.
  JValue parse() {
    JValue v = value();
    skip_ws();
    if (pos_ != s_.size()) ok_ = false;
    return v;
  }
  bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    ok_ = false;
    return false;
  }

  JValue value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      ok_ = false;
      return {};
    }
    JValue v;
    const char c = s_[pos_];
    if (c == '{') {
      v.kind = JValue::kObj;
      eat('{');
      if (!eat('}')) {
        do {
          JValue key = string_value();
          if (!ok_ || !eat(':')) {
            ok_ = false;
            return v;
          }
          v.obj[key.str] = value();
        } while (ok_ && eat(','));
        if (!eat('}')) ok_ = false;
      }
    } else if (c == '[') {
      v.kind = JValue::kArr;
      eat('[');
      if (!eat(']')) {
        do {
          v.arr.push_back(value());
        } while (ok_ && eat(','));
        if (!eat(']')) ok_ = false;
      }
    } else if (c == '"') {
      v = string_value();
    } else if (c == 't') {
      v.kind = JValue::kBool;
      v.b = true;
      literal("true");
    } else if (c == 'f') {
      v.kind = JValue::kBool;
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      v.kind = JValue::kNum;
      std::size_t used = 0;
      try {
        v.num = std::stod(std::string(s_.substr(pos_)), &used);
      } catch (...) {
        ok_ = false;
      }
      if (used == 0) ok_ = false;
      pos_ += used;
    }
    return v;
  }

  JValue string_value() {
    JValue v;
    v.kind = JValue::kStr;
    if (!eat('"')) {
      ok_ = false;
      return v;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          ok_ = false;
          return v;
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) {
              ok_ = false;
              return v;
            }
            pos_ += 4;  // keep a placeholder; exporter only emits ASCII
            c = '?';
            break;
          default:
            ok_ = false;
            return v;
        }
      }
      v.str.push_back(c);
    }
    if (!eat('"')) ok_ = false;
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Recorder / Metrics unit tests (no machine involved).

TEST(Recorder, CapacityRoundsUpToPowerOfTwo) {
  Recorder rec(2, 100);
  EXPECT_EQ(rec.capacity(), 128u);
  EXPECT_EQ(rec.n_ranks(), 2);
}

TEST(Recorder, OverwritesOldestWhenFull) {
  Recorder rec(1, 4);
  for (int i = 0; i < 6; ++i) {
    rec.record(0, "cat", "name", i, i + 0.5,
               static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(0), 6u);
  EXPECT_EQ(rec.dropped(0), 2u);
  const auto spans = rec.spans(0);
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first window: spans 2..5 survive.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].arg, i + 2);
  }
  rec.clear();
  EXPECT_EQ(rec.recorded(0), 0u);
  EXPECT_TRUE(rec.spans(0).empty());
}

TEST(Recorder, PerRankRingsAreIndependent) {
  Recorder rec(3, 8);
  rec.record(0, "a", "x", 0, 1);
  rec.record(2, "b", "y", 0, 1);
  rec.record(2, "b", "z", 1, 2);
  EXPECT_EQ(rec.spans(0).size(), 1u);
  EXPECT_TRUE(rec.spans(1).empty());
  EXPECT_EQ(rec.spans(2).size(), 2u);
  EXPECT_EQ(rec.recorded(), 3u);
}

TEST(Metrics, PerRankCountersAndGauges) {
  Metrics m(4);
  m.add(0, Counter::kCicoBytes, 100);
  m.add(3, Counter::kCicoBytes, 50);
  m.add(3, Counter::kFlagWaits, 2);
  EXPECT_EQ(m.value(0, Counter::kCicoBytes), 100u);
  EXPECT_EQ(m.value(3, Counter::kCicoBytes), 50u);
  EXPECT_EQ(m.total(Counter::kCicoBytes), 150u);
  EXPECT_EQ(m.total(Counter::kFlagWaits), 2u);
  EXPECT_EQ(m.total(Counter::kReduceBytes), 0u);

  m.set_gauge(Gauge::kCtlBytes, 4096);
  EXPECT_EQ(m.gauge(Gauge::kCtlBytes), 4096u);

  m.reset_counters();
  EXPECT_EQ(m.total(Counter::kCicoBytes), 0u);
  EXPECT_EQ(m.gauge(Gauge::kCtlBytes), 4096u);  // gauges survive reset
}

TEST(Metrics, CounterNamesAreUnique) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    names.insert(std::string(to_string(static_cast<Counter>(i))));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(Counter::kCount_));
}

// ---------------------------------------------------------------------------
// End-to-end: trace bcast + allreduce, export, parse, validate.

struct PaddedNow {
  alignas(util::kCacheLine) double value = 0.0;
};

/// Runs one bcast and one allreduce with tracing on and returns the observer
/// plus the per-rank Ctx::now() captured right after the collectives.
void run_traced(mach::Machine& machine, Observer& observer,
                std::vector<PaddedNow>& now_after) {
  const int n = machine.n_ranks();
  coll::Tuning tuning;
  tuning.trace = true;
  auto comp = coll::make_component("xhc", machine, tuning);
  comp->set_observer(&observer);

  // 64 KiB payload: above the CICO threshold, several pipeline chunks.
  constexpr std::size_t kBytes = 64u << 10;
  constexpr std::size_t kCount = kBytes / sizeof(float);
  std::vector<mach::Buffer> bufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < n; ++r) {
    bufs.emplace_back(machine, r, kBytes);
    rbufs.emplace_back(machine, r, kBytes);
  }
  util::fill_pattern(bufs[0].get(), kBytes, 1234);
  now_after.resize(static_cast<std::size_t>(n));

  machine.run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    comp->bcast(ctx, bufs[r].get(), kBytes, /*root=*/0);
    comp->allreduce(ctx, bufs[r].get(), rbufs[r].get(), kCount,
                    mach::DType::kF32, mach::ROp::kSum);
    now_after[r].value = ctx.now();
  });
}

void check_trace(const Observer& observer,
                 const std::vector<PaddedNow>& now_after, bool virtual_time) {
  const Recorder& rec = observer.trace();
  const int n = rec.n_ranks();

  // Every rank produced spans, all within [0, now_after].
  std::set<std::string> cats;
  for (int r = 0; r < n; ++r) {
    const auto spans = rec.spans(r);
    EXPECT_GE(spans.size(), 1u) << "rank " << r << " recorded no spans";
    for (const Span& sp : spans) {
      cats.insert(sp.cat);
      EXPECT_GE(sp.t0, 0.0);
      EXPECT_LE(sp.t0, sp.t1);
      EXPECT_LE(sp.t1, now_after[static_cast<std::size_t>(r)].value + 1e-12)
          << "rank " << r << " span " << sp.cat << "/" << sp.name
          << " ends after the clock captured at completion";
    }
  }
  EXPECT_TRUE(cats.count("collective")) << "missing collective spans";
  EXPECT_TRUE(cats.count("copy")) << "missing copy spans";
  EXPECT_TRUE(cats.count("reduce")) << "missing reduce spans";
  EXPECT_TRUE(cats.count("wait")) << "missing wait/flag spans";

  // Counters: the byte movement of bcast + allreduce was booked.
  const Metrics& m = observer.metrics();
  EXPECT_GT(m.total(Counter::kSingleCopyBytes) + m.total(Counter::kCicoBytes),
            0u);
  EXPECT_GT(m.total(Counter::kReduceBytes), 0u);
  EXPECT_GT(m.total(Counter::kFlagWaits), 0u);

  // Export and re-parse.
  std::ostringstream os;
  write_chrome_trace(os, rec, "test");
  const std::string json = os.str();
  JsonParser parser(json);
  const JValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << "exporter emitted invalid JSON";
  ASSERT_EQ(root.kind, JValue::kObj);
  ASSERT_TRUE(root.has("traceEvents"));
  const JValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JValue::kArr);

  std::size_t meta_events = 0;
  std::map<int, std::size_t> per_pid;
  std::map<int, std::vector<double>> pid_ts;
  for (const JValue& ev : events.arr) {
    ASSERT_EQ(ev.kind, JValue::kObj);
    const std::string ph = ev.at("ph").str;
    const int pid = static_cast<int>(ev.at("pid").num);
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, n);
    if (ph == "M") {
      ++meta_events;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++per_pid[pid];
    EXPECT_FALSE(ev.at("cat").str.empty());
    EXPECT_FALSE(ev.at("name").str.empty());
    EXPECT_GE(ev.at("dur").num, 0.0);
    pid_ts[pid].push_back(ev.at("ts").num);
  }
  // One process_name plus one thread_name metadata event per rank.
  EXPECT_EQ(meta_events, 2 * static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(per_pid[r], 1u) << "no X events for rank " << r;
    ASSERT_EQ(per_pid[r], rec.spans(r).size());
  }

  // Exported timestamps are the recorder's clocks in microseconds; on the
  // simulated machine that is exactly the deterministic virtual clock.
  for (int r = 0; r < n; ++r) {
    const auto spans = rec.spans(r);
    const auto& ts = pid_ts[r];
    ASSERT_EQ(ts.size(), spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_NEAR(ts[i], spans[i].t0 * 1e6, 1e-5);
    }
    if (virtual_time && !ts.empty()) {
      EXPECT_LE(ts.back(),
                now_after[static_cast<std::size_t>(r)].value * 1e6 + 1e-5);
    }
  }
}

TEST(ObsEndToEnd, SimMachineVirtualTimeTrace) {
  sim::SimMachine machine(topo::mini8(), 8);
  Observer observer(8);
  std::vector<PaddedNow> now_after;
  run_traced(machine, observer, now_after);
  check_trace(observer, now_after, /*virtual_time=*/true);
}

TEST(ObsEndToEnd, RealMachineWallClockTrace) {
  mach::RealMachine machine(topo::mini8(), 8);
  Observer observer(8);
  std::vector<PaddedNow> now_after;
  run_traced(machine, observer, now_after);
  check_trace(observer, now_after, /*virtual_time=*/false);
}

TEST(ObsEndToEnd, SimTraceIsDeterministic) {
  auto collect = [] {
    sim::SimMachine machine(topo::mini8(), 8);
    Observer observer(8);
    std::vector<PaddedNow> now_after;
    run_traced(machine, observer, now_after);
    std::ostringstream os;
    write_chrome_trace(os, observer.trace(), "det");
    return os.str();
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ObsEndToEnd, DisabledTuningRecordsNothing) {
  sim::SimMachine machine(topo::mini8(), 8);
  auto comp = coll::make_component("xhc", machine);  // Tuning::trace = false
  Observer observer(8);
  comp->set_observer(&observer);

  constexpr std::size_t kBytes = 16u << 10;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 8; ++r) bufs.emplace_back(machine, r, kBytes);
  machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
                0);
  });

  EXPECT_EQ(observer.trace().recorded(), 0u);
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    EXPECT_EQ(observer.metrics().total(static_cast<Counter>(i)), 0u);
  }
}

TEST(ObsEndToEnd, TunedBaselineTraces) {
  sim::SimMachine machine(topo::mini8(), 8);
  coll::Tuning tuning;
  tuning.trace = true;
  auto comp = coll::make_component("tuned", machine, tuning);
  Observer observer(8);
  comp->set_observer(&observer);

  constexpr std::size_t kCount = 4096;
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < 8; ++r) {
    sbufs.emplace_back(machine, r, kCount * sizeof(float));
    rbufs.emplace_back(machine, r, kCount * sizeof(float));
  }
  machine.run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    auto* s = static_cast<float*>(sbufs[r].get());
    for (std::size_t i = 0; i < kCount; ++i) s[i] = 1.0f;
    comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                    mach::DType::kF32, mach::ROp::kSum);
  });

  std::set<std::string> cats;
  for (int r = 0; r < 8; ++r) {
    for (const Span& sp : observer.trace().spans(r)) cats.insert(sp.cat);
  }
  EXPECT_TRUE(cats.count("collective"));
  EXPECT_TRUE(cats.count("reduce"));
  EXPECT_GT(observer.metrics().total(Counter::kReduceBytes), 0u);
}

TEST(ObsExport, EscapesSpecialCharacters) {
  Recorder rec(1, 8);
  static const char kName[] = "we\"ird\\name\n";
  rec.record(0, "cat", kName, 0.0, 1.0);
  std::ostringstream os;
  write_chrome_trace(os, rec, "esc");
  const std::string json = os.str();
  JsonParser parser(json);
  const JValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << json;
  bool found = false;
  for (const JValue& ev : root.at("traceEvents").arr) {
    if (ev.at("ph").str == "X" && ev.at("name").str == kName) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ObsExport, EmptyRecorderProducesValidTrace) {
  Recorder rec(4, 8);  // no spans recorded at all
  std::ostringstream os;
  write_chrome_trace(os, rec, "empty");
  const std::string json = os.str();
  JsonParser parser(json);
  const JValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << json;
  std::size_t meta = 0;
  for (const JValue& ev : root.at("traceEvents").arr) {
    EXPECT_EQ(ev.at("ph").str, "M");
    ++meta;
  }
  EXPECT_EQ(meta, 8u);  // metadata for 4 ranks, nothing else
}

TEST(ObsExport, NonFiniteDurationsStayValidJson) {
  Recorder rec(1, 8);
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  rec.record(0, "cat", "inf_end", 0.0, inf);
  rec.record(0, "cat", "nan_start", nan, 1.0);
  std::ostringstream os;
  write_chrome_trace(os, rec, "nonfinite");
  const std::string json = os.str();
  JsonParser parser(json);
  const JValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << json;
  for (const JValue& ev : root.at("traceEvents").arr) {
    if (ev.at("ph").str != "X") continue;
    EXPECT_TRUE(std::isfinite(ev.at("ts").num));
    EXPECT_TRUE(std::isfinite(ev.at("dur").num));
  }
}

TEST(ObsMetrics, CmaBytesSplitFromSingleCopy) {
  sim::SimMachine machine(topo::mini8(), 8);
  coll::Tuning tuning;
  tuning.trace = true;
  tuning.mechanism = smsc::Mechanism::kCma;
  auto comp = coll::make_component("xhc", machine, tuning);
  Observer observer(8);
  comp->set_observer(&observer);

  constexpr std::size_t kBytes = 64u << 10;  // well above cico_threshold
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 8; ++r) bufs.emplace_back(machine, r, kBytes);
  util::fill_pattern(bufs[0].get(), kBytes, 77);
  machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
                0);
  });

  // All member pulls ride CMA, so the single-copy counter stays clean.
  EXPECT_GT(observer.metrics().total(Counter::kCmaBytes), 0u);
  EXPECT_EQ(observer.metrics().total(Counter::kSingleCopyBytes), 0u);
}

TEST(ObsObserver, MetricsTablePerRankOrdering) {
  Observer observer(4);
  Metrics& m = observer.metrics();
  m.add(3, Counter::kCicoBytes, 30);
  m.add(1, Counter::kCicoBytes, 10);
  m.add(0, Counter::kFlagWaits, 5);
  std::ostringstream os;
  observer.metrics_table(/*per_rank=*/true).print(os);
  const std::string text = os.str();
  // Counter-enum order first, rank order within: cico r1 before cico r3,
  // both before the flag_waits block.
  const auto cico_r1 = text.find("[r1]");
  const auto cico_r3 = text.find("[r3]");
  const auto waits = text.find("flag_waits");
  ASSERT_NE(cico_r1, std::string::npos) << text;
  ASSERT_NE(cico_r3, std::string::npos) << text;
  ASSERT_NE(waits, std::string::npos) << text;
  EXPECT_LT(cico_r1, cico_r3);
  EXPECT_LT(cico_r3, waits);
  EXPECT_GT(text.find("[r0]"), waits);  // r0 only contributed flag_waits
}

// ---------------------------------------------------------------------------
// Windowed time-series plane (obs/timeseries.h)

TEST(ObsTimeSeries, EmptyPlaneHasNoWindowsAndExportsValidJson) {
  TimeSeries ts(2, 0.01);
  ts.add_series("lat");
  EXPECT_EQ(ts.used_windows(), 0);
  EXPECT_EQ(ts.merged(0, 0).count, 0u);
  std::ostringstream os;
  write_timeseries_json(os, ts, "empty");
  const std::string text = os.str();
  JsonParser parser(text);
  const JValue doc = parser.parse();
  EXPECT_TRUE(parser.ok());
  EXPECT_EQ(doc.at("windows").num, 0.0);
  ASSERT_EQ(doc.at("series").arr.size(), 1u);
  EXPECT_EQ(doc.at("series").arr[0].at("name").str, "lat");
  EXPECT_TRUE(doc.at("series").arr[0].at("windows").arr.empty());
}

TEST(ObsTimeSeries, SingleSampleCellIsExact) {
  TimeSeries ts(1, 0.01);
  const int sid = ts.add_series("lat");
  ts.record(0, sid, 0.0215, 3.5);  // window 2
  EXPECT_EQ(ts.used_windows(), 3);
  const TimeSeries::Cell cell = ts.merged(sid, 2);
  EXPECT_EQ(cell.count, 1u);
  EXPECT_EQ(cell.sum, 3.5);
  EXPECT_EQ(cell.min, 3.5);
  EXPECT_EQ(cell.max, 3.5);
  EXPECT_EQ(ts.merged(sid, 0).count, 0u);
  EXPECT_EQ(ts.merged(sid, 1).count, 0u);
}

TEST(ObsTimeSeries, LateTimestampsClampIntoLastWindow) {
  TimeSeries ts(1, 0.01, 4);
  const int sid = ts.add_series("lat");
  ts.record(0, sid, 1e9, 1.0);  // far beyond the plane
  ts.record(0, sid, -2.0, 7.0);  // negative clamps to window 0
  EXPECT_EQ(ts.window_of(1e9), 3);
  EXPECT_EQ(ts.used_windows(), 4);
  EXPECT_EQ(ts.merged(sid, 3).count, 1u);
  EXPECT_EQ(ts.merged(sid, 0).sum, 7.0);
}

TEST(ObsTimeSeries, CounterDeltasAreWindowedAndSurviveReset) {
  Metrics m(1);
  TimeSeries ts(1, 0.01);
  ts.watch_counters(&m);
  m.add(0, Counter::kFlagWaits, 5);
  ts.sample_counters(0, 0.001);  // window 0: delta 5
  // A --metrics style end-of-run read sees the full value: sampling never
  // mutates the registry (independent watermarks, publish_delta pattern).
  EXPECT_EQ(m.total(Counter::kFlagWaits), 5u);
  m.reset_counters();  // mid-stream reset: value drops below the watermark
  m.add(0, Counter::kFlagWaits, 3);
  ts.sample_counters(0, 0.015);  // window 1: delta restarts from cur = 3
  EXPECT_EQ(ts.counter_sum(Counter::kFlagWaits, 0), 5.0);
  EXPECT_EQ(ts.counter_sum(Counter::kFlagWaits, 1), 3.0);
  EXPECT_EQ(ts.counter_total(Counter::kFlagWaits), 8.0);
}

TEST(ObsTimeSeries, RepeatedSamplesInOneWindowNeverDoubleCount) {
  Metrics m(1);
  TimeSeries ts(1, 0.01);
  ts.watch_counters(&m);
  m.add(0, Counter::kCicoBytes, 100);
  ts.sample_counters(0, 0.002);
  ts.sample_counters(0, 0.004);  // no new increments: zero delta
  m.add(0, Counter::kCicoBytes, 50);
  ts.sample_counters(0, 0.006);
  EXPECT_EQ(ts.counter_sum(Counter::kCicoBytes, 0), 150.0);
  EXPECT_EQ(ts.counter_total(Counter::kCicoBytes), 150.0);
}

TEST(ObsTimeSeries, TwoPlanesWatchingOneRegistryKeepIndependentWatermarks) {
  Metrics m(1);
  TimeSeries a(1, 0.01);
  TimeSeries b(1, 0.01);
  a.watch_counters(&m);
  b.watch_counters(&m);
  m.add(0, Counter::kCicoBytes, 10);
  a.sample_counters(0, 0.001);
  m.add(0, Counter::kCicoBytes, 7);
  a.sample_counters(0, 0.002);
  b.sample_counters(0, 0.002);  // b sees the full 17 in one delta
  EXPECT_EQ(a.counter_total(Counter::kCicoBytes), 17.0);
  EXPECT_EQ(b.counter_total(Counter::kCicoBytes), 17.0);
}

TEST(ObsTimeSeries, RowOfMapsSamplingRanksOntoRegistryRows) {
  Metrics m(2);
  TimeSeries ts(4, 0.01);
  // Plane ranks 1 and 3 own registry rows 0 and 1; ranks 0/2 sample nothing.
  ts.watch_counters(&m, {-1, 0, -1, 1});
  m.add(0, Counter::kFlagWaits, 2);
  m.add(1, Counter::kFlagWaits, 9);
  for (int r = 0; r < 4; ++r) ts.sample_counters(r, 0.001);
  EXPECT_EQ(ts.counter_total(Counter::kFlagWaits), 11.0);
}

TEST(ObsTimeSeries, MergeIsRankOrderedAndJsonIsByteDeterministic) {
  TimeSeries ts(3, 0.01);
  const int sid = ts.add_series("lat");
  ts.record(2, sid, 0.001, 4.0);
  ts.record(0, sid, 0.002, 1.0);
  ts.record(1, sid, 0.003, 0.25);
  const TimeSeries::Cell cell = ts.merged(sid, 0);
  EXPECT_EQ(cell.count, 3u);
  EXPECT_EQ(cell.sum, 1.0 + 0.25 + 4.0);
  EXPECT_EQ(cell.min, 0.25);
  EXPECT_EQ(cell.max, 4.0);
  std::ostringstream os1;
  std::ostringstream os2;
  write_timeseries_json(os1, ts, "det");
  write_timeseries_json(os2, ts, "det");
  EXPECT_EQ(os1.str(), os2.str());
  EXPECT_NE(os1.str().find("\"kind\":\"sample\""), std::string::npos);
}

TEST(ObsTimeSeries, ClearForgetsSamplesAndWatermarks) {
  Metrics m(1);
  TimeSeries ts(1, 0.01);
  const int sid = ts.add_series("lat");
  ts.watch_counters(&m);
  ts.record(0, sid, 0.001, 1.0);
  m.add(0, Counter::kFlagWaits, 4);
  ts.sample_counters(0, 0.001);
  ts.clear();
  EXPECT_EQ(ts.used_windows(), 0);
  EXPECT_EQ(ts.counter_total(Counter::kFlagWaits), 0.0);
  // Watermarks reset too: the next sample re-publishes the full value.
  ts.sample_counters(0, 0.001);
  EXPECT_EQ(ts.counter_total(Counter::kFlagWaits), 4.0);
}

TEST(ObsObserver, AbsorbTrafficCounter) {
  topo::Topology topo = topo::epyc2p();
  topo::RankMap map(topo, topo.n_cores(), topo::MapPolicy::kCore);
  p2p::TrafficCounter traffic(&topo, &map);
  traffic.record(0, 1);   // intra-NUMA neighbours
  traffic.record(0, 32);  // socket 0 -> socket 1 (64-core Epyc halves)
  Observer observer(topo.n_cores());
  observer.absorb(traffic);
  EXPECT_EQ(observer.metrics().total(Counter::kMsgIntraNuma), 1u);
  EXPECT_EQ(observer.metrics().total(Counter::kMsgInterSocket), 1u);
}

}  // namespace
}  // namespace xhc::obs
