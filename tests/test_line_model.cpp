// Coherence observatory tests: LineModel/CohStats event accounting, delta
// publishing, and SimMachine end-to-end attribution (ISSUE 6).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "mach/flag.h"
#include "obs/coh.h"
#include "obs/metrics.h"
#include "sim/coh_stats.h"
#include "sim/line_model.h"
#include "sim/params.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/cacheline.h"

namespace xhc::sim {
namespace {

/// Synthetic address on cache line `id` (the model keys on line_of(addr)).
const void* ln(int id) {
  return reinterpret_cast<const void*>(static_cast<std::uintptr_t>(id) * 64);
}

class LineModelCohTest : public ::testing::Test {
 protected:
  LineModelCohTest()
      : topo_(topo::epyc1p()), params_(epyc_like_params()),
        lines_(&topo_, &params_) {
    stats_.set_enabled(true);
    lines_.set_stats(&stats_);
  }
  std::uint64_t total(CohEvent e) const { return stats_.total(e); }

  topo::Topology topo_;
  SimParams params_;
  CohStats stats_;
  LineModel lines_;
};

TEST_F(LineModelCohTest, OwnerHandoffCountsTransferAndInval) {
  lines_.write(ln(1), 0, 0.0);
  EXPECT_EQ(lines_.owner_of(ln(1)), 0);
  EXPECT_EQ(total(CohEvent::kOwnershipTransfer), 0u);

  lines_.write(ln(1), 8, 1.0);  // foreign owner: transfer + invalidate
  EXPECT_EQ(lines_.owner_of(ln(1)), 8);
  EXPECT_EQ(total(CohEvent::kOwnershipTransfer), 1u);
  EXPECT_EQ(total(CohEvent::kInvalBroadcast), 1u);

  lines_.write(ln(1), 8, 2.0);  // same owner, no sharers: neither
  EXPECT_EQ(total(CohEvent::kOwnershipTransfer), 1u);
  EXPECT_EQ(total(CohEvent::kInvalBroadcast), 1u);
}

TEST_F(LineModelCohTest, ReadClassification) {
  (void)lines_.read(ln(1), 5, 0.0);  // never written
  EXPECT_EQ(total(CohEvent::kLocalHit), 1u);

  lines_.write(ln(1), 0, 1.0);
  (void)lines_.read(ln(1), 8, 2.0);  // dirty, remote: HITM at owner's port
  EXPECT_EQ(total(CohEvent::kHitm), 1u);
  EXPECT_EQ(stats_.hitm_pairs().at({0, 8}), 1u);

  (void)lines_.read(ln(1), 9, 3.0);  // 8 and 9 share an L3: peer assist
  EXPECT_EQ(total(CohEvent::kLlcHit), 1u);

  (void)lines_.read(ln(1), 12, 4.0);  // clean line, other LLC group
  EXPECT_EQ(total(CohEvent::kRemoteFill), 1u);

  (void)lines_.read(ln(1), 0, 5.0);  // owner reads its own line
  EXPECT_EQ(total(CohEvent::kLocalHit), 2u);
}

TEST(LineModelCohArm, SlcServiceInsteadOfLlcAssist) {
  topo::Topology arm = topo::armn1();
  SimParams params = armn1_params();
  LineModel lines(&arm, &params);
  CohStats st;
  st.set_enabled(true);
  lines.set_stats(&st);

  lines.write(ln(1), 0, 0.0);
  (void)lines.read(ln(1), 10, 1.0);  // dirty: HITM, then lives in the SLC
  (void)lines.read(ln(1), 11, 2.0);  // no peer assist on the SLC machine
  (void)lines.read(ln(1), 12, 3.0);
  EXPECT_EQ(st.total(CohEvent::kHitm), 1u);
  EXPECT_EQ(st.total(CohEvent::kSlcHit), 2u);
  EXPECT_EQ(st.total(CohEvent::kLlcHit), 0u);
}

TEST_F(LineModelCohTest, PipelinedReadOverlapsLatencyButSerializes) {
  lines_.write(ln(1), 0, 0.0);
  const double full = lines_.read(ln(1), 8, 1.0);

  LineModel fresh(&topo_, &params_);
  fresh.write(ln(1), 0, 0.0);
  const double piped = fresh.read(ln(1), 8, 1.0, /*pipelined=*/true);
  EXPECT_LT(piped, full);  // only a quarter of the miss latency is exposed

  // Occupancy still applies: a second pipelined read of another line owned
  // by the same core queues behind the first at the owner's port.
  fresh.write(ln(2), 0, 0.0);
  LineModel fresh2(&topo_, &params_);
  fresh2.write(ln(2), 0, 0.0);
  const double alone = fresh2.read(ln(2), 12, 1.0, /*pipelined=*/true);
  const double queued = fresh.read(ln(2), 12, 1.0, /*pipelined=*/true);
  EXPECT_GT(queued, alone);
}

TEST_F(LineModelCohTest, RmwSerializesAndTransfersOwnership) {
  const double t1 = lines_.rmw(ln(1), 0, 0.0);
  const double t2 = lines_.rmw(ln(1), 4, 0.0);
  const double t3 = lines_.rmw(ln(1), 8, 0.0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t2);
  EXPECT_EQ(total(CohEvent::kRmw), 3u);
  // The first RMW finds the line unowned; the other two steal it.
  EXPECT_EQ(total(CohEvent::kOwnershipTransfer), 2u);
  EXPECT_EQ(stats_.lines().at(util::line_of(ln(1))).rmws, 3u);
}

TEST_F(LineModelCohTest, StoreSeqBumpsEvenWithTrackingOff) {
  stats_.set_enabled(false);
  EXPECT_EQ(lines_.store_seq(ln(1)), 0u);
  lines_.write(ln(1), 0, 0.0);
  lines_.rmw(ln(1), 4, 1.0);
  EXPECT_EQ(lines_.store_seq(ln(1)), 2u);  // accounting state, not stats
  EXPECT_EQ(stats_.total(CohEvent::kRmw), 0u);  // but no events recorded
  EXPECT_TRUE(stats_.lines().empty());
}

TEST_F(LineModelCohTest, TrackingIsTimingNeutral) {
  LineModel untracked(&topo_, &params_);
  auto drive = [](LineModel& lm) {
    std::vector<double> ts;
    ts.push_back(lm.write(ln(1), 0, 0.0));
    ts.push_back(lm.read(ln(1), 8, 1.0));
    ts.push_back(lm.read(ln(1), 9, 1.0));
    ts.push_back(lm.write(ln(1), 4, 2.0));
    ts.push_back(lm.rmw(ln(2), 3, 2.5));
    ts.push_back(lm.rmw(ln(2), 7, 2.5));
    ts.push_back(lm.read(ln(2), 12, 3.0, /*pipelined=*/true));
    return ts;
  };
  const auto tracked_ts = drive(lines_);
  const auto untracked_ts = drive(untracked);
  ASSERT_EQ(tracked_ts.size(), untracked_ts.size());
  for (std::size_t i = 0; i < tracked_ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(tracked_ts[i], untracked_ts[i]) << "op " << i;
  }
  EXPECT_GT(stats_.total(CohEvent::kHitm), 0u);  // tracking did record
}

TEST_F(LineModelCohTest, ResetClearsAllState) {
  lines_.write(ln(1), 0, 0.0);
  (void)lines_.read(ln(1), 8, 1.0);
  lines_.reset();
  EXPECT_EQ(lines_.owner_of(ln(1)), -1);
  EXPECT_EQ(lines_.store_seq(ln(1)), 0u);
  // A fresh read is a cold local hit again, with no port queue memory.
  const double r = lines_.read(ln(1), 8, 10.0);
  EXPECT_DOUBLE_EQ(r, 10.0 + params_.line_hit);

  stats_.reset();
  EXPECT_EQ(stats_.total(CohEvent::kHitm), 0u);
  EXPECT_TRUE(stats_.lines().empty());
  EXPECT_TRUE(stats_.hitm_pairs().empty());
  EXPECT_TRUE(stats_.active_cores().empty());
}

TEST_F(LineModelCohTest, PerCoreAttributionAndSpinRefetchHook) {
  lines_.write(ln(1), 0, 0.0);
  (void)lines_.read(ln(1), 8, 1.0);
  EXPECT_EQ(stats_.core_count(8, CohEvent::kHitm), 1u);
  EXPECT_EQ(stats_.core_count(0, CohEvent::kHitm), 0u);

  stats_.on_spin_refetch(ln(1), 8, 0, 3);
  stats_.on_spin_refetch(ln(1), 8, 0, 0);  // n == 0 records nothing
  EXPECT_EQ(stats_.core_count(8, CohEvent::kSpinRefetch), 3u);
  EXPECT_EQ(stats_.lines().at(util::line_of(ln(1))).spin_refetches, 3u);
  EXPECT_EQ(stats_.hitm_pairs().at({0, 8}), 4u);  // 1 HITM + 3 refetches
}

TEST_F(LineModelCohTest, PublishDeltaNeverDoubleCounts) {
  lines_.write(ln(1), 0, 0.0);
  (void)lines_.read(ln(1), 8, 1.0);

  auto d1 = stats_.publish_delta(8);
  EXPECT_EQ(d1[static_cast<int>(CohEvent::kHitm)], 1u);
  auto d2 = stats_.publish_delta(8);
  EXPECT_EQ(d2[static_cast<int>(CohEvent::kHitm)], 0u);  // already published

  lines_.write(ln(1), 0, 2.0);
  (void)lines_.read(ln(1), 8, 3.0);
  auto d3 = stats_.publish_delta(8);
  EXPECT_EQ(d3[static_cast<int>(CohEvent::kHitm)], 1u);  // only the new one

  auto dn = stats_.publish_delta(99);  // unseen core: all zeros
  for (const auto v : dn) EXPECT_EQ(v, 0u);
}

// ---------------------------------------------------------------------------
// SimMachine end-to-end: attribution, spin-refetch windows, publishing.

TEST(SimMachineCoh, FlagTrafficAttributedByName) {
  SimMachine m(topo::mini8(), 8);
  m.set_coh_tracking(true);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.verify_ledger().register_flag(f, "t.sig");
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      ctx.flag_store(*f, 1);
    } else {
      ctx.flag_wait_ge(*f, 1);
    }
  });
  obs::CohReport report;
  ASSERT_TRUE(m.coh_report(&report));
  ASSERT_FALSE(report.lines.empty());
  bool found = false;
  for (const auto& l : report.lines) found = found || l.name == "t.sig";
  EXPECT_TRUE(found) << "flag name not attributed in the line table";
  EXPECT_GT(report.totals.hitm_class() + report.totals.local_hits +
                report.totals.llc_hits + report.totals.remote_fills,
            0u);
  m.free(f);
}

TEST(SimMachineCoh, UnregisteredLinesFoldIntoOneRow) {
  SimMachine m(topo::mini8(), 8);
  m.set_coh_tracking(true);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      ctx.flag_store(*f, 1);
    } else if (ctx.rank() == 1) {
      ctx.flag_wait_ge(*f, 1);
    }
  });
  obs::CohReport report;
  ASSERT_TRUE(m.coh_report(&report));
  int anon_rows = 0;
  for (const auto& l : report.lines) {
    anon_rows += (l.name == "(unregistered)") ? 1 : 0;
    EXPECT_EQ(l.name.find("0x"), std::string::npos)
        << "raw address leaked into report: " << l.name;
  }
  EXPECT_EQ(anon_rows, 1);
  m.free(f);
}

TEST(SimMachineCoh, SpinWindowCountsMidWaitStores) {
  SimMachine m(topo::mini8(), 8);
  m.set_coh_tracking(true);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.verify_ledger().register_flag(f, "t.spin");
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 1; i <= 3; ++i) {
        ctx.charge(1e-6);
        ctx.flag_store(*f, static_cast<std::uint64_t>(i));
      }
    } else if (ctx.rank() == 1) {
      ctx.flag_wait_ge(*f, 3);
    }
  });
  // Rank 1 blocks before the first store; stores 1 and 2 land mid-wait and
  // each invalidates its spinning copy — 2 modeled re-fetches, serviced by
  // the owner, on the spinner's core.
  EXPECT_EQ(m.coh_stats().total(CohEvent::kSpinRefetch), 2u);
  obs::CohReport report;
  ASSERT_TRUE(m.coh_report(&report));
  const obs::CohTotals t = obs::coh_sum_matching(report, "t.spin");
  EXPECT_EQ(t.spin_refetches, 2u);
  m.free(f);
}

TEST(SimMachineCoh, PublishIntoMetricsComposesWithReset) {
  SimMachine m(topo::mini8(), 8);
  m.set_coh_tracking(true);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.verify_ledger().register_flag(f, "t.pub");
  auto traffic = [&] {
    m.run([&](mach::Ctx& ctx) {
      if (ctx.rank() == 0) {
        ctx.flag_store(*f, ctx.flag_read(*f) + 1);
      } else {
        ctx.flag_wait_ge(*f, 1);
      }
    });
  };
  traffic();

  obs::Metrics metrics(8);
  m.publish_coh_counters(metrics);
  const std::uint64_t first = metrics.total(obs::Counter::kCohHitm) +
                              metrics.total(obs::Counter::kCohLocalHit) +
                              metrics.total(obs::Counter::kCohRemoteFill) +
                              metrics.total(obs::Counter::kCohSpinRefetch);
  EXPECT_GT(first, 0u);

  // Re-publishing with no new traffic adds nothing (delta semantics).
  m.publish_coh_counters(metrics);
  EXPECT_EQ(metrics.total(obs::Counter::kCohHitm) +
                metrics.total(obs::Counter::kCohLocalHit) +
                metrics.total(obs::Counter::kCohRemoteFill) +
                metrics.total(obs::Counter::kCohSpinRefetch),
            first);

  // reset_counters + republish does not resurrect already-published events.
  metrics.reset_counters();
  m.publish_coh_counters(metrics);
  EXPECT_EQ(metrics.total(obs::Counter::kCohHitm), 0u);
  EXPECT_EQ(metrics.total(obs::Counter::kCohLocalHit), 0u);

  // New traffic after a reset publishes only the new deltas.
  traffic();
  m.publish_coh_counters(metrics);
  const std::uint64_t second = metrics.total(obs::Counter::kCohHitm) +
                               metrics.total(obs::Counter::kCohLocalHit) +
                               metrics.total(obs::Counter::kCohRemoteFill) +
                               metrics.total(obs::Counter::kCohSpinRefetch);
  EXPECT_GT(second, 0u);
  EXPECT_LE(second, first);  // one round of traffic, not two
  m.free(f);
}

TEST(SimMachineCoh, TrackingOffIsBitIdenticalAndFree) {
  auto drive = [](bool track) {
    SimMachine m(topo::mini8(), 8);
    m.set_coh_tracking(track);
    auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
    m.verify_ledger().register_flag(f, "t.zero");
    const auto rr = m.run([&](mach::Ctx& ctx) {
      if (ctx.rank() == 0) {
        ctx.flag_store(*f, 1);
      } else {
        ctx.flag_wait_ge(*f, 1);
      }
    });
    m.free(f);
    return rr.rank_time;
  };
  const auto on = drive(true);
  const auto off = drive(false);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_DOUBLE_EQ(on[i], off[i]) << "rank " << i;
  }

  SimMachine idle(topo::mini8(), 8);
  obs::CohReport report;
  ASSERT_TRUE(idle.coh_report(&report));  // tracking off: empty, not absent
  EXPECT_TRUE(report.lines.empty());
}

TEST(SimMachineCoh, Fig4StyleRmwsTransferOwnershipPerBump) {
  SimMachine m(topo::mini8(), 8);
  m.set_coh_tracking(true);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.verify_ledger().register_flag(f, "t.atomic_ctr",
                                  verify::WriterPolicy::kShared);
  m.run([&](mach::Ctx& ctx) { (void)ctx.fetch_add(*f, 1); });
  obs::CohReport report;
  ASSERT_TRUE(m.coh_report(&report));
  const obs::CohTotals t = obs::coh_sum_matching(report, "t.atomic_ctr");
  EXPECT_EQ(t.rmws, 8u);
  // The first bump finds the line unowned; every later one steals it from
  // the previous bumper's core (paper Fig. 4's ~N transfers for N RMWs).
  EXPECT_EQ(t.transfers, 7u);
  m.free(f);
}

TEST(SimMachineCoh, Fig10StylePackedLayoutCostsMoreThanSeparated) {
  constexpr int kRounds = 3;
  struct Cost {
    std::uint64_t hitm_class = 0;
    std::uint64_t transfers = 0;
  };
  // One leader publishing per-member announce flags; members spin on their
  // own flag. `packed` places all 7 member flags on one cache line
  // (sizeof(Flag) == 8), `separated` pads each to a private line.
  auto drive = [&](bool packed) {
    SimMachine m(topo::mini8(), 8);
    m.set_coh_tracking(true);
    const int n = m.n_ranks();
    void* mem = m.alloc(0, packed ? sizeof(mach::Flag) * 8
                                  : sizeof(util::CachePadded<mach::Flag>) * 8);
    auto flag_at = [&](int i) -> mach::Flag& {
      if (packed) return static_cast<mach::Flag*>(mem)[i];
      return *static_cast<util::CachePadded<mach::Flag>*>(mem)[i];
    };
    for (int i = 1; i < n; ++i) {
      m.verify_ledger().register_flag(
          &flag_at(i), (packed ? "t.packed[" : "t.sep[") + std::to_string(i) +
                           "]",
          verify::WriterPolicy::kFixed);
    }
    m.run([&](mach::Ctx& ctx) {
      for (int round = 1; round <= kRounds; ++round) {
        if (ctx.rank() == 0) {
          for (int i = 1; i < ctx.size(); ++i) {
            ctx.flag_store(flag_at(i), static_cast<std::uint64_t>(round));
          }
        } else {
          ctx.flag_wait_ge(flag_at(ctx.rank()),
                           static_cast<std::uint64_t>(round));
        }
        ctx.barrier();
      }
    });
    obs::CohReport report;
    EXPECT_TRUE(m.coh_report(&report));
    const obs::CohTotals t =
        obs::coh_sum_matching(report, packed ? "t.packed" : "t.sep");
    m.free(mem);
    return Cost{t.hitm + t.spin_refetches, t.transfers};
  };
  const Cost packed = drive(true);
  const Cost sep = drive(false);
  // The packed line eats strictly more HITM-class traffic: every store to a
  // neighbour's flag invalidates all other members' spinning copies.
  EXPECT_GT(packed.hitm_class + packed.transfers,
            sep.hitm_class + sep.transfers);
  EXPECT_GT(packed.hitm_class, 0u);
}

TEST(SimMachineCoh, ReportIsDeterministicAcrossMachines) {
  auto render = [] {
    SimMachine m(topo::mini8(), 8);
    m.set_coh_tracking(true);
    auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
    m.verify_ledger().register_flag(f, "t.det");
    auto* g = static_cast<mach::Flag*>(m.alloc(1, sizeof(mach::Flag)));
    // g stays unregistered: exercises the "(unregistered)" fold.
    m.run([&](mach::Ctx& ctx) {
      if (ctx.rank() == 0) {
        ctx.flag_store(*f, 1);
      } else if (ctx.rank() == 1) {
        ctx.flag_wait_ge(*f, 1);
        ctx.flag_store(*g, 1);
      } else if (ctx.rank() == 2) {
        ctx.flag_wait_ge(*g, 1);
      }
    });
    obs::CohReport report;
    EXPECT_TRUE(m.coh_report(&report));
    std::ostringstream os;
    obs::write_coh_report(os, report);
    m.free(f);
    m.free(g);
    return std::move(os).str();
  };
  // Two machines allocate at different heap addresses; byte-identical
  // output proves no address-dependent content or ordering leaks through.
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace xhc::sim
