// Unit tests for the simulator building blocks: the congestion ledger, the
// buffer cache model, the cache-line model, and the virtual-time scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>

#include "sim/cache_model.h"
#include "sim/line_model.h"
#include "sim/params.h"
#include "sim/resources.h"
#include "sim/scheduler.h"
#include "topo/presets.h"
#include "util/check.h"

namespace xhc::sim {
namespace {

// ---------------------------------------------------------------------------
// ResourceLedger

TEST(Ledger, FullShareWhenIdle) {
  ResourceLedger ledger;
  ledger.set_capacity({ResKind::kNumaChannel, 0}, 100.0);
  EXPECT_DOUBLE_EQ(ledger.share({ResKind::kNumaChannel, 0}, 0.0), 100.0);
}

TEST(Ledger, FairShareWithInFlight) {
  ResourceLedger ledger;
  const ResId res{ResKind::kNumaChannel, 0};
  ledger.set_capacity(res, 100.0);
  ledger.book(res, 0.0, 10.0);
  ledger.book(res, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(ledger.share(res, 5.0), 100.0 / 3.0);
  EXPECT_EQ(ledger.active(res, 5.0), 2);
}

TEST(Ledger, ExpiresFinishedTransfers) {
  ResourceLedger ledger;
  const ResId res{ResKind::kXSocketLink, 0};
  ledger.set_capacity(res, 50.0);
  ledger.book(res, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(ledger.share(res, 2.0), 50.0);
  EXPECT_EQ(ledger.active(res, 2.0), 0);
}

TEST(Ledger, DistinctResourcesIndependent) {
  ResourceLedger ledger;
  ledger.set_capacity({ResKind::kNumaChannel, 0}, 100.0);
  ledger.set_capacity({ResKind::kNumaChannel, 1}, 100.0);
  ledger.book({ResKind::kNumaChannel, 0}, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(ledger.share({ResKind::kNumaChannel, 1}, 1.0), 100.0);
}

TEST(Ledger, UnknownResourceIsAnError) {
  ResourceLedger ledger;
  EXPECT_THROW(ledger.share({ResKind::kSlc, 0}, 0.0), util::Error);
}

// ---------------------------------------------------------------------------
// CacheModel

class CacheModelTest : public ::testing::Test {
 protected:
  CacheModelTest()
      : topo_(topo::epyc1p()), params_(epyc_like_params()),
        cache_(&topo_, &params_) {}
  topo::Topology topo_;
  SimParams params_;
  CacheModel cache_;
};

TEST_F(CacheModelTest, UnwrittenBlockServedFromHomeMemory) {
  cache_.add_block(1, 4096, /*home_numa=*/2);
  const ServeInfo info = cache_.on_read(1, /*reader_core=*/0, 4096);
  EXPECT_EQ(info.kind, ServeKind::kMemory);
  EXPECT_EQ(info.src_numa, 2);
  EXPECT_EQ(info.distance, topo::Distance::kCrossNuma);
}

TEST_F(CacheModelTest, ProducerLlcServesAfterWrite) {
  cache_.add_block(1, 4096, 0);
  cache_.on_write(1, /*writer_core=*/0);
  const ServeInfo info = cache_.on_read(1, /*reader_core=*/4, 4096);
  EXPECT_EQ(info.kind, ServeKind::kProducerLlc);
  EXPECT_EQ(info.src_llc, 0);
}

TEST_F(CacheModelTest, FullReadEstablishesLocalResidency) {
  cache_.add_block(1, 4096, 0);
  cache_.on_write(1, 0);
  (void)cache_.on_read(1, /*reader_core=*/8, 4096);  // full block
  const ServeInfo again = cache_.on_read(1, 8, 4096);
  EXPECT_EQ(again.kind, ServeKind::kLocalLlc);
}

TEST_F(CacheModelTest, PartialReadsDoNotGrantResidencyUntilCovered) {
  cache_.add_block(1, 64 * 1024, 0);
  cache_.on_write(1, 0);
  // Chunked pull: residency only after a block's worth of bytes moved.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(cache_.on_read(1, 8, 16 * 1024).kind, ServeKind::kLocalLlc);
  }
  (void)cache_.on_read(1, 8, 16 * 1024);  // 64 KB total now
  EXPECT_EQ(cache_.on_read(1, 8, 16 * 1024).kind, ServeKind::kLocalLlc);
}

TEST_F(CacheModelTest, WriteInvalidatesResidency) {
  cache_.add_block(1, 4096, 0);
  cache_.on_write(1, 0);
  (void)cache_.on_read(1, 8, 4096);
  cache_.on_write(1, 0);  // new version
  EXPECT_NE(cache_.on_read(1, 8, 4096).kind, ServeKind::kLocalLlc);
  EXPECT_EQ(cache_.version(1), 2u);
}

TEST_F(CacheModelTest, LargeBlocksNeverCached) {
  // 4 MB does not fit an 8 MB LLC under the group-share rule.
  cache_.add_block(1, 4u << 20, 0);
  cache_.on_write(1, 0);
  const ServeInfo info = cache_.on_read(1, 1, 4u << 20);
  EXPECT_EQ(info.kind, ServeKind::kMemory);
  EXPECT_NE(cache_.on_read(1, 1, 4u << 20).kind, ServeKind::kLocalLlc);
}

TEST(CacheModelArm, SlcResidency) {
  topo::Topology arm = topo::armn1();
  SimParams params = armn1_params();
  CacheModel cache(&arm, &params);
  cache.add_block(1, 4096, 0);
  cache.on_write(1, 0);
  // First reader pulls it through; afterwards the SLC holds it for everyone.
  EXPECT_EQ(cache.on_read(1, 30, 4096).kind, ServeKind::kMemory);
  EXPECT_EQ(cache.on_read(1, 100, 4096).kind, ServeKind::kSlc);
  EXPECT_EQ(cache.on_read(1, 30, 4096).kind, ServeKind::kSlc);
}

// ---------------------------------------------------------------------------
// LineModel

/// Synthetic address on cache line `id` (the model keys on line_of(addr)).
const void* ln(int id) {
  return reinterpret_cast<const void*>(static_cast<std::uintptr_t>(id) * 64);
}

class LineModelTest : public ::testing::Test {
 protected:
  LineModelTest()
      : topo_(topo::epyc1p()), params_(epyc_like_params()),
        lines_(&topo_, &params_) {}
  topo::Topology topo_;
  SimParams params_;
  LineModel lines_;
};

TEST_F(LineModelTest, ColdReadIsLocalHit) {
  EXPECT_DOUBLE_EQ(lines_.read(ln(1), 0, 1.0), 1.0 + params_.line_hit);
}

TEST_F(LineModelTest, OwnerReadsOwnLineCheaply) {
  lines_.write(ln(1), 0, 0.0);
  EXPECT_DOUBLE_EQ(lines_.read(ln(1), 0, 1.0), 1.0 + params_.line_hit);
}

TEST_F(LineModelTest, GroupPeerAssist) {
  // After one core of an LLC group fetches a dirty line, its group peers
  // read at LLC latency (paper §V-D1's implicit hardware assist).
  lines_.write(ln(1), 0, 0.0);
  const double first = lines_.read(ln(1), /*core=*/8, 1.0);  // remote fetch
  EXPECT_GT(first - 1.0, params_.line_lat_llc);
  const double peer = lines_.read(ln(1), /*core=*/9, 1.0);  // 8, 9 share L3
  EXPECT_NEAR(peer - 1.0, params_.line_lat_llc, 1e-12);
}

TEST_F(LineModelTest, ConcurrentDirtyFetchesSerializeAtOwnerPort) {
  lines_.write(ln(1), 0, 0.0);
  lines_.write(ln(2), 0, 0.0);
  // Two different lines, both dirty at core 0: the second fetch queues
  // behind the first on core 0's port (Fig. 10, separated flags).
  const double a = lines_.read(ln(1), 8, 1.0);
  const double b = lines_.read(ln(2), 12, 1.0);
  EXPECT_GT(b, a);  // same issue time, but the second queued at the port
}

TEST_F(LineModelTest, RmwSerializesOwnership) {
  const double t1 = lines_.rmw(ln(1), 0, 0.0);
  const double t2 = lines_.rmw(ln(1), 4, 0.0);
  const double t3 = lines_.rmw(ln(1), 8, 0.0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t2);
  EXPECT_GE(t3, 2 * params_.rmw_service);
}

TEST_F(LineModelTest, WriteInvalidatesSharers) {
  lines_.write(ln(1), 0, 0.0);
  (void)lines_.read(ln(1), 8, 1.0);
  // Re-write pays the invalidation premium.
  const double w = lines_.write(ln(1), 0, 2.0);
  EXPECT_DOUBLE_EQ(w, 2.0 + params_.store_cost + params_.inval_cost);
  // And the sharer must re-fetch.
  const double r = lines_.read(ln(1), 9, 3.0);
  EXPECT_GT(r - 3.0, params_.line_lat_llc);
}

TEST(LineModelArm, EveryCoreFetchesFromSlc) {
  topo::Topology arm = topo::armn1();
  SimParams params = armn1_params();
  LineModel lines(&arm, &params);
  lines.write(ln(1), 0, 0.0);
  (void)lines.read(ln(1), 10, 1.0);
  // No peer assist on the SLC machine: another core still pays the full
  // SLC fetch and serializes on the line.
  const double t2 = lines.read(ln(1), 11, 1.0);
  const double t3 = lines.read(ln(1), 12, 1.0);
  EXPECT_GE(t2 - 1.0, params.line_lat_numa - 1e-12);
  EXPECT_GT(t3, t2);
}

// ---------------------------------------------------------------------------
// VirtualScheduler — every test runs on both execution backends; the
// scheduling discipline (and therefore every timestamp) must be identical.

class SchedulerTest : public ::testing::TestWithParam<SimBackend> {
 protected:
  std::unique_ptr<VirtualScheduler> make(int n, double epoch = 0.0) {
    return VirtualScheduler::create(n, epoch, GetParam());
  }
};

TEST_P(SchedulerTest, RunsMinimumTimeFirst) {
  auto sched = make(2);
  std::vector<int> order;
  std::mutex mu;
  sched->run([&](int r) {
    const double step = r == 0 ? 3.0 : 1.0;
    for (int i = 0; i < 3; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(r);
      }
      sched->advance(r, step);
    }
  });
  // Rank 1 advances in smaller steps, so after rank 0's first step the
  // scheduler must run rank 1 several times. Event order is deterministic:
  // 0(t=0) 1(0) 1(1) 1(2) then 0(3)...
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 0);  // tie at t=0 broken by rank: rank 0 first
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 1);
}

TEST_P(SchedulerTest, WaitUntilResumesAtPredicateTime) {
  auto sched = make(2);
  std::optional<double> publish_time;
  double resumed_at = -1.0;
  sched->run([&](int r) {
    if (r == 0) {
      resumed_at =
          sched->wait_until(0, &publish_time, [&] { return publish_time; });
    } else {
      sched->advance(1, 5.0);
      publish_time = 7.0;
      sched->notify(&publish_time);
      sched->advance(1, 1.0);
    }
  });
  EXPECT_DOUBLE_EQ(resumed_at, 7.0);
}

TEST_P(SchedulerTest, DeadlockIsDetected) {
  auto sched = make(2);
  try {
    sched->run([&](int r) {
      int never = 0;
      sched->wait_until(r, &never,
                        []() -> std::optional<double> { return std::nullopt; });
    });
    FAIL() << "expected a deadlock report";
  } catch (const util::Error& e) {
    // The chronologically-first error is the deadlock report itself, not
    // the secondary aborts of the unwound peers.
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

TEST_P(SchedulerTest, DeadlockAfterFinishIsDetected) {
  // Rank 1 finishes while rank 0 is still parked on a never-signaled
  // channel: the finish-side pick must raise the deadlock report too.
  auto sched = make(2);
  try {
    sched->run([&](int r) {
      if (r == 0) {
        int never = 0;
        sched->wait_until(0, &never, []() -> std::optional<double> {
          return std::nullopt;
        });
      } else {
        sched->advance(1, 1.0);
      }
    });
    FAIL() << "expected a deadlock report";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

TEST_P(SchedulerTest, BarrierReleasesAtMaxArrival) {
  auto sched = make(3);
  std::vector<double> after(3);
  sched->run([&](int r) {
    const double pre[] = {1.0, 4.0, 2.0};
    sched->advance(r, pre[r]);
    sched->barrier(r, 0.5);
    after[static_cast<std::size_t>(r)] = sched->now(r);
  });
  for (const double t : after) EXPECT_DOUBLE_EQ(t, 4.5);
}

TEST_P(SchedulerTest, AbortUnblocksEveryone) {
  auto sched = make(2);
  std::atomic<int> unwound{0};
  EXPECT_THROW(sched->run([&](int r) {
                 if (r == 0) {
                   int never = 0;
                   try {
                     sched->wait_until(0, &never,
                                       []() -> std::optional<double> {
                                         return std::nullopt;
                                       });
                   } catch (...) {
                     ++unwound;
                     throw;
                   }
                 } else {
                   sched->abort_all();
                   ++unwound;
                 }
               }),
               util::Error);
  EXPECT_EQ(unwound.load(), 2);
}

TEST_P(SchedulerTest, RankExceptionAbortsAndRethrows) {
  auto sched = make(3);
  try {
    sched->run([&](int r) {
      if (r == 1) throw util::Error("boom from rank 1");
      int never = 0;
      sched->wait_until(r, &never,
                        []() -> std::optional<double> { return std::nullopt; });
    });
    FAIL() << "expected the rank exception";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos)
        << e.what();
  }
}

TEST_P(SchedulerTest, ManyRanksHeapOrdering) {
  // Staggered advances over enough ranks to exercise real heap reshuffles:
  // rank r repeatedly advances by (r % 7) + 1; the global event sequence
  // must follow the (vtime, rank) total order.
  constexpr int kN = 64;
  auto sched = make(kN);
  std::vector<std::pair<double, int>> events;
  std::mutex mu;
  sched->run([&](int r) {
    for (int i = 0; i < 8; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu);
        events.emplace_back(sched->now(r), r);
      }
      sched->advance(r, static_cast<double>(r % 7 + 1));
    }
  });
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kN * 8));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1], events[i])
        << "out-of-order events at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, SchedulerTest,
                         ::testing::Values(SimBackend::kFiber,
                                           SimBackend::kThreads),
                         [](const auto& info) {
                           return info.param == SimBackend::kFiber
                                      ? "fiber"
                                      : "threads";
                         });

TEST(SchedulerBackend, EnvSelection) {
  // Unset → fiber.
  unsetenv("XHC_SIM_BACKEND");
  EXPECT_EQ(backend_from_env(), SimBackend::kFiber);
  setenv("XHC_SIM_BACKEND", "threads", 1);
  EXPECT_EQ(backend_from_env(), SimBackend::kThreads);
  setenv("XHC_SIM_BACKEND", "fiber", 1);
  EXPECT_EQ(backend_from_env(), SimBackend::kFiber);
  setenv("XHC_SIM_BACKEND", "bogus", 1);
  EXPECT_THROW(backend_from_env(), util::Error);
  unsetenv("XHC_SIM_BACKEND");
}

}  // namespace
}  // namespace xhc::sim
