// White-box tests of the nested shard schedule behind the large-message
// allreduce (core/shard_schedule.h): partition arithmetic, peer symmetry,
// uniformity detection across the topology presets, and the progress-flag
// slot timeline.
#include <gtest/gtest.h>

#include <set>

#include "core/shard_schedule.h"
#include "mach/real_machine.h"
#include "topo/presets.h"

namespace xhc::core {
namespace {

TEST(Partition, CoversParentDisjointly) {
  for (const std::size_t total : {1u, 7u, 64u, 1000u, 4097u}) {
    for (const std::size_t n : {1u, 2u, 3u, 4u, 8u}) {
      const ElemRange parent{0, total};
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const ElemRange p = partition(parent, n, i);
        EXPECT_EQ(p.lo, prev_hi) << total << "/" << n << "#" << i;
        EXPECT_LE(p.lo, p.hi);
        prev_hi = p.hi;
        covered += p.size();
      }
      EXPECT_EQ(prev_hi, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Partition, RemainderGoesToLowPieces) {
  // 10 over 4: 3,3,2,2 — low pieces absorb the remainder, sizes are
  // monotone non-increasing and differ by at most one.
  const ElemRange parent{0, 10};
  EXPECT_EQ(partition(parent, 4, 0).size(), 3u);
  EXPECT_EQ(partition(parent, 4, 1).size(), 3u);
  EXPECT_EQ(partition(parent, 4, 2).size(), 2u);
  EXPECT_EQ(partition(parent, 4, 3).size(), 2u);
}

TEST(Partition, NestedSubrange) {
  const ElemRange outer = partition({0, 100}, 2, 1);  // [50, 100)
  const ElemRange inner = partition(outer, 4, 0);
  EXPECT_EQ(inner.lo, 50u);
  EXPECT_GE(inner.hi, inner.lo);
  EXPECT_LE(inner.hi, outer.hi);
}

TEST(ShardPlan, UniformOnAllPresets) {
  // Every preset grid is isomorphic level by level, so the nested schedule
  // must engage on all of them.
  for (const char* name : {"mini8", "mini16", "epyc1p", "epyc2p", "armn1"}) {
    topo::Topology topo = topo::by_name(name);
    const int ranks = topo.n_cores();
    mach::RealMachine m(std::move(topo), ranks);
    CommTree tree(m, topo::parse_sensitivity("numa+socket"));
    EXPECT_TRUE(tree.shard_plan().uniform()) << name;
    EXPECT_EQ(tree.shard_plan().n_stages(), tree.n_levels()) << name;
  }
}

TEST(ShardPlan, PeersAreSymmetricAndSelfResolving) {
  mach::RealMachine m(topo::epyc2p(), 64);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  const ShardPlan& plan = tree.shard_plan();
  ASSERT_TRUE(plan.uniform());
  constexpr std::size_t kCount = 4096;
  for (int r = 0; r < 64; ++r) {
    const ShardSchedule sched = plan.schedule(r, kCount, 4);
    ASSERT_EQ(sched.n_stages(), tree.n_levels());
    ElemRange prev{0, kCount};
    for (int k = 0; k < sched.n_stages(); ++k) {
      const ShardStage& st = sched.stages[static_cast<std::size_t>(k)];
      // The stage partitions what the previous stage produced.
      EXPECT_EQ(st.parent.lo, prev.lo) << "rank " << r << " stage " << k;
      EXPECT_EQ(st.parent.hi, prev.hi);
      ASSERT_GE(st.peers.size(), 1u);
      ASSERT_LT(static_cast<std::size_t>(st.my_idx), st.peers.size());
      EXPECT_EQ(st.peers[static_cast<std::size_t>(st.my_idx)], r);
      const ElemRange want =
          partition(st.parent, st.peers.size(),
                    static_cast<std::size_t>(st.my_idx));
      EXPECT_EQ(st.range.lo, want.lo);
      EXPECT_EQ(st.range.hi, want.hi);
      // Symmetry: every peer lists the same peer set at this stage, with
      // itself at its own index — the property that lets any rank compute
      // exact wait thresholds for any other.
      for (std::size_t i = 0; i < st.peers.size(); ++i) {
        const ShardSchedule ps =
            plan.schedule(st.peers[i], kCount, 4);
        const ShardStage& pst = ps.stages[static_cast<std::size_t>(k)];
        EXPECT_EQ(pst.peers, st.peers) << "rank " << r << " stage " << k;
        EXPECT_EQ(pst.my_idx, static_cast<int>(i));
        EXPECT_EQ(pst.parent.lo, st.parent.lo);
        EXPECT_EQ(pst.parent.hi, st.parent.hi);
      }
      prev = st.range;
    }
  }
}

TEST(ShardPlan, FinalShardsTileThePayload) {
  // After the last RS stage, the 64 ranks' shards partition [0, count).
  mach::RealMachine m(topo::epyc2p(), 64);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  constexpr std::size_t kCount = 100003;  // odd: exercises remainders
  std::set<std::size_t> edges;
  std::size_t covered = 0;
  for (int r = 0; r < 64; ++r) {
    const ShardSchedule sched = tree.shard_plan().schedule(r, kCount, 4);
    const ElemRange own = sched.stages.back().range;
    covered += own.size();
    edges.insert(own.lo);
  }
  EXPECT_EQ(covered, kCount);          // no overlap, no gap (with the edge
  EXPECT_EQ(edges.size(), 64u);        // starts pairwise distinct)
}

TEST(ShardSchedule, SlotTimeline) {
  mach::RealMachine m(topo::epyc2p(), 64);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  const ShardSchedule sched = tree.shard_plan().schedule(0, 1024, 4);
  const std::size_t bytes = 1024 * 4;
  EXPECT_EQ(sched.bytes, bytes);
  ASSERT_EQ(sched.n_stages(), 3);
  // RS slots count up from 0; AG slots continue where RS ended, outermost
  // stage first (u = L-1 executes first).
  EXPECT_EQ(sched.rs_slot(0), 0u);
  EXPECT_EQ(sched.rs_slot(1), bytes);
  EXPECT_EQ(sched.rs_slot(2), 2 * bytes);
  EXPECT_EQ(sched.ag_slot(2), 3 * bytes);
  EXPECT_EQ(sched.ag_slot(1), 4 * bytes);
  EXPECT_EQ(sched.ag_slot(0), 5 * bytes);
  EXPECT_EQ(sched.total(), 6 * bytes);
}

TEST(ShardPlan, FlatHierarchyIsSingleStage) {
  mach::RealMachine m(topo::mini8(), 8);
  CommTree tree(m, {});  // flat: one level holding all ranks
  ASSERT_TRUE(tree.shard_plan().uniform());
  const ShardSchedule sched = tree.shard_plan().schedule(3, 80, 4);
  ASSERT_EQ(sched.n_stages(), 1);
  EXPECT_EQ(sched.stages[0].peers.size(), 8u);
  EXPECT_EQ(sched.stages[0].peers[3], 3);
}

}  // namespace
}  // namespace xhc::core
