// Critical-path analyzer tests: wait-arg packing, hand-built recorder
// scenarios (chain walking, ring-wrap alignment, degenerate single-rank
// ops), and end-to-end determinism on the simulator including a seeded
// straggler whose rank must surface as the latency bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "obs/critpath.h"
#include "obs/observer.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc::obs {
namespace {

TEST(CritPath, WaitArgRoundTrip) {
  for (const int level : {-1, 0, 1, 3}) {
    for (const int peer : {-1, 0, 7, 127}) {
      const WaitArg w = unpack_wait_arg(wait_arg(level, peer));
      EXPECT_EQ(w.level, level);
      EXPECT_EQ(w.peer, peer);
    }
  }
  // Arg 0 (spans recorded without the encoding) decodes to unknown/unknown.
  const WaitArg w = unpack_wait_arg(0);
  EXPECT_EQ(w.level, -1);
  EXPECT_EQ(w.peer, -1);
}

TEST(CritPath, EmptyRecorderYieldsNoOps) {
  Recorder rec(4, 32);
  EXPECT_TRUE(analyze_critical_paths(rec).empty());
  // The report writer copes with an empty op list too.
  std::ostringstream os;
  write_critpath_report(os, analyze_critical_paths(rec));
  EXPECT_NE(os.str().find("0 op"), std::string::npos);
}

TEST(CritPath, SingleRankOp) {
  Recorder rec(1, 32);
  rec.record(0, "copy", "pull", 0.1, 0.4);
  rec.record(0, "collective", "solo.bcast", 0.0, 1.0, /*arg=*/64);
  const auto ops = analyze_critical_paths(rec);
  ASSERT_EQ(ops.size(), 1u);
  const OpReport& op = ops[0];
  EXPECT_EQ(op.name, "solo.bcast");
  EXPECT_EQ(op.arg, 64u);
  EXPECT_EQ(op.bound_rank, 0);
  EXPECT_DOUBLE_EQ(op.latency_s(), 1.0);
  // No waits: the chain is just the bound rank, all time is self time.
  EXPECT_TRUE(op.chain.empty());
  ASSERT_EQ(op.ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(op.ranks[0].wait_s, 0.0);
  EXPECT_DOUBLE_EQ(op.ranks[0].self_s(), 1.0);
  ASSERT_TRUE(op.phases.count("copy"));
  EXPECT_DOUBLE_EQ(op.phases.at("copy"), 0.3);
}

// Three ranks: r2 waits on r1, r1 waits on r0. The analyzer must walk the
// chain r2 <- r1 <- r0 and attribute per-level waits.
TEST(CritPath, WalksBlockingChain) {
  Recorder rec(3, 32);
  // r0: root, finishes its part early.
  rec.record(0, "collective", "x.bcast", 0.0, 0.4, 128);
  // r1: leader waiting on the root at level 1 until 0.5.
  rec.record(1, "wait", "seq_wait", 0.1, 0.5, wait_arg(1, 0));
  rec.record(1, "collective", "x.bcast", 0.0, 0.7, 128);
  // r2: member waiting on its leader r1 at level 0 until 0.8; slowest.
  rec.record(2, "wait", "announce_wait", 0.2, 0.8, wait_arg(0, 1));
  rec.record(2, "collective", "x.bcast", 0.0, 1.0, 128);

  const auto ops = analyze_critical_paths(rec);
  ASSERT_EQ(ops.size(), 1u);
  const OpReport& op = ops[0];
  EXPECT_EQ(op.bound_rank, 2);
  EXPECT_DOUBLE_EQ(op.t_end, 1.0);

  ASSERT_EQ(op.chain.size(), 2u);
  EXPECT_EQ(op.chain[0].rank, 2);
  EXPECT_EQ(op.chain[0].peer, 1);
  EXPECT_EQ(op.chain[0].level, 0);
  EXPECT_STREQ(op.chain[0].site, "announce_wait");
  EXPECT_DOUBLE_EQ(op.chain[0].wait_s, 0.6);
  EXPECT_EQ(op.chain[1].rank, 1);
  EXPECT_EQ(op.chain[1].peer, 0);
  EXPECT_EQ(op.chain[1].level, 1);

  ASSERT_TRUE(op.levels.count(0));
  ASSERT_TRUE(op.levels.count(1));
  EXPECT_EQ(op.levels.at(0).waits, 1u);
  EXPECT_DOUBLE_EQ(op.levels.at(0).wait_s, 0.6);
  EXPECT_DOUBLE_EQ(op.ranks[2].wait_s, 0.6);
  EXPECT_DOUBLE_EQ(op.ranks[2].self_s(), 0.4);
}

// Rank 1's tiny ring dropped the older op; only the op every rank retains
// is reported, aligned from the end of each ring.
TEST(CritPath, RingWrapAlignsFromTheEnd) {
  Recorder rec(2, 2);  // capacity 2 spans per rank
  rec.record(0, "collective", "first", 0.0, 1.0);
  rec.record(0, "collective", "second", 2.0, 3.0);
  rec.record(1, "wait", "seq_wait", 2.0, 2.5, wait_arg(0, 0));
  rec.record(1, "collective", "second", 2.0, 3.5);
  // rank 1's ring holds only the second op (wait + collective); rank 0
  // still holds both collectives.
  const auto ops = analyze_critical_paths(rec);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].name, "second");
  EXPECT_EQ(ops[0].bound_rank, 1);
  ASSERT_EQ(ops[0].chain.size(), 1u);
  EXPECT_EQ(ops[0].chain[0].peer, 0);
}

/// Runs `iters` bcasts on mini8 with tracing on (optionally with a fault
/// plan) and leaves the spans in `observer`.
void run_sim(const std::string& faults, int iters, Observer& observer) {
  sim::SimMachine machine(topo::mini8(), 8);
  coll::Tuning tuning;
  tuning.trace = true;
  tuning.faults = faults;
  auto comp = coll::make_component("xhc", machine, tuning);
  comp->set_observer(&observer);

  constexpr std::size_t kBytes = 16u << 10;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 8; ++r) bufs.emplace_back(machine, r, kBytes);
  util::fill_pattern(bufs[0].get(), kBytes, 3);
  machine.run([&](mach::Ctx& ctx) {
    for (int it = 0; it < iters; ++it) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  kBytes, 0);
    }
  });
}

std::string sim_report(const std::string& faults, int iters) {
  Observer observer(8);
  run_sim(faults, iters, observer);
  std::ostringstream os;
  write_critpath_report(os, analyze_critical_paths(observer.trace()));
  return os.str();
}

TEST(CritPath, SimReportIsDeterministic) {
  const std::string a = sim_report("", 3);
  EXPECT_NE(a.find("xhc.bcast"), std::string::npos);
  EXPECT_EQ(a, sim_report("", 3));  // byte-for-byte across runs
}

TEST(CritPath, StragglerInflatesTheCriticalPath) {
  // Rank 5 loses 100us before every flag publication; clean mini8 bcasts
  // finish in a few us. The injected stall must show up as op latency and
  // as blocking-wait time in the analysis.
  const std::string spec = "straggler,prob=1,rank=5,delay=1e-4";
  Observer clean_obs(8);
  Observer slow_obs(8);
  run_sim("", 2, clean_obs);
  run_sim(spec, 2, slow_obs);
  const auto clean = analyze_critical_paths(clean_obs.trace());
  const auto slow = analyze_critical_paths(slow_obs.trace());
  ASSERT_FALSE(clean.empty());
  ASSERT_EQ(clean.size(), slow.size());

  for (std::size_t k = 0; k < clean.size(); ++k) {
    EXPECT_GT(slow[k].latency_s(), clean[k].latency_s() + 5e-5) << k;
    // The added latency is blocking, not compute: total wait grows by at
    // least one injected delay, and the chain walk surfaces a wait that
    // long on the critical path.
    auto total_wait = [](const OpReport& op) {
      double w = 0.0;
      for (const RankBreakdown& rb : op.ranks) w += rb.wait_s;
      return w;
    };
    EXPECT_GT(total_wait(slow[k]), total_wait(clean[k]) + 5e-5) << k;
    ASSERT_FALSE(slow[k].chain.empty()) << k;
    double longest = 0.0;
    for (const ChainStep& step : slow[k].chain) {
      longest = std::max(longest, step.wait_s);
    }
    EXPECT_GT(longest, 5e-5) << k;
  }
  // Deterministic under a fixed seed as well.
  EXPECT_EQ(sim_report(spec, 2), sim_report(spec, 2));
}

}  // namespace
}  // namespace xhc::obs
