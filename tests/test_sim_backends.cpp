// Cross-backend contract of the virtual-time engine (fiber vs threads):
// identical runs must produce bit-identical per-rank completion
// timestamps — within one backend, across repeated runs, and between the
// two backends — plus a 160-rank fiber stress run and the deadlock-report
// path through SimMachine. The scheduler-level unit tests live in
// test_sim_core.cpp; these exercise the full machine + collective stack.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "sim/scheduler.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc {
namespace {

using sim::SimBackend;

/// Runs one xhc bcast on the given system and returns the per-rank
/// completion timestamps. Verifies the payload landed everywhere.
std::vector<double> bcast_rank_times(SimBackend backend,
                                     const topo::Topology& system,
                                     std::size_t bytes) {
  topo::Topology topo = system;
  const int n = topo.n_cores();
  sim::SimMachine machine(std::move(topo), n);
  machine.set_backend(backend);
  auto comp = coll::make_component("xhc", machine);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < n; ++r) bufs.emplace_back(machine, r, bytes);
  util::fill_pattern(bufs[0].get(), bytes, 0xD5);

  const auto res = machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), bytes,
                /*root=*/0);
  });

  std::vector<std::byte> expect(bytes);
  util::fill_pattern(expect.data(), bytes, 0xD5);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), bytes),
              0)
        << "payload mismatch at rank " << r;
  }
  EXPECT_EQ(res.rank_time.size(), static_cast<std::size_t>(n));
  return res.rank_time;
}

class BackendDeterminism : public ::testing::TestWithParam<SimBackend> {};

// The same 64-rank simulation run twice must reproduce every per-rank
// completion timestamp exactly — host scheduling must not leak in.
TEST_P(BackendDeterminism, RepeatedRunsBitIdentical) {
  const auto first = bcast_rank_times(GetParam(), topo::epyc2p(), 8192);
  const auto second = bcast_rank_times(GetParam(), topo::epyc2p(), 8192);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t r = 0; r < first.size(); ++r) {
    EXPECT_EQ(first[r], second[r]) << "rank " << r;  // exact, not near
  }
}

// Every rank must block forever for a deadlock to be declared; the error
// must name the condition so a hung model is debuggable from the message.
TEST_P(BackendDeterminism, DeadlockReportedThroughMachine) {
  topo::Topology topo = topo::mini8();
  sim::SimMachine machine(std::move(topo), 8);
  machine.set_backend(GetParam());
  mach::Flag never_set;
  try {
    machine.run([&](mach::Ctx& ctx) { ctx.flag_wait_ge(never_set, 1); });
    FAIL() << "deadlocked run returned normally";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << "actual message: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendDeterminism,
                         ::testing::Values(SimBackend::kFiber,
                                           SimBackend::kThreads),
                         [](const auto& info) {
                           return info.param == SimBackend::kFiber
                                      ? "fiber"
                                      : "threads";
                         });

// The acceptance bar for the engine rewrite: both backends make the exact
// same scheduling decisions, so all 64 completion timestamps match
// bit-for-bit between them.
TEST(BackendAgreement, FiberAndThreadTimestampsBitIdentical) {
  const auto fiber =
      bcast_rank_times(SimBackend::kFiber, topo::epyc2p(), 8192);
  const auto threads =
      bcast_rank_times(SimBackend::kThreads, topo::epyc2p(), 8192);
  ASSERT_EQ(fiber.size(), threads.size());
  for (std::size_t r = 0; r < fiber.size(); ++r) {
    EXPECT_EQ(fiber[r], threads[r]) << "rank " << r;
  }
}

// Fiber availability is a compile-time fact: only AddressSanitizer builds
// compile the backend out (shadow-stack bookkeeping); TSan builds keep it,
// running sanitizer-annotated switches (sched_fibers.cpp).
TEST(BackendAvailability, FiberCompiledOutOnlyUnderAsan) {
#if defined(__SANITIZE_ADDRESS__)
  constexpr bool asan = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  constexpr bool asan = true;
#else
  constexpr bool asan = false;
#endif
#else
  constexpr bool asan = false;
#endif
  EXPECT_EQ(sim::fiber_backend_available(), !asan);
}

// When fibers are available, a kFiber request must actually yield the fiber
// backend — in particular under TSan, which used to silently fall back.
TEST(BackendAvailability, CreateHonorsFiberRequest) {
  if (!sim::fiber_backend_available()) {
    GTEST_SKIP() << "fiber backend compiled out (AddressSanitizer build)";
  }
  auto sched = sim::VirtualScheduler::create(4, 0.0, SimBackend::kFiber);
  EXPECT_EQ(sched->backend(), SimBackend::kFiber);
}

// 160 fibers on one host thread (armn1, the largest paper system): stacks,
// heap scheduling and payload movement all at full scale.
TEST(FiberStress, ArmN1FullScaleBcast) {
  const auto times =
      bcast_rank_times(SimBackend::kFiber, topo::armn1(), 64 * 1024);
  ASSERT_EQ(times.size(), 160u);
  for (std::size_t r = 0; r < times.size(); ++r) {
    EXPECT_GT(times[r], 0.0) << "rank " << r;
  }
}

}  // namespace
}  // namespace xhc
