// Latency histogram tests: bucket geometry, exact degenerate percentiles,
// order-independent merging, the HistSet per-rank rows, and the JSON/table
// exporters (including flag-wait capture on the deterministic simulator).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "obs/export.h"
#include "obs/hist.h"
#include "obs/observer.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc::obs {
namespace {

TEST(Hist, BucketGeometry) {
  // Zero and negatives land in the dedicated zero bucket.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_upper(0), 0.0);

  // Every interior bucket's upper bound maps back into that bucket, and
  // bounds increase strictly with the index.
  double prev = 0.0;
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    const double upper = Histogram::bucket_upper(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
  // Representative values across the domain: the bucket bound is within
  // one sub-bucket (~3%) of the recorded value.
  for (const double v : {1e-9, 3.7e-6, 1e-3, 0.25, 1.0, 42.0, 3600.0}) {
    const int idx = Histogram::bucket_index(v);
    ASSERT_GT(idx, 0) << v;
    ASSERT_LT(idx, Histogram::kNumBuckets) << v;
    EXPECT_GE(Histogram::bucket_upper(idx), v * (1.0 - 1e-12)) << v;
    EXPECT_LE(Histogram::bucket_upper(idx),
              v * (1.0 + 2.0 / Histogram::kSubBuckets))
        << v;
  }
  // Out-of-domain values clamp to the edge octaves (mantissa sub-bucket
  // preserved) instead of indexing out of range.
  EXPECT_GE(Histogram::bucket_index(1e-30), 1);
  EXPECT_LE(Histogram::bucket_index(1e-30), Histogram::kSubBuckets);
  EXPECT_GE(Histogram::bucket_index(1e30),
            Histogram::kNumBuckets - Histogram::kSubBuckets);
  EXPECT_LT(Histogram::bucket_index(1e30), Histogram::kNumBuckets);
}

TEST(Hist, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(Hist, SingleSamplePercentilesAreExact) {
  Histogram h;
  h.record(3.25e-6);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.25e-6);
  EXPECT_DOUBLE_EQ(h.max(), 3.25e-6);
  // Clamping into [min, max] makes every quantile the sample itself.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 3.25e-6) << q;
  }
}

TEST(Hist, PercentilesBoundSamples) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-6);  // 1us .. 1000us
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);
  // p50/p90/p99 are upper bucket bounds: at or above the true quantile,
  // within one sub-bucket of it.
  for (const auto [q, exact] : {std::pair{0.5, 500e-6},
                                std::pair{0.9, 900e-6},
                                std::pair{0.99, 990e-6}}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, exact * (1.0 - 1e-12)) << q;
    EXPECT_LE(p, exact * (1.0 + 2.0 / Histogram::kSubBuckets)) << q;
  }
}

TEST(Hist, MergeIsOrderIndependentAndExact) {
  util::SplitMix64 rng(42);
  std::vector<double> samples(500);
  for (auto& s : samples) {
    s = 1e-7 + 1e-4 * (static_cast<double>(rng.next() % 10000) / 10000.0);
  }

  Histogram whole;
  Histogram part_a;
  Histogram part_b;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    whole.record(samples[i]);
    (i % 3 == 0 ? part_a : part_b).record(samples[i]);
  }
  Histogram ab = part_a;
  ab.merge(part_b);
  Histogram ba = part_b;
  ba.merge(part_a);

  for (const Histogram* m : {&ab, &ba}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_DOUBLE_EQ(m->min(), whole.min());
    EXPECT_DOUBLE_EQ(m->max(), whole.max());
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      ASSERT_EQ(m->bucket_count(i), whole.bucket_count(i)) << i;
    }
    for (const double q : {0.5, 0.9, 0.99}) {
      EXPECT_DOUBLE_EQ(m->percentile(q), whole.percentile(q));
    }
  }

  // Merging an empty histogram in either direction changes nothing.
  Histogram empty;
  Histogram copy = whole;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), whole.count());
  EXPECT_DOUBLE_EQ(copy.min(), whole.min());
  empty.merge(whole);
  EXPECT_EQ(empty.count(), whole.count());
  EXPECT_DOUBLE_EQ(empty.max(), whole.max());
}

TEST(Hist, HistSetRowsAndNamedMerge) {
  HistSet set(4);
  set.record(0, HistKind::kOp, 1e-6);
  set.record(3, HistKind::kOp, 2e-6);
  set.record(1, HistKind::kFlagWait, 5e-7);
  EXPECT_EQ(set.hist(0, HistKind::kOp).count(), 1u);
  EXPECT_EQ(set.hist(2, HistKind::kOp).count(), 0u);
  EXPECT_EQ(set.merged(HistKind::kOp).count(), 2u);
  EXPECT_DOUBLE_EQ(set.merged(HistKind::kOp).max(), 2e-6);

  // Only non-empty kinds appear, in kind (enum) order.
  const auto named = named_hists(set);
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].name, "flag_wait");
  EXPECT_EQ(named[1].name, "op");

  set.clear();
  EXPECT_EQ(set.merged(HistKind::kOp).count(), 0u);
}

TEST(Hist, TableAndJsonExporters) {
  HistSet set(2);
  set.record(0, HistKind::kOp, 1e-6);
  set.record(1, HistKind::kOp, 4e-6);
  const auto named = named_hists(set);

  const util::Table table = hist_table(named);
  std::ostringstream ts;
  table.print(ts);
  EXPECT_NE(ts.str().find("op"), std::string::npos);
  EXPECT_NE(ts.str().find("p99"), std::string::npos);

  std::ostringstream js;
  write_hist_json(js, named, "unit-test");
  const std::string json = js.str();
  // Spot checks; the full JSON validity of exporters is covered by the
  // parser-backed chrome-trace tests.
  EXPECT_NE(json.find("\"label\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // Seconds-scale values survive with full precision (not flattened to 0).
  EXPECT_EQ(json.find("\"min\":0,"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Hist, ZeroSampleExportIsHarmless) {
  std::vector<NamedHist> named;
  named.push_back({"empty", Histogram()});
  std::ostringstream js;
  write_hist_json(js, named, "zero");
  EXPECT_NE(js.str().find("\"count\":0"), std::string::npos);
  std::ostringstream ts;
  hist_table(named).print(ts);
  EXPECT_NE(ts.str().find("empty"), std::string::npos);
}

// End-to-end on the simulator: with Tuning::hist on, the wait-hist machine
// hook and the component sites fill every kind, deterministically.
TEST(Hist, SimCollectiveFillsAllKindsDeterministically) {
  auto collect = [] {
    sim::SimMachine machine(topo::mini8(), 8);
    Observer observer(8);
    machine.set_wait_hist(&observer.hists());
    coll::Tuning tuning;
    tuning.trace = true;
    tuning.hist = true;
    auto comp = coll::make_component("xhc", machine, tuning);
    comp->set_observer(&observer);

    constexpr std::size_t kBytes = 64u << 10;
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < 8; ++r) bufs.emplace_back(machine, r, kBytes);
    util::fill_pattern(bufs[0].get(), kBytes, 9);
    machine.run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  kBytes, 0);
    });
    machine.set_wait_hist(nullptr);

    std::ostringstream os;
    write_hist_json(os, named_hists(observer.hists()), "det");
    return os.str();
  };
  const std::string a = collect();
  EXPECT_NE(a.find("\"name\":\"flag_wait\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"wait_site\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"chunk\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"op\""), std::string::npos);
  EXPECT_EQ(a, collect());  // byte-for-byte deterministic
}

// With the hist knob off (default), collectives record nothing even when
// an observer is attached for tracing.
TEST(Hist, DisabledKnobRecordsNothing) {
  sim::SimMachine machine(topo::mini8(), 8);
  Observer observer(8);
  coll::Tuning tuning;
  tuning.trace = true;  // tracing on, histograms off
  auto comp = coll::make_component("xhc", machine, tuning);
  comp->set_observer(&observer);

  constexpr std::size_t kBytes = 16u << 10;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 8; ++r) bufs.emplace_back(machine, r, kBytes);
  machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
                0);
  });
  for (int k = 0; k < kNumHistKinds; ++k) {
    EXPECT_EQ(observer.hists().merged(static_cast<HistKind>(k)).count(), 0u)
        << to_string(static_cast<HistKind>(k));
  }
}

}  // namespace
}  // namespace xhc::obs
