// Property-based tests of the simulator's invariants under randomized
// inputs: ledger bookkeeping, flag-history semantics, per-rank virtual-time
// monotonicity, and congestion monotonicity in the participant count.
#include <gtest/gtest.h>

#include "mach/machine.h"
#include "util/cacheline.h"
#include "sim/resources.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc {
namespace {

TEST(LedgerProperties, ShareNeverExceedsCapacityAndStaysPositive) {
  util::SplitMix64 rng(17);
  sim::ResourceLedger ledger;
  const sim::ResId res{sim::ResKind::kNumaChannel, 0};
  constexpr double kCap = 1e9;
  ledger.set_capacity(res, kCap);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.next_double() * 1e-5;
    const double share = ledger.share(res, t);
    ASSERT_GT(share, 0.0);
    ASSERT_LE(share, kCap);
    if (rng.next_below(2) == 0) {
      ledger.book(res, t, t + rng.next_double() * 1e-4);
    }
  }
}

TEST(LedgerProperties, MoreInFlightMeansSmallerShare) {
  sim::ResourceLedger ledger;
  const sim::ResId res{sim::ResKind::kSlc, 0};
  ledger.set_capacity(res, 100.0);
  double prev = ledger.share(res, 0.0);
  for (int i = 0; i < 20; ++i) {
    ledger.book(res, 0.0, 1.0);
    const double share = ledger.share(res, 0.5);
    ASSERT_LT(share, prev);
    prev = share;
  }
}

TEST(SimProperties, PerRankClockIsMonotone) {
  // Random mixtures of copies, flags and charges can never move any rank's
  // clock backwards.
  sim::SimMachine m(topo::mini16(), 16);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 16; ++r) bufs.emplace_back(m, r, 32 * 1024);
  auto* flags = static_cast<mach::Flag*>(
      m.alloc(0, 16 * sizeof(util::CachePadded<mach::Flag>)));
  auto flag_at = [&](int i) -> mach::Flag& {
    return *reinterpret_cast<mach::Flag*>(
        reinterpret_cast<std::byte*>(flags) +
        static_cast<std::size_t>(i) * sizeof(util::CachePadded<mach::Flag>));
  };
  std::atomic<int> violations{0};
  m.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    util::SplitMix64 rng(static_cast<std::uint64_t>(r) + 99);
    double last = ctx.now();
    std::uint64_t published = 0;
    for (std::uint64_t i = 0; i < 60; ++i) {
      // Publish first: after this store every rank at iteration >= i has
      // published at least i+1 values, so a wait targeting <= i+1 can
      // always be satisfied (no deadlock possible by induction on the
      // minimum iteration index).
      ctx.flag_store(flag_at(r), ++published);
      switch (rng.next_below(3)) {
        case 0:
          ctx.copy(bufs[static_cast<std::size_t>(r)].get(),
                   bufs[rng.next_below(16)].get(),
                   64 + rng.next_below(16000));
          break;
        case 1:
          ctx.charge(rng.next_double() * 1e-6);
          break;
        default: {
          const int peer = static_cast<int>(rng.next_below(16));
          const std::uint64_t target = 1 + rng.next_below(i + 1);
          if (peer != r) {
            ctx.flag_wait_ge(flag_at(peer), target);
          }
          break;
        }
      }
      const double now = ctx.now();
      if (now < last) ++violations;
      last = now;
    }
  });
  m.free(flags);
  EXPECT_EQ(violations.load(), 0);
}

TEST(SimProperties, CongestionMonotoneInParticipants) {
  // A fixed observer's copy can only get slower as more concurrent readers
  // target the same home NUMA node (the Fig. 1b mechanism, generalized).
  double prev = 0.0;
  for (const int participants : {2, 8, 16, 24, 32}) {
    sim::SimMachine m(topo::epyc1p(), 32);
    mach::Buffer src(m, 0, 1 << 20);
    std::vector<mach::Buffer> dst;
    for (int r = 0; r < 32; ++r) dst.emplace_back(m, r, 1 << 20);
    double observed = 0.0;
    m.run([&](mach::Ctx& ctx) {
      const int r = ctx.rank();
      if (r == 0) {
        ctx.write_payload(src.get(), 1 << 20, 3);
      }
      ctx.barrier();
      if (r != 0 && r < participants) {
        const double t0 = ctx.now();
        ctx.copy(dst[static_cast<std::size_t>(r)].get(), src.get(), 1 << 20);
        if (r == 1) observed = ctx.now() - t0;
      }
    });
    EXPECT_GE(observed, prev * 0.999) << participants << " participants";
    prev = observed;
  }
}

TEST(SimProperties, FlagValueAtRespectsPublishTimes) {
  // flag_read returns the value as of the reader's virtual time, not the
  // raw latest store.
  sim::SimMachine m(topo::mini8(), 2);
  auto* flag = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  std::uint64_t early_read = 99;
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      ctx.charge(10e-6);
      ctx.flag_store(*flag, 7);  // published at t=10us
    } else {
      // Reads at t~0 must not see the future store.
      early_read = ctx.flag_read(*flag);
      ctx.charge(20e-6);
      // After the publish time, the value is visible.
      EXPECT_EQ(ctx.flag_read(*flag), 7u);
    }
  });
  EXPECT_EQ(early_read, 0u);
  m.free(flag);
}

TEST(SimProperties, EpochAdvancesExactlyWithRuns) {
  sim::SimMachine m(topo::mini8(), 4);
  EXPECT_DOUBLE_EQ(m.epoch(), 0.0);
  m.run([](mach::Ctx& ctx) { ctx.charge(1e-3); });
  const double e1 = m.epoch();
  EXPECT_NEAR(e1, 1e-3, 1e-9);
  m.run([](mach::Ctx&) {});
  EXPECT_DOUBLE_EQ(m.epoch(), e1);  // empty run costs nothing
}

}  // namespace
}  // namespace xhc
