// Tests for the single-copy mechanism layer: cost tables, registration
// cache semantics, endpoint charging (paper §II-B, §III-C, Fig. 3).
#include <gtest/gtest.h>

#include "sim/sim_machine.h"
#include "smsc/endpoint.h"
#include "smsc/mechanism.h"
#include "smsc/reg_cache.h"
#include "topo/presets.h"
#include "util/check.h"

namespace xhc::smsc {
namespace {

TEST(Mechanism, Names) {
  EXPECT_STREQ(to_string(Mechanism::kXpmem), "xpmem");
  EXPECT_EQ(mechanism_from("knem"), Mechanism::kKnem);
  EXPECT_EQ(mechanism_from("none"), Mechanism::kCico);
  EXPECT_THROW(mechanism_from("bogus"), util::Error);
}

TEST(Mechanism, CostStructure) {
  const MechanismCosts xpmem = costs_for(Mechanism::kXpmem);
  EXPECT_TRUE(xpmem.mapping);
  EXPECT_GT(xpmem.attach_syscall, 0.0);
  EXPECT_GT(xpmem.page_fault, 0.0);
  EXPECT_EQ(xpmem.op_syscall, 0.0);  // no per-op kernel path

  const MechanismCosts cma = costs_for(Mechanism::kCma);
  EXPECT_FALSE(cma.mapping);
  EXPECT_GT(cma.op_syscall, 0.0);
  EXPECT_GT(cma.lock_coef, 0.0);

  const MechanismCosts knem = costs_for(Mechanism::kKnem);
  // KNEM's per-page cost sits below CMA's (paper §II-B).
  EXPECT_LT(knem.op_per_page, cma.op_per_page);

  const MechanismCosts cico = costs_for(Mechanism::kCico);
  EXPECT_FALSE(cico.mapping);
  EXPECT_EQ(cico.op_syscall, 0.0);
}

TEST(Mechanism, PageMath) {
  EXPECT_EQ(pages_of(1), 1u);
  EXPECT_EQ(pages_of(4096), 1u);
  EXPECT_EQ(pages_of(4097), 2u);
  EXPECT_EQ(pages_of(1 << 20), 256u);
}

TEST(RegCache, HitRequiresCoverage) {
  RegCache cache;
  char buf[256];
  EXPECT_FALSE(cache.lookup(1, buf, 256));  // cold
  cache.insert(1, buf, 256);
  EXPECT_TRUE(cache.lookup(1, buf, 256));       // exact
  EXPECT_TRUE(cache.lookup(1, buf + 16, 100));  // sub-range
  EXPECT_FALSE(cache.lookup(1, buf + 16, 256)); // runs past the end
  EXPECT_FALSE(cache.lookup(2, buf, 256));      // different owner
}

TEST(RegCache, StatsAccumulate) {
  RegCache cache;
  char buf[64];
  cache.insert(0, buf, 64);
  (void)cache.lookup(0, buf, 64);
  (void)cache.lookup(0, buf, 64);
  (void)cache.lookup(0, buf + 60, 64);  // miss
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().hit_ratio(), 2.0 / 3.0, 1e-12);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(RegCache, ClearDropsMappings) {
  RegCache cache;
  char buf[64];
  cache.insert(0, buf, 64);
  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_FALSE(cache.lookup(0, buf, 64));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(RegCache, CapacityBoundsEnforcedLru) {
  RegCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  char a[64], b[64], c[64];
  EXPECT_EQ(cache.insert(0, a, 64), 0u);
  EXPECT_EQ(cache.insert(0, b, 64), 0u);
  EXPECT_EQ(cache.insert(0, c, 64), 1u);  // evicts a (oldest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup(0, a, 64));
  EXPECT_TRUE(cache.lookup(0, b, 64));
  EXPECT_TRUE(cache.lookup(0, c, 64));
}

TEST(RegCache, LookupRefreshesRecency) {
  RegCache cache(2);
  char a[64], b[64], c[64];
  cache.insert(0, a, 64);
  cache.insert(0, b, 64);
  EXPECT_TRUE(cache.lookup(0, a, 64));  // a becomes most-recent
  cache.insert(0, c, 64);               // so b is the victim
  EXPECT_TRUE(cache.lookup(0, a, 64));
  EXPECT_FALSE(cache.lookup(0, b, 64));
  EXPECT_TRUE(cache.lookup(0, c, 64));
}

TEST(RegCache, ReinsertUpdatesLengthWithoutEviction) {
  RegCache cache(2);
  char a[256];
  cache.insert(0, a, 64);
  EXPECT_FALSE(cache.lookup(0, a, 256));    // cached range too short
  EXPECT_EQ(cache.insert(0, a, 256), 0u);   // grow in place
  EXPECT_TRUE(cache.lookup(0, a, 256));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegCache, EraseOwnerInvalidatesOnlyThatOwner) {
  RegCache cache;
  char a[64], b[64];
  cache.insert(1, a, 64);
  cache.insert(1, b, 64);
  cache.insert(2, a, 64);
  EXPECT_EQ(cache.erase_owner(1), 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_FALSE(cache.lookup(1, a, 64));
  EXPECT_TRUE(cache.lookup(2, a, 64));
  EXPECT_EQ(cache.erase_owner(7), 0u);  // unknown owner: no-op
}

TEST(RegCache, ForcedMissesCountAgainstHitRatio) {
  RegCache cache;
  char a[64];
  cache.insert(0, a, 64);
  EXPECT_TRUE(cache.lookup(0, a, 64));
  cache.count_forced_miss();
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().hit_ratio(), 0.5, 1e-12);
}

TEST(RegCache, ZeroCapacityClampsToOne) {
  RegCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  char a[64], b[64];
  cache.insert(0, a, 64);
  cache.insert(0, b, 64);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Endpoint charging, measured through the simulator's virtual clock.

double charge_of(const std::function<void(mach::Ctx&, Endpoint&)>& fn,
                 Mechanism mech, bool reg_cache) {
  sim::SimMachine m(topo::mini8(), 2);
  Endpoint ep(mech, reg_cache);
  double elapsed = 0.0;
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() != 0) return;
    const double t0 = ctx.now();
    fn(ctx, ep);
    elapsed = ctx.now() - t0;
  });
  return elapsed;
}

TEST(Endpoint, FirstAttachPaysFaultsThenCacheHits) {
  char buf[8192];
  const double first = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) { ep.attach(ctx, 1, buf, 8192); },
      Mechanism::kXpmem, true);
  const double both = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) {
        ep.attach(ctx, 1, buf, 8192);
        ep.attach(ctx, 1, buf, 8192);
      },
      Mechanism::kXpmem, true);
  const MechanismCosts costs = costs_for(Mechanism::kXpmem);
  EXPECT_NEAR(first, costs.attach_syscall + 2 * costs.page_fault, 1e-12);
  EXPECT_NEAR(both - first, costs.cache_lookup, 1e-12);
}

TEST(Endpoint, NoRegCachePaysEveryTime) {
  char buf[4096];
  const double once = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) { ep.attach(ctx, 1, buf, 4096); },
      Mechanism::kXpmem, false);
  const double twice = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) {
        ep.attach(ctx, 1, buf, 4096);
        ep.attach(ctx, 1, buf, 4096);
      },
      Mechanism::kXpmem, false);
  EXPECT_NEAR(twice, 2 * once, 1e-12);  // attach + detach per operation
  const MechanismCosts costs = costs_for(Mechanism::kXpmem);
  EXPECT_NEAR(once, costs.attach_syscall + costs.page_fault + costs.detach,
              1e-12);
}

TEST(Endpoint, AttachReturnsThePeerPointer) {
  char buf[64];
  sim::SimMachine m(topo::mini8(), 2);
  Endpoint ep(Mechanism::kXpmem, true);
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_EQ(ep.attach(ctx, 1, buf, 64), buf);
    }
  });
}

TEST(Endpoint, CmaChargesPerOperationWithContention) {
  char buf[1 << 20];
  const MechanismCosts costs = costs_for(Mechanism::kCma);
  const double op = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) {
        ep.attach(ctx, 1, buf, sizeof(buf));  // free: no mapping concept
        ep.charge_op(ctx, sizeof(buf), /*node_ranks=*/2);
      },
      Mechanism::kCma, true);
  const double expected =
      costs.op_syscall +
      256.0 * costs.op_per_page * (1.0 + costs.lock_coef * 1.0);
  EXPECT_NEAR(op, expected, 1e-12);

  // More ranks in the node → more mm-lock contention per copy ([28]).
  const double crowded = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) {
        ep.charge_op(ctx, sizeof(buf), /*node_ranks=*/64);
      },
      Mechanism::kCma, true);
  EXPECT_GT(crowded, op - costs.op_syscall);
}

TEST(Endpoint, XpmemChargesNothingPerOperation) {
  const double op = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) { ep.charge_op(ctx, 1 << 20, 64); },
      Mechanism::kXpmem, true);
  EXPECT_EQ(op, 0.0);
}

TEST(Endpoint, ExposeChargedOncePerBuffer) {
  char buf[4096];
  const double once = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) {
        ep.expose(ctx, buf, 4096);
        ep.expose(ctx, buf, 4096);  // idempotent
      },
      Mechanism::kXpmem, true);
  EXPECT_NEAR(once, costs_for(Mechanism::kXpmem).expose, 1e-12);
}

TEST(Endpoint, DetachAllChargesAndClears) {
  char a[64];
  char b[64];
  const MechanismCosts costs = costs_for(Mechanism::kXpmem);
  const double total = charge_of(
      [&](mach::Ctx& ctx, Endpoint& ep) {
        ep.attach(ctx, 1, a, 64);
        ep.attach(ctx, 1, b, 64);
        const double before = ctx.now();
        ep.detach_all(ctx);
        EXPECT_NEAR(ctx.now() - before, 2 * costs.detach, 1e-12);
      },
      Mechanism::kXpmem, true);
  (void)total;
}

}  // namespace
}  // namespace xhc::smsc
