// Model-behaviour regression tests: each test pins down one of the paper's
// qualitative findings as an executable property of the simulator, so the
// benchmark figures cannot silently drift away from the paper's shapes.
#include <gtest/gtest.h>

#include "coll/registry.h"
#include "core/xhc_component.h"
#include "osu/harness.h"
#include "p2p/fabric.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"

namespace xhc {
namespace {

double bcast_us(std::string_view system, std::string_view comp_name,
                std::size_t bytes, coll::Tuning tuning = {},
                bool modify = true, int iters = 2) {
  topo::Topology topo = topo::by_name(system);
  const int ranks = topo.n_cores();
  sim::SimMachine machine(std::move(topo), ranks);
  auto comp = coll::make_component(comp_name, machine, std::move(tuning));
  osu::Config cfg;
  cfg.warmup = 1;
  cfg.iters = iters;
  cfg.modify_buffer = modify;
  return osu::bcast_sweep(machine, *comp, {bytes}, cfg).front().avg_us;
}

double allreduce_us(std::string_view system, std::string_view comp_name,
                    std::size_t bytes) {
  topo::Topology topo = topo::by_name(system);
  const int ranks = topo.n_cores();
  sim::SimMachine machine(std::move(topo), ranks);
  auto comp = coll::make_component(comp_name, machine);
  osu::Config cfg;
  cfg.warmup = 1;
  cfg.iters = 2;
  return osu::allreduce_sweep(machine, *comp, {bytes}, cfg).front().avg_us;
}

// --- Fig. 1a: domain cost ordering -----------------------------------------

TEST(PaperShapes, DomainLatencyOrdering) {
  auto pair_latency = [](std::string_view system, int peer) {
    auto topo = topo::by_name(system);
    sim::SimMachine m(std::move(topo), topo::by_name(system).n_cores());
    p2p::Fabric fabric(m, {});
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = 1;
    return osu::pt2pt_latency_us(m, fabric, 0, peer, 1 << 20, cfg);
  };
  // Epyc-2P: cache-local < intra-NUMA < cross-NUMA < cross-socket.
  const double llc = pair_latency("epyc2p", 1);
  const double intra = pair_latency("epyc2p", 4);
  const double xnuma = pair_latency("epyc2p", 8);
  const double xsock = pair_latency("epyc2p", 32);
  EXPECT_LT(llc, intra);
  EXPECT_LT(intra, xnuma);
  EXPECT_LT(xnuma, xsock);
  // ARM-N1: intra- and cross-NUMA nearly identical (paper: "marginal").
  const double a_intra = pair_latency("armn1", 1);
  const double a_xnuma = pair_latency("armn1", 20);
  const double a_xsock = pair_latency("armn1", 80);
  EXPECT_LT(std::abs(a_xnuma - a_intra) / a_intra, 0.25);
  EXPECT_GT(a_xsock, 1.5 * a_xnuma);
}

// --- Fig. 1b: fan-out congestion --------------------------------------------

TEST(PaperShapes, FlatFanOutCongests) {
  // The same 1 MB bcast gets slower per-rank as more readers hit the root
  // concurrently; XHC's hierarchy keeps the growth much flatter.
  const double flat_small =
      bcast_us("epyc1p", "xhc-flat", 1 << 20, {}, true, 1);
  coll::Tuning tree;
  const double tree_small = bcast_us("epyc1p", "xhc", 1 << 20, tree, true, 1);
  EXPECT_LT(tree_small, flat_small);
}

// --- Fig. 3: mechanism ordering ---------------------------------------------

TEST(PaperShapes, MechanismOrderingAtLargeSizes) {
  auto tuned_with = [&](smsc::Mechanism mech, bool cache) {
    coll::Tuning t;
    t.mechanism = mech;
    t.reg_cache = cache;
    return bcast_us("epyc2p", "tuned", 1 << 20, t, true, 1);
  };
  const double xpmem = tuned_with(smsc::Mechanism::kXpmem, true);
  const double knem = tuned_with(smsc::Mechanism::kKnem, true);
  const double cma = tuned_with(smsc::Mechanism::kCma, true);
  const double cico = tuned_with(smsc::Mechanism::kCico, true);
  const double nocache = tuned_with(smsc::Mechanism::kXpmem, false);
  EXPECT_LT(xpmem, knem);
  EXPECT_LT(knem, cma);
  EXPECT_LT(xpmem, cico);
  // Without the registration cache XPMEM loses its edge (Fig. 3 dashed).
  EXPECT_GT(nocache, knem);
}

// --- Fig. 4: atomics collapse on dense nodes --------------------------------

TEST(PaperShapes, AtomicsCollapseOnArm) {
  coll::Tuning sw;
  sw.sensitivity = "flat";
  coll::Tuning at = sw;
  at.sync = coll::SyncMethod::kAtomicFetchAdd;
  const double single_writer = bcast_us("armn1", "xhc-flat", 4, sw, true, 3);
  const double atomics = bcast_us("armn1", "xhc-flat", 4, at, true, 3);
  // The paper measures 23x at 160 ranks; require at least a 4x collapse.
  EXPECT_GT(atomics, 4.0 * single_writer);
}

TEST(PaperShapes, AtomicsPenaltyGrowsWithRanks) {
  auto ratio_at = [](int ranks) {
    double lat[2];
    int i = 0;
    for (const auto sync : {coll::SyncMethod::kSingleWriter,
                            coll::SyncMethod::kAtomicFetchAdd}) {
      sim::SimMachine m(topo::armn1(), ranks);
      coll::Tuning t;
      t.sensitivity = "flat";
      t.sync = sync;
      core::XhcComponent comp(m, t, "v");
      osu::Config cfg;
      cfg.warmup = 1;
      cfg.iters = 2;
      lat[i++] = osu::bcast_sweep(m, comp, {4}, cfg).front().avg_us;
    }
    return lat[1] / lat[0];
  };
  EXPECT_GT(ratio_at(160), ratio_at(20));
}

// --- Fig. 7: cache-defeating benchmark variant -------------------------------

TEST(PaperShapes, StockBenchmarkFlattersTheFlatTree) {
  // Stock osu_bcast (no rewrite): flat looks better in the cached regime;
  // the _mb variant reveals the hierarchical tree as the faster one.
  const std::size_t bytes = 64 * 1024;  // in the 2 KB..1 MB window
  const double flat_stock = bcast_us("epyc2p", "xhc-flat", bytes, {}, false, 3);
  const double flat_mb = bcast_us("epyc2p", "xhc-flat", bytes, {}, true, 3);
  const double tree_mb = bcast_us("epyc2p", "xhc", bytes, {}, true, 3);
  // Caching makes the stock number optimistic by a wide margin...
  EXPECT_LT(flat_stock, 0.7 * flat_mb);
  // ...and under the honest benchmark the tree wins.
  EXPECT_LT(tree_mb, flat_mb);
}

TEST(PaperShapes, CicoRangeImmuneToBenchmarkVariant) {
  // Below the CICO threshold the copy-in rewrites the staging buffer either
  // way, so both benchmark variants agree (paper §V-A).
  const double stock = bcast_us("epyc2p", "xhc", 512, {}, false, 3);
  const double mb = bcast_us("epyc2p", "xhc", 512, {}, true, 3);
  EXPECT_NEAR(stock, mb, 0.35 * mb);
}

// --- Fig. 8: broadcast standings ---------------------------------------------

TEST(PaperShapes, TreeBeatsEverythingLargeOnArm) {
  const std::size_t bytes = 1 << 20;
  const double tree = bcast_us("armn1", "xhc", bytes, {}, true, 1);
  for (const char* other : {"xhc-flat", "tuned", "sm", "ucc", "smhc"}) {
    EXPECT_LT(tree, bcast_us("armn1", other, bytes, {}, true, 1)) << other;
  }
}

TEST(PaperShapes, FlatWinsTinyMessagesOnEpycOnly) {
  // Shared-LLC assist: flat beats tree at 4 B on Epyc-1P (paper §V-D1)...
  EXPECT_LT(bcast_us("epyc1p", "xhc-flat", 4, {}, true, 3),
            bcast_us("epyc1p", "xhc", 4, {}, true, 3));
  // ...but on SLC-based ARM-N1 the tree wins even at 4 B.
  EXPECT_LT(bcast_us("armn1", "xhc", 4, {}, true, 3),
            bcast_us("armn1", "xhc-flat", 4, {}, true, 3));
}

TEST(PaperShapes, SmhcPaysDoubleCopiesAtLargeSizes) {
  const std::size_t bytes = 1 << 20;
  const double xhc = bcast_us("epyc1p", "xhc", bytes, {}, true, 1);
  const double smhc = bcast_us("epyc1p", "smhc", bytes, {}, true, 1);
  EXPECT_GT(smhc, 2.0 * xhc);  // paper: up to 4x on Epyc-1P
}

// --- Fig. 9: mapping / root robustness ----------------------------------------

TEST(PaperShapes, TunedSwingsWithMappingXhcDoesNot) {
  auto run_with = [](std::string_view comp_name, topo::MapPolicy policy) {
    sim::SimMachine m(topo::epyc2p(), 64, policy);
    auto comp = coll::make_component(comp_name, m);
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = 1;
    return osu::bcast_sweep(m, *comp, {1u << 20}, cfg).front().avg_us;
  };
  const double tuned_core = run_with("tuned", topo::MapPolicy::kCore);
  const double tuned_numa = run_with("tuned", topo::MapPolicy::kNuma);
  const double xhc_core = run_with("xhc", topo::MapPolicy::kCore);
  const double xhc_numa = run_with("xhc", topo::MapPolicy::kNuma);
  const double tuned_swing =
      std::abs(tuned_numa - tuned_core) / std::min(tuned_core, tuned_numa);
  const double xhc_swing =
      std::abs(xhc_numa - xhc_core) / std::min(xhc_core, xhc_numa);
  EXPECT_GT(tuned_swing, 2.0 * xhc_swing);
  EXPECT_LT(xhc_swing, 0.30);
}

// --- Fig. 10: flag layout ------------------------------------------------------

TEST(PaperShapes, SeparatedFlagsInvertFlatVsTree) {
  // Completion time (slowest rank) is what the fan-out serialization
  // stretches; the rank-average is diluted by the early finishers.
  auto lat = [](const char* sens, coll::FlagLayout layout) {
    sim::SimMachine m(topo::epyc1p(), 32);
    coll::Tuning t;
    t.sensitivity = sens;
    t.flag_layout = layout;
    core::XhcComponent comp(m, t, "v");
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = 3;
    return osu::bcast_sweep(m, comp, {4}, cfg).front().avg_us;
  };
  const double flat_shared = lat("flat", coll::FlagLayout::kMultiSharedLine);
  const double flat_sep = lat("flat", coll::FlagLayout::kMultiSeparateLines);
  const double tree_shared =
      lat("numa+socket", coll::FlagLayout::kMultiSharedLine);
  const double tree_sep =
      lat("numa+socket", coll::FlagLayout::kMultiSeparateLines);
  // Separating the flags inflates the flat tree (every member's line is
  // serviced by the root core's port)...
  EXPECT_GT(flat_sep, 1.08 * flat_shared);
  // ...and under separated flags the flat tree is worse than the
  // hierarchical one (the paper's reversal)...
  EXPECT_GT(flat_sep, tree_sep);
  // ...while the hierarchical variant moves far less (paper §V-D1: "its
  // explicit handling of flags traversal leaves minimal margin for
  // implicit assistance").
  EXPECT_LT(tree_sep - tree_shared, 0.5 * (flat_sep - flat_shared));
}

// --- Fig. 11: allreduce standings ----------------------------------------------

TEST(PaperShapes, AllreduceTreeWinsLargeEverywhere) {
  for (const auto system : topo::paper_systems()) {
    const double tree = allreduce_us(system, "xhc", 1 << 20);
    for (const char* other : {"xhc-flat", "sm", "xbrc"}) {
      EXPECT_LT(tree, allreduce_us(system, other, 1 << 20))
          << system << " vs " << other;
    }
  }
}

TEST(PaperShapes, XbrcTracksXhcFlat) {
  // The two flat single-copy reducers behave alike (paper §V-D2).
  const double flat = allreduce_us("epyc2p", "xhc-flat", 64 * 1024);
  const double xbrc = allreduce_us("epyc2p", "xbrc", 64 * 1024);
  EXPECT_LT(std::max(flat, xbrc) / std::min(flat, xbrc), 3.0);
}

// --- Determinism of the whole pipeline ------------------------------------------

TEST(PaperShapes, SweepsAreDeterministic) {
  const double a = bcast_us("epyc2p", "xhc", 65536);
  const double b = bcast_us("epyc2p", "xhc", 65536);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace xhc
