// Protocol checker tests (src/check/):
//   * conformance — the statically extracted ScheduleModel matches, flag by
//     flag and value by value, the event stream the real collective emits,
//   * analyzer sweep — every preset x op x size-class schedule is clean and
//     the reports are byte-deterministic,
//   * mutation kill score — every seeded protocol bug yields the predicted
//     finding (property, flag, rank), and the threshold bugs are killed
//     statically even though a default-schedule execution stays green,
//   * exploration — the sleep-set DFS exhausts the tiny topologies with no
//     failing interleaving, and finds the seeded deadlock when one exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "check/analyzer.h"
#include "check/explore.h"
#include "check/interp.h"
#include "check/mutate.h"
#include "check/schedule_model.h"
#include "coll/tuning.h"
#include "core/xhc_component.h"
#include "mach/machine.h"
#include "sim/access_sink.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"
#include "verify/verify.h"

namespace xhc {
namespace {

using check::Op;

// ---------------------------------------------------------------------------
// Conformance: model vs. real event stream
// ---------------------------------------------------------------------------

struct FlagRec {
  const mach::Flag* flag = nullptr;
  sim::AccessSink::FlagOp op = sim::AccessSink::FlagOp::kStore;
  std::uint64_t value = 0;
};

/// Records every store / wait-entry / RMW per rank. Ranks write disjoint
/// vectors and the sink runs under the scheduler token, so no locking.
class OpRecorder final : public sim::AccessSink {
 public:
  explicit OpRecorder(int n) : per_rank(static_cast<std::size_t>(n)) {}
  std::vector<std::vector<FlagRec>> per_rank;

  void on_flag(int rank, const mach::Flag* f, FlagOp op,
               std::uint64_t value) override {
    if (op == FlagOp::kRead) return;  // the model carries no read events
    per_rank[static_cast<std::size_t>(rank)].push_back({f, op, value});
  }
  void on_data(int, const void*, std::size_t, bool) override {}
};

const char* flag_op_name(sim::AccessSink::FlagOp op) {
  switch (op) {
    case sim::AccessSink::FlagOp::kStore:
      return "store";
    case sim::AccessSink::FlagOp::kRmw:
      return "rmw";
    case sim::AccessSink::FlagOp::kRead:
      return "read";
    case sim::AccessSink::FlagOp::kWaitEnter:
      return "wait";
  }
  return "?";
}

sim::AccessSink::FlagOp expected_op(check::EvKind k) {
  switch (k) {
    case check::EvKind::kPublish:
      return sim::AccessSink::FlagOp::kStore;
    case check::EvKind::kWait:
      return sim::AccessSink::FlagOp::kWaitEnter;
    case check::EvKind::kRmw:
      return sim::AccessSink::FlagOp::kRmw;
  }
  return sim::AccessSink::FlagOp::kStore;
}

/// Builds a fresh machine + component, extracts the first-op model, runs
/// the same op once for real, and compares the streams position by
/// position. Values are compared for publishes and waits; RMWs compare by
/// position only (the model stores the delta, the sink the result).
void expect_conformance(const std::string& label, topo::Topology topo,
                        const coll::Tuning& tuning, Op op, std::size_t bytes,
                        int root) {
  const int n = topo.n_cores();
  sim::SimMachine machine(std::move(topo), n);
  core::XhcComponent comp(machine, tuning, "conf");
  const check::ScheduleModel model =
      check::extract_schedule(comp, op, bytes, root);
  ASSERT_EQ(model.n_ranks, n) << label;

  std::vector<mach::Buffer> sbuf, rbuf;
  std::vector<unsigned char> ref(bytes);
  util::fill_pattern(ref.data(), bytes, 42);
  if (bytes > 0) {
    for (int r = 0; r < n; ++r) {
      rbuf.emplace_back(machine, r, bytes);
      if (op != Op::kBcast) {
        sbuf.emplace_back(machine, r, bytes);
        util::fill_pattern(sbuf.back().get(), bytes,
                           1000 + static_cast<std::uint64_t>(r));
      }
    }
    if (op == Op::kBcast) {
      std::memcpy(rbuf[static_cast<std::size_t>(root)].get(), ref.data(),
                  bytes);
    }
  }

  OpRecorder rec(n);
  machine.set_access_sink(&rec);
  machine.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    switch (op) {
      case Op::kBcast:
        comp.bcast(ctx, rbuf[static_cast<std::size_t>(r)].get(), bytes, root);
        break;
      case Op::kAllreduce:
        comp.allreduce(ctx, sbuf[static_cast<std::size_t>(r)].get(),
                       rbuf[static_cast<std::size_t>(r)].get(), bytes / 8,
                       mach::DType::kF64, mach::ROp::kSum);
        break;
      case Op::kReduce:
        comp.reduce(ctx, sbuf[static_cast<std::size_t>(r)].get(),
                    rbuf[static_cast<std::size_t>(r)].get(), bytes / 8,
                    mach::DType::kF64, mach::ROp::kSum, root);
        break;
      case Op::kBarrier:
        comp.barrier(ctx);
        break;
    }
  });
  machine.set_access_sink(nullptr);

  if (op == Op::kBcast) {
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(0, std::memcmp(rbuf[static_cast<std::size_t>(r)].get(),
                               ref.data(), bytes))
          << label << ": payload mismatch on rank " << r;
    }
  }

  const verify::Ledger& led = machine.verify_ledger();
  for (int r = 0; r < n; ++r) {
    const auto& want = model.per_rank[static_cast<std::size_t>(r)];
    const auto& got = rec.per_rank[static_cast<std::size_t>(r)];
    const std::size_t common = std::min(want.size(), got.size());
    for (std::size_t i = 0; i < common; ++i) {
      const check::Event& w = want[i];
      const FlagRec& g = got[i];
      const bool same = g.flag == w.flag && g.op == expected_op(w.kind) &&
                        (w.kind == check::EvKind::kRmw || g.value == w.value);
      if (!same) {
        ADD_FAILURE() << label << " r" << r << " event " << i
                      << ": model wants " << flag_op_name(expected_op(w.kind))
                      << " " << led.flag_name(w.flag) << " value " << w.value
                      << " (site " << w.site << "), run did "
                      << flag_op_name(g.op) << " " << led.flag_name(g.flag)
                      << " value " << g.value;
        return;  // first divergence is the informative one
      }
    }
    ASSERT_EQ(want.size(), got.size())
        << label << " r" << r << ": model has " << want.size()
        << " events, the run produced " << got.size()
        << " (streams agree on the common prefix)";
  }
}

TEST(CheckConformance, BcastCico) {
  expect_conformance("bcast/cico/root0", topo::mini8(), coll::Tuning{},
                     Op::kBcast, 512, 0);
  expect_conformance("bcast/cico/root3", topo::mini8(), coll::Tuning{},
                     Op::kBcast, 512, 3);
}

TEST(CheckConformance, BcastPipelined) {
  expect_conformance("bcast/pipelined", topo::mini8(), coll::Tuning{},
                     Op::kBcast, 40000, 0);
  expect_conformance("bcast/pipelined/root5", topo::mini8(), coll::Tuning{},
                     Op::kBcast, 40000, 5);
  expect_conformance("bcast/pipelined/mini16", topo::mini16(), coll::Tuning{},
                     Op::kBcast, 40000, 0);
}

TEST(CheckConformance, BcastFlagLayouts) {
  coll::Tuning t;
  t.flag_layout = coll::FlagLayout::kMultiSharedLine;
  expect_conformance("bcast/multi-shared", topo::mini8(), t, Op::kBcast, 40000,
                     0);
  t.flag_layout = coll::FlagLayout::kMultiSeparateLines;
  expect_conformance("bcast/multi-sep", topo::mini8(), t, Op::kBcast, 40000,
                     0);
}

TEST(CheckConformance, BcastAtomicSync) {
  coll::Tuning t;
  t.sync = coll::SyncMethod::kAtomicFetchAdd;
  expect_conformance("bcast/atomic/cico", topo::mini8(), t, Op::kBcast, 512,
                     0);
  expect_conformance("bcast/atomic", topo::mini8(), t, Op::kBcast, 40000, 0);
}

TEST(CheckConformance, BcastStriped) {
  coll::Tuning t;
  t.stripe_threshold = 4096;
  expect_conformance("bcast/striped", topo::mini8(), t, Op::kBcast, 16384, 0);
  expect_conformance("bcast/striped/root6", topo::mini8(), t, Op::kBcast,
                     16384, 6);
}

TEST(CheckConformance, Allreduce) {
  expect_conformance("allreduce/cico", topo::mini8(), coll::Tuning{},
                     Op::kAllreduce, 512, 0);
  expect_conformance("allreduce/pipelined", topo::mini8(), coll::Tuning{},
                     Op::kAllreduce, 40000, 0);
}

TEST(CheckConformance, AllreduceRsAg) {
  coll::Tuning t;
  t.rs_ag_threshold = 4096;
  expect_conformance("allreduce/rs_ag/flat8", topo::flat(8), t,
                     Op::kAllreduce, 16384, 0);
  expect_conformance("allreduce/rs_ag/mini8", topo::mini8(), t,
                     Op::kAllreduce, 16384, 0);
}

TEST(CheckConformance, Reduce) {
  expect_conformance("reduce/root0", topo::mini8(), coll::Tuning{},
                     Op::kReduce, 40000, 0);
  expect_conformance("reduce/root2", topo::mini8(), coll::Tuning{},
                     Op::kReduce, 40000, 2);
  expect_conformance("reduce/cico", topo::mini8(), coll::Tuning{},
                     Op::kReduce, 512, 1);
}

TEST(CheckConformance, Barrier) {
  expect_conformance("barrier/mini8", topo::mini8(), coll::Tuning{},
                     Op::kBarrier, 0, 0);
  expect_conformance("barrier/mini16", topo::mini16(), coll::Tuning{},
                     Op::kBarrier, 0, 0);
  expect_conformance("barrier/flat4", topo::flat(4), coll::Tuning{},
                     Op::kBarrier, 0, 0);
}

// ---------------------------------------------------------------------------
// Analyzer sweep: every preset x op x size class is clean + deterministic
// ---------------------------------------------------------------------------

TEST(CheckAnalyzer, SweepAllPresetsClean) {
  struct Target {
    std::string name;
    topo::Topology t;
  };
  std::vector<Target> targets;
  for (const char* name : {"epyc1p", "epyc2p", "armn1", "mini8", "mini16"}) {
    targets.push_back({name, topo::by_name(name)});
  }
  targets.push_back({"flat4", topo::flat(4)});
  targets.push_back({"flat8", topo::flat(8)});
  targets.push_back({"grid12", topo::grid("grid12", 2, 3, 2, 2)});

  const Op ops[] = {Op::kBcast, Op::kAllreduce, Op::kReduce, Op::kBarrier};
  for (Target& tg : targets) {
    const int n = tg.t.n_cores();
    sim::SimMachine machine(tg.t, n);
    core::XhcComponent comp(machine, coll::Tuning{}, "sweep");
    for (const Op op : ops) {
      std::vector<std::size_t> sizes = {512, 32768, 262144};
      if (op == Op::kBarrier) sizes = {0};
      for (const std::size_t bytes : sizes) {
        std::vector<int> roots = {0};
        if (op == Op::kBcast || op == Op::kReduce) roots.push_back(n - 1);
        for (const int root : roots) {
          const check::ScheduleModel model =
              check::extract_schedule(comp, op, bytes, root);
          const check::AnalysisReport rep =
              check::analyze(model, machine.verify_ledger());
          EXPECT_TRUE(rep.clean())
              << tg.name << " root=" << root << "\n" << rep.text();
          // Byte-determinism: a second extraction + analysis renders the
          // identical text and JSON.
          const check::AnalysisReport rep2 = check::analyze(
              check::extract_schedule(comp, op, bytes, root),
              machine.verify_ledger());
          EXPECT_EQ(rep.text(), rep2.text()) << tg.name;
          EXPECT_EQ(rep.json(), rep2.json()) << tg.name;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mutation harness: 100% kill score with precise expectations
// ---------------------------------------------------------------------------

struct MutSpec {
  const char* label;
  std::function<topo::Topology()> topo;
  std::function<void(coll::Tuning&)> tune;
  Op op;
  std::size_t bytes;
  int root;
};

std::vector<MutSpec> mutation_specs() {
  return {
      {"bcast_lat", [] { return topo::mini8(); }, nullptr, Op::kBcast, 40000,
       0},
      {"bcast_stripe", [] { return topo::mini8(); },
       [](coll::Tuning& t) { t.stripe_threshold = 4096; }, Op::kBcast, 16384,
       0},
      {"allreduce_lat", [] { return topo::mini8(); }, nullptr, Op::kAllreduce,
       40000, 0},
      {"allreduce_rs_ag", [] { return topo::flat(8); },
       [](coll::Tuning& t) { t.rs_ag_threshold = 4096; }, Op::kAllreduce,
       16384, 0},
      {"reduce", [] { return topo::mini8(); }, nullptr, Op::kReduce, 40000, 2},
      {"barrier", [] { return topo::mini8(); }, nullptr, Op::kBarrier, 0, 0},
  };
}

class CheckMutants : public ::testing::TestWithParam<check::MutationKind> {};

TEST_P(CheckMutants, EverySeededMutantIsKilled) {
  const check::MutationKind kind = GetParam();
  const std::uint64_t seeds[] = {1, 2, 3, 5, 8, 13};
  int applied = 0;
  int killed = 0;
  for (const MutSpec& spec : mutation_specs()) {
    topo::Topology t = spec.topo();
    const int n = t.n_cores();
    sim::SimMachine machine(std::move(t), n);
    coll::Tuning tuning;
    if (spec.tune) spec.tune(tuning);
    core::XhcComponent comp(machine, tuning, "mut");
    const check::ScheduleModel base =
        check::extract_schedule(comp, spec.op, spec.bytes, spec.root);
    ASSERT_TRUE(check::analyze(base, machine.verify_ledger()).clean())
        << spec.label << ": baseline schedule must be clean";
    for (const std::uint64_t seed : seeds) {
      check::ScheduleModel m = base;
      const check::MutantInfo info =
          check::apply_mutation(m, kind, seed, machine.verify_ledger());
      if (!info.applied) continue;
      ++applied;
      const check::AnalysisReport rep =
          check::analyze(m, machine.verify_ledger());
      const bool hit =
          std::any_of(rep.findings.begin(), rep.findings.end(),
                      [&](const check::Finding& f) { return info.killed_by(f); });
      if (hit) ++killed;
      EXPECT_TRUE(hit) << spec.label << " seed=" << seed << " "
                       << check::to_string(kind) << ": " << info.detail
                       << "\nexpected flag=" << info.flag
                       << " rank=" << info.rank << "\n"
                       << rep.text();
    }
  }
  EXPECT_GT(applied, 0) << "no candidate site in any model for "
                        << check::to_string(kind);
  EXPECT_EQ(killed, applied) << "kill score below 100% for "
                             << check::to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CheckMutants,
    ::testing::Values(check::MutationKind::kThresholdLow,
                      check::MutationKind::kThresholdHigh,
                      check::MutationKind::kDroppedPublish,
                      check::MutationKind::kSwappedStageOrder,
                      check::MutationKind::kWidenedWriter),
    [](const ::testing::TestParamInfo<check::MutationKind>& info) {
      switch (info.param) {
        case check::MutationKind::kThresholdLow:
          return "ThresholdLow";
        case check::MutationKind::kThresholdHigh:
          return "ThresholdHigh";
        case check::MutationKind::kDroppedPublish:
          return "DroppedPublish";
        case check::MutationKind::kSwappedStageOrder:
          return "SwappedStageOrder";
        case check::MutationKind::kWidenedWriter:
          return "WidenedWriter";
      }
      return "Unknown";
    });

/// The reason the static pass exists: a lowered wait threshold terminates,
/// keeps the writer discipline intact and (under the default schedule)
/// usually even delivers correct-looking payloads — every signal the
/// runtime suite's canonical execution gates on stays green. The analyzer
/// must kill it anyway.
TEST(CheckMutants, StaticPassCatchesWhatDefaultRunMisses) {
  sim::SimMachine machine(topo::mini8(), 8);
  core::XhcComponent comp(machine, coll::Tuning{}, "blind");
  const check::ScheduleModel base =
      check::extract_schedule(comp, Op::kBcast, 40000, 0);

  const check::InterpResult good =
      check::run_model(base, machine, machine.verify_ledger());
  ASSERT_TRUE(good.ok()) << (good.errors.empty() ? "unexpected model failure"
                                                 : good.errors.front());

  bool demonstrated = false;
  for (std::uint64_t seed = 1; seed <= 32 && !demonstrated; ++seed) {
    check::ScheduleModel m = base;
    const check::MutantInfo info = check::apply_mutation(
        m, check::MutationKind::kThresholdLow, seed, machine.verify_ledger());
    if (!info.applied) continue;
    const check::AnalysisReport rep =
        check::analyze(m, machine.verify_ledger());
    const bool static_kill =
        std::any_of(rep.findings.begin(), rep.findings.end(),
                    [&](const check::Finding& f) { return info.killed_by(f); });
    EXPECT_TRUE(static_kill) << info.detail << "\n" << rep.text();
    const check::InterpResult run =
        check::run_model(m, machine, machine.verify_ledger());
    // Termination + ledger discipline — all the default execution can
    // observe without the abstract coverage oracle — stay green.
    if (static_kill && run.completed && !run.deadlock &&
        run.violations.empty()) {
      demonstrated = true;
    }
  }
  EXPECT_TRUE(demonstrated)
      << "no threshold-low mutant survived the default-schedule run";
}

// ---------------------------------------------------------------------------
// Interleaving exploration
// ---------------------------------------------------------------------------

TEST(CheckExplorer, ExhaustsTinyModelTopologies) {
  for (const int n : {2, 3, 4}) {
    sim::SimMachine machine(topo::flat(n), n);
    core::XhcComponent comp(machine, coll::Tuning{}, "explore");
    for (const Op op : {Op::kBarrier, Op::kBcast}) {
      const std::size_t bytes = op == Op::kBcast ? 512 : 0;
      const check::ScheduleModel model =
          check::extract_schedule(comp, op, bytes, 0);
      const check::Runner run =
          [&](const sim::VirtualScheduler::PickHook& hook,
              sim::AccessSink* sink) {
            const check::InterpResult res = check::run_model(
                model, machine, machine.verify_ledger(), hook, sink);
            check::RunOutcome out;
            if (!res.ok()) {
              out.failed = true;
              out.diag = !res.errors.empty() ? res.errors.front()
                         : !res.violations.empty()
                             ? res.violations.front().describe()
                             : "model run failed";
            }
            return out;
          };
      check::ExploreOptions opts;
      opts.max_branch_depth = n < 4 ? 8 : 6;
      opts.max_executions = 6000;
      const check::ExploreStats st = check::explore(run, opts);
      EXPECT_TRUE(st.exhausted)
          << "flat(" << n << ") " << check::to_string(op)
          << ": executions=" << st.executions;
      EXPECT_EQ(st.failures, 0)
          << "flat(" << n << ") " << check::to_string(op) << ": "
          << (st.witnesses.empty() ? "" : st.witnesses.front());
      EXPECT_GE(st.executions, 1);
    }
  }
}

TEST(CheckExplorer, RealBcastPayloadUnderAllSchedules) {
  const std::size_t kBytes = 512;
  sim::SimMachine machine(topo::flat(4), 4);
  core::XhcComponent comp(machine, coll::Tuning{}, "explore-real");
  std::vector<mach::Buffer> buf;
  for (int r = 0; r < 4; ++r) buf.emplace_back(machine, r, kBytes);
  std::vector<unsigned char> ref(kBytes);
  util::fill_pattern(ref.data(), kBytes, 7);

  const check::Runner run = [&](const sim::VirtualScheduler::PickHook& hook,
                                sim::AccessSink* sink) {
    for (int r = 1; r < 4; ++r) std::memset(buf[r].get(), 0, kBytes);
    std::memcpy(buf[0].get(), ref.data(), kBytes);
    machine.set_pick_hook(hook);
    machine.set_access_sink(sink);
    check::RunOutcome out;
    try {
      machine.run([&](mach::Ctx& ctx) {
        comp.bcast(ctx, buf[static_cast<std::size_t>(ctx.rank())].get(),
                   kBytes, 0);
      });
      for (int r = 0; r < 4; ++r) {
        if (std::memcmp(buf[r].get(), ref.data(), kBytes) != 0) {
          out.failed = true;
          out.diag = "payload mismatch on rank " + std::to_string(r);
          break;
        }
      }
    } catch (const std::exception& e) {
      out.failed = true;
      out.diag = e.what();
    }
    machine.set_pick_hook(nullptr);
    machine.set_access_sink(nullptr);
    return out;
  };

  check::ExploreOptions opts;
  opts.max_branch_depth = 4;
  opts.max_executions = 1200;
  const check::ExploreStats st = check::explore(run, opts);
  EXPECT_TRUE(st.exhausted) << "executions=" << st.executions;
  EXPECT_EQ(st.failures, 0)
      << (st.witnesses.empty() ? "" : st.witnesses.front());
  EXPECT_GT(st.branch_points, 0);
}

TEST(CheckExplorer, FindsSeededDeadlock) {
  sim::SimMachine origin(topo::flat(4), 4);
  core::XhcComponent comp(origin, coll::Tuning{}, "dead");
  const check::ScheduleModel base =
      check::extract_schedule(comp, Op::kBcast, 40000, 0);

  check::ScheduleModel mutant;
  check::MutantInfo info;
  for (std::uint64_t seed = 1; seed <= 16 && !info.applied; ++seed) {
    check::ScheduleModel m = base;
    const check::MutantInfo i2 =
        check::apply_mutation(m, check::MutationKind::kSwappedStageOrder, seed,
                              origin.verify_ledger());
    if (i2.applied) {
      mutant = std::move(m);
      info = i2;
    }
  }
  ASSERT_TRUE(info.applied) << "no stage-order site on flat(4) bcast";

  const check::AnalysisReport rep =
      check::analyze(mutant, origin.verify_ledger());
  EXPECT_TRUE(std::any_of(
      rep.findings.begin(), rep.findings.end(),
      [&](const check::Finding& f) { return info.killed_by(f); }))
      << info.detail << "\n" << rep.text();

  // A deadlocked machine is not reusable, so each execution gets a fresh
  // one; the origin's ledger still resolves the model's flag names.
  const check::Runner run = [&](const sim::VirtualScheduler::PickHook& hook,
                                sim::AccessSink* sink) {
    sim::SimMachine fresh(topo::flat(4), 4);
    const check::InterpResult res =
        check::run_model(mutant, fresh, origin.verify_ledger(), hook, sink);
    check::RunOutcome out;
    if (!res.ok()) {
      out.failed = true;
      out.diag = res.errors.empty() ? "model run failed" : res.errors.front();
    }
    return out;
  };
  check::ExploreOptions opts;
  opts.max_branch_depth = 3;
  opts.max_executions = 24;
  opts.random_walks = 4;
  const check::ExploreStats st = check::explore(run, opts);
  EXPECT_GT(st.failures, 0) << "explorer missed the seeded deadlock";
}

}  // namespace
}  // namespace xhc
