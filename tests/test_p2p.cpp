// Tests for the pt2pt fabric: eager and rendezvous protocols, in-order tag
// matching, fragmentation, sendrecv exchanges, and traffic accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "mach/real_machine.h"
#include "p2p/fabric.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc::p2p {
namespace {

void fill(void* p, std::size_t n, std::uint64_t seed) {
  util::fill_pattern(p, n, seed);
}

bool same(const void* a, const void* b, std::size_t n) {
  return std::memcmp(a, b, n) == 0;
}

class FabricTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FabricTest, SendRecvRoundTripReal) {
  const std::size_t bytes = GetParam();
  mach::RealMachine m(topo::mini8(), 2);
  Fabric fabric(m, {});
  mach::Buffer src(m, 0, bytes);
  mach::Buffer dst(m, 1, bytes);
  fill(src.get(), bytes, 9);
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      fabric.send(ctx, 1, 42, src.get(), bytes);
    } else {
      fabric.recv(ctx, 0, 42, dst.get(), bytes);
    }
  });
  EXPECT_TRUE(same(src.get(), dst.get(), bytes));
}

TEST_P(FabricTest, SendRecvRoundTripSim) {
  const std::size_t bytes = GetParam();
  sim::SimMachine m(topo::mini8(), 2);
  Fabric fabric(m, {});
  mach::Buffer src(m, 0, bytes);
  mach::Buffer dst(m, 1, bytes);
  fill(src.get(), bytes, 11);
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      fabric.send(ctx, 1, 7, src.get(), bytes);
    } else {
      fabric.recv(ctx, 0, 7, dst.get(), bytes);
    }
  });
  EXPECT_TRUE(same(src.get(), dst.get(), bytes));
}

// Cover eager (< 4 KB), the eager/rendezvous boundary, rendezvous, and the
// CICO fragmentation path sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, FabricTest,
                         ::testing::Values(1, 64, 4096, 4097, 65536,
                                           1u << 20));

TEST(Fabric, BackToBackMessagesStayOrdered) {
  mach::RealMachine m(topo::mini8(), 2);
  Fabric fabric(m, {});
  constexpr int kMessages = 64;  // exceeds the ring depth several times
  std::vector<mach::Buffer> out;
  std::vector<mach::Buffer> in;
  for (int i = 0; i < kMessages; ++i) {
    out.emplace_back(m, 0, 128);
    in.emplace_back(m, 1, 128);
    fill(out.back().get(), 128, static_cast<std::uint64_t>(i));
  }
  m.run([&](mach::Ctx& ctx) {
    for (int i = 0; i < kMessages; ++i) {
      if (ctx.rank() == 0) {
        fabric.send(ctx, 1, i, out[static_cast<std::size_t>(i)].get(), 128);
      } else {
        fabric.recv(ctx, 0, i, in[static_cast<std::size_t>(i)].get(), 128);
      }
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(same(out[static_cast<std::size_t>(i)].get(),
                     in[static_cast<std::size_t>(i)].get(), 128))
        << "message " << i;
  }
}

TEST(Fabric, CicoMechanismFragmentsLargeMessages) {
  sim::SimMachine m(topo::mini8(), 2);
  Fabric::Config cfg;
  cfg.mechanism = smsc::Mechanism::kCico;
  Fabric fabric(m, cfg);
  constexpr std::size_t kBytes = 200 * 1024;  // far above one ring
  mach::Buffer src(m, 0, kBytes);
  mach::Buffer dst(m, 1, kBytes);
  fill(src.get(), kBytes, 5);
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      fabric.send(ctx, 1, 3, src.get(), kBytes);
    } else {
      fabric.recv(ctx, 0, 3, dst.get(), kBytes);
    }
  });
  EXPECT_TRUE(same(src.get(), dst.get(), kBytes));
}

TEST(Fabric, SendRecvExchangeDoesNotDeadlock) {
  for (const std::size_t bytes : {std::size_t{256}, std::size_t{1} << 20}) {
    mach::RealMachine m(topo::mini8(), 2);
    Fabric fabric(m, {});
    mach::Buffer a_out(m, 0, bytes);
    mach::Buffer a_in(m, 0, bytes);
    mach::Buffer b_out(m, 1, bytes);
    mach::Buffer b_in(m, 1, bytes);
    fill(a_out.get(), bytes, 1);
    fill(b_out.get(), bytes, 2);
    m.run([&](mach::Ctx& ctx) {
      if (ctx.rank() == 0) {
        fabric.sendrecv(ctx, 1, a_out.get(), bytes, 1, a_in.get(), bytes, 9);
      } else {
        fabric.sendrecv(ctx, 0, b_out.get(), bytes, 0, b_in.get(), bytes, 9);
      }
    });
    EXPECT_TRUE(same(a_in.get(), b_out.get(), bytes));
    EXPECT_TRUE(same(b_in.get(), a_out.get(), bytes));
  }
}

TEST(Fabric, SendRecvExchangeCicoInterleaves) {
  // Both sides stream > ring capacity simultaneously; the interleaved
  // fragment schedule must not deadlock on the bounded rings.
  sim::SimMachine m(topo::mini8(), 2);
  Fabric::Config cfg;
  cfg.mechanism = smsc::Mechanism::kCico;
  Fabric fabric(m, cfg);
  constexpr std::size_t kBytes = 256 * 1024;
  mach::Buffer a_out(m, 0, kBytes);
  mach::Buffer a_in(m, 0, kBytes);
  mach::Buffer b_out(m, 1, kBytes);
  mach::Buffer b_in(m, 1, kBytes);
  fill(a_out.get(), kBytes, 1);
  fill(b_out.get(), kBytes, 2);
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      fabric.sendrecv(ctx, 1, a_out.get(), kBytes, 1, a_in.get(), kBytes, 4);
    } else {
      fabric.sendrecv(ctx, 0, b_out.get(), kBytes, 0, b_in.get(), kBytes, 4);
    }
  });
  EXPECT_TRUE(same(a_in.get(), b_out.get(), kBytes));
  EXPECT_TRUE(same(b_in.get(), a_out.get(), kBytes));
}

TEST(Fabric, TagMismatchIsDetected) {
  mach::RealMachine m(topo::mini8(), 2);
  Fabric fabric(m, {});
  mach::Buffer src(m, 0, 64);
  mach::Buffer dst(m, 1, 64);
  EXPECT_THROW(m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      fabric.send(ctx, 1, 1, src.get(), 64);
    } else {
      fabric.recv(ctx, 0, 2, dst.get(), 64);  // wrong tag
    }
  }),
               util::Error);
}

TEST(Fabric, SelfSendRejected) {
  mach::RealMachine m(topo::mini8(), 2);
  Fabric fabric(m, {});
  mach::Buffer buf(m, 0, 64);
  EXPECT_THROW(m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) fabric.send(ctx, 0, 0, buf.get(), 64);
  }),
               util::Error);
}

TEST(Fabric, CountersClassifyDistance) {
  sim::SimMachine m(topo::epyc2p(), 64);
  Fabric fabric(m, {});
  mach::Buffer b0(m, 0, 64);
  mach::Buffer b1(m, 1, 64);
  mach::Buffer b8(m, 8, 64);
  mach::Buffer b32(m, 32, 64);
  m.run([&](mach::Ctx& ctx) {
    switch (ctx.rank()) {
      case 0:
        fabric.send(ctx, 1, 0, b0.get(), 64);   // intra-NUMA
        fabric.send(ctx, 8, 1, b0.get(), 64);   // cross-NUMA
        fabric.send(ctx, 32, 2, b0.get(), 64);  // cross-socket
        break;
      case 1:
        fabric.recv(ctx, 0, 0, b1.get(), 64);
        break;
      case 8:
        fabric.recv(ctx, 0, 1, b8.get(), 64);
        break;
      case 32:
        fabric.recv(ctx, 0, 2, b32.get(), 64);
        break;
      default:
        break;
    }
  });
  EXPECT_EQ(fabric.counters().intra_numa(), 1u);
  EXPECT_EQ(fabric.counters().inter_numa(), 1u);
  EXPECT_EQ(fabric.counters().inter_socket(), 1u);
  EXPECT_EQ(fabric.counters().total(), 3u);
}

TEST(Fabric, RendezvousUsesRegistrationCache) {
  // Repeated large sends of the same buffer should get cheaper after the
  // first (mapping reuse) — observable through virtual time.
  sim::SimMachine m(topo::mini8(), 2);
  Fabric fabric(m, {});
  constexpr std::size_t kBytes = 1 << 20;
  mach::Buffer src(m, 0, kBytes);
  mach::Buffer dst(m, 1, kBytes);
  std::vector<double> durations;
  m.run([&](mach::Ctx& ctx) {
    for (int i = 0; i < 2; ++i) {
      ctx.barrier();
      const double t0 = ctx.now();
      if (ctx.rank() == 0) {
        fabric.send(ctx, 1, i, src.get(), kBytes);
      } else {
        fabric.recv(ctx, 0, i, dst.get(), kBytes);
        durations.push_back(ctx.now() - t0);
      }
    }
  });
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_LT(durations[1], durations[0]);
}

TEST(TrafficCounter, ClassifiesRecordsByDistanceAndResets) {
  // epyc2p: 2 sockets x 4 NUMA x 8 cores; kCore maps rank r to core r, so
  // ranks 0/1 share a NUMA node, 0/8 share only the socket, and 0/32 sit on
  // different sockets — one pair per topo::Distance class.
  topo::Topology topo = topo::epyc2p();
  topo::RankMap map(topo, topo.n_cores(), topo::MapPolicy::kCore);
  TrafficCounter counter(&topo, &map);

  ASSERT_EQ(map.distance(topo, 0, 1), topo::Distance::kLlcLocal);
  ASSERT_EQ(map.distance(topo, 0, 4), topo::Distance::kIntraNuma);
  ASSERT_EQ(map.distance(topo, 0, 8), topo::Distance::kCrossNuma);
  ASSERT_EQ(map.distance(topo, 0, 32), topo::Distance::kCrossSocket);

  counter.record(0, 1);  // LLC-local and intra-NUMA share one bucket
  counter.record(4, 0);  // direction must not matter
  counter.record(0, 8);
  counter.record(0, 32);
  counter.record(32, 0);
  counter.record(63, 0);
  EXPECT_EQ(counter.intra_numa(), 2u);
  EXPECT_EQ(counter.inter_numa(), 1u);
  EXPECT_EQ(counter.inter_socket(), 3u);
  EXPECT_EQ(counter.total(), 6u);

  counter.reset();
  EXPECT_EQ(counter.intra_numa(), 0u);
  EXPECT_EQ(counter.inter_numa(), 0u);
  EXPECT_EQ(counter.inter_socket(), 0u);
  EXPECT_EQ(counter.total(), 0u);

  counter.record(0, 8);  // counting resumes cleanly after a reset
  EXPECT_EQ(counter.inter_numa(), 1u);
  EXPECT_EQ(counter.total(), 1u);
}

}  // namespace
}  // namespace xhc::p2p
