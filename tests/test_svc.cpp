// Multi-tenant collective service (DESIGN.md § Multi-tenant service):
// tenant rank renumbering, the arbiter's admission/degradation chain,
// overlapping communicators policed by one shared ledger, backpressure and
// deadline shedding under the loadgen, payload integrity under injected
// faults, byte-determinism across runs and host backends, and systematic
// interleaving exploration of two overlapping communicators.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/explore.h"
#include "mach/machine.h"
#include "sim/sim_machine.h"
#include "svc/arbiter.h"
#include "svc/loadgen.h"
#include "svc/registry.h"
#include "svc/tenant.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc {
namespace {

// ---------------------------------------------------------------------------
// Tenant facade

TEST(SvcTenant, RanksAreRenumberedAndDeduplicated) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::TenantMachine tenant(machine, {5, 1, 3, 1}, "t/");
  ASSERT_EQ(tenant.n_ranks(), 3);
  EXPECT_EQ(tenant.ranks(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(tenant.parent_rank(0), 1);
  EXPECT_EQ(tenant.parent_rank(2), 5);
  EXPECT_EQ(tenant.local_rank(3), 1);
  EXPECT_EQ(tenant.local_rank(0), -1);
  // Tenants share the parent's ledger and never execute themselves.
  EXPECT_EQ(&tenant.verify_ledger(), &machine.verify_ledger());
  EXPECT_THROW(tenant.run([](mach::Ctx&) {}), util::Error);
}

TEST(SvcTenant, CtxRenumbersAndForbidsSubsetBarrier) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::TenantMachine tenant(machine, {2, 4}, "t/");
  machine.run([&](mach::Ctx& ctx) {
    if (tenant.local_rank(ctx.rank()) < 0) return;
    svc::TenantCtx tctx(ctx, tenant);
    EXPECT_EQ(tctx.size(), 2);
    EXPECT_EQ(tctx.rank(), ctx.rank() == 2 ? 0 : 1);
    EXPECT_THROW(tctx.barrier(), util::Error);
  });
}

// ---------------------------------------------------------------------------
// Admission: degradation chain, then a named error — never a hang

TEST(SvcArbiter, DegradesSegmentsBeforeShedding) {
  svc::Budget budget;
  // Room for ~half a default communicator: forces segment halving.
  coll::Tuning probe;
  budget.segment_bytes =
      8 * (probe.cico_segment_bytes / 4 + svc::Arbiter::kCtlBytesPerRank);
  svc::Arbiter arbiter(budget);
  std::string trail;
  const coll::Tuning got = arbiter.admit("comm0'a'/", 8, probe, &trail);
  EXPECT_LT(got.cico_segment_bytes, probe.cico_segment_bytes);
  EXPECT_NE(trail.find("halved"), std::string::npos) << trail;
  arbiter.release("comm0'a'/");
  EXPECT_EQ(arbiter.segment_bytes_free(), budget.segment_bytes);
}

TEST(SvcRegistry, ExhaustionRaisesNamedAdmissionError) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::Budget budget;
  budget.segment_bytes = 4096;  // below any communicator's floor
  svc::Arbiter arbiter(budget);
  svc::CommRegistry reg(machine, arbiter);
  svc::CommSpec spec;
  spec.name = "greedy";
  for (int r = 0; r < 8; ++r) spec.ranks.push_back(r);
  try {
    reg.create(spec);
    FAIL() << "expected AdmissionError";
  } catch (const svc::AdmissionError& e) {
    EXPECT_NE(e.comm().find("comm0'greedy'"), std::string::npos) << e.comm();
    EXPECT_EQ(e.op(), "create");
    EXPECT_NE(e.reason().find("segment budget exhausted"), std::string::npos)
        << e.reason();
  }
  // The failed admission must not leak a charge.
  EXPECT_EQ(arbiter.segment_bytes_free(), budget.segment_bytes);
  EXPECT_EQ(reg.n_comms(), 0);
}

// ---------------------------------------------------------------------------
// Overlapping communicators in one parent run

TEST(SvcRegistry, OverlappingCommsInterleaveInOneRun) {
  constexpr int kRanks = 8;
  constexpr std::size_t kBytes = 30000;
  sim::SimMachine machine(topo::mini8(), kRanks);
  svc::Arbiter arbiter(svc::Budget{});
  svc::CommRegistry reg(machine, arbiter);
  svc::CommSpec a;
  a.name = "a";
  for (int r = 0; r < kRanks; ++r) a.ranks.push_back(r);
  svc::CommSpec b;
  b.name = "b";
  for (int r = 2; r < kRanks - 1; ++r) b.ranks.push_back(r);
  svc::Communicator& ca = reg.create(a);
  svc::Communicator& cb = reg.create(b);
  EXPECT_EQ(reg.comm_ids_of(3), (std::vector<int>{0, 1}));
  EXPECT_EQ(reg.comm_ids_of(0), (std::vector<int>{0}));

  // Distinct payload streams per communicator; both collectives run inside
  // ONE parent run, so ranks 2..6 carry both protocols back to back and the
  // shared ledger polices the single-writer discipline across them.
  std::vector<mach::Buffer> ba, bb;
  for (int r = 0; r < kRanks; ++r) {
    ba.emplace_back(machine, r, kBytes);
    bb.emplace_back(machine, r, kBytes);
  }
  util::fill_pattern(ba[0].get(), kBytes, 11);
  util::fill_pattern(bb[3].get(), kBytes, 22);  // comm b local root 1
  machine.run([&](mach::Ctx& ctx) {
    const auto i = static_cast<std::size_t>(ctx.rank());
    {
      svc::TenantCtx tctx(ctx, ca.machine());
      ca.component().bcast(tctx, ba[i].get(), kBytes, 0);
    }
    if (cb.local_rank(ctx.rank()) >= 0) {
      svc::TenantCtx tctx(ctx, cb.machine());
      cb.component().bcast(tctx, bb[i].get(), kBytes, 1);
    }
  });

  std::vector<std::byte> ea(kBytes), eb(kBytes);
  util::fill_pattern(ea.data(), kBytes, 11);
  util::fill_pattern(eb.data(), kBytes, 22);
  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(std::memcmp(ba[i].get(), ea.data(), kBytes), 0) << "a rank " << r;
    if (cb.local_rank(r) >= 0) {
      EXPECT_EQ(std::memcmp(bb[i].get(), eb.data(), kBytes), 0)
          << "b rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Loadgen: plan/schedule shape, backpressure, integrity, determinism

TEST(SvcLoadgen, CommPlanOverlapsAndScheduleIsSorted) {
  svc::LoadgenConfig cfg;
  cfg.n_comms = 6;
  cfg.requests = 600;
  const auto plan = svc::make_comm_plan(8, cfg, coll::Tuning{});
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan[0].ranks.size(), 8u);  // tenant 0 spans the node
  for (const auto& spec : plan) {
    EXPECT_GE(spec.ranks.size(), 2u) << spec.name;
  }

  sim::SimMachine machine(topo::mini8(), 8);
  svc::Arbiter arbiter(svc::Budget{});
  svc::CommRegistry reg(machine, arbiter);
  for (const auto& spec : plan) reg.create(spec);
  const auto sched = svc::make_schedule(cfg, reg);
  ASSERT_EQ(sched.size(), 600u);
  std::vector<std::uint64_t> next_index(6, 0);
  for (std::size_t i = 0; i < sched.size(); ++i) {
    EXPECT_EQ(sched[i].id, i);
    if (i > 0) EXPECT_GE(sched[i].arrival, sched[i - 1].arrival);
    // Per-communicator stream indices appear in order (verdict epochs).
    EXPECT_EQ(sched[i].index,
              next_index[static_cast<std::size_t>(sched[i].comm)]++);
    if (sched[i].op == svc::OpClass::kBarrier) {
      EXPECT_EQ(sched[i].bytes, 0u);
    } else {
      EXPECT_GE(sched[i].bytes, cfg.min_bytes);
      EXPECT_LE(sched[i].bytes, cfg.max_bytes);
      EXPECT_LT(sched[i].root, reg.comm(sched[i].comm).size());
    }
  }
}

svc::LoadgenConfig small_soak_config() {
  svc::LoadgenConfig cfg;
  cfg.n_comms = 4;
  cfg.requests = 400;
  cfg.arrival_rate = 2e4;
  cfg.max_bytes = 256u << 10;
  cfg.large_fraction = 0.05;
  return cfg;
}

svc::Budget generous_budget(int n_ranks, int n_comms,
                            const coll::Tuning& base) {
  svc::Budget budget;
  budget.segment_bytes =
      static_cast<std::size_t>(n_ranks) * static_cast<std::size_t>(n_comms) *
      (base.cico_segment_bytes + svc::Arbiter::kCtlBytesPerRank);
  return budget;
}

TEST(SvcLoadgen, SoakCompletesCleanOnMini8) {
  sim::SimMachine machine(topo::mini8(), 8);
  const svc::LoadgenConfig cfg = small_soak_config();
  const svc::LoadgenResult r =
      svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  EXPECT_EQ(r.completed + r.shed, cfg.requests);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_GT(r.makespan, 0.0);
  std::uint64_t per_class = 0;
  for (const auto& pc : r.per_class) per_class += pc.completed + pc.shed;
  EXPECT_EQ(per_class, cfg.requests);
}

TEST(SvcLoadgen, BackpressureShedsBeyondBudgetWithoutCorruption) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::LoadgenConfig cfg = small_soak_config();
  cfg.arrival_rate = 1e5;  // beyond one token's service rate
  svc::Budget budget = generous_budget(8, cfg.n_comms, {});
  // One op token and an effectively unbounded queue: the token pool is the
  // bottleneck, so leaders must back off, and requests that outwait the
  // deadline while backing off are shed.
  budget.inflight_ops = 1;
  budget.queue_capacity = 100000;
  budget.deadline = 5e-4;
  const svc::LoadgenResult r = svc::run_soak(machine, cfg, budget);
  EXPECT_EQ(r.completed + r.shed, cfg.requests);
  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.completed, 0u);  // shedding is partial, not collapse
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_GT(r.backoff_stalls, 0u);
}

TEST(SvcLoadgen, IntegrityHoldsUnderInjectedFaults) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::LoadgenConfig cfg = small_soak_config();
  cfg.requests = 200;
  // Degradations and perturbations only — no dropped publications, so the
  // soak must terminate with every payload intact.
  cfg.faults =
      "attach,prob=0.05;regmiss,prob=0.2;straggler,prob=0.1,delay=2e-6;"
      "flagdelay,prob=0.05,delay=1e-6;straggler,comm=1,prob=0.5,delay=1e-5";
  const svc::LoadgenResult r =
      svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  EXPECT_EQ(r.completed + r.shed, cfg.requests);
  EXPECT_EQ(r.integrity_failures, 0u);
}

TEST(SvcLoadgen, SoakIsByteDeterministicAcrossRunsAndBackends) {
  const svc::LoadgenConfig cfg = small_soak_config();
  const auto soak = [&](sim::SimBackend backend) {
    sim::SimMachine machine(topo::mini8(), 8);
    machine.set_backend(backend);
    return svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  };
  const svc::LoadgenResult a = soak(sim::SimBackend::kFiber);
  const svc::LoadgenResult b = soak(sim::SimBackend::kFiber);
  const svc::LoadgenResult c = soak(sim::SimBackend::kThreads);
  for (const svc::LoadgenResult* r : {&b, &c}) {
    EXPECT_EQ(a.completed, r->completed);
    EXPECT_EQ(a.shed, r->shed);
    EXPECT_EQ(a.integrity_failures, r->integrity_failures);
    EXPECT_EQ(a.backoff_stalls, r->backoff_stalls);
    EXPECT_EQ(a.makespan, r->makespan);  // bit-equal virtual time
    for (int k = 0; k < svc::kNumOpClasses; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      EXPECT_EQ(a.per_class[kk].completed, r->per_class[kk].completed);
      EXPECT_EQ(a.per_class[kk].latency.percentile(0.99),
                r->per_class[kk].latency.percentile(0.99));
    }
  }
}

// ---------------------------------------------------------------------------
// Systematic interleaving exploration: two overlapping communicators

TEST(SvcCheck, TwoCommInterleavingsNeverCorrupt) {
  constexpr std::size_t kBytes = 512;
  constexpr int kRanks = 4;
  sim::SimMachine machine(topo::flat(kRanks), kRanks);
  svc::Arbiter arbiter(svc::Budget{});
  svc::CommRegistry reg(machine, arbiter);
  svc::CommSpec a;
  a.name = "a";
  for (int r = 0; r < kRanks; ++r) a.ranks.push_back(r);
  svc::CommSpec b;
  b.name = "b";
  b.ranks = {1, 2, 3};
  svc::Communicator& ca = reg.create(a);
  svc::Communicator& cb = reg.create(b);

  std::vector<mach::Buffer> ba, bb;
  for (int r = 0; r < kRanks; ++r) {
    ba.emplace_back(machine, r, kBytes);
    bb.emplace_back(machine, r, kBytes);
  }
  std::vector<unsigned char> ea(kBytes), eb(kBytes);
  util::fill_pattern(ea.data(), kBytes, 5);
  util::fill_pattern(eb.data(), kBytes, 9);

  const check::Runner run = [&](const sim::VirtualScheduler::PickHook& hook,
                                sim::AccessSink* sink) {
    for (int r = 0; r < kRanks; ++r) {
      std::memset(ba[static_cast<std::size_t>(r)].get(), 0, kBytes);
      std::memset(bb[static_cast<std::size_t>(r)].get(), 0, kBytes);
    }
    std::memcpy(ba[0].get(), ea.data(), kBytes);
    std::memcpy(bb[2].get(), eb.data(), kBytes);  // comm b local root 1
    machine.set_pick_hook(hook);
    machine.set_access_sink(sink);
    check::RunOutcome out;
    try {
      machine.run([&](mach::Ctx& ctx) {
        const auto i = static_cast<std::size_t>(ctx.rank());
        {
          svc::TenantCtx tctx(ctx, ca.machine());
          ca.component().bcast(tctx, ba[i].get(), kBytes, 0);
        }
        if (cb.local_rank(ctx.rank()) >= 0) {
          svc::TenantCtx tctx(ctx, cb.machine());
          cb.component().bcast(tctx, bb[i].get(), kBytes, 1);
        }
      });
      for (int r = 0; r < kRanks && !out.failed; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (std::memcmp(ba[i].get(), ea.data(), kBytes) != 0) {
          out.failed = true;
          out.diag = "comm a payload mismatch on rank " + std::to_string(r);
        } else if (cb.local_rank(r) >= 0 &&
                   std::memcmp(bb[i].get(), eb.data(), kBytes) != 0) {
          out.failed = true;
          out.diag = "comm b payload mismatch on rank " + std::to_string(r);
        }
      }
    } catch (const std::exception& e) {
      out.failed = true;
      out.diag = e.what();
    }
    machine.set_pick_hook(nullptr);
    machine.set_access_sink(nullptr);
    return out;
  };

  check::ExploreOptions opts;
  opts.max_branch_depth = 4;
  opts.max_executions = 1500;
  opts.random_walks = 64;
  const check::ExploreStats st = check::explore(run, opts);
  EXPECT_GT(st.executions, 1);
  EXPECT_GT(st.branch_points, 0);
  EXPECT_EQ(st.failures, 0)
      << (st.witnesses.empty() ? "" : st.witnesses.front());
}

}  // namespace
}  // namespace xhc
