// Multi-tenant collective service (DESIGN.md § Multi-tenant service):
// tenant rank renumbering, the arbiter's admission/degradation chain,
// overlapping communicators policed by one shared ledger, backpressure and
// deadline shedding under the loadgen, payload integrity under injected
// faults, byte-determinism across runs and host backends, and systematic
// interleaving exploration of two overlapping communicators.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/explore.h"
#include "mach/machine.h"
#include "obs/timeseries.h"
#include "sim/sim_machine.h"
#include "svc/arbiter.h"
#include "svc/loadgen.h"
#include "svc/registry.h"
#include "svc/telemetry.h"
#include "svc/tenant.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc {
namespace {

// ---------------------------------------------------------------------------
// Tenant facade

TEST(SvcTenant, RanksAreRenumberedAndDeduplicated) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::TenantMachine tenant(machine, {5, 1, 3, 1}, "t/");
  ASSERT_EQ(tenant.n_ranks(), 3);
  EXPECT_EQ(tenant.ranks(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(tenant.parent_rank(0), 1);
  EXPECT_EQ(tenant.parent_rank(2), 5);
  EXPECT_EQ(tenant.local_rank(3), 1);
  EXPECT_EQ(tenant.local_rank(0), -1);
  // Tenants share the parent's ledger and never execute themselves.
  EXPECT_EQ(&tenant.verify_ledger(), &machine.verify_ledger());
  EXPECT_THROW(tenant.run([](mach::Ctx&) {}), util::Error);
}

TEST(SvcTenant, CtxRenumbersAndForbidsSubsetBarrier) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::TenantMachine tenant(machine, {2, 4}, "t/");
  machine.run([&](mach::Ctx& ctx) {
    if (tenant.local_rank(ctx.rank()) < 0) return;
    svc::TenantCtx tctx(ctx, tenant);
    EXPECT_EQ(tctx.size(), 2);
    EXPECT_EQ(tctx.rank(), ctx.rank() == 2 ? 0 : 1);
    EXPECT_THROW(tctx.barrier(), util::Error);
  });
}

// ---------------------------------------------------------------------------
// Admission: degradation chain, then a named error — never a hang

TEST(SvcArbiter, DegradesSegmentsBeforeShedding) {
  svc::Budget budget;
  // Room for ~half a default communicator: forces segment halving.
  coll::Tuning probe;
  budget.segment_bytes =
      8 * (probe.cico_segment_bytes / 4 + svc::Arbiter::kCtlBytesPerRank);
  svc::Arbiter arbiter(budget);
  std::string trail;
  const coll::Tuning got = arbiter.admit("comm0'a'/", 8, probe, &trail);
  EXPECT_LT(got.cico_segment_bytes, probe.cico_segment_bytes);
  EXPECT_NE(trail.find("halved"), std::string::npos) << trail;
  arbiter.release("comm0'a'/");
  EXPECT_EQ(arbiter.segment_bytes_free(), budget.segment_bytes);
}

TEST(SvcRegistry, ExhaustionRaisesNamedAdmissionError) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::Budget budget;
  budget.segment_bytes = 4096;  // below any communicator's floor
  svc::Arbiter arbiter(budget);
  svc::CommRegistry reg(machine, arbiter);
  svc::CommSpec spec;
  spec.name = "greedy";
  for (int r = 0; r < 8; ++r) spec.ranks.push_back(r);
  try {
    reg.create(spec);
    FAIL() << "expected AdmissionError";
  } catch (const svc::AdmissionError& e) {
    EXPECT_NE(e.comm().find("comm0'greedy'"), std::string::npos) << e.comm();
    EXPECT_EQ(e.op(), "create");
    EXPECT_NE(e.reason().find("segment budget exhausted"), std::string::npos)
        << e.reason();
  }
  // The failed admission must not leak a charge.
  EXPECT_EQ(arbiter.segment_bytes_free(), budget.segment_bytes);
  EXPECT_EQ(reg.n_comms(), 0);
}

// ---------------------------------------------------------------------------
// Overlapping communicators in one parent run

TEST(SvcRegistry, OverlappingCommsInterleaveInOneRun) {
  constexpr int kRanks = 8;
  constexpr std::size_t kBytes = 30000;
  sim::SimMachine machine(topo::mini8(), kRanks);
  svc::Arbiter arbiter(svc::Budget{});
  svc::CommRegistry reg(machine, arbiter);
  svc::CommSpec a;
  a.name = "a";
  for (int r = 0; r < kRanks; ++r) a.ranks.push_back(r);
  svc::CommSpec b;
  b.name = "b";
  for (int r = 2; r < kRanks - 1; ++r) b.ranks.push_back(r);
  svc::Communicator& ca = reg.create(a);
  svc::Communicator& cb = reg.create(b);
  EXPECT_EQ(reg.comm_ids_of(3), (std::vector<int>{0, 1}));
  EXPECT_EQ(reg.comm_ids_of(0), (std::vector<int>{0}));

  // Distinct payload streams per communicator; both collectives run inside
  // ONE parent run, so ranks 2..6 carry both protocols back to back and the
  // shared ledger polices the single-writer discipline across them.
  std::vector<mach::Buffer> ba, bb;
  for (int r = 0; r < kRanks; ++r) {
    ba.emplace_back(machine, r, kBytes);
    bb.emplace_back(machine, r, kBytes);
  }
  util::fill_pattern(ba[0].get(), kBytes, 11);
  util::fill_pattern(bb[3].get(), kBytes, 22);  // comm b local root 1
  machine.run([&](mach::Ctx& ctx) {
    const auto i = static_cast<std::size_t>(ctx.rank());
    {
      svc::TenantCtx tctx(ctx, ca.machine());
      ca.component().bcast(tctx, ba[i].get(), kBytes, 0);
    }
    if (cb.local_rank(ctx.rank()) >= 0) {
      svc::TenantCtx tctx(ctx, cb.machine());
      cb.component().bcast(tctx, bb[i].get(), kBytes, 1);
    }
  });

  std::vector<std::byte> ea(kBytes), eb(kBytes);
  util::fill_pattern(ea.data(), kBytes, 11);
  util::fill_pattern(eb.data(), kBytes, 22);
  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(std::memcmp(ba[i].get(), ea.data(), kBytes), 0) << "a rank " << r;
    if (cb.local_rank(r) >= 0) {
      EXPECT_EQ(std::memcmp(bb[i].get(), eb.data(), kBytes), 0)
          << "b rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Loadgen: plan/schedule shape, backpressure, integrity, determinism

TEST(SvcLoadgen, CommPlanOverlapsAndScheduleIsSorted) {
  svc::LoadgenConfig cfg;
  cfg.n_comms = 6;
  cfg.requests = 600;
  const auto plan = svc::make_comm_plan(8, cfg, coll::Tuning{});
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan[0].ranks.size(), 8u);  // tenant 0 spans the node
  for (const auto& spec : plan) {
    EXPECT_GE(spec.ranks.size(), 2u) << spec.name;
  }

  sim::SimMachine machine(topo::mini8(), 8);
  svc::Arbiter arbiter(svc::Budget{});
  svc::CommRegistry reg(machine, arbiter);
  for (const auto& spec : plan) reg.create(spec);
  const auto sched = svc::make_schedule(cfg, reg);
  ASSERT_EQ(sched.size(), 600u);
  std::vector<std::uint64_t> next_index(6, 0);
  for (std::size_t i = 0; i < sched.size(); ++i) {
    EXPECT_EQ(sched[i].id, i);
    if (i > 0) EXPECT_GE(sched[i].arrival, sched[i - 1].arrival);
    // Per-communicator stream indices appear in order (verdict epochs).
    EXPECT_EQ(sched[i].index,
              next_index[static_cast<std::size_t>(sched[i].comm)]++);
    if (sched[i].op == svc::OpClass::kBarrier) {
      EXPECT_EQ(sched[i].bytes, 0u);
    } else {
      EXPECT_GE(sched[i].bytes, cfg.min_bytes);
      EXPECT_LE(sched[i].bytes, cfg.max_bytes);
      EXPECT_LT(sched[i].root, reg.comm(sched[i].comm).size());
    }
  }
}

svc::LoadgenConfig small_soak_config() {
  svc::LoadgenConfig cfg;
  cfg.n_comms = 4;
  cfg.requests = 400;
  cfg.arrival_rate = 2e4;
  cfg.max_bytes = 256u << 10;
  cfg.large_fraction = 0.05;
  return cfg;
}

svc::Budget generous_budget(int n_ranks, int n_comms,
                            const coll::Tuning& base) {
  svc::Budget budget;
  budget.segment_bytes =
      static_cast<std::size_t>(n_ranks) * static_cast<std::size_t>(n_comms) *
      (base.cico_segment_bytes + svc::Arbiter::kCtlBytesPerRank);
  return budget;
}

TEST(SvcLoadgen, SoakCompletesCleanOnMini8) {
  sim::SimMachine machine(topo::mini8(), 8);
  const svc::LoadgenConfig cfg = small_soak_config();
  const svc::LoadgenResult r =
      svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  EXPECT_EQ(r.completed + r.shed, cfg.requests);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_GT(r.makespan, 0.0);
  std::uint64_t per_class = 0;
  for (const auto& pc : r.per_class) per_class += pc.completed + pc.shed;
  EXPECT_EQ(per_class, cfg.requests);
}

TEST(SvcLoadgen, BackpressureShedsBeyondBudgetWithoutCorruption) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::LoadgenConfig cfg = small_soak_config();
  cfg.arrival_rate = 1e5;  // beyond one token's service rate
  svc::Budget budget = generous_budget(8, cfg.n_comms, {});
  // One op token and an effectively unbounded queue: the token pool is the
  // bottleneck, so leaders must back off, and requests that outwait the
  // deadline while backing off are shed.
  budget.inflight_ops = 1;
  budget.queue_capacity = 100000;
  budget.deadline = 5e-4;
  const svc::LoadgenResult r = svc::run_soak(machine, cfg, budget);
  EXPECT_EQ(r.completed + r.shed, cfg.requests);
  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.completed, 0u);  // shedding is partial, not collapse
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_GT(r.backoff_stalls, 0u);
}

TEST(SvcLoadgen, IntegrityHoldsUnderInjectedFaults) {
  sim::SimMachine machine(topo::mini8(), 8);
  svc::LoadgenConfig cfg = small_soak_config();
  cfg.requests = 200;
  // Degradations and perturbations only — no dropped publications, so the
  // soak must terminate with every payload intact.
  cfg.faults =
      "attach,prob=0.05;regmiss,prob=0.2;straggler,prob=0.1,delay=2e-6;"
      "flagdelay,prob=0.05,delay=1e-6;straggler,comm=1,prob=0.5,delay=1e-5";
  const svc::LoadgenResult r =
      svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  EXPECT_EQ(r.completed + r.shed, cfg.requests);
  EXPECT_EQ(r.integrity_failures, 0u);
}

TEST(SvcLoadgen, SoakIsByteDeterministicAcrossRunsAndBackends) {
  const svc::LoadgenConfig cfg = small_soak_config();
  const auto soak = [&](sim::SimBackend backend) {
    sim::SimMachine machine(topo::mini8(), 8);
    machine.set_backend(backend);
    return svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  };
  const svc::LoadgenResult a = soak(sim::SimBackend::kFiber);
  const svc::LoadgenResult b = soak(sim::SimBackend::kFiber);
  const svc::LoadgenResult c = soak(sim::SimBackend::kThreads);
  for (const svc::LoadgenResult* r : {&b, &c}) {
    EXPECT_EQ(a.completed, r->completed);
    EXPECT_EQ(a.shed, r->shed);
    EXPECT_EQ(a.integrity_failures, r->integrity_failures);
    EXPECT_EQ(a.backoff_stalls, r->backoff_stalls);
    EXPECT_EQ(a.makespan, r->makespan);  // bit-equal virtual time
    for (int k = 0; k < svc::kNumOpClasses; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      EXPECT_EQ(a.per_class[kk].completed, r->per_class[kk].completed);
      EXPECT_EQ(a.per_class[kk].latency.percentile(0.99),
                r->per_class[kk].latency.percentile(0.99));
    }
  }
}

// ---------------------------------------------------------------------------
// Service telemetry plane (svc/telemetry.h)

/// Runs the small soak with a windowed telemetry plane attached and returns
/// every byte-deterministic export concatenated (plus the result for
/// sanity checks).
struct TelemetryRun {
  std::string exports;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
};

TelemetryRun telemetry_soak(sim::SimBackend backend,
                            const std::string& slo = "") {
  sim::SimMachine machine(topo::mini8(), 8);
  machine.set_backend(backend);
  svc::LoadgenConfig cfg = small_soak_config();
  svc::TelemetryConfig tcfg;
  tcfg.window_seconds = 0.005;
  tcfg.slo = slo;
  svc::Telemetry tele(machine, tcfg, cfg.requests);
  cfg.telemetry = &tele;
  const svc::LoadgenResult r =
      svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  TelemetryRun out;
  out.completed = r.completed;
  out.shed = r.shed;
  std::ostringstream os;
  tele.write_reqlog(os);
  tele.write_interference(os);
  obs::write_timeseries_json(os, *tele.series(), "soak");
  tele.write_chrome_trace(os, "soak");
  out.exports = std::move(os).str();
  return out;
}

TEST(SvcTelemetry, ExportsAreByteDeterministicAcrossRunsAndBackends) {
  const TelemetryRun a = telemetry_soak(sim::SimBackend::kFiber);
  const TelemetryRun b = telemetry_soak(sim::SimBackend::kFiber);
  const TelemetryRun c = telemetry_soak(sim::SimBackend::kThreads);
  EXPECT_EQ(a.completed + a.shed, small_soak_config().requests);
  EXPECT_EQ(a.exports, b.exports);
  EXPECT_EQ(a.exports, c.exports);
}

TEST(SvcTelemetry, AttachedPlaneLeavesServiceResultsUntouched) {
  // The composed regression for the watermark audit: telemetry sampling
  // must not perturb the service (observational only), and the windowed
  // counter-series totals must equal the observers' end-of-run totals
  // (lossless deltas, no double counting between the two consumers).
  svc::LoadgenConfig cfg = small_soak_config();
  sim::SimMachine bare_machine(topo::mini8(), 8);
  const svc::LoadgenResult bare =
      svc::run_soak(bare_machine, cfg, generous_budget(8, cfg.n_comms, {}));

  sim::SimMachine machine(topo::mini8(), 8);
  svc::TelemetryConfig tcfg;
  tcfg.window_seconds = 0.005;
  svc::Telemetry tele(machine, tcfg, cfg.requests);
  cfg.telemetry = &tele;
  const svc::LoadgenResult r =
      svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
  EXPECT_EQ(bare.completed, r.completed);
  EXPECT_EQ(bare.shed, r.shed);
  EXPECT_EQ(bare.makespan, r.makespan);  // bit-equal virtual time
  for (int k = 0; k < svc::kNumOpClasses; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    EXPECT_EQ(bare.per_class[kk].latency.percentile(0.99),
              r.per_class[kk].latency.percentile(0.99));
  }

  // Counter-series totals == summed observer totals for every counter: the
  // loop-exit tick drains the last deltas, so nothing is lost or doubled.
  for (int ci = 0; ci < obs::kNumCounters; ++ci) {
    const auto c = static_cast<obs::Counter>(ci);
    std::uint64_t observed = 0;
    for (int t = 0; t < tele.n_comms(); ++t) {
      observed += tele.observer(t)->metrics().total(c);
    }
    EXPECT_EQ(tele.series()->counter_total(c),
              static_cast<double>(observed))
        << obs::to_string(c);
  }

  // The request log is complete and consistent with the result counts.
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  for (const svc::ReqRecord& rec : tele.records()) {
    ASSERT_NE(rec.outcome, svc::ReqOutcome::kNone);
    if (rec.outcome == svc::ReqOutcome::kCompleted) {
      ++completed;
      EXPECT_GE(rec.end_time, rec.verdict_time);
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(completed, r.completed);
  EXPECT_EQ(shed, r.shed);
}

TEST(SvcTelemetry, WaitMatrixAttributesAdmissionWaitsToTokenHolders) {
  // One op token across overlapping tenants: leaders must back off on each
  // other, so admission waits exist and the matrix attributes them.
  sim::SimMachine machine(topo::mini8(), 8);
  svc::LoadgenConfig cfg = small_soak_config();
  cfg.arrival_rate = 1e5;
  svc::Budget budget = generous_budget(8, cfg.n_comms, {});
  budget.inflight_ops = 1;
  budget.queue_capacity = 100000;
  budget.deadline = 5e-4;
  svc::TelemetryConfig tcfg;
  tcfg.window_seconds = 0.005;
  svc::Telemetry tele(machine, tcfg, cfg.requests);
  cfg.telemetry = &tele;
  const svc::LoadgenResult r = svc::run_soak(machine, cfg, budget);
  EXPECT_GT(r.backoff_stalls, 0u);
  const auto& m = tele.wait_matrix();
  ASSERT_EQ(static_cast<int>(m.size()), tele.n_comms());
  double total = 0.0;
  double off_diagonal = 0.0;
  for (std::size_t a = 0; a < m.size(); ++a) {
    for (std::size_t b = 0; b < m.size(); ++b) {
      EXPECT_GE(m[a][b], 0.0);
      total += m[a][b];
      if (a != b) off_diagonal += m[a][b];
    }
  }
  EXPECT_GT(total, 0.0);
  // With a single shared token, some of every tenant's wait is spent on
  // requests other tenants hold.
  EXPECT_GT(off_diagonal, 0.0);
  // Occupancy: admitted payload bytes must show up somewhere.
  double occupied = 0.0;
  for (const auto& win : tele.occupancy()) {
    for (const double v : win) occupied += v;
  }
  EXPECT_GT(occupied, 0.0);
}

TEST(SvcTelemetry, SloMonitorCountsViolationsPerWindow) {
  // An impossible target must trip in every checked window; a generous one
  // never does. Both runs are the same soak, so checked counts match.
  const auto run_slo = [](const std::string& spec) {
    sim::SimMachine machine(topo::mini8(), 8);
    svc::LoadgenConfig cfg = small_soak_config();
    svc::TelemetryConfig tcfg;
    tcfg.window_seconds = 0.005;
    tcfg.slo = spec;
    auto tele = std::make_unique<svc::Telemetry>(machine, tcfg, cfg.requests);
    cfg.telemetry = tele.get();
    (void)svc::run_soak(machine, cfg, generous_budget(8, cfg.n_comms, {}));
    return tele;
  };
  const auto impossible = run_slo("*:max=1ns");
  EXPECT_GT(impossible->slo_windows_checked(), 0u);
  EXPECT_EQ(impossible->slo_violations(), impossible->slo_windows_checked());
  const auto generous = run_slo("*:max=1s;bcast:p50=1s");
  EXPECT_GT(generous->slo_windows_checked(), 0u);
  EXPECT_EQ(generous->slo_violations(), 0u);
}

TEST(SvcTelemetry, SloSpecParsing) {
  const auto rules = svc::parse_slo("bcast:p99=250us; *:mean=1.5ms");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].op, static_cast<int>(svc::OpClass::kBcast));
  EXPECT_EQ(rules[0].metric, svc::SloRule::Metric::kP99);
  EXPECT_DOUBLE_EQ(rules[0].target, 250e-6);
  EXPECT_EQ(rules[1].op, -1);
  EXPECT_EQ(rules[1].metric, svc::SloRule::Metric::kMean);
  EXPECT_DOUBLE_EQ(rules[1].target, 1.5e-3);
  EXPECT_THROW(svc::parse_slo(""), util::Error);
  EXPECT_THROW(svc::parse_slo("p99=1ms"), util::Error);          // no class
  EXPECT_THROW(svc::parse_slo("bcast:p42=1ms"), util::Error);    // bad metric
  EXPECT_THROW(svc::parse_slo("bcast:p99=1parsec"), util::Error);  // bad unit
  EXPECT_THROW(svc::parse_slo("quux:p99=1ms"), util::Error);     // bad class
  EXPECT_THROW(svc::parse_slo("bcast:p99=-1ms"), util::Error);   // negative
  // The monitor needs the windowed plane.
  sim::SimMachine machine(topo::mini8(), 8);
  svc::TelemetryConfig tcfg;
  tcfg.slo = "*:p99=1ms";
  EXPECT_THROW(svc::Telemetry(machine, tcfg, 10), util::Error);
}

// ---------------------------------------------------------------------------
// Systematic interleaving exploration: two overlapping communicators

TEST(SvcCheck, TwoCommInterleavingsNeverCorrupt) {
  constexpr std::size_t kBytes = 512;
  constexpr int kRanks = 4;
  sim::SimMachine machine(topo::flat(kRanks), kRanks);
  svc::Arbiter arbiter(svc::Budget{});
  svc::CommRegistry reg(machine, arbiter);
  svc::CommSpec a;
  a.name = "a";
  for (int r = 0; r < kRanks; ++r) a.ranks.push_back(r);
  svc::CommSpec b;
  b.name = "b";
  b.ranks = {1, 2, 3};
  svc::Communicator& ca = reg.create(a);
  svc::Communicator& cb = reg.create(b);

  std::vector<mach::Buffer> ba, bb;
  for (int r = 0; r < kRanks; ++r) {
    ba.emplace_back(machine, r, kBytes);
    bb.emplace_back(machine, r, kBytes);
  }
  std::vector<unsigned char> ea(kBytes), eb(kBytes);
  util::fill_pattern(ea.data(), kBytes, 5);
  util::fill_pattern(eb.data(), kBytes, 9);

  const check::Runner run = [&](const sim::VirtualScheduler::PickHook& hook,
                                sim::AccessSink* sink) {
    for (int r = 0; r < kRanks; ++r) {
      std::memset(ba[static_cast<std::size_t>(r)].get(), 0, kBytes);
      std::memset(bb[static_cast<std::size_t>(r)].get(), 0, kBytes);
    }
    std::memcpy(ba[0].get(), ea.data(), kBytes);
    std::memcpy(bb[2].get(), eb.data(), kBytes);  // comm b local root 1
    machine.set_pick_hook(hook);
    machine.set_access_sink(sink);
    check::RunOutcome out;
    try {
      machine.run([&](mach::Ctx& ctx) {
        const auto i = static_cast<std::size_t>(ctx.rank());
        {
          svc::TenantCtx tctx(ctx, ca.machine());
          ca.component().bcast(tctx, ba[i].get(), kBytes, 0);
        }
        if (cb.local_rank(ctx.rank()) >= 0) {
          svc::TenantCtx tctx(ctx, cb.machine());
          cb.component().bcast(tctx, bb[i].get(), kBytes, 1);
        }
      });
      for (int r = 0; r < kRanks && !out.failed; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (std::memcmp(ba[i].get(), ea.data(), kBytes) != 0) {
          out.failed = true;
          out.diag = "comm a payload mismatch on rank " + std::to_string(r);
        } else if (cb.local_rank(r) >= 0 &&
                   std::memcmp(bb[i].get(), eb.data(), kBytes) != 0) {
          out.failed = true;
          out.diag = "comm b payload mismatch on rank " + std::to_string(r);
        }
      }
    } catch (const std::exception& e) {
      out.failed = true;
      out.diag = e.what();
    }
    machine.set_pick_hook(nullptr);
    machine.set_access_sink(nullptr);
    return out;
  };

  check::ExploreOptions opts;
  opts.max_branch_depth = 4;
  opts.max_executions = 1500;
  opts.random_walks = 64;
  const check::ExploreStats st = check::explore(run, opts);
  EXPECT_GT(st.executions, 1);
  EXPECT_GT(st.branch_points, 0);
  EXPECT_EQ(st.failures, 0)
      << (st.witnesses.empty() ? "" : st.witnesses.front());
}

}  // namespace
}  // namespace xhc
