// Bitwise-identity tests of the vectorized reduction kernels against the
// scalar reference, across every op x dtype pair, odd counts, and payloads
// including NaNs — reassociation-free unrolling is the contract that keeps
// results independent of which kernel a build picks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "mach/reduce_kernels.h"
#include "util/prng.h"

namespace xhc::mach {
namespace {

constexpr DType kDTypes[] = {DType::kU8, DType::kI32, DType::kI64,
                             DType::kF32, DType::kF64};
constexpr ROp kOps[] = {ROp::kSum, ROp::kProd, ROp::kMin, ROp::kMax};

/// Patterned operands: raw PRNG bits for the integer types (every bit
/// combination is a valid value), bounded magnitudes for the float types so
/// sums/products stay finite and comparisons are exercised on both signs.
void fill(void* p, std::size_t count, DType t, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = rng.next();
    switch (t) {
      case DType::kU8:
        static_cast<std::uint8_t*>(p)[i] = static_cast<std::uint8_t>(v);
        break;
      case DType::kI32:
        static_cast<std::int32_t*>(p)[i] =
            static_cast<std::int32_t>(v & 0xFFFF) - 0x8000;
        break;
      case DType::kI64:
        static_cast<std::int64_t*>(p)[i] =
            static_cast<std::int64_t>(v & 0xFFFFFFFF) - 0x80000000ll;
        break;
      case DType::kF32:
        static_cast<float*>(p)[i] =
            (static_cast<float>(v & 0x3FF) - 512.0f) / 256.0f;
        break;
      case DType::kF64:
        static_cast<double*>(p)[i] =
            (static_cast<double>(v & 0x3FF) - 512.0) / 256.0;
        break;
    }
  }
}

class ReduceKernels
    : public ::testing::TestWithParam<std::tuple<DType, ROp>> {};

TEST_P(ReduceKernels, FastMatchesScalarBitwise) {
  const auto [dtype, op] = GetParam();
  const std::size_t elem = dtype_size(dtype);
  // Odd counts straddle every unroll width; 4097 crosses a page.
  for (const std::size_t count : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000},
                                  std::size_t{4097}}) {
    std::vector<std::byte> src(count * elem);
    std::vector<std::byte> dst_fast(count * elem);
    std::vector<std::byte> dst_ref(count * elem);
    fill(src.data(), count, dtype, 17 + count);
    fill(dst_fast.data(), count, dtype, 99 + count);
    std::memcpy(dst_ref.data(), dst_fast.data(), dst_fast.size());

    reduce_apply(dst_fast.data(), src.data(), count, dtype, op);
    reduce_apply_scalar(dst_ref.data(), src.data(), count, dtype, op);

    ASSERT_EQ(std::memcmp(dst_fast.data(), dst_ref.data(), dst_fast.size()),
              0)
        << to_string(dtype) << "/" << to_string(op) << " count " << count;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ReduceKernels,
    ::testing::Combine(::testing::ValuesIn(kDTypes),
                       ::testing::ValuesIn(kOps)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(ReduceKernelsNaN, FloatMinMaxAgreeOnNaNs) {
  // min/max with NaNs: whatever semantics the scalar reference picks
  // (std::min/std::max's first-argument preference), the fast kernel must
  // reproduce them bit for bit.
  for (const DType dtype : {DType::kF32, DType::kF64}) {
    for (const ROp op : {ROp::kMin, ROp::kMax, ROp::kSum, ROp::kProd}) {
      const std::size_t elem = dtype_size(dtype);
      constexpr std::size_t kCount = 257;
      std::vector<std::byte> src(kCount * elem);
      std::vector<std::byte> dst_fast(kCount * elem);
      fill(src.data(), kCount, dtype, 5);
      fill(dst_fast.data(), kCount, dtype, 6);
      // Sprinkle NaNs on both sides, including one position where both
      // operands are NaN.
      for (std::size_t i = 0; i < kCount; i += 13) {
        if (dtype == DType::kF32) {
          reinterpret_cast<float*>(src.data())[i] =
              std::numeric_limits<float>::quiet_NaN();
          reinterpret_cast<float*>(dst_fast.data())[(i + 26) % kCount] =
              std::numeric_limits<float>::quiet_NaN();
        } else {
          reinterpret_cast<double*>(src.data())[i] =
              std::numeric_limits<double>::quiet_NaN();
          reinterpret_cast<double*>(dst_fast.data())[(i + 26) % kCount] =
              std::numeric_limits<double>::quiet_NaN();
        }
      }
      std::vector<std::byte> dst_ref(dst_fast);

      reduce_apply(dst_fast.data(), src.data(), kCount, dtype, op);
      reduce_apply_scalar(dst_ref.data(), src.data(), kCount, dtype, op);

      ASSERT_EQ(
          std::memcmp(dst_fast.data(), dst_ref.data(), dst_fast.size()), 0)
          << to_string(dtype) << "/" << to_string(op);
    }
  }
}

}  // namespace
}  // namespace xhc::mach
