// White-box tests of the XHC core: communicator tree shapes and per-root
// views, control-block layout (cache-line placement), flag layout variants,
// the CICO threshold, per-level chunk configuration, and traffic patterns.
#include <gtest/gtest.h>

#include <cstring>

#include "core/comm_tree.h"
#include "core/xhc_component.h"
#include "mach/real_machine.h"
#include "p2p/counters.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/cacheline.h"
#include "util/prng.h"

namespace xhc::core {
namespace {

TEST(CommTree, ShapesMatchHierarchy) {
  mach::RealMachine m(topo::epyc2p(), 64);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  EXPECT_EQ(tree.n_levels(), 3);
  // 8 NUMA groups + 2 socket groups + 1 top group.
  EXPECT_EQ(tree.n_groups(), 11);
  EXPECT_EQ(tree.shape(0).level, 0);
  EXPECT_EQ(tree.shape(0).domain_ranks.size(), 8u);
  EXPECT_EQ(tree.shape(8).level, 1);
  EXPECT_EQ(tree.shape(8).domain_ranks.size(), 32u);  // any socket-0 rank
  EXPECT_EQ(tree.shape(10).level, 2);
  EXPECT_EQ(tree.shape(10).domain_ranks.size(), 64u);
}

TEST(CommTree, SlotLookup) {
  mach::RealMachine m(topo::mini8(), 8);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  const GroupShape& shape = tree.shape(0);
  EXPECT_EQ(shape.slot_of(shape.domain_ranks.front()), 0);
  EXPECT_EQ(shape.slot_of(9999), -1);
}

TEST(CommTree, ViewFollowsRoot) {
  mach::RealMachine m(topo::epyc2p(), 64);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  const CommView& v0 = tree.view(0);
  const CommView& v10 = tree.view(10);
  // Rank 10 (NUMA 1) becomes its NUMA leader, a socket member, and the top
  // leader under root 10.
  EXPECT_EQ(v0.memberships(10).size(), 1u);
  EXPECT_EQ(v10.memberships(10).size(), 3u);
  EXPECT_TRUE(v10.memberships(10).back().is_leader);
  // Rank 8 loses its leadership when 10 takes over NUMA 1.
  EXPECT_EQ(v10.memberships(8).size(), 1u);
  EXPECT_EQ(v10.memberships(8)[0].leader, 10);
  // Views are cached.
  EXPECT_EQ(&tree.view(10), &v10);
}

TEST(CommTree, MembershipSlotsConsistent) {
  mach::RealMachine m(topo::epyc1p(), 32);
  CommTree tree(m, topo::parse_sensitivity("numa+socket"));
  const CommView& v = tree.view(0);
  for (int r = 0; r < 32; ++r) {
    for (const auto& mb : v.memberships(r)) {
      const GroupShape& shape = tree.shape(mb.ctl_id);
      EXPECT_EQ(shape.slot_of(r), mb.my_slot);
      EXPECT_EQ(shape.slot_of(mb.leader), mb.leader_slot);
      EXPECT_TRUE(std::binary_search(mb.members.begin(), mb.members.end(), r));
    }
  }
}

TEST(CtlArena, PerWriterFlagsOnDistinctLines) {
  mach::RealMachine m(topo::mini8(), 8);
  CtlArena arena;
  GroupCtl ctl = arena.add_group(m, 0, 8);
  // Different members' single-writer flags must never share a line.
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      EXPECT_NE(util::line_of(&ctl.ack[i]->v), util::line_of(&ctl.ack[j]->v));
      EXPECT_NE(util::line_of(&ctl.reduce_done[i]->v),
                util::line_of(&ctl.reduce_done[j]->v));
      EXPECT_NE(util::line_of(&ctl.announce_sep[i]->v),
                util::line_of(&ctl.announce_sep[j]->v));
    }
  }
  // Leader-written flags on lines distinct from member-written ones.
  EXPECT_NE(util::line_of(&ctl.seq[0]->v), util::line_of(&ctl.ack[0]->v));
  EXPECT_NE(util::line_of(&ctl.announce[0]->v),
            util::line_of(&ctl.seq[0]->v));
  // The deliberately packed variant *does* share lines (Fig. 10 "shared").
  EXPECT_EQ(util::line_of(&ctl.announce_shared[0].v),
            util::line_of(&ctl.announce_shared[7].v));
}

TEST(XhcTuning, FlagLayoutsAllCorrect) {
  for (const coll::FlagLayout layout :
       {coll::FlagLayout::kSingle, coll::FlagLayout::kMultiSharedLine,
        coll::FlagLayout::kMultiSeparateLines}) {
    mach::RealMachine m(topo::mini16(), 16);
    coll::Tuning tuning;
    tuning.flag_layout = layout;
    XhcComponent comp(m, tuning, "xhc-layout");
    constexpr std::size_t kBytes = 50000;
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < 16; ++r) bufs.emplace_back(m, r, kBytes);
    util::fill_pattern(bufs[0].get(), kBytes, 5);
    m.run([&](mach::Ctx& ctx) {
      comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                 kBytes, 0);
    });
    std::vector<std::byte> expect(kBytes);
    util::fill_pattern(expect.data(), kBytes, 5);
    for (int r = 0; r < 16; ++r) {
      ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                            expect.data(), kBytes),
                0)
          << "layout " << static_cast<int>(layout) << " rank " << r;
    }
  }
}

TEST(XhcTuning, AtomicSyncVariantCorrect) {
  mach::RealMachine m(topo::mini16(), 16);
  coll::Tuning tuning;
  tuning.sync = coll::SyncMethod::kAtomicFetchAdd;
  XhcComponent comp(m, tuning, "xhc-atomic");
  constexpr std::size_t kBytes = 9000;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 16; ++r) bufs.emplace_back(m, r, kBytes);
  m.run([&](mach::Ctx& ctx) {
    for (int round = 0; round < 3; ++round) {
      if (ctx.rank() == 0) {
        ctx.write_payload(bufs[0].get(), kBytes,
                          static_cast<std::uint64_t>(round));
      }
      ctx.barrier();
      comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                 kBytes, 0);
    }
  });
  std::vector<std::byte> expect(kBytes);
  util::fill_pattern(expect.data(), kBytes, 2);
  for (int r = 0; r < 16; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), kBytes),
              0);
  }
}

TEST(XhcTuning, PerLevelChunkSizes) {
  // Distinct chunk sizes per level (paper §III-B / Fig. 5) must not affect
  // correctness.
  mach::RealMachine m(topo::mini16(), 16);
  coll::Tuning tuning;
  tuning.chunk_bytes = {512, 2048, 8192};
  XhcComponent comp(m, tuning, "xhc-chunks");
  EXPECT_EQ(tuning.chunk_for_level(0), 512u);
  EXPECT_EQ(tuning.chunk_for_level(2), 8192u);
  EXPECT_EQ(tuning.chunk_for_level(9), 8192u);  // last repeats
  constexpr std::size_t kBytes = 60000;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 16; ++r) bufs.emplace_back(m, r, kBytes);
  util::fill_pattern(bufs[0].get(), kBytes, 77);
  m.run([&](mach::Ctx& ctx) {
    comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
               0);
  });
  std::vector<std::byte> expect(kBytes);
  util::fill_pattern(expect.data(), kBytes, 77);
  for (int r = 0; r < 16; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), kBytes),
              0);
  }
}

TEST(XhcTuning, CicoThresholdIsRespected) {
  // Below the threshold no XPMEM attach happens (registration cache stays
  // empty); above it, attaches occur (paper §III-D).
  for (const std::size_t bytes : {std::size_t{512}, std::size_t{8192}}) {
    mach::RealMachine m(topo::mini8(), 8);
    coll::Tuning tuning;
    tuning.cico_threshold = 1024;
    XhcComponent comp(m, tuning, "xhc");
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < 8; ++r) bufs.emplace_back(m, r, bytes);
    m.run([&](mach::Ctx& ctx) {
      comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), bytes,
                 0);
    });
    const auto stats = comp.reg_cache_stats();
    ASSERT_TRUE(stats.has_value());
    if (bytes <= 1024) {
      EXPECT_EQ(stats->hits + stats->misses, 0u) << "CICO path attached";
    } else {
      EXPECT_GT(stats->hits + stats->misses, 0u) << "single-copy path idle";
    }
  }
}

TEST(XhcTraffic, TreePatternMatchesPaperTableII) {
  sim::SimMachine m(topo::epyc2p(), 64);
  coll::Tuning tuning;
  XhcComponent comp(m, tuning, "xhc");
  p2p::TrafficCounter counter(&m.topology(), &m.map());
  comp.set_traffic_counter(&counter);
  constexpr std::size_t kBytes = 1 << 16;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 64; ++r) bufs.emplace_back(m, r, kBytes);
  m.run([&](mach::Ctx& ctx) {
    comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes,
               0);
  });
  // Paper Table II, XHC row: 1 inter-socket, 6 inter-NUMA, 56 intra-NUMA.
  EXPECT_EQ(counter.inter_socket(), 1u);
  EXPECT_EQ(counter.inter_numa(), 6u);
  EXPECT_EQ(counter.intra_numa(), 56u);
}

TEST(XhcTraffic, PatternInvariantUnderRootAndMapping) {
  for (const topo::MapPolicy policy :
       {topo::MapPolicy::kCore, topo::MapPolicy::kNuma}) {
    for (const int root : {0, 10, 37}) {
      sim::SimMachine m(topo::epyc2p(), 64, policy);
      XhcComponent comp(m, {}, "xhc");
      p2p::TrafficCounter counter(&m.topology(), &m.map());
      comp.set_traffic_counter(&counter);
      std::vector<mach::Buffer> bufs;
      for (int r = 0; r < 64; ++r) bufs.emplace_back(m, r, 4096);
      m.run([&](mach::Ctx& ctx) {
        comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                   4096, root);
      });
      EXPECT_EQ(counter.inter_socket(), 1u)
          << to_string(policy) << " root " << root;
      EXPECT_EQ(counter.inter_numa(), 6u);
      EXPECT_EQ(counter.intra_numa(), 56u);
    }
  }
}

TEST(XhcComponentApi, RegCacheAccumulatesHitsAcrossCalls) {
  mach::RealMachine m(topo::mini8(), 8);
  XhcComponent comp(m, {}, "xhc");
  constexpr std::size_t kBytes = 32768;
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < 8; ++r) bufs.emplace_back(m, r, kBytes);
  m.run([&](mach::Ctx& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.barrier();
      comp.bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                 kBytes, 0);
    }
  });
  const auto stats = comp.reg_cache_stats();
  ASSERT_TRUE(stats.has_value());
  // Same buffers every call: the steady state is all hits (paper §V-D3).
  EXPECT_GT(stats->hit_ratio(), 0.85);
}

}  // namespace
}  // namespace xhc::core
