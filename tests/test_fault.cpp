// Chaos suite for the deterministic fault-injection layer (DESIGN.md
// § Fault injection & degradation): spec parsing, per-rank decision
// streams, the XPMEM→CMA→CICO degradation chain, shm retry/exhaustion,
// straggler determinism on virtual time, and the two "never a hang"
// guarantees — the sim deadlock report and the RealMachine watchdog both
// naming the rank and flag a dropped publication stranded.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "core/xhc_component.h"
#include "fault/fault.h"
#include "mach/real_machine.h"
#include "obs/observer.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "svc/arbiter.h"
#include "svc/registry.h"
#include "svc/tenant.h"
#include "topo/presets.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing

TEST(FaultSpec, RoundTripsThroughCanonicalForm) {
  const std::string spec =
      "attach,rank=1,owner=0,count=1,chain=2;"
      "straggler,level=0,prob=0.25,delay=1e-05;"
      "flagdrop,rank=2,after=10,comm=3;regmiss,owner=3;expose;shm,count=4;"
      "flagdelay,delay=2e-06";
  const fault::Plan plan = fault::Plan::parse(spec);
  ASSERT_EQ(plan.clauses.size(), 7u);
  const std::string canon = plan.to_string();
  EXPECT_EQ(fault::Plan::parse(canon).to_string(), canon);
}

TEST(FaultSpec, CommFilterParsesAndRoundTrips) {
  const fault::Plan plan = fault::Plan::parse("flagdrop,comm=2,rank=1");
  ASSERT_EQ(plan.clauses.size(), 1u);
  EXPECT_EQ(plan.clauses[0].comm, 2);
  EXPECT_EQ(plan.clauses[0].rank, 1);
  const std::string canon = plan.to_string();
  EXPECT_NE(canon.find("comm=2"), std::string::npos) << canon;
  EXPECT_EQ(fault::Plan::parse(canon).to_string(), canon);
  // Default: no filter.
  EXPECT_EQ(fault::Plan::parse("flagdrop").clauses.at(0).comm, -1);
}

TEST(FaultSpec, CommFilterTargetsOneInjector) {
  fault::Plan plan = fault::Plan::parse("flagdrop,comm=1");
  fault::Injector hit(plan, 1, 2, /*comm_id=*/1);
  fault::Injector miss(plan, 1, 2, /*comm_id=*/0);
  fault::Injector unset(plan, 1, 2);  // single-communicator default (-1)
  EXPECT_TRUE(hit.on_publish(0).drop);
  EXPECT_FALSE(miss.on_publish(0).drop);
  EXPECT_FALSE(unset.on_publish(0).drop);
}

TEST(FaultSpec, ParsesFieldsIntoClauses) {
  const fault::Plan plan =
      fault::Plan::parse("attach,rank=1,owner=2,after=3,count=4,chain=2");
  ASSERT_EQ(plan.clauses.size(), 1u);
  const fault::Clause& c = plan.clauses[0];
  EXPECT_EQ(c.kind, fault::Kind::kAttach);
  EXPECT_EQ(c.rank, 1);
  EXPECT_EQ(c.owner, 2);
  EXPECT_EQ(c.after, 3u);
  EXPECT_EQ(c.count, 4u);
  EXPECT_EQ(c.chain, 2);
}

TEST(FaultSpec, EmptySpecsParseEmpty) {
  EXPECT_TRUE(fault::Plan::parse("").empty());
  EXPECT_TRUE(fault::Plan::parse("  ;  ; ").empty());
  EXPECT_EQ(fault::make_injector("", 1, 8), nullptr);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::Plan::parse("bogus"), util::Error);
  EXPECT_THROW(fault::Plan::parse("attach,zzz=1"), util::Error);
  EXPECT_THROW(fault::Plan::parse("attach,rank=notanumber"), util::Error);
  EXPECT_THROW(fault::Plan::parse("straggler,prob=1.5"), util::Error);
  EXPECT_THROW(fault::Plan::parse("straggler,prob=-0.1"), util::Error);
  EXPECT_THROW(fault::Plan::parse("straggler,delay=-1"), util::Error);
  EXPECT_THROW(fault::Plan::parse("attach,chain=3"), util::Error);
  EXPECT_THROW(fault::Plan::parse("attach,rank="), util::Error);
  EXPECT_THROW(fault::Plan::parse("attach,=1"), util::Error);
  EXPECT_THROW(fault::Plan::parse("flagdrop,comm=-1"), util::Error);
  EXPECT_THROW(fault::Plan::parse("flagdrop,comm=notanumber"), util::Error);
}

// ---------------------------------------------------------------------------
// Decision streams

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAndRank) {
  const std::string spec = "straggler,prob=0.5,delay=1e-6";
  fault::Plan plan = fault::Plan::parse(spec);
  fault::Injector a(plan, 42, 4);
  fault::Injector b(plan, 42, 4);

  // Query `a` rank-major and `b` interleaved: per-rank streams must agree
  // regardless of the order other ranks' queries happen in.
  std::vector<std::vector<double>> seq_a(4), seq_b(4);
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 64; ++i) seq_a[r].push_back(a.straggler_delay(r, 0));
  }
  for (int i = 0; i < 64; ++i) {
    for (int r = 3; r >= 0; --r) seq_b[r].push_back(b.straggler_delay(r, 0));
  }
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seq_a[r], seq_b[r]) << "rank " << r;

  // A different seed must produce a different schedule somewhere.
  fault::Injector c(plan, 43, 4);
  bool differs = false;
  for (int i = 0; i < 64 && !differs; ++i) {
    differs = (c.straggler_delay(0, 0) != seq_a[0][static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, HonorsAfterCountAndFilters) {
  fault::Plan plan = fault::Plan::parse("attach,rank=1,after=2,count=3");
  fault::Injector inj(plan, 1, 4);
  EXPECT_EQ(inj.attach_failure_depth(0, 2), 0);  // wrong rank: never
  int fired = 0;
  std::vector<int> when;
  for (int i = 0; i < 10; ++i) {
    if (inj.attach_failure_depth(1, 2) != 0) {
      ++fired;
      when.push_back(i);
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(when, (std::vector<int>{2, 3, 4}));  // skips 2, fires 3x
}

// ---------------------------------------------------------------------------
// Degradation chain, verified bit-for-bit through real collectives

struct ChaosRun {
  std::vector<std::string> bad;  ///< ranks with wrong payload, as messages
  obs::Observer observer;
  explicit ChaosRun(int n) : observer(n) {}
};

// Runs `iters` bcasts on sim/mini8 under `spec` and bit-verifies every
// rank's payload each time. Returns the observer for counter assertions.
std::unique_ptr<ChaosRun> chaos_bcast(const std::string& spec,
                                      std::uint64_t seed,
                                      std::size_t bytes = 100000,
                                      int iters = 3) {
  constexpr int kRanks = 8;
  sim::SimMachine machine(topo::mini8(), kRanks);
  coll::Tuning tuning;
  tuning.trace = true;
  tuning.faults = spec;
  tuning.fault_seed = seed;
  auto comp = coll::make_component("xhc", machine, tuning);
  auto out = std::make_unique<ChaosRun>(kRanks);
  comp->set_observer(&out->observer);

  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.emplace_back(machine, r, bytes);
  for (int it = 0; it < iters; ++it) {
    const int root = it % kRanks;
    util::fill_pattern(bufs[static_cast<std::size_t>(root)].get(), bytes,
                       0xFA + static_cast<std::uint64_t>(it));
    machine.run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  bytes, root);
    });
    std::vector<std::byte> expect(bytes);
    util::fill_pattern(expect.data(), bytes,
                       0xFA + static_cast<std::uint64_t>(it));
    for (int r = 0; r < kRanks; ++r) {
      if (std::memcmp(bufs[static_cast<std::size_t>(r)].get(), expect.data(),
                      bytes) != 0) {
        out->bad.push_back("iter " + std::to_string(it) + " rank " +
                           std::to_string(r));
      }
    }
  }
  return out;
}

TEST(FaultChaos, AttachFailureDegradesAndStaysCorrect) {
  auto run = chaos_bcast("attach,owner=0,count=1", 7);
  EXPECT_TRUE(run->bad.empty()) << run->bad.front();
  const obs::Metrics& m = run->observer.metrics();
  EXPECT_GE(m.total(obs::Counter::kFaultAttachFails), 1u);
  EXPECT_GE(m.total(obs::Counter::kFaultFallbacks), 1u);
}

TEST(FaultChaos, ChainTwoFallsStraightToCicoAndStaysCorrect) {
  auto run = chaos_bcast("attach,chain=2,count=2", 11);
  EXPECT_TRUE(run->bad.empty()) << run->bad.front();
  EXPECT_GE(run->observer.metrics().total(obs::Counter::kFaultFallbacks), 1u);
}

TEST(FaultChaos, ForcedRegMissesAreCountedAndHarmless) {
  auto run = chaos_bcast("regmiss,prob=0.5", 13);
  EXPECT_TRUE(run->bad.empty()) << run->bad.front();
  EXPECT_GE(run->observer.metrics().total(obs::Counter::kFaultRegMissForced),
            1u);
}

TEST(FaultChaos, ExposeRetriesAreBoundedAndCounted) {
  auto run = chaos_bcast("expose,count=2", 17);
  EXPECT_TRUE(run->bad.empty()) << run->bad.front();
  EXPECT_GE(run->observer.metrics().total(obs::Counter::kFaultExposeFails),
            1u);
}

TEST(FaultChaos, StragglersAdvanceVirtualTimeDeterministically) {
  const std::string spec = "straggler,prob=0.3,delay=5e-6";
  double epochs[2];
  for (int pass = 0; pass < 2; ++pass) {
    constexpr int kRanks = 8;
    sim::SimMachine machine(topo::mini8(), kRanks);
    coll::Tuning tuning;
    tuning.faults = spec;
    tuning.fault_seed = 42;
    auto comp = coll::make_component("xhc", machine, tuning);
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < kRanks; ++r) bufs.emplace_back(machine, r, 65536);
    machine.run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  65536, 0);
    });
    epochs[pass] = machine.epoch();
  }
  EXPECT_EQ(epochs[0], epochs[1]);  // bit-identical virtual time

  // And the stalls actually cost virtual time vs a fault-free run.
  constexpr int kRanks = 8;
  sim::SimMachine clean(topo::mini8(), kRanks);
  auto comp = coll::make_component("xhc", clean);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.emplace_back(clean, r, 65536);
  clean.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), 65536,
                0);
  });
  EXPECT_LT(clean.epoch(), epochs[0]);
}

TEST(FaultChaos, FlagDelaysPerturbButNeverCorrupt) {
  auto run = chaos_bcast("flagdelay,prob=0.25,delay=2e-6", 19);
  EXPECT_TRUE(run->bad.empty()) << run->bad.front();
  EXPECT_GE(run->observer.metrics().total(obs::Counter::kFaultFlagDelays),
            1u);
}

// ---------------------------------------------------------------------------
// Shm exhaustion: bounded retry, degraded segments, named failure

TEST(FaultShm, TransientFailuresAreRetriedAway) {
  sim::SimMachine machine(topo::mini8(), 8);
  coll::Tuning tuning;
  tuning.trace = true;
  tuning.faults = "shm,count=2";  // two failed attempts, then clean
  auto comp = coll::make_component("xhc", machine, tuning);
  obs::Observer obs(8);
  comp->set_observer(&obs);
  EXPECT_GE(obs.metrics().total(obs::Counter::kFaultShmRetries), 2u);
}

TEST(FaultShm, PersistentFailureDegradesSegmentsThenThrows) {
  // Every allocation attempt fails: retry, then halve, ... then give up
  // with a diagnostic instead of degrading below the floor.
  sim::SimMachine machine(topo::mini8(), 8);
  coll::Tuning tuning;
  tuning.faults = "shm";
  try {
    auto comp = coll::make_component("xhc", machine, tuning);
    FAIL() << "expected exhaustion to throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos)
        << e.what();
  }
}

TEST(FaultShm, SmhcRingsDegradeTheSameWay) {
  sim::SimMachine machine(topo::mini8(), 8);
  coll::Tuning tuning;
  tuning.faults = "shm";
  try {
    auto comp = coll::make_component("smhc", machine, tuning);
    FAIL() << "expected exhaustion to throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Dropped publications: a diagnostic naming rank + flag, never a hang

TEST(FaultDrop, SimDeadlockReportNamesTheStrandedFlag) {
  constexpr int kRanks = 8;
  sim::SimMachine machine(topo::mini8(), kRanks);
  coll::Tuning tuning;
  tuning.faults = "flagdrop,rank=0";  // root drops every publication
  auto comp = coll::make_component("xhc", machine, tuning);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.emplace_back(machine, r, 65536);
  try {
    machine.run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  65536, 0);
    });
    FAIL() << "expected a deadlock report";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    // The report names the ledger-registered flag the ranks block on.
    EXPECT_NE(msg.find("announce"), std::string::npos) << msg;
  }
}

TEST(FaultDrop, RealWatchdogNamesRankAndFlag) {
  constexpr int kRanks = 4;
  mach::RealMachine machine(topo::mini8(), kRanks);
  machine.set_wait_timeout(0.5);  // keep the suite fast
  coll::Tuning tuning;
  tuning.faults = "flagdrop,rank=0";
  auto comp = coll::make_component("xhc", machine, tuning);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.emplace_back(machine, r, 65536);
  try {
    machine.run([&](mach::Ctx& ctx) {
      comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                  65536, 0);
    });
    FAIL() << "expected the watchdog to abort the run";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("announce"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank"), std::string::npos) << msg;
  }
}

// Two-tenant registry helper: comm0 'wide' spans the node, comm1 'narrow'
// the first half; `faults` (typically with a comm= filter) reaches every
// tenant's injector, which filters by its own comm id.
template <typename MachineT>
std::unique_ptr<svc::CommRegistry> two_tenants(MachineT& machine,
                                               svc::Arbiter& arbiter,
                                               const std::string& faults) {
  auto reg = std::make_unique<svc::CommRegistry>(machine, arbiter);
  coll::Tuning tuning;
  tuning.faults = faults;
  svc::CommSpec wide;
  wide.name = "wide";
  wide.tuning = tuning;
  for (int r = 0; r < machine.n_ranks(); ++r) wide.ranks.push_back(r);
  svc::CommSpec narrow;
  narrow.name = "narrow";
  narrow.tuning = tuning;
  for (int r = 0; r < machine.n_ranks() / 2; ++r) narrow.ranks.push_back(r);
  reg->create(wide);
  reg->create(narrow);
  return reg;
}

TEST(FaultDrop, SimDeadlockReportNamesTheOwningCommunicator) {
  constexpr int kRanks = 8;
  constexpr std::size_t kBytes = 65536;
  sim::SimMachine machine(topo::mini8(), kRanks);
  svc::Arbiter arbiter(svc::Budget{});
  // Drop every publication of comm1's rank 0 — comm0 shares that rank but
  // must stay untouched (the clause is filtered by comm id).
  auto reg = two_tenants(machine, arbiter, "flagdrop,comm=1,rank=0");

  svc::Communicator& wide = reg->comm(0);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.emplace_back(machine, r, kBytes);
  util::fill_pattern(bufs[0].get(), kBytes, 0xAB);
  machine.run([&](mach::Ctx& ctx) {
    svc::TenantCtx tctx(ctx, wide.machine());
    wide.component().bcast(tctx, bufs[static_cast<std::size_t>(ctx.rank())].get(),
                           kBytes, 0);
  });
  std::vector<std::byte> expect(kBytes);
  util::fill_pattern(expect.data(), kBytes, 0xAB);
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), kBytes),
              0)
        << "comm=1 fault leaked into comm0, rank " << r;
  }

  // The same collective on comm1 strands its members; the deadlock report
  // must name the stranded flag under the owning communicator's scope.
  svc::Communicator& narrow = reg->comm(1);
  try {
    machine.run([&](mach::Ctx& ctx) {
      if (narrow.local_rank(ctx.rank()) < 0) return;
      svc::TenantCtx tctx(ctx, narrow.machine());
      narrow.component().bcast(
          tctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes, 0);
    });
    FAIL() << "expected a deadlock report";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("comm1'narrow'"), std::string::npos) << msg;
  }
}

TEST(FaultDrop, RealWatchdogNamesTheOwningCommunicator) {
  constexpr int kRanks = 4;
  constexpr std::size_t kBytes = 65536;
  mach::RealMachine machine(topo::mini8(), kRanks);
  machine.set_wait_timeout(0.5);
  svc::Arbiter arbiter(svc::Budget{});
  auto reg = two_tenants(machine, arbiter, "flagdrop,comm=1,rank=0");
  svc::Communicator& narrow = reg->comm(1);
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.emplace_back(machine, r, kBytes);
  try {
    machine.run([&](mach::Ctx& ctx) {
      if (narrow.local_rank(ctx.rank()) < 0) return;
      svc::TenantCtx tctx(ctx, narrow.machine());
      narrow.component().bcast(
          tctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), kBytes, 0);
    });
    FAIL() << "expected the watchdog to abort the run";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("comm1'narrow'"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Seed sweep: every scenario terminates — degraded-but-correct or thrown

TEST(FaultChaos, SeedSweepTerminatesCorrectOrDiagnosed) {
  const std::string spec =
      "attach,prob=0.2;expose,prob=0.1;regmiss,prob=0.3;"
      "straggler,prob=0.2,delay=2e-6;flagdelay,prob=0.1,delay=1e-6;"
      "flagdrop,prob=0.02,count=2";
  for (const std::uint64_t seed :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{42},
        std::uint64_t{1337}, std::uint64_t{0xC0FFEE}}) {
    try {
      auto run = chaos_bcast(spec, seed, 65536, 4);
      EXPECT_TRUE(run->bad.empty())
          << "seed " << seed << ": " << run->bad.front();
    } catch (const util::Error& e) {
      // A dropped final publication surfaces as a deadlock report that
      // names the stranded channel — a diagnostic, not a hang.
      EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
          << "seed " << seed << ": " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Exit-code propagation (guarded_main)

TEST(GuardedMain, PassesThroughTheBodysExitCode) {
  EXPECT_EQ(osu::guarded_main([] { return 0; }), 0);
  EXPECT_EQ(osu::guarded_main([] { return 3; }), 3);
}

TEST(GuardedMain, ConvertsExceptionsToExitOne) {
  EXPECT_EQ(osu::guarded_main([]() -> int {
              throw util::Error("verification mismatch");
            }),
            1);
  EXPECT_EQ(osu::guarded_main([]() -> int { throw 42; }), 1);
}

}  // namespace
}  // namespace xhc
