// Smoke tests: every component completes a bcast and an allreduce with
// correct payloads on both machines and a small topology.
#include <gtest/gtest.h>

#include <cstring>

#include "coll/registry.h"
#include "mach/real_machine.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/prng.h"

namespace xhc {
namespace {

void check_bcast(mach::Machine& machine, std::string_view comp_name,
                 std::size_t bytes, int root) {
  auto comp = coll::make_component(comp_name, machine);
  const int n = machine.n_ranks();
  std::vector<mach::Buffer> bufs;
  for (int r = 0; r < n; ++r) bufs.emplace_back(machine, r, bytes);
  util::fill_pattern(bufs[static_cast<std::size_t>(root)].get(), bytes, 42);

  machine.run([&](mach::Ctx& ctx) {
    comp->bcast(ctx, bufs[static_cast<std::size_t>(ctx.rank())].get(), bytes,
                root);
  });

  std::vector<std::byte> expect(bytes);
  util::fill_pattern(expect.data(), bytes, 42);
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                          expect.data(), bytes),
              0)
        << comp_name << " rank " << r << " bytes " << bytes;
  }
}

void check_allreduce(mach::Machine& machine, std::string_view comp_name,
                     std::size_t count) {
  auto comp = coll::make_component(comp_name, machine);
  const int n = machine.n_ranks();
  const std::size_t bytes = count * sizeof(std::int64_t);
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  std::vector<std::int64_t> expect(count, 0);
  for (int r = 0; r < n; ++r) {
    sbufs.emplace_back(machine, r, bytes);
    rbufs.emplace_back(machine, r, bytes);
    auto* s = static_cast<std::int64_t*>(sbufs.back().get());
    for (std::size_t i = 0; i < count; ++i) {
      s[i] = static_cast<std::int64_t>((r + 1) * 1000 + i);
      expect[i] += s[i];
    }
  }

  machine.run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    comp->allreduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                    mach::DType::kI64, mach::ROp::kSum);
  });

  for (int r = 0; r < n; ++r) {
    const auto* got =
        static_cast<const std::int64_t*>(rbufs[static_cast<std::size_t>(r)]
                                             .get());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], expect[i])
          << comp_name << " rank " << r << " elem " << i;
    }
  }
}

TEST(Smoke, BcastRealMachineAllComponents) {
  for (const auto name : coll::component_names()) {
    mach::RealMachine machine(topo::mini8(), 8);
    check_bcast(machine, name, 2000, 0);
  }
}

TEST(Smoke, BcastSimMachineAllComponents) {
  for (const auto name : coll::component_names()) {
    sim::SimMachine machine(topo::mini8(), 8);
    check_bcast(machine, name, 2000, 0);
  }
}

TEST(Smoke, AllreduceRealMachineAllComponents) {
  for (const auto name : coll::component_names()) {
    mach::RealMachine machine(topo::mini8(), 8);
    check_allreduce(machine, name, 300);
  }
}

TEST(Smoke, AllreduceSimMachineAllComponents) {
  for (const auto name : coll::component_names()) {
    sim::SimMachine machine(topo::mini8(), 8);
    check_allreduce(machine, name, 300);
  }
}

}  // namespace
}  // namespace xhc
