// Tests of the Machine/Ctx contract on both implementations: allocation
// registry, flags, copies, reductions, barriers, error propagation, and the
// virtual clock's basic laws on SimMachine.
#include <gtest/gtest.h>

#include <cstring>

#include "mach/real_machine.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/check.h"
#include "verify/verify.h"

namespace xhc {
namespace {

template <typename M>
std::unique_ptr<mach::Machine> make_machine(int ranks);

template <>
std::unique_ptr<mach::Machine> make_machine<mach::RealMachine>(int ranks) {
  return std::make_unique<mach::RealMachine>(topo::mini8(), ranks);
}

template <>
std::unique_ptr<mach::Machine> make_machine<sim::SimMachine>(int ranks) {
  return std::make_unique<sim::SimMachine>(topo::mini8(), ranks);
}

template <typename M>
class MachineTest : public ::testing::Test {};

using Machines = ::testing::Types<mach::RealMachine, sim::SimMachine>;
TYPED_TEST_SUITE(MachineTest, Machines);

TYPED_TEST(MachineTest, RunInvokesEveryRankOnce) {
  auto m = make_machine<TypeParam>(8);
  std::atomic<int> calls{0};
  std::vector<int> seen(8, 0);
  m->run([&](mach::Ctx& ctx) {
    ++calls;
    seen[static_cast<std::size_t>(ctx.rank())] += 1;
    EXPECT_EQ(ctx.size(), 8);
  });
  EXPECT_EQ(calls.load(), 8);
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TYPED_TEST(MachineTest, AllocIsZeroedAndAligned) {
  auto m = make_machine<TypeParam>(4);
  void* p = m->alloc(1, 100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bytes[i], 0);
  m->free(p);
}

TYPED_TEST(MachineTest, AllocRejectsBadOwner) {
  auto m = make_machine<TypeParam>(4);
  EXPECT_THROW(m->alloc(-1, 8), util::Error);
  EXPECT_THROW(m->alloc(4, 8), util::Error);
}

TYPED_TEST(MachineTest, CopyMovesBytes) {
  auto m = make_machine<TypeParam>(2);
  mach::Buffer src(*m, 0, 256);
  mach::Buffer dst(*m, 1, 256);
  std::memset(src.get(), 0x5A, 256);
  m->run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 1) ctx.copy(dst.get(), src.get(), 256);
  });
  EXPECT_EQ(std::memcmp(dst.get(), src.get(), 256), 0);
}

TYPED_TEST(MachineTest, ReduceAppliesOperator) {
  auto m = make_machine<TypeParam>(2);
  mach::Buffer a(*m, 0, 4 * sizeof(double));
  mach::Buffer b(*m, 1, 4 * sizeof(double));
  auto* da = static_cast<double*>(a.get());
  auto* db = static_cast<double*>(b.get());
  for (int i = 0; i < 4; ++i) {
    da[i] = i;
    db[i] = 10;
  }
  m->run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      ctx.reduce(a.get(), b.get(), 4, mach::DType::kF64, mach::ROp::kSum);
    }
  });
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(da[i], i + 10.0);
}

TYPED_TEST(MachineTest, FlagsSignalAcrossRanks) {
  auto m = make_machine<TypeParam>(2);
  auto* flag = static_cast<mach::Flag*>(m->alloc(0, sizeof(mach::Flag)));
  auto* data = static_cast<std::uint64_t*>(m->alloc(0, 8));
  m->run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      *data = 77;
      ctx.flag_store(*flag, 1);
    } else {
      ctx.flag_wait_ge(*flag, 1);
      EXPECT_EQ(*data, 77u);  // release/acquire pairing
    }
  });
  m->free(flag);
  m->free(data);
}

TYPED_TEST(MachineTest, FetchAddReturnsPrevious) {
  auto m = make_machine<TypeParam>(4);
  auto* flag = static_cast<mach::Flag*>(m->alloc(0, sizeof(mach::Flag)));
  // Every rank fetch-adds this flag, so whitelist it for the protocol
  // verifier the way the Fig. 4 atomic_ctr is (checked builds only).
  m->verify_ledger().register_flag(flag, "test.fetch_add_ctr",
                                   verify::WriterPolicy::kShared);
  std::atomic<std::uint64_t> sum_prev{0};
  m->run([&](mach::Ctx& ctx) {
    sum_prev += ctx.fetch_add(*flag, 1);
  });
  // Previous values are a permutation of {0,1,2,3}.
  EXPECT_EQ(sum_prev.load(), 6u);
  m->run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_EQ(ctx.flag_read(*flag), 4u);
    }
  });
  m->free(flag);
}

TYPED_TEST(MachineTest, ExceptionsPropagateToCaller) {
  auto m = make_machine<TypeParam>(2);
  EXPECT_THROW(m->run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) throw util::Error("boom");
    // The peer must not hang: on SimMachine the abort wakes it, on
    // RealMachine it simply finishes.
  }),
               util::Error);
}

TYPED_TEST(MachineTest, BarrierSeparatesPhases) {
  auto m = make_machine<TypeParam>(8);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  m->run([&](mach::Ctx& ctx) {
    ++phase1;
    ctx.barrier();
    if (phase1.load() != 8) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

// ---------------------------------------------------------------------------
// Sim-specific timing laws

TEST(SimMachineTime, ChargeAdvancesClock) {
  sim::SimMachine m(topo::mini8(), 2);
  std::vector<double> end(2);
  m.run([&](mach::Ctx& ctx) {
    ctx.charge(1e-3);
    end[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  EXPECT_DOUBLE_EQ(end[0], 1e-3);
  EXPECT_DOUBLE_EQ(end[1], 1e-3);
}

TEST(SimMachineTime, ClockContinuesAcrossRuns) {
  sim::SimMachine m(topo::mini8(), 2);
  m.run([&](mach::Ctx& ctx) { ctx.charge(1e-3); });
  const double epoch = m.epoch();
  EXPECT_GE(epoch, 1e-3);
  const auto result = m.run([&](mach::Ctx& ctx) { ctx.charge(2e-3); });
  // Per-run times are relative to the run's start.
  EXPECT_DOUBLE_EQ(result.max_time, 2e-3);
  EXPECT_GE(m.epoch(), epoch + 2e-3);
}

TEST(SimMachineTime, CopyCostScalesWithSize) {
  sim::SimMachine m(topo::mini8(), 2);
  mach::Buffer small_src(m, 0, 4096);
  mach::Buffer big_src(m, 0, 1 << 20);
  mach::Buffer dst(m, 1, 1 << 20);
  double t_small = 0;
  double t_big = 0;
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() != 1) return;
    double t0 = ctx.now();
    ctx.copy(dst.get(), small_src.get(), 4096);
    t_small = ctx.now() - t0;
    t0 = ctx.now();
    ctx.copy(dst.get(), big_src.get(), 1 << 20);
    t_big = ctx.now() - t0;
  });
  EXPECT_GT(t_big, 10 * t_small);
}

TEST(SimMachineTime, WaitDoesNotRunBackwards) {
  sim::SimMachine m(topo::mini8(), 2);
  auto* flag = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  std::vector<double> end(2);
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() == 0) {
      ctx.charge(5e-6);
      ctx.flag_store(*flag, 1);
    } else {
      ctx.flag_wait_ge(*flag, 1);
      end[1] = ctx.now();
    }
  });
  // The waiter cannot observe the flag before it was published.
  EXPECT_GE(end[1], 5e-6);
  m.free(flag);
}

TEST(SimMachineTime, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    sim::SimMachine m(topo::epyc1p(), 16);
    std::vector<mach::Buffer> bufs;
    for (int r = 0; r < 16; ++r) bufs.emplace_back(m, r, 8192);
    auto* flag = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
    const auto result = m.run([&](mach::Ctx& ctx) {
      if (ctx.rank() == 0) {
        ctx.write_payload(bufs[0].get(), 8192, 3);
        ctx.flag_store(*flag, 1);
      } else {
        ctx.flag_wait_ge(*flag, 1);
        ctx.copy(bufs[static_cast<std::size_t>(ctx.rank())].get(),
                 bufs[0].get(), 8192);
      }
    });
    m.free(flag);
    return result.rank_time;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "rank " << i;
  }
}

TEST(SimMachineTime, RegistryAttributesHomes) {
  // Buffers owned by ranks in other NUMA nodes cost more to read.
  sim::SimMachine m(topo::epyc1p(), 32);
  mach::Buffer near_src(m, 1, 1 << 20);   // same NUMA as reader rank 0
  mach::Buffer far_src(m, 28, 1 << 20);   // NUMA 3
  mach::Buffer dst(m, 0, 1 << 20);
  double t_near = 0;
  double t_far = 0;
  m.run([&](mach::Ctx& ctx) {
    if (ctx.rank() != 0) return;
    double t0 = ctx.now();
    ctx.copy(dst.get(), near_src.get(), 1 << 20);
    t_near = ctx.now() - t0;
    t0 = ctx.now();
    ctx.copy(dst.get(), far_src.get(), 1 << 20);
    t_far = ctx.now() - t0;
  });
  EXPECT_GT(t_far, t_near);
}

}  // namespace
}  // namespace xhc
