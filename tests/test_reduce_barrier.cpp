// Tests for the §VII extensions: MPI_Reduce and MPI_Barrier — native
// hierarchical implementations for XHC, a binomial reduce and dissemination
// barrier for tuned, allreduce-based defaults for every other component.
#include <gtest/gtest.h>

#include "coll/registry.h"
#include "coll/tuning.h"
#include "mach/real_machine.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"

namespace xhc {
namespace {

class ReduceCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(ReduceCorrectness, SumReachesRoot) {
  for (const int root : {0, 5}) {
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{100}, std::size_t{5000}}) {
      mach::RealMachine machine(topo::mini16(), 16);
      auto comp = coll::make_component(GetParam(), machine);
      const std::size_t bytes = count * sizeof(std::int64_t);
      std::vector<mach::Buffer> sbufs;
      std::vector<mach::Buffer> rbufs;
      std::vector<std::int64_t> expect(count, 0);
      for (int r = 0; r < 16; ++r) {
        sbufs.emplace_back(machine, r, bytes);
        rbufs.emplace_back(machine, r, bytes);
        auto* s = static_cast<std::int64_t*>(sbufs.back().get());
        for (std::size_t i = 0; i < count; ++i) {
          s[i] = static_cast<std::int64_t>(r * 17 + i);
          expect[i] += s[i];
        }
      }
      machine.run([&](mach::Ctx& ctx) {
        const auto r = static_cast<std::size_t>(ctx.rank());
        comp->reduce(ctx, sbufs[r].get(), rbufs[r].get(), count,
                     mach::DType::kI64, mach::ROp::kSum, root);
      });
      const auto* got = static_cast<const std::int64_t*>(
          rbufs[static_cast<std::size_t>(root)].get());
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[i], expect[i])
            << GetParam() << " root " << root << " count " << count
            << " elem " << i;
      }
    }
  }
}

TEST_P(ReduceCorrectness, SimMachineAgrees) {
  sim::SimMachine machine(topo::mini16(), 16);
  auto comp = coll::make_component(GetParam(), machine);
  constexpr std::size_t kCount = 900;
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  std::vector<double> expect(kCount, 0.0);
  for (int r = 0; r < 16; ++r) {
    sbufs.emplace_back(machine, r, kCount * sizeof(double));
    rbufs.emplace_back(machine, r, kCount * sizeof(double));
    auto* s = static_cast<double*>(sbufs.back().get());
    for (std::size_t i = 0; i < kCount; ++i) {
      s[i] = r + 0.25 * static_cast<double>(i);
      expect[i] += s[i];
    }
  }
  machine.run([&](mach::Ctx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    comp->reduce(ctx, sbufs[r].get(), rbufs[r].get(), kCount,
                 mach::DType::kF64, mach::ROp::kSum, 3);
  });
  const auto* got = static_cast<const double*>(rbufs[3].get());
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(got[i], expect[i]) << GetParam() << " elem " << i;
  }
}

TEST_P(ReduceCorrectness, BarrierCompletesRepeatedly) {
  mach::RealMachine machine(topo::mini16(), 16);
  auto comp = coll::make_component(GetParam(), machine);
  std::atomic<int> count{0};
  machine.run([&](mach::Ctx& ctx) {
    for (int i = 0; i < 5; ++i) {
      comp->barrier(ctx);
      ++count;
    }
  });
  EXPECT_EQ(count.load(), 16 * 5);
}

INSTANTIATE_TEST_SUITE_P(AllComponents, ReduceCorrectness,
                         ::testing::Values("xhc", "xhc-flat", "tuned", "sm",
                                           "ucc", "smhc", "xbrc"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Barrier, NoRankLeavesBeforeTheLastArrives) {
  // Virtual-time semantics: stagger arrivals; every release must be at or
  // after the latest arrival.
  for (const char* comp_name : {"xhc", "tuned", "sm"}) {
    sim::SimMachine machine(topo::epyc1p(), 32);
    auto comp = coll::make_component(comp_name, machine);
    std::vector<double> release(32);
    double last_arrival = 0.0;
    machine.run([&](mach::Ctx& ctx) {
      // Rank r arrives at r * 1us; rank 31 arrives last.
      ctx.charge(static_cast<double>(ctx.rank()) * 1e-6);
      comp->barrier(ctx);
      release[static_cast<std::size_t>(ctx.rank())] = ctx.now();
    });
    last_arrival = 31e-6;
    for (int r = 0; r < 32; ++r) {
      EXPECT_GE(release[static_cast<std::size_t>(r)], last_arrival)
          << comp_name << " rank " << r;
    }
  }
}

TEST(Barrier, XhcBarrierBeatsAtomicsBaselineOnArm) {
  // The flag-only hierarchical barrier should scale far better than the
  // sm baseline's atomics-based allreduce fallback on the dense SLC node.
  double lat[2];
  int i = 0;
  for (const char* name : {"xhc", "sm"}) {
    sim::SimMachine machine(topo::armn1(), 160);
    auto comp = coll::make_component(name, machine);
    osu::Config cfg;
    cfg.warmup = 1;
    cfg.iters = 3;
    lat[i++] = osu::barrier_latency_us(machine, *comp, cfg);
  }
  EXPECT_LT(lat[0], lat[1]);
}

TEST(Reduce, NativeXhcSkipsTheBroadcast) {
  // Within the latency path, reduce must be cheaper than allreduce at large
  // sizes (no data fan-out). Pin the allreduce to that path: with default
  // tuning a 1 MiB payload dispatches to reduce-scatter + allgather, a
  // different algorithm class, so the structural comparison only makes
  // sense against the reduce-then-broadcast pipeline reduce shares.
  osu::Config cfg;
  cfg.warmup = 1;
  cfg.iters = 2;
  coll::Tuning latency;
  latency.rs_ag_threshold = 0;
  latency.stripe_threshold = 0;
  sim::SimMachine m1(topo::epyc2p(), 64);
  auto c1 = coll::make_component("xhc", m1, latency);
  const double red =
      osu::reduce_sweep(m1, *c1, {1u << 20}, cfg).front().avg_us;
  sim::SimMachine m2(topo::epyc2p(), 64);
  auto c2 = coll::make_component("xhc", m2, latency);
  const double all =
      osu::allreduce_sweep(m2, *c2, {1u << 20}, cfg).front().avg_us;
  EXPECT_LT(red, all);
  // And the default tuning must route 1 MiB through the bandwidth engine,
  // which beats the latency-path allreduce outright.
  sim::SimMachine m3(topo::epyc2p(), 64);
  auto c3 = coll::make_component("xhc", m3);
  const double rs_ag =
      osu::allreduce_sweep(m3, *c3, {1u << 20}, cfg).front().avg_us;
  EXPECT_LT(rs_ag, all);
}

TEST(Reduce, InPlaceAtRoot) {
  mach::RealMachine machine(topo::mini8(), 8);
  auto comp = coll::make_component("xhc", machine);
  constexpr std::size_t kCount = 256;
  std::vector<mach::Buffer> bufs;
  std::vector<std::int64_t> expect(kCount, 0);
  for (int r = 0; r < 8; ++r) {
    bufs.emplace_back(machine, r, kCount * sizeof(std::int64_t));
    auto* s = static_cast<std::int64_t*>(bufs.back().get());
    for (std::size_t i = 0; i < kCount; ++i) {
      s[i] = static_cast<std::int64_t>(r + i);
      expect[i] += s[i];
    }
  }
  machine.run([&](mach::Ctx& ctx) {
    void* buf = bufs[static_cast<std::size_t>(ctx.rank())].get();
    comp->reduce(ctx, buf, buf, kCount, mach::DType::kI64, mach::ROp::kSum,
                 0);
  });
  const auto* got = static_cast<const std::int64_t*>(bufs[0].get());
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i], expect[i]);
  }
}

}  // namespace
}  // namespace xhc
