// Protocol verifier tests (src/verify/): negative tests seed deliberate
// violations through the direct ledger API — second writer, decreasing
// sequence, packed layout — and assert each is reported with the offending
// rank and flag identity. The e2e section (checked builds only) routes the
// same violations through real Machine flag traffic.
#include <gtest/gtest.h>

#include <string>

#include "core/ctl.h"
#include "mach/flag.h"
#include "mach/real_machine.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"
#include "util/cacheline.h"
#include "util/check.h"
#include "verify/layout.h"
#include "verify/verify.h"

namespace xhc {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Direct ledger API (every build: the ledger is always compiled).

TEST(VerifyLedger, SecondWriterReportedWithRankAndFlag) {
  verify::Ledger ledger;
  ledger.set_abort_on_violation(false);
  mach::Flag f;
  ledger.register_flag(&f, "ctl0.seq");
  ledger.on_store(&f, /*rank=*/0, 1);
  ledger.on_store(&f, /*rank=*/1, 2);  // deliberate: not the owner
  const auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kSecondWriter);
  EXPECT_EQ(vs[0].rank, 1);
  EXPECT_EQ(vs[0].other_rank, 0);
  EXPECT_EQ(vs[0].flag, &f);
  const std::string d = vs[0].describe();
  EXPECT_TRUE(contains(d, "rank 1")) << d;
  EXPECT_TRUE(contains(d, "ctl0.seq")) << d;
  EXPECT_TRUE(contains(d, "owned by rank 0")) << d;
}

TEST(VerifyLedger, DecreasingSequenceReported) {
  verify::Ledger ledger;
  ledger.set_abort_on_violation(false);
  mach::Flag f;
  ledger.register_flag(&f, "p2p.ch0>1.send_seq");
  ledger.on_store(&f, 2, 5);
  ledger.on_store(&f, 2, 3);  // deliberate: cumulative counters never decrease
  const auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kNonMonotonic);
  EXPECT_EQ(vs[0].rank, 2);
  EXPECT_EQ(vs[0].value, 3u);
  EXPECT_EQ(vs[0].prior, 5u);
  const std::string d = vs[0].describe();
  EXPECT_TRUE(contains(d, "rank 2")) << d;
  EXPECT_TRUE(contains(d, "send_seq")) << d;
  EXPECT_TRUE(contains(d, "3 < prior 5")) << d;
}

TEST(VerifyLedger, RmwLegalOnlyOnSharedPolicy) {
  verify::Ledger ledger;
  ledger.set_abort_on_violation(false);
  mach::Flag fixed;
  mach::Flag shared;
  ledger.register_flag(&fixed, "ctl0.seq");
  ledger.register_flag(&shared, "ctl0.atomic_ctr", verify::WriterPolicy::kShared);
  ledger.on_rmw(&shared, 0, 1);
  ledger.on_rmw(&shared, 3, 2);  // multi-writer RMW is the whitelisted case
  EXPECT_TRUE(ledger.violations().empty());
  ledger.on_rmw(&fixed, 1, 1);  // deliberate: RMW outside the whitelist
  const auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kRmwOnSingleWriter);
  EXPECT_EQ(vs[0].rank, 1);
  EXPECT_TRUE(contains(vs[0].describe(), "kShared"));
}

TEST(VerifyLedger, RotatingAllowsHandoffOnlyWithIncreasingValue) {
  verify::Ledger ledger;
  ledger.set_abort_on_violation(false);
  mach::Flag f;
  ledger.register_flag(&f, "ctl0.announce", verify::WriterPolicy::kRotating);
  ledger.on_store(&f, 0, 10);
  ledger.on_store(&f, 0, 20);
  ledger.on_store(&f, 3, 30);  // legal: new leader at an operation boundary
  EXPECT_TRUE(ledger.violations().empty());
  ledger.on_store(&f, 1, 30);  // deliberate: handoff without progress
  const auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kSecondWriter);
  EXPECT_EQ(vs[0].rank, 1);
  EXPECT_EQ(vs[0].other_rank, 3);
}

TEST(VerifyLedger, StalePublishCaughtByTimedCrossCheck) {
  verify::Ledger ledger;
  ledger.set_abort_on_violation(false);
  mach::Flag f;
  ledger.register_flag(&f, "ctl0.seq");
  ledger.on_store(&f, 0, 1, /*vtime=*/1.0);
  ledger.on_observe(&f, 1, 1, /*vtime=*/2.0);  // after publish: fine
  ledger.on_observe(&f, 1, 0, /*vtime=*/0.1);  // initial value: always fine
  EXPECT_TRUE(ledger.violations().empty());
  ledger.on_observe(&f, 1, 1, /*vtime=*/0.5);  // deliberate: reads the future
  auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kStalePublish);
  EXPECT_EQ(vs[0].rank, 1);
  EXPECT_DOUBLE_EQ(vs[0].publish_vtime, 1.0);
  EXPECT_TRUE(contains(vs[0].describe(), "before its publish"));
  ledger.on_observe(&f, 1, 7, /*vtime=*/5.0);  // deliberate: never published
  vs = ledger.violations();
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_LT(vs[1].publish_vtime, 0.0);
  EXPECT_TRUE(contains(vs[1].describe(), "never published"));
  // wait_ge needs only a crossing publish, but by the resume time.
  ledger.on_wait_resume(&f, 1, 1, /*vtime=*/0.5);
  EXPECT_EQ(ledger.violations().size(), 3u);
  ledger.on_wait_resume(&f, 1, 1, /*vtime=*/1.0);
  EXPECT_EQ(ledger.violations().size(), 3u);
}

TEST(VerifyLedger, PackedLayoutLintNamesBothFlags) {
  verify::Ledger ledger;
  ledger.set_abort_on_violation(false);
  // Two flags with distinct writers deliberately packed into one line.
  struct alignas(util::kCacheLine) Packed {
    mach::Flag a;
    mach::Flag b;
  } packed;
  static_assert(sizeof(mach::Flag) * 2 <= util::kCacheLine);
  ledger.lint_group("packed", {{&packed.a, /*writer=*/0, verify::kAny, "ack_a",
                                false},
                               {&packed.b, /*writer=*/1, verify::kAny, "ack_b",
                                false}});
  const auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kSharedLine);
  const std::string d = vs[0].describe();
  EXPECT_TRUE(contains(d, "ack_a")) << d;
  EXPECT_TRUE(contains(d, "ack_b")) << d;
  EXPECT_TRUE(contains(d, "share a cache line")) << d;
}

TEST(VerifyLedger, ExpectSharedBecomesFindingNotViolation) {
  verify::Ledger ledger;  // abort mode on: an unexpected finding would throw
  struct alignas(util::kCacheLine) Packed {
    mach::Flag a;
    mach::Flag b;
  } packed;
  // The Fig. 10 "shared" variant: distinct spinning readers on one line,
  // flagged as deliberate.
  ledger.lint_group("fig10",
                    {{&packed.a, verify::kLeader, 0, "announce_shared", true},
                     {&packed.b, verify::kLeader, 1, "announce_shared", true}});
  EXPECT_TRUE(ledger.violations().empty());
  const auto fs = ledger.expected_findings();
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].kind, verify::Kind::kSharedLine);
  EXPECT_TRUE(contains(fs[0].describe(), "announce_shared"));
}

TEST(VerifyLedger, AbortModeThrowsWithDiagnostic) {
  verify::Ledger ledger;  // abort-on-violation is the default
  mach::Flag f;
  ledger.register_flag(&f, "ctl0.ack[2]");
  ledger.on_store(&f, 2, 1);
  try {
    ledger.on_store(&f, 0, 2);  // deliberate second writer
    FAIL() << "expected the verifier to throw";
  } catch (const util::Error& e) {
    EXPECT_TRUE(contains(e.what(), "second-writer")) << e.what();
    EXPECT_TRUE(contains(e.what(), "rank 0")) << e.what();
    EXPECT_TRUE(contains(e.what(), "ctl0.ack[2]")) << e.what();
  }
  EXPECT_EQ(ledger.summary().violations, 1u);
}

TEST(VerifyLedger, ForgetRangeResetsReusedAddresses) {
  verify::Ledger ledger;
  mach::Flag f;
  ledger.register_flag(&f, "old.owner");
  ledger.on_store(&f, 0, 9);
  ledger.forget_range(&f, sizeof(f));
  // Address reuse: a different rank may own the "new" flag.
  ledger.on_store(&f, 1, 1);
  EXPECT_TRUE(ledger.violations().empty());
  EXPECT_EQ(ledger.summary().flags_tracked, 1u);
}

TEST(VerifyLedger, SummaryCountsOperations) {
  verify::Ledger ledger;
  mach::Flag f;
  ledger.register_flag(&f, "s");
  ledger.on_store(&f, 0, 1, 1.0);
  ledger.on_store(&f, 0, 2, 2.0);
  ledger.on_observe(&f, 1, 2, 3.0);
  const verify::Summary s = ledger.summary();
  EXPECT_EQ(s.flags_tracked, 1u);
  EXPECT_EQ(s.stores_checked, 2u);
  EXPECT_EQ(s.loads_checked, 1u);
  EXPECT_EQ(s.violations, 0u);
}

// ---------------------------------------------------------------------------
// Layout registration over a real control block (every build: registration
// and the lint are not gated).

TEST(VerifyLayout, GroupCtlRegistersCleanWithExpectedFig10Finding) {
  sim::SimMachine m(topo::mini8(), 8);
  core::CtlArena arena;
  (void)arena.add_group(m, /*home_rank=*/0, /*slots=*/8);
  const verify::Summary s = m.verify_ledger().summary();
  EXPECT_EQ(s.violations, 0u);           // the proper layout passes the lint
  EXPECT_GE(s.expected_findings, 1u);    // the packed Fig. 10 array is seen
  EXPECT_GE(s.flags_tracked, 3u + 6u * 8u);
  for (const auto& finding : m.verify_ledger().expected_findings()) {
    EXPECT_TRUE(contains(finding.flag_name, "announce_shared"))
        << finding.describe();
  }
}

TEST(VerifyLayout, ShardPlaneRegistersCleanPerRankSlots) {
  // The large-message shard/stripe plane: every slot flag is registered
  // under the "shards." prefix, cache-line padded, so the predictive lint
  // must stay silent and tracking must cover all three arrays.
  sim::SimMachine m(topo::mini8(), 8);
  core::CtlArena arena;
  core::ShardCtl ctl = arena.add_shard_plane(m, 8);
  const verify::Summary s = m.verify_ledger().summary();
  EXPECT_EQ(s.violations, 0u);
  EXPECT_GE(s.flags_tracked, 3u * 8u);

  verify::Ledger& ledger = m.verify_ledger();
  ledger.set_abort_on_violation(false);
  // Slot ownership is per global rank: the owner may advance its own
  // progress flag, any other rank writing it is a protocol escape.
  ledger.on_store(&*ctl.prog[2], /*rank=*/2, 64);
  EXPECT_TRUE(ledger.violations().empty());
  ledger.on_store(&*ctl.prog[2], /*rank=*/3, 128);  // deliberate violation
  auto vs = ledger.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, verify::Kind::kSecondWriter);
  EXPECT_EQ(vs[0].rank, 3);
  EXPECT_TRUE(contains(vs[0].describe(), "shards.prog[2]"))
      << vs[0].describe();

  // The shard timeline is cumulative: a stage that "rewinds" a peer's
  // progress would un-publish bytes a waiter may already have consumed.
  ledger.on_store(&*ctl.stripe_ready[5], /*rank=*/5, 4096);
  ledger.on_store(&*ctl.stripe_ready[5], /*rank=*/5, 1024);  // deliberate
  vs = ledger.violations();
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[1].kind, verify::Kind::kNonMonotonic);
  EXPECT_TRUE(contains(vs[1].describe(), "shards.stripe_ready[5]"))
      << vs[1].describe();
}

// ---------------------------------------------------------------------------
// End-to-end through Machine flag traffic (checked builds only: the
// per-operation hooks are compiled out otherwise).

#if XHC_VERIFY_ENABLED

TEST(VerifyE2E, SimSecondWriterThrowsNamingRank) {
  sim::SimMachine m(topo::mini8(), 2);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.verify_ledger().register_flag(f, "e2e.owned");
  try {
    m.run([&](mach::Ctx& ctx) {
      if (ctx.rank() == 0) ctx.flag_store(*f, 1);
      ctx.barrier();  // makes rank 0 the first (legitimate) writer
      if (ctx.rank() == 1) ctx.flag_store(*f, 2);  // deliberate violation
    });
    FAIL() << "expected the verifier to abort the run";
  } catch (const util::Error& e) {
    EXPECT_TRUE(contains(e.what(), "second-writer")) << e.what();
    EXPECT_TRUE(contains(e.what(), "rank 1")) << e.what();
    EXPECT_TRUE(contains(e.what(), "e2e.owned")) << e.what();
  }
  m.free(f);
}

TEST(VerifyE2E, RealNonMonotonicThrowsNamingRank) {
  mach::RealMachine m(topo::mini8(), 1);
  auto* f = static_cast<mach::Flag*>(m.alloc(0, sizeof(mach::Flag)));
  m.verify_ledger().register_flag(f, "e2e.seq");
  try {
    m.run([&](mach::Ctx& ctx) {
      ctx.flag_store(*f, 5);
      ctx.flag_store(*f, 3);  // deliberate violation
    });
    FAIL() << "expected the verifier to abort the run";
  } catch (const util::Error& e) {
    EXPECT_TRUE(contains(e.what(), "non-monotonic")) << e.what();
    EXPECT_TRUE(contains(e.what(), "rank 0")) << e.what();
    EXPECT_TRUE(contains(e.what(), "e2e.seq")) << e.what();
  }
  m.free(f);
}

TEST(VerifyE2E, DisciplinedTrafficIsClean) {
  sim::SimMachine m(topo::mini8(), 4);
  const int n = 4;
  std::vector<mach::Flag*> flags;
  for (int r = 0; r < n; ++r) {
    flags.push_back(static_cast<mach::Flag*>(m.alloc(r, sizeof(mach::Flag))));
    m.verify_ledger().register_flag(flags.back(),
                                    "e2e.seq[" + std::to_string(r) + "]");
  }
  m.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    for (std::uint64_t v = 1; v <= 3; ++v) {
      ctx.flag_store(*flags[static_cast<std::size_t>(r)], v);
      ctx.flag_wait_ge(*flags[static_cast<std::size_t>((r + 1) % n)], v);
    }
  });
  const verify::Summary s = m.verify_ledger().summary();
  EXPECT_EQ(s.violations, 0u);
  EXPECT_GE(s.stores_checked, 12u);  // 4 ranks x 3 stores
  EXPECT_GE(s.loads_checked, 12u);   // 4 ranks x 3 waits
  for (auto* f : flags) m.free(f);
}

#else  // !XHC_VERIFY_ENABLED

TEST(VerifyE2E, HooksRequireCheckedBuild) {
  GTEST_SKIP() << "machine hooks are compiled out; configure with "
                  "-DXHC_VERIFY=ON (scripts/check.sh verify) to run these";
}

#endif  // XHC_VERIFY_ENABLED

}  // namespace
}  // namespace xhc
