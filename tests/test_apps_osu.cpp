// Tests for the OSU-style harness and the application proxies.
#include <gtest/gtest.h>

#include "apps/cntk.h"
#include "apps/miniamr.h"
#include "apps/pisvm.h"
#include "coll/registry.h"
#include "mach/real_machine.h"
#include "osu/harness.h"
#include "sim/sim_machine.h"
#include "topo/presets.h"

namespace xhc {
namespace {

TEST(OsuHarness, DefaultSizesArePowersOfTwo) {
  const auto sizes = osu::default_sizes(4, 64);
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), 4u);
  EXPECT_EQ(sizes.back(), 64u);
}

TEST(OsuHarness, BcastSweepProducesOrderedResults) {
  sim::SimMachine m(topo::mini16(), 16);
  auto comp = coll::make_component("xhc", m);
  osu::Config cfg;
  cfg.warmup = 1;
  cfg.iters = 2;
  const auto res = osu::bcast_sweep(m, *comp, {64, 4096, 262144}, cfg);
  ASSERT_EQ(res.size(), 3u);
  for (const auto& r : res) {
    EXPECT_GT(r.avg_us, 0.0);
    EXPECT_LE(r.min_us, r.avg_us);
    EXPECT_GE(r.max_us, r.avg_us);
  }
  // Latency grows with size across two decades.
  EXPECT_GT(res[2].avg_us, res[0].avg_us);
}

TEST(OsuHarness, VerificationCatchesNothingOnHealthyComponent) {
  // verify=true memcmp-checks the payload; a passing sweep is the assertion.
  mach::RealMachine m(topo::mini8(), 8);
  auto comp = coll::make_component("tuned", m);
  osu::Config cfg;
  cfg.verify = true;
  EXPECT_NO_THROW(osu::bcast_sweep(m, *comp, {4, 1024, 65536}, cfg));
}

TEST(OsuHarness, AllreduceSweepRuns) {
  sim::SimMachine m(topo::mini16(), 16);
  auto comp = coll::make_component("tuned", m);
  osu::Config cfg;
  cfg.warmup = 1;
  cfg.iters = 2;
  const auto res = osu::allreduce_sweep(m, *comp, {4, 16384}, cfg);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_GT(res[1].avg_us, res[0].avg_us);
}

TEST(OsuHarness, ModifyBufferCostsExcludedFromTiming) {
  // The rewrite happens outside the timed window: stock and _mb variants
  // must not differ by the (large) rewrite cost itself for a tiny message.
  sim::SimMachine m(topo::mini8(), 8);
  auto comp = coll::make_component("xhc", m);
  osu::Config stock;
  stock.modify_buffer = false;
  stock.iters = 3;
  osu::Config mb;
  mb.modify_buffer = true;
  mb.iters = 3;
  const double a = osu::bcast_sweep(m, *comp, {64}, stock).front().avg_us;
  sim::SimMachine m2(topo::mini8(), 8);
  auto comp2 = coll::make_component("xhc", m2);
  const double b = osu::bcast_sweep(m2, *comp2, {64}, mb).front().avg_us;
  EXPECT_NEAR(a, b, 0.5 * std::max(a, b));
}

TEST(OsuHarness, Pt2PtLatencyPositiveAndSizeMonotone) {
  sim::SimMachine m(topo::mini8(), 8);
  p2p::Fabric fabric(m, {});
  osu::Config cfg;
  cfg.warmup = 1;
  cfg.iters = 2;
  const double small = osu::pt2pt_latency_us(m, fabric, 0, 7, 8, cfg);
  const double large = osu::pt2pt_latency_us(m, fabric, 0, 7, 1 << 20, cfg);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

// ---------------------------------------------------------------------------
// Application proxies

TEST(Apps, PisvmAccountingConsistent) {
  sim::SimMachine m(topo::mini16(), 16);
  auto comp = coll::make_component("xhc", m);
  apps::PisvmConfig cfg;
  cfg.iterations = 20;
  const apps::AppResult res = apps::run_pisvm(m, *comp, cfg);
  EXPECT_GT(res.total_time, 0.0);
  EXPECT_GT(res.collective_time, 0.0);
  EXPECT_LT(res.collective_time, res.total_time);
  EXPECT_EQ(res.collective_calls, 20u * 3u);  // 2 rows + 1 control per iter
  // Compute dominates but communication is material.
  EXPECT_GT(res.total_time, 20 * cfg.compute_seconds * 0.99);
}

TEST(Apps, MiniAmrConfigsDiffer) {
  const apps::MiniAmrConfig a = apps::miniamr_default();
  const apps::MiniAmrConfig b = apps::miniamr_1k_levels();
  EXPECT_LT(a.reduce_bytes, b.reduce_bytes);
  EXPECT_GT(a.refine_every, b.refine_every);
}

TEST(Apps, MiniAmrRunsAndCounts) {
  sim::SimMachine m(topo::mini16(), 16);
  auto comp = coll::make_component("xhc", m);
  apps::MiniAmrConfig cfg = apps::miniamr_default();
  cfg.timesteps = 40;
  const apps::AppResult res = apps::run_miniamr(m, *comp, cfg);
  // refine every 4 steps x 6 reductions.
  EXPECT_EQ(res.collective_calls, 10u * 6u);
  EXPECT_GT(res.total_time, res.collective_time);
}

TEST(Apps, CntkRegCacheHitRatioHigh) {
  // Gradient buffers are reused every minibatch: the paper reports >99%
  // registration-cache hit ratios; require at least 90% on the small proxy.
  sim::SimMachine m(topo::mini16(), 16);
  auto comp = coll::make_component("xhc", m);
  apps::CntkConfig cfg;
  cfg.minibatches = 40;
  cfg.layer_bytes = {256 * 1024, 512 * 1024};
  const apps::AppResult res = apps::run_cntk(m, *comp, cfg);
  EXPECT_EQ(res.collective_calls, 80u);
  const auto stats = comp->reg_cache_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->hit_ratio(), 0.90);
  (void)res;
}

TEST(Apps, BetterCollectivesReduceTotalTime) {
  // The proxy structure guarantees wins come only from collective time:
  // XHC's total must not exceed the naive flat component's.
  apps::MiniAmrConfig cfg = apps::miniamr_1k_levels();
  cfg.timesteps = 60;
  double totals[2];
  int i = 0;
  for (const char* name : {"xhc", "sm"}) {
    sim::SimMachine m(topo::epyc1p(), 32);
    auto comp = coll::make_component(name, m);
    totals[i++] = apps::run_miniamr(m, *comp, cfg).total_time;
  }
  EXPECT_LT(totals[0], totals[1]);
}

}  // namespace
}  // namespace xhc
