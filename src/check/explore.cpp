#include "check/explore.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "util/prng.h"

namespace xhc::check {

namespace {

constexpr std::size_t kMaxSegmentAccesses = 256;
constexpr std::size_t kMaxWitnesses = 8;

/// One memory access of a scheduling segment (flag word or payload range).
struct Access {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  bool write = false;
};

/// Everything one rank touched between two scheduling decisions. Overflowed
/// segments conservatively conflict with everything (pruning is disabled
/// for them, never soundness).
struct Segment {
  std::vector<Access> acc;
  bool overflow = false;

  void add(std::uintptr_t lo, std::size_t n, bool write) {
    if (overflow) return;
    if (acc.size() >= kMaxSegmentAccesses) {
      overflow = true;
      acc.clear();
      return;
    }
    acc.push_back(Access{lo, lo + n, write});
  }
};

bool independent(const Segment& a, const Segment& b) {
  if (a.overflow || b.overflow) return false;
  for (const Access& x : a.acc) {
    for (const Access& y : b.acc) {
      if (x.lo < y.hi && y.lo < x.hi && (x.write || y.write)) return false;
    }
  }
  return true;
}

class Recorder final : public sim::AccessSink {
 public:
  Segment* seg = nullptr;  ///< null disables recording (random walks)

  void on_flag(int /*rank*/, const mach::Flag* f, FlagOp op,
               std::uint64_t /*value*/) override {
    if (seg == nullptr) return;
    const bool write = op == FlagOp::kStore || op == FlagOp::kRmw;
    seg->add(reinterpret_cast<std::uintptr_t>(f), 8, write);
  }
  void on_data(int /*rank*/, const void* p, std::size_t n,
               bool write) override {
    if (seg == nullptr) return;
    seg->add(reinterpret_cast<std::uintptr_t>(p), n, write);
  }
};

/// One materialized decision point on the current DFS path.
struct Node {
  std::vector<int> candidates;
  std::vector<int> sleep;  ///< inherited + explored choices to skip
  std::vector<int> tried;
  int chosen = -1;  ///< -1: fully pruned node, defer to default policy
  /// First-step segment of each explored choice, for the independence
  /// relation when siblings inherit the sleep set.
  std::map<int, Segment> seg;
};

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

ExploreStats explore(const Runner& run, const ExploreOptions& opts) {
  ExploreStats st;
  std::vector<Node> trail;
  Recorder rec;
  Segment pending;

  const auto record_outcome = [&](const RunOutcome& out) {
    ++st.executions;
    if (out.failed) {
      ++st.failures;
      if (st.witnesses.size() < kMaxWitnesses) st.witnesses.push_back(out.diag);
    }
  };

  // --- bounded-depth DFS with stateless replay -----------------------------
  while (st.executions < opts.max_executions) {
    int depth = 0;
    bool diverged = false;
    pending = Segment{};
    rec.seg = &pending;

    const sim::VirtualScheduler::PickHook hook =
        [&](const std::vector<int>& cands) -> int {
      // Forced moves don't branch: no depth spent, and the pending segment
      // keeps accumulating so a recorded step spans the whole stretch
      // between real branch points (shorter segments would over-prune).
      if (cands.size() <= 1) return -1;
      // The segment since the previous branch belongs to that branch's
      // choice; keep the first deterministic recording.
      if (depth > 0 && depth <= static_cast<int>(trail.size())) {
        Node& pn = trail[static_cast<std::size_t>(depth) - 1];
        if (pn.chosen >= 0 && pn.seg.find(pn.chosen) == pn.seg.end()) {
          pn.seg.emplace(pn.chosen, pending);
        }
      }
      pending = Segment{};
      if (diverged || depth >= opts.max_branch_depth) {
        ++depth;
        return -1;
      }
      if (depth < static_cast<int>(trail.size())) {  // replaying the prefix
        Node& n = trail[static_cast<std::size_t>(depth)];
        if (n.chosen >= 0 && !contains(n.candidates, n.chosen)) {
          // Shouldn't happen on the deterministic engine; degrade safely.
          diverged = true;
          ++st.divergences;
          ++depth;
          return -1;
        }
        ++depth;
        return n.chosen;
      }
      Node n;
      n.candidates = cands;
      if (depth > 0) {
        // Sleep-set inheritance: a sleeping sibling stays asleep only when
        // its recorded first step is independent of the step just taken.
        const Node& pn = trail[static_cast<std::size_t>(depth) - 1];
        const auto bs = pn.chosen >= 0 ? pn.seg.find(pn.chosen) : pn.seg.end();
        if (bs != pn.seg.end()) {
          for (const int s : pn.sleep) {
            const auto it = pn.seg.find(s);
            if (it != pn.seg.end() && independent(it->second, bs->second)) {
              n.sleep.push_back(s);
            }
          }
        }
      }
      n.chosen = -1;
      for (const int c : cands) {
        if (!contains(n.sleep, c)) {
          n.chosen = c;
          n.tried.push_back(c);
          break;
        }
      }
      trail.push_back(std::move(n));
      ++st.branch_points;
      ++depth;
      return trail.back().chosen;  // -1 when every candidate sleeps
    };

    record_outcome(run(hook, &rec));

    // Backtrack to the deepest node with an unexplored, awake sibling.
    bool more = false;
    while (!trail.empty()) {
      Node& n = trail.back();
      if (n.chosen >= 0 && !contains(n.sleep, n.chosen)) {
        n.sleep.push_back(n.chosen);  // explored: siblings may skip it
      }
      int next = -1;
      for (const int c : n.candidates) {
        if (!contains(n.tried, c) && !contains(n.sleep, c)) {
          next = c;
          break;
        }
      }
      if (next >= 0) {
        n.chosen = next;
        n.tried.push_back(next);
        more = true;
        break;
      }
      st.pruned += static_cast<int>(n.candidates.size() - n.tried.size());
      trail.pop_back();
    }
    if (!more) {
      st.exhausted = true;
      break;
    }
  }

  // --- seeded random-walk fallback -----------------------------------------
  rec.seg = nullptr;
  util::SplitMix64 rng(opts.seed);
  const int walks = st.exhausted ? 0 : opts.random_walks;
  for (int i = 0; i < walks; ++i) {
    const sim::VirtualScheduler::PickHook hook =
        [&](const std::vector<int>& cands) -> int {
      if (cands.size() <= 1) return -1;
      return cands[rng.next_below(cands.size())];
    };
    record_outcome(run(hook, &rec));
  }
  return st;
}

}  // namespace xhc::check
