// Static schedule model: the flag protocol of one collective, extracted
// without running it.
//
// The runtime protocols (core/bcast.cpp, core/allreduce.cpp,
// core/xhc_component.cpp) synchronize exclusively through monotone
// cumulative flags whose writers, waiters and thresholds are pure functions
// of structures that exist before any rank executes: the comm tree, the
// GroupCtl/ShardCtl registration, the ShardPlan timelines and the tuning.
// extract_schedule() walks those same structures and emits, per rank in
// program order, every flag publish (with the payload coverage it
// guarantees), every blocking wait (with its threshold and the payload
// bytes read after resume), and every RMW — producing a model the analyzer
// (analyzer.h) can prove properties about and the explorer (explore.h) can
// execute under systematic interleaving.
//
// The model describes the FIRST operation on a fresh component: every
// cumulative base is zero and the op sequence number is 1. That is exactly
// the state a newly built XhcComponent is in, which is what lets the
// conformance test replay the same operation for real and compare
// per-flag event streams byte for byte.
//
// Payload coverage uses abstract buffer ids (BufKind x rank) and an
// `epoch` lattice encoding reduction progress:
//   0          raw contribution bytes
//   1 .. L     subtree partial through level e-1 (latency reduce), or
//              reduce-scatter stage e-1 complete (rs_ag path)
//   final = L  fully reduced / payload available (plain bcast uses 1)
// A publish covering (buf, range, e) also satisfies any need at epoch <= e.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mach/flag.h"

namespace xhc::core {
class XhcComponent;
}

namespace xhc::check {

enum class Op { kBcast, kAllreduce, kReduce, kBarrier };
const char* to_string(Op op) noexcept;

enum class EvKind : unsigned char { kPublish, kWait, kRmw };

/// Abstract payload buffers, one set per rank.
enum class BufKind : unsigned char {
  kUser,         ///< bcast buffer / allreduce-reduce result (rbuf)
  kContrib,      ///< reduction contribution (sbuf)
  kCicoContrib,  ///< CICO segment, contribution half
  kCicoResult,   ///< CICO segment, result half
};

/// Byte range of one abstract buffer at one reduction epoch.
struct DataRange {
  int buf = -1;  ///< ScheduleModel::buf_id()
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  int epoch = 0;
};

/// One protocol event of one rank.
struct Event {
  EvKind kind = EvKind::kPublish;
  mach::Flag* flag = nullptr;
  /// Published value / wait threshold / RMW delta.
  std::uint64_t value = 0;
  /// Stable protocol-site label ("bcast.announce", "rs.chunk_wait", ...).
  const char* site = "";
  /// kPublish: payload bytes guaranteed readable once this value is seen.
  std::vector<DataRange> writes;
  /// kWait: payload bytes read after the wait resumes.
  std::vector<DataRange> needs;
};

struct ScheduleModel {
  Op op = Op::kBcast;
  std::size_t bytes = 0;
  int root = 0;
  int n_ranks = 0;
  int final_epoch = 1;  ///< epoch meaning "fully reduced / available"
  /// Program-order event stream of every rank.
  std::vector<std::vector<Event>> per_rank;

  int buf_id(BufKind kind, int rank) const noexcept {
    return static_cast<int>(kind) * n_ranks + rank;
  }
  /// Inverse of buf_id, for reports.
  std::string buf_name(int id) const;

  std::size_t n_events() const noexcept {
    std::size_t n = 0;
    for (const auto& s : per_rank) n += s.size();
    return n;
  }
};

/// Extracts the first-op schedule of (op, bytes, root) from `comp`'s comm
/// tree, control-block registration, shard plan and tuning — without
/// executing a collective; the component is only read. `bytes` must be a
/// multiple of 8 for the reduction ops (the model fixes the element size at
/// 8, matching the conformance runs' f64 payloads); the root is ignored for
/// allreduce (internal root 0) and barrier.
ScheduleModel extract_schedule(core::XhcComponent& comp, Op op,
                               std::size_t bytes, int root = 0);

}  // namespace xhc::check
