// Static schedule analyzer: proves per-operation protocol properties on a
// ScheduleModel without executing a collective.
//
// Checked properties (one Finding per violation):
//   single-writer           at most one rank publishes each non-kShared flag
//                           within the operation; RMW only on kShared flags
//   monotonicity            each writer's publish values never decrease
//   unreachable-threshold   every wait threshold is reached by some publish
//                           (for kShared: by the sum of RMW deltas)
//   wait-cycle              the happens-before graph — program order plus an
//                           edge from each wait's earliest satisfying
//                           publish — is acyclic, which implies
//                           deadlock-freedom (DESIGN.md § Static analysis)
//   slot-reuse              a slotted-timeline wait (shard prog / stripe
//                           counters) is satisfied only by a publish of the
//                           same timeline slot, never by progress leaking in
//                           from another stage
//   coverage                the payload bytes a wait reads afterwards are
//                           within the satisfying writer's cumulative
//                           published coverage at a sufficient epoch
//
// Reports are byte-deterministic: findings are ordered, flags are named via
// the verify ledger's registration, and the JSON rendering is hand-built
// with no environment-dependent content.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/schedule_model.h"

namespace xhc::verify {
class Ledger;
}

namespace xhc::check {

enum class Property {
  kSingleWriter,
  kMonotonicity,
  kUnreachableThreshold,
  kWaitCycle,
  kSlotReuse,
  kCoverage,
};
const char* to_string(Property p) noexcept;

struct Finding {
  Property property = Property::kSingleWriter;
  std::string flag;   ///< registered flag name
  int rank = -1;      ///< offending rank
  std::string site;   ///< protocol site of the offending event
  std::string detail; ///< one-line human-readable diagnostic
};

struct AnalysisReport {
  Op op = Op::kBcast;
  std::size_t bytes = 0;
  int root = 0;
  int n_ranks = 0;
  std::size_t n_events = 0;
  std::size_t n_flags = 0;
  std::size_t n_waits = 0;
  std::size_t n_edges = 0;
  std::vector<Finding> findings;  ///< sorted (flag, property, rank, site)

  bool clean() const noexcept { return findings.empty(); }
  /// Deterministic plain-text report (one header line, one line per finding).
  std::string text() const;
  /// Deterministic machine-readable JSON object.
  std::string json() const;
};

/// Runs every check on `m`. `ledger` resolves flag names and writer
/// policies (the same registration the runtime verifier uses), so the
/// analyzer enforces exactly the declared discipline.
AnalysisReport analyze(const ScheduleModel& m, const verify::Ledger& ledger);

}  // namespace xhc::check
