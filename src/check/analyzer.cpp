#include "check/analyzer.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>

#include "verify/verify.h"

namespace xhc::check {

const char* to_string(Property p) noexcept {
  switch (p) {
    case Property::kSingleWriter:
      return "single-writer";
    case Property::kMonotonicity:
      return "monotonicity";
    case Property::kUnreachableThreshold:
      return "unreachable-threshold";
    case Property::kWaitCycle:
      return "wait-cycle";
    case Property::kSlotReuse:
      return "slot-reuse";
    case Property::kCoverage:
      return "coverage";
  }
  return "?";
}

namespace {

struct Ref {
  int rank = -1;
  int idx = -1;
  bool valid() const noexcept { return rank >= 0; }
};

/// All events touching one flag, in (rank, program-index) order — which is
/// the writer's program order whenever the flag really has one writer.
struct FlagUse {
  std::string name;
  verify::WriterPolicy policy = verify::WriterPolicy::kFixed;
  std::vector<Ref> publishes;
  std::vector<Ref> rmws;
  std::vector<Ref> waits;
};

class Analysis {
 public:
  Analysis(const ScheduleModel& m, const verify::Ledger& ledger)
      : m_(m), ledger_(ledger) {}

  AnalysisReport run() {
    index();
    check_writers();
    check_monotone();
    resolve_satisfiers();
    check_reachability();
    check_cycles();
    check_coverage();
    finish();
    return std::move(rep_);
  }

 private:
  const Event& ev(Ref ref) const {
    return m_.per_rank[static_cast<std::size_t>(ref.rank)]
                      [static_cast<std::size_t>(ref.idx)];
  }
  int node_id(Ref ref) const {
    return offset_[static_cast<std::size_t>(ref.rank)] + ref.idx;
  }
  Ref ref_of(int node) const {
    int rank = 0;
    while (rank + 1 < m_.n_ranks &&
           offset_[static_cast<std::size_t>(rank) + 1] <= node) {
      ++rank;
    }
    return Ref{rank, node - offset_[static_cast<std::size_t>(rank)]};
  }

  void index() {
    offset_.assign(static_cast<std::size_t>(m_.n_ranks) + 1, 0);
    for (int r = 0; r < m_.n_ranks; ++r) {
      offset_[static_cast<std::size_t>(r) + 1] =
          offset_[static_cast<std::size_t>(r)] +
          static_cast<int>(m_.per_rank[static_cast<std::size_t>(r)].size());
    }
    n_nodes_ = offset_.back();
    for (int r = 0; r < m_.n_ranks; ++r) {
      const auto& stream = m_.per_rank[static_cast<std::size_t>(r)];
      for (int i = 0; i < static_cast<int>(stream.size()); ++i) {
        const Event& e = stream[static_cast<std::size_t>(i)];
        FlagUse& fu = flags_[e.flag];
        if (fu.name.empty()) {
          fu.name = ledger_.flag_name(e.flag);
          if (fu.name.empty()) {
            fu.name = "unregistered#" + std::to_string(flags_.size());
          }
          fu.policy = ledger_.flag_policy(e.flag).value_or(
              verify::WriterPolicy::kFixed);
        }
        const Ref ref{r, i};
        switch (e.kind) {
          case EvKind::kPublish:
            fu.publishes.push_back(ref);
            break;
          case EvKind::kRmw:
            fu.rmws.push_back(ref);
            break;
          case EvKind::kWait:
            fu.waits.push_back(ref);
            ++rep_.n_waits;
            break;
        }
      }
    }
    rep_.n_events = static_cast<std::size_t>(n_nodes_);
    rep_.n_flags = flags_.size();
  }

  void add(Property p, const FlagUse& fu, Ref at, std::string detail) {
    Finding f;
    f.property = p;
    f.flag = fu.name;
    f.rank = at.rank;
    f.site = at.valid() ? ev(at).site : "";
    f.detail = std::move(detail);
    rep_.findings.push_back(std::move(f));
  }

  // --- single-writer / RMW discipline --------------------------------------
  void check_writers() {
    for (auto& [flag, fu] : flags_) {
      if (fu.policy == verify::WriterPolicy::kShared) {
        // The whitelisted multi-writer counters: publishes (plain stores)
        // are unexpected but legal per the ledger; nothing to check here.
        continue;
      }
      // Distinct publishing ranks, with publish counts for minority pick.
      std::map<int, int> by_rank;
      for (const Ref ref : fu.publishes) ++by_rank[ref.rank];
      if (by_rank.size() > 1) {
        // Name the minority writer (fewest publishes, then lowest rank):
        // the protocol's real writer publishes the stream, an interloper
        // typically contributes one store.
        int culprit = -1;
        int best = -1;
        std::string all;
        for (const auto& [rank, count] : by_rank) {
          if (culprit < 0 || count < best) {
            culprit = rank;
            best = count;
          }
          if (!all.empty()) all += ",";
          all += std::to_string(rank);
        }
        Ref at;
        for (const Ref ref : fu.publishes) {
          if (ref.rank == culprit) {
            at = ref;
            break;
          }
        }
        add(Property::kSingleWriter, fu, at,
            "flag published by ranks {" + all + "}");
      }
      for (const Ref ref : fu.rmws) {
        add(Property::kSingleWriter, fu, ref,
            "RMW on a flag not whitelisted as shared");
      }
    }
  }

  // --- per-writer monotone publish values ----------------------------------
  void check_monotone() {
    for (auto& [flag, fu] : flags_) {
      std::map<int, std::uint64_t> last;
      for (const Ref ref : fu.publishes) {
        const Event& e = ev(ref);
        auto it = last.find(ref.rank);
        if (it != last.end() && e.value < it->second) {
          add(Property::kMonotonicity, fu, ref,
              "publish " + std::to_string(e.value) + " after " +
                  std::to_string(it->second));
        }
        last[ref.rank] = std::max(it == last.end() ? 0 : it->second, e.value);
      }
    }
  }

  // --- earliest satisfying publish per wait --------------------------------
  void resolve_satisfiers() {
    sat_.assign(static_cast<std::size_t>(n_nodes_), Ref{});
    for (auto& [flag, fu] : flags_) {
      if (fu.policy == verify::WriterPolicy::kShared) continue;
      for (const Ref w : fu.waits) {
        const std::uint64_t t = ev(w).value;
        for (const Ref p : fu.publishes) {
          if (ev(p).value >= t) {
            sat_[static_cast<std::size_t>(node_id(w))] = p;
            break;
          }
        }
      }
    }
  }

  void check_reachability() {
    for (auto& [flag, fu] : flags_) {
      if (fu.policy == verify::WriterPolicy::kShared) {
        std::uint64_t sum = 0;
        for (const Ref ref : fu.rmws) sum += ev(ref).value;
        for (const Ref w : fu.waits) {
          if (ev(w).value > sum) {
            add(Property::kUnreachableThreshold, fu, w,
                "threshold " + std::to_string(ev(w).value) +
                    " exceeds RMW total " + std::to_string(sum));
          }
        }
        continue;
      }
      std::uint64_t maxv = 0;
      for (const Ref p : fu.publishes) maxv = std::max(maxv, ev(p).value);
      for (const Ref w : fu.waits) {
        if (!sat_[static_cast<std::size_t>(node_id(w))].valid() &&
            ev(w).value > 0) {
          add(Property::kUnreachableThreshold, fu, w,
              "threshold " + std::to_string(ev(w).value) +
                  " above any publish (max " + std::to_string(maxv) + ")");
        }
      }
    }
  }

  // --- acyclicity of program order + satisfier edges -----------------------
  void check_cycles() {
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n_nodes_));
    std::vector<int> indeg(static_cast<std::size_t>(n_nodes_), 0);
    std::size_t edges = 0;
    const auto link = [&](int from, int to) {
      adj[static_cast<std::size_t>(from)].push_back(to);
      ++indeg[static_cast<std::size_t>(to)];
      ++edges;
    };
    for (int r = 0; r < m_.n_ranks; ++r) {
      const int n = static_cast<int>(
          m_.per_rank[static_cast<std::size_t>(r)].size());
      for (int i = 0; i + 1 < n; ++i) {
        link(node_id(Ref{r, i}), node_id(Ref{r, i + 1}));
      }
    }
    for (auto& [flag, fu] : flags_) {
      if (fu.policy == verify::WriterPolicy::kShared) {
        for (const Ref w : fu.waits) {
          for (const Ref p : fu.rmws) link(node_id(p), node_id(w));
        }
        continue;
      }
      for (const Ref w : fu.waits) {
        const Ref p = sat_[static_cast<std::size_t>(node_id(w))];
        if (p.valid()) link(node_id(p), node_id(w));
      }
    }
    rep_.n_edges = edges;

    // Kahn; anything left sits on a cycle.
    std::vector<int> q;
    std::vector<int> deg = indeg;
    for (int v = 0; v < n_nodes_; ++v) {
      if (deg[static_cast<std::size_t>(v)] == 0) q.push_back(v);
    }
    std::size_t done = 0;
    while (done < q.size()) {
      const int v = q[done++];
      for (const int to : adj[static_cast<std::size_t>(v)]) {
        if (--deg[static_cast<std::size_t>(to)] == 0) q.push_back(to);
      }
    }
    if (done == static_cast<std::size_t>(n_nodes_)) return;

    // Extract one concrete cycle deterministically: from the smallest
    // remaining node, repeatedly step to its smallest remaining predecessor
    // until a node repeats.
    std::vector<char> left(static_cast<std::size_t>(n_nodes_), 1);
    for (std::size_t i = 0; i < done; ++i) {
      left[static_cast<std::size_t>(q[i])] = 0;
    }
    std::vector<std::vector<int>> radj(static_cast<std::size_t>(n_nodes_));
    for (int v = 0; v < n_nodes_; ++v) {
      if (left[static_cast<std::size_t>(v)] == 0) continue;
      for (const int to : adj[static_cast<std::size_t>(v)]) {
        if (left[static_cast<std::size_t>(to)] != 0) {
          radj[static_cast<std::size_t>(to)].push_back(v);
        }
      }
    }
    int start = 0;
    while (left[static_cast<std::size_t>(start)] == 0) ++start;
    std::vector<int> order(static_cast<std::size_t>(n_nodes_), -1);
    std::vector<int> walk;
    int at = start;
    while (order[static_cast<std::size_t>(at)] < 0) {
      order[static_cast<std::size_t>(at)] = static_cast<int>(walk.size());
      walk.push_back(at);
      auto& preds = radj[static_cast<std::size_t>(at)];
      at = *std::min_element(preds.begin(), preds.end());
    }
    std::vector<int> cycle(walk.begin() + order[static_cast<std::size_t>(at)],
                           walk.end());
    std::reverse(cycle.begin(), cycle.end());  // happens-before order

    // Anchor the finding at the cycle's first wait (smallest node id).
    Ref anchor = ref_of(cycle.front());
    for (const int v : cycle) {
      const Ref ref = ref_of(v);
      if (ev(ref).kind == EvKind::kWait) {
        anchor = ref;
        break;
      }
    }
    std::string desc = "cycle:";
    const std::size_t shown = std::min<std::size_t>(cycle.size(), 12);
    for (std::size_t i = 0; i < shown; ++i) {
      const Ref ref = ref_of(cycle[i]);
      desc += " r" + std::to_string(ref.rank) + ":" + ev(ref).site;
    }
    if (cycle.size() > shown) {
      desc += " ... (" + std::to_string(cycle.size()) + " nodes)";
    }
    const FlagUse& fu = flags_[ev(anchor).flag];
    add(Property::kWaitCycle, fu, anchor, desc);
  }

  // --- payload coverage + slot reuse ---------------------------------------
  static bool slotted_site(const char* site) {
    const std::string_view s(site);
    return s == "rs.src_wait" || s == "ag.piece_wait" ||
           s == "stripe.ready_wait";
  }

  void check_coverage() {
    for (auto& [flag, fu] : flags_) {
      if (fu.policy == verify::WriterPolicy::kShared) continue;
      std::map<int, int> by_rank;
      for (const Ref ref : fu.publishes) ++by_rank[ref.rank];
      if (by_rank.size() > 1) continue;  // reported as single-writer already
      for (const Ref w : fu.waits) {
        const Event& we = ev(w);
        const Ref p = sat_[static_cast<std::size_t>(node_id(w))];
        if (!p.valid()) continue;  // reported as unreachable already

        if (m_.bytes > 0 && slotted_site(we.site) && we.value > 0) {
          const std::uint64_t want = (we.value - 1) / m_.bytes;
          const std::uint64_t got = (ev(p).value - 1) / m_.bytes;
          if (want != got) {
            add(Property::kSlotReuse, fu, w,
                "threshold in timeline slot " + std::to_string(want) +
                    " satisfied from slot " + std::to_string(got));
          }
        }

        for (const DataRange& need : we.needs) {
          // Union of the satisfying writer's declared coverage, up to and
          // including the satisfier, on this buffer at a sufficient epoch.
          std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
          const auto& stream =
              m_.per_rank[static_cast<std::size_t>(p.rank)];
          for (int i = 0; i <= p.idx; ++i) {
            const Event& e = stream[static_cast<std::size_t>(i)];
            if (e.kind != EvKind::kPublish) continue;
            for (const DataRange& wr : e.writes) {
              if (wr.buf == need.buf && wr.epoch >= need.epoch) {
                got.emplace_back(wr.lo, wr.hi);
              }
            }
          }
          std::sort(got.begin(), got.end());
          std::uint64_t pos = need.lo;
          for (const auto& [lo, hi] : got) {
            if (lo > pos) break;
            pos = std::max(pos, hi);
          }
          if (pos < need.hi) {
            add(Property::kCoverage, fu, w,
                "needs " + m_.buf_name(need.buf) + " [" +
                    std::to_string(need.lo) + "," + std::to_string(need.hi) +
                    ") epoch " + std::to_string(need.epoch) +
                    "; writer r" + std::to_string(p.rank) + " covers up to " +
                    std::to_string(pos));
          }
        }
      }
    }
  }

  void finish() {
    rep_.op = m_.op;
    rep_.bytes = m_.bytes;
    rep_.root = m_.root;
    rep_.n_ranks = m_.n_ranks;
    std::sort(rep_.findings.begin(), rep_.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.flag != b.flag) return a.flag < b.flag;
                if (a.property != b.property) return a.property < b.property;
                if (a.rank != b.rank) return a.rank < b.rank;
                if (a.site != b.site) return a.site < b.site;
                return a.detail < b.detail;
              });
    rep_.findings.erase(
        std::unique(rep_.findings.begin(), rep_.findings.end(),
                    [](const Finding& a, const Finding& b) {
                      return a.flag == b.flag && a.property == b.property &&
                             a.rank == b.rank && a.site == b.site &&
                             a.detail == b.detail;
                    }),
        rep_.findings.end());
  }

  const ScheduleModel& m_;
  const verify::Ledger& ledger_;
  AnalysisReport rep_;
  std::vector<int> offset_;
  int n_nodes_ = 0;
  std::map<const mach::Flag*, FlagUse> flags_;
  std::vector<Ref> sat_;  ///< per node id: the wait's earliest satisfier
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string AnalysisReport::text() const {
  std::ostringstream os;
  os << "schedule-analysis op=" << check::to_string(op) << " bytes=" << bytes
     << " root=" << root << " ranks=" << n_ranks << "\n";
  os << "events=" << n_events << " flags=" << n_flags << " waits=" << n_waits
     << " edges=" << n_edges << "\n";
  if (findings.empty()) {
    os << "result: CLEAN\n";
  } else {
    os << "result: " << findings.size() << " finding"
       << (findings.size() == 1 ? "" : "s") << "\n";
    for (const Finding& f : findings) {
      os << "finding property=" << check::to_string(f.property)
         << " flag=" << f.flag << " rank=" << f.rank << " site=" << f.site
         << " detail=" << f.detail << "\n";
    }
  }
  return os.str();
}

std::string AnalysisReport::json() const {
  std::ostringstream os;
  os << "{\"op\":\"" << check::to_string(op) << "\",\"bytes\":" << bytes
     << ",\"root\":" << root << ",\"ranks\":" << n_ranks
     << ",\"events\":" << n_events << ",\"flags\":" << n_flags
     << ",\"waits\":" << n_waits << ",\"edges\":" << n_edges
     << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) os << ",";
    os << "{\"property\":\"" << check::to_string(f.property)
       << "\",\"flag\":\"" << json_escape(f.flag)
       << "\",\"rank\":" << f.rank << ",\"site\":\"" << json_escape(f.site)
       << "\",\"detail\":\"" << json_escape(f.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

AnalysisReport analyze(const ScheduleModel& m, const verify::Ledger& ledger) {
  return Analysis(m, ledger).run();
}

}  // namespace xhc::check
