// Systematic interleaving exploration over the simulated machine.
//
// The virtual-time scheduler normally runs one canonical schedule (minimal
// (vtime, rank) at every decision). explore() drives the same program
// through MANY schedules: a bounded-depth DFS over the scheduler's
// runnable-candidate choices — stateless-model-checking style, the program
// is re-executed from scratch for every branch — with sleep-set pruning
// (a sibling branch is skipped when its first step is independent, in the
// access-conflict sense, of the steps already explored from that node),
// followed by a seeded random-walk fallback once the DFS budget is spent.
//
// The unit of exploration is a Runner: one full execution of the program
// under a given PickHook, reporting pass/fail. Tests wrap either a real
// collective (payload + ledger checks inside) or a model interpretation
// (interp.h) in a Runner, so the explorer itself stays ignorant of what it
// is scheduling. Decision points beyond max_branch_depth fall back to the
// default deterministic policy, which bounds the tree while still driving
// every execution to termination — on the <= 4-rank topologies the smoke
// tests use, the DFS typically exhausts the whole tree.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/access_sink.h"
#include "sim/scheduler.h"

namespace xhc::check {

/// Result of one execution under a forced schedule.
struct RunOutcome {
  bool failed = false;
  std::string diag;  ///< one-line description when failed
};

/// One full program execution under `hook`; `sink` (never null) must be
/// installed so the explorer sees per-step accesses. The runner must make
/// a fresh program state per call (exploration replays from scratch).
using Runner = std::function<RunOutcome(const sim::VirtualScheduler::PickHook&,
                                        sim::AccessSink*)>;

struct ExploreOptions {
  int max_branch_depth = 6;    ///< decision points explored per execution
  int max_executions = 2000;   ///< DFS budget before the fallback kicks in
  int random_walks = 64;       ///< seeded random schedules after the DFS
  std::uint64_t seed = 1;      ///< random-walk seed
};

struct ExploreStats {
  int executions = 0;     ///< total program executions (DFS + walks)
  int branch_points = 0;  ///< distinct decision nodes materialized
  int pruned = 0;         ///< sibling branches skipped by sleep sets
  int divergences = 0;    ///< replays that fell off the recorded prefix
  int failures = 0;       ///< executions whose outcome failed
  bool exhausted = false; ///< DFS covered the whole bounded tree
  std::vector<std::string> witnesses;  ///< first failing diags (capped)
};

/// Explores `run` and returns the coverage/failure statistics. Every
/// failure is counted; the first few diagnostics are kept as witnesses.
ExploreStats explore(const Runner& run, const ExploreOptions& opts = {});

}  // namespace xhc::check
