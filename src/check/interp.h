// Schedule-model interpreter: executes a ScheduleModel's event streams on
// the simulated machine.
//
// Each rank replays its program-order events — release-publish, blocking
// wait, RMW — against a fresh set of flags allocated for the run, so a
// mutated model (mutate.h) never touches a live component's control
// blocks. Payload correctness is checked abstractly: every publish records
// the coverage it declares, every resumed wait asserts its needs are
// inside the coverage published so far (at a sufficient epoch). A private
// verify::Ledger (abort-off) collects writer/monotonicity violations the
// run exhibits.
//
// This is the bridge between the static analyzer and the interleaving
// explorer: run_model() under a PickHook turns one abstract schedule into
// as many concrete executions as the explorer asks for, and the mutation
// tests use it to demonstrate which seeded bugs a runtime execution under
// the DEFAULT schedule cannot observe — the static pass must catch those.
#pragma once

#include <string>
#include <vector>

#include "check/schedule_model.h"
#include "sim/access_sink.h"
#include "sim/scheduler.h"
#include "verify/verify.h"

namespace xhc::sim {
class SimMachine;
}

namespace xhc::check {

struct InterpResult {
  bool completed = false;  ///< every rank drained its event stream
  bool deadlock = false;   ///< the scheduler reported a blocked machine
  /// Writer/monotonicity violations from the run's private ledger.
  std::vector<verify::Violation> violations;
  /// Coverage failures and the abort diagnostic, one line each (capped).
  std::vector<std::string> errors;

  bool ok() const noexcept {
    return completed && !deadlock && violations.empty() && errors.empty();
  }
};

/// Executes `m` on `machine` (one simulated rank per model rank; the
/// machine must have exactly m.n_ranks ranks). `names` is the ledger the
/// model's flags were registered with — names and writer policies carry
/// over to the run's fresh flags. `hook` perturbs the schedule (null: the
/// engine's default deterministic order); `sink` additionally observes
/// every flag access (may be null). The machine's pick hook / access sink
/// are restored to null on return.
InterpResult run_model(const ScheduleModel& m, sim::SimMachine& machine,
                       const verify::Ledger& names,
                       sim::VirtualScheduler::PickHook hook = nullptr,
                       sim::AccessSink* sink = nullptr);

}  // namespace xhc::check
