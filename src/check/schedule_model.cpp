// Schedule extraction: mirrors the six protocol paths of core/ (plain and
// striped bcast, latency reduce/allreduce, reduce-scatter+allgather,
// barrier) over the same comm tree / control blocks / shard plan the
// runtime uses, emitting flag events instead of executing operations. The
// conformance test (tests/test_check.cpp) pins this mirror to the real
// implementation event for event, so a drift in either is a test failure,
// not a silent analyzer blind spot.
#include "check/schedule_model.h"

#include <algorithm>

#include "coll/tuning.h"
#include "core/shard_schedule.h"
#include "core/xhc_component.h"
#include "util/check.h"

namespace xhc::check {

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kBcast:
      return "bcast";
    case Op::kAllreduce:
      return "allreduce";
    case Op::kReduce:
      return "reduce";
    case Op::kBarrier:
      return "barrier";
  }
  return "?";
}

std::string ScheduleModel::buf_name(int id) const {
  static const char* kKind[] = {"user", "contrib", "cico_contrib",
                                "cico_result"};
  if (id < 0 || n_ranks <= 0) return "?";
  const int kind = id / n_ranks;
  const int rank = id % n_ranks;
  if (kind < 0 || kind > 3) return "?";
  return std::string(kKind[kind]) + "[" + std::to_string(rank) + "]";
}

namespace {

using core::CommView;
using core::ElemRange;
using core::GroupCtl;
using core::ShardCtl;
using core::ShardSchedule;

// Local copies of allreduce.cpp's file-scope helpers (anonymous namespace
// there); the conformance test keeps them honest.
std::size_t active_reducers(std::size_t bytes, std::size_t n_nonleader,
                            std::size_t min_bytes) {
  if (n_nonleader == 0) return 0;
  if (min_bytes == 0) return n_nonleader;
  const std::size_t by_min = (bytes + min_bytes - 1) / min_bytes;
  return std::clamp<std::size_t>(by_min, 1, n_nonleader);
}

std::size_t aligned_chunk(std::size_t chunk, std::size_t elem) {
  if (chunk < elem) return elem;
  return chunk - chunk % elem;
}

class Extractor {
 public:
  Extractor(core::XhcComponent& comp, Op op, std::size_t bytes, int root)
      : tree_(comp.tree()), tun_(comp.tuning()) {
    m_.op = op;
    m_.bytes = bytes;
    m_.root = (op == Op::kAllreduce || op == Op::kBarrier) ? 0 : root;
    m_.n_ranks = tree_.n_ranks();
    XHC_REQUIRE(m_.n_ranks >= 2, "schedule model needs >= 2 ranks");
    XHC_REQUIRE(m_.root >= 0 && m_.root < m_.n_ranks, "bad root ", m_.root);
    if (op != Op::kBarrier) {
      XHC_REQUIRE(bytes > 0, "schedule model needs a non-empty payload");
    }
    if (op == Op::kAllreduce || op == Op::kReduce) {
      XHC_REQUIRE(bytes % kElem == 0, "reduction payload must be f64-sized");
    }
    m_.per_rank.resize(static_cast<std::size_t>(m_.n_ranks));
  }

  ScheduleModel run() {
    const CommView& view = tree_.view(m_.root);
    cico_ = m_.bytes <= tun_.cico_threshold;
    switch (m_.op) {
      case Op::kBcast: {
        const bool striped =
            !cico_ && tun_.stripe_threshold > 0 &&
            m_.bytes > tun_.stripe_threshold &&
            tun_.sync == coll::SyncMethod::kSingleWriter;
        m_.final_epoch = 1;
        for (int r = 0; r < m_.n_ranks; ++r) model_bcast(view, r, striped);
        break;
      }
      case Op::kAllreduce:
      case Op::kReduce: {
        const bool deliver_all = m_.op == Op::kAllreduce;
        const bool rs_ag = deliver_all && !cico_ &&
                           tun_.rs_ag_threshold > 0 &&
                           m_.bytes > tun_.rs_ag_threshold &&
                           tree_.shard_plan().uniform();
        m_.final_epoch =
            rs_ag ? tree_.shard_plan().n_stages() : view.n_levels();
        for (int r = 0; r < m_.n_ranks; ++r) {
          if (rs_ag) {
            model_rs_ag(view, r);
          } else {
            model_reduce(view, r, deliver_all);
          }
        }
        break;
      }
      case Op::kBarrier:
        m_.final_epoch = 1;
        cico_ = false;
        for (int r = 0; r < m_.n_ranks; ++r) model_barrier(view, r);
        break;
    }
    return std::move(m_);
  }

 private:
  static constexpr std::size_t kElem = 8;  // f64, fixed by the model
  static constexpr std::uint64_t kSeq = 1;  // first op on a fresh component

  // --- emission ------------------------------------------------------------
  std::vector<Event>& stream(int r) {
    return m_.per_rank[static_cast<std::size_t>(r)];
  }
  void publish(int r, mach::Flag& f, std::uint64_t v, const char* site,
               std::vector<DataRange> writes = {}) {
    Event e;
    e.kind = EvKind::kPublish;
    e.flag = &f;
    e.value = v;
    e.site = site;
    e.writes = std::move(writes);
    stream(r).push_back(std::move(e));
  }
  void wait(int r, mach::Flag& f, std::uint64_t v, const char* site,
            std::vector<DataRange> needs = {}) {
    Event e;
    e.kind = EvKind::kWait;
    e.flag = &f;
    e.value = v;
    e.site = site;
    e.needs = std::move(needs);
    stream(r).push_back(std::move(e));
  }
  void rmw(int r, mach::Flag& f, std::uint64_t delta, const char* site) {
    Event e;
    e.kind = EvKind::kRmw;
    e.flag = &f;
    e.value = delta;
    e.site = site;
    stream(r).push_back(std::move(e));
  }

  DataRange range(BufKind kind, int rank, std::uint64_t lo, std::uint64_t hi,
                  int epoch) const {
    return DataRange{m_.buf_id(kind, rank), lo, hi, epoch};
  }
  /// The buffer a rank's announce/seq chain exposes (pull_bcast src/dst and
  /// the latency reduction's accumulation target).
  BufKind result_kind(bool leads_any) const {
    return (cico_ && leads_any) ? BufKind::kCicoResult : BufKind::kUser;
  }
  BufKind contrib_kind() const {
    return cico_ ? BufKind::kCicoContrib : BufKind::kContrib;
  }

  // --- flag helper mirrors (xhc_component.cpp) -----------------------------
  void announce_publish(int r, const CommView::Membership& m, std::uint64_t v,
                        const char* site, std::vector<DataRange> writes = {}) {
    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    const core::GroupShape& shape = tree_.shape(m.ctl_id);
    switch (tun_.flag_layout) {
      case coll::FlagLayout::kSingle:
        publish(r, *ctl.announce[m.leader_slot], v, site,
                std::move(writes));
        return;
      case coll::FlagLayout::kMultiSharedLine:
        for (const int j : m.members) {
          if (j == r) continue;
          publish(r, ctl.announce_shared[shape.slot_of(j)], v, site, writes);
        }
        return;
      case coll::FlagLayout::kMultiSeparateLines:
        for (const int j : m.members) {
          if (j == r) continue;
          publish(r, *ctl.announce_sep[shape.slot_of(j)], v, site, writes);
        }
        return;
    }
  }
  void announce_wait(int r, const CommView::Membership& m, std::uint64_t v,
                     const char* site, std::vector<DataRange> needs = {}) {
    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    switch (tun_.flag_layout) {
      case coll::FlagLayout::kSingle:
        wait(r, *ctl.announce[m.leader_slot], v, site, std::move(needs));
        return;
      case coll::FlagLayout::kMultiSharedLine:
        wait(r, ctl.announce_shared[m.my_slot], v, site, std::move(needs));
        return;
      case coll::FlagLayout::kMultiSeparateLines:
        wait(r, *ctl.announce_sep[m.my_slot], v, site, std::move(needs));
        return;
    }
  }
  void ack_publish(int r, const CommView::Membership& m) {
    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    if (tun_.sync == coll::SyncMethod::kSingleWriter) {
      publish(r, *ctl.ack[m.my_slot], kSeq, "ack");
    } else {
      rmw(r, *ctl.atomic_ctr[0], 1, "ack.fetch_add");
    }
  }
  void wait_acks(int r, const CommView::Membership& m) {
    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    const core::GroupShape& shape = tree_.shape(m.ctl_id);
    if (tun_.sync == coll::SyncMethod::kSingleWriter) {
      for (const int j : m.members) {
        if (j == r) continue;
        wait(r, *ctl.ack[shape.slot_of(j)], kSeq, "wait_acks");
      }
    } else {
      const auto expected =
          static_cast<std::uint64_t>(m.members.size() - 1) * kSeq;
      wait(r, *ctl.atomic_ctr[0], expected, "wait_acks.atomic");
    }
  }

  // --- bcast (core/bcast.cpp) ----------------------------------------------
  void model_pull_bcast(const CommView& view, int r, int epoch) {
    const auto& ms = view.memberships(r);
    const CommView::Membership& top = ms.back();
    GroupCtl& top_ctl = tree_.ctl(top.ctl_id);
    const bool leads_any = ms.size() > 1;
    const BufKind src = result_kind(true);  // leader always leads something
    const BufKind dst = result_kind(leads_any);

    wait(r, *top_ctl.seq[top.leader_slot], kSeq, "pull.seq_wait");
    const std::size_t chunk =
        std::max<std::size_t>(tun_.chunk_for_level(top.level), 1);
    for (std::size_t lo = 0; lo < m_.bytes;) {
      const std::size_t hi = std::min(m_.bytes, lo + chunk);
      announce_wait(r, top, hi, "pull.announce_wait",
                    {range(src, top.leader, lo, hi, epoch)});
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        announce_publish(r, ms[i], hi, "pull.relay",
                         {range(dst, r, 0, hi, epoch)});
      }
      lo = hi;
    }
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) wait_acks(r, ms[i]);
    ack_publish(r, top);
  }

  void model_bcast(const CommView& view, int r, bool striped_op) {
    const auto& ms = view.memberships(r);
    const CommView::Membership& outer = ms.back();
    if (striped_op && outer.level == tree_.n_levels() - 1 &&
        outer.members.size() >= 2) {
      model_bcast_striped(view, r);
      return;
    }
    if (r == m_.root) {
      const BufKind src = result_kind(/*leads_any=*/true);
      for (const auto& m : ms) {
        GroupCtl& ctl = tree_.ctl(m.ctl_id);
        publish(r, *ctl.seq[m.my_slot], kSeq, "bcast.seq");
        announce_publish(r, m, m_.bytes, "bcast.announce",
                         {range(src, r, 0, m_.bytes, 1)});
      }
      for (const auto& m : ms) wait_acks(r, m);
    } else {
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        GroupCtl& ctl = tree_.ctl(ms[i].ctl_id);
        publish(r, *ctl.seq[ms[i].my_slot], kSeq, "bcast.seq");
      }
      model_pull_bcast(view, r, /*epoch=*/1);
    }
  }

  void model_bcast_striped(const CommView& view, int r) {
    const auto& ms = view.memberships(r);
    const CommView::Membership& top = ms.back();
    ShardCtl& sc = tree_.shard_ctl();
    const std::size_t width = top.members.size();
    const std::size_t chunk =
        std::max<std::size_t>(tun_.large_chunk_for_level(top.level), 1);
    const auto stripe_of = [&](std::size_t w) {
      return core::partition(ElemRange{0, m_.bytes}, width, w);
    };

    if (r == m_.root) {
      for (const auto& m : ms) {
        GroupCtl& ctl = tree_.ctl(m.ctl_id);
        publish(r, *ctl.seq[m.my_slot], kSeq, "stripe.seq");
        if (m.ctl_id != top.ctl_id) {
          announce_publish(r, m, m_.bytes, "stripe.root_announce",
                           {range(BufKind::kUser, r, 0, m_.bytes, 1)});
        }
      }
      publish(r, *sc.shard_seq[r], kSeq, "stripe.join",
              {range(BufKind::kUser, r, 0, m_.bytes, 1)});
      publish(r, *sc.stripe_ready[r], m_.bytes, "stripe.root_ready",
              {range(BufKind::kUser, r, 0, m_.bytes, 1)});
      ack_publish(r, top);
      for (const auto& m : ms) {
        if (m.ctl_id != top.ctl_id) wait_acks(r, m);
      }
      wait_acks(r, top);
      return;
    }

    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      GroupCtl& ctl = tree_.ctl(ms[i].ctl_id);
      publish(r, *ctl.seq[ms[i].my_slot], kSeq, "stripe.seq");
    }
    publish(r, *sc.shard_seq[r], kSeq, "stripe.join");

    std::size_t my_pos = width;
    for (std::size_t w = 0; w < width; ++w) {
      if (top.members[w] == r) my_pos = w;
    }
    XHC_CHECK(my_pos < width, "rank missing from top group");
    const ElemRange own = stripe_of(my_pos);
    wait(r, *sc.shard_seq[m_.root], kSeq, "stripe.root_join_wait",
         {range(BufKind::kUser, m_.root, own.lo, own.hi, 1)});

    std::vector<std::size_t> done(width, 0);
    std::size_t announced = 0;
    const auto relay = [&]() {
      std::size_t prefix = 0;
      for (std::size_t w = 0; w < width; ++w) {
        prefix = stripe_of(w).lo + done[w];
        if (done[w] < stripe_of(w).size()) break;
      }
      if (prefix <= announced) return;
      announced = prefix;
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        announce_publish(r, ms[i], prefix, "stripe.relay",
                         {range(BufKind::kUser, r, 0, prefix, 1)});
      }
    };

    for (std::size_t lo = own.lo; lo < own.hi;) {
      const std::size_t hi = std::min(own.hi, lo + chunk);
      publish(r, *sc.stripe_ready[r], hi - own.lo, "stripe.ready",
              {range(BufKind::kUser, r, own.lo, hi, 1)});
      done[my_pos] = hi - own.lo;
      relay();
      lo = hi;
    }

    for (std::size_t w = 0; w < width; ++w) {
      if (w == my_pos) continue;
      const int owner = top.members[w];
      const ElemRange sw = stripe_of(w);
      if (sw.size() == 0) continue;
      if (owner != m_.root) {
        wait(r, *sc.shard_seq[owner], kSeq, "stripe.owner_join_wait");
      }
      for (std::size_t lo = sw.lo; lo < sw.hi;) {
        const std::size_t hi = std::min(sw.hi, lo + chunk);
        wait(r, *sc.stripe_ready[owner], hi - sw.lo, "stripe.ready_wait",
             {range(BufKind::kUser, owner, lo, hi, 1)});
        done[w] = hi - sw.lo;
        relay();
        lo = hi;
      }
    }
    publish(r, *sc.stripe_ready[r], m_.bytes, "stripe.snap",
            {range(BufKind::kUser, r, 0, m_.bytes, 1)});

    for (std::size_t i = 0; i + 1 < ms.size(); ++i) wait_acks(r, ms[i]);
    ack_publish(r, top);
    wait_acks(r, top);
  }

  // --- latency reduce / allreduce (core/allreduce.cpp) ---------------------
  struct PumpState {
    std::vector<std::size_t> scanned;
  };

  void model_pump_own(const CommView& view, int r, PumpState& ps,
                      std::size_t target_bytes) {
    const auto& ms = view.memberships(r);
    const std::size_t target = std::min(target_bytes, m_.bytes);
    const BufKind res = result_kind(/*leads_any=*/true);

    for (std::size_t i = 0; i < ms.size(); ++i) {
      const CommView::Membership& m = ms[i];
      if (!m.is_leader) break;
      std::size_t& pos = ps.scanned[i];
      if (pos >= target) continue;

      GroupCtl& ctl = tree_.ctl(m.ctl_id);
      const core::GroupShape& shape = tree_.shape(m.ctl_id);
      const std::size_t chunk =
          aligned_chunk(tun_.chunk_for_level(m.level), kElem);
      std::vector<int> reducers;
      for (const int j : m.members) {
        if (j != r) reducers.push_back(j);
      }
      const std::size_t n_red = active_reducers(m_.bytes, reducers.size(),
                                                tun_.min_reduce_bytes);
      while (pos < target) {
        const std::size_t lo = pos;
        const std::size_t hi = std::min(m_.bytes, lo + chunk);
        const std::size_t ci = lo / chunk;
        if (!reducers.empty()) {
          const int red = reducers[ci % n_red];
          wait(r, *ctl.reduce_done[shape.slot_of(red)], hi,
               "pump.reduce_done_wait",
               {range(res, r, lo, hi, m.level + 1)});
        }
        pos = hi;
        if (i + 1 < ms.size()) {
          const CommView::Membership& pm = ms[i + 1];
          GroupCtl& pctl = tree_.ctl(pm.ctl_id);
          publish(r, *pctl.reduce_ready[pm.my_slot], pos, "pump.republish",
                  {range(res, r, 0, pos, static_cast<int>(i) + 1)});
        } else {
          for (const auto& m2 : ms) {
            announce_publish(r, m2, pos, "pump.announce",
                             {range(res, r, 0, pos, m_.final_epoch)});
          }
        }
      }
    }
  }

  void model_reduce(const CommView& view, int r, bool deliver_all) {
    const auto& ms = view.memberships(r);
    PumpState ps;
    ps.scanned.assign(ms.size(), 0);
    const BufKind cn = contrib_kind();

    // Step 1: addresses + leaf availability.
    for (const auto& m : ms) {
      GroupCtl& ctl = tree_.ctl(m.ctl_id);
      std::vector<DataRange> avail;
      if (m.level == 0) avail.push_back(range(cn, r, 0, m_.bytes, 0));
      publish(r, *ctl.member_seq[m.my_slot], kSeq, "reduce.member_seq",
              std::move(avail));
      if (m.level == 0) {
        publish(r, *ctl.reduce_ready[m.my_slot], m_.bytes, "reduce.leaf_ready",
                {range(cn, r, 0, m_.bytes, 0)});
      }
      if (m.is_leader) {
        publish(r, *ctl.seq[m.my_slot], kSeq, "reduce.seq");
      }
    }

    const CommView::Membership& top = ms.back();
    if (top.is_leader) {
      model_pump_own(view, r, ps, m_.bytes);
      for (const auto& m : ms) wait_acks(r, m);
      return;
    }

    GroupCtl& ctl = tree_.ctl(top.ctl_id);
    const core::GroupShape& shape = tree_.shape(top.ctl_id);
    std::vector<int> reducers;
    for (const int j : top.members) {
      if (j != top.leader) reducers.push_back(j);
    }
    const std::size_t n_red =
        active_reducers(m_.bytes, reducers.size(), tun_.min_reduce_bytes);
    std::size_t my_idx = reducers.size();
    for (std::size_t i = 0; i < reducers.size(); ++i) {
      if (reducers[i] == r) my_idx = i;
    }
    XHC_CHECK(my_idx < reducers.size(), "rank missing from reducer list");
    const bool active = my_idx < n_red;
    const BufKind lres = result_kind(/*leads_any=*/true);  // leader's target

    wait(r, *ctl.seq[top.leader_slot], kSeq, "reduce.seq_wait");
    if (active) {
      for (std::size_t i = 0; i < reducers.size(); ++i) {
        const int j = reducers[i];
        std::vector<DataRange> needs;
        if (top.level == 0) needs.push_back(range(cn, j, 0, m_.bytes, 0));
        wait(r, *ctl.member_seq[shape.slot_of(j)], kSeq,
             "reduce.member_seq_wait", std::move(needs));
      }
      if (top.level == 0) {
        wait(r, *ctl.member_seq[top.leader_slot], kSeq,
             "reduce.member_seq_wait",
             {range(cn, top.leader, 0, m_.bytes, 0)});
      }
    }

    const std::size_t chunk =
        aligned_chunk(tun_.chunk_for_level(top.level), kElem);
    for (std::size_t lo = 0; lo < m_.bytes;) {
      const std::size_t hi = std::min(m_.bytes, lo + chunk);
      const std::size_t ci = lo / chunk;
      model_pump_own(view, r, ps, hi);
      if (active && ci % n_red == my_idx) {
        if (top.level > 0) {
          wait(r, *ctl.reduce_ready[top.leader_slot], hi,
               "reduce.ready_wait",
               {range(lres, top.leader, lo, hi, top.level)});
        }
        for (std::size_t i = 0; i < reducers.size(); ++i) {
          if (top.level > 0 && reducers[i] != r) {
            wait(r, *ctl.reduce_ready[shape.slot_of(reducers[i])], hi,
                 "reduce.ready_wait",
                 {range(result_kind(true), reducers[i], lo, hi, top.level)});
          }
        }
        publish(r, *ctl.reduce_done[top.my_slot], hi, "reduce.done",
                {range(lres, top.leader, lo, hi, top.level + 1)});
      }
      lo = hi;
    }

    if (deliver_all) {
      model_pull_bcast(view, r, m_.final_epoch);
    } else {
      announce_wait(r, top, m_.bytes, "reduce.release_wait");
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        announce_publish(r, ms[i], m_.bytes, "reduce.release");
      }
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) wait_acks(r, ms[i]);
      ack_publish(r, top);
    }
  }

  // --- reduce-scatter + allgather (core/allreduce.cpp) ---------------------
  void model_rs_ag(const CommView& view, int r) {
    ShardCtl& sc = tree_.shard_ctl();
    const ShardSchedule sched =
        tree_.shard_plan().schedule(r, m_.bytes / kElem, kElem);
    const int n_stages = sched.n_stages();
    const int fin = m_.final_epoch;

    publish(r, *sc.shard_seq[r], kSeq, "rs.join",
            {range(BufKind::kContrib, r, 0, m_.bytes, 0)});

    for (int k = 0; k < n_stages; ++k) {
      const core::ShardStage& st = sched.stages[k];
      for (const int j : st.peers) {
        if (j == r) continue;
        std::vector<DataRange> needs;
        if (k == 0) {
          needs.push_back(range(BufKind::kContrib, j, 0, m_.bytes, 0));
        }
        wait(r, *sc.shard_seq[j], kSeq, "rs.peer_join_wait",
             std::move(needs));
      }
      const std::size_t chunk_elems =
          std::max<std::size_t>(tun_.large_chunk_for_level(k) / kElem, 1);
      for (std::size_t lo = st.range.lo; lo < st.range.hi;) {
        const std::size_t hi = std::min(st.range.hi, lo + chunk_elems);
        if (k > 0) {
          for (const int j : st.peers) {
            if (j == r) continue;
            wait(r, *sc.prog[j],
                 sched.rs_slot(k - 1) + (hi - st.parent.lo) * kElem,
                 "rs.src_wait",
                 {range(BufKind::kUser, j, lo * kElem, hi * kElem, k)});
          }
        }
        publish(r, *sc.prog[r],
                sched.rs_slot(k) + (hi - st.range.lo) * kElem, "rs.prog",
                {range(BufKind::kUser, r, st.range.lo * kElem, hi * kElem,
                       k + 1)});
        lo = hi;
      }
      publish(r, *sc.prog[r], sched.rs_slot(k + 1), "rs.snap",
              {range(BufKind::kUser, r, st.range.lo * kElem,
                     st.range.hi * kElem, k + 1)});
    }

    for (int u = n_stages - 1; u >= 0; --u) {
      const core::ShardStage& st = sched.stages[u];
      for (std::size_t i = 0; i < st.peers.size(); ++i) {
        const int j = st.peers[i];
        if (j == r) continue;
        const ElemRange pr = core::partition(st.parent, st.peers.size(), i);
        if (pr.size() == 0) continue;
        const std::size_t chunk_elems =
            std::max<std::size_t>(tun_.large_chunk_for_level(u) / kElem, 1);
        if (u < n_stages - 1) {
          wait(r, *sc.prog[j], sched.ag_slot(u), "ag.piece_wait",
               {range(BufKind::kUser, j, pr.lo * kElem, pr.hi * kElem, fin)});
        }
        for (std::size_t lo = pr.lo; lo < pr.hi;) {
          const std::size_t hi = std::min(pr.hi, lo + chunk_elems);
          if (u == n_stages - 1) {
            wait(r, *sc.prog[j],
                 sched.rs_slot(u) + (hi - pr.lo) * kElem, "ag.piece_wait",
                 {range(BufKind::kUser, j, lo * kElem, hi * kElem, fin)});
          }
          lo = hi;
        }
      }
      publish(r, *sc.prog[r], sched.ag_slot(u) + m_.bytes, "ag.prog",
              {range(BufKind::kUser, r, st.parent.lo * kElem,
                     st.parent.hi * kElem, fin)});
    }

    const auto& ms = view.memberships(r);
    const CommView::Membership& top = ms.back();
    if (top.is_leader) {
      for (const auto& m : ms) wait_acks(r, m);
      for (const auto& m : ms) {
        announce_publish(r, m, m_.bytes, "rs_ag.release",
                         {range(BufKind::kUser, r, 0, m_.bytes, fin)});
      }
    } else {
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) wait_acks(r, ms[i]);
      ack_publish(r, top);
      announce_wait(r, top, m_.bytes, "rs_ag.release_wait");
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        announce_publish(r, ms[i], m_.bytes, "rs_ag.release",
                         {range(BufKind::kUser, r, 0, m_.bytes, fin)});
      }
    }
  }

  // --- barrier (core/xhc_component.cpp) ------------------------------------
  void model_barrier(const CommView& view, int r) {
    const auto& ms = view.memberships(r);
    for (const auto& m : ms) {
      GroupCtl& ctl = tree_.ctl(m.ctl_id);
      const core::GroupShape& shape = tree_.shape(m.ctl_id);
      if (m.is_leader) {
        for (const int j : m.members) {
          if (j == r) continue;
          wait(r, *ctl.member_seq[shape.slot_of(j)], kSeq,
               "barrier.arrive_wait");
        }
      } else {
        publish(r, *ctl.member_seq[m.my_slot], kSeq, "barrier.arrive");
      }
    }
    const CommView::Membership& top = ms.back();
    if (top.is_leader) {
      for (const auto& m : ms) {
        announce_publish(r, m, 1, "barrier.release");
      }
    } else {
      announce_wait(r, top, 1, "barrier.release_wait");
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        announce_publish(r, ms[i], 1, "barrier.release");
      }
    }
  }

  core::CommTree& tree_;
  const coll::Tuning& tun_;
  bool cico_ = false;
  ScheduleModel m_;
};

}  // namespace

ScheduleModel extract_schedule(core::XhcComponent& comp, Op op,
                               std::size_t bytes, int root) {
  return Extractor(comp, op, bytes, root).run();
}

}  // namespace xhc::check
