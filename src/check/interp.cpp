#include "check/interp.h"

#include <map>
#include <mutex>
#include <new>
#include <utility>

#include "sim/sim_machine.h"
#include "util/check.h"

namespace xhc::check {

namespace {

constexpr std::size_t kMaxErrors = 32;

/// Coverage published so far, shared across simulated ranks. The mutex
/// covers the threads backend; under fibers it is uncontended.
struct Coverage {
  std::mutex mu;
  std::map<int, std::vector<DataRange>> by_buf;
  std::vector<std::string> errors;

  void publish(const std::vector<DataRange>& writes) {
    std::lock_guard<std::mutex> lock(mu);
    for (const DataRange& w : writes) by_buf[w.buf].push_back(w);
  }

  void require(const ScheduleModel& m, int rank, const Event& e) {
    std::lock_guard<std::mutex> lock(mu);
    for (const DataRange& need : e.needs) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
      auto it = by_buf.find(need.buf);
      if (it != by_buf.end()) {
        for (const DataRange& w : it->second) {
          if (w.epoch >= need.epoch) got.emplace_back(w.lo, w.hi);
        }
      }
      std::sort(got.begin(), got.end());
      std::uint64_t pos = need.lo;
      for (const auto& [lo, hi] : got) {
        if (lo > pos) break;
        pos = std::max(pos, hi);
      }
      if (pos < need.hi && errors.size() < kMaxErrors) {
        errors.push_back(
            "r" + std::to_string(rank) + " " + e.site + " resumed needing " +
            m.buf_name(need.buf) + " [" + std::to_string(need.lo) + "," +
            std::to_string(need.hi) + ") epoch " + std::to_string(need.epoch) +
            "; published coverage reaches " + std::to_string(pos));
      }
    }
  }
};

}  // namespace

InterpResult run_model(const ScheduleModel& m, sim::SimMachine& machine,
                       const verify::Ledger& names,
                       sim::VirtualScheduler::PickHook hook,
                       sim::AccessSink* sink) {
  XHC_REQUIRE(machine.n_ranks() == m.n_ranks, "machine has ",
              machine.n_ranks(), " ranks, model needs ", m.n_ranks);

  // Fresh flags, one cache line each, in first-appearance order — the run
  // must not touch whatever component the model was extracted from
  // (mutants would corrupt live protocol state).
  std::map<const mach::Flag*, mach::Flag*> fresh;
  std::vector<const mach::Flag*> order;
  for (const auto& stream : m.per_rank) {
    for (const Event& e : stream) {
      if (fresh.emplace(e.flag, nullptr).second) order.push_back(e.flag);
    }
  }
  mach::Buffer lines(machine, 0, order.size() * 64);
  // The allocator reuses addresses across run_model calls; any crossing a
  // previous occupant recorded would satisfy this run's waits instantly.
  machine.forget_flag_history(lines.get(), order.size() * 64);
  for (std::size_t i = 0; i < order.size(); ++i) {
    fresh[order[i]] = new (lines.bytes() + i * 64) mach::Flag();
  }

  // The run's own discipline ledger carries the original registration over
  // to the fresh addresses and records instead of throwing. The machine's
  // built-in ledger gets the fresh flags whitelisted as kShared so checked
  // builds don't abort mid-run on a deliberately broken model; violations
  // are this ledger's job here.
  verify::Ledger own;
  own.set_abort_on_violation(false);
  for (const auto& [old_f, new_f] : fresh) {
    const std::string name = names.flag_name(old_f);
    const auto policy =
        names.flag_policy(old_f).value_or(verify::WriterPolicy::kFixed);
    own.register_flag(new_f, name.empty() ? "interp" : name, policy);
    machine.verify_ledger().register_flag(new_f, "interp.shadow",
                                          verify::WriterPolicy::kShared);
  }

  Coverage cov;
  InterpResult res;
  machine.set_pick_hook(std::move(hook));
  machine.set_access_sink(sink);
  try {
    machine.run([&](mach::Ctx& ctx) {
      const int r = ctx.rank();
      for (const Event& e : m.per_rank[static_cast<std::size_t>(r)]) {
        mach::Flag& f = *fresh[e.flag];
        switch (e.kind) {
          case EvKind::kPublish:
            cov.publish(e.writes);
            own.on_store(&f, r, e.value);
            ctx.flag_store(f, e.value);
            break;
          case EvKind::kWait:
            ctx.flag_wait_ge(f, e.value);
            cov.require(m, r, e);
            break;
          case EvKind::kRmw:
            own.on_rmw(&f, r, ctx.fetch_add(f, e.value));
            break;
        }
      }
    });
    res.completed = true;
  } catch (const std::exception& e) {
    const std::string what = e.what();
    res.deadlock = what.find("deadlock") != std::string::npos;
    res.errors.push_back(what);
  }
  machine.set_pick_hook(nullptr);
  machine.set_access_sink(nullptr);

  res.violations = own.violations();
  for (std::string& err : cov.errors) res.errors.push_back(std::move(err));
  machine.verify_ledger().forget_range(lines.get(), order.size() * 64);
  return res;
}

}  // namespace xhc::check
