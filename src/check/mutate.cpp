#include "check/mutate.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/prng.h"
#include "verify/verify.h"

namespace xhc::check {

const char* to_string(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kThresholdLow:
      return "threshold-low";
    case MutationKind::kThresholdHigh:
      return "threshold-high";
    case MutationKind::kDroppedPublish:
      return "dropped-publish";
    case MutationKind::kSwappedStageOrder:
      return "swapped-stage-order";
    case MutationKind::kWidenedWriter:
      return "widened-writer";
  }
  return "?";
}

bool MutantInfo::killed_by(const Finding& f) const {
  if (std::find(expect.begin(), expect.end(), f.property) == expect.end()) {
    return false;
  }
  if (!flag.empty() && f.flag != flag) return false;
  if (rank >= 0 && f.rank != rank) return false;
  return true;
}

namespace {

struct Ref {
  int rank = -1;
  int idx = -1;
};

Event& at(ScheduleModel& m, Ref ref) {
  return m.per_rank[static_cast<std::size_t>(ref.rank)]
                   [static_cast<std::size_t>(ref.idx)];
}

struct Use {
  std::vector<Ref> pubs;  ///< (rank, idx) order = writer program order
  std::vector<Ref> rmws;
  verify::WriterPolicy policy = verify::WriterPolicy::kFixed;
  std::string name;
};

std::map<const mach::Flag*, Use> index_flags(const ScheduleModel& m,
                                             const verify::Ledger& names) {
  std::map<const mach::Flag*, Use> out;
  for (int r = 0; r < m.n_ranks; ++r) {
    const auto& stream = m.per_rank[static_cast<std::size_t>(r)];
    for (int i = 0; i < static_cast<int>(stream.size()); ++i) {
      const Event& e = stream[static_cast<std::size_t>(i)];
      Use& u = out[e.flag];
      if (u.name.empty()) {
        u.name = names.flag_name(e.flag);
        u.policy = names.flag_policy(e.flag).value_or(
            verify::WriterPolicy::kFixed);
      }
      if (e.kind == EvKind::kPublish) u.pubs.push_back(Ref{r, i});
      if (e.kind == EvKind::kRmw) u.rmws.push_back(Ref{r, i});
    }
  }
  return out;
}

/// True when `need` lies inside the union of the coverage rank `writer`
/// has declared up to and including event `upto` — the same rule the
/// analyzer applies, reused here so threshold-low candidates are only
/// sites where the lowered wait genuinely outruns the data.
bool covered(const ScheduleModel& m, int writer, int upto,
             const DataRange& need) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  const auto& stream = m.per_rank[static_cast<std::size_t>(writer)];
  for (int i = 0; i <= upto; ++i) {
    const Event& e = stream[static_cast<std::size_t>(i)];
    if (e.kind != EvKind::kPublish) continue;
    for (const DataRange& wr : e.writes) {
      if (wr.buf == need.buf && wr.epoch >= need.epoch) {
        got.emplace_back(wr.lo, wr.hi);
      }
    }
  }
  std::sort(got.begin(), got.end());
  std::uint64_t pos = need.lo;
  for (const auto& [lo, hi] : got) {
    if (lo > pos) break;
    pos = std::max(pos, hi);
  }
  return pos >= need.hi;
}

/// Deterministic scan of every wait event, innermost loop over ranks then
/// program order, feeding the per-kind candidate filters below.
template <typename Fn>
void each_wait(ScheduleModel& m, Fn&& fn) {
  for (int r = 0; r < m.n_ranks; ++r) {
    const int n =
        static_cast<int>(m.per_rank[static_cast<std::size_t>(r)].size());
    for (int i = 0; i < n; ++i) {
      if (at(m, Ref{r, i}).kind == EvKind::kWait) fn(Ref{r, i});
    }
  }
}

MutantInfo threshold_low(ScheduleModel& m, std::uint64_t seed,
                         std::map<const mach::Flag*, Use>& flags) {
  std::vector<Ref> cands;
  each_wait(m, [&](Ref w) {
    const Event& we = at(m, w);
    if (we.needs.empty()) return;
    const Use& u = flags[we.flag];
    if (u.policy == verify::WriterPolicy::kShared || u.pubs.empty()) return;
    const Event& fp = at(m, u.pubs.front());
    if (fp.value >= we.value) return;
    for (const DataRange& need : we.needs) {
      if (!covered(m, u.pubs.front().rank, u.pubs.front().idx, need)) {
        cands.push_back(w);
        return;
      }
    }
  });
  MutantInfo info;
  info.kind = MutationKind::kThresholdLow;
  if (cands.empty()) return info;
  const Ref w = cands[util::SplitMix64(seed).next_below(cands.size())];
  Event& we = at(m, w);
  const Use& u = flags[we.flag];
  const std::uint64_t old = we.value;
  we.value = at(m, u.pubs.front()).value;
  info.applied = true;
  info.flag = u.name;
  info.rank = w.rank;
  info.expect = {Property::kCoverage, Property::kSlotReuse};
  info.detail = "lowered " + std::string(we.site) + " threshold on " +
                u.name + " from " + std::to_string(old) + " to " +
                std::to_string(we.value);
  return info;
}

MutantInfo threshold_high(ScheduleModel& m, std::uint64_t seed,
                          std::map<const mach::Flag*, Use>& flags) {
  std::vector<Ref> cands;
  each_wait(m, [&](Ref w) { cands.push_back(w); });
  MutantInfo info;
  info.kind = MutationKind::kThresholdHigh;
  if (cands.empty()) return info;
  const Ref w = cands[util::SplitMix64(seed).next_below(cands.size())];
  Event& we = at(m, w);
  const Use& u = flags[we.flag];
  std::uint64_t reach = 0;
  if (u.policy == verify::WriterPolicy::kShared) {
    for (const Ref p : u.rmws) reach += at(m, p).value;
  } else {
    for (const Ref p : u.pubs) reach = std::max(reach, at(m, p).value);
  }
  const std::uint64_t old = we.value;
  we.value = reach + 1;
  info.applied = true;
  info.flag = u.name;
  info.rank = w.rank;
  info.expect = {Property::kUnreachableThreshold};
  info.detail = "raised " + std::string(we.site) + " threshold on " + u.name +
                " from " + std::to_string(old) + " to " +
                std::to_string(we.value);
  return info;
}

MutantInfo dropped_publish(ScheduleModel& m, std::uint64_t seed,
                           std::map<const mach::Flag*, Use>& flags) {
  std::vector<Ref> cands;
  each_wait(m, [&](Ref w) {
    const Event& we = at(m, w);
    const Use& u = flags[we.flag];
    if (u.policy == verify::WriterPolicy::kShared) return;
    for (const Ref p : u.pubs) {
      if (at(m, p).value >= we.value) {
        cands.push_back(w);
        return;
      }
    }
  });
  MutantInfo info;
  info.kind = MutationKind::kDroppedPublish;
  if (cands.empty()) return info;
  const Ref w = cands[util::SplitMix64(seed).next_below(cands.size())];
  const Event& we = at(m, w);
  const mach::Flag* flag = we.flag;
  const std::uint64_t threshold = we.value;
  const Use& u = flags[flag];
  info.applied = true;
  info.flag = u.name;
  info.rank = w.rank;
  info.expect = {Property::kUnreachableThreshold};
  info.detail = "dropped every publish >= " + std::to_string(threshold) +
                " on " + u.name;
  // Erase highest index first so earlier refs stay valid; all publishes of
  // a single-writer flag live in one rank's stream.
  std::vector<Ref> drop;
  for (const Ref p : u.pubs) {
    if (at(m, p).value >= threshold) drop.push_back(p);
  }
  std::sort(drop.begin(), drop.end(), [](const Ref& a, const Ref& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.idx > b.idx;
  });
  for (const Ref p : drop) {
    auto& stream = m.per_rank[static_cast<std::size_t>(p.rank)];
    stream.erase(stream.begin() + p.idx);
  }
  return info;
}

MutantInfo swapped_stage_order(ScheduleModel& m, std::uint64_t seed,
                               std::map<const mach::Flag*, Use>& flags) {
  // Candidate: publish P (rank r) that is the ONLY satisfier of wait W
  // (rank q != r), with a later wait V of r whose earliest satisfier is a
  // publish of q issued after W. Moving P behind V makes the two ranks
  // wait on each other.
  struct Cand {
    Ref pub;
    Ref wait;
  };
  std::vector<Cand> cands;
  each_wait(m, [&](Ref w) {
    const Event& we = at(m, w);
    const Use& u = flags[we.flag];
    if (u.policy == verify::WriterPolicy::kShared) return;
    Ref p{-1, -1};
    int n_sat = 0;
    for (const Ref cand : u.pubs) {
      if (at(m, cand).value >= we.value) {
        p = cand;
        ++n_sat;
      }
    }
    if (n_sat != 1 || p.rank == w.rank) return;
    const int r = p.rank;
    const int q = w.rank;
    const auto& rs = m.per_rank[static_cast<std::size_t>(r)];
    for (int i = p.idx + 1; i < static_cast<int>(rs.size()); ++i) {
      const Event& ve = rs[static_cast<std::size_t>(i)];
      if (ve.kind != EvKind::kWait || ve.flag == we.flag) continue;
      const Use& vu = flags[ve.flag];
      if (vu.policy == verify::WriterPolicy::kShared) continue;
      for (const Ref vp : vu.pubs) {
        if (at(m, vp).value < ve.value) continue;
        if (vp.rank == q && vp.idx > w.idx) cands.push_back(Cand{p, w});
        break;  // earliest satisfier decided
      }
      if (!cands.empty() && cands.back().pub.rank == p.rank &&
          cands.back().pub.idx == p.idx) {
        return;  // one candidate per W is enough
      }
    }
  });
  MutantInfo info;
  info.kind = MutationKind::kSwappedStageOrder;
  if (cands.empty()) return info;
  const Cand c = cands[util::SplitMix64(seed).next_below(cands.size())];
  auto& stream = m.per_rank[static_cast<std::size_t>(c.pub.rank)];
  Event moved = std::move(stream[static_cast<std::size_t>(c.pub.idx)]);
  const Use& u = flags[moved.flag];
  info.applied = true;
  info.expect = {Property::kWaitCycle};
  info.detail = "deferred r" + std::to_string(c.pub.rank) + " " +
                std::string(moved.site) + " publish of " + u.name +
                " past its dependent waits";
  stream.erase(stream.begin() + c.pub.idx);
  stream.push_back(std::move(moved));
  return info;
}

MutantInfo widened_writer(ScheduleModel& m, std::uint64_t seed,
                          std::map<const mach::Flag*, Use>& flags) {
  std::vector<Ref> cands;
  for (int r = 0; r < m.n_ranks; ++r) {
    const int n =
        static_cast<int>(m.per_rank[static_cast<std::size_t>(r)].size());
    for (int i = 0; i < n; ++i) {
      const Event& e = at(m, Ref{r, i});
      if (e.kind != EvKind::kPublish) continue;
      if (flags[e.flag].policy == verify::WriterPolicy::kShared) continue;
      cands.push_back(Ref{r, i});
    }
  }
  MutantInfo info;
  info.kind = MutationKind::kWidenedWriter;
  if (cands.empty()) return info;
  util::SplitMix64 rng(seed);
  const Ref p = cands[rng.next_below(cands.size())];
  const int other =
      (p.rank + 1 +
       static_cast<int>(rng.next_below(
           static_cast<std::uint64_t>(m.n_ranks - 1)))) %
      m.n_ranks;
  Event dup = at(m, p);
  const Use& u = flags[dup.flag];
  const int owner_pubs = static_cast<int>(std::count_if(
      u.pubs.begin(), u.pubs.end(),
      [&](const Ref ref) { return ref.rank == p.rank; }));
  info.applied = true;
  info.flag = u.name;
  // The analyzer blames the minority writer (fewest publishes, lowest rank
  // on a tie); predict the same rank here.
  info.rank = owner_pubs > 1 ? other : std::min(p.rank, other);
  info.expect = {Property::kSingleWriter};
  info.detail = "duplicated " + std::string(dup.site) + " publish of " +
                u.name + " into rank " + std::to_string(other);
  m.per_rank[static_cast<std::size_t>(other)].push_back(std::move(dup));
  return info;
}

}  // namespace

MutantInfo apply_mutation(ScheduleModel& m, MutationKind kind,
                          std::uint64_t seed, const verify::Ledger& names) {
  auto flags = index_flags(m, names);
  switch (kind) {
    case MutationKind::kThresholdLow:
      return threshold_low(m, seed, flags);
    case MutationKind::kThresholdHigh:
      return threshold_high(m, seed, flags);
    case MutationKind::kDroppedPublish:
      return dropped_publish(m, seed, flags);
    case MutationKind::kSwappedStageOrder:
      return swapped_stage_order(m, seed, flags);
    case MutationKind::kWidenedWriter:
      return widened_writer(m, seed, flags);
  }
  return MutantInfo{};
}

}  // namespace xhc::check
