// Mutation self-test harness: seeded protocol defects for the analyzer.
//
// Confidence in a verifier comes from watching it fail things. Each
// mutation below injects one classic synchronization bug into a
// ScheduleModel — the kind a refactor of core/ could realistically
// introduce — and reports exactly which Finding the analyzer must produce
// (property, flag, rank). The mutation tests (tests/test_check.cpp) then
// assert a 100% kill score: every applied mutant yields the predicted
// finding. Several of these bugs are invisible to the runtime suite under
// the default schedule (an off-by-one threshold that the default
// interleaving happens to tolerate); the static pass must catch them
// anyway.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/analyzer.h"
#include "check/schedule_model.h"

namespace xhc::verify {
class Ledger;
}

namespace xhc::check {

enum class MutationKind {
  /// Lower a wait threshold to the flag's first published value: the wait
  /// releases before the payload it reads is covered (off-by-one /
  /// premature-read bug). Expected: coverage (or slot-reuse on the slotted
  /// shard timelines).
  kThresholdLow,
  /// Raise a wait threshold past every publish: the wait can never be
  /// satisfied (forgotten final publish / wrong count). Expected:
  /// unreachable-threshold.
  kThresholdHigh,
  /// Delete every publish that satisfies a chosen wait (dropped release
  /// store). Expected: unreachable-threshold.
  kDroppedPublish,
  /// Move a publish that another rank's wait uniquely depends on to the end
  /// of its writer's stream, after a wait of the writer that transitively
  /// depends back on the stalled rank (stage reordering). Expected:
  /// wait-cycle (deadlock).
  kSwappedStageOrder,
  /// Duplicate a publish into a second rank's stream (writer-discipline
  /// breach). Expected: single-writer, attributed to the minority writer.
  kWidenedWriter,
};
const char* to_string(MutationKind k) noexcept;

/// What the analyzer is expected to report for one applied mutant.
struct MutantInfo {
  MutationKind kind = MutationKind::kThresholdLow;
  bool applied = false;  ///< false: the model offers no candidate site
  /// Expected finding coordinates; empty flag / rank -1 mean "any"
  /// (kSwappedStageOrder: the cycle's anchor wait is schedule-dependent).
  std::string flag;
  int rank = -1;
  /// Acceptable properties for the kill, primary first.
  std::vector<Property> expect;
  std::string detail;  ///< human-readable description of the injected bug

  /// True when `f` matches this mutant's expectation.
  bool killed_by(const Finding& f) const;
};

/// Applies one seeded mutation of `kind` to `m` in place. Candidate sites
/// are enumerated in deterministic (rank, program-index) order and the
/// seed selects among them, so every (model, kind, seed) triple names one
/// reproducible bug. `names` resolves flag names/policies for candidate
/// filtering and the expectation. Returns applied=false (model untouched)
/// when the schedule has no site for this bug class.
MutantInfo apply_mutation(ScheduleModel& m, MutationKind kind,
                          std::uint64_t seed, const verify::Ledger& names);

}  // namespace xhc::check
