#include "smsc/mechanism.h"

#include "util/check.h"

namespace xhc::smsc {

const char* to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kXpmem:
      return "xpmem";
    case Mechanism::kCma:
      return "cma";
    case Mechanism::kKnem:
      return "knem";
    case Mechanism::kCico:
      return "cico";
  }
  return "?";
}

Mechanism mechanism_from(std::string_view name) {
  if (name == "xpmem") return Mechanism::kXpmem;
  if (name == "cma") return Mechanism::kCma;
  if (name == "knem") return Mechanism::kKnem;
  if (name == "cico" || name == "none") return Mechanism::kCico;
  XHC_REQUIRE(false, "unknown mechanism '", std::string(name), "'");
  return Mechanism::kCico;
}

Mechanism next_mechanism(Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kXpmem:
      return Mechanism::kCma;
    case Mechanism::kCma:
    case Mechanism::kKnem:
    case Mechanism::kCico:
      return Mechanism::kCico;
  }
  return Mechanism::kCico;
}

MechanismCosts costs_for(Mechanism m) {
  constexpr double kUs = 1e-6;
  MechanismCosts c;
  switch (m) {
    case Mechanism::kXpmem:
      c.expose = 0.4 * kUs;
      c.attach_syscall = 1.5 * kUs;
      c.page_fault = 0.5 * kUs;
      c.detach = 0.9 * kUs;
      c.cache_lookup = 0.15 * kUs;
      c.mapping = true;
      break;
    case Mechanism::kCma:
      // process_vm_readv: every copy traverses the kernel, pins the source
      // pages and takes the remote mm lock.
      c.op_syscall = 1.5 * kUs;
      c.op_per_page = 0.10 * kUs;
      c.lock_coef = 0.08;
      break;
    case Mechanism::kKnem:
      // Cookie-based declared regions make per-copy page handling cheaper
      // than CMA, but the per-operation kernel path remains.
      c.op_syscall = 1.0 * kUs;
      c.op_per_page = 0.035 * kUs;
      c.lock_coef = 0.05;
      break;
    case Mechanism::kCico:
      break;
  }
  return c;
}

}  // namespace xhc::smsc
