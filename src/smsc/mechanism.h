// Single-copy mechanism models (paper §II-B, §III-C, Fig. 3).
//
// XPMEM maps a peer's memory once and then allows plain load/store access —
// attach is expensive (syscall + page-table population) but amortizable via
// a registration cache, and reductions can read peer buffers directly.
// CMA and KNEM copy through the kernel on *every* operation: they pay
// per-operation syscall and page-pinning costs and suffer mm-lock contention
// that grows with node occupancy ([28]); they also cannot reduce in place.
// CICO is the no-mechanism baseline: data bounces through shared segments.
#pragma once

#include <cstddef>
#include <string_view>

namespace xhc::smsc {

enum class Mechanism {
  kXpmem,
  kCma,
  kKnem,
  kCico,  ///< no single-copy support (copy-in-copy-out only)
};

const char* to_string(Mechanism m);
Mechanism mechanism_from(std::string_view name);

/// Cost model of one mechanism. All times in seconds; charged through
/// Ctx::charge (no-ops on the real machine, where the mechanisms degenerate
/// to pointer sharing between threads).
struct MechanismCosts {
  // One-time / cached path (XPMEM).
  double expose = 0.0;         ///< xpmem_make on the owner
  double attach_syscall = 0.0; ///< xpmem_attach
  double page_fault = 0.0;     ///< first-touch fault per 4 KiB page
  double detach = 0.0;         ///< xpmem_detach
  double cache_lookup = 0.0;   ///< registration-cache hit cost (§III-D)

  // Per-operation path (CMA / KNEM).
  double op_syscall = 0.0;     ///< per-copy syscall entry
  double op_per_page = 0.0;    ///< per-4KiB page pinning per copy
  double lock_coef = 0.0;      ///< kernel mm-lock contention: the per-page
                               ///< cost scales by (1 + lock_coef*(ranks-1))

  /// True when the mechanism supports mapping (and therefore registration
  /// caching and in-place reduction).
  bool mapping = false;
};

MechanismCosts costs_for(Mechanism m);

/// Degradation order on persistent mapping failure (DESIGN.md § Fault
/// injection & degradation): XPMEM falls back to CMA's per-operation kernel
/// copies; CMA and KNEM fall back to the CICO bounce; CICO is terminal.
Mechanism next_mechanism(Mechanism m) noexcept;

/// Cost of bouncing one operation through a shared CICO segment when an
/// owner has been degraded below every kernel mechanism: two full copies
/// (in + out) at shared-memory bandwidth plus a per-op constant.
inline constexpr double kCicoBounceBase = 0.3e-6;
inline constexpr double kCicoBouncePerByte = 2.0 / 8.0e9;

inline constexpr std::size_t kPageSize = 4096;

inline std::size_t pages_of(std::size_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

}  // namespace xhc::smsc
