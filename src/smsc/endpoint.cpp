#include "smsc/endpoint.h"

#include "fault/fault.h"
#include "util/check.h"

namespace xhc::smsc {

Endpoint::Endpoint(Mechanism mech, bool use_reg_cache,
                   std::size_t cache_capacity)
    : mech_(mech),
      costs_(costs_for(mech)),
      use_reg_cache_(use_reg_cache),
      cache_(cache_capacity) {}

Mechanism Endpoint::effective_mechanism(int owner) const noexcept {
  auto it = degraded_.find(owner);
  return it == degraded_.end() ? mech_ : it->second;
}

void Endpoint::book(obs::Counter c, std::uint64_t n) {
  if (obs_ != nullptr) obs_->metrics().add(obs_rank_, c, n);
}

void Endpoint::expose(mach::Ctx& ctx, const void* buf, std::size_t len) {
  if (!costs_.mapping) return;
  const std::pair<int, const void*> key{ctx.rank(), buf};
  auto it = exposed_.find(key);
  if (it != exposed_.end() && it->second >= len) return;
  if (fault_ != nullptr) {
    // An xpmem_make failure is transient (resource pressure); retry a
    // bounded number of times, paying the syscall each attempt. If it keeps
    // failing, the readers' attaches will fail and degrade the chain there.
    int tries = 0;
    while (tries < 3 && fault_->expose_fails(ctx.rank())) {
      ctx.charge(costs_.expose);
      book(obs::Counter::kFaultExposeFails, 1);
      ++tries;
    }
  }
  exposed_[key] = len;
  ctx.charge(costs_.expose);
}

void Endpoint::charge_attach(mach::Ctx& ctx, std::size_t len) {
  ctx.charge(costs_.attach_syscall +
             static_cast<double>(pages_of(len)) * costs_.page_fault);
}

void Endpoint::degrade(mach::Ctx& ctx, int owner, int chain_depth,
                       std::size_t len) {
  // The failed attach still cost a syscall, and every cached mapping of
  // this owner is now invalid.
  ctx.charge(costs_.attach_syscall);
  const std::size_t evicted = cache_.erase_owner(owner);
  book(obs::Counter::kRegCacheEvictions, evicted);
  Mechanism target = next_mechanism(mech_);
  if (chain_depth >= 2) target = Mechanism::kCico;
  degraded_[owner] = target;
  book(obs::Counter::kFaultAttachFails, 1);
  book(obs::Counter::kFaultFallbacks, 1);
  XHC_TRACE(obs_ != nullptr ? &obs_->trace() : nullptr, ctx, "fault",
            "attach.fallback", len);
}

const void* Endpoint::attach(mach::Ctx& ctx, int owner, const void* buf,
                             std::size_t len) {
  XHC_REQUIRE(buf != nullptr, "attach of null buffer");
  if (!costs_.mapping || degraded_.find(owner) != degraded_.end()) {
    // CMA/KNEM/CICO (and degraded owners) have no mapping concept; per-op
    // costs apply instead. Threads share the address space, so the peer
    // buffer stays directly addressable.
    return buf;
  }
  if (fault_ != nullptr) {
    const int depth = fault_->attach_failure_depth(ctx.rank(), owner);
    if (depth > 0) {
      degrade(ctx, owner, depth, len);
      return buf;
    }
  }
  if (obs_ != nullptr) {
    obs_->metrics().add(obs_rank_, obs::Counter::kAttachBytes, len);
  }
  if (use_reg_cache_) {
    const bool forced_miss =
        fault_ != nullptr && fault_->force_reg_miss(ctx.rank(), owner);
    if (!forced_miss && cache_.lookup(owner, buf, len)) {
      ctx.charge(costs_.cache_lookup);
      if (obs_ != nullptr) {
        obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheHits, 1);
      }
    } else {
      if (forced_miss) {
        cache_.count_forced_miss();
        book(obs::Counter::kFaultRegMissForced, 1);
      }
      XHC_TRACE(obs_ != nullptr ? &obs_->trace() : nullptr, ctx, "smsc",
                "attach.miss", len);
      charge_attach(ctx, len);
      const std::size_t evicted = cache_.insert(owner, buf, len);
      if (obs_ != nullptr) {
        obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheMisses, 1);
        if (evicted != 0) {
          obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheEvictions,
                              evicted);
        }
      }
    }
  } else {
    // Fig. 3 dashed: the mapping is created and torn down every time.
    charge_attach(ctx, len);
    ctx.charge(costs_.detach);
  }
  return buf;
}

void* Endpoint::attach_mut(mach::Ctx& ctx, int owner, void* buf,
                           std::size_t len) {
  return const_cast<void*>(
      attach(ctx, owner, static_cast<const void*>(buf), len));
}

void Endpoint::charge_op(mach::Ctx& ctx, std::size_t bytes, int node_ranks,
                         int owner) {
  MechanismCosts costs = costs_;
  if (owner >= 0) {
    auto it = degraded_.find(owner);
    if (it != degraded_.end()) {
      if (it->second == Mechanism::kCico) {
        // Bounce through a shared segment: two copies plus per-op setup.
        ctx.charge(kCicoBounceBase +
                   static_cast<double>(bytes) * kCicoBouncePerByte);
        return;
      }
      costs = costs_for(it->second);
    }
  }
  if (costs.op_syscall == 0.0 && costs.op_per_page == 0.0) return;
  const double contention =
      1.0 + costs.lock_coef * static_cast<double>(node_ranks - 1);
  ctx.charge(costs.op_syscall +
             static_cast<double>(pages_of(bytes)) * costs.op_per_page *
                 contention);
}

void Endpoint::detach_all(mach::Ctx& ctx) {
  if (!costs_.mapping) return;
  ctx.charge(static_cast<double>(cache_.size()) * costs_.detach);
  const std::size_t evicted = cache_.clear();
  if (obs_ != nullptr) {
    obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheEvictions, evicted);
  }
}

}  // namespace xhc::smsc
