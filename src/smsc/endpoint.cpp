#include "smsc/endpoint.h"

#include "util/check.h"

namespace xhc::smsc {

Endpoint::Endpoint(Mechanism mech, bool use_reg_cache)
    : mech_(mech), costs_(costs_for(mech)), use_reg_cache_(use_reg_cache) {}

void Endpoint::expose(mach::Ctx& ctx, const void* buf, std::size_t len) {
  if (!costs_.mapping) return;
  const std::pair<int, const void*> key{ctx.rank(), buf};
  auto it = exposed_.find(key);
  if (it != exposed_.end() && it->second >= len) return;
  exposed_[key] = len;
  ctx.charge(costs_.expose);
}

void Endpoint::charge_attach(mach::Ctx& ctx, std::size_t len) {
  ctx.charge(costs_.attach_syscall +
             static_cast<double>(pages_of(len)) * costs_.page_fault);
}

const void* Endpoint::attach(mach::Ctx& ctx, int owner, const void* buf,
                             std::size_t len) {
  XHC_REQUIRE(buf != nullptr, "attach of null buffer");
  if (!costs_.mapping) {
    // CMA/KNEM/CICO have no mapping concept; per-op costs apply instead.
    return buf;
  }
  if (obs_ != nullptr) {
    obs_->metrics().add(obs_rank_, obs::Counter::kAttachBytes, len);
  }
  if (use_reg_cache_) {
    if (cache_.lookup(owner, buf, len)) {
      ctx.charge(costs_.cache_lookup);
      if (obs_ != nullptr) {
        obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheHits, 1);
      }
    } else {
      XHC_TRACE(obs_ != nullptr ? &obs_->trace() : nullptr, ctx, "smsc",
                "attach.miss", len);
      charge_attach(ctx, len);
      cache_.insert(owner, buf, len);
      if (obs_ != nullptr) {
        obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheMisses, 1);
      }
    }
  } else {
    // Fig. 3 dashed: the mapping is created and torn down every time.
    charge_attach(ctx, len);
    ctx.charge(costs_.detach);
  }
  return buf;
}

void* Endpoint::attach_mut(mach::Ctx& ctx, int owner, void* buf,
                           std::size_t len) {
  return const_cast<void*>(
      attach(ctx, owner, static_cast<const void*>(buf), len));
}

void Endpoint::charge_op(mach::Ctx& ctx, std::size_t bytes, int node_ranks) {
  if (costs_.op_syscall == 0.0 && costs_.op_per_page == 0.0) return;
  const double contention =
      1.0 + costs_.lock_coef * static_cast<double>(node_ranks - 1);
  ctx.charge(costs_.op_syscall +
             static_cast<double>(pages_of(bytes)) * costs_.op_per_page *
                 contention);
}

void Endpoint::detach_all(mach::Ctx& ctx) {
  if (!costs_.mapping) return;
  ctx.charge(static_cast<double>(cache_.size()) * costs_.detach);
  const std::size_t evicted = cache_.clear();
  if (obs_ != nullptr) {
    obs_->metrics().add(obs_rank_, obs::Counter::kRegCacheEvictions, evicted);
  }
}

}  // namespace xhc::smsc
