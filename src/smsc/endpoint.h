// Per-rank shared-memory single-copy endpoint (OpenMPI's SMSC component).
//
// Components obtain peer-buffer access through an Endpoint: `attach` charges
// the mechanism's mapping costs (amortized by the registration cache) and
// returns a pointer usable with Ctx::copy / Ctx::reduce; `charge_op` prices
// the per-operation kernel path of CMA/KNEM. On the thread-backed machines
// the returned pointer is the peer's actual buffer — precisely the
// load/store visibility XPMEM provides between processes.
//
// Fault tolerance: when the fault layer reports a persistent attach failure
// for an owner, the endpoint degrades that owner along the
// XPMEM -> CMA -> CICO chain (DESIGN.md § Fault injection & degradation).
// Degraded owners remain correct — the pointer sharing the thread machines
// provide never fails — but pay the cheaper mechanism's per-operation costs
// and lose their cached mappings.
#pragma once

#include "mach/machine.h"
#include "obs/observer.h"
#include "smsc/mechanism.h"
#include "smsc/reg_cache.h"

namespace xhc::fault {
class Injector;
}

namespace xhc::smsc {

class Endpoint {
 public:
  /// `use_reg_cache=false` reproduces the paper's Fig. 3 dashed variant:
  /// XPMEM pays attach+detach on every operation. `cache_capacity` bounds
  /// the registration cache (LRU beyond it).
  explicit Endpoint(Mechanism mech, bool use_reg_cache = true,
                    std::size_t cache_capacity = RegCache::kDefaultCapacity);

  Mechanism mechanism() const noexcept { return mech_; }
  bool single_copy() const noexcept { return mech_ != Mechanism::kCico; }
  /// True when reductions may read the peer buffer in place (XPMEM only).
  bool can_map() const noexcept { return costs_.mapping; }

  /// Mechanism actually in use for `owner`'s buffers, after any fault-driven
  /// degradation.
  Mechanism effective_mechanism(int owner) const noexcept;
  bool degraded(int owner) const noexcept {
    return degraded_.find(owner) != degraded_.end();
  }

  /// Owner-side: expose [buf, buf+len). Charged once per buffer (the owner
  /// keeps its own bookkeeping of exposed ranges).
  void expose(mach::Ctx& ctx, const void* buf, std::size_t len);

  /// Reader-side: make the peer's buffer accessible. Returns `buf` (threads
  /// share the address space) after charging mapping costs.
  const void* attach(mach::Ctx& ctx, int owner, const void* buf,
                     std::size_t len);
  void* attach_mut(mach::Ctx& ctx, int owner, void* buf, std::size_t len);

  /// Per-operation kernel cost for copy-through mechanisms (CMA/KNEM);
  /// no-op for XPMEM/CICO. `node_ranks` scales the mm-lock contention.
  /// Pass the buffer owner's rank so a degraded owner is charged its
  /// fallback mechanism's per-op costs instead (-1: no owner context, use
  /// the endpoint's base mechanism).
  void charge_op(mach::Ctx& ctx, std::size_t bytes, int node_ranks,
                 int owner = -1);

  /// Detaches everything (communicator teardown); charges detach costs.
  void detach_all(mach::Ctx& ctx);

  const RegCache::Stats& cache_stats() const noexcept {
    return cache_.stats();
  }
  void reset_stats() { cache_.reset_stats(); }

  /// Live observability sink: registration-cache hits / misses / evictions
  /// and attach traffic are booked against `rank` (the rank this endpoint
  /// belongs to). Pass nullptr to detach.
  void set_observer(obs::Observer* observer, int rank) noexcept {
    obs_ = observer;
    obs_rank_ = rank;
  }

  /// Fault source consulted on expose/attach. Pass nullptr (the default)
  /// for the zero-cost healthy path.
  void set_fault_injector(fault::Injector* injector) noexcept {
    fault_ = injector;
  }

 private:
  void charge_attach(mach::Ctx& ctx, std::size_t len);
  void book(obs::Counter c, std::uint64_t n);
  void degrade(mach::Ctx& ctx, int owner, int chain_depth, std::size_t len);

  Mechanism mech_;
  MechanismCosts costs_;
  bool use_reg_cache_;
  RegCache cache_;
  std::map<std::pair<int, const void*>, std::size_t> exposed_;
  std::map<int, Mechanism> degraded_;
  obs::Observer* obs_ = nullptr;
  int obs_rank_ = 0;
  fault::Injector* fault_ = nullptr;
};

}  // namespace xhc::smsc
