#include "smsc/reg_cache.h"

namespace xhc::smsc {

bool RegCache::lookup(int owner, const void* buf, std::size_t len) {
  // Find the cached range with the greatest base <= buf for this owner.
  auto it = ranges_.upper_bound({owner, buf});
  if (it != ranges_.begin()) {
    --it;
    if (it->first.first == owner) {
      const auto* base = static_cast<const char*>(it->first.second);
      const auto* req = static_cast<const char*>(buf);
      if (req >= base && req + len <= base + it->second) {
        ++stats_.hits;
        return true;
      }
    }
  }
  ++stats_.misses;
  return false;
}

void RegCache::insert(int owner, const void* buf, std::size_t len) {
  ranges_[{owner, buf}] = len;
}

}  // namespace xhc::smsc
