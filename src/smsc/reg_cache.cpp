#include "smsc/reg_cache.h"

namespace xhc::smsc {

bool RegCache::lookup(int owner, const void* buf, std::size_t len) {
  // Find the cached range with the greatest base <= buf for this owner.
  auto it = ranges_.upper_bound({owner, buf});
  if (it != ranges_.begin()) {
    --it;
    if (it->first.first == owner) {
      const auto* base = static_cast<const char*>(it->first.second);
      const auto* req = static_cast<const char*>(buf);
      if (req >= base && req + len <= base + it->second.len) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return true;
      }
    }
  }
  ++stats_.misses;
  return false;
}

std::size_t RegCache::insert(int owner, const void* buf, std::size_t len) {
  const Key key{owner, buf};
  auto it = ranges_.find(key);
  if (it != ranges_.end()) {
    it->second.len = len;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return 0;
  }
  lru_.push_front(key);
  ranges_[key] = Entry{len, lru_.begin()};
  std::size_t evicted = 0;
  while (ranges_.size() > capacity_) {
    ranges_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    ++evicted;
  }
  return evicted;
}

std::size_t RegCache::erase_owner(int owner) {
  std::size_t n = 0;
  auto it = ranges_.lower_bound({owner, nullptr});
  while (it != ranges_.end() && it->first.first == owner) {
    lru_.erase(it->second.lru);
    it = ranges_.erase(it);
    ++n;
  }
  stats_.evictions += n;
  return n;
}

std::size_t RegCache::clear() {
  const std::size_t n = ranges_.size();
  stats_.evictions += n;
  ranges_.clear();
  lru_.clear();
  return n;
}

}  // namespace xhc::smsc
