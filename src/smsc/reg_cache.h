// Registration cache (paper §II-B, §III-C).
//
// Keeps established inter-process mappings so XPMEM's attach cost is paid
// once per (owner, buffer) instead of once per operation. The paper shows
// that disabling it makes XPMEM worse than CMA and KNEM (Fig. 3, dashed),
// and that real applications enjoy hit ratios above 99% (§V-D3).
//
// The cache is bounded: beyond `capacity` mappings the least-recently-used
// one is evicted (and counted), modeling the kernel resource limits a real
// registration cache runs against. The default capacity is far above any
// communicator's working set here, so eviction only engages when a test or
// deployment tightens it. Evictions also arise from the fault layer's
// degradation path: when an owner's mechanism falls back below XPMEM, its
// mappings are invalidated with erase_owner().
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace xhc::smsc {

class RegCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit RegCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< mappings dropped (LRU / owner
                                  ///< invalidation / clear)

    double hit_ratio() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// Looks up a mapping of [buf, buf+len) owned by `owner`. Returns true on
  /// hit (and refreshes the entry's recency). On miss the caller performs
  /// the attach and must then insert().
  bool lookup(int owner, const void* buf, std::size_t len);

  /// Caches [buf, buf+len); evicts the least-recently-used mapping when the
  /// capacity is exceeded. Returns the number of mappings evicted.
  std::size_t insert(int owner, const void* buf, std::size_t len);

  /// Books a miss that bypassed lookup() (forced by the fault layer), so
  /// hit_ratio stays truthful.
  void count_forced_miss() noexcept { ++stats_.misses; }

  /// Drops every mapping of `owner`'s buffers (mechanism degradation: the
  /// mappings are no longer usable). Counted as evictions; returns how many
  /// were dropped.
  std::size_t erase_owner(int owner);

  /// Drops every cached mapping (communicator teardown); counted as
  /// evictions. Returns the number of mappings dropped.
  std::size_t clear();

  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = Stats{}; }
  std::size_t size() const noexcept { return ranges_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  // (owner, base) -> length. A lookup hits when a cached range fully covers
  // the requested one. An ordered map keeps the greatest-base-below lookup;
  // the intrusive LRU list orders entries by recency (front = most recent).
  using Key = std::pair<int, const void*>;
  struct Entry {
    std::size_t len = 0;
    std::list<Key>::iterator lru;
  };

  std::map<Key, Entry> ranges_;
  std::list<Key> lru_;
  std::size_t capacity_;
  Stats stats_;
};

}  // namespace xhc::smsc
