// Registration cache (paper §II-B, §III-C).
//
// Keeps established inter-process mappings so XPMEM's attach cost is paid
// once per (owner, buffer) instead of once per operation. The paper shows
// that disabling it makes XPMEM worse than CMA and KNEM (Fig. 3, dashed),
// and that real applications enjoy hit ratios above 99% (§V-D3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

namespace xhc::smsc {

class RegCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< mappings dropped (clear / teardown)

    double hit_ratio() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// Looks up a mapping of [buf, buf+len) owned by `owner`. Returns true on
  /// hit. On miss the caller performs the attach and must then insert().
  bool lookup(int owner, const void* buf, std::size_t len);

  void insert(int owner, const void* buf, std::size_t len);

  /// Drops every cached mapping (communicator teardown); counted as
  /// evictions. Returns the number of mappings dropped.
  std::size_t clear() {
    const std::size_t n = ranges_.size();
    stats_.evictions += n;
    ranges_.clear();
    return n;
  }

  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = Stats{}; }
  std::size_t size() const noexcept { return ranges_.size(); }

 private:
  // (owner, base) -> length. A lookup hits when a cached range fully covers
  // the requested one.
  std::map<std::pair<int, const void*>, std::size_t> ranges_;
  Stats stats_;
};

}  // namespace xhc::smsc
