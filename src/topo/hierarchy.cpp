#include "topo/hierarchy.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.h"
#include "util/str.h"

namespace xhc::topo {

const char* to_string(Domain d) {
  switch (d) {
    case Domain::kLlc:
      return "l3";
    case Domain::kNuma:
      return "numa";
    case Domain::kSocket:
      return "socket";
  }
  return "?";
}

std::vector<Domain> parse_sensitivity(std::string_view s) {
  if (s == "flat" || s.empty()) return {};
  std::vector<Domain> out;
  for (const auto& part : util::split(s, '+')) {
    if (part == "l3" || part == "llc") {
      out.push_back(Domain::kLlc);
    } else if (part == "numa") {
      out.push_back(Domain::kNuma);
    } else if (part == "socket") {
      out.push_back(Domain::kSocket);
    } else {
      XHC_REQUIRE(false, "unknown sensitivity token '", part, "'");
    }
  }
  return out;
}

namespace {

int domain_id(const Topology& topo, const RankMap& map, Domain d, int rank) {
  const CorePlace& place = topo.core(map.core_of(rank));
  switch (d) {
    case Domain::kLlc:
      return place.llc;
    case Domain::kNuma:
      return place.numa;
    case Domain::kSocket:
      return place.socket;
  }
  return 0;
}

// Elects the group leader: the root if present, otherwise the lowest rank.
int elect_leader(const std::vector<int>& ranks, int root) {
  for (const int r : ranks) {
    if (r == root) return root;
  }
  return ranks.front();
}

}  // namespace

Hierarchy::Hierarchy(const Topology& topo, const RankMap& map,
                     const std::vector<Domain>& sensitivity, int root) {
  n_ranks_ = map.n_ranks();
  root_ = root;
  XHC_REQUIRE(root >= 0 && root < n_ranks_, "root ", root, " out of range");

  std::vector<int> members(static_cast<std::size_t>(n_ranks_));
  for (int r = 0; r < n_ranks_; ++r) members[static_cast<std::size_t>(r)] = r;

  for (const Domain d : sensitivity) {
    // Partition current members by their domain id.
    std::map<int, std::vector<int>> buckets;
    for (const int r : members) {
      buckets[domain_id(topo, map, d, r)].push_back(r);
    }
    if (buckets.size() == members.size()) {
      // Degenerate level: every group would be a singleton (e.g. an "l3"
      // level on a machine without shared LLCs). Skip it.
      continue;
    }
    std::vector<Group> level;
    std::vector<int> leaders;
    for (auto& [id, ranks] : buckets) {
      Group g;
      g.level = static_cast<int>(levels_.size());
      g.ranks = std::move(ranks);
      std::sort(g.ranks.begin(), g.ranks.end());
      g.leader = elect_leader(g.ranks, root);
      leaders.push_back(g.leader);
      level.push_back(std::move(g));
    }
    if (level.size() == 1 && !levels_.empty() &&
        level.front().ranks == levels_.back().front().ranks &&
        levels_.back().size() == 1) {
      // Same single group as the previous level — nothing new, skip.
      continue;
    }
    levels_.push_back(std::move(level));
    std::sort(leaders.begin(), leaders.end());
    members = std::move(leaders);
  }

  if (members.size() > 1 || levels_.empty()) {
    // Final flat level joining the outermost leaders (or all ranks when no
    // sensitivity produced a level).
    Group g;
    g.level = static_cast<int>(levels_.size());
    g.ranks = members;
    g.leader = elect_leader(g.ranks, root);
    levels_.push_back({std::move(g)});
  }
  index_levels();
}

Hierarchy Hierarchy::make_flat(int n_ranks, int root) {
  XHC_REQUIRE(n_ranks > 0, "need ranks");
  XHC_REQUIRE(root >= 0 && root < n_ranks, "root out of range");
  Hierarchy h;
  h.n_ranks_ = n_ranks;
  h.root_ = root;
  Group g;
  g.level = 0;
  g.ranks.resize(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) g.ranks[static_cast<std::size_t>(r)] = r;
  g.leader = root;
  h.levels_.push_back({std::move(g)});
  h.index_levels();
  return h;
}

void Hierarchy::index_levels() {
  member_group_.assign(levels_.size(),
                       std::vector<int>(static_cast<std::size_t>(n_ranks_), -1));
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    for (std::size_t gi = 0; gi < levels_[l].size(); ++gi) {
      levels_[l][gi].id = static_cast<int>(gi);
      for (const int r : levels_[l][gi].ranks) {
        member_group_[l][static_cast<std::size_t>(r)] = static_cast<int>(gi);
      }
    }
  }
  // The root must lead every group it belongs to, all the way to the top.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const Group* g = group_of(static_cast<int>(l), root_);
    XHC_CHECK(g != nullptr && g->leader == root_,
              "root is not the leader of its group at level ", l);
  }
}

const std::vector<Group>& Hierarchy::level(int l) const {
  XHC_REQUIRE(l >= 0 && l < n_levels(), "level ", l, " out of range");
  return levels_[static_cast<std::size_t>(l)];
}

const Group* Hierarchy::group_of(int l, int rank) const {
  XHC_REQUIRE(l >= 0 && l < n_levels(), "level ", l, " out of range");
  XHC_REQUIRE(rank >= 0 && rank < n_ranks_, "rank ", rank, " out of range");
  const int gi = member_group_[static_cast<std::size_t>(l)]
                              [static_cast<std::size_t>(rank)];
  if (gi < 0) return nullptr;
  return &levels_[static_cast<std::size_t>(l)][static_cast<std::size_t>(gi)];
}

bool Hierarchy::is_leader(int l, int rank) const {
  const Group* g = group_of(l, rank);
  return g != nullptr && g->leader == rank;
}

std::string Hierarchy::describe() const {
  std::ostringstream os;
  for (int l = 0; l < n_levels(); ++l) {
    os << "level " << l << ":";
    for (const Group& g : level(l)) {
      os << " [";
      for (std::size_t i = 0; i < g.ranks.size(); ++i) {
        if (i) os << ",";
        if (g.ranks[i] == g.leader) os << "*";
        os << g.ranks[i];
      }
      os << "]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace xhc::topo
