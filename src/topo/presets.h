// Topology presets for the paper's evaluation systems (Table I) plus small
// synthetic topologies used by the test suite.
#pragma once

#include <string_view>
#include <vector>

#include "topo/topology.h"

namespace xhc::topo {

/// 1x AMD Epyc 7551P — 32 cores, 4 NUMA nodes, 1 socket, 4-core L3 (CCX).
Topology epyc1p();

/// 2x AMD Epyc 7501 — 64 cores, 8 NUMA nodes, 2 sockets, 4-core L3 (CCX).
Topology epyc2p();

/// 2x ARM Neoverse N1 (Ampere Altra) — 160 cores, 8 NUMA nodes, 2 sockets,
/// private L2 per core and a system-level cache (no shared LLC groups).
Topology armn1();

/// 8 cores, 2 sockets, 4 NUMA nodes, 2-core LLC groups. Small enough for
/// exhaustive unit tests while retaining all three domain kinds.
Topology mini8();

/// 16 cores, 2 sockets, 4 NUMA nodes, 2-core LLC groups.
Topology mini16();

/// `n` cores in a single LLC/NUMA/socket (uniform flat machine).
Topology flat(int n);

/// Builds a synthetic machine: `sockets` x `numa_per_socket` x
/// `cores_per_numa`, with LLC groups of `cores_per_llc` cores
/// (`cores_per_llc == 0` means no shared LLC, e.g. ARM-style).
Topology grid(std::string name, int sockets, int numa_per_socket,
              int cores_per_numa, int cores_per_llc);

/// Look up a preset by name ("epyc1p", "epyc2p", "armn1", "mini8",
/// "mini16"); throws util::Error for unknown names.
Topology by_name(std::string_view name);

/// Names of the three paper evaluation systems, in Table I order.
std::vector<std::string_view> paper_systems();

}  // namespace xhc::topo
