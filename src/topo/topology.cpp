#include "topo/topology.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::topo {

const char* to_string(Distance d) {
  switch (d) {
    case Distance::kSelf:
      return "self";
    case Distance::kLlcLocal:
      return "cache-local";
    case Distance::kIntraNuma:
      return "intra-numa";
    case Distance::kCrossNuma:
      return "cross-numa";
    case Distance::kCrossSocket:
      return "cross-socket";
  }
  return "?";
}

Topology::Topology(std::string name, std::vector<CorePlace> cores,
                   bool shared_llc)
    : name_(std::move(name)), cores_(std::move(cores)), shared_llc_(shared_llc) {
  XHC_REQUIRE(!cores_.empty(), "topology '", name_, "' has no cores");
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    XHC_REQUIRE(cores_[i].core == static_cast<int>(i),
                "core ids must be dense; slot ", i, " holds id ",
                cores_[i].core);
    n_llc_ = std::max(n_llc_, cores_[i].llc + 1);
    n_numa_ = std::max(n_numa_, cores_[i].numa + 1);
    n_sockets_ = std::max(n_sockets_, cores_[i].socket + 1);
  }
}

const CorePlace& Topology::core(int id) const {
  XHC_REQUIRE(id >= 0 && id < n_cores(), "core id ", id, " out of range");
  return cores_[static_cast<std::size_t>(id)];
}

std::vector<int> Topology::cores_in_numa(int numa) const {
  std::vector<int> out;
  for (const auto& c : cores_) {
    if (c.numa == numa) out.push_back(c.core);
  }
  return out;
}

std::vector<int> Topology::cores_in_socket(int socket) const {
  std::vector<int> out;
  for (const auto& c : cores_) {
    if (c.socket == socket) out.push_back(c.core);
  }
  return out;
}

Distance Topology::distance(int core_a, int core_b) const {
  const CorePlace& a = core(core_a);
  const CorePlace& b = core(core_b);
  if (a.core == b.core) return Distance::kSelf;
  if (a.socket != b.socket) return Distance::kCrossSocket;
  if (a.numa != b.numa) return Distance::kCrossNuma;
  if (shared_llc_ && a.llc == b.llc) return Distance::kLlcLocal;
  return Distance::kIntraNuma;
}

}  // namespace xhc::topo
