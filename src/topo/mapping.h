// Rank-to-core mapping policies (paper Fig. 9a: map-core vs map-numa).
#pragma once

#include <string_view>
#include <vector>

#include "topo/topology.h"

namespace xhc::topo {

/// How MPI ranks are assigned to the node's cores.
enum class MapPolicy {
  kCore,  ///< rank r on core r (sequential fill; OpenMPI --map-by core)
  kNuma,  ///< ranks round-robin across NUMA nodes (OpenMPI --map-by numa)
};

const char* to_string(MapPolicy p);

/// A concrete rank→core assignment for `n_ranks` ranks on `topo`.
class RankMap {
 public:
  RankMap(const Topology& topo, int n_ranks, MapPolicy policy);

  /// Explicit assignment: rank r runs on `cores[r]`. Used by facade machines
  /// over a rank subset (svc::TenantMachine), whose communicator ranks must
  /// land on exactly the parent ranks' cores. Cores must be distinct and
  /// valid for `topo`; `policy` is carried through for diagnostics only.
  RankMap(const Topology& topo, std::vector<int> cores, MapPolicy policy);

  int n_ranks() const noexcept { return static_cast<int>(rank_to_core_.size()); }
  int core_of(int rank) const;
  /// Rank running on `core`, or -1 when the core hosts no rank.
  int rank_on(int core) const;
  MapPolicy policy() const noexcept { return policy_; }

  /// Topological relation between the cores hosting two ranks.
  Distance distance(const Topology& topo, int rank_a, int rank_b) const;

 private:
  std::vector<int> rank_to_core_;
  std::vector<int> core_to_rank_;
  MapPolicy policy_;
};

}  // namespace xhc::topo
