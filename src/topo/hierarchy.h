// Hierarchy construction (paper §III-A, Fig. 2).
//
// A sensitivity list (e.g. "numa+socket") groups ranks by successively wider
// topological domains; each group elects a leader, and the leaders of one
// level become the members of the next. The final level is a single group
// containing the outermost leaders (the operation root is its leader).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "topo/mapping.h"
#include "topo/topology.h"

namespace xhc::topo {

/// A grouping criterion for one hierarchy level.
enum class Domain {
  kLlc,     ///< group ranks sharing a last-level cache
  kNuma,    ///< group ranks on the same NUMA node
  kSocket,  ///< group ranks on the same socket
};

const char* to_string(Domain d);

/// Parses "flat", "numa", "socket", "l3", or '+'-joined combinations such as
/// "numa+socket" and "l3+numa+socket" (inner to outer).
std::vector<Domain> parse_sensitivity(std::string_view s);

/// One communication group at some level of the hierarchy.
struct Group {
  int level = 0;            ///< 0 = innermost
  std::vector<int> ranks;   ///< member ranks, ascending
  int leader = -1;          ///< rank exchanging data on the group's behalf
  int id = -1;              ///< index of this group within its level
};

/// A complete hierarchy for a communicator over a rank map.
class Hierarchy {
 public:
  /// Builds the hierarchy. `root` becomes the leader of every group that
  /// contains it, so the broadcast source and the allreduce internal root
  /// sit at the top of the tree regardless of the root's rank number.
  Hierarchy(const Topology& topo, const RankMap& map,
            const std::vector<Domain>& sensitivity, int root);

  /// Flat hierarchy: one group holding all ranks.
  static Hierarchy make_flat(int n_ranks, int root);

  int n_levels() const noexcept { return static_cast<int>(levels_.size()); }
  int n_ranks() const noexcept { return n_ranks_; }
  int root() const noexcept { return root_; }

  const std::vector<Group>& level(int l) const;

  /// Group containing `rank` at level `l`, or nullptr when the rank does not
  /// participate at that level (i.e. it is not a leader of level l-1).
  const Group* group_of(int l, int rank) const;

  /// True when `rank` is the leader of its group at level `l`.
  bool is_leader(int l, int rank) const;

  /// Human-readable dump (one line per group), used by examples/tests.
  std::string describe() const;

 private:
  Hierarchy() = default;
  void index_levels();

  std::vector<std::vector<Group>> levels_;
  // member_group_[l][rank] = group index at level l, or -1.
  std::vector<std::vector<int>> member_group_;
  int n_ranks_ = 0;
  int root_ = 0;
};

}  // namespace xhc::topo
