// Node topology description — the hwloc substitute (paper §III-A).
//
// A Topology lists every core's LLC group, NUMA node and socket. XHC uses it
// to build topology-aware hierarchies; the simulator uses it to price data
// movement between cores (Fig. 1a) and to model cache-line service.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xhc::topo {

/// Placement of one core inside the node.
struct CorePlace {
  int core = 0;    ///< core id (index in Topology::cores())
  int llc = 0;     ///< id of the last-level-cache group the core belongs to
  int numa = 0;    ///< NUMA node id
  int socket = 0;  ///< socket / package id
};

/// Topological relation between two cores, from nearest to farthest.
enum class Distance {
  kSelf,        ///< same core
  kLlcLocal,    ///< different cores sharing a last-level cache
  kIntraNuma,   ///< same NUMA node, no shared LLC
  kCrossNuma,   ///< different NUMA nodes, same socket
  kCrossSocket  ///< different sockets
};

const char* to_string(Distance d);

/// Immutable description of a multicore node.
class Topology {
 public:
  /// `cores[i].core` must equal `i`; ids must be dense starting at 0.
  Topology(std::string name, std::vector<CorePlace> cores, bool shared_llc);

  const std::string& name() const noexcept { return name_; }
  int n_cores() const noexcept { return static_cast<int>(cores_.size()); }
  int n_llc() const noexcept { return n_llc_; }
  int n_numa() const noexcept { return n_numa_; }
  int n_sockets() const noexcept { return n_sockets_; }

  /// True when neighbouring cores share a last-level cache (Epyc CCX);
  /// false for system-level-cache machines like ARM-N1 (paper §V-D1).
  bool has_shared_llc() const noexcept { return shared_llc_; }

  const CorePlace& core(int id) const;
  const std::vector<CorePlace>& cores() const noexcept { return cores_; }

  /// Cores belonging to NUMA node `numa`, in core-id order.
  std::vector<int> cores_in_numa(int numa) const;
  /// Cores belonging to socket `socket`, in core-id order.
  std::vector<int> cores_in_socket(int socket) const;

  Distance distance(int core_a, int core_b) const;

 private:
  std::string name_;
  std::vector<CorePlace> cores_;
  bool shared_llc_;
  int n_llc_ = 0;
  int n_numa_ = 0;
  int n_sockets_ = 0;
};

}  // namespace xhc::topo
