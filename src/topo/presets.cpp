#include "topo/presets.h"

#include "util/check.h"

namespace xhc::topo {

Topology grid(std::string name, int sockets, int numa_per_socket,
              int cores_per_numa, int cores_per_llc) {
  XHC_REQUIRE(sockets > 0 && numa_per_socket > 0 && cores_per_numa > 0,
              "bad grid shape");
  XHC_REQUIRE(cores_per_llc >= 0, "bad llc group size");
  const bool shared_llc = cores_per_llc > 1;
  std::vector<CorePlace> cores;
  int id = 0;
  for (int s = 0; s < sockets; ++s) {
    for (int n = 0; n < numa_per_socket; ++n) {
      for (int c = 0; c < cores_per_numa; ++c) {
        CorePlace p;
        p.core = id;
        p.numa = s * numa_per_socket + n;
        p.socket = s;
        p.llc = shared_llc ? id / cores_per_llc : id;
        cores.push_back(p);
        ++id;
      }
    }
  }
  return Topology(std::move(name), std::move(cores), shared_llc);
}

Topology epyc1p() { return grid("epyc1p", 1, 4, 8, 4); }

Topology epyc2p() { return grid("epyc2p", 2, 4, 8, 4); }

Topology armn1() { return grid("armn1", 2, 4, 20, 0); }

Topology mini8() { return grid("mini8", 2, 2, 2, 2); }

Topology mini16() { return grid("mini16", 2, 2, 4, 2); }

Topology flat(int n) {
  XHC_REQUIRE(n > 0, "flat topology needs at least one core");
  return grid("flat" + std::to_string(n), 1, 1, n, n);
}

Topology by_name(std::string_view name) {
  if (name == "epyc1p") return epyc1p();
  if (name == "epyc2p") return epyc2p();
  if (name == "armn1") return armn1();
  if (name == "mini8") return mini8();
  if (name == "mini16") return mini16();
  XHC_REQUIRE(false, "unknown topology preset '", std::string(name), "'");
  // Unreachable; XHC_REQUIRE throws.
  return flat(1);
}

std::vector<std::string_view> paper_systems() {
  return {"epyc1p", "epyc2p", "armn1"};
}

}  // namespace xhc::topo
