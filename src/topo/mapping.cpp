#include "topo/mapping.h"

#include "util/check.h"

namespace xhc::topo {

const char* to_string(MapPolicy p) {
  switch (p) {
    case MapPolicy::kCore:
      return "map-core";
    case MapPolicy::kNuma:
      return "map-numa";
  }
  return "?";
}

RankMap::RankMap(const Topology& topo, int n_ranks, MapPolicy policy)
    : policy_(policy) {
  XHC_REQUIRE(n_ranks > 0, "need at least one rank");
  XHC_REQUIRE(n_ranks <= topo.n_cores(), "asked for ", n_ranks, " ranks on ",
              topo.n_cores(), "-core topology '", topo.name(), "'");
  rank_to_core_.resize(static_cast<std::size_t>(n_ranks));
  core_to_rank_.assign(static_cast<std::size_t>(topo.n_cores()), -1);

  if (policy == MapPolicy::kCore) {
    for (int r = 0; r < n_ranks; ++r) {
      rank_to_core_[static_cast<std::size_t>(r)] = r;
    }
  } else {
    // Round-robin over NUMA nodes: rank r lands on the next free core of
    // NUMA node (r mod n_numa).
    std::vector<std::vector<int>> per_numa(
        static_cast<std::size_t>(topo.n_numa()));
    for (int n = 0; n < topo.n_numa(); ++n) {
      per_numa[static_cast<std::size_t>(n)] = topo.cores_in_numa(n);
    }
    std::vector<std::size_t> next(static_cast<std::size_t>(topo.n_numa()), 0);
    for (int r = 0; r < n_ranks; ++r) {
      // Skip NUMA nodes that are already full.
      int numa = r % topo.n_numa();
      for (int tries = 0; tries < topo.n_numa(); ++tries) {
        const auto idx = static_cast<std::size_t>(numa);
        if (next[idx] < per_numa[idx].size()) break;
        numa = (numa + 1) % topo.n_numa();
      }
      const auto idx = static_cast<std::size_t>(numa);
      XHC_CHECK(next[idx] < per_numa[idx].size(), "no free core for rank ", r);
      rank_to_core_[static_cast<std::size_t>(r)] = per_numa[idx][next[idx]++];
    }
  }
  for (int r = 0; r < n_ranks; ++r) {
    core_to_rank_[static_cast<std::size_t>(
        rank_to_core_[static_cast<std::size_t>(r)])] = r;
  }
}

RankMap::RankMap(const Topology& topo, std::vector<int> cores,
                 MapPolicy policy)
    : rank_to_core_(std::move(cores)), policy_(policy) {
  XHC_REQUIRE(!rank_to_core_.empty(), "need at least one rank");
  core_to_rank_.assign(static_cast<std::size_t>(topo.n_cores()), -1);
  for (int r = 0; r < n_ranks(); ++r) {
    const int core = rank_to_core_[static_cast<std::size_t>(r)];
    XHC_REQUIRE(core >= 0 && core < topo.n_cores(), "core ", core,
                " out of range for topology '", topo.name(), "'");
    XHC_REQUIRE(core_to_rank_[static_cast<std::size_t>(core)] == -1,
                "core ", core, " assigned to two ranks");
    core_to_rank_[static_cast<std::size_t>(core)] = r;
  }
}

int RankMap::core_of(int rank) const {
  XHC_REQUIRE(rank >= 0 && rank < n_ranks(), "rank ", rank, " out of range");
  return rank_to_core_[static_cast<std::size_t>(rank)];
}

int RankMap::rank_on(int core) const {
  XHC_REQUIRE(core >= 0 && core < static_cast<int>(core_to_rank_.size()),
              "core ", core, " out of range");
  return core_to_rank_[static_cast<std::size_t>(core)];
}

Distance RankMap::distance(const Topology& topo, int rank_a,
                           int rank_b) const {
  return topo.distance(core_of(rank_a), core_of(rank_b));
}

}  // namespace xhc::topo
