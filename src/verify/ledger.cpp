#include "verify/verify.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "util/cacheline.h"
#include "util/check.h"

namespace xhc::verify {

namespace {

// Keep at least as much history as SimMachine::FlagHist (4096-entry window)
// so the cross-check is never less informed than the model it checks.
constexpr std::size_t kMaxHist = 8192;
constexpr std::size_t kHistDrop = 4096;

std::string addr_str(const void* p) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%p", p);
  return buf;
}

std::string flag_id(const std::string& name, const void* addr) {
  if (name.empty()) return "<unnamed " + addr_str(addr) + ">";
  return "'" + name + "' (" + addr_str(addr) + ")";
}

std::string time_str(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9f", t);
  return buf;
}

}  // namespace

const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kSecondWriter:
      return "second-writer";
    case Kind::kNonMonotonic:
      return "non-monotonic";
    case Kind::kRmwOnSingleWriter:
      return "rmw-on-single-writer";
    case Kind::kStalePublish:
      return "stale-publish";
    case Kind::kSharedLine:
      return "shared-line";
    case Kind::kCostlyLayout:
      return "costly-layout";
  }
  return "?";
}

std::string Violation::describe() const {
  const std::string id = flag_id(flag_name, flag);
  std::string s = "verify[";
  s += to_string(kind);
  s += "]: ";
  switch (kind) {
    case Kind::kSecondWriter:
      s += "rank " + std::to_string(rank) + " stored " +
           std::to_string(value) + " to flag " + id + " owned by rank " +
           std::to_string(other_rank) +
           " (single-writer discipline, paper §III-E)";
      break;
    case Kind::kNonMonotonic:
      s += "rank " + std::to_string(rank) + " stored " +
           std::to_string(value) + " < prior " + std::to_string(prior) +
           " on flag " + id + " (cumulative counters never decrease)";
      break;
    case Kind::kRmwOnSingleWriter:
      s += "rank " + std::to_string(rank) + " fetch_add on flag " + id +
           " not whitelisted as WriterPolicy::kShared (RMW is reserved for "
           "the Fig. 4 atomics baselines)";
      break;
    case Kind::kStalePublish:
      if (publish_vtime < 0.0) {
        s += "rank " + std::to_string(rank) + " observed " +
             std::to_string(value) + " on flag " + id + " at t=" +
             time_str(vtime) + " but that value was never published";
      } else {
        s += "rank " + std::to_string(rank) + " observed " +
             std::to_string(value) + " on flag " + id + " at t=" +
             time_str(vtime) + " before its publish at t=" +
             time_str(publish_vtime);
      }
      break;
    case Kind::kSharedLine:
    case Kind::kCostlyLayout:
      s += flag_name;  // lint pre-formats the description
      break;
  }
  return s;
}

void Ledger::register_flag(const mach::Flag* f, std::string name,
                           WriterPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  Record& rec = records_[f];
  rec = Record{};
  rec.name = std::move(name);
  rec.policy = policy;
}

Ledger::Record& Ledger::touch(const mach::Flag* f) { return records_[f]; }

void Ledger::report(Violation v) {
  violations_.push_back(v);
  if (abort_) throw util::Error(v.describe());
}

void Ledger::check_store(Record& rec, const mach::Flag* f, int rank,
                         std::uint64_t value, double vtime, bool is_rmw) {
  ++stores_;
  if (is_rmw && rec.policy != WriterPolicy::kShared) {
    Violation v;
    v.kind = Kind::kRmwOnSingleWriter;
    v.flag = f;
    v.flag_name = rec.name;
    v.rank = rank;
    v.value = value;
    if (vtime != kNoTime) v.vtime = vtime;
    report(v);
  }
  if (rec.policy != WriterPolicy::kShared) {
    if (!rec.stored) {
      rec.writer = rank;
    } else if (rank != rec.writer) {
      // kRotating: a new leader may take over, but only at an operation
      // boundary — visible as a strictly increasing value.
      const bool legal_handoff =
          rec.policy == WriterPolicy::kRotating && value > rec.last_value;
      if (!legal_handoff) {
        Violation v;
        v.kind = Kind::kSecondWriter;
        v.flag = f;
        v.flag_name = rec.name;
        v.rank = rank;
        v.other_rank = rec.writer;
        v.value = value;
        v.prior = rec.last_value;
        if (vtime != kNoTime) v.vtime = vtime;
        report(v);
      }
      rec.writer = rank;  // follow the flag even in record-only mode
    }
    if (rec.stored && value < rec.last_value) {
      Violation v;
      v.kind = Kind::kNonMonotonic;
      v.flag = f;
      v.flag_name = rec.name;
      v.rank = rank;
      v.value = value;
      v.prior = rec.last_value;
      if (vtime != kNoTime) v.vtime = vtime;
      report(v);
    }
    rec.last_value = value;
  } else {
    // Concurrent fetch-adds reach the ledger out of order; track the max.
    rec.last_value = std::max(rec.last_value, value);
  }
  rec.stored = true;
  if (vtime != kNoTime) {
    rec.hist.emplace_back(value, vtime);
    if (rec.hist.size() > kMaxHist) {
      rec.floor_value = rec.hist[kHistDrop - 1].first;
      rec.floor_time = rec.hist[kHistDrop - 1].second;
      rec.hist.erase(rec.hist.begin(),
                     rec.hist.begin() + static_cast<std::ptrdiff_t>(kHistDrop));
    }
  }
}

void Ledger::on_store(const mach::Flag* f, int rank, std::uint64_t value,
                      double vtime) {
  std::lock_guard<std::mutex> lock(mu_);
  check_store(touch(f), f, rank, value, vtime, /*is_rmw=*/false);
}

void Ledger::on_rmw(const mach::Flag* f, int rank, std::uint64_t result,
                    double vtime) {
  std::lock_guard<std::mutex> lock(mu_);
  check_store(touch(f), f, rank, result, vtime, /*is_rmw=*/true);
}

void Ledger::check_published(Record& rec, const mach::Flag* f, int rank,
                             std::uint64_t value, double vtime, bool exact) {
  if (value == 0) return;  // the initial value is visible at any time
  if (value <= rec.floor_value) return;  // pruned prefix: assume legal
  // Values are monotone per flag, so the first entry reaching `value` is
  // also the earliest in time.
  auto it = std::lower_bound(
      rec.hist.begin(), rec.hist.end(), value,
      [](const std::pair<std::uint64_t, double>& e, std::uint64_t v) {
        return e.first < v;
      });
  const bool found = it != rec.hist.end() && (!exact || it->first == value);
  if (!found) {
    Violation v;
    v.kind = Kind::kStalePublish;
    v.flag = f;
    v.flag_name = rec.name;
    v.rank = rank;
    v.other_rank = rec.writer;
    v.value = value;
    v.vtime = vtime;
    v.publish_vtime = -1.0;  // never published
    report(v);
    return;
  }
  if (it->second > vtime) {
    Violation v;
    v.kind = Kind::kStalePublish;
    v.flag = f;
    v.flag_name = rec.name;
    v.rank = rank;
    v.other_rank = rec.writer;
    v.value = value;
    v.vtime = vtime;
    v.publish_vtime = it->second;
    report(v);
  }
}

void Ledger::on_observe(const mach::Flag* f, int rank, std::uint64_t observed,
                        double vtime) {
  std::lock_guard<std::mutex> lock(mu_);
  ++loads_;
  // A read must return an exactly-published value at or before `vtime`.
  check_published(touch(f), f, rank, observed, vtime, /*exact=*/true);
}

void Ledger::on_wait_resume(const mach::Flag* f, int rank,
                            std::uint64_t threshold, double vtime) {
  std::lock_guard<std::mutex> lock(mu_);
  ++loads_;
  // A wait-ge may resume on any value >= threshold; require the crossing
  // publish to exist by the resume time.
  check_published(touch(f), f, rank, threshold, vtime, /*exact=*/false);
}

void Ledger::forget_range(const void* base, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.lower_bound(base);
  const void* end = static_cast<const std::byte*>(base) + bytes;
  while (it != records_.end() && std::less<const void*>{}(it->first, end)) {
    it = records_.erase(it);
  }
}

void Ledger::lint_group(const std::string& group,
                        const std::vector<LintItem>& items) {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::uintptr_t, std::vector<const LintItem*>> by_line;
  for (const LintItem& item : items) {
    by_line[util::line_of(item.addr)].push_back(&item);
  }
  for (const auto& [line, on_line] : by_line) {
    (void)line;
    if (on_line.size() < 2) continue;
    // Report at most one finding per offending line (the Fig. 10 packed
    // array would otherwise produce one per pair).
    for (std::size_t i = 0; i < on_line.size(); ++i) {
      bool done = false;
      for (std::size_t j = i + 1; j < on_line.size(); ++j) {
        const LintItem& a = *on_line[i];
        const LintItem& b = *on_line[j];
        const bool writer_clash = a.writer != kNone && b.writer != kNone &&
                                  a.writer != b.writer;
        const bool spinner_clash =
            a.spinner >= 0 && b.spinner >= 0 && a.spinner != b.spinner;
        if (!writer_clash && !spinner_clash) continue;
        Violation v;
        v.kind = Kind::kSharedLine;
        v.flag = a.addr;
        v.rank = a.writer;
        v.other_rank = b.writer;
        v.flag_name = group + ": '" + a.field + "' (" + addr_str(a.addr) +
                      ") and '" + b.field + "' (" + addr_str(b.addr) +
                      ") share a cache line but have distinct " +
                      (writer_clash ? "writers" : "spinning readers") +
                      " (false sharing, paper Fig. 10)";
        if (a.expect_shared && b.expect_shared) {
          expected_.push_back(std::move(v));
        } else {
          report(std::move(v));
        }
        done = true;
        break;
      }
      if (done) break;
    }
  }
}

void Ledger::report_layout(Violation v, bool expected) {
  std::lock_guard<std::mutex> lock(mu_);
  if (expected) {
    expected_.push_back(std::move(v));
  } else {
    report(std::move(v));
  }
}

void Ledger::set_abort_on_violation(bool abort_on_violation) {
  std::lock_guard<std::mutex> lock(mu_);
  abort_ = abort_on_violation;
}

std::vector<Violation> Ledger::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::vector<Violation> Ledger::expected_findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expected_;
}

Summary Ledger::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary s;
  s.flags_tracked = records_.size();
  s.stores_checked = stores_;
  s.loads_checked = loads_;
  s.violations = violations_.size();
  s.expected_findings = expected_.size();
  return s;
}

void Ledger::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  violations_.clear();
  expected_.clear();
  stores_ = 0;
  loads_ = 0;
}

std::string Ledger::flag_name(const void* addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.upper_bound(addr);
  if (it == records_.begin()) return "";
  --it;
  // Flags are registered by base address; the record applies when `addr`
  // falls inside the flag object itself.
  const auto* base = static_cast<const char*>(it->first);
  const auto* p = static_cast<const char*>(addr);
  if (p < base || p >= base + sizeof(mach::Flag)) return "";
  return it->second.name;
}

std::optional<WriterPolicy> Ledger::flag_policy(const void* addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.upper_bound(addr);
  if (it == records_.begin()) return std::nullopt;
  --it;
  const auto* base = static_cast<const char*>(it->first);
  const auto* p = static_cast<const char*>(addr);
  if (p < base || p >= base + sizeof(mach::Flag)) return std::nullopt;
  return it->second.policy;
}

std::string Ledger::flag_snapshot(const void* addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.upper_bound(addr);
  if (it == records_.begin()) return "";
  --it;
  const auto* base = static_cast<const char*>(it->first);
  const auto* p = static_cast<const char*>(addr);
  if (p < base || p >= base + sizeof(mach::Flag)) return "";
  const Record& rec = it->second;
  std::string s = flag_id(rec.name, it->first);
  if (rec.stored) {
    s += " writer=" + std::to_string(rec.writer) +
         " last_value=" + std::to_string(rec.last_value);
  } else {
    s += " (never stored)";
  }
  return s;
}

}  // namespace xhc::verify
