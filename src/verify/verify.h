// Protocol verifier: machine-checked single-writer flag discipline.
//
// The paper's synchronization claim (§III-E, Fig. 4, Fig. 10) — every control
// flag has exactly one writer, counters are monotone, readers observe a value
// only after its release-store, and flags with distinct writers live on
// distinct cache lines — used to be enforced by comment alone. This ledger
// turns it into a runtime check: every Machine owns one, components register
// their flags (name + writer policy), and checked builds (`-DXHC_VERIFY=ON`,
// which defines XHC_VERIFY_ENABLED=1) route every flag store/load through it.
//
// The ledger itself is always compiled, so registration, the layout lint and
// the direct API (used by tests and diagnostics) work in every build; only
// the per-operation hooks inside RealMachine/SimMachine are gated, keeping
// the hot path zero-cost when the toggle is off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mach/flag.h"

#if !defined(XHC_VERIFY_ENABLED)
#define XHC_VERIFY_ENABLED 0
#endif

namespace xhc::verify {

/// Who may store to a flag.
enum class WriterPolicy : unsigned char {
  /// Exactly one rank ever stores (the default for unregistered flags).
  kFixed,
  /// Leader-elected: ownership follows the root of the operation, so the
  /// writer may change — but only together with a strictly increasing value
  /// (an operation boundary; quiescence is guaranteed by the hierarchical
  /// acknowledgement step).
  kRotating,
  /// Whitelisted multi-writer: the Fig. 4 `atomic_ctr` and the sm/SMHC
  /// baselines' slot counters. The only policy under which RMW is legal;
  /// writer and monotonicity checks are skipped (concurrent fetch-adds reach
  /// the ledger out of order).
  kShared,
};

enum class Kind {
  kSecondWriter,        ///< store by a rank that does not own the flag
  kNonMonotonic,        ///< stored value decreased
  kRmwOnSingleWriter,   ///< fetch_add on a flag not whitelisted as kShared
  kStalePublish,        ///< reader observed a value before its publish time
  kSharedLine,          ///< flags with distinct writers/spinners share a line
  kCostlyLayout,        ///< line-model replay predicts excess coherence cost
                        ///< versus a separated-layout baseline (Fig. 10)
};

const char* to_string(Kind k) noexcept;

/// One recorded protocol violation (or whitelisted layout finding).
struct Violation {
  Kind kind = Kind::kSecondWriter;
  const void* flag = nullptr;  ///< address identity of the offending flag
  std::string flag_name;       ///< registered name, or empty
  int rank = -1;               ///< offending rank (store/load side)
  int other_rank = -1;         ///< prior owner / conflicting writer
  std::uint64_t value = 0;     ///< value involved in the violation
  std::uint64_t prior = 0;     ///< prior value (monotonicity) where relevant
  double vtime = 0.0;          ///< virtual time of the offending op (sim)
  double publish_vtime = 0.0;  ///< publish time the reader ran ahead of

  /// Human-readable one-line diagnostic naming rank and flag.
  std::string describe() const;
};

struct Summary {
  std::uint64_t flags_tracked = 0;
  std::uint64_t stores_checked = 0;
  std::uint64_t loads_checked = 0;
  std::uint64_t violations = 0;
  std::uint64_t expected_findings = 0;
};

// Writer / spinner identities for the layout lint.
inline constexpr int kLeader = -1;  ///< the group leader (whoever it is)
inline constexpr int kAny = -2;     ///< any rank may read here; never conflicts
inline constexpr int kNone = -3;    ///< no meaningful identity (kShared flags)

/// One flag's placement as seen by the layout lint.
struct LintItem {
  const void* addr = nullptr;
  int writer = kNone;   ///< slot id, kLeader, or kNone to skip the rule
  int spinner = kAny;   ///< designated spinning reader slot, if any
  const char* field = "";
  bool expect_shared = false;  ///< deliberately packed (Fig. 10 "shared")
};

/// Per-machine flag ledger. All methods are thread-safe (RealMachine calls
/// the hooks from concurrent rank threads); SimMachine's single host thread
/// pays one uncontended lock per op in checked builds.
class Ledger {
 public:
  /// Sentinel for hooks called without a virtual clock (RealMachine).
  static constexpr double kNoTime = -1.0;

  /// Declares a flag's name and writer policy. Idempotent; re-registering
  /// (e.g. a rebuilt component on a reused address) resets the record.
  void register_flag(const mach::Flag* f, std::string name,
                     WriterPolicy policy = WriterPolicy::kFixed);

  // --- store side ----------------------------------------------------------
  /// Checks writer uniqueness + monotonicity for a plain release-store and,
  /// when `vtime` is a real timestamp, records the publish history used by
  /// the read-side cross-check.
  void on_store(const mach::Flag* f, int rank, std::uint64_t value,
                double vtime = kNoTime);
  /// Same for an RMW (`result` is the post-op value). RMW is a violation on
  /// any flag not whitelisted as WriterPolicy::kShared.
  void on_rmw(const mach::Flag* f, int rank, std::uint64_t result,
              double vtime = kNoTime);

  // --- read side (SimMachine only) -----------------------------------------
  /// A read returned `observed` at virtual time `vtime`: verifies the value
  /// was published at or before that time (publish ordering).
  void on_observe(const mach::Flag* f, int rank, std::uint64_t observed,
                  double vtime);
  /// A wait-for-`threshold` resumed at `vtime`: verifies a satisfying
  /// publish existed by then.
  void on_wait_resume(const mach::Flag* f, int rank, std::uint64_t threshold,
                      double vtime);

  /// Drops every record in [base, base+bytes) — call on Machine::free so a
  /// reused address starts with a clean ledger.
  void forget_range(const void* base, std::size_t bytes);

  /// Layout lint over one control block: flags with distinct writers (or
  /// distinct spinning readers) must not share a cache line. Items marked
  /// expect_shared (the Fig. 10 packed variant) are recorded as expected
  /// findings instead of violations.
  void lint_group(const std::string& group, const std::vector<LintItem>& items);

  /// Records a finding produced by the predictive layout lint
  /// (verify::register_group_ctl's line-model replay). `expected` findings
  /// are whitelisted (Fig. 10 deliberately packed layouts); the rest count
  /// as violations and honor abort-on-violation.
  void report_layout(Violation v, bool expected);

  /// When true (default), the first violation throws util::Error with the
  /// diagnostic; when false, violations are only recorded (used by the
  /// negative tests to collect several).
  void set_abort_on_violation(bool abort_on_violation);

  std::vector<Violation> violations() const;
  std::vector<Violation> expected_findings() const;
  Summary summary() const;
  void reset();

  /// Registered name of the flag at `addr` (the greatest record at or below
  /// it — flags are registered by base address), or "" when untracked. Used
  /// by the watchdog / deadlock reports to name blocked channels.
  std::string flag_name(const void* addr) const;
  /// Registered writer policy of the flag covering `addr` (same lookup as
  /// flag_name), or std::nullopt when untracked. The static schedule
  /// analyzer (src/check/) pairs each modeled flag with its declared
  /// discipline through this.
  std::optional<WriterPolicy> flag_policy(const void* addr) const;
  /// One-line dump of the record covering `addr` (name, writer, last value)
  /// for stall diagnostics; "" when untracked.
  std::string flag_snapshot(const void* addr) const;

  Ledger() = default;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

 private:
  struct Record {
    std::string name;
    WriterPolicy policy = WriterPolicy::kFixed;
    int writer = kNone;          ///< owning rank once first stored
    std::uint64_t last_value = 0;
    bool stored = false;
    // Publish history (value, vtime), appended by timed stores; window kept
    // at least as wide as SimMachine::FlagHist's so the cross-check never
    // knows less than the model.
    std::vector<std::pair<std::uint64_t, double>> hist;
    std::uint64_t floor_value = 0;
    double floor_time = 0.0;
  };

  Record& touch(const mach::Flag* f);  // requires mu_ held
  void check_store(Record& rec, const mach::Flag* f, int rank,
                   std::uint64_t value, double vtime, bool is_rmw);
  /// Earliest publish time of `value`; negative when unknown-but-legal
  /// (pruned window), throws-by-report when never published.
  void check_published(Record& rec, const mach::Flag* f, int rank,
                       std::uint64_t value, double vtime, bool exact);
  void report(Violation v);  // requires mu_ held; may throw

  mutable std::mutex mu_;
  std::map<const void*, Record> records_;  // ordered: forget_range scans
  std::vector<Violation> violations_;
  std::vector<Violation> expected_;
  std::uint64_t stores_ = 0;
  std::uint64_t loads_ = 0;
  bool abort_ = true;
};

}  // namespace xhc::verify
