#include "verify/layout.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/ctl.h"
#include "sim/coh_stats.h"
#include "sim/line_model.h"
#include "sim/params.h"
#include "topo/topology.h"
#include "util/cacheline.h"

namespace xhc::verify {

namespace {

/// Rounds of the modeled publish/spin protocol replayed per shared line.
/// One round is enough to expose writer alternation and spinner fan-out;
/// extra rounds amortize the cold first fetch so the packed-vs-separated
/// comparison reflects steady state.
constexpr int kReplayRounds = 3;

/// Deterministic core standing in for a lint identity. The exact placement
/// is immaterial — the lint only needs distinct identities to land on
/// distinct cores so the line model sees the protocol's sharing pattern.
int core_of_identity(int who, int n_cores) {
  if (who == kLeader) return 0;
  if (who >= 0) return (1 + who) % n_cores;
  return n_cores - 1;  // kAny: one representative remote reader
}

struct ReplayCost {
  std::uint64_t hitm_class = 0;  ///< dirty-owner services + spin re-fetches
  std::uint64_t transfers = 0;   ///< exclusive-ownership migrations
  std::uint64_t total() const noexcept { return hitm_class + transfers; }
};

/// Replays kReplayRounds of the protocol implied by the lint identities —
/// each flag published by its writer, every spinner whose watched line the
/// store touched re-fetching — through a private line model, and returns
/// the modeled coherence cost. `separated` substitutes one synthetic cache
/// line per flag (the CachePadded counter-factual baseline).
ReplayCost replay(const topo::Topology& topo, const sim::SimParams& params,
                  const std::vector<const LintItem*>& items, bool separated) {
  sim::LineModel lm(&topo, &params);
  sim::CohStats st;
  st.set_enabled(true);
  lm.set_stats(&st);
  const int n_cores = topo.n_cores();

  std::vector<const void*> addr(items.size());
  for (std::size_t k = 0; k < items.size(); ++k) {
    addr[k] = separated
                  ? reinterpret_cast<const void*>(
                        (k + 1) * 2 * static_cast<std::uintptr_t>(
                                          util::kCacheLine))
                  : items[k]->addr;
  }

  double t = 0.0;
  for (int round = 0; round < kReplayRounds; ++round) {
    for (std::size_t k = 0; k < items.size(); ++k) {
      // One publish of flag k. kNone identities are the whitelisted
      // multi-writer counters (Fig. 4): modeled as two contending RMWs.
      if (items[k]->writer == kNone) {
        t = lm.rmw(addr[k], 0, t);
        t = lm.rmw(addr[k], 1 % n_cores, t);
      } else {
        t = lm.write(addr[k], core_of_identity(items[k]->writer, n_cores), t);
      }
      // Every spinner whose watched line the store just invalidated
      // re-fetches. One fetch per distinct reader core serves every flag
      // on that line.
      std::set<int> readers;
      const std::uintptr_t line = util::line_of(addr[k]);
      for (std::size_t j = 0; j < items.size(); ++j) {
        if (util::line_of(addr[j]) != line) continue;
        const int rc = core_of_identity(items[j]->spinner, n_cores);
        if (readers.insert(rc).second) t = lm.read(addr[j], rc, t);
      }
    }
  }

  ReplayCost c;
  c.hitm_class = st.total(sim::CohEvent::kHitm) +
                 st.total(sim::CohEvent::kSpinRefetch);
  c.transfers = st.total(sim::CohEvent::kOwnershipTransfer);
  return c;
}

/// Predictive lint shared by every control-block kind: every line holding
/// more than one flag is replayed through the node's line model against a
/// synthetic separated baseline; costlier-than-separated layouts are
/// reported as Kind::kCostlyLayout.
void run_layout_lint(Ledger& ledger, const topo::Topology& topo,
                     const std::vector<LintItem>& items,
                     const std::string& prefix) {
  const sim::SimParams params = sim::params_for(topo);
  std::map<std::uintptr_t, std::vector<const LintItem*>> by_line;
  for (const LintItem& item : items) {
    by_line[util::line_of(item.addr)].push_back(&item);
  }
  for (const auto& [line, on_line] : by_line) {
    (void)line;
    if (on_line.size() < 2) continue;
    const ReplayCost packed = replay(topo, params, on_line, false);
    const ReplayCost sep = replay(topo, params, on_line, true);
    if (packed.total() <= sep.total()) continue;

    bool all_expected = true;
    std::set<std::string> fields;
    for (const LintItem* item : on_line) {
      all_expected = all_expected && item->expect_shared;
      fields.insert(item->field);
    }
    std::string field_list;
    for (const std::string& f : fields) {
      if (!field_list.empty()) field_list += ", ";
      field_list += "'" + f + "'";
    }

    Violation v;
    v.kind = Kind::kCostlyLayout;
    v.flag = on_line.front()->addr;
    v.value = packed.total();
    v.prior = sep.total();
    v.flag_name =
        prefix + ": " + std::to_string(on_line.size()) + " flags (" +
        field_list + ") packed on one cache line; line-model replay predicts " +
        std::to_string(packed.hitm_class) + " HITM-class services + " +
        std::to_string(packed.transfers) + " ownership transfers vs " +
        std::to_string(sep.total()) + " for a separated layout over " +
        std::to_string(kReplayRounds) + " rounds (false sharing, paper "
        "Fig. 10)";
    ledger.report_layout(std::move(v), all_expected);
  }
}

}  // namespace

void register_group_ctl(Ledger& ledger, const topo::Topology& topo,
                        const core::GroupCtl& ctl, const std::string& prefix) {
  const int n = ctl.slots;
  auto name = [&](const char* field, int i) {
    return prefix + "." + field + "[" + std::to_string(i) + "]";
  };

  ledger.register_flag(&*ctl.atomic_ctr[0], prefix + ".atomic_ctr",
                       WriterPolicy::kShared);
  for (int i = 0; i < n; ++i) {
    // seq/announce slot i is published only by the rank occupying slot i
    // while it leads the group for the current root — a fixed writer even
    // under rotating roots (the single-mailbox kRotating design let op N's
    // leader clobber the pointer a straggler of op N-1 had yet to read).
    ledger.register_flag(&*ctl.seq[i], name("seq", i), WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.announce[i], name("announce", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.ack[i], name("ack", i), WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.member_seq[i], name("member_seq", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.reduce_ready[i], name("reduce_ready", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.reduce_done[i], name("reduce_done", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.announce_sep[i], name("announce_sep", i),
                         WriterPolicy::kRotating);
    ledger.register_flag(&ctl.announce_shared[i], name("announce_shared", i),
                         WriterPolicy::kRotating);
  }

  // Layout lint: one item per flag, with the writer/spinner identity the
  // protocol assigns.
  std::vector<LintItem> items;
  items.reserve(static_cast<std::size_t>(1 + 8 * n));
  items.push_back({&*ctl.atomic_ctr[0], kNone, kAny, "atomic_ctr", false});
  // Field names for slot arrays stay stable strings (LintItem keeps a
  // pointer); the slot index is recoverable from the reported addresses.
  for (int i = 0; i < n; ++i) {
    items.push_back({&*ctl.seq[i], i, kAny, "seq", false});
    items.push_back({&*ctl.announce[i], i, kAny, "announce", false});
    items.push_back({&*ctl.ack[i], i, kLeader, "ack", false});
    items.push_back({&*ctl.member_seq[i], i, kLeader, "member_seq", false});
    items.push_back({&*ctl.reduce_ready[i], i, kLeader, "reduce_ready", false});
    items.push_back({&*ctl.reduce_done[i], i, kAny, "reduce_done", false});
    items.push_back({&*ctl.announce_sep[i], kLeader, i, "announce_sep", false});
    items.push_back(
        {&ctl.announce_shared[i], kLeader, i, "announce_shared", true});
  }

  // Predictive lint: packing is legal only where the protocol makes the
  // sharing free (single writer and a single reading core), or where it is
  // a deliberate experiment variant (expect_shared).
  run_layout_lint(ledger, topo, items, prefix);
}

void register_shard_ctl(Ledger& ledger, const topo::Topology& topo,
                        const core::ShardCtl& ctl, const std::string& prefix) {
  const int n = ctl.slots;
  auto name = [&](const char* field, int i) {
    return prefix + "." + field + "[" + std::to_string(i) + "]";
  };

  // Slot i belongs to global rank i on every communicator view — shard and
  // stripe ownership follows the rank, not an elected role — so the writer
  // is fixed even under rotating roots.
  std::vector<LintItem> items;
  items.reserve(static_cast<std::size_t>(3 * n));
  for (int i = 0; i < n; ++i) {
    ledger.register_flag(&*ctl.shard_seq[i], name("shard_seq", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.prog[i], name("prog", i), WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.stripe_ready[i], name("stripe_ready", i),
                         WriterPolicy::kFixed);
    items.push_back({&*ctl.shard_seq[i], i, kAny, "shard_seq", false});
    items.push_back({&*ctl.prog[i], i, kAny, "prog", false});
    items.push_back({&*ctl.stripe_ready[i], i, kAny, "stripe_ready", false});
  }

  run_layout_lint(ledger, topo, items, prefix);
}

}  // namespace xhc::verify
