#include "verify/layout.h"

#include <vector>

#include "core/ctl.h"

namespace xhc::verify {

void register_group_ctl(Ledger& ledger, const core::GroupCtl& ctl,
                        const std::string& prefix) {
  const int n = ctl.slots;
  auto name = [&](const char* field, int i) {
    return prefix + "." + field + "[" + std::to_string(i) + "]";
  };

  ledger.register_flag(&*ctl.seq[0], prefix + ".seq", WriterPolicy::kRotating);
  ledger.register_flag(&*ctl.announce[0], prefix + ".announce",
                       WriterPolicy::kRotating);
  ledger.register_flag(&*ctl.atomic_ctr[0], prefix + ".atomic_ctr",
                       WriterPolicy::kShared);
  for (int i = 0; i < n; ++i) {
    ledger.register_flag(&*ctl.ack[i], name("ack", i), WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.member_seq[i], name("member_seq", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.reduce_ready[i], name("reduce_ready", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.reduce_done[i], name("reduce_done", i),
                         WriterPolicy::kFixed);
    ledger.register_flag(&*ctl.announce_sep[i], name("announce_sep", i),
                         WriterPolicy::kRotating);
    ledger.register_flag(&ctl.announce_shared[i], name("announce_shared", i),
                         WriterPolicy::kRotating);
  }

  // Layout lint: one item per flag, with the writer/spinner identity the
  // protocol assigns. Distinct writers (or distinct spinning readers) on
  // one cache line is false sharing — except the packed announce_shared
  // array, which exists to measure exactly that (Fig. 10).
  std::vector<LintItem> items;
  items.reserve(static_cast<std::size_t>(3 + 6 * n));
  items.push_back({&*ctl.seq[0], kLeader, kAny, "seq", false});
  items.push_back({&*ctl.announce[0], kLeader, kAny, "announce", false});
  items.push_back({&*ctl.atomic_ctr[0], kNone, kAny, "atomic_ctr", false});
  // Field names for slot arrays stay stable strings (LintItem keeps a
  // pointer); the slot index is recoverable from the reported addresses.
  for (int i = 0; i < n; ++i) {
    items.push_back({&*ctl.ack[i], i, kLeader, "ack", false});
    items.push_back({&*ctl.member_seq[i], i, kLeader, "member_seq", false});
    items.push_back({&*ctl.reduce_ready[i], i, kLeader, "reduce_ready", false});
    items.push_back({&*ctl.reduce_done[i], i, kAny, "reduce_done", false});
    items.push_back({&*ctl.announce_sep[i], kLeader, i, "announce_sep", false});
    items.push_back(
        {&ctl.announce_shared[i], kLeader, i, "announce_shared", true});
  }
  ledger.lint_group(prefix, items);
}

}  // namespace xhc::verify
