// Registration + layout lint of the core control block (GroupCtl).
//
// Kept out of core/ctl.h so the ledger API does not leak into every control
// block user; CtlArena::add_group calls this for each group it builds.
#pragma once

#include <string>

#include "verify/verify.h"

namespace xhc::core {
struct GroupCtl;
}  // namespace xhc::core

namespace xhc::verify {

/// Registers every flag of `ctl` under `prefix` (policies per paper §III-E:
/// leader flags rotate with the root, member-slot flags are fixed-writer,
/// `atomic_ctr` is the whitelisted Fig. 4 multi-writer) and runs the layout
/// lint, flagging the deliberately packed `announce_shared` array (Fig. 10)
/// as an expected finding.
void register_group_ctl(Ledger& ledger, const core::GroupCtl& ctl,
                        const std::string& prefix);

}  // namespace xhc::verify
