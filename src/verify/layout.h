// Registration + predictive layout lint of the core control block (GroupCtl).
//
// Kept out of core/ctl.h so the ledger API does not leak into every control
// block user; CtlArena::add_group calls this for each group it builds.
#pragma once

#include <string>

#include "verify/verify.h"

namespace xhc::core {
struct GroupCtl;
struct ShardCtl;
}  // namespace xhc::core

namespace xhc::topo {
class Topology;
}  // namespace xhc::topo

namespace xhc::verify {

/// Registers every flag of `ctl` under `prefix` (policies per paper §III-E:
/// leader flags rotate with the root, member-slot flags are fixed-writer,
/// `atomic_ctr` is the whitelisted Fig. 4 multi-writer) and runs the
/// predictive layout lint: every cache line holding more than one flag is
/// replayed through the node's line model (sim::LineModel + sim::CohStats)
/// against a synthetic separated-layout baseline, and layouts whose
/// predicted HITM-class traffic + ownership transfers exceed the baseline
/// are reported as Kind::kCostlyLayout — expected findings when the packing
/// is deliberate (the Fig. 10 `announce_shared` array), violations
/// otherwise.
void register_group_ctl(Ledger& ledger, const topo::Topology& topo,
                        const core::GroupCtl& ctl, const std::string& prefix);

/// Registers the large-message shard/stripe plane (core::ShardCtl): every
/// slot flag is written only by its own global rank (WriterPolicy::kFixed)
/// and spun on by arbitrary peers; slots are cache-line padded, so the
/// layout lint should stay silent.
void register_shard_ctl(Ledger& ledger, const topo::Topology& topo,
                        const core::ShardCtl& ctl, const std::string& prefix);

}  // namespace xhc::verify
