#include "obs/metrics.h"

#include "util/check.h"

namespace xhc::obs {

const char* to_string(Counter c) noexcept {
  switch (c) {
    case Counter::kCicoBytes:
      return "cico_bytes";
    case Counter::kSingleCopyBytes:
      return "single_copy_bytes";
    case Counter::kCmaBytes:
      return "cma_bytes";
    case Counter::kReduceBytes:
      return "reduce_bytes";
    case Counter::kChunksLevel0:
      return "chunks_level0";
    case Counter::kChunksLevel1:
      return "chunks_level1";
    case Counter::kChunksLevel2:
      return "chunks_level2";
    case Counter::kChunksDeeper:
      return "chunks_deeper";
    case Counter::kFlagWaits:
      return "flag_waits";
    case Counter::kFlagSpinIters:
      return "flag_spin_iters";
    case Counter::kRegCacheHits:
      return "reg_cache_hits";
    case Counter::kRegCacheMisses:
      return "reg_cache_misses";
    case Counter::kRegCacheEvictions:
      return "reg_cache_evictions";
    case Counter::kAttachBytes:
      return "attach_bytes";
    case Counter::kMsgIntraNuma:
      return "msg_intra_numa";
    case Counter::kMsgInterNuma:
      return "msg_inter_numa";
    case Counter::kMsgInterSocket:
      return "msg_inter_socket";
    case Counter::kFaultAttachFails:
      return "fault_attach_fails";
    case Counter::kFaultExposeFails:
      return "fault_expose_fails";
    case Counter::kFaultRegMissForced:
      return "fault_forced_misses";
    case Counter::kFaultShmRetries:
      return "fault_shm_retries";
    case Counter::kFaultStalls:
      return "fault_straggler_stalls";
    case Counter::kFaultFlagDelays:
      return "fault_flag_delays";
    case Counter::kFaultFlagDrops:
      return "fault_flag_drops";
    case Counter::kFaultFallbacks:
      return "fault_fallbacks";
    case Counter::kCohLocalHit:
      return "coh_local_hit";
    case Counter::kCohLlcHit:
      return "coh_llc_hit";
    case Counter::kCohSlcHit:
      return "coh_slc_hit";
    case Counter::kCohHitm:
      return "coh_hitm";
    case Counter::kCohSpinRefetch:
      return "coh_spin_refetch";
    case Counter::kCohRemoteFill:
      return "coh_remote_fill";
    case Counter::kCohInval:
      return "coh_invalidations";
    case Counter::kCohOwnershipTransfer:
      return "coh_ownership_transfers";
    case Counter::kCohRmw:
      return "coh_rmw";
    case Counter::kCohBlockLocalLlc:
      return "coh_block_local_llc";
    case Counter::kCohBlockSlc:
      return "coh_block_slc";
    case Counter::kCohBlockProducerLlc:
      return "coh_block_producer_llc";
    case Counter::kCohBlockMemory:
      return "coh_block_memory";
    case Counter::kCohBlockInval:
      return "coh_block_invalidations";
    case Counter::kSloWindowsChecked:
      return "slo_windows_checked";
    case Counter::kSloViolations:
      return "slo_violations";
    case Counter::kCount_:
      break;
  }
  return "?";
}

const char* to_string(Gauge g) noexcept {
  switch (g) {
    case Gauge::kCtlBytes:
      return "ctl_bytes";
    case Gauge::kCtlGroups:
      return "ctl_groups";
    case Gauge::kCicoSegmentBytes:
      return "cico_segment_bytes";
    case Gauge::kTraceCapacity:
      return "trace_capacity";
    case Gauge::kVerifyFlagsTracked:
      return "verify_flags_tracked";
    case Gauge::kVerifyStoresChecked:
      return "verify_stores_checked";
    case Gauge::kVerifyLoadsChecked:
      return "verify_loads_checked";
    case Gauge::kVerifyViolations:
      return "verify_violations";
    case Gauge::kVerifyExpectedFindings:
      return "verify_expected_findings";
    case Gauge::kCount_:
      break;
  }
  return "?";
}

Metrics::Metrics(int n_ranks) {
  XHC_REQUIRE(n_ranks > 0, "metrics need at least one rank");
  rows_ = std::vector<Row>(static_cast<std::size_t>(n_ranks));
}

std::uint64_t Metrics::total(Counter c) const noexcept {
  std::uint64_t sum = 0;
  for (const Row& row : rows_) sum += row.v[static_cast<int>(c)];
  return sum;
}

void Metrics::reset_counters() {
  for (Row& row : rows_) {
    for (auto& v : row.v) v = 0;
  }
}

}  // namespace xhc::obs
