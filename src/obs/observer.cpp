#include "obs/observer.h"

#include <algorithm>
#include <map>
#include <string>

namespace xhc::obs {

Observer::Observer(int n_ranks, std::size_t span_capacity)
    : trace_(n_ranks, span_capacity), metrics_(n_ranks), hists_(n_ranks) {
  metrics_.set_gauge(Gauge::kTraceCapacity, trace_.capacity());
}

void Observer::absorb(const p2p::TrafficCounter& traffic) {
  // Attribution to individual ranks is lost; book under rank 0 so totals
  // stay correct.
  metrics_.add(0, Counter::kMsgIntraNuma, traffic.intra_numa());
  metrics_.add(0, Counter::kMsgInterNuma, traffic.inter_numa());
  metrics_.add(0, Counter::kMsgInterSocket, traffic.inter_socket());
}

util::Table Observer::span_table() const {
  struct Agg {
    std::uint64_t count = 0;
    double total = 0.0;
    double max = 0.0;
  };
  // Ordered by (cat, name) for stable output.
  std::map<std::pair<std::string, std::string>, Agg> by_site;
  for (int r = 0; r < n_ranks(); ++r) {
    for (const Span& s : trace_.spans(r)) {
      Agg& a = by_site[{s.cat, s.name}];
      ++a.count;
      const double d = s.t1 - s.t0;
      a.total += d;
      a.max = std::max(a.max, d);
    }
  }

  util::Table table({"Cat", "Span", "Count", "Total us", "Avg us", "Max us"});
  for (const auto& [site, a] : by_site) {
    table.add_row({site.first, site.second, std::to_string(a.count),
                   util::Table::fmt_double(a.total * 1e6),
                   util::Table::fmt_double(a.total * 1e6 /
                                           static_cast<double>(a.count)),
                   util::Table::fmt_double(a.max * 1e6)});
  }
  return table;
}

util::Table Observer::metrics_table(bool per_rank) const {
  util::Table table({"Metric", "Total", "Per-rank avg"});
  // Counter-enum order first, then rank: stable across runs, so the table
  // can be diffed in tests and CI.
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t total = metrics_.total(c);
    if (total == 0) continue;
    table.add_row({to_string(c), std::to_string(total),
                   util::Table::fmt_double(static_cast<double>(total) /
                                           n_ranks())});
    if (per_rank) {
      for (int r = 0; r < n_ranks(); ++r) {
        const std::uint64_t v = metrics_.value(r, c);
        if (v == 0) continue;
        table.add_row({std::string("  [r") + std::to_string(r) + "]",
                       std::to_string(v), "-"});
      }
    }
  }
  for (int i = 0; i < kNumGauges; ++i) {
    const auto g = static_cast<Gauge>(i);
    const std::uint64_t v = metrics_.gauge(g);
    if (v == 0) continue;
    table.add_row({to_string(g), std::to_string(v), "-"});
  }
  return table;
}

}  // namespace xhc::obs
