// Windowed time-series plane (observability layer, DESIGN.md § Service
// telemetry plane).
//
// Every other observability surface (spans, counters, hists) reports
// end-of-run aggregates; a TimeSeries slices the run into fixed-width
// windows of run time (virtual on SimMachine, wall on RealMachine) so
// consumers — the service interference report, the SLO monitor, the
// ROADMAP-item-3 autotuner — can see *when* things happened.
//
// Two kinds of data land in the plane:
//
//   * sample series (`add_series` + `record`): per-rank value samples
//     (latencies, wait durations) aggregated per window as
//     count/sum/min/max. Recording is allocation-free and single-writer
//     per rank (line-padded rows, no atomics), the same discipline as
//     obs::Metrics and obs::HistSet.
//   * counter series (`watch_counters` + `sample_counters`): windowed
//     deltas of an obs::Metrics registry. Each watcher keeps its own
//     per-(rank, counter) watermark — the publish_delta pattern of
//     sim::CohStats — so repeated sampling, a concurrent end-of-run
//     `--metrics` read of the same registry, and Metrics::reset_counters
//     all compose without double counting (a value below the watermark is
//     treated as a reset: the delta restarts from zero). Sampling rank r
//     reads only rows written by rank r (the `row_of` map), so per-rank
//     self-sampling mid-run is race-free and backend-deterministic.
//
// Post-run, `merged` folds ranks in rank order (deterministic) and
// write_timeseries_json emits a byte-deterministic sparse JSON document.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/cacheline.h"

namespace xhc::obs {

class TimeSeries {
 public:
  /// One window's aggregate of a sample series.
  struct Cell {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void add(double v) noexcept {
      if (count == 0 || v < min) min = v;
      if (count == 0 || v > max) max = v;
      ++count;
      sum += v;
    }
    /// Fold `o` in; commutative up to FP addition order, so fold in a
    /// fixed (rank) order for byte determinism.
    void merge(const Cell& o) noexcept {
      if (o.count == 0) return;
      if (count == 0 || o.min < min) min = o.min;
      if (count == 0 || o.max > max) max = o.max;
      count += o.count;
      sum += o.sum;
    }
  };

  /// Windows cover [0, window_seconds * max_windows); later timestamps
  /// clamp into the last window (a soak that overruns the plane loses
  /// resolution, never data).
  TimeSeries(int n_ranks, double window_seconds, int max_windows = 256);

  int n_ranks() const noexcept { return static_cast<int>(rows_.size()); }
  double window_seconds() const noexcept { return window_; }
  int max_windows() const noexcept { return max_windows_; }

  /// Window holding timestamp `t` (clamped into [0, max_windows)).
  int window_of(double t) const noexcept {
    if (!(t > 0.0)) return 0;
    const double w = t / window_;
    const auto iw = w >= static_cast<double>(max_windows_ - 1)
                        ? max_windows_ - 1
                        : static_cast<int>(w);
    return iw;
  }

  // --- sample series -------------------------------------------------------

  /// Registers a sample series. Pre-run only (reallocates the rank rows);
  /// returns the series id `record` takes.
  int add_series(std::string name);

  int n_series() const noexcept { return static_cast<int>(names_.size()); }
  const std::string& series_name(int sid) const {
    return names_[static_cast<std::size_t>(sid)];
  }

  /// Records one sample at timestamp `t` into `rank`'s row. Allocation-free;
  /// must be called from the thread executing `rank` (single-writer rows).
  void record(int rank, int sid, double t, double v) noexcept {
    Row& row = rows_[static_cast<std::size_t>(rank)];
    const int w = window_of(t);
    row.cells[static_cast<std::size_t>(sid * max_windows_ + w)].add(v);
    if (w >= row.used) row.used = w + 1;
  }

  // --- counter series (watermarked Metrics deltas) -------------------------

  /// Registers `m` for windowed delta sampling. `row_of` maps a sampling
  /// rank of *this* plane to its row in `m` (-1 = not represented; empty =
  /// identity). Pre-run only; `m` must outlive the sampling.
  void watch_counters(const Metrics* m, std::vector<int> row_of = {});

  int n_watchers() const noexcept { return static_cast<int>(watchers_.size()); }

  /// Folds the watched registries' deltas since `rank`'s previous sample
  /// into the window holding `now`. Reads only rows `row_of` assigns to
  /// `rank`, so calling this from the rank's own thread mid-run is
  /// race-free. Allocation-free.
  void sample_counters(int rank, double now) noexcept;

  // --- post-run readers ----------------------------------------------------

  /// Highest touched window + 1, over every rank, series and counter.
  int used_windows() const noexcept;

  /// Sample-series cell merged over ranks (rank order, deterministic).
  Cell merged(int sid, int w) const noexcept;

  /// Counter delta sum for window `w`, merged over ranks.
  double counter_sum(Counter c, int w) const noexcept;
  /// Sum over all windows (equals the watched registries' totals when every
  /// increment happened between the first and last sample).
  double counter_total(Counter c) const noexcept;

  /// Forgets all samples, deltas and watermarks (series registrations and
  /// watchers persist).
  void clear() noexcept;

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

 private:
  struct alignas(util::kCacheLine) Row {
    std::vector<Cell> cells;       ///< [sid * max_windows + w]
    std::vector<double> counters;  ///< [counter * max_windows + w]
    int used = 0;                  ///< highest touched window + 1
  };

  struct Watcher {
    const Metrics* m = nullptr;
    std::vector<int> row_of;           ///< plane rank -> m row (-1 = none)
    std::vector<std::uint64_t> marks;  ///< [rank * kNumCounters + c]
  };

  double window_;
  int max_windows_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
  std::vector<Watcher> watchers_;
};

/// Byte-deterministic sparse JSON export: sample series in registration
/// order (count/sum/min/max per non-empty window), then counter series in
/// enum order (delta sum per non-empty window), all values %.17g exact.
void write_timeseries_json(std::ostream& os, const TimeSeries& ts,
                           const std::string& label = "xhc");

/// Convenience: opens `path` (truncating) and writes the JSON; throws
/// util::Error when the file cannot be written.
void write_timeseries_json_file(const std::string& path, const TimeSeries& ts,
                                const std::string& label = "xhc");

}  // namespace xhc::obs
