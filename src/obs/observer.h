// Observer — the unit of observability plumbed through the stack.
//
// One Observer pairs a span Recorder with a Metrics registry for one
// machine's rank set. Components accept it through
// coll::Component::set_observer (collection additionally gated by the
// coll::Tuning::trace knob so default configurations pay only a null
// check), and the endpoint / control layers feed it through the component.
// After a run, the exporters in obs/export.h turn the recorder into a
// Chrome trace and summary_tables() into paper-style console tables.
#pragma once

#include <memory>

#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "p2p/counters.h"
#include "util/table.h"

namespace xhc::obs {

class Observer {
 public:
  /// `span_capacity` is the per-rank ring size (power of two, see Recorder).
  explicit Observer(int n_ranks, std::size_t span_capacity = 1u << 14);

  Recorder& trace() noexcept { return trace_; }
  const Recorder& trace() const noexcept { return trace_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  HistSet& hists() noexcept { return hists_; }
  const HistSet& hists() const noexcept { return hists_; }

  int n_ranks() const noexcept { return metrics_.n_ranks(); }

  /// Folds a pt2pt traffic counter's distance classes into the registry
  /// (use for layers without live Observer plumbing, e.g. p2p::Fabric).
  /// Call once per counter, outside parallel regions.
  void absorb(const p2p::TrafficCounter& traffic);

  /// Per-(cat, name) span aggregation: count, total/avg/max duration.
  util::Table span_table() const;
  /// Non-zero counters (total over ranks) followed by set gauges. Rows are
  /// deterministically ordered by counter enum; with `per_rank`, each
  /// counter's non-zero per-rank values follow its total, ordered by rank,
  /// so the table diffs cleanly between runs.
  util::Table metrics_table(bool per_rank = false) const;

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

 private:
  Recorder trace_;
  Metrics metrics_;
  HistSet hists_;
};

}  // namespace xhc::obs
