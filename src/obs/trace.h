// Per-rank span tracer (observability layer, DESIGN.md § Observability).
//
// Collective code marks regions of interest with XHC_TRACE RAII spans; each
// span records [enter, exit) against Ctx::now(), so the identical
// instrumentation yields wall-clock traces on RealMachine and virtual-time
// traces on SimMachine. Spans land in fixed-capacity per-rank ring buffers:
// each ring has exactly one writer (its rank's thread), recording is a few
// stores with no locks and no allocation, and a full ring overwrites its
// oldest entries (the most recent window survives). Readers (exporters,
// tests) run after Machine::run has joined the rank threads.
//
// Category and name must be string literals (or otherwise outlive the
// Recorder): spans store the pointers, never copies.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mach/machine.h"
#include "util/cacheline.h"

namespace xhc::obs {

/// One closed span. `cat` is the coarse phase class ("copy", "reduce",
/// "wait", "collective", "smsc"); `name` the specific site
/// ("bcast.pull_chunk"); `arg` an optional payload (bytes, level, ...).
struct Span {
  const char* cat = nullptr;
  const char* name = nullptr;
  double t0 = 0.0;  ///< seconds since run start (wall or virtual)
  double t1 = 0.0;
  std::uint64_t arg = 0;
};

/// Lock-free per-rank span sink. Constructed (and sized) off the hot path;
/// `record` is wait-free for the owning rank thread.
class Recorder {
 public:
  /// `capacity` is the per-rank ring size, rounded up to a power of two.
  explicit Recorder(int n_ranks, std::size_t capacity = 1u << 14);

  int n_ranks() const noexcept { return static_cast<int>(rings_.size()); }
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Collection master switch; checked by every span site. Flip only
  /// outside parallel regions.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends a span to `rank`'s ring. Must be called from the thread
  /// executing `rank` (single-writer discipline).
  void record(int rank, const char* cat, const char* name, double t0,
              double t1, std::uint64_t arg = 0) noexcept {
    Ring& ring = rings_[static_cast<std::size_t>(rank)];
    ring.slots[ring.head & mask_] = Span{cat, name, t0, t1, arg};
    ++ring.head;
  }

  // --- post-run readers (require the rank threads to have joined) ----------

  /// Retained spans of `rank`, oldest first.
  std::vector<Span> spans(int rank) const;
  /// Spans ever recorded by `rank` (retained + overwritten).
  std::uint64_t recorded(int rank) const noexcept {
    return rings_[static_cast<std::size_t>(rank)].head;
  }
  /// Spans lost to ring wrap-around for `rank`.
  std::uint64_t dropped(int rank) const noexcept;
  /// Totals over all ranks.
  std::uint64_t recorded() const noexcept {
    std::uint64_t sum = 0;
    for (const Ring& ring : rings_) sum += ring.head;
    return sum;
  }
  std::uint64_t dropped() const noexcept {
    std::uint64_t sum = 0;
    for (int r = 0; r < n_ranks(); ++r) sum += dropped(r);
    return sum;
  }

  /// Forgets every span (counters of the owning Observer are unaffected).
  void clear();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

 private:
  /// Line-aligned so neighbouring ranks' heads never share a cache line.
  struct alignas(util::kCacheLine) Ring {
    std::vector<Span> slots;
    std::uint64_t head = 0;  ///< total spans recorded; slot index = head&mask
  };

  std::size_t mask_;
  std::vector<Ring> rings_;
  std::atomic<bool> enabled_{true};
};

/// RAII span: opens at construction, records at scope exit. A null recorder
/// (or a disabled one) reduces the whole guard to two branches.
class SpanGuard {
 public:
  SpanGuard(Recorder* rec, mach::Ctx& ctx, const char* cat, const char* name,
            std::uint64_t arg = 0) noexcept {
    if (rec != nullptr && rec->enabled()) {
      rec_ = rec;
      ctx_ = &ctx;
      cat_ = cat;
      name_ = name;
      arg_ = arg;
      t0_ = ctx.now();
    }
  }

  ~SpanGuard() {
    if (rec_ != nullptr) {
      rec_->record(ctx_->rank(), cat_, name_, t0_, ctx_->now(), arg_);
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Recorder* rec_ = nullptr;
  mach::Ctx* ctx_ = nullptr;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  double t0_ = 0.0;
  std::uint64_t arg_ = 0;
};

}  // namespace xhc::obs

#define XHC_OBS_CONCAT2(a, b) a##b
#define XHC_OBS_CONCAT(a, b) XHC_OBS_CONCAT2(a, b)

/// Scoped span: XHC_TRACE(recorder_ptr, ctx, "copy", "bcast.pull_chunk",
/// bytes). `cat`/`name` must be string literals; the optional trailing
/// argument is stored in Span::arg.
#define XHC_TRACE(rec, ctx, cat, name, ...)                             \
  ::xhc::obs::SpanGuard XHC_OBS_CONCAT(xhc_trace_, __LINE__)(           \
      (rec), (ctx), (cat), (name)__VA_OPT__(, ) __VA_ARGS__)
