#pragma once

// Critical-path analyzer (observability layer, DESIGN.md § Observatory).
//
// Consumes the span Recorder after a run and reconstructs, per collective
// operation, where the end-to-end latency went: which rank finished last,
// the chain of blocking waits that rank was transitively stalled on
// (member → leader → ... → root), per-rank self vs. wait time, per-level
// wait aggregates, and a per-phase (span category) breakdown. On SimMachine
// the span timestamps are exact virtual time, so every number here is
// deterministic and byte-for-byte testable.
//
// Operations are identified as spans with cat == "collective". Because each
// rank's ring may drop its oldest spans independently, ops are aligned from
// the END of every ring: the last collective span of every rank belongs to
// the same (latest) operation, and so on backwards for as many ops as every
// rank retains.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/table.h"

namespace xhc::obs {

// --- wait-span argument encoding -------------------------------------------
//
// "wait" spans pack the hierarchy level and the peer rank whose publication
// the waiter is blocked on into Span::arg, so the analyzer can follow the
// blocking edge. Both are biased by one so that "unknown" (-1) encodes as 0
// and an arg of 0 (spans recorded before this encoding existed) decodes
// back to unknown.

constexpr std::uint64_t wait_arg(int level, int peer) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level + 1))
          << 32) |
         static_cast<std::uint32_t>(peer + 1);
}

struct WaitArg {
  int level;  ///< hierarchy level of the wait site, -1 when unknown
  int peer;   ///< rank whose flag publication was awaited, -1 when unknown
};

constexpr WaitArg unpack_wait_arg(std::uint64_t a) noexcept {
  return {static_cast<int>(a >> 32) - 1,
          static_cast<int>(a & 0xffffffffu) - 1};
}

// --- analysis results ------------------------------------------------------

/// One edge of the blocking chain, from the latency-bound rank backwards.
struct ChainStep {
  int rank = -1;          ///< the waiting rank
  const char* site = "";  ///< wait-span name ("announce_wait", ...)
  int level = -1;         ///< hierarchy level of the wait (-1 unknown)
  int peer = -1;          ///< rank waited upon (-1 unknown: chain root)
  double t_end = 0.0;     ///< when the wait was satisfied (s)
  double wait_s = 0.0;    ///< how long this rank blocked there (s)
};

struct RankBreakdown {
  double total_s = 0.0;  ///< rank's span of the op [t0, t1)
  double wait_s = 0.0;   ///< summed "wait" spans inside the op
  double self_s() const noexcept { return total_s - wait_s; }
};

struct LevelWait {
  double wait_s = 0.0;
  std::uint64_t waits = 0;
};

struct OpReport {
  std::string name;          ///< collective span name ("xhc.bcast", ...)
  std::uint64_t arg = 0;     ///< collective span arg (message bytes)
  double t_start = 0.0;      ///< min t0 over ranks
  double t_end = 0.0;        ///< max t1 over ranks
  int bound_rank = -1;       ///< rank whose finish time is t_end
  double latency_s() const noexcept { return t_end - t_start; }

  std::vector<ChainStep> chain;        ///< blocking chain from bound_rank
  std::vector<RankBreakdown> ranks;    ///< indexed by rank
  std::map<int, LevelWait> levels;     ///< level -> aggregate wait, all ranks
  std::map<std::string, double> phases;  ///< cat -> nested span seconds, all
                                         ///< ranks (waits excluded)
};

/// Reconstructs per-op reports from the retained spans, oldest op first.
/// Only ops every rank still retains are returned (ring wrap drops the
/// oldest); ranks that recorded no collective spans at all are treated as
/// non-participants and simply contribute nothing.
std::vector<OpReport> analyze_critical_paths(const Recorder& rec);

/// Summary table: one row per op (name, bytes, latency, bound rank, wait
/// share of the bound rank, chain rendered as "r3<-r1<-r0").
util::Table critpath_table(const std::vector<OpReport>& ops);

/// Detailed tables for one op.
util::Table critpath_chain_table(const OpReport& op);
util::Table critpath_level_table(const OpReport& op);
util::Table critpath_phase_table(const OpReport& op);

/// Human-readable report: the summary table plus a detailed breakdown of
/// the slowest op. Deterministic given a deterministic Recorder.
void write_critpath_report(std::ostream& os, const std::vector<OpReport>& ops);

}  // namespace xhc::obs
