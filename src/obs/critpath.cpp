#include "obs/critpath.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <ostream>

namespace xhc::obs {

namespace {

bool is_cat(const Span& s, const char* cat) noexcept {
  return s.cat != nullptr && std::strcmp(s.cat, cat) == 0;
}

std::string fmt_us(double seconds) {
  return util::Table::fmt_double(seconds * 1e6, 3);
}

/// Chain rendered compactly: "r5<-r1<-r0" (bound rank first).
std::string chain_string(const OpReport& op) {
  std::string out = "r" + std::to_string(op.bound_rank);
  int hops = 0;
  for (const ChainStep& step : op.chain) {
    if (step.peer < 0) break;
    if (++hops > 8) {
      out += "<-...";
      break;
    }
    out += "<-r" + std::to_string(step.peer);
  }
  return out;
}

}  // namespace

std::vector<OpReport> analyze_critical_paths(const Recorder& rec) {
  const int n = rec.n_ranks();
  std::vector<std::vector<Span>> spans(static_cast<std::size_t>(n));
  std::vector<std::vector<std::size_t>> colls(static_cast<std::size_t>(n));
  std::size_t n_ops = std::numeric_limits<std::size_t>::max();
  bool any = false;
  for (int r = 0; r < n; ++r) {
    spans[r] = rec.spans(r);
    for (std::size_t i = 0; i < spans[r].size(); ++i) {
      if (is_cat(spans[r][i], "collective")) colls[r].push_back(i);
    }
    if (!colls[r].empty()) {
      any = true;
      n_ops = std::min(n_ops, colls[r].size());
    }
  }
  if (!any) return {};

  std::vector<OpReport> reports(n_ops);
  for (std::size_t k = 0; k < n_ops; ++k) {
    OpReport& rep = reports[k];
    rep.ranks.resize(static_cast<std::size_t>(n));
    // Wait spans of this op, per rank, in ring (i.e. close-time) order —
    // kept for the blocking-chain walk below.
    std::vector<std::vector<const Span*>> waits(static_cast<std::size_t>(n));

    bool first_rank = true;
    for (int r = 0; r < n; ++r) {
      if (colls[r].empty()) continue;  // non-participant
      // Rings drop oldest spans independently, so ops align from the END:
      // the last collective span of every participant is the same op.
      const std::size_t ci = colls[r].size() - n_ops + k;
      const std::size_t idx = colls[r][ci];
      const Span& c = spans[r][idx];

      const std::size_t lo = ci == 0 ? 0 : colls[r][ci - 1] + 1;
      RankBreakdown& rb = rep.ranks[static_cast<std::size_t>(r)];
      rb.total_s = c.t1 - c.t0;
      for (std::size_t i = lo; i < idx; ++i) {
        const Span& s = spans[r][i];
        // Spans opened before this op (stragglers of a partially-dropped
        // predecessor, inter-op activity) don't belong to it.
        if (s.t0 < c.t0) continue;
        const double dur = s.t1 - s.t0;
        if (is_cat(s, "wait")) {
          rb.wait_s += dur;
          const WaitArg wa = unpack_wait_arg(s.arg);
          LevelWait& lw = rep.levels[wa.level];
          lw.wait_s += dur;
          ++lw.waits;
          waits[static_cast<std::size_t>(r)].push_back(&s);
        } else {
          rep.phases[s.cat] += dur;
        }
      }

      if (first_rank || c.t0 < rep.t_start) rep.t_start = c.t0;
      if (first_rank || c.t1 > rep.t_end) {
        rep.t_end = c.t1;
        rep.bound_rank = r;
        rep.name = c.name != nullptr ? c.name : "?";
        rep.arg = c.arg;
      }
      first_rank = false;
    }

    // Blocking chain: from the latency-bound rank, repeatedly follow the
    // last satisfied wait backwards to the rank it waited on. Virtual-time
    // ties and unknown peers terminate the walk; a step cap guards against
    // pathological ping-pong.
    int b = rep.bound_rank;
    double cursor = std::numeric_limits<double>::infinity();
    const Span* last_pick = nullptr;
    for (int step = 0; step < 64 && b >= 0 && b < n; ++step) {
      const Span* pick = nullptr;
      for (const Span* w : waits[static_cast<std::size_t>(b)]) {
        if (w->t1 <= cursor && (pick == nullptr || w->t1 >= pick->t1)) {
          pick = w;
        }
      }
      if (pick == nullptr || pick == last_pick) break;
      const WaitArg wa = unpack_wait_arg(pick->arg);
      rep.chain.push_back({b, pick->name != nullptr ? pick->name : "?",
                           wa.level, wa.peer, pick->t1, pick->t1 - pick->t0});
      if (wa.peer < 0 || wa.peer >= n || wa.peer == b) break;
      cursor = pick->t1;
      last_pick = pick;
      b = wa.peer;
    }
  }
  return reports;
}

util::Table critpath_table(const std::vector<OpReport>& ops) {
  util::Table t({"Op", "Name", "Bytes", "Lat(us)", "Bound", "Wait%", "Chain"});
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpReport& op = ops[i];
    const RankBreakdown* rb =
        op.bound_rank >= 0 &&
                static_cast<std::size_t>(op.bound_rank) < op.ranks.size()
            ? &op.ranks[static_cast<std::size_t>(op.bound_rank)]
            : nullptr;
    const double wait_pct = rb != nullptr && rb->total_s > 0.0
                                ? 100.0 * rb->wait_s / rb->total_s
                                : 0.0;
    t.add_row({std::to_string(i), op.name,
               util::Table::fmt_bytes(static_cast<std::size_t>(op.arg)),
               fmt_us(op.latency_s()), "r" + std::to_string(op.bound_rank),
               util::Table::fmt_double(wait_pct, 1), chain_string(op)});
  }
  return t;
}

util::Table critpath_chain_table(const OpReport& op) {
  util::Table t({"Rank", "Site", "Level", "Peer", "End(us)", "Wait(us)"});
  for (const ChainStep& step : op.chain) {
    t.add_row({"r" + std::to_string(step.rank), step.site,
               step.level < 0 ? "-" : std::to_string(step.level),
               step.peer < 0 ? "-" : "r" + std::to_string(step.peer),
               fmt_us(step.t_end - op.t_start), fmt_us(step.wait_s)});
  }
  return t;
}

util::Table critpath_level_table(const OpReport& op) {
  util::Table t({"Level", "Waits", "Wait(us)"});
  for (const auto& [level, lw] : op.levels) {
    t.add_row({level < 0 ? "-" : std::to_string(level),
               std::to_string(lw.waits), fmt_us(lw.wait_s)});
  }
  return t;
}

util::Table critpath_phase_table(const OpReport& op) {
  util::Table t({"Phase", "Time(us)"});
  double wait_total = 0.0;
  for (const RankBreakdown& rb : op.ranks) wait_total += rb.wait_s;
  for (const auto& [cat, secs] : op.phases) {
    t.add_row({cat, fmt_us(secs)});
  }
  t.add_row({"wait", fmt_us(wait_total)});
  return t;
}

void write_critpath_report(std::ostream& os,
                           const std::vector<OpReport>& ops) {
  os << "== Critical path: " << ops.size() << " op(s) ==\n";
  if (ops.empty()) return;
  critpath_table(ops).print(os);

  std::size_t slowest = 0;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    if (ops[i].latency_s() > ops[slowest].latency_s()) slowest = i;
  }
  const OpReport& op = ops[slowest];
  os << "-- slowest op: #" << slowest << " " << op.name << " ("
     << util::Table::fmt_bytes(static_cast<std::size_t>(op.arg)) << "B, "
     << fmt_us(op.latency_s()) << " us, bound r" << op.bound_rank << ")\n";
  os << "blocking chain:\n";
  critpath_chain_table(op).print(os);
  os << "wait by level (all ranks):\n";
  critpath_level_table(op).print(os);
  os << "time by phase (all ranks):\n";
  critpath_phase_table(op).print(os);

  // The ranks that blocked longest — the first places to look for skew.
  std::vector<int> order;
  for (std::size_t r = 0; r < op.ranks.size(); ++r) {
    if (op.ranks[r].total_s > 0.0) order.push_back(static_cast<int>(r));
  }
  std::sort(order.begin(), order.end(), [&op](int a, int b) {
    const double wa = op.ranks[static_cast<std::size_t>(a)].wait_s;
    const double wb = op.ranks[static_cast<std::size_t>(b)].wait_s;
    if (wa != wb) return wa > wb;
    return a < b;
  });
  if (order.size() > 5) order.resize(5);
  os << "top waiting ranks:\n";
  util::Table t({"Rank", "Total(us)", "Self(us)", "Wait(us)"});
  for (int r : order) {
    const RankBreakdown& rb = op.ranks[static_cast<std::size_t>(r)];
    t.add_row({"r" + std::to_string(r), fmt_us(rb.total_s),
               fmt_us(rb.self_s()), fmt_us(rb.wait_s)});
  }
  t.print(os);
}

}  // namespace xhc::obs
