// Typed counter / gauge registry (observability layer).
//
// Counters are per-rank cumulative event counts, written only by the owning
// rank's thread (line-padded rows, no atomics needed) and aggregated after
// the parallel region ends. They generalize the ad-hoc statistics that grew
// inside individual layers — p2p::TrafficCounter's message-distance classes
// and smsc::RegCache::Stats' hit/miss counts — into one registry every
// layer can feed. Gauges are set-once configuration facts (control-block
// bytes, group counts) recorded from the constructing thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/cacheline.h"

namespace xhc::obs {

/// Cumulative per-rank event counters. Keep to_string in metrics.cpp in
/// sync when extending.
enum class Counter : int {
  // Data movement.
  kCicoBytes = 0,     ///< bytes moved through the copy-in-copy-out path
  kSingleCopyBytes,   ///< bytes moved through the single-copy (XPMEM) path
  kCmaBytes,          ///< single-copy bytes carried by CMA/KNEM fallbacks
                      ///< (XPMEM degradation chain, DESIGN.md § Fault)
  kReduceBytes,       ///< bytes read-modify-written by reduction kernels
  kChunksLevel0,      ///< pipeline chunks processed at hierarchy level 0
  kChunksLevel1,      ///< ... level 1
  kChunksLevel2,      ///< ... level 2
  kChunksDeeper,      ///< ... level 3 and beyond
  // Synchronization.
  kFlagWaits,         ///< blocking flag waits entered
  kFlagSpinIters,     ///< spin/yield iterations (Real) or suspensions (Sim)
  // Registration cache (absorbs smsc::RegCache::Stats).
  kRegCacheHits,
  kRegCacheMisses,
  kRegCacheEvictions,
  kAttachBytes,       ///< bytes covered by attach calls (hit or miss)
  // Message distances (absorbs p2p::TrafficCounter, paper Table II).
  kMsgIntraNuma,
  kMsgInterNuma,
  kMsgInterSocket,
  // Fault injection & graceful degradation (src/fault/).
  kFaultAttachFails,    ///< injected attach failures observed
  kFaultExposeFails,    ///< injected expose failures (retried)
  kFaultRegMissForced,  ///< registration-cache misses forced by injection
  kFaultShmRetries,     ///< shm allocation retries before success/degrade
  kFaultStalls,         ///< straggler stalls injected
  kFaultFlagDelays,     ///< delayed flag publications
  kFaultFlagDrops,      ///< dropped flag publications
  kFaultFallbacks,      ///< owners degraded down the mechanism chain
  // Modeled coherence counters (sim::CohStats, published by SimMachine as
  // deltas so repeated publishes / reset_counters never double-count).
  kCohLocalHit,          ///< flag-line read hit an unowned/self-owned line
  kCohLlcHit,            ///< flag-line read served by a same-LLC peer copy
  kCohSlcHit,            ///< flag-line read served by the SLC (ARM)
  kCohHitm,              ///< read serviced by the remote dirty owner's core
  kCohSpinRefetch,       ///< spinner copy invalidated by a mid-wait store
  kCohRemoteFill,        ///< clean remote line fill (providing LLC group)
  kCohInval,             ///< stores that broadcast-invalidated sharers
  kCohOwnershipTransfer, ///< exclusive ownership moved between cores
  kCohRmw,               ///< atomic RMWs issued on flag lines
  kCohBlockLocalLlc,     ///< payload read served from the reader's LLC
  kCohBlockSlc,          ///< payload read served from the SLC
  kCohBlockProducerLlc,  ///< payload read served from the producer's LLC
  kCohBlockMemory,       ///< payload read served from home NUMA memory
  kCohBlockInval,        ///< payload version bumps over live cached copies
  // SLO monitor (svc::Telemetry): per-window latency-target evaluation.
  kSloWindowsChecked,    ///< (rule, window) pairs with at least one sample
  kSloViolations,        ///< (rule, window) pairs exceeding their target
  kCount_  // sentinel
};

/// True for the modeled-coherence counter range (chrome-trace counter
/// events and the --coherence consumers select on it).
constexpr bool is_coherence(Counter c) noexcept {
  return c >= Counter::kCohLocalHit && c <= Counter::kCohBlockInval;
}

/// Set-once configuration gauges.
enum class Gauge : int {
  kCtlBytes = 0,       ///< shared control-block bytes allocated
  kCtlGroups,          ///< hierarchy groups built
  kCicoSegmentBytes,   ///< per-rank CICO segment size
  kTraceCapacity,      ///< spans retained per rank
  // Protocol verifier summary (src/verify/), published by the OSU harness
  // from the machine's ledger after each sweep.
  kVerifyFlagsTracked,     ///< flags registered with the verifier
  kVerifyStoresChecked,    ///< flag stores routed through the ledger
  kVerifyLoadsChecked,     ///< flag reads / wait-resumes cross-checked
  kVerifyViolations,       ///< protocol violations recorded
  kVerifyExpectedFindings, ///< whitelisted findings (Fig. 10 packed layout)
  kCount_  // sentinel
};

const char* to_string(Counter c) noexcept;
const char* to_string(Gauge g) noexcept;

constexpr int kNumCounters = static_cast<int>(Counter::kCount_);
constexpr int kNumGauges = static_cast<int>(Gauge::kCount_);

class Metrics {
 public:
  explicit Metrics(int n_ranks);

  int n_ranks() const noexcept { return static_cast<int>(rows_.size()); }

  /// Adds `delta` to `rank`'s counter. Must be called from the thread
  /// executing `rank` (single-writer rows). Wait-free.
  void add(int rank, Counter c, std::uint64_t delta) noexcept {
    rows_[static_cast<std::size_t>(rank)].v[static_cast<int>(c)] += delta;
  }

  /// `rank`'s cumulative count (read after the parallel region).
  std::uint64_t value(int rank, Counter c) const noexcept {
    return rows_[static_cast<std::size_t>(rank)].v[static_cast<int>(c)];
  }

  /// Sum over ranks (read after the parallel region).
  std::uint64_t total(Counter c) const noexcept;

  void set_gauge(Gauge g, std::uint64_t v) noexcept {
    gauges_[static_cast<std::size_t>(g)] = v;
  }
  std::uint64_t gauge(Gauge g) const noexcept {
    return gauges_[static_cast<std::size_t>(g)];
  }

  /// Zeroes every counter (gauges persist). Call outside parallel regions.
  void reset_counters();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

 private:
  /// One rank's counters; alignment keeps writers on distinct lines.
  struct alignas(util::kCacheLine) Row {
    std::uint64_t v[kNumCounters] = {};
  };

  std::vector<Row> rows_;
  std::uint64_t gauges_[kNumGauges] = {};
};

}  // namespace xhc::obs
