#include "obs/coh.h"

#include <algorithm>
#include <ostream>

namespace xhc::obs {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

}  // namespace

util::Table coh_line_table(const CohReport& report, std::size_t top_n) {
  util::Table t({"Line", "reads", "writes", "rmws", "hitm", "spin_refetch",
                 "llc_hit", "slc_hit", "remote_fill", "inval", "transfers",
                 "writers", "flags"});
  const std::size_t n = std::min(top_n, report.lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CohLine& l = report.lines[i];
    t.add_row({l.name, num(l.reads), num(l.writes), num(l.rmws), num(l.hitm),
               num(l.spin_refetches), num(l.llc_hits), num(l.slc_hits),
               num(l.remote_fills), num(l.invalidations), num(l.transfers),
               std::to_string(l.writer_cores),
               std::to_string(l.written_flags)});
  }
  return t;
}

util::Table coh_hitm_pair_table(const CohReport& report, std::size_t top_n) {
  util::Table t({"Owner rank", "Reader rank", "HITM services"});
  const std::size_t n = std::min(top_n, report.hitm_pairs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CohPair& p = report.hitm_pairs[i];
    t.add_row({std::to_string(p.owner_rank), std::to_string(p.reader_rank),
               num(p.count)});
  }
  return t;
}

std::vector<const CohLine*> coh_false_sharing(const CohReport& report) {
  std::vector<const CohLine*> out;
  for (const CohLine& l : report.lines) {
    if (l.false_sharing) out.push_back(&l);
  }
  return out;  // report.lines is already hottest-first
}

CohTotals coh_sum_matching(const CohReport& report,
                           std::string_view name_substr) {
  CohTotals sum;
  for (const CohLine& l : report.lines) {
    if (l.name.find(name_substr) == std::string::npos) continue;
    sum.local_hits += l.local_hits;
    sum.llc_hits += l.llc_hits;
    sum.slc_hits += l.slc_hits;
    sum.hitm += l.hitm;
    sum.spin_refetches += l.spin_refetches;
    sum.remote_fills += l.remote_fills;
    sum.invalidations += l.invalidations;
    sum.transfers += l.transfers;
    sum.rmws += l.rmws;
  }
  return sum;
}

void write_coh_report(std::ostream& os, const CohReport& report,
                      std::size_t top_n) {
  const CohTotals& t = report.totals;
  os << "totals: local_hit=" << t.local_hits << " llc_hit=" << t.llc_hits
     << " slc_hit=" << t.slc_hits << " hitm=" << t.hitm
     << " spin_refetch=" << t.spin_refetches
     << " remote_fill=" << t.remote_fills << " inval=" << t.invalidations
     << " transfers=" << t.transfers << " rmw=" << t.rmws << "\n";

  os << "hottest lines (top " << std::min(top_n, report.lines.size()) << " of "
     << report.lines.size() << "):\n";
  coh_line_table(report, top_n).print(os);

  os << "HITM matrix (owner -> reader, top "
     << std::min<std::size_t>(16, report.hitm_pairs.size()) << " of "
     << report.hitm_pairs.size() << " pairs):\n";
  coh_hitm_pair_table(report).print(os);

  const auto fs = coh_false_sharing(report);
  if (fs.empty()) {
    os << "false sharing: none detected\n";
  } else {
    os << "false sharing: " << fs.size() << " line(s)\n";
    for (const CohLine* l : fs) {
      os << "  " << l->name << ": " << l->written_flags
         << " flags written by " << l->writer_cores << " core(s), hitm+spin="
         << l->hitm_class() << " inval=" << l->invalidations << "\n";
    }
  }
}

}  // namespace xhc::obs
