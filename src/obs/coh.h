// Coherence observatory report types (observability layer).
//
// sim::CohStats accumulates modeled coherence events keyed by core and by
// raw cache-line address; this header defines the rank-level, name-attributed
// view the consumers print: a top-N hottest-line table (owner/sharer churn),
// a sparse rank×rank HITM matrix, and a false-sharing detector for lines
// written through two or more distinct flags (or by distinct cores).
// SimMachine::coh_report builds a CohReport (names resolved through
// verify::Ledger::flag_name); everything here is pure formatting, so the
// obs layer stays free of sim dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.h"

namespace xhc::obs {

/// One cache line's accumulated coherence activity. `hitm` counts dirty-
/// owner services at read time; `spin_refetches` counts the additional
/// invalidation-induced re-fetches blocked spinners paid while stores kept
/// landing on their line (the false-sharing cost of packed flags). The two
/// together are the line's HITM-class service count.
struct CohLine {
  std::uintptr_t line = 0;  ///< line id (address / 64)
  std::string name;         ///< attributed flag name(s), or "@0x..."
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmws = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t slc_hits = 0;
  std::uint64_t hitm = 0;
  std::uint64_t spin_refetches = 0;
  std::uint64_t remote_fills = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t transfers = 0;  ///< exclusive-ownership transfers
  int writer_cores = 0;         ///< distinct cores that stored to the line
  int written_flags = 0;        ///< distinct flag addresses stored to
  bool false_sharing = false;   ///< ≥2 written flags or ≥2 writer cores

  std::uint64_t hitm_class() const noexcept { return hitm + spin_refetches; }
  std::uint64_t activity() const noexcept {
    return reads + writes + rmws + spin_refetches;
  }
};

/// One cell of the sparse rank×rank HITM matrix: `count` HITM-class
/// services where `owner_rank`'s modified copy served `reader_rank`.
struct CohPair {
  int owner_rank = -1;   ///< -1: the servicing core hosts no rank
  int reader_rank = -1;
  std::uint64_t count = 0;
};

/// Machine-wide totals (sums over ranks of the coh_* counters).
struct CohTotals {
  std::uint64_t local_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t slc_hits = 0;
  std::uint64_t hitm = 0;
  std::uint64_t spin_refetches = 0;
  std::uint64_t remote_fills = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t transfers = 0;
  std::uint64_t rmws = 0;

  std::uint64_t hitm_class() const noexcept { return hitm + spin_refetches; }
};

struct CohReport {
  CohTotals totals;
  /// Sorted by activity() descending, line id ascending on ties —
  /// deterministic for byte-stable output.
  std::vector<CohLine> lines;
  /// Sorted by count descending, (owner, reader) ascending on ties.
  std::vector<CohPair> hitm_pairs;
};

/// Hottest-lines table (top `top_n` by activity).
util::Table coh_line_table(const CohReport& report, std::size_t top_n = 10);

/// Sparse HITM matrix as an owner→reader pair table (top `top_n` by count).
util::Table coh_hitm_pair_table(const CohReport& report,
                                std::size_t top_n = 16);

/// Lines the detector classifies as false sharing, hottest first.
std::vector<const CohLine*> coh_false_sharing(const CohReport& report);

/// Sums the counters of every line whose attributed name contains
/// `name_substr` (scenario assertions filter to e.g. "announce_shared").
CohTotals coh_sum_matching(const CohReport& report,
                           std::string_view name_substr);

/// Full console report: totals line, hottest lines, HITM pairs, false-
/// sharing findings. Deterministic given a deterministic report.
void write_coh_report(std::ostream& os, const CohReport& report,
                      std::size_t top_n = 10);

}  // namespace xhc::obs
