#include "obs/trace.h"

#include "util/check.h"

namespace xhc::obs {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Recorder::Recorder(int n_ranks, std::size_t capacity) {
  XHC_REQUIRE(n_ranks > 0, "recorder needs at least one rank");
  XHC_REQUIRE(capacity > 0, "recorder needs a non-zero ring");
  const std::size_t cap = pow2_at_least(capacity);
  mask_ = cap - 1;
  rings_ = std::vector<Ring>(static_cast<std::size_t>(n_ranks));
  for (auto& ring : rings_) {
    ring.slots.resize(cap);
  }
}

std::vector<Span> Recorder::spans(int rank) const {
  const Ring& ring = rings_[static_cast<std::size_t>(rank)];
  const std::size_t cap = mask_ + 1;
  const std::size_t n =
      ring.head < cap ? static_cast<std::size_t>(ring.head) : cap;
  std::vector<Span> out;
  out.reserve(n);
  // Oldest retained span first: with a wrapped ring that is slot head&mask.
  const std::uint64_t first = ring.head - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring.slots[(first + i) & mask_]);
  }
  return out;
}

std::uint64_t Recorder::dropped(int rank) const noexcept {
  const Ring& ring = rings_[static_cast<std::size_t>(rank)];
  const std::size_t cap = mask_ + 1;
  return ring.head > cap ? ring.head - cap : 0;
}

void Recorder::clear() {
  for (auto& ring : rings_) {
    ring.head = 0;
  }
}

}  // namespace xhc::obs
