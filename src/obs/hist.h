#pragma once

// Fixed-size log-bucketed (HDR-style) latency histograms.
//
// A Histogram covers the value domain [2^kMinExp, 2^kMaxExp) seconds with
// kSubBuckets linearly-spaced sub-buckets per power-of-two octave, so the
// recorded value is never more than one part in kSubBuckets away from its
// bucket bound (~3% relative resolution at kSubBits = 5). The record path
// is allocation-free and branch-light; histograms merge across ranks by
// plain bucket addition, which is commutative and therefore deterministic
// regardless of merge order. min/max/sum are tracked exactly, and reported
// percentiles are clamped into [min, max] so degenerate distributions
// (single sample, constant samples) yield exact values.
//
// This header must stay free of mach/ includes: mach::Machine embeds a
// HistSet hook and would otherwise create an include cycle.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xhc::obs {

class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  // 2^-44 s is far below any virtual-time quantum; 2^16 s (~18 h) is far
  // above any latency we measure. Out-of-domain values clamp to the edge
  // buckets; zero and negative values land in the dedicated zero bucket.
  static constexpr int kMinExp = -44;
  static constexpr int kMaxExp = 16;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets + 1;

  Histogram() = default;

  /// Map a value to its bucket index (0 = zero/negative bucket).
  static int bucket_index(double v) noexcept;
  /// Inclusive upper bound of a bucket (0.0 for the zero bucket).
  static double bucket_upper(int idx) noexcept;

  /// Record one sample. Allocation-free; single-writer (not thread-safe).
  void record(double v) noexcept;

  /// Fold `other` into this histogram (bucket addition; order-independent).
  void merge(const Histogram& other) noexcept;

  /// q in [0, 1]; q=0 returns min(), q=1 returns max(). The interior result
  /// is the bucket upper bound holding the ceil(q*count)-th sample, clamped
  /// into [min, max]. Returns 0 for an empty histogram.
  double percentile(double q) const noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  std::uint64_t bucket_count(int idx) const noexcept {
    return counts_[static_cast<std::size_t>(idx)];
  }

  void clear() noexcept;

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// What a latency sample measured. One histogram per (rank, kind).
enum class HistKind : int {
  kFlagWait = 0,  ///< blocking flag waits at the machine layer (mach/, sim/)
  kWaitSite,      ///< named wait sites in the collective core (core/)
  kChunk,         ///< per-chunk pipeline latencies (core/)
  kOp,            ///< whole collective operations
  kCount_,
};
inline constexpr int kNumHistKinds = static_cast<int>(HistKind::kCount_);

const char* to_string(HistKind k) noexcept;

/// Per-rank histogram rows: each rank records into its own row (single
/// writer, no synchronization), rows merge after the parallel region.
class HistSet {
 public:
  explicit HistSet(int n_ranks);

  void record(int rank, HistKind k, double v) noexcept {
    rows_[static_cast<std::size_t>(rank)].h[static_cast<int>(k)].record(v);
  }

  const Histogram& hist(int rank, HistKind k) const noexcept {
    return rows_[static_cast<std::size_t>(rank)].h[static_cast<int>(k)];
  }

  /// Merge one kind across all ranks.
  Histogram merged(HistKind k) const;

  int n_ranks() const noexcept { return static_cast<int>(rows_.size()); }

  void clear() noexcept;

 private:
  struct Row {
    Histogram h[kNumHistKinds];
  };
  std::vector<Row> rows_;
};

/// A labelled merged histogram, the unit the exporters consume.
struct NamedHist {
  std::string name;
  Histogram hist;
};

/// One NamedHist per non-empty kind, merged across ranks, in kind order.
std::vector<NamedHist> named_hists(const HistSet& set);

}  // namespace xhc::obs
