#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/check.h"

namespace xhc::obs {

/// Minimal JSON string escaping; span names are static literals, but the
/// caller-supplied label is arbitrary.
void write_json_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters are illegal raw; drop them.
          break;
        }
        os << c;
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double v) {
  // NaN/Inf have no JSON representation ("%.6f" would emit "nan"/"inf" and
  // corrupt the file); clamp so one bad span can't break the whole trace.
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "0" : (v > 0.0 ? "1e308" : "-1e308"));
    return;
  }
  // Chrome expects microseconds; virtual-time spans can be sub-ns apart,
  // so keep picosecond resolution.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  os << buf;
}

/// Full-precision variant for values in seconds (histogram bounds go down
/// to 2^-44 s; fixed-point formatting would flatten them to zero).
void write_json_number_exact(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "0" : (v > 0.0 ? "1e308" : "-1e308"));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::string& label, const Metrics* metrics) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int r = 0; r < rec.n_ranks(); ++r) {
    // Process-name metadata so Perfetto labels each rank's track.
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << r
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    write_json_escaped(os, (label + " rank " + std::to_string(r)).c_str());
    os << "}},{\"ph\":\"M\",\"pid\":" << r
       << ",\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_escaped(os, ("rank " + std::to_string(r)).c_str());
    os << "}}";

    for (const Span& s : rec.spans(r)) {
      os << ",{\"ph\":\"X\",\"pid\":" << r << ",\"tid\":0,\"cat\":";
      write_json_escaped(os, s.cat);
      os << ",\"name\":";
      write_json_escaped(os, s.name);
      os << ",\"ts\":";
      write_json_number(os, s.t0 * 1e6);
      os << ",\"dur\":";
      write_json_number(os, (s.t1 - s.t0) * 1e6);
      os << ",\"args\":{\"arg\":" << s.arg << "}}";
    }

    // Modeled coherence counters as counter events: whole-run aggregates,
    // placed at ts 0 (the counters are cumulative, not per-span).
    if (metrics != nullptr && r < metrics->n_ranks()) {
      for (int i = 0; i < kNumCounters; ++i) {
        const auto c = static_cast<Counter>(i);
        if (!is_coherence(c)) continue;
        const std::uint64_t v = metrics->value(r, c);
        if (v == 0) continue;
        os << ",{\"ph\":\"C\",\"pid\":" << r << ",\"tid\":0,\"name\":";
        write_json_escaped(os, to_string(c));
        os << ",\"ts\":0,\"args\":{\"value\":" << v << "}}";
      }
    }
  }
  os << "]}\n";
}

void write_chrome_trace_file(const std::string& path, const Recorder& rec,
                             const std::string& label, const Metrics* metrics) {
  std::ofstream os(path, std::ios::trunc);
  XHC_CHECK(os.good(), "cannot open trace file ", path);
  write_chrome_trace(os, rec, label, metrics);
  os.flush();
  XHC_CHECK(os.good(), "failed writing trace file ", path);
}

util::Table hist_table(const std::vector<NamedHist>& hists) {
  util::Table t({"Hist", "Count", "Mean us", "p50 us", "p90 us", "p99 us",
                 "Max us"});
  for (const NamedHist& nh : hists) {
    const Histogram& h = nh.hist;
    t.add_row({nh.name, std::to_string(h.count()),
               util::Table::fmt_double(h.mean() * 1e6, 3),
               util::Table::fmt_double(h.percentile(0.50) * 1e6, 3),
               util::Table::fmt_double(h.percentile(0.90) * 1e6, 3),
               util::Table::fmt_double(h.percentile(0.99) * 1e6, 3),
               util::Table::fmt_double(h.max() * 1e6, 3)});
  }
  return t;
}

void write_hist_json(std::ostream& os, const std::vector<NamedHist>& hists,
                     const std::string& label) {
  os << "{\"label\":";
  write_json_escaped(os, label.c_str());
  os << ",\"unit\":\"seconds\",\"histograms\":[";
  bool first = true;
  for (const NamedHist& nh : hists) {
    const Histogram& h = nh.hist;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_escaped(os, nh.name.c_str());
    os << ",\"count\":" << h.count() << ",\"sum\":";
    write_json_number_exact(os, h.sum());
    os << ",\"min\":";
    write_json_number_exact(os, h.min());
    os << ",\"max\":";
    write_json_number_exact(os, h.max());
    os << ",\"p50\":";
    write_json_number_exact(os, h.percentile(0.50));
    os << ",\"p90\":";
    write_json_number_exact(os, h.percentile(0.90));
    os << ",\"p99\":";
    write_json_number_exact(os, h.percentile(0.99));
    os << ",\"buckets\":[";
    bool first_b = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t c = h.bucket_count(i);
      if (c == 0) continue;
      if (!first_b) os << ',';
      first_b = false;
      os << '[';
      write_json_number_exact(os, Histogram::bucket_upper(i));
      os << ',' << c << ']';
    }
    os << "]}";
  }
  os << "]}\n";
}

void write_hist_json_file(const std::string& path,
                          const std::vector<NamedHist>& hists,
                          const std::string& label) {
  std::ofstream os(path, std::ios::trunc);
  XHC_CHECK(os.good(), "cannot open histogram file ", path);
  write_hist_json(os, hists, label);
  os.flush();
  XHC_CHECK(os.good(), "failed writing histogram file ", path);
}

}  // namespace xhc::obs
