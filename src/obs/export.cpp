#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/check.h"

namespace xhc::obs {

namespace {

/// Minimal JSON string escaping; span names are static literals, but the
/// caller-supplied label is arbitrary.
void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters are illegal raw; drop them.
          break;
        }
        os << c;
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  // Chrome expects microseconds; virtual-time spans can be sub-ns apart,
  // so keep picosecond resolution.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  os << buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::string& label) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int r = 0; r < rec.n_ranks(); ++r) {
    // Process-name metadata so Perfetto labels each rank's track.
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << r
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    write_escaped(os, (label + " rank " + std::to_string(r)).c_str());
    os << "}}";

    for (const Span& s : rec.spans(r)) {
      os << ",{\"ph\":\"X\",\"pid\":" << r << ",\"tid\":0,\"cat\":";
      write_escaped(os, s.cat);
      os << ",\"name\":";
      write_escaped(os, s.name);
      os << ",\"ts\":";
      write_number(os, s.t0 * 1e6);
      os << ",\"dur\":";
      write_number(os, (s.t1 - s.t0) * 1e6);
      os << ",\"args\":{\"arg\":" << s.arg << "}}";
    }
  }
  os << "]}\n";
}

void write_chrome_trace_file(const std::string& path, const Recorder& rec,
                             const std::string& label) {
  std::ofstream os(path, std::ios::trunc);
  XHC_CHECK(os.good(), "cannot open trace file ", path);
  write_chrome_trace(os, rec, label);
  os.flush();
  XHC_CHECK(os.good(), "failed writing trace file ", path);
}

}  // namespace xhc::obs
