// Trace exporters (observability layer).
//
// write_chrome_trace emits the Trace Event Format JSON understood by
// Perfetto / chrome://tracing: one "process" (pid) per rank, complete ("X")
// events with microsecond timestamps. SimMachine traces therefore render on
// the virtual-time axis, RealMachine traces on the wall clock, with no
// difference in the file format.
//
// The histogram exporters turn merged obs::NamedHist sets into a console
// percentile table and a machine-readable JSON document (sparse buckets +
// exact count/sum/min/max, all in seconds).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace xhc::obs {

// JSON building blocks shared by every exporter in the observability layer
// (traces, histograms, time series, the service telemetry plane). Escaping
// is minimal-but-safe; the number writers clamp NaN/Inf (no JSON spelling)
// so one bad value cannot corrupt a whole document.
void write_json_escaped(std::ostream& os, const char* s);
/// Fixed-point %.6f — microsecond timestamps at picosecond resolution.
void write_json_number(std::ostream& os, double v);
/// Full-precision %.17g — round-trips any double, byte-deterministic.
void write_json_number_exact(std::ostream& os, double v);

/// Writes the full trace (all ranks' retained spans) as Chrome trace-event
/// JSON. `label` prefixes the per-rank process names ("<label> rank 3").
/// When `metrics` is non-null, each rank's non-zero modeled coherence
/// counters (is_coherence) are appended as Chrome counter ("C") events so
/// Perfetto renders coh_* tracks next to the span timeline.
void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::string& label = "xhc",
                        const Metrics* metrics = nullptr);

/// Convenience: opens `path` (truncating) and writes the trace; throws
/// util::Error when the file cannot be written.
void write_chrome_trace_file(const std::string& path, const Recorder& rec,
                             const std::string& label = "xhc",
                             const Metrics* metrics = nullptr);

/// Percentile summary, one row per histogram (times reported in us).
util::Table hist_table(const std::vector<NamedHist>& hists);

/// Machine-readable histogram dump: exact count/sum/min/max/percentiles plus
/// the sparse non-zero buckets as [upper_bound_seconds, count] pairs.
void write_hist_json(std::ostream& os, const std::vector<NamedHist>& hists,
                     const std::string& label = "xhc");

/// Convenience: opens `path` (truncating) and writes the histogram JSON;
/// throws util::Error when the file cannot be written.
void write_hist_json_file(const std::string& path,
                          const std::vector<NamedHist>& hists,
                          const std::string& label = "xhc");

}  // namespace xhc::obs
