#include "obs/hist.h"

#include <algorithm>
#include <cmath>

namespace xhc::obs {

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN
  int exp = 0;
  // v = m * 2^exp with m in [0.5, 1), so v lives in octave exp-1.
  const double m = std::frexp(v, &exp);
  int octave = exp - 1 - kMinExp;
  if (octave < 0) octave = 0;
  if (octave >= kMaxExp - kMinExp) octave = kMaxExp - kMinExp - 1;
  // m-0.5 in [0, 0.5) -> sub-bucket in [0, kSubBuckets).
  int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::bucket_upper(int idx) noexcept {
  if (idx <= 0) return 0.0;
  const int octave = (idx - 1) / kSubBuckets;
  const int sub = (idx - 1) % kSubBuckets;
  const double base = std::ldexp(1.0, kMinExp + octave);
  return base * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

void Histogram::record(double v) noexcept {
  ++counts_[static_cast<std::size_t>(bucket_index(v))];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) return min_;
  if (q >= 1.0) return max_;
  // Rank of the requested sample, 1-based.
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target < 1) target = 1;
  if (target > count_) target = count_;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= target) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::clear() noexcept {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

const char* to_string(HistKind k) noexcept {
  switch (k) {
    case HistKind::kFlagWait: return "flag_wait";
    case HistKind::kWaitSite: return "wait_site";
    case HistKind::kChunk: return "chunk";
    case HistKind::kOp: return "op";
    case HistKind::kCount_: break;
  }
  return "?";
}

HistSet::HistSet(int n_ranks) : rows_(static_cast<std::size_t>(n_ranks)) {}

Histogram HistSet::merged(HistKind k) const {
  Histogram out;
  for (const Row& row : rows_) out.merge(row.h[static_cast<int>(k)]);
  return out;
}

void HistSet::clear() noexcept {
  for (Row& row : rows_) {
    for (Histogram& h : row.h) h.clear();
  }
}

std::vector<NamedHist> named_hists(const HistSet& set) {
  std::vector<NamedHist> out;
  for (int k = 0; k < kNumHistKinds; ++k) {
    Histogram merged = set.merged(static_cast<HistKind>(k));
    if (merged.count() == 0) continue;
    out.push_back({to_string(static_cast<HistKind>(k)), merged});
  }
  return out;
}

}  // namespace xhc::obs
