#include "obs/timeseries.h"

#include <fstream>
#include <ostream>

#include "obs/export.h"
#include "util/check.h"

namespace xhc::obs {

TimeSeries::TimeSeries(int n_ranks, double window_seconds, int max_windows)
    : window_(window_seconds), max_windows_(max_windows) {
  XHC_REQUIRE(n_ranks > 0, "time series need at least one rank");
  XHC_REQUIRE(window_seconds > 0.0, "window width must be positive, got ",
              window_seconds);
  XHC_REQUIRE(max_windows > 0, "need at least one window");
  rows_ = std::vector<Row>(static_cast<std::size_t>(n_ranks));
}

int TimeSeries::add_series(std::string name) {
  const int sid = n_series();
  names_.push_back(std::move(name));
  for (Row& row : rows_) {
    row.cells.resize(static_cast<std::size_t>(n_series() * max_windows_));
  }
  return sid;
}

void TimeSeries::watch_counters(const Metrics* m, std::vector<int> row_of) {
  XHC_REQUIRE(m != nullptr, "cannot watch a null metrics registry");
  if (row_of.empty()) {
    // Identity: plane rank r samples m's row r (when it exists).
    row_of.resize(rows_.size());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      row_of[r] = static_cast<int>(r) < m->n_ranks() ? static_cast<int>(r) : -1;
    }
  }
  XHC_REQUIRE(row_of.size() == rows_.size(), "row_of must map every rank");
  Watcher w;
  w.m = m;
  w.row_of = std::move(row_of);
  w.marks.assign(rows_.size() * static_cast<std::size_t>(kNumCounters), 0);
  watchers_.push_back(std::move(w));
  // The counter lane is lazily sized on the first watcher so sample-only
  // planes pay nothing for it.
  for (Row& row : rows_) {
    row.counters.assign(
        static_cast<std::size_t>(kNumCounters) *
            static_cast<std::size_t>(max_windows_),
        0.0);
  }
}

void TimeSeries::sample_counters(int rank, double now) noexcept {
  if (watchers_.empty()) return;
  Row& row = rows_[static_cast<std::size_t>(rank)];
  const int w = window_of(now);
  bool touched = false;
  for (Watcher& wt : watchers_) {
    const int mrow = wt.row_of[static_cast<std::size_t>(rank)];
    if (mrow < 0) continue;
    const std::size_t base =
        static_cast<std::size_t>(rank) * static_cast<std::size_t>(kNumCounters);
    for (int c = 0; c < kNumCounters; ++c) {
      const std::uint64_t cur = wt.m->value(mrow, static_cast<Counter>(c));
      std::uint64_t& mark = wt.marks[base + static_cast<std::size_t>(c)];
      // Watermark (publish_delta) semantics: a value below the mark means
      // the registry was reset mid-stream; the delta restarts from zero
      // instead of underflowing.
      const std::uint64_t delta = cur >= mark ? cur - mark : cur;
      mark = cur;
      if (delta != 0) {
        row.counters[static_cast<std::size_t>(c * max_windows_ + w)] +=
            static_cast<double>(delta);
        touched = true;
      }
    }
  }
  if (touched && w >= row.used) row.used = w + 1;
}

int TimeSeries::used_windows() const noexcept {
  int used = 0;
  for (const Row& row : rows_) {
    if (row.used > used) used = row.used;
  }
  return used;
}

TimeSeries::Cell TimeSeries::merged(int sid, int w) const noexcept {
  Cell out;
  for (const Row& row : rows_) {
    out.merge(row.cells[static_cast<std::size_t>(sid * max_windows_ + w)]);
  }
  return out;
}

double TimeSeries::counter_sum(Counter c, int w) const noexcept {
  double sum = 0.0;
  for (const Row& row : rows_) {
    if (row.counters.empty()) continue;
    sum += row.counters[static_cast<std::size_t>(
        static_cast<int>(c) * max_windows_ + w)];
  }
  return sum;
}

double TimeSeries::counter_total(Counter c) const noexcept {
  double sum = 0.0;
  for (int w = 0; w < max_windows_; ++w) sum += counter_sum(c, w);
  return sum;
}

void TimeSeries::clear() noexcept {
  for (Row& row : rows_) {
    for (Cell& cell : row.cells) cell = Cell{};
    for (double& v : row.counters) v = 0.0;
    row.used = 0;
  }
  for (Watcher& wt : watchers_) {
    for (std::uint64_t& m : wt.marks) m = 0;
  }
}

void write_timeseries_json(std::ostream& os, const TimeSeries& ts,
                           const std::string& label) {
  const int used = ts.used_windows();
  os << "{\"label\":";
  write_json_escaped(os, label.c_str());
  os << ",\"window_seconds\":";
  write_json_number_exact(os, ts.window_seconds());
  os << ",\"windows\":" << used << ",\"series\":[";
  bool first = true;
  for (int sid = 0; sid < ts.n_series(); ++sid) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_escaped(os, ts.series_name(sid).c_str());
    os << ",\"kind\":\"sample\",\"windows\":[";
    bool first_w = true;
    for (int w = 0; w < used; ++w) {
      const TimeSeries::Cell cell = ts.merged(sid, w);
      if (cell.count == 0) continue;
      if (!first_w) os << ',';
      first_w = false;
      os << '[' << w << ',' << cell.count << ',';
      write_json_number_exact(os, cell.sum);
      os << ',';
      write_json_number_exact(os, cell.min);
      os << ',';
      write_json_number_exact(os, cell.max);
      os << ']';
    }
    os << "]}";
  }
  if (ts.n_watchers() > 0) {
    for (int c = 0; c < kNumCounters; ++c) {
      const auto counter = static_cast<Counter>(c);
      if (ts.counter_total(counter) == 0.0) continue;
      if (!first) os << ',';
      first = false;
      os << "{\"name\":";
      write_json_escaped(os, to_string(counter));
      os << ",\"kind\":\"counter\",\"windows\":[";
      bool first_w = true;
      for (int w = 0; w < used; ++w) {
        const double sum = ts.counter_sum(counter, w);
        if (sum == 0.0) continue;
        if (!first_w) os << ',';
        first_w = false;
        os << '[' << w << ',';
        write_json_number_exact(os, sum);
        os << ']';
      }
      os << "]}";
    }
  }
  os << "]}\n";
}

void write_timeseries_json_file(const std::string& path, const TimeSeries& ts,
                                const std::string& label) {
  std::ofstream os(path, std::ios::trunc);
  XHC_CHECK(os.good(), "cannot open time-series file ", path);
  write_timeseries_json(os, ts, label);
  os.flush();
  XHC_CHECK(os.good(), "failed writing time-series file ", path);
}

}  // namespace xhc::obs
