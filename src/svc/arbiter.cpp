#include "svc/arbiter.h"

#include <algorithm>

#include "smsc/mechanism.h"

namespace xhc::svc {

namespace {

/// CICO pool + control-plane bytes a communicator with `n` ranks charges.
std::size_t seg_cost(int n, const coll::Tuning& t) {
  return static_cast<std::size_t>(n) *
         (t.cico_segment_bytes + Arbiter::kCtlBytesPerRank);
}

/// Registration-cache entries the communicator's endpoints may pin. Only
/// mapping mechanisms (XPMEM) hold cached attachments; per-operation kernel
/// copies (CMA/KNEM) and the CICO bounce hold none.
std::size_t reg_cost(int n, const coll::Tuning& t) {
  if (!t.reg_cache || !smsc::costs_for(t.mechanism).mapping) return 0;
  return static_cast<std::size_t>(n) * t.reg_cache_entries;
}

void note(std::string* trail, const std::string& line) {
  if (trail == nullptr) return;
  if (!trail->empty()) *trail += "; ";
  *trail += line;
}

}  // namespace

coll::Tuning Arbiter::admit(const std::string& comm, int n_ranks,
                            coll::Tuning t, std::string* trail) {
  XHC_REQUIRE(n_ranks > 0, "communicator needs at least one rank");
  std::lock_guard<std::mutex> lock(mu_);
  XHC_REQUIRE(charges_.find(comm) == charges_.end(), "communicator '", comm,
              "' already admitted");

  // Segment budget: halve the CICO segment toward the floor the component
  // itself enforces (segments must hold two thresholds' worth of staging),
  // mirroring the shm-fault degradation chain.
  const std::size_t floor =
      std::max<std::size_t>(4096, 2 * t.cico_threshold);
  while (seg_cost(n_ranks, t) > seg_free_ && t.cico_segment_bytes / 2 >= floor) {
    t.cico_segment_bytes /= 2;
    note(trail, "cico segment halved to " +
                    std::to_string(t.cico_segment_bytes));
  }
  if (seg_cost(n_ranks, t) > seg_free_) {
    throw AdmissionError(
        comm, "create",
        "segment budget exhausted: need " +
            std::to_string(seg_cost(n_ranks, t)) + " bytes at the " +
            std::to_string(t.cico_segment_bytes) +
            "-byte segment floor, " + std::to_string(seg_free_) + " free");
  }

  // Registration-cache budget: shrink the per-endpoint cache, then drop the
  // mapping mechanism entirely (XPMEM→CMA holds no cached attachments; the
  // endpoint's own chain continues CMA→CICO under runtime faults).
  while (reg_cost(n_ranks, t) > reg_free_ &&
         t.reg_cache_entries / 2 >= kMinRegEntries) {
    t.reg_cache_entries /= 2;
    note(trail, "regcache shrunk to " + std::to_string(t.reg_cache_entries) +
                    " entries");
  }
  if (reg_cost(n_ranks, t) > reg_free_) {
    t.mechanism = smsc::next_mechanism(t.mechanism);
    t.reg_cache = false;
    note(trail, std::string("mechanism degraded to ") +
                    smsc::to_string(t.mechanism));
  }
  XHC_CHECK(reg_cost(n_ranks, t) == 0 || reg_cost(n_ranks, t) <= reg_free_,
            "regcache degradation chain failed to fit");

  Charge c;
  c.seg = seg_cost(n_ranks, t);
  c.reg = reg_cost(n_ranks, t);
  seg_free_ -= c.seg;
  reg_free_ -= c.reg;
  charges_.emplace(comm, c);
  return t;
}

void Arbiter::release(const std::string& comm) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = charges_.find(comm);
  if (it == charges_.end()) return;
  seg_free_ += it->second.seg;
  reg_free_ += it->second.reg;
  charges_.erase(it);
}

std::size_t Arbiter::segment_bytes_free() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seg_free_;
}

std::size_t Arbiter::regcache_entries_free() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reg_free_;
}

}  // namespace xhc::svc
