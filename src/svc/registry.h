// CommRegistry: N concurrent communicators over one machine
// (DESIGN.md § Multi-tenant service).
//
// Each communicator owns a TenantMachine over its (possibly overlapping)
// rank subset, an XhcComponent-backed collective component whose control
// planes are registered in the shared verify ledger under a per-communicator
// scope ("comm3'training'/ctl0/h0/announce"), and a one-flag admission
// plane. All shared-segment and regcache charges go through the Arbiter at
// creation; failures surface as AdmissionError, never as a hang.
//
// Admission protocol (per request stream, per communicator): communicator
// rank 0 is the admission leader. It decides request i (acquire an op token
// with deadline-aware exponential backoff, check the backlog bound) and
// publishes the verdict on the single-writer `admission/verdict` flag as
// value 2*(i+1)+shed_bit. Members wait for >= 2*(i+1), decode
//
//   v == 2*(i+1)  ->  admitted: join the collective
//   v == 2*(i+1)+1 -> request i was shed: skip it
//
// and then bump the shared `admission/ack` counter. The leader publishes
// verdict i+1 only after all size-1 member acks for verdict i have arrived
// ((i+1)*(size-1) cumulative), so a member can never observe a verdict
// beyond the request it is waiting on — the read above is exact, even
// though a collective's root may complete and race ahead of its slowest
// member. Both flags are monotone; verdict is single-writer (kFixed) and
// ack is a shared fetch-add counter (kShared), so the ledger polices the
// admission plane exactly like the collective control flags.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coll/component.h"
#include "svc/arbiter.h"
#include "svc/tenant.h"
#include "util/cacheline.h"

namespace xhc::svc {

/// Everything needed to create one communicator.
struct CommSpec {
  std::string name;            ///< human-readable tenant name
  std::vector<int> ranks;      ///< parent ranks (any order; deduplicated)
  coll::Tuning tuning;         ///< base tuning; comm_name/comm_id are set by
                               ///< the registry, the rest may be degraded by
                               ///< the arbiter
  std::string component = "xhc";  ///< coll registry name
};

class Communicator {
 public:
  int id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  /// Ledger scope prefix: "comm<id>'<name>'/".
  const std::string& scope() const noexcept { return scope_; }
  int size() const noexcept { return machine_->n_ranks(); }
  const std::vector<int>& ranks() const noexcept { return machine_->ranks(); }
  bool is_member(int parent_rank) const noexcept {
    return machine_->local_rank(parent_rank) >= 0;
  }
  int local_rank(int parent_rank) const noexcept {
    return machine_->local_rank(parent_rank);
  }

  TenantMachine& machine() noexcept { return *machine_; }
  coll::Component& component() noexcept { return *comp_; }
  /// Effective tuning after arbiter degradation.
  const coll::Tuning& tuning() const noexcept { return tuning_; }
  /// One line per degradation step the arbiter took; empty when the
  /// requested configuration fit as-is.
  const std::string& degradation() const noexcept { return degradation_; }

  // --- admission verdict plane (see file header) ---------------------------
  /// Leader side (communicator rank 0 only): publish the verdict for
  /// per-communicator request index `index`.
  void publish_verdict(mach::Ctx& parent_ctx, std::uint64_t index,
                       bool admitted);
  /// Member side: block until the verdict for `index` is out and ack it;
  /// true when the request was admitted (the member must then join the
  /// collective). Every member must await every index in order — acks are
  /// what let the leader move to the next verdict.
  bool await_verdict(mach::Ctx& parent_ctx, std::uint64_t index);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

 private:
  friend class CommRegistry;
  Communicator() = default;

  int id_ = 0;
  std::string name_;
  std::string scope_;
  std::string degradation_;
  coll::Tuning tuning_;
  std::unique_ptr<TenantMachine> machine_;
  std::unique_ptr<coll::Component> comp_;
  mach::Buffer verdict_buf_;  ///< owns the admission plane lines
  util::CachePadded<mach::Flag>* verdict_ = nullptr;
  util::CachePadded<mach::Flag>* ack_ = nullptr;
};

class CommRegistry {
 public:
  /// Both `parent` and `arbiter` must outlive the registry.
  CommRegistry(mach::Machine& parent, Arbiter& arbiter)
      : parent_(&parent), arbiter_(&arbiter) {}
  ~CommRegistry();

  /// Creates a communicator: charges the arbiter (degrading the tuning along
  /// the chain when needed), builds the tenant machine and component, and
  /// registers the admission plane in the ledger. Throws AdmissionError when
  /// the budget cannot fit even the degraded configuration, or when the
  /// component's own setup fails (e.g. injected shm exhaustion) — named
  /// with the communicator, never a hang.
  Communicator& create(const CommSpec& spec);

  Communicator& comm(int id) {
    XHC_REQUIRE(id >= 0 && id < n_comms(), "communicator id ", id,
                " out of range [0, ", n_comms(), ")");
    return *comms_[static_cast<std::size_t>(id)];
  }
  const Communicator& comm(int id) const {
    XHC_REQUIRE(id >= 0 && id < n_comms(), "communicator id ", id,
                " out of range [0, ", n_comms(), ")");
    return *comms_[static_cast<std::size_t>(id)];
  }
  int n_comms() const noexcept { return static_cast<int>(comms_.size()); }

  /// Ids of the communicators `parent_rank` belongs to, ascending.
  std::vector<int> comm_ids_of(int parent_rank) const;

  mach::Machine& parent() noexcept { return *parent_; }
  Arbiter& arbiter() noexcept { return *arbiter_; }

  CommRegistry(const CommRegistry&) = delete;
  CommRegistry& operator=(const CommRegistry&) = delete;

 private:
  mach::Machine* parent_;
  Arbiter* arbiter_;
  std::vector<std::unique_ptr<Communicator>> comms_;
};

}  // namespace xhc::svc
