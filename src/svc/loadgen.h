// Deterministic load generator for the multi-tenant collective service
// (DESIGN.md § Multi-tenant service).
//
// Seed-driven open-loop arrivals (SplitMix64 per communicator, like
// fault::), mixed bcast/allreduce/reduce/barrier streams with irregular
// sizes straddling the 128 KiB large-message thresholds, per-request
// payload integrity verification (splitmix-generated operands checked at
// completion), and p50/p99/p999 latency per op class through the hist
// layer.
//
// Every rank executes the projection of ONE global arrival order onto its
// communicators, so cross-communicator request ordering is identical on
// every rank — collectives from different communicators can interleave
// freely in time but never cross in program order on a shared rank, which
// (together with deadline-based shedding of op-token waits) keeps the
// service deadlock-free by construction.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/hist.h"
#include "svc/registry.h"

namespace xhc::svc {

class Telemetry;  // svc/telemetry.h

/// Operation classes of the generated stream.
enum class OpClass : int { kBcast = 0, kAllreduce, kReduce, kBarrier, kCount_ };
inline constexpr int kNumOpClasses = static_cast<int>(OpClass::kCount_);
const char* to_string(OpClass c) noexcept;

/// One generated request.
struct Request {
  std::uint64_t id = 0;     ///< global arrival order (schedule position)
  int comm = 0;             ///< communicator id
  std::uint64_t index = 0;  ///< per-communicator stream index (verdict epoch)
  OpClass op = OpClass::kBarrier;
  std::size_t bytes = 0;    ///< payload bytes (0 for barrier)
  int root = 0;             ///< communicator-local root (bcast/reduce)
  double arrival = 0.0;     ///< open-loop arrival time, seconds from start
  std::uint64_t seed = 0;   ///< payload pattern / operand seed
};

struct LoadgenConfig {
  int n_comms = 8;
  std::uint64_t requests = 10000;  ///< total across all communicators
  /// Mean total arrival rate (requests/second of virtual time), split
  /// evenly across communicators; inter-arrivals are exponential.
  double arrival_rate = 2e5;
  std::uint64_t seed = 1;
  bool integrity = true;  ///< verify payloads at completion
  std::size_t min_bytes = 8;
  std::size_t max_bytes = 512u << 10;
  /// Fraction of payload sizes drawn above the 128 KiB large-message
  /// thresholds (the rest are log-uniform below).
  double large_fraction = 0.05;
  /// Fault spec applied to every communicator's component (supports comm=
  /// filters to target one tenant); fault_seed is decorrelated per comm.
  std::string faults;
  std::uint64_t fault_seed = 1;
  /// Optional service telemetry plane (svc/telemetry.h). Null (the default)
  /// keeps the loadgen hot path bit-identical to the un-instrumented build;
  /// non-null, run_loadgen attaches it to the registry, every rank ticks
  /// windowed counter samples per projected request, and the admission
  /// leaders record per-request causal chains. Must outlive the run.
  Telemetry* telemetry = nullptr;
};

/// Deterministic communicator plan over `n_ranks` parent ranks: communicator
/// 0 spans every rank; the rest are contiguous wrapping windows of half the
/// node plus strided subsets, so rank sets overlap heavily (the regime the
/// ledger must police). Structure depends only on (n_ranks, n_comms).
std::vector<CommSpec> make_comm_plan(int n_ranks, const LoadgenConfig& cfg,
                                     const coll::Tuning& base);

/// The merged open-loop schedule over `reg`'s communicators, sorted by
/// (arrival, comm): the global total order every rank projects.
std::vector<Request> make_schedule(const LoadgenConfig& cfg,
                                   const CommRegistry& reg);

/// Per-op-class completion statistics (latency = completion - arrival,
/// recorded once per admitted request by the admission leader).
struct OpClassStats {
  obs::Histogram latency;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t integrity_failures = 0;
};

struct LoadgenResult {
  std::array<OpClassStats, kNumOpClasses> per_class;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t integrity_failures = 0;
  std::uint64_t backoff_stalls = 0;  ///< op-token retries across leaders
  double makespan = 0.0;             ///< slowest rank's completion time
};

/// Runs `schedule` over `reg` on the parent machine (one run() carrying all
/// communicators' collectives at once). Deterministic on SimMachine for a
/// fixed schedule.
LoadgenResult run_loadgen(CommRegistry& reg, const std::vector<Request>& schedule,
                          const LoadgenConfig& cfg);

/// Convenience: plan communicators, admit them against a fresh Arbiter with
/// `budget`, generate the schedule and run it.
LoadgenResult run_soak(mach::Machine& parent, const LoadgenConfig& cfg,
                       const Budget& budget, const coll::Tuning& base = {});

}  // namespace xhc::svc
