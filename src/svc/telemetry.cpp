#include "svc/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>

#include "obs/export.h"
#include "svc/registry.h"
#include "util/check.h"

namespace xhc::svc {

namespace {

/// Exact metric over an ascending-sorted sample vector. Percentiles use the
/// ceil(q*n) rank (1-based), the same convention obs::Histogram reports,
/// but exact — per-window samples are few, so sorting beats bucketing.
double metric_value(const std::vector<double>& sorted, SloRule::Metric m) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  const auto pick = [&](double q) {
    auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (idx > 0) --idx;
    if (idx >= n) idx = n - 1;
    return sorted[idx];
  };
  switch (m) {
    case SloRule::Metric::kP50: return pick(0.50);
    case SloRule::Metric::kP90: return pick(0.90);
    case SloRule::Metric::kP99: return pick(0.99);
    case SloRule::Metric::kP999: return pick(0.999);
    case SloRule::Metric::kMax: return sorted.back();
    case SloRule::Metric::kMean: {
      double sum = 0.0;
      for (const double v : sorted) sum += v;
      return sum / static_cast<double>(n);
    }
  }
  return 0.0;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace

const char* to_string(ReqOutcome o) noexcept {
  switch (o) {
    case ReqOutcome::kNone: return "none";
    case ReqOutcome::kCompleted: return "completed";
    case ReqOutcome::kShedBacklog: return "shed_backlog";
    case ReqOutcome::kShedDeadline: return "shed_deadline";
  }
  return "?";
}

std::vector<SloRule> parse_slo(const std::string& spec) {
  std::vector<SloRule> rules;
  std::string token;
  const auto flush = [&] {
    const std::string t = trimmed(token);
    token.clear();
    if (t.empty()) return;
    const auto colon = t.find(':');
    XHC_REQUIRE(colon != std::string::npos, "SLO rule '", t,
                "': expected <class|*>:<metric>=<value><unit>");
    const auto eq = t.find('=', colon);
    XHC_REQUIRE(eq != std::string::npos, "SLO rule '", t,
                "': expected <metric>=<value>");
    const std::string cls = trimmed(t.substr(0, colon));
    const std::string met = trimmed(t.substr(colon + 1, eq - colon - 1));
    const std::string val = trimmed(t.substr(eq + 1));

    SloRule rule;
    rule.text = cls + ":" + met + "=" + val;
    if (cls == "*") {
      rule.op = -1;
    } else {
      rule.op = -2;
      for (int k = 0; k < kNumOpClasses; ++k) {
        if (cls == to_string(static_cast<OpClass>(k))) rule.op = k;
      }
      XHC_REQUIRE(rule.op != -2, "SLO rule '", t, "': unknown op class '",
                  cls, "' (bcast/allreduce/reduce/barrier/*)");
    }
    if (met == "p50") {
      rule.metric = SloRule::Metric::kP50;
    } else if (met == "p90") {
      rule.metric = SloRule::Metric::kP90;
    } else if (met == "p99") {
      rule.metric = SloRule::Metric::kP99;
    } else if (met == "p999") {
      rule.metric = SloRule::Metric::kP999;
    } else if (met == "max") {
      rule.metric = SloRule::Metric::kMax;
    } else if (met == "mean") {
      rule.metric = SloRule::Metric::kMean;
    } else {
      XHC_REQUIRE(false, "SLO rule '", t, "': unknown metric '", met,
                  "' (p50/p90/p99/p999/max/mean)");
    }
    char* end = nullptr;
    const double mag = std::strtod(val.c_str(), &end);
    XHC_REQUIRE(end != val.c_str() && mag > 0.0, "SLO rule '", t,
                "': target must be a positive number, got '", val, "'");
    const std::string unit(end);
    double mult = 0.0;
    if (unit == "ns") {
      mult = 1e-9;
    } else if (unit == "us") {
      mult = 1e-6;
    } else if (unit == "ms") {
      mult = 1e-3;
    } else if (unit == "s") {
      mult = 1.0;
    } else {
      XHC_REQUIRE(false, "SLO rule '", t, "': unknown unit '", unit,
                  "' (ns/us/ms/s)");
    }
    rule.target = mag * mult;
    rules.push_back(std::move(rule));
  };
  for (const char c : spec) {
    if (c == ';' || c == ',') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  XHC_REQUIRE(!rules.empty(), "SLO spec '", spec, "' contains no rules");
  return rules;
}

Telemetry::Telemetry(mach::Machine& parent, TelemetryConfig cfg,
                     std::uint64_t n_requests)
    : parent_(&parent),
      cfg_(std::move(cfg)),
      machine_hists_(parent.n_ranks()),
      parent_metrics_(parent.n_ranks()),
      svc_metrics_(1) {
  XHC_REQUIRE(cfg_.slo.empty() || cfg_.window_seconds > 0.0,
              "the SLO monitor needs a windowed plane (window_seconds > 0)");
  if (!cfg_.slo.empty()) rules_ = parse_slo(cfg_.slo);
  if (cfg_.window_seconds > 0.0) {
    series_ = std::make_unique<obs::TimeSeries>(
        parent.n_ranks(), cfg_.window_seconds, cfg_.max_windows);
    sid_flag_wait_ = series_->add_series("flag_wait");
    for (int k = 0; k < kNumOpClasses; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const std::string cls = to_string(static_cast<OpClass>(k));
      sid_queued_[kk] = series_->add_series("queued/" + cls);
      sid_exec_[kk] = series_->add_series("exec/" + cls);
    }
  }
  records_.resize(static_cast<std::size_t>(n_requests));
}

Telemetry::~Telemetry() = default;

void Telemetry::attach(CommRegistry& reg) {
  if (attached_) return;
  XHC_REQUIRE(&reg.parent() == parent_,
              "telemetry was built for a different parent machine");
  for (int c = 0; c < reg.n_comms(); ++c) {
    Communicator& comm = reg.comm(c);
    auto obs = std::make_unique<obs::Observer>(comm.size());
    comm.component().set_observer(obs.get());

    CommInfo info;
    info.id = comm.id();
    // scope() is "comm<id>'<name>'/": drop the trailing separator.
    info.label = comm.scope();
    if (!info.label.empty() && info.label.back() == '/') info.label.pop_back();
    info.degradation = comm.degradation();
    info.ranks = comm.ranks();
    comms_.push_back(std::move(info));

    if (series_ != nullptr) {
      // Parent rank r samples exactly the rows it writes (its local rank in
      // each tenant), so mid-run sampling stays race-free.
      std::vector<int> row_of(static_cast<std::size_t>(parent_->n_ranks()));
      for (int pr = 0; pr < parent_->n_ranks(); ++pr) {
        row_of[static_cast<std::size_t>(pr)] = comm.local_rank(pr);
      }
      series_->watch_counters(&obs->metrics(), std::move(row_of));
    }
    observers_.push_back(std::move(obs));
  }
  if (series_ != nullptr) {
    parent_->set_wait_series(series_.get(), sid_flag_wait_);
  }
  if (cfg_.machine_hist) parent_->set_wait_hist(&machine_hists_);
  attached_ = true;
}

void Telemetry::finalize(const CommRegistry& reg,
                         const std::vector<Request>& schedule) {
  XHC_REQUIRE(attached_, "finalize before attach");
  XHC_REQUIRE(reg.n_comms() == n_comms(), "registry changed since attach");
  meta_.assign(records_.size(), ReqMeta{});
  for (const Request& r : schedule) {
    if (r.id >= records_.size()) continue;
    ReqMeta& m = meta_[static_cast<std::size_t>(r.id)];
    m.comm = r.comm;
    m.op = r.op;
    m.bytes = r.bytes;
    m.arrival = r.arrival;
  }
  if (series_ != nullptr) {
    // Phase samples land in the plane at the moment each phase *ended*, in
    // request-id order — single-threaded and deterministic.
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const ReqRecord& rec = records_[i];
      if (rec.outcome == ReqOutcome::kNone) continue;
      const auto op = static_cast<std::size_t>(static_cast<int>(meta_[i].op));
      series_->record(0, sid_queued_[op], rec.verdict_time,
                      rec.verdict_time - meta_[i].arrival);
      if (rec.outcome == ReqOutcome::kCompleted) {
        series_->record(0, sid_exec_[op], rec.end_time,
                        rec.end_time - rec.verdict_time);
      }
    }
  }
  build_interference();
  eval_slo();
  finalized_ = true;
}

std::vector<obs::NamedHist> Telemetry::phase_hists() const {
  std::array<obs::Histogram, kNumOpClasses> queued;
  std::array<obs::Histogram, kNumOpClasses> exec;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const ReqRecord& rec = records_[i];
    if (rec.outcome == ReqOutcome::kNone) continue;
    const auto op = static_cast<std::size_t>(static_cast<int>(meta_[i].op));
    queued[op].record(rec.verdict_time - meta_[i].arrival);
    if (rec.outcome == ReqOutcome::kCompleted) {
      exec[op].record(rec.end_time - rec.verdict_time);
    }
  }
  std::vector<obs::NamedHist> out;
  for (int k = 0; k < kNumOpClasses; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    const std::string cls = to_string(static_cast<OpClass>(k));
    if (queued[kk].count() != 0) out.push_back({"queued/" + cls, queued[kk]});
    if (exec[kk].count() != 0) out.push_back({"exec/" + cls, exec[kk]});
  }
  return out;
}

util::Table Telemetry::metrics_table() const {
  util::Table table({"Metric", "Total"});
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    std::uint64_t total = parent_metrics_.total(c) + svc_metrics_.total(c);
    for (const auto& o : observers_) total += o->metrics().total(c);
    if (total == 0) continue;
    table.add_row({obs::to_string(c), std::to_string(total)});
  }
  for (int i = 0; i < obs::kNumGauges; ++i) {
    const auto g = static_cast<obs::Gauge>(i);
    std::uint64_t total = 0;
    for (const auto& o : observers_) total += o->metrics().gauge(g);
    if (total == 0) continue;
    table.add_row({obs::to_string(g), std::to_string(total)});
  }
  return table;
}

util::Table Telemetry::span_table() const {
  struct Agg {
    std::uint64_t count = 0;
    double total = 0.0;
    double max = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_site;
  for (const auto& o : observers_) {
    for (int r = 0; r < o->n_ranks(); ++r) {
      for (const obs::Span& s : o->trace().spans(r)) {
        Agg& a = by_site[{s.cat, s.name}];
        ++a.count;
        const double d = s.t1 - s.t0;
        a.total += d;
        a.max = std::max(a.max, d);
      }
    }
  }
  util::Table table({"Cat", "Span", "Count", "Total us", "Avg us", "Max us"});
  for (const auto& [site, a] : by_site) {
    table.add_row({site.first, site.second, std::to_string(a.count),
                   util::Table::fmt_double(a.total * 1e6),
                   util::Table::fmt_double(a.total * 1e6 /
                                           static_cast<double>(a.count)),
                   util::Table::fmt_double(a.max * 1e6)});
  }
  return table;
}

std::uint64_t Telemetry::spans_recorded() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& o : observers_) sum += o->trace().recorded();
  return sum;
}

void Telemetry::eval_slo() {
  if (rules_.empty()) return;
  int nw = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].outcome != ReqOutcome::kCompleted) continue;
    nw = std::max(nw, series_->window_of(records_[i].end_time) + 1);
  }
  // Completion latencies per (window, class) plus the any-class lane, in
  // request-id order, then sorted — deterministic.
  std::vector<std::array<std::vector<double>, kNumOpClasses + 1>> lanes(
      static_cast<std::size_t>(nw));
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const ReqRecord& rec = records_[i];
    if (rec.outcome != ReqOutcome::kCompleted) continue;
    const auto wi = static_cast<std::size_t>(series_->window_of(rec.end_time));
    const double lat = rec.end_time - meta_[i].arrival;
    lanes[wi][static_cast<std::size_t>(static_cast<int>(meta_[i].op))]
        .push_back(lat);
    lanes[wi][kNumOpClasses].push_back(lat);
  }
  for (auto& win : lanes) {
    for (auto& lane : win) std::sort(lane.begin(), lane.end());
  }

  rule_checked_.assign(rules_.size(), 0);
  rule_violations_.assign(rules_.size(), 0);
  rule_worst_.assign(rules_.size(), 0.0);
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const SloRule& rule = rules_[ri];
    const std::size_t lane =
        rule.op < 0 ? static_cast<std::size_t>(kNumOpClasses)
                    : static_cast<std::size_t>(rule.op);
    for (int wi = 0; wi < nw; ++wi) {
      const std::vector<double>& samples =
          lanes[static_cast<std::size_t>(wi)][lane];
      if (samples.empty()) continue;
      ++rule_checked_[ri];
      const double v = metric_value(samples, rule.metric);
      rule_worst_[ri] = std::max(rule_worst_[ri], v);
      if (v > rule.target) ++rule_violations_[ri];
    }
    slo_checked_ += rule_checked_[ri];
    slo_violations_ += rule_violations_[ri];
  }
  svc_metrics_.add(0, obs::Counter::kSloWindowsChecked, slo_checked_);
  svc_metrics_.add(0, obs::Counter::kSloViolations, slo_violations_);
}

util::Table Telemetry::slo_table() const {
  util::Table table({"Rule", "Windows", "Violations", "Worst us"});
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    table.add_row({rules_[ri].text, std::to_string(rule_checked_[ri]),
                   std::to_string(rule_violations_[ri]),
                   util::Table::fmt_double(rule_worst_[ri] * 1e6)});
  }
  return table;
}

void Telemetry::build_interference() {
  const int nc = n_comms();
  const double w = cfg_.window_seconds;

  // Arbiter byte-occupancy: each admitted request holds its payload bytes
  // over [verdict, end); integrate the overlap with every window.
  if (series_ != nullptr) {
    int nw = 0;
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (records_[i].outcome == ReqOutcome::kNone) continue;
      nw = std::max(nw, series_->window_of(records_[i].end_time) + 1);
    }
    occupancy_.assign(static_cast<std::size_t>(nw),
                      std::vector<double>(static_cast<std::size_t>(nc), 0.0));
    const int last = series_->max_windows() - 1;
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const ReqRecord& rec = records_[i];
      if (rec.outcome != ReqOutcome::kCompleted || meta_[i].bytes == 0) {
        continue;
      }
      const double t0 = rec.verdict_time;
      const double t1 = rec.end_time;
      for (int wi = series_->window_of(t0); wi <= series_->window_of(t1);
           ++wi) {
        const double lo = static_cast<double>(wi) * w;
        const double hi = wi == last
                              ? std::numeric_limits<double>::infinity()
                              : lo + w;
        const double overlap = std::min(t1, hi) - std::max(t0, lo);
        if (overlap <= 0.0) continue;
        occupancy_[static_cast<std::size_t>(wi)][static_cast<std::size_t>(
            meta_[i].comm)] +=
            static_cast<double>(meta_[i].bytes) * overlap / w;
      }
    }
  }

  // Degradation-event timeline: creation-time arbiter trails, then shed
  // decisions in request-id order.
  timeline_.clear();
  for (const CommInfo& info : comms_) {
    if (info.degradation.empty()) continue;
    std::string line;
    for (const char c : info.degradation) {
      if (c == '\n') {
        if (!line.empty()) timeline_.push_back("creation " + info.label +
                                               ": " + line);
        line.clear();
      } else {
        line.push_back(c);
      }
    }
    if (!line.empty()) timeline_.push_back("creation " + info.label + ": " +
                                           line);
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const ReqRecord& rec = records_[i];
    if (rec.outcome != ReqOutcome::kShedBacklog &&
        rec.outcome != ReqOutcome::kShedDeadline) {
      continue;
    }
    std::string ev;
    if (series_ != nullptr) {
      ev += "w=" + std::to_string(series_->window_of(rec.verdict_time)) + " ";
    }
    ev += "t=" + util::Table::fmt_double(rec.verdict_time * 1e6) + "us ";
    ev += comms_[static_cast<std::size_t>(meta_[i].comm)].label;
    ev += rec.outcome == ReqOutcome::kShedBacklog ? " shed(backlog) "
                                                  : " shed(deadline) ";
    ev += to_string(meta_[i].op);
    ev += " " + std::to_string(meta_[i].bytes) + "B";
    timeline_.push_back(std::move(ev));
  }

  // Admission-wait attribution: sweep the merged hold/wait boundary events;
  // every waiting tenant's dt is split among the tenants holding op tokens
  // over that segment (waiting on itself = its own earlier request holds
  // the token, or nobody does and the delay is its own leader's backlog).
  struct Ev {
    double t;
    int type;  ///< 0 = hold delta, 1 = wait delta
    int comm;
    int delta;
  };
  std::vector<Ev> evs;
  evs.reserve(records_.size() * 4);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const ReqRecord& rec = records_[i];
    if (rec.outcome == ReqOutcome::kNone) continue;
    const int c = meta_[i].comm;
    if (rec.outcome == ReqOutcome::kCompleted &&
        rec.end_time > rec.verdict_time) {
      evs.push_back({rec.verdict_time, 0, c, +1});
      evs.push_back({rec.end_time, 0, c, -1});
    }
    if (rec.verdict_time > meta_[i].arrival) {
      evs.push_back({meta_[i].arrival, 1, c, +1});
      evs.push_back({rec.verdict_time, 1, c, -1});
    }
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.type != b.type) return a.type < b.type;
    if (a.comm != b.comm) return a.comm < b.comm;
    return a.delta < b.delta;
  });
  wait_matrix_.assign(static_cast<std::size_t>(nc),
                      std::vector<double>(static_cast<std::size_t>(nc), 0.0));
  std::vector<int> holds(static_cast<std::size_t>(nc), 0);
  std::vector<int> waits(static_cast<std::size_t>(nc), 0);
  int hold_total = 0;
  double prev = 0.0;
  for (const Ev& ev : evs) {
    const double dt = ev.t - prev;
    if (dt > 0.0) {
      for (int a = 0; a < nc; ++a) {
        const int nwait = waits[static_cast<std::size_t>(a)];
        if (nwait == 0) continue;
        const double amount = dt * static_cast<double>(nwait);
        if (hold_total > 0) {
          for (int b = 0; b < nc; ++b) {
            const int nhold = holds[static_cast<std::size_t>(b)];
            if (nhold == 0) continue;
            wait_matrix_[static_cast<std::size_t>(a)]
                        [static_cast<std::size_t>(b)] +=
                amount * static_cast<double>(nhold) /
                static_cast<double>(hold_total);
          }
        } else {
          wait_matrix_[static_cast<std::size_t>(a)]
                      [static_cast<std::size_t>(a)] += amount;
        }
      }
    }
    prev = ev.t;
    if (ev.type == 0) {
      holds[static_cast<std::size_t>(ev.comm)] += ev.delta;
      hold_total += ev.delta;
    } else {
      waits[static_cast<std::size_t>(ev.comm)] += ev.delta;
    }
  }
}

void Telemetry::write_reqlog(std::ostream& os) const {
  XHC_REQUIRE(finalized_, "request log is written after finalize");
  os << "{\"label\":\"svc\",\"window_seconds\":";
  obs::write_json_number_exact(os, cfg_.window_seconds);
  os << ",\"requests\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const ReqRecord& rec = records_[i];
    const ReqMeta& m = meta_[i];
    if (i != 0) os << ',';
    os << "\n{\"id\":" << i << ",\"comm\":" << m.comm << ",\"tenant\":";
    obs::write_json_escaped(
        os, comms_[static_cast<std::size_t>(m.comm)].label.c_str());
    os << ",\"op\":";
    obs::write_json_escaped(os, to_string(m.op));
    os << ",\"bytes\":" << m.bytes << ",\"arrival\":";
    obs::write_json_number_exact(os, m.arrival);
    os << ",\"queued\":";
    obs::write_json_number_exact(os, rec.verdict_time - m.arrival);
    os << ",\"exec\":";
    obs::write_json_number_exact(
        os, rec.outcome == ReqOutcome::kCompleted
                ? rec.end_time - rec.verdict_time
                : 0.0);
    os << ",\"backoffs\":" << rec.backoffs << ",\"outcome\":";
    obs::write_json_escaped(os, to_string(rec.outcome));
    os << '}';
  }
  os << "\n]}\n";
}

void Telemetry::write_reqlog_file(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  XHC_CHECK(os.good(), "cannot open reqlog file ", path);
  write_reqlog(os);
  os.flush();
  XHC_CHECK(os.good(), "failed writing reqlog file ", path);
}

void Telemetry::write_interference(std::ostream& os) const {
  XHC_REQUIRE(finalized_, "interference report is written after finalize");
  if (!occupancy_.empty()) {
    os << "-- arbiter byte-occupancy per tenant (avg bytes held, per window) "
          "--\n";
    std::vector<std::string> header{"Window", "t_ms"};
    for (const CommInfo& info : comms_) header.push_back(info.label);
    util::Table table(std::move(header));
    for (std::size_t wi = 0; wi < occupancy_.size(); ++wi) {
      std::vector<std::string> row{
          std::to_string(wi),
          util::Table::fmt_double(static_cast<double>(wi) *
                                  cfg_.window_seconds * 1e3)};
      for (const double v : occupancy_[wi]) {
        row.push_back(util::Table::fmt_double(v, 0));
      }
      table.add_row(std::move(row));
    }
    table.print(os);
  }
  os << "-- degradation timeline --\n";
  if (timeline_.empty()) {
    os << "(none)\n";
  } else {
    constexpr std::size_t kMaxLines = 64;
    for (std::size_t i = 0; i < timeline_.size() && i < kMaxLines; ++i) {
      os << timeline_[i] << "\n";
    }
    if (timeline_.size() > kMaxLines) {
      os << "... (+" << timeline_.size() - kMaxLines << " more)\n";
    }
  }
  os << "-- admission-wait attribution (us, row waits on column) --\n";
  std::vector<std::string> header{"Waiter"};
  for (const CommInfo& info : comms_) header.push_back(info.label);
  util::Table table(std::move(header));
  for (std::size_t a = 0; a < wait_matrix_.size(); ++a) {
    std::vector<std::string> row{comms_[a].label};
    for (const double v : wait_matrix_[a]) {
      row.push_back(util::Table::fmt_double(v * 1e6));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void Telemetry::write_chrome_trace(std::ostream& os,
                                   const std::string& label) const {
  const int n_parent = parent_metrics_.n_ranks();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  // One process per parent rank; tenants render as named threads inside it.
  for (int r = 0; r < n_parent; ++r) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << r
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    obs::write_json_escaped(os,
                            (label + " rank " + std::to_string(r)).c_str());
    os << "}}";
  }
  for (int c = 0; c < n_comms(); ++c) {
    const CommInfo& info = comms_[static_cast<std::size_t>(c)];
    const obs::Recorder& rec = observers_[static_cast<std::size_t>(c)]->trace();
    for (int l = 0; l < rec.n_ranks(); ++l) {
      const int pid = info.ranks[static_cast<std::size_t>(l)];
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << c + 1
         << ",\"name\":\"thread_name\",\"args\":{\"name\":";
      obs::write_json_escaped(os, info.label.c_str());
      os << "}}";
      for (const obs::Span& s : rec.spans(l)) {
        os << ",{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << c + 1
           << ",\"cat\":";
        obs::write_json_escaped(os, s.cat);
        os << ",\"name\":";
        obs::write_json_escaped(os, s.name);
        os << ",\"ts\":";
        obs::write_json_number(os, s.t0 * 1e6);
        os << ",\"dur\":";
        obs::write_json_number(os, (s.t1 - s.t0) * 1e6);
        os << ",\"args\":{\"arg\":" << s.arg << "}}";
      }
    }
  }
  // Windowed plane as counter tracks under a synthetic service process,
  // stable-sorted by (series, window).
  if (series_ != nullptr) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << n_parent
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    obs::write_json_escaped(os, (label + " service").c_str());
    os << "}}";
    const int used = series_->used_windows();
    const double w_us = series_->window_seconds() * 1e6;
    for (int sid = 0; sid < series_->n_series(); ++sid) {
      for (int wi = 0; wi < used; ++wi) {
        const obs::TimeSeries::Cell cell = series_->merged(sid, wi);
        if (cell.count == 0) continue;
        os << ",{\"ph\":\"C\",\"pid\":" << n_parent << ",\"tid\":0,\"name\":";
        obs::write_json_escaped(os, series_->series_name(sid).c_str());
        os << ",\"ts\":";
        obs::write_json_number(os, static_cast<double>(wi) * w_us);
        os << ",\"args\":{\"value\":";
        obs::write_json_number_exact(os, cell.sum);
        os << "}}";
      }
    }
    for (int ci = 0; ci < obs::kNumCounters; ++ci) {
      const auto counter = static_cast<obs::Counter>(ci);
      if (series_->counter_total(counter) == 0.0) continue;
      for (int wi = 0; wi < used; ++wi) {
        const double sum = series_->counter_sum(counter, wi);
        if (sum == 0.0) continue;
        os << ",{\"ph\":\"C\",\"pid\":" << n_parent << ",\"tid\":0,\"name\":";
        obs::write_json_escaped(os, obs::to_string(counter));
        os << ",\"ts\":";
        obs::write_json_number(os, static_cast<double>(wi) * w_us);
        os << ",\"args\":{\"value\":";
        obs::write_json_number_exact(os, sum);
        os << "}}";
      }
    }
  }
  os << "]}\n";
}

void Telemetry::write_chrome_trace_file(const std::string& path,
                                        const std::string& label) const {
  std::ofstream os(path, std::ios::trunc);
  XHC_CHECK(os.good(), "cannot open trace file ", path);
  write_chrome_trace(os, label);
  os.flush();
  XHC_CHECK(os.good(), "failed writing trace file ", path);
}

}  // namespace xhc::svc
