#include "svc/tenant.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::svc {

namespace {

/// Local rank -> core list for the sub-map: communicator rank r keeps the
/// core its parent rank runs on, so topology distances and NUMA homes are
/// unchanged under the renumbering.
std::vector<int> cores_of(const mach::Machine& parent,
                          const std::vector<int>& ranks) {
  std::vector<int> cores;
  cores.reserve(ranks.size());
  for (const int r : ranks) cores.push_back(parent.map().core_of(r));
  return cores;
}

std::vector<int> sorted_unique(std::vector<int> ranks) {
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  return ranks;
}

}  // namespace

TenantMachine::TenantMachine(mach::Machine& parent, std::vector<int> ranks,
                             std::string scope)
    : parent_(&parent),
      ranks_(sorted_unique(std::move(ranks))),
      scope_(std::move(scope)),
      map_(parent.topology(), cores_of(parent, ranks_),
           parent.map().policy()) {
  XHC_REQUIRE(!ranks_.empty(), "tenant '", scope_, "' needs at least one rank");
  XHC_REQUIRE(ranks_.front() >= 0 && ranks_.back() < parent.n_ranks(),
              "tenant '", scope_, "' rank out of parent range [0, ",
              parent.n_ranks(), ")");
  local_of_.assign(static_cast<std::size_t>(parent.n_ranks()), -1);
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    local_of_[static_cast<std::size_t>(ranks_[i])] = static_cast<int>(i);
  }
}

mach::RunResult TenantMachine::run(
    const std::function<void(mach::Ctx&)>& /*fn*/) {
  XHC_CHECK(false, "tenant '", scope_,
            "': run() is not available — the service drives the parent "
            "machine's run and wraps its contexts in TenantCtx");
  return {};  // unreachable
}

int TenantMachine::parent_rank(int local) const {
  XHC_REQUIRE(local >= 0 && local < n_ranks(), "tenant '", scope_,
              "': local rank ", local, " out of range [0, ", n_ranks(), ")");
  return ranks_[static_cast<std::size_t>(local)];
}

int TenantMachine::local_rank(int parent_rank) const noexcept {
  if (parent_rank < 0 ||
      parent_rank >= static_cast<int>(local_of_.size())) {
    return -1;
  }
  return local_of_[static_cast<std::size_t>(parent_rank)];
}

}  // namespace xhc::svc
