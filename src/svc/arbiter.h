// Shared-resource arbiter of the multi-tenant collective service
// (DESIGN.md § Multi-tenant service).
//
// One Arbiter guards the shared-memory economy of a whole node: every
// communicator the CommRegistry instantiates charges its CICO pools,
// control planes and registration-cache entries against the arbiter's
// global budget at creation time, and every in-flight collective holds one
// of a bounded number of operation tokens while it runs. When a charge
// cannot be satisfied the arbiter degrades the request along the same
// chain the fault layer uses — segment halving down to the CICO floor,
// then XPMEM→CMA (per-operation kernel copies hold no cached mappings) —
// and only once the chain is exhausted sheds the request with a named,
// typed AdmissionError instead of deadlocking or over-committing.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "coll/tuning.h"
#include "util/check.h"

namespace xhc::svc {

/// Named, typed admission rejection: names the owning communicator, the
/// operation that was refused and why. Derived from util::Error so existing
/// catch sites (guarded_main, tests) keep working.
class AdmissionError : public util::Error {
 public:
  AdmissionError(std::string comm, std::string op, std::string reason)
      : util::Error("admission rejected: comm '" + comm + "' op " + op +
                    ": " + reason),
        comm_(std::move(comm)),
        op_(std::move(op)),
        reason_(std::move(reason)) {}

  const std::string& comm() const noexcept { return comm_; }
  const std::string& op() const noexcept { return op_; }
  const std::string& reason() const noexcept { return reason_; }

 private:
  std::string comm_;
  std::string op_;
  std::string reason_;
};

/// Global resource budget one Arbiter enforces.
struct Budget {
  /// Shared-segment bytes available to all communicators together: CICO
  /// pools plus the control-plane overhead estimate (kCtlBytesPerRank).
  std::size_t segment_bytes = 64u << 20;
  /// Registration-cache entries available across all endpoints.
  std::size_t regcache_entries = 1u << 20;
  /// Collectives allowed in flight at once, service-wide. Leaders acquire a
  /// token before starting an operation and back off (Ctx::stall) while none
  /// is free.
  int inflight_ops = 8;
  /// Pending-request backlog a communicator may accumulate before its
  /// admission leader starts shedding.
  std::size_t queue_capacity = 64;
  /// Seconds a request may wait past its arrival (backoff + backlog) before
  /// the admission leader sheds it. Virtual time on SimMachine.
  double deadline = 0.05;
  /// Exponential backoff while waiting for an operation token: first stall
  /// `backoff_base` seconds, doubling up to `backoff_max`.
  double backoff_base = 2e-6;
  double backoff_max = 512e-6;
};

class Arbiter {
 public:
  /// Control-plane overhead charged per communicator rank on top of the
  /// CICO segment: group ctl blocks (a dozen padded lines per membership),
  /// the shard/stripe plane (4 lines) and the admission plane. Generous by
  /// design — the arbiter must never under-charge.
  static constexpr std::size_t kCtlBytesPerRank = 8u << 10;
  /// reg_cache_entries is not degraded below this before the mechanism
  /// itself is downgraded.
  static constexpr std::size_t kMinRegEntries = 16;

  explicit Arbiter(Budget budget)
      : budget_(budget),
        seg_free_(budget.segment_bytes),
        reg_free_(budget.regcache_entries),
        ops_free_(budget.inflight_ops) {
    XHC_REQUIRE(budget.inflight_ops > 0, "need at least one op token");
  }

  const Budget& budget() const noexcept { return budget_; }

  /// Creation-time admission of a communicator named `comm` with `n_ranks`
  /// ranks. Returns the (possibly degraded) tuning whose cost fit the
  /// remaining budget, charging it; appends a one-line note per degradation
  /// step to `*trail` (when non-null). Throws AdmissionError when even the
  /// fully degraded configuration does not fit.
  coll::Tuning admit(const std::string& comm, int n_ranks, coll::Tuning t,
                     std::string* trail = nullptr);

  /// Returns a communicator's creation-time charge to the pool.
  void release(const std::string& comm);

  /// Operation tokens. try_acquire_op is safe from concurrent rank threads
  /// (RealMachine); on SimMachine exactly one rank executes at a time, so
  /// the token sequence is deterministic.
  bool try_acquire_op() noexcept {
    int cur = ops_free_.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (ops_free_.compare_exchange_weak(cur, cur - 1,
                                          std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }
  void release_op() noexcept {
    ops_free_.fetch_add(1, std::memory_order_acq_rel);
  }
  int ops_free() const noexcept {
    return ops_free_.load(std::memory_order_relaxed);
  }

  std::size_t segment_bytes_free() const;
  std::size_t regcache_entries_free() const;

  Arbiter(const Arbiter&) = delete;
  Arbiter& operator=(const Arbiter&) = delete;

 private:
  struct Charge {
    std::size_t seg = 0;
    std::size_t reg = 0;
  };

  Budget budget_;
  mutable std::mutex mu_;          ///< guards the creation-time pools
  std::size_t seg_free_;
  std::size_t reg_free_;
  std::map<std::string, Charge> charges_;
  std::atomic<int> ops_free_;      ///< op tokens, touched inside runs
};

}  // namespace xhc::svc
