// Service telemetry plane (DESIGN.md § Service telemetry plane).
//
// One Telemetry object carries every observability surface of a loadgen
// soak over the multi-tenant service:
//
//   * per-communicator obs::Observers (spans, counters, hists) attached to
//     each tenant's component under the communicator-local rank numbering —
//     one Observer per communicator, so the single-writer-per-row
//     discipline holds even when two tenants share a parent rank;
//   * a windowed obs::TimeSeries over the *parent* rank set: machine-level
//     flag-wait durations (Machine::set_wait_series), per-op-class
//     queued/exec phase samples, and watermarked per-window deltas of
//     every tenant's counters (each parent rank samples only the rows it
//     writes itself, so mid-run sampling is race-free and deterministic);
//   * the per-request causal log: each request's id threads through
//     queued -> admitted/shed (naming the degradation taken) -> executing
//     -> completed, with the leader writing one ReqRecord per request id
//     (disjoint single-writer cells), exported as byte-deterministic JSON
//     via --reqlog;
//   * the cross-tenant interference report derived from the request log:
//     per-window arbiter byte-occupancy per tenant, the degradation-event
//     timeline, and a tenant x tenant matrix attributing each tenant's
//     admission-wait time to whoever held the op-token budget meanwhile;
//   * a declarative SLO monitor: per-op-class latency targets
//     ("<class|*>:<metric>=<value><unit>", metrics p50/p90/p99/p999/max/
//     mean) evaluated per window over completed requests, booked into the
//     slo_* counters, with violations surfacing as a nonzero bench exit.
//
// Everything is Tuning::trace-style gated: a null LoadgenConfig::telemetry
// keeps the loadgen hot path bit-identical to the un-instrumented build,
// and even with the plane attached all recording is observational (no
// charges), so the service tables stay byte-identical with telemetry on.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/hist.h"
#include "obs/observer.h"
#include "obs/timeseries.h"
#include "svc/loadgen.h"
#include "util/table.h"

namespace xhc::svc {

class CommRegistry;

/// Terminal state of one request's causal chain.
enum class ReqOutcome : std::uint8_t {
  kNone = 0,       ///< never reached by its leader (schedule truncated)
  kCompleted,      ///< admitted and executed
  kShedBacklog,    ///< shed: backlog beyond the queue bound at decision time
  kShedDeadline,   ///< shed: deadline passed while backing off for a token
};
const char* to_string(ReqOutcome o) noexcept;

/// One request's phase timestamps, written only by its communicator's
/// admission leader (request ids partition across leaders, so the cells are
/// disjoint single-writer). Phases derive as queued = verdict - arrival and
/// exec = end - verdict.
struct ReqRecord {
  double verdict_time = 0.0;  ///< when the admission verdict was published
  double end_time = 0.0;      ///< completion time (== verdict_time when shed)
  std::uint32_t backoffs = 0; ///< op-token backoff stalls taken while queued
  ReqOutcome outcome = ReqOutcome::kNone;
};

/// One parsed SLO rule: `op` is an OpClass index or -1 for every class.
struct SloRule {
  enum class Metric : int { kP50 = 0, kP90, kP99, kP999, kMax, kMean };
  int op = -1;
  Metric metric = Metric::kP99;
  double target = 0.0;  ///< seconds
  std::string text;     ///< canonical "<class>:<metric>=<value>" spelling
};

/// Parses "<class|*>:<metric>=<value><unit>[;<rule>...]" (',' also accepted
/// as a separator; units ns/us/ms/s). Throws util::Error on malformed specs.
std::vector<SloRule> parse_slo(const std::string& spec);

struct TelemetryConfig {
  /// Window width of the time-series plane; 0 disables the plane (the
  /// request log and per-comm observers still work).
  double window_seconds = 0.0;
  int max_windows = 256;
  /// Attach the parent machine's flag-wait histogram feed (the --hist
  /// surface; independent of the windowed plane).
  bool machine_hist = false;
  /// SLO spec (see parse_slo); requires window_seconds > 0.
  std::string slo;
};

class Telemetry {
 public:
  /// `parent` is the machine the soak will run on; `n_requests` sizes the
  /// request log. The Telemetry must outlive every run that uses it.
  Telemetry(mach::Machine& parent, TelemetryConfig cfg,
            std::uint64_t n_requests);
  ~Telemetry();

  /// Wires the plane into a created registry: one Observer per
  /// communicator, counter watchers, and the machine wait hooks. Called by
  /// run_loadgen before the parallel region; idempotent.
  void attach(CommRegistry& reg);

  // --- hot path (called from run_loadgen's parallel region) ----------------

  /// Samples `parent_rank`'s watched counter rows into the window holding
  /// `now`. Each rank ticks at every request it projects plus once at loop
  /// exit, so every delta lands in a window and totals are lossless.
  void tick(int parent_rank, double now) noexcept {
    if (series_ != nullptr) series_->sample_counters(parent_rank, now);
  }

  /// Leader-side: closes request `r.id`'s causal chain.
  void on_request(const Request& r, ReqOutcome oc, double verdict_time,
                  double end_time, std::uint32_t backoffs) noexcept {
    ReqRecord& rec = records_[static_cast<std::size_t>(r.id)];
    rec.verdict_time = verdict_time;
    rec.end_time = end_time;
    rec.backoffs = backoffs;
    rec.outcome = oc;
  }

  // --- post-run ------------------------------------------------------------

  /// Derives every report from the request log: phase series and hists,
  /// occupancy, the degradation timeline, the wait-attribution matrix and
  /// the SLO evaluation. Called by run_loadgen after the parallel region
  /// joins; snapshots everything it needs, so the registry may die after.
  void finalize(const CommRegistry& reg, const std::vector<Request>& schedule);

  bool windowed() const noexcept { return series_ != nullptr; }
  obs::TimeSeries* series() noexcept { return series_.get(); }
  const obs::TimeSeries* series() const noexcept { return series_.get(); }
  int n_comms() const noexcept { return static_cast<int>(comms_.size()); }
  obs::Observer* observer(int comm) noexcept {
    return observers_[static_cast<std::size_t>(comm)].get();
  }
  const std::string& comm_label(int comm) const noexcept {
    return comms_[static_cast<std::size_t>(comm)].label;
  }
  /// Parent-machine flag-wait histograms (the --hist feed).
  obs::HistSet& machine_hists() noexcept { return machine_hists_; }
  /// Parent-rank registry for machine-level publishes (coh counters).
  obs::Metrics& parent_metrics() noexcept { return parent_metrics_; }

  const std::vector<ReqRecord>& records() const noexcept { return records_; }

  /// queued/<class> and exec/<class> phase histograms (completed requests;
  /// queued additionally covers shed ones — their chain ended there).
  std::vector<obs::NamedHist> phase_hists() const;

  /// Counters merged over every tenant observer + the parent registry + the
  /// service-level slo_* counters, then gauges (summed over tenants).
  util::Table metrics_table() const;
  /// Span aggregation over every tenant observer, (cat, name)-keyed.
  util::Table span_table() const;
  std::uint64_t spans_recorded() const noexcept;

  // --- SLO monitor (populated by finalize when a spec was given) -----------
  const std::vector<SloRule>& slo_rules() const noexcept { return rules_; }
  std::uint64_t slo_windows_checked() const noexcept { return slo_checked_; }
  std::uint64_t slo_violations() const noexcept { return slo_violations_; }
  /// Rule x {windows, checked, violations, worst} summary.
  util::Table slo_table() const;

  // --- interference products (populated by finalize) -----------------------
  /// [window][comm] average bytes held over the window by admitted requests.
  const std::vector<std::vector<double>>& occupancy() const noexcept {
    return occupancy_;
  }
  /// [waiter][holder] seconds of admission wait attributed to token holders
  /// (diagonal additionally absorbs waits with no holder: own backlog).
  const std::vector<std::vector<double>>& wait_matrix() const noexcept {
    return wait_matrix_;
  }

  // --- byte-deterministic exports ------------------------------------------
  /// Request log as JSON, sorted by id: identity, phases, outcome.
  void write_reqlog(std::ostream& os) const;
  void write_reqlog_file(const std::string& path) const;
  /// Cross-tenant interference report: per-window byte-occupancy per
  /// tenant, the degradation timeline, and the admission-wait matrix.
  void write_interference(std::ostream& os) const;
  /// Multi-tenant Chrome trace: per-tenant thread_name/process_name rows
  /// (pid = parent rank, tid = communicator id + 1) plus stable-sorted
  /// counter events from the windowed plane under a synthetic service pid.
  void write_chrome_trace(std::ostream& os, const std::string& label) const;
  void write_chrome_trace_file(const std::string& path,
                               const std::string& label) const;

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

 private:
  struct CommInfo {
    int id = 0;
    std::string label;        ///< "comm<id>'<name>'"
    std::string degradation;  ///< creation-time arbiter trail ("" = none)
    std::vector<int> ranks;   ///< local rank -> parent rank
  };
  /// Request identity snapshot (from the schedule, finalize-time).
  struct ReqMeta {
    int comm = 0;
    OpClass op = OpClass::kBarrier;
    std::size_t bytes = 0;
    double arrival = 0.0;
  };

  void eval_slo();
  void build_interference();

  mach::Machine* parent_;
  TelemetryConfig cfg_;
  std::vector<SloRule> rules_;
  std::unique_ptr<obs::TimeSeries> series_;
  int sid_flag_wait_ = 0;
  std::array<int, kNumOpClasses> sid_queued_{};
  std::array<int, kNumOpClasses> sid_exec_{};
  obs::HistSet machine_hists_;
  obs::Metrics parent_metrics_;
  obs::Metrics svc_metrics_;  ///< service-level counters (slo_*)
  std::vector<std::unique_ptr<obs::Observer>> observers_;
  std::vector<CommInfo> comms_;
  std::vector<ReqRecord> records_;
  std::vector<ReqMeta> meta_;
  bool attached_ = false;
  bool finalized_ = false;

  // finalize products
  std::uint64_t slo_checked_ = 0;
  std::uint64_t slo_violations_ = 0;
  std::vector<std::uint64_t> rule_checked_;
  std::vector<std::uint64_t> rule_violations_;
  std::vector<double> rule_worst_;
  std::vector<std::vector<double>> occupancy_;  ///< [window][comm] avg bytes
  std::vector<std::string> timeline_;
  std::vector<std::vector<double>> wait_matrix_;  ///< [waiter][holder] seconds
};

}  // namespace xhc::svc
