#include "svc/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

#include "svc/telemetry.h"
#include "util/cacheline.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc::svc {

namespace {

/// Payload sizes straddle this edge: the default rs_ag/stripe thresholds.
constexpr std::size_t kLargeEdge = 128u << 10;

/// Verification sampling bound per request. Payloads at or below the bound
/// (in words / elements) are checked exhaustively; larger ones at this many
/// strided positions plus both edges. Keeps host-side verification cost flat
/// over a 100k-request soak while still catching corruption anywhere in the
/// buffer with high probability.
constexpr std::size_t kVerifySamples = 256;

/// The 8-byte word util::fill_pattern(_, _, seed) writes at byte offset 8*k
/// (little-endian byte order). SplitMix64's state after k steps is
/// seed + (k+1)*gamma, so any offset is reachable in O(1) — sampled
/// verification without regenerating the whole pattern.
std::uint64_t pattern_word(std::uint64_t seed, std::size_t k) noexcept {
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(k) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Checks `bytes` of `buf` against the fill_pattern(seed) stream at word
/// index `k0 + j` for buffer word j. Returns false on any mismatch.
bool check_pattern_word(const unsigned char* p, std::uint64_t seed,
                        std::size_t word, std::size_t n_bytes) noexcept {
  const std::uint64_t v = pattern_word(seed, word);
  for (std::size_t b = 0; b < n_bytes; ++b) {
    if (p[b] != static_cast<unsigned char>(v >> (8 * b))) return false;
  }
  return true;
}

bool verify_pattern(const void* buf, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(buf);
  const std::size_t words = bytes / 8;
  const std::size_t tail = bytes % 8;
  if (words <= kVerifySamples) {
    for (std::size_t w = 0; w < words; ++w) {
      if (!check_pattern_word(p + 8 * w, seed, w, 8)) return false;
    }
  } else {
    const std::size_t stride = words / kVerifySamples;
    for (std::size_t s = 0; s < kVerifySamples; ++s) {
      const std::size_t w = std::min(words - 1, s * stride);
      if (!check_pattern_word(p + 8 * w, seed, w, 8)) return false;
    }
    if (!check_pattern_word(p + 8 * (words - 1), seed, words - 1, 8)) {
      return false;
    }
  }
  if (tail != 0 && !check_pattern_word(p + 8 * words, seed, words, tail)) {
    return false;
  }
  return true;
}

/// Same operand family as osu::harness verification: exact multiples of
/// 1/256 in [-1, 1), so a double-precision reference sum is insensitive to
/// summation order and any over-tolerance deviation is real corruption.
float operand(std::uint64_t seed, std::size_t i) noexcept {
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(i) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<float>(static_cast<int>(z & 511u) - 256) *
         (1.0f / 256.0f);
}

std::uint64_t operand_seed(std::uint64_t req_seed, int contributor) noexcept {
  return req_seed + 1000ull * static_cast<std::uint64_t>(contributor);
}

/// Checks a float reduction result at sampled elements against the
/// double-precision reference over all `n` contributors.
bool verify_reduction(const float* got, std::size_t count, std::uint64_t seed,
                      int n) {
  const std::size_t stride =
      count <= kVerifySamples ? 1 : count / kVerifySamples;
  for (std::size_t i = 0; i < count; i += stride) {
    double expect = 0.0;
    for (int r = 0; r < n; ++r) {
      expect += static_cast<double>(operand(operand_seed(seed, r), i));
    }
    const double tol = 1e-4 * std::max(1.0, std::abs(expect));
    if (std::abs(static_cast<double>(got[i]) - expect) > tol) return false;
  }
  return true;
}

/// Leader-written per-communicator statistics; heap-allocated one block per
/// communicator so concurrent leaders (RealMachine) never share lines.
struct CommStats {
  std::array<OpClassStats, kNumOpClasses> cls;
  std::uint64_t backoff_stalls = 0;
};

}  // namespace

const char* to_string(OpClass c) noexcept {
  switch (c) {
    case OpClass::kBcast: return "bcast";
    case OpClass::kAllreduce: return "allreduce";
    case OpClass::kReduce: return "reduce";
    case OpClass::kBarrier: return "barrier";
    default: return "?";
  }
}

std::vector<CommSpec> make_comm_plan(int n_ranks, const LoadgenConfig& cfg,
                                     const coll::Tuning& base) {
  XHC_REQUIRE(n_ranks >= 2, "loadgen needs at least 2 ranks, got ", n_ranks);
  XHC_REQUIRE(cfg.n_comms >= 1, "loadgen needs at least 1 communicator");
  std::vector<CommSpec> plan;
  plan.reserve(static_cast<std::size_t>(cfg.n_comms));
  for (int c = 0; c < cfg.n_comms; ++c) {
    CommSpec spec;
    spec.name = "t" + std::to_string(c);
    spec.tuning = base;
    spec.tuning.faults = cfg.faults;
    // Decorrelate the per-communicator fault decision streams while keeping
    // the whole plan a function of (cfg, n_ranks) only.
    spec.tuning.fault_seed =
        cfg.fault_seed + static_cast<std::uint64_t>(c);
    if (c == 0) {
      // The root tenant spans the node: every rank overlaps with every
      // other communicator.
      for (int r = 0; r < n_ranks; ++r) spec.ranks.push_back(r);
    } else if (c % 3 == 2 && n_ranks >= 4) {
      // Strided subset: every other rank, offset alternating — crosses the
      // contiguous windows at single-rank granularity.
      for (int r = c % 2; r < n_ranks; r += 2) spec.ranks.push_back(r);
    } else {
      // Contiguous wrapping window of half the node, start rotating with c
      // so neighbouring communicators overlap on roughly half their ranks.
      const int w = std::max(2, n_ranks / 2);
      const int start = (c * n_ranks) / cfg.n_comms;
      for (int i = 0; i < w; ++i) {
        spec.ranks.push_back((start + i) % n_ranks);
      }
    }
    plan.push_back(std::move(spec));
  }
  return plan;
}

std::vector<Request> make_schedule(const LoadgenConfig& cfg,
                                   const CommRegistry& reg) {
  const int n_comms = reg.n_comms();
  XHC_REQUIRE(n_comms >= 1, "schedule needs at least one communicator");
  XHC_REQUIRE(cfg.arrival_rate > 0.0, "arrival rate must be positive");
  XHC_REQUIRE(cfg.min_bytes >= 4 && cfg.min_bytes <= cfg.max_bytes,
              "need 4 <= min_bytes <= max_bytes");

  const double rate = cfg.arrival_rate / static_cast<double>(n_comms);
  const std::size_t small_hi = std::min(cfg.max_bytes, kLargeEdge);
  const bool can_large = cfg.max_bytes > kLargeEdge;
  const double log_lo = std::log(static_cast<double>(cfg.min_bytes));
  const double log_hi = std::log(static_cast<double>(small_hi));

  std::vector<Request> all;
  all.reserve(cfg.requests);
  for (int c = 0; c < n_comms; ++c) {
    const std::uint64_t n_c =
        cfg.requests / static_cast<std::uint64_t>(n_comms) +
        (static_cast<std::uint64_t>(c) <
                 cfg.requests % static_cast<std::uint64_t>(n_comms)
             ? 1
             : 0);
    util::SplitMix64 rng(cfg.seed ^
                         (static_cast<std::uint64_t>(c) + 1) *
                             0x9e3779b97f4a7c15ull);
    double t = 0.0;
    for (std::uint64_t i = 0; i < n_c; ++i) {
      Request r;
      r.comm = c;
      r.index = i;
      // Exponential inter-arrivals (open loop: arrival times are fixed up
      // front, independent of service latency).
      t += -std::log(1.0 - rng.next_double()) / rate;
      r.arrival = t;
      const double uop = rng.next_double();
      r.op = uop < 0.30   ? OpClass::kBcast
             : uop < 0.60 ? OpClass::kAllreduce
             : uop < 0.80 ? OpClass::kReduce
                          : OpClass::kBarrier;
      if (r.op != OpClass::kBarrier) {
        std::size_t bytes;
        if (can_large && rng.next_double() < cfg.large_fraction) {
          // Uniform above the 128 KiB edge: exercises the rs+ag / striped
          // paths and the size-class dispatch boundary.
          bytes = kLargeEdge + 1 +
                  static_cast<std::size_t>(rng.next_below(
                      static_cast<std::uint64_t>(cfg.max_bytes - kLargeEdge)));
        } else {
          // Log-uniform below the edge: most requests are latency-path.
          bytes = static_cast<std::size_t>(
              std::exp(log_lo + (log_hi - log_lo) * rng.next_double()));
        }
        bytes = std::min(std::max(bytes, cfg.min_bytes), cfg.max_bytes);
        if (r.op != OpClass::kBcast) bytes &= ~std::size_t{3};  // f32 elems
        r.bytes = std::max<std::size_t>(bytes, 4);
        r.root = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(reg.comm(c).size())));
      }
      r.seed = rng.next();
      all.push_back(r);
    }
  }

  // One global total order: by arrival, ties by communicator then stream
  // index (fully deterministic). Every rank projects this order onto its
  // memberships, so shared ranks serve cross-communicator requests in the
  // same relative order everywhere — no cross-communicator deadlock.
  std::sort(all.begin(), all.end(), [](const Request& a, const Request& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.comm != b.comm) return a.comm < b.comm;
    return a.index < b.index;
  });
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i].id = static_cast<std::uint64_t>(i);
  }
  return all;
}

LoadgenResult run_loadgen(CommRegistry& reg,
                          const std::vector<Request>& schedule,
                          const LoadgenConfig& cfg) {
  mach::Machine& parent = reg.parent();
  const int n_parent = parent.n_ranks();
  const int n_comms = reg.n_comms();
  const Budget& budget = reg.arbiter().budget();
  Telemetry* const tele = cfg.telemetry;
  if (tele != nullptr) tele->attach(reg);

  // Largest payload per communicator: buffers are allocated once.
  std::vector<std::size_t> comm_max(static_cast<std::size_t>(n_comms), 64);
  for (const Request& r : schedule) {
    comm_max[static_cast<std::size_t>(r.comm)] =
        std::max(comm_max[static_cast<std::size_t>(r.comm)], r.bytes);
  }

  // Per (communicator, local rank) payload buffers, owned (first-touch) by
  // the member rank, double-buffered by request-index parity: there is no
  // barrier between requests, so a rank may pre-write its payload for
  // request i+1 while a slower member is still single-copy-reading request
  // i's buffers. The verdict-ack handshake bounds the lag at one request
  // (verdict i+1 needs every ack of i, and a member acks i only after
  // finishing i-1), so alternating two buffer sets closes the hazard.
  // `zero` keeps untouched bytes deterministic.
  std::vector<std::array<std::vector<mach::Buffer>, 2>> dst(
      static_cast<std::size_t>(n_comms));
  std::vector<std::array<std::vector<mach::Buffer>, 2>> src(
      static_cast<std::size_t>(n_comms));
  // Parent rank -> local rank per communicator, flattened for hot lookup.
  std::vector<std::vector<int>> local(static_cast<std::size_t>(n_comms));
  for (int c = 0; c < n_comms; ++c) {
    Communicator& comm = reg.comm(c);
    const auto cc = static_cast<std::size_t>(c);
    for (int par = 0; par < 2; ++par) {
      dst[cc][par].reserve(static_cast<std::size_t>(comm.size()));
      src[cc][par].reserve(static_cast<std::size_t>(comm.size()));
      for (int l = 0; l < comm.size(); ++l) {
        dst[cc][par].emplace_back(comm.machine(), l, comm_max[cc]);
        src[cc][par].emplace_back(comm.machine(), l, comm_max[cc]);
      }
    }
    local[cc].resize(static_cast<std::size_t>(n_parent));
    for (int r = 0; r < n_parent; ++r) {
      local[cc][static_cast<std::size_t>(r)] = comm.local_rank(r);
    }
  }

  // Per-communicator arrival times (ascending), for the backlog bound.
  std::vector<std::vector<double>> arrivals(static_cast<std::size_t>(n_comms));
  for (const Request& r : schedule) {
    arrivals[static_cast<std::size_t>(r.comm)].push_back(r.arrival);
  }

  // Leader-written stats, one heap block per communicator; member-written
  // integrity counters, one padded line per (communicator, local rank).
  std::vector<std::unique_ptr<CommStats>> stats;
  stats.reserve(static_cast<std::size_t>(n_comms));
  std::vector<std::vector<util::CachePadded<
      std::array<std::uint64_t, kNumOpClasses>>>>
      integ_fail(static_cast<std::size_t>(n_comms));
  for (int c = 0; c < n_comms; ++c) {
    stats.push_back(std::make_unique<CommStats>());
    integ_fail[static_cast<std::size_t>(c)].resize(
        static_cast<std::size_t>(reg.comm(c).size()));
  }

  const auto execute = [&](mach::Ctx& tctx, Communicator& comm,
                           const Request& r, int l) {
    const auto cc = static_cast<std::size_t>(r.comm);
    const auto ll = static_cast<std::size_t>(l);
    const auto par = static_cast<std::size_t>(r.index & 1);
    void* d = dst[cc][par][ll].get();
    void* s = src[cc][par][ll].get();
    bool ok = true;
    switch (r.op) {
      case OpClass::kBcast: {
        if (l == r.root) tctx.write_payload(d, r.bytes, r.seed);
        comm.component().bcast(tctx, d, r.bytes, r.root);
        if (cfg.integrity) ok = verify_pattern(d, r.bytes, r.seed);
        break;
      }
      case OpClass::kAllreduce:
      case OpClass::kReduce: {
        const std::size_t count = r.bytes / 4;
        // Modeled write charges the rewrite and invalidates the line set;
        // the host-side operand fill below is unmodeled (harness idiom), so
        // timing is independent of --integrity.
        tctx.write_payload(s, r.bytes, operand_seed(r.seed, l));
        if (cfg.integrity) {
          auto* f = static_cast<float*>(s);
          const std::uint64_t seed = operand_seed(r.seed, l);
          for (std::size_t i = 0; i < count; ++i) f[i] = operand(seed, i);
        }
        if (r.op == OpClass::kAllreduce) {
          comm.component().allreduce(tctx, s, d, count, mach::DType::kF32,
                                     mach::ROp::kSum);
          if (cfg.integrity) {
            ok = verify_reduction(static_cast<const float*>(d), count, r.seed,
                                  comm.size());
          }
        } else {
          comm.component().reduce(tctx, s, d, count, mach::DType::kF32,
                                  mach::ROp::kSum, r.root);
          if (cfg.integrity && l == r.root) {
            ok = verify_reduction(static_cast<const float*>(d), count, r.seed,
                                  comm.size());
          }
        }
        break;
      }
      case OpClass::kBarrier: {
        comm.component().barrier(tctx);
        break;
      }
      default: break;
    }
    if (!ok) {
      // First failure per (comm, rank, class) goes to stderr with full
      // request coordinates — a soak that fails should say where.
      if (integ_fail[cc][ll].value[static_cast<int>(r.op)] == 0) {
        std::fprintf(stderr,
                     "loadgen: integrity mismatch: %s %s id=%llu index=%llu "
                     "bytes=%zu root=%d local=%d\n",
                     comm.scope().c_str(), to_string(r.op),
                     static_cast<unsigned long long>(r.id),
                     static_cast<unsigned long long>(r.index), r.bytes,
                     r.root, l);
      }
      ++integ_fail[cc][ll].value[static_cast<int>(r.op)];
    }
  };

  const mach::RunResult rr = parent.run([&](mach::Ctx& ctx) {
    const int pr = ctx.rank();
    for (const Request& r : schedule) {
      const auto cc = static_cast<std::size_t>(r.comm);
      const int l = local[cc][static_cast<std::size_t>(pr)];
      if (l < 0) continue;
      Communicator& comm = reg.comm(r.comm);
      TenantCtx tctx(ctx, comm.machine());
      // Open loop: idle until the request's fixed arrival time.
      const double now0 = tctx.now();
      if (now0 < r.arrival) tctx.stall(r.arrival - now0);

      if (l != 0) {
        if (comm.await_verdict(ctx, r.index)) execute(tctx, comm, r, l);
        if (tele != nullptr) tele->tick(pr, tctx.now());
        continue;
      }

      // Admission leader: backlog bound, then deadline-aware exponential
      // backoff on the service-wide op-token pool.
      CommStats& st = *stats[cc];
      bool admitted = true;
      ReqOutcome oc = ReqOutcome::kCompleted;
      std::uint32_t backoffs = 0;
      const auto& arr = arrivals[cc];
      const auto due = static_cast<std::size_t>(
          std::upper_bound(arr.begin(), arr.end(), tctx.now()) - arr.begin());
      if (due > r.index + 1 && due - (r.index + 1) > budget.queue_capacity) {
        admitted = false;  // backlog beyond the queue bound: shed
        oc = ReqOutcome::kShedBacklog;
      } else {
        double backoff = budget.backoff_base;
        while (!reg.arbiter().try_acquire_op()) {
          const double waited = tctx.now() - r.arrival;
          if (waited >= budget.deadline) {
            admitted = false;  // deadline passed while backing off: shed
            oc = ReqOutcome::kShedDeadline;
            break;
          }
          // Stall at least one base quantum: the exact remainder
          // (deadline - waited) can be small enough that now + remainder
          // rounds back to now, and a zero-advance stall would spin here
          // forever without ever crossing the deadline.
          tctx.stall(std::min(
              backoff, std::max(budget.deadline - waited,
                                budget.backoff_base)));
          backoff = std::min(backoff * 2.0, budget.backoff_max);
          ++st.backoff_stalls;
          ++backoffs;
        }
      }
      const double vt = tele != nullptr ? tctx.now() : 0.0;
      comm.publish_verdict(ctx, r.index, admitted);
      auto& cls = st.cls[static_cast<int>(r.op)];
      if (admitted) {
        execute(tctx, comm, r, l);
        reg.arbiter().release_op();
        const double end_t = tctx.now();
        cls.latency.record(end_t - r.arrival);
        ++cls.completed;
        if (tele != nullptr) {
          tele->on_request(r, ReqOutcome::kCompleted, vt, end_t, backoffs);
        }
      } else {
        ++cls.shed;
        if (tele != nullptr) tele->on_request(r, oc, vt, vt, backoffs);
      }
      if (tele != nullptr) tele->tick(pr, tctx.now());
    }
    // Loop-exit tick: whatever the last request left behind still lands in
    // a window, so counter-series totals are lossless.
    if (tele != nullptr) tele->tick(pr, ctx.now());
  });

  if (tele != nullptr) tele->finalize(reg, schedule);

  // Aggregate in communicator-id order: merges are bucket additions, so the
  // result is independent of which leader finished first.
  LoadgenResult out;
  out.makespan = rr.max_time;
  for (int c = 0; c < n_comms; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    for (int k = 0; k < kNumOpClasses; ++k) {
      out.per_class[static_cast<std::size_t>(k)].latency.merge(
          stats[cc]->cls[static_cast<std::size_t>(k)].latency);
      out.per_class[static_cast<std::size_t>(k)].completed +=
          stats[cc]->cls[static_cast<std::size_t>(k)].completed;
      out.per_class[static_cast<std::size_t>(k)].shed +=
          stats[cc]->cls[static_cast<std::size_t>(k)].shed;
      for (const auto& f : integ_fail[cc]) {
        out.per_class[static_cast<std::size_t>(k)].integrity_failures +=
            f.value[static_cast<std::size_t>(k)];
      }
    }
    out.backoff_stalls += stats[cc]->backoff_stalls;
  }
  for (const auto& pc : out.per_class) {
    out.completed += pc.completed;
    out.shed += pc.shed;
    out.integrity_failures += pc.integrity_failures;
  }
  return out;
}

LoadgenResult run_soak(mach::Machine& parent, const LoadgenConfig& cfg,
                       const Budget& budget, const coll::Tuning& base) {
  Arbiter arbiter(budget);
  CommRegistry reg(parent, arbiter);
  for (const CommSpec& spec : make_comm_plan(parent.n_ranks(), cfg, base)) {
    reg.create(spec);
  }
  const std::vector<Request> schedule = make_schedule(cfg, reg);
  return run_loadgen(reg, schedule, cfg);
}

}  // namespace xhc::svc
