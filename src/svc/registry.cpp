#include "svc/registry.h"

#include <new>
#include <utility>

#include "coll/registry.h"

namespace xhc::svc {

namespace {

std::uint64_t verdict_value(std::uint64_t index, bool admitted) {
  return 2 * (index + 1) + (admitted ? 0 : 1);
}

}  // namespace

void Communicator::publish_verdict(mach::Ctx& parent_ctx, std::uint64_t index,
                                   bool admitted) {
  XHC_REQUIRE(machine_->local_rank(parent_ctx.rank()) == 0,
              scope_, "verdicts are published by communicator rank 0 only");
  // Wait out the member acks of the previous verdict first: no member may
  // ever observe a verdict beyond the index it awaits (see registry.h).
  const auto members = static_cast<std::uint64_t>(machine_->n_ranks() - 1);
  if (index > 0 && members > 0) {
    parent_ctx.flag_wait_ge(ack_->value, index * members);
  }
  parent_ctx.flag_store(verdict_->value, verdict_value(index, admitted));
}

bool Communicator::await_verdict(mach::Ctx& parent_ctx, std::uint64_t index) {
  parent_ctx.flag_wait_ge(verdict_->value, verdict_value(index, true));
  // Exact read: the leader cannot have published past `index` without this
  // member's ack below.
  const bool admitted =
      parent_ctx.flag_read(verdict_->value) == verdict_value(index, true);
  parent_ctx.fetch_add(ack_->value, 1);
  return admitted;
}

Communicator& CommRegistry::create(const CommSpec& spec) {
  auto comm = std::unique_ptr<Communicator>(new Communicator());
  comm->id_ = n_comms();
  comm->name_ = spec.name;
  comm->scope_ =
      "comm" + std::to_string(comm->id_) + "'" + spec.name + "'/";

  coll::Tuning tuning = spec.tuning;
  tuning.comm_name = comm->scope_;
  tuning.comm_id = comm->id_;

  // Count ranks as the tenant machine will (deduplicated) so the arbiter
  // charge matches the build.
  auto machine = std::make_unique<TenantMachine>(*parent_, spec.ranks,
                                                 comm->scope_);
  tuning = arbiter_->admit(comm->scope_, machine->n_ranks(), tuning,
                           &comm->degradation_);
  comm->tuning_ = tuning;
  comm->machine_ = std::move(machine);

  try {
    comm->comp_ =
        coll::make_component(spec.component, *comm->machine_, tuning);
  } catch (const AdmissionError&) {
    arbiter_->release(comm->scope_);
    throw;
  } catch (const util::Error& e) {
    // Component setup failed past the degradation chain (e.g. injected shm
    // exhaustion below the segment floor): surface it as a named admission
    // rejection instead of a bare error.
    arbiter_->release(comm->scope_);
    throw AdmissionError(comm->scope_, "create", e.what());
  }

  // Admission plane: the single-writer verdict flag owned by communicator
  // rank 0 plus the shared member-ack counter, one padded line each.
  void* raw =
      comm->machine_->alloc(0, 2 * sizeof(util::CachePadded<mach::Flag>),
                            util::kCacheLine);
  comm->verdict_buf_ = mach::Buffer(
      *comm->machine_, raw, 2 * sizeof(util::CachePadded<mach::Flag>));
  auto* lines = new (raw) util::CachePadded<mach::Flag>[2];
  comm->verdict_ = &lines[0];
  comm->ack_ = &lines[1];
  parent_->verify_ledger().register_flag(&comm->verdict_->value,
                                         comm->scope_ + "admission/verdict",
                                         verify::WriterPolicy::kFixed);
  parent_->verify_ledger().register_flag(&comm->ack_->value,
                                         comm->scope_ + "admission/ack",
                                         verify::WriterPolicy::kShared);

  comms_.push_back(std::move(comm));
  return *comms_.back();
}

CommRegistry::~CommRegistry() {
  // Components and tenant machines die with their Communicator; give each
  // creation-time charge back so a successor registry over the same arbiter
  // starts from a clean pool.
  for (auto& c : comms_) {
    if (c != nullptr) arbiter_->release(c->scope());
  }
}

std::vector<int> CommRegistry::comm_ids_of(int parent_rank) const {
  std::vector<int> ids;
  for (const auto& c : comms_) {
    if (c->is_member(parent_rank)) ids.push_back(c->id());
  }
  return ids;
}

}  // namespace xhc::svc
