// Tenant facade: a mach::Machine view over a rank subset of a parent
// machine (DESIGN.md § Multi-tenant service).
//
// The collective components are written against Machine (topology, rank
// map, allocation, ledger) + per-rank Ctx. A TenantMachine re-exports a
// parent machine under a communicator-local rank numbering: rank r of the
// tenant is parent rank ranks[r], mapped to the same physical core, backed
// by the same allocator, cost model and — critically — the same verify
// ledger, so every flag a tenant component registers is named in the ledger
// the parent's flag hooks consult, and concurrent communicators police each
// other's single-writer discipline.
//
// TenantMachine never executes: the service drives the *parent* machine's
// run() and wraps each parent Ctx in a TenantCtx per communicator, which
// renumbers rank()/size() and forwards everything else (time, charges,
// copies, flags) to the parent context. One parent run can therefore carry
// any interleaving of collectives from many communicators at once.
#pragma once

#include <string>
#include <vector>

#include "mach/machine.h"
#include "util/check.h"

namespace xhc::svc {

class TenantMachine final : public mach::Machine {
 public:
  /// `ranks` are parent ranks (deduplicated, sorted by the constructor);
  /// `scope` names the tenant in diagnostics.
  TenantMachine(mach::Machine& parent, std::vector<int> ranks,
                std::string scope);

  const topo::Topology& topology() const noexcept override {
    return parent_->topology();
  }
  const topo::RankMap& map() const noexcept override { return map_; }

  /// Allocation under the tenant's rank numbering: owner is a communicator
  /// rank; placement and registration happen on the owning parent rank.
  void* alloc(int owner_rank, std::size_t bytes, std::size_t align = 64,
              bool zero = true) override {
    return parent_->alloc(parent_rank(owner_rank), bytes, align, zero);
  }
  void free(void* p) override { parent_->free(p); }

  /// Tenants do not execute; the service drives the parent machine's run()
  /// and hands TenantCtx views to the tenant's component. Always throws.
  mach::RunResult run(const std::function<void(mach::Ctx&)>& fn) override;

  /// The parent's ledger: tenant flags must be registered where the parent's
  /// flag hooks look them up.
  verify::Ledger& verify_ledger() noexcept override {
    return parent_->verify_ledger();
  }
  const verify::Ledger& verify_ledger() const noexcept override {
    return parent_->verify_ledger();
  }

  /// Coherence observatory rides on the parent's models.
  void set_coh_tracking(bool on) override { parent_->set_coh_tracking(on); }
  bool coh_tracking() const noexcept override {
    return parent_->coh_tracking();
  }
  bool coh_report(obs::CohReport* out) const override {
    return parent_->coh_report(out);
  }
  void publish_coh_counters(obs::Metrics& m) override {
    parent_->publish_coh_counters(m);
  }

  mach::Machine& parent() const noexcept { return *parent_; }
  const std::string& scope() const noexcept { return scope_; }
  const std::vector<int>& ranks() const noexcept { return ranks_; }

  /// Parent rank hosting communicator rank `local`.
  int parent_rank(int local) const;
  /// Communicator rank of `parent_rank`, or -1 when not a member.
  int local_rank(int parent_rank) const noexcept;

 private:
  mach::Machine* parent_;
  std::vector<int> ranks_;     ///< local rank -> parent rank, sorted
  std::vector<int> local_of_;  ///< parent rank -> local rank or -1
  std::string scope_;
  topo::RankMap map_;          ///< local rank -> the parent rank's core
};

/// Per-rank context view under a tenant's numbering. Constructed on the
/// parent rank's thread inside a parent run; never outlives the request it
/// serves.
class TenantCtx final : public mach::Ctx {
 public:
  TenantCtx(mach::Ctx& parent, const TenantMachine& tenant)
      : parent_(&parent),
        tenant_(&tenant),
        rank_(tenant.local_rank(parent.rank())) {
    XHC_REQUIRE(rank_ >= 0, "parent rank ", parent.rank(),
                " is not a member of tenant '", tenant.scope(), "'");
    // wait_spins() must stay cumulative across the whole parent run: the
    // observability layer differences it around waits on *this* context.
    wait_spins_ = parent.wait_spins();
  }

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return tenant_->n_ranks(); }
  int core() const noexcept override { return parent_->core(); }

  double now() override { return parent_->now(); }
  void charge(double seconds) override { parent_->charge(seconds); }
  void stall(double seconds) override { parent_->stall(seconds); }
  void copy(void* dst, const void* src, std::size_t n) override {
    parent_->copy(dst, src, n);
  }
  void reduce(void* dst, const void* src, std::size_t count, mach::DType dtype,
              mach::ROp op) override {
    parent_->reduce(dst, src, count, dtype, op);
  }
  void write_payload(void* dst, std::size_t n, std::uint64_t seed) override {
    parent_->write_payload(dst, n, seed);
  }

  void flag_store(mach::Flag& f, std::uint64_t v) override {
    parent_->flag_store(f, v);
  }
  std::uint64_t flag_read(const mach::Flag& f) override {
    return parent_->flag_read(f);
  }
  void flag_wait_ge(const mach::Flag& f, std::uint64_t v) override {
    parent_->flag_wait_ge(f, v);
    wait_spins_ = parent_->wait_spins();
  }
  std::uint64_t fetch_add(mach::Flag& f, std::uint64_t delta) override {
    return parent_->fetch_add(f, delta);
  }

  /// The collective algorithms synchronize exclusively through flags; a
  /// communicator-wide barrier over a rank *subset* of the parent run would
  /// deadlock against non-members, so it is forbidden outright.
  void barrier() override {
    XHC_CHECK(false, "tenant '", tenant_->scope(),
              "': Ctx::barrier is not available on a rank-subset "
              "communicator (components synchronize through flags)");
  }

  mach::Ctx& parent() const noexcept { return *parent_; }

 private:
  mach::Ctx* parent_;
  const TenantMachine* tenant_;
  int rank_;
};

}  // namespace xhc::svc
