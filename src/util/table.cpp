#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace xhc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  XHC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  XHC_REQUIRE(cells.size() == header_.size(), "row has ", cells.size(),
              " cells, header has ", header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_bytes(std::size_t bytes) {
  std::ostringstream os;
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    os << (bytes >> 20) << "M";
  } else if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    os << (bytes >> 10) << "K";
  } else {
    os << bytes;
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      } else {
        os << "  " << std::right << std::setw(static_cast<int>(width[c]))
           << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace xhc::util
