// Bulk-copy helper for the simulated data path.
//
// The sweep harness moves tens of gigabytes of payload per bench run, and
// destination buffers far exceed the last-level cache, so a plain memcpy
// pays a read-for-ownership on every destination line on top of the write
// itself. Non-temporal stores skip that extra memory traffic for bulk
// chunks; small copies keep memcpy, whose cached stores are faster when
// the destination is about to be re-read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) && defined(__SSE2__)
#include <emmintrin.h>
#define XHC_NT_COPY 1
#else
#define XHC_NT_COPY 0
#endif

namespace xhc::util {

/// Minimum size for the non-temporal path. Matches the smallest pipeline
/// chunk the collectives use (Tuning::chunk_bytes), so bulk payload chunks
/// stream while flags and headers stay on the cached path.
inline constexpr std::size_t kNtCopyThreshold = 16u * 1024;

/// memcpy with non-temporal stores for bulk payload chunks.
inline void copy_payload(void* dst, const void* src, std::size_t n) noexcept {
#if XHC_NT_COPY
  if (n >= kNtCopyThreshold) {
    auto* d = static_cast<char*>(dst);
    const auto* s = static_cast<const char*>(src);
    const auto head =
        (16 - (reinterpret_cast<std::uintptr_t>(d) & 15u)) & 15u;
    if (head != 0) {
      std::memcpy(d, s, head);
      d += head;
      s += head;
      n -= head;
    }
    while (n >= 64) {
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 16));
      const __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 32));
      const __m128i e =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 48));
      _mm_stream_si128(reinterpret_cast<__m128i*>(d), a);
      _mm_stream_si128(reinterpret_cast<__m128i*>(d + 16), b);
      _mm_stream_si128(reinterpret_cast<__m128i*>(d + 32), c);
      _mm_stream_si128(reinterpret_cast<__m128i*>(d + 48), e);
      d += 64;
      s += 64;
      n -= 64;
    }
    _mm_sfence();
    if (n != 0) std::memcpy(d, s, n);
    return;
  }
#endif
  std::memcpy(dst, src, n);
}

}  // namespace xhc::util
