#include "util/str.h"

#include <cctype>
#include <cstdlib>

namespace xhc::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::size_t> parse_size(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::size_t mult = 1;
  const char last = s.back();
  if (last == 'K' || last == 'k') {
    mult = 1024;
    s.remove_suffix(1);
  } else if (last == 'M' || last == 'm') {
    mult = 1024 * 1024;
    s.remove_suffix(1);
  } else if (last == 'G' || last == 'g') {
    mult = 1024ull * 1024 * 1024;
    s.remove_suffix(1);
  }
  if (s.empty()) return std::nullopt;
  std::size_t value = 0;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value * mult;
}

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_.emplace_back(std::string(arg), "");
    } else {
      kv_.emplace_back(std::string(arg.substr(0, eq)),
                       std::string(arg.substr(eq + 1)));
    }
  }
}

bool Args::has(std::string_view key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

std::vector<std::string> Args::get_all(std::string_view key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

std::string Args::get(std::string_view key, std::string def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return def;
}

long Args::get_long(std::string_view key, long def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key && !v.empty()) return std::strtol(v.c_str(), nullptr, 10);
  }
  return def;
}

double Args::get_double(std::string_view key, double def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key && !v.empty()) return std::strtod(v.c_str(), nullptr);
  }
  return def;
}

}  // namespace xhc::util
