#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace xhc::util {

void Stats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Stats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Stats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double q) {
  XHC_REQUIRE(!xs.empty(), "percentile of empty sample");
  XHC_REQUIRE(q >= 0.0 && q <= 1.0, "q=", q);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace xhc::util
