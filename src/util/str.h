// Small string / CLI helpers shared by benches and examples.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xhc::util {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses sizes like "4", "2K", "1M" (powers of 1024). Returns nullopt on
/// malformed input.
std::optional<std::size_t> parse_size(std::string_view s);

/// Minimal --key=value / --flag argument scanner for the bench binaries.
class Args {
 public:
  Args(int argc, char** argv);

  bool has(std::string_view key) const;
  std::string get(std::string_view key, std::string def) const;
  /// Every value given for a repeatable --key=value flag, in argv order.
  std::vector<std::string> get_all(std::string_view key) const;
  long get_long(std::string_view key, long def) const;
  double get_double(std::string_view key, double def) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace xhc::util
