// Lightweight runtime checking utilities.
//
// XHC_CHECK(cond, msg...) — always-on invariant check; throws xhc::util::Error.
// XHC_REQUIRE(cond, msg...) — precondition check on public API boundaries.
//
// Following the C++ Core Guidelines (I.6/I.8, E.12), violations of invariants
// and preconditions are reported through exceptions carrying a formatted
// description of the failing site; they are never silently ignored.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xhc::util {

/// Exception type thrown by all XHC_CHECK / XHC_REQUIRE failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);

// Concatenate a variadic message pack into a string via a stream.
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace detail

}  // namespace xhc::util

#define XHC_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::xhc::util::detail::fail("check", #cond, __FILE__, __LINE__,       \
                                ::xhc::util::detail::concat(__VA_ARGS__)); \
    }                                                                     \
  } while (0)

#define XHC_REQUIRE(cond, ...)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::xhc::util::detail::fail("require", #cond, __FILE__, __LINE__,     \
                                ::xhc::util::detail::concat(__VA_ARGS__)); \
    }                                                                     \
  } while (0)
