// Fixed-width console table printer used by the benchmark binaries to emit
// paper-style result rows (one table per paper figure/table).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xhc::util {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Cells are right-aligned except the first column, matching the layout of
/// latency tables in MPI benchmark suites.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with `fmt_double`.
  static std::string fmt_double(double v, int precision = 2);
  static std::string fmt_bytes(std::size_t bytes);

  void print(std::ostream& os) const;
  /// Comma-separated dump (machine-readable companion of print()).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xhc::util
