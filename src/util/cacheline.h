// Cache-line geometry and padding helpers.
//
// All control flags in XHC follow the single-writer / multiple-readers
// paradigm and must be laid out with explicit cache-line placement to avoid
// false sharing (paper §III-E). `CachePadded<T>` rounds a value up to one
// full line; `kCacheLine` is the line size assumed throughout (both the real
// machine and the simulator's line model use it).
#pragma once

#include <cstddef>
#include <new>

namespace xhc::util {

inline constexpr std::size_t kCacheLine = 64;

/// Wraps a value so that it occupies (at least) one whole cache line.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  CachePadded() = default;
  explicit CachePadded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  // sizeof(CachePadded<T>) is a multiple of kCacheLine because the struct's
  // alignment is kCacheLine; no explicit padding member is needed.
};

/// Identifier of the cache line containing an address (used by the
/// simulator's coherence-line model; flags that share a line share fate).
inline std::uintptr_t line_of(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) / kCacheLine;
}

}  // namespace xhc::util
