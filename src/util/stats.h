// Streaming summary statistics (Welford) used by the OSU-style harness and
// the benchmark drivers to aggregate per-iteration latencies.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace xhc::util {

/// Online mean / variance / min / max accumulator.
class Stats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile of a sample set (linear interpolation); `q` in [0, 1].
double percentile(std::vector<double> xs, double q);

}  // namespace xhc::util
