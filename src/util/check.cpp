#include "util/check.h"

namespace xhc::util::detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  std::ostringstream os;
  os << "xhc " << kind << " failed: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace xhc::util::detail
