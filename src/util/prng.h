// Deterministic pseudo-random number generation (splitmix64).
//
// Used to fill message payloads in tests and in the `_mb` microbenchmark
// variants that rewrite the buffer before every call (paper §V-A). A fixed,
// tiny generator keeps payload generation reproducible and dependency-free.
#pragma once

#include <cstdint>

namespace xhc::util {

/// splitmix64 — a high-quality 64-bit mixer; passes BigCrush as a stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) noexcept { return next() % n; }

 private:
  std::uint64_t state_;
};

/// Fills `bytes` of memory with a deterministic pattern derived from `seed`.
inline void fill_pattern(void* dst, std::size_t bytes,
                         std::uint64_t seed) noexcept {
  SplitMix64 rng(seed);
  auto* p = static_cast<unsigned char*>(dst);
  std::size_t i = 0;
  while (i + 8 <= bytes) {
    const std::uint64_t v = rng.next();
    for (int b = 0; b < 8; ++b) p[i + static_cast<std::size_t>(b)] =
        static_cast<unsigned char>(v >> (8 * b));
    i += 8;
  }
  if (i < bytes) {
    const std::uint64_t v = rng.next();
    for (int b = 0; i < bytes; ++i, ++b) {
      p[i] = static_cast<unsigned char>(v >> (8 * b));
    }
  }
}

}  // namespace xhc::util
