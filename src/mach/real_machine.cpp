#include "mach/real_machine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "obs/timeseries.h"
#include "topo/presets.h"
#include "util/cacheline.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc::mach {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Backoff tiers for watchdogged waits: pure pause while the wait is likely
// short, then yield (the host is oversubscribed — many rank threads per
// hardware core — so writers must not be starved), then sleep once the wait
// is clearly long. Deadline/abort checks piggyback on the tier boundaries.
constexpr std::uint64_t kSpinIters = 64;
constexpr std::uint64_t kYieldIters = 4096;
constexpr std::chrono::microseconds kSleepQuantum{50};
constexpr std::uint64_t kCheckMask = 63;  // abort/deadline check cadence

// Sentinel wait channel for barriers (any stable non-flag address works).
const int kBarrierChanToken = 0;

/// Per-rank published wait state, read by whichever rank times out first to
/// build the all-ranks stall dump.
struct alignas(util::kCacheLine) WaitSlot {
  std::atomic<const void*> chan{nullptr};  ///< flag address / barrier token
  std::atomic<std::uint64_t> need{0};
};

struct WaitShared {
  explicit WaitShared(int n) : slots(static_cast<std::size_t>(n)) {}
  std::atomic<int> abort_rank{-1};  ///< first rank whose run failed
  std::vector<WaitSlot> slots;
};

/// Sense-reversing central barrier usable by oversubscribed threads. Split
/// into arrive / released so the caller owns the wait loop (watchdog).
class CentralBarrier {
 public:
  static constexpr std::uint64_t kReleased = ~std::uint64_t{0};

  explicit CentralBarrier(int n) : n_(n) {}

  /// Returns kReleased when this arrival released the barrier, else the
  /// generation to poll with released().
  std::uint64_t arrive() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return kReleased;
    }
    return gen;
  }

  bool released(std::uint64_t gen) const {
    return generation_.load(std::memory_order_acquire) != gen;
  }

 private:
  const int n_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace

class RealMachine::RealCtx final : public Ctx {
 public:
  RealCtx(int rank, int size, int core, Clock::time_point t0,
          CentralBarrier* barrier, verify::Ledger* ledger, WaitShared* wait,
          double wait_timeout, obs::HistSet* wait_hist,
          obs::TimeSeries* wait_series, int wait_series_id)
      : rank_(rank),
        size_(size),
        core_(core),
        t0_(t0),
        barrier_(barrier),
        ledger_(ledger),
        wait_(wait),
        wait_timeout_(wait_timeout),
        wait_hist_(wait_hist),
        wait_series_(wait_series),
        wait_series_id_(wait_series_id) {}

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return size_; }
  int core() const noexcept override { return core_; }

  double now() override { return seconds_since(t0_); }

  void charge(double) override {
    // Modeled costs do not apply to wall-clock execution.
  }

  void stall(double seconds) override {
    // Injected straggler latency must be real here: sleep, so peers
    // observably wait on this rank.
    if (seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }

  void copy(void* dst, const void* src, std::size_t n) override {
    std::memcpy(dst, src, n);
  }

  void reduce(void* dst, const void* src, std::size_t count, DType dtype,
              ROp op) override {
    reduce_apply(dst, src, count, dtype, op);
  }

  void write_payload(void* dst, std::size_t n, std::uint64_t seed) override {
    util::fill_pattern(dst, n, seed);
  }

  void flag_store(Flag& f, std::uint64_t v) override {
#if XHC_VERIFY_ENABLED
    // Checked before the store so a reader can never see a value whose
    // legality the ledger has not yet judged.
    ledger_->on_store(&f, rank_, v);
#endif
    f.v.store(v, std::memory_order_release);
  }

  std::uint64_t flag_read(const Flag& f) override {
    return f.v.load(std::memory_order_acquire);
  }

  void flag_wait_ge(const Flag& f, std::uint64_t v) override {
    if (f.v.load(std::memory_order_acquire) >= v) return;
    // Blocking path: when histograms or the windowed wait series are
    // attached, the wall-clock blocked duration lands in the per-rank
    // kFlagWait histogram / the plane's wait series.
    const bool timed = wait_hist_ != nullptr || wait_series_ != nullptr;
    const Clock::time_point wait_t0 =
        timed ? Clock::now() : Clock::time_point{};
    WaitSlot& slot = wait_->slots[static_cast<std::size_t>(rank_)];
    slot.need.store(v, std::memory_order_relaxed);
    slot.chan.store(&f, std::memory_order_release);
    const Clock::time_point deadline = wait_deadline();
    std::uint64_t iter = 0;
    while (f.v.load(std::memory_order_acquire) < v) {
      ++wait_spins_;
      ++iter;
      if (iter <= kSpinIters) {
        cpu_relax();
      } else if (iter <= kYieldIters) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kSleepQuantum);
      }
      if ((iter & kCheckMask) == 0) check_watchdog(&f, v, deadline);
    }
    slot.chan.store(nullptr, std::memory_order_release);
    if (wait_hist_ != nullptr) {
      wait_hist_->record(rank_, obs::HistKind::kFlagWait,
                         seconds_since(wait_t0));
    }
    if (wait_series_ != nullptr) {
      wait_series_->record(rank_, wait_series_id_, seconds_since(t0_),
                           seconds_since(wait_t0));
    }
  }

  std::uint64_t fetch_add(Flag& f, std::uint64_t delta) override {
    const std::uint64_t prev = f.v.fetch_add(delta, std::memory_order_acq_rel);
#if XHC_VERIFY_ENABLED
    ledger_->on_rmw(&f, rank_, prev + delta);
#endif
    return prev;
  }

  void barrier() override {
    const std::uint64_t gen = barrier_->arrive();
    if (gen == CentralBarrier::kReleased) return;
    WaitSlot& slot = wait_->slots[static_cast<std::size_t>(rank_)];
    slot.need.store(0, std::memory_order_relaxed);
    slot.chan.store(&kBarrierChanToken, std::memory_order_release);
    const Clock::time_point deadline = wait_deadline();
    std::uint64_t iter = 0;
    while (!barrier_->released(gen)) {
      ++iter;
      if (iter <= kYieldIters) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kSleepQuantum);
      }
      if ((iter & kCheckMask) == 0) check_watchdog(nullptr, 0, deadline);
    }
    slot.chan.store(nullptr, std::memory_order_release);
  }

 private:
  Clock::time_point wait_deadline() const {
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(wait_timeout_));
  }

  std::string chan_desc(const void* chan, std::uint64_t need) const {
    if (chan == &kBarrierChanToken) return "barrier";
    std::string name = ledger_->flag_name(chan);
    if (name.empty()) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%p", chan);
      name = buf;
    } else {
      name = "'" + name + "'";
    }
    return "flag " + name + " >= " + std::to_string(need);
  }

  /// Throws when a peer already failed or when this rank's own deadline
  /// passed. The dump mirrors the sim scheduler's deadlock report.
  void check_watchdog(const Flag* f, std::uint64_t need,
                      Clock::time_point deadline) {
    const int aborter = wait_->abort_rank.load(std::memory_order_acquire);
    if (aborter >= 0 && aborter != rank_) {
      throw util::Error("rank " + std::to_string(rank_) +
                        " wait aborted after failure on rank " +
                        std::to_string(aborter));
    }
    if (Clock::now() < deadline) return;
    int expected = -1;
    wait_->abort_rank.compare_exchange_strong(expected, rank_,
                                              std::memory_order_acq_rel);
    std::string msg = "watchdog: rank " + std::to_string(rank_) +
                      " stalled > " + std::to_string(wait_timeout_) +
                      "s waiting " +
                      (f != nullptr ? chan_desc(f, need) : "barrier");
    if (f != nullptr) {
      const std::string snap = ledger_->flag_snapshot(f);
      if (!snap.empty()) msg += " [ledger: " + snap + "]";
    }
    msg += "; rank states: [";
    for (int r = 0; r < size_; ++r) {
      const WaitSlot& s = wait_->slots[static_cast<std::size_t>(r)];
      const void* chan = s.chan.load(std::memory_order_acquire);
      msg += std::to_string(r) + ":";
      msg += chan == nullptr
                 ? "running"
                 : "blocked@" +
                       chan_desc(chan, s.need.load(std::memory_order_relaxed));
      if (r + 1 < size_) msg += " ";
    }
    msg += "]";
    throw util::Error(msg);
  }

  const int rank_;
  const int size_;
  const int core_;
  const Clock::time_point t0_;
  CentralBarrier* const barrier_;
  verify::Ledger* const ledger_;
  WaitShared* const wait_;
  const double wait_timeout_;
  obs::HistSet* const wait_hist_;
  obs::TimeSeries* const wait_series_;
  const int wait_series_id_;
};

RealMachine::RealMachine(topo::Topology topo, int n_ranks,
                         topo::MapPolicy policy)
    : topo_(std::move(topo)), map_(topo_, n_ranks, policy), wait_timeout_(60.0) {
  if (const char* env = std::getenv("XHC_WAIT_TIMEOUT"); env != nullptr) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0' && v > 0.0) wait_timeout_ = v;
  }
}

RealMachine::~RealMachine() = default;

void* RealMachine::alloc(int owner_rank, std::size_t bytes, std::size_t align,
                         bool zero) {
  XHC_REQUIRE(owner_rank >= 0 && owner_rank < n_ranks(), "owner rank ",
              owner_rank, " out of range");
  if (align < 64) align = 64;
  const std::size_t rounded = (bytes + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  XHC_CHECK(p != nullptr, "allocation of ", bytes, " bytes failed");
  if (zero) std::memset(p, 0, rounded ? rounded : align);
  registry_.insert(p, rounded ? rounded : align, owner_rank);
  return p;
}

void RealMachine::free(void* p) {
  if (p == nullptr) return;
  if (const auto* block = registry_.find(p); block != nullptr) {
    // A reused address must start with a clean ledger record.
    verify_ledger().forget_range(block->base, block->bytes);
  }
  registry_.erase(p);
  std::free(p);
}

RunResult RealMachine::run(const std::function<void(Ctx&)>& fn) {
  const int n = n_ranks();
  CentralBarrier barrier(n);
  WaitShared wait(n);
  RunResult result;
  result.rank_time.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      RealCtx ctx(r, n, map_.core_of(r), t0, &barrier, &verify_ledger(), &wait,
                  wait_timeout_, wait_hist(), wait_series(), wait_series_id());
      try {
        fn(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Unblock peers stuck in flag waits / barriers: they observe the
        // abort at their next watchdog check instead of spinning to the
        // full timeout.
        int expected = -1;
        wait.abort_rank.compare_exchange_strong(expected, r,
                                                std::memory_order_acq_rel);
      }
      result.rank_time[static_cast<std::size_t>(r)] = ctx.now();
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root-cause error: the rank that failed first aborted the
  // others, whose "aborted after failure on rank X" exceptions are noise.
  if (const int aborter = wait.abort_rank.load(); aborter >= 0) {
    if (auto& e = errors[static_cast<std::size_t>(aborter)]; e) {
      std::rethrow_exception(e);
    }
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (const double t : result.rank_time) {
    result.max_time = std::max(result.max_time, t);
  }
  return result;
}

std::unique_ptr<RealMachine> make_real_machine(int n_ranks) {
  return std::make_unique<RealMachine>(topo::flat(n_ranks), n_ranks);
}

}  // namespace xhc::mach
