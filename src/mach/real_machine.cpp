#include "mach/real_machine.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include "topo/presets.h"
#include "util/check.h"
#include "util/prng.h"

namespace xhc::mach {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Sense-reversing central barrier usable by oversubscribed threads.
class CentralBarrier {
 public:
  explicit CentralBarrier(int n) : n_(n) {}

  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const int n_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace

class RealMachine::RealCtx final : public Ctx {
 public:
  RealCtx(int rank, int size, int core, Clock::time_point t0,
          CentralBarrier* barrier, verify::Ledger* ledger)
      : rank_(rank),
        size_(size),
        core_(core),
        t0_(t0),
        barrier_(barrier),
        ledger_(ledger) {
    (void)ledger_;  // referenced only in XHC_VERIFY_ENABLED builds
  }

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return size_; }
  int core() const noexcept override { return core_; }

  double now() override { return seconds_since(t0_); }

  void charge(double) override {
    // Modeled costs do not apply to wall-clock execution.
  }

  void copy(void* dst, const void* src, std::size_t n) override {
    std::memcpy(dst, src, n);
  }

  void reduce(void* dst, const void* src, std::size_t count, DType dtype,
              ROp op) override {
    reduce_apply(dst, src, count, dtype, op);
  }

  void write_payload(void* dst, std::size_t n, std::uint64_t seed) override {
    util::fill_pattern(dst, n, seed);
  }

  void flag_store(Flag& f, std::uint64_t v) override {
#if XHC_VERIFY_ENABLED
    // Checked before the store so a reader can never see a value whose
    // legality the ledger has not yet judged.
    ledger_->on_store(&f, rank_, v);
#endif
    f.v.store(v, std::memory_order_release);
  }

  std::uint64_t flag_read(const Flag& f) override {
    return f.v.load(std::memory_order_acquire);
  }

  void flag_wait_ge(const Flag& f, std::uint64_t v) override {
    // The host is oversubscribed (many rank threads per hardware core), so
    // the spin must yield or writers would be starved.
    while (f.v.load(std::memory_order_acquire) < v) {
      ++wait_spins_;
      std::this_thread::yield();
    }
  }

  std::uint64_t fetch_add(Flag& f, std::uint64_t delta) override {
    const std::uint64_t prev = f.v.fetch_add(delta, std::memory_order_acq_rel);
#if XHC_VERIFY_ENABLED
    ledger_->on_rmw(&f, rank_, prev + delta);
#endif
    return prev;
  }

  void barrier() override { barrier_->arrive_and_wait(); }

 private:
  const int rank_;
  const int size_;
  const int core_;
  const Clock::time_point t0_;
  CentralBarrier* const barrier_;
  verify::Ledger* const ledger_;
};

RealMachine::RealMachine(topo::Topology topo, int n_ranks,
                         topo::MapPolicy policy)
    : topo_(std::move(topo)), map_(topo_, n_ranks, policy) {}

RealMachine::~RealMachine() = default;

void* RealMachine::alloc(int owner_rank, std::size_t bytes, std::size_t align,
                         bool zero) {
  XHC_REQUIRE(owner_rank >= 0 && owner_rank < n_ranks(), "owner rank ",
              owner_rank, " out of range");
  if (align < 64) align = 64;
  const std::size_t rounded = (bytes + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  XHC_CHECK(p != nullptr, "allocation of ", bytes, " bytes failed");
  if (zero) std::memset(p, 0, rounded ? rounded : align);
  registry_.insert(p, rounded ? rounded : align, owner_rank);
  return p;
}

void RealMachine::free(void* p) {
  if (p == nullptr) return;
  if (const auto* block = registry_.find(p); block != nullptr) {
    // A reused address must start with a clean ledger record.
    verify_ledger().forget_range(block->base, block->bytes);
  }
  registry_.erase(p);
  std::free(p);
}

RunResult RealMachine::run(const std::function<void(Ctx&)>& fn) {
  const int n = n_ranks();
  CentralBarrier barrier(n);
  RunResult result;
  result.rank_time.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      RealCtx ctx(r, n, map_.core_of(r), t0, &barrier, &verify_ledger());
      try {
        fn(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      result.rank_time[static_cast<std::size_t>(r)] = ctx.now();
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (const double t : result.rank_time) {
    result.max_time = std::max(result.max_time, t);
  }
  return result;
}

std::unique_ptr<RealMachine> make_real_machine(int n_ranks) {
  return std::make_unique<RealMachine>(topo::flat(n_ranks), n_ranks);
}

}  // namespace xhc::mach
