// Typed reduction kernels shared by both machines.
//
// XPMEM lets a reducer read peer source buffers directly, so reductions are
// computed in place on the destination: dst[i] = op(dst[i], src[i]).
#pragma once

#include <cstddef>
#include <cstdint>

namespace xhc::mach {

/// Element datatype of a collective payload.
enum class DType : std::uint8_t { kU8, kI32, kI64, kF32, kF64 };

/// Reduction operator.
enum class ROp : std::uint8_t { kSum, kProd, kMin, kMax };

constexpr std::size_t dtype_size(DType t) noexcept {
  switch (t) {
    case DType::kU8:
      return 1;
    case DType::kI32:
    case DType::kF32:
      return 4;
    case DType::kI64:
    case DType::kF64:
      return 8;
  }
  return 1;
}

const char* to_string(DType t) noexcept;
const char* to_string(ROp op) noexcept;

/// dst[i] = op(dst[i], src[i]) for `count` elements. Buffers must not
/// overlap. Throws util::Error on an unknown dtype/op combination.
/// Unrolled / vectorization-friendly; results are bitwise identical to
/// `reduce_apply_scalar` for every op x dtype pair.
void reduce_apply(void* dst, const void* src, std::size_t count, DType dtype,
                  ROp op);

/// Plain-loop reference implementation of the same contract, kept as the
/// bitwise ground truth the fast kernels are tested against.
void reduce_apply_scalar(void* dst, const void* src, std::size_t count,
                         DType dtype, ROp op);

}  // namespace xhc::mach
