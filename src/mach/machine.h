// Execution machine abstraction.
//
// Every collective algorithm in this repository is written once, against the
// pure-abstract per-rank context `Ctx`. Two machines implement it:
//
//   * RealMachine — one host thread per rank sharing the address space
//     (the threads-as-processes substitution for XPMEM-attached MPI ranks);
//     operations execute natively, `now()` is wall-clock time.
//   * SimMachine  — the same thread-per-rank execution, but under a
//     deterministic virtual-time scheduler with a node cost model
//     (topology-priced copies, cache-line service, congestion). Data
//     operations still move real bytes, so correctness is checked in
//     simulation too.
//
// See DESIGN.md §3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mach/flag.h"
#include "mach/reduce_kernels.h"
#include "obs/hist.h"
#include "topo/mapping.h"
#include "topo/topology.h"
#include "verify/verify.h"

namespace xhc::obs {
struct CohReport;  // obs/coh.h
class Metrics;     // obs/metrics.h
class TimeSeries;  // obs/timeseries.h
}  // namespace xhc::obs

namespace xhc::mach {

/// Per-rank execution context. Passed by reference into the function a
/// Machine runs on every rank; never retained beyond the run.
class Ctx {
 public:
  virtual ~Ctx() = default;

  virtual int rank() const noexcept = 0;
  virtual int size() const noexcept = 0;
  /// Physical core hosting this rank.
  virtual int core() const noexcept = 0;

  /// Seconds since the start of the current run (virtual or wall time).
  virtual double now() = 0;

  /// Charges modeled overhead (syscalls, library constants, application
  /// compute). No-op on the real machine.
  virtual void charge(double seconds) = 0;

  /// Makes this rank actually lose `seconds` relative to its peers (fault
  /// injection: stragglers). On the simulator this is virtual-time advance —
  /// identical to charge() and fully deterministic; the real machine
  /// overrides it to sleep, so the loss is observable in wall time.
  virtual void stall(double seconds) { charge(seconds); }

  /// Copies `n` bytes. Both machines move the bytes; the simulator also
  /// prices the transfer from the buffers' homes, cache residency and
  /// current congestion.
  virtual void copy(void* dst, const void* src, std::size_t n) = 0;

  /// dst[i] = op(dst[i], src[i]); priced like a read of src plus a
  /// read-modify-write of dst.
  virtual void reduce(void* dst, const void* src, std::size_t count,
                      DType dtype, ROp op) = 0;

  /// Fills `dst` with a deterministic pattern and marks the buffer as newly
  /// produced (invalidates cached copies in the simulator). The `_mb`
  /// microbenchmark variants call this before every iteration (paper §V-A).
  virtual void write_payload(void* dst, std::size_t n, std::uint64_t seed) = 0;

  // --- single-writer flags -------------------------------------------------
  virtual void flag_store(Flag& f, std::uint64_t v) = 0;
  virtual std::uint64_t flag_read(const Flag& f) = 0;
  /// Blocks until `f >= v`.
  virtual void flag_wait_ge(const Flag& f, std::uint64_t v) = 0;
  /// Atomic RMW — used only by atomics-based baselines (Fig. 4).
  virtual std::uint64_t fetch_add(Flag& f, std::uint64_t delta) = 0;

  /// Full-communicator barrier (harness use only; the collective algorithms
  /// themselves synchronize exclusively through flags).
  virtual void barrier() = 0;

  /// Cumulative flag-wait progress cost since the start of the run: spin ×
  /// yield iterations on RealMachine, blocking suspensions on SimMachine.
  /// The observability layer differences this around waits; only this
  /// rank's thread may read it mid-run.
  std::uint64_t wait_spins() const noexcept { return wait_spins_; }

  Ctx() = default;
  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

 protected:
  std::uint64_t wait_spins_ = 0;  ///< bumped by machine wait loops
};

/// Result of one parallel region.
struct RunResult {
  std::vector<double> rank_time;  ///< per-rank elapsed seconds
  double max_time = 0.0;          ///< completion time of the slowest rank
};

/// Registry of shared allocations. Both machines use it to answer "which
/// rank owns the buffer containing this address" (the simulator derives the
/// buffer's NUMA home and cache residency from it).
class AllocRegistry {
 public:
  struct Block {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    int owner_rank = 0;
    std::uint64_t id = 0;  ///< dense id, stable for the block's lifetime
  };

  /// Registers [p, p+bytes). Returns the block id.
  std::uint64_t insert(void* p, std::size_t bytes, int owner_rank);
  void erase(void* p);
  /// Block containing `p`, or nullptr.
  const Block* find(const void* p) const;

 private:
  std::map<const void*, Block> blocks_;  // keyed by base address
  std::uint64_t next_id_ = 1;
  mutable std::mutex mu_;
};

/// A machine executes parallel regions over a fixed rank map.
class Machine {
 public:
  virtual ~Machine() = default;

  virtual const topo::Topology& topology() const noexcept = 0;
  virtual const topo::RankMap& map() const noexcept = 0;
  int n_ranks() const noexcept { return map().n_ranks(); }

  /// Allocates `bytes` owned by `owner_rank` (first-touch on that rank's
  /// NUMA node). Alignment is at least one cache line. Valid across runs.
  /// `zero=false` skips the deterministic zero-fill — only for buffers the
  /// caller provably writes in full before any read (e.g. bcast payload
  /// destinations); the sweep harness uses it to avoid touching gigabytes
  /// of pages that are about to be overwritten anyway.
  virtual void* alloc(int owner_rank, std::size_t bytes,
                      std::size_t align = 64, bool zero = true) = 0;
  virtual void free(void* p) = 0;

  /// Runs `fn(ctx)` once per rank, concurrently, and joins.
  virtual RunResult run(const std::function<void(Ctx&)>& fn) = 0;

  /// Protocol-conformance ledger over this machine's flags (single-writer /
  /// monotone / publish-order discipline, see src/verify/verify.h). Always
  /// present so components can register flags and tests can use the direct
  /// API in any build; the per-operation hooks that feed it from flag_store
  /// / flag_read are compiled in only under XHC_VERIFY_ENABLED. Virtual so
  /// facade machines over a rank subset (svc::TenantMachine) can forward to
  /// the parent's ledger — flags allocated through the facade must be named
  /// in the ledger the parent's flag hooks actually consult.
  virtual verify::Ledger& verify_ledger() noexcept { return verify_ledger_; }
  virtual const verify::Ledger& verify_ledger() const noexcept {
    return verify_ledger_;
  }

  /// Attaches per-rank latency histograms for blocking flag waits: both
  /// machines' flag_wait_ge slow paths record the blocked duration into
  /// HistKind::kFlagWait (virtual time on the simulator — deterministic and
  /// charge-free; wall time on the real machine). Null (the default)
  /// disables recording; the fast path then pays one pointer test. Set only
  /// outside parallel regions; the set must outlive the runs using it.
  void set_wait_hist(obs::HistSet* h) noexcept { wait_hist_ = h; }
  obs::HistSet* wait_hist() const noexcept { return wait_hist_; }

  /// Attaches a windowed wait-time series (obs::TimeSeries sized to this
  /// machine's ranks): both machines' flag_wait_ge slow paths additionally
  /// record each blocked duration into series `sid` at the resume
  /// timestamp, tagging *when* synchronization stalls happened — the core
  /// wait-site feed of the service telemetry plane. Same contract as
  /// set_wait_hist: observational only, set outside parallel regions, the
  /// series must outlive the runs using it; null disables.
  void set_wait_series(obs::TimeSeries* s, int sid) noexcept {
    wait_series_ = s;
    wait_series_id_ = sid;
  }
  obs::TimeSeries* wait_series() const noexcept { return wait_series_; }
  int wait_series_id() const noexcept { return wait_series_id_; }

  /// Modeled coherence observatory (overridden by SimMachine; the defaults
  /// keep consumers free of machine downcasts — RealMachine has no modeled
  /// counters). Tracking toggles accounting only, never virtual-time costs.
  virtual void set_coh_tracking(bool /*on*/) {}
  virtual bool coh_tracking() const noexcept { return false; }
  /// Fills `out` with the name-attributed per-line report; returns false
  /// when this machine models no coherence events (report untouched).
  virtual bool coh_report(obs::CohReport* /*out*/) const { return false; }
  /// Adds the per-rank coh_* counter deltas accumulated since the previous
  /// publish into `m`. Delta semantics make repeated publishes (one per
  /// sweep) and obs::Metrics::reset_counters compose without double
  /// counting.
  virtual void publish_coh_counters(obs::Metrics& /*m*/) {}

  Machine() = default;
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

 private:
  verify::Ledger verify_ledger_;
  obs::HistSet* wait_hist_ = nullptr;
  obs::TimeSeries* wait_series_ = nullptr;
  int wait_series_id_ = 0;
};

/// Typed convenience wrapper around Machine::alloc.
template <typename T>
T* alloc_array(Machine& m, int owner_rank, std::size_t count) {
  return static_cast<T*>(
      m.alloc(owner_rank, count * sizeof(T), alignof(T) > 64 ? alignof(T) : 64));
}

/// RAII owner for a machine allocation (C++ Core Guidelines R.1).
class Buffer {
 public:
  Buffer() = default;
  Buffer(Machine& m, int owner_rank, std::size_t bytes, bool zero = true)
      : machine_(&m), p_(m.alloc(owner_rank, bytes, 64, zero)), bytes_(bytes) {}
  /// Adopts an allocation already obtained from `m` (e.g. through
  /// fault::alloc_with_retry); the Buffer frees it on destruction.
  Buffer(Machine& m, void* adopted, std::size_t bytes) noexcept
      : machine_(&m), p_(adopted), bytes_(bytes) {}
  ~Buffer() { reset(); }

  Buffer(Buffer&& o) noexcept { *this = std::move(o); }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      reset();
      machine_ = o.machine_;
      p_ = o.p_;
      bytes_ = o.bytes_;
      o.machine_ = nullptr;
      o.p_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* get() const noexcept { return p_; }
  std::byte* bytes() const noexcept { return static_cast<std::byte*>(p_); }
  std::size_t size() const noexcept { return bytes_; }

  void reset() noexcept {
    if (machine_ != nullptr && p_ != nullptr) machine_->free(p_);
    machine_ = nullptr;
    p_ = nullptr;
    bytes_ = 0;
  }

 private:
  Machine* machine_ = nullptr;
  void* p_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace xhc::mach
