// RealMachine — native thread-per-rank execution.
//
// Ranks are host threads sharing one address space, which gives peer memory
// exactly the load/store accessibility XPMEM gives MPI processes; all data
// operations execute natively and `now()` is wall-clock time. This machine
// backs the functional test suite and the host-native benchmarks.
//
// Flag waits and barriers run under a watchdog: a rank stalled longer than
// the wait timeout throws util::Error carrying a dump of every rank's wait
// state (mirroring the simulator's deadlock report) plus the verifier's
// record of the blocked flag — so a dropped publication surfaces as a
// diagnostic naming rank and flag, never as a hang. The first failing rank
// also aborts its peers' waits, so one exception ends the whole run.
#pragma once

#include <memory>

#include "mach/machine.h"

namespace xhc::mach {

class RealMachine final : public Machine {
 public:
  /// Hosts `n_ranks` ranks mapped onto `topo` (mapping affects hierarchy
  /// construction only; threads are not pinned — the host is typically far
  /// smaller than the modeled node).
  RealMachine(topo::Topology topo, int n_ranks,
              topo::MapPolicy policy = topo::MapPolicy::kCore);
  ~RealMachine() override;

  const topo::Topology& topology() const noexcept override { return topo_; }
  const topo::RankMap& map() const noexcept override { return map_; }

  void* alloc(int owner_rank, std::size_t bytes, std::size_t align = 64,
              bool zero = true) override;
  void free(void* p) override;

  RunResult run(const std::function<void(Ctx&)>& fn) override;

  /// Watchdog deadline for flag waits and barriers, in seconds. Defaults to
  /// 60 s (override at construction with the XHC_WAIT_TIMEOUT environment
  /// variable); chaos tests tighten it to fail fast.
  void set_wait_timeout(double seconds) noexcept { wait_timeout_ = seconds; }
  double wait_timeout() const noexcept { return wait_timeout_; }

 private:
  class RealCtx;

  topo::Topology topo_;
  topo::RankMap map_;
  AllocRegistry registry_;
  double wait_timeout_;
};

/// Convenience factory: flat `n`-core topology, one rank per core.
std::unique_ptr<RealMachine> make_real_machine(int n_ranks);

}  // namespace xhc::mach
