#include "mach/machine.h"

namespace xhc::mach {

std::uint64_t AllocRegistry::insert(void* p, std::size_t bytes,
                                    int owner_rank) {
  std::lock_guard<std::mutex> lock(mu_);
  Block b;
  b.base = static_cast<std::byte*>(p);
  b.bytes = bytes;
  b.owner_rank = owner_rank;
  b.id = next_id_++;
  blocks_[p] = b;
  return b.id;
}

void AllocRegistry::erase(void* p) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.erase(p);
}

const AllocRegistry::Block* AllocRegistry::find(const void* p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.upper_bound(p);
  if (it == blocks_.begin()) return nullptr;
  --it;
  const Block& b = it->second;
  const auto* addr = static_cast<const std::byte*>(p);
  if (addr >= b.base && addr < b.base + b.bytes) return &b;
  return nullptr;
}

}  // namespace xhc::mach
