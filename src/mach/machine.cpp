#include "mach/machine.h"

#include <type_traits>

#include "util/check.h"

namespace xhc::mach {

const char* to_string(DType t) noexcept {
  switch (t) {
    case DType::kU8:
      return "u8";
    case DType::kI32:
      return "i32";
    case DType::kI64:
      return "i64";
    case DType::kF32:
      return "f32";
    case DType::kF64:
      return "f64";
  }
  return "?";
}

const char* to_string(ROp op) noexcept {
  switch (op) {
    case ROp::kSum:
      return "sum";
    case ROp::kProd:
      return "prod";
    case ROp::kMin:
      return "min";
    case ROp::kMax:
      return "max";
  }
  return "?";
}

namespace {

// Integer sum/prod wrap around (MPI semantics); doing the arithmetic in the
// unsigned domain keeps that well-defined where the signed form is UB.
template <typename T>
T wrap_add(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  } else {
    return a + b;
  }
}

template <typename T>
T wrap_mul(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  } else {
    return a * b;
  }
}

template <typename T>
void reduce_typed(T* dst, const T* src, std::size_t count, ROp op) {
  switch (op) {
    case ROp::kSum:
      for (std::size_t i = 0; i < count; ++i) dst[i] = wrap_add(dst[i], src[i]);
      return;
    case ROp::kProd:
      for (std::size_t i = 0; i < count; ++i) dst[i] = wrap_mul(dst[i], src[i]);
      return;
    case ROp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        dst[i] = src[i] < dst[i] ? src[i] : dst[i];
      return;
    case ROp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        dst[i] = src[i] > dst[i] ? src[i] : dst[i];
      return;
  }
  XHC_CHECK(false, "unknown reduction op");
}

}  // namespace

void reduce_apply(void* dst, const void* src, std::size_t count, DType dtype,
                  ROp op) {
  switch (dtype) {
    case DType::kU8:
      reduce_typed(static_cast<std::uint8_t*>(dst),
                   static_cast<const std::uint8_t*>(src), count, op);
      return;
    case DType::kI32:
      reduce_typed(static_cast<std::int32_t*>(dst),
                   static_cast<const std::int32_t*>(src), count, op);
      return;
    case DType::kI64:
      reduce_typed(static_cast<std::int64_t*>(dst),
                   static_cast<const std::int64_t*>(src), count, op);
      return;
    case DType::kF32:
      reduce_typed(static_cast<float*>(dst), static_cast<const float*>(src),
                   count, op);
      return;
    case DType::kF64:
      reduce_typed(static_cast<double*>(dst), static_cast<const double*>(src),
                   count, op);
      return;
  }
  XHC_CHECK(false, "unknown dtype");
}

std::uint64_t AllocRegistry::insert(void* p, std::size_t bytes,
                                    int owner_rank) {
  std::lock_guard<std::mutex> lock(mu_);
  Block b;
  b.base = static_cast<std::byte*>(p);
  b.bytes = bytes;
  b.owner_rank = owner_rank;
  b.id = next_id_++;
  blocks_[p] = b;
  return b.id;
}

void AllocRegistry::erase(void* p) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.erase(p);
}

const AllocRegistry::Block* AllocRegistry::find(const void* p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.upper_bound(p);
  if (it == blocks_.begin()) return nullptr;
  --it;
  const Block& b = it->second;
  const auto* addr = static_cast<const std::byte*>(p);
  if (addr >= b.base && addr < b.base + b.bytes) return &b;
  return nullptr;
}

}  // namespace xhc::mach
