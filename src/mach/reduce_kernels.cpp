#include "mach/reduce_kernels.h"

#include <type_traits>

#include "util/check.h"

namespace xhc::mach {

const char* to_string(DType t) noexcept {
  switch (t) {
    case DType::kU8:
      return "u8";
    case DType::kI32:
      return "i32";
    case DType::kI64:
      return "i64";
    case DType::kF32:
      return "f32";
    case DType::kF64:
      return "f64";
  }
  return "?";
}

const char* to_string(ROp op) noexcept {
  switch (op) {
    case ROp::kSum:
      return "sum";
    case ROp::kProd:
      return "prod";
    case ROp::kMin:
      return "min";
    case ROp::kMax:
      return "max";
  }
  return "?";
}

namespace {

// Integer sum/prod wrap around (MPI semantics); doing the arithmetic in the
// unsigned domain keeps that well-defined where the signed form is UB.
template <typename T>
T wrap_add(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  } else {
    return a + b;
  }
}

template <typename T>
T wrap_mul(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  } else {
    return a * b;
  }
}

template <typename T>
void reduce_typed_scalar(T* dst, const T* src, std::size_t count, ROp op) {
  switch (op) {
    case ROp::kSum:
      for (std::size_t i = 0; i < count; ++i) dst[i] = wrap_add(dst[i], src[i]);
      return;
    case ROp::kProd:
      for (std::size_t i = 0; i < count; ++i) dst[i] = wrap_mul(dst[i], src[i]);
      return;
    case ROp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        dst[i] = src[i] < dst[i] ? src[i] : dst[i];
      return;
    case ROp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        dst[i] = src[i] > dst[i] ? src[i] : dst[i];
      return;
  }
  XHC_CHECK(false, "unknown reduction op");
}

// Fast elementwise map: the shard-reduce inner loop of the large-message
// path spends most of its host time here. `__restrict` plus the fixed-width
// 8-element body lets the compiler keep the loop free of aliasing checks and
// vectorize it. The per-element expressions are the exact ones the scalar
// reference uses, so results are bitwise identical for every op x dtype —
// including NaN propagation (min/max keep dst on unordered compares) and
// integer wraparound (unsigned-domain arithmetic).
template <typename T, typename F>
void map2(T* __restrict dst, const T* __restrict src, std::size_t count, F f) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    dst[i + 0] = f(dst[i + 0], src[i + 0]);
    dst[i + 1] = f(dst[i + 1], src[i + 1]);
    dst[i + 2] = f(dst[i + 2], src[i + 2]);
    dst[i + 3] = f(dst[i + 3], src[i + 3]);
    dst[i + 4] = f(dst[i + 4], src[i + 4]);
    dst[i + 5] = f(dst[i + 5], src[i + 5]);
    dst[i + 6] = f(dst[i + 6], src[i + 6]);
    dst[i + 7] = f(dst[i + 7], src[i + 7]);
  }
  for (; i < count; ++i) dst[i] = f(dst[i], src[i]);
}

template <typename T>
void reduce_typed(T* dst, const T* src, std::size_t count, ROp op) {
  switch (op) {
    case ROp::kSum:
      map2(dst, src, count, [](T a, T b) { return wrap_add(a, b); });
      return;
    case ROp::kProd:
      map2(dst, src, count, [](T a, T b) { return wrap_mul(a, b); });
      return;
    case ROp::kMin:
      map2(dst, src, count, [](T a, T b) { return b < a ? b : a; });
      return;
    case ROp::kMax:
      map2(dst, src, count, [](T a, T b) { return b > a ? b : a; });
      return;
  }
  XHC_CHECK(false, "unknown reduction op");
}

template <template <typename> class Fn>
void dispatch_dtype(void* dst, const void* src, std::size_t count, DType dtype,
                    ROp op) {
  switch (dtype) {
    case DType::kU8:
      Fn<std::uint8_t>()(static_cast<std::uint8_t*>(dst),
                         static_cast<const std::uint8_t*>(src), count, op);
      return;
    case DType::kI32:
      Fn<std::int32_t>()(static_cast<std::int32_t*>(dst),
                         static_cast<const std::int32_t*>(src), count, op);
      return;
    case DType::kI64:
      Fn<std::int64_t>()(static_cast<std::int64_t*>(dst),
                         static_cast<const std::int64_t*>(src), count, op);
      return;
    case DType::kF32:
      Fn<float>()(static_cast<float*>(dst), static_cast<const float*>(src),
                  count, op);
      return;
    case DType::kF64:
      Fn<double>()(static_cast<double*>(dst), static_cast<const double*>(src),
                   count, op);
      return;
  }
  XHC_CHECK(false, "unknown dtype");
}

template <typename T>
struct FastFn {
  void operator()(T* dst, const T* src, std::size_t count, ROp op) const {
    reduce_typed(dst, src, count, op);
  }
};

template <typename T>
struct ScalarFn {
  void operator()(T* dst, const T* src, std::size_t count, ROp op) const {
    reduce_typed_scalar(dst, src, count, op);
  }
};

}  // namespace

void reduce_apply(void* dst, const void* src, std::size_t count, DType dtype,
                  ROp op) {
  dispatch_dtype<FastFn>(dst, src, count, dtype, op);
}

void reduce_apply_scalar(void* dst, const void* src, std::size_t count,
                         DType dtype, ROp op) {
  dispatch_dtype<ScalarFn>(dst, src, count, dtype, op);
}

}  // namespace xhc::mach
