// Shared-memory control flag (paper §III-E).
//
// Flags follow the single-writer / multiple-readers paradigm: exactly one
// owner process stores to a flag, any number of peers read it. Stores use
// release semantics, loads acquire semantics; no atomic RMW is needed on the
// single-writer path. `fetch_add` exists only for the atomics-based baselines
// and the paper's Fig. 4 experiment.
//
// Flags are ordinary fields inside shared control blocks; their cache-line
// placement is part of the algorithm design (Fig. 10) and is controlled by
// the enclosing struct layout, not by this type.
#pragma once

#include <atomic>
#include <cstdint>

namespace xhc::mach {

/// A 64-bit single-writer control word. Non-copyable: its address is its
/// identity (the simulator keys line state and publish history off it).
struct Flag {
  std::atomic<std::uint64_t> v{0};

  Flag() = default;
  Flag(const Flag&) = delete;
  Flag& operator=(const Flag&) = delete;
};

static_assert(sizeof(Flag) == 8, "Flag must stay one word");

}  // namespace xhc::mach
