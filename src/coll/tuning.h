// Runtime-tunable parameters of the collective components — the equivalent
// of OpenMPI's MCA parameter mechanism the paper uses to configure XHC
// (chunk sizes per level, CICO threshold, hierarchy sensitivity, ...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "smsc/mechanism.h"

namespace xhc::coll {

/// Layout of the leader→members progress flags (paper Fig. 10).
enum class FlagLayout {
  kSingle,             ///< one shared flag per group (XHC default)
  kMultiSharedLine,    ///< one flag per member, all in one cache line
  kMultiSeparateLines  ///< one flag per member, one cache line each
};

/// Synchronization style (paper §III-E, Fig. 4).
enum class SyncMethod {
  kSingleWriter,   ///< single-writer flags, no atomic RMW (XHC default)
  kAtomicFetchAdd  ///< atomic fetch-add counters (the sm baseline's style)
};

const char* to_string(FlagLayout l);
const char* to_string(SyncMethod s);

struct Tuning;

/// MCA-style parameter assignment, the configuration path the paper drives
/// through OpenMPI's `--mca` flags. Applies one `key=value` pair (e.g.
/// "xhc_fault=attach,rank=1", "xhc_fault_seed=42") to `t`; throws
/// util::Error on unknown keys or malformed values.
void apply_param(Tuning& t, std::string_view assignment);

struct Tuning {
  /// Hierarchy sensitivity: "flat", "numa", "socket", "numa+socket",
  /// "l3+numa+socket" (paper §III-A).
  std::string sensitivity = "numa+socket";

  /// Messages at or below this size use the copy-in-copy-out path
  /// (paper §III-D; default 1 KB).
  std::size_t cico_threshold = 1024;

  /// Pipeline chunk size per hierarchy level, innermost first; the last
  /// entry repeats for deeper levels (paper §III-B).
  std::vector<std::size_t> chunk_bytes = {16 * 1024};

  /// Single-copy mechanism and registration caching (paper §III-C).
  smsc::Mechanism mechanism = smsc::Mechanism::kXpmem;
  bool reg_cache = true;
  /// Registration-cache capacity (mappings per endpoint); least-recently
  /// used mappings are evicted beyond it. The default is far above any
  /// communicator's working set, so eviction only engages when a test or
  /// deployment tightens it.
  std::size_t reg_cache_entries = 1024;

  /// Experiment variants.
  FlagLayout flag_layout = FlagLayout::kSingle;
  SyncMethod sync = SyncMethod::kSingleWriter;

  /// pt2pt layer (tuned baseline): eager/rendezvous switchover.
  std::size_t eager_threshold = 4096;

  /// Allreduce: minimum number of bytes a member must take on before
  /// another member joins the intra-group reduction (paper §IV-B, step 2a).
  std::size_t min_reduce_bytes = 256;

  /// CICO shared-segment size per rank.
  std::size_t cico_segment_bytes = 256 * 1024;

  /// Observability master switch (DESIGN.md § Observability): when false
  /// (default), components ignore any attached obs::Observer and span /
  /// counter sites cost one predictable branch — benchmark numbers are
  /// unaffected. When true, an attached Observer collects spans + metrics.
  bool trace = false;

  /// Latency-histogram switch (DESIGN.md § Observatory): when true (and
  /// trace is on, so an Observer is attached), wait sites, chunk loops and
  /// whole ops additionally record into the Observer's per-rank histogram
  /// set. Off by default; disabled sites cost one null check.
  bool hist = false;

  /// Fault-injection plan (DESIGN.md § Fault injection & degradation),
  /// parsed by fault::Plan::parse. Empty (default) disables injection
  /// entirely — components hold no injector and fault sites cost one
  /// pointer test.
  std::string faults;
  /// Seed of the per-rank fault decision streams.
  std::uint64_t fault_seed = 1;

  std::size_t chunk_for_level(int level) const noexcept {
    if (chunk_bytes.empty()) return 16 * 1024;
    const std::size_t i = static_cast<std::size_t>(level);
    return i < chunk_bytes.size() ? chunk_bytes[i] : chunk_bytes.back();
  }
};

}  // namespace xhc::coll
