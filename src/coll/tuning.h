// Runtime-tunable parameters of the collective components — the equivalent
// of OpenMPI's MCA parameter mechanism the paper uses to configure XHC
// (chunk sizes per level, CICO threshold, hierarchy sensitivity, ...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "smsc/mechanism.h"

namespace xhc::coll {

/// Layout of the leader→members progress flags (paper Fig. 10).
enum class FlagLayout {
  kSingle,             ///< one shared flag per group (XHC default)
  kMultiSharedLine,    ///< one flag per member, all in one cache line
  kMultiSeparateLines  ///< one flag per member, one cache line each
};

/// Synchronization style (paper §III-E, Fig. 4).
enum class SyncMethod {
  kSingleWriter,   ///< single-writer flags, no atomic RMW (XHC default)
  kAtomicFetchAdd  ///< atomic fetch-add counters (the sm baseline's style)
};

const char* to_string(FlagLayout l);
const char* to_string(SyncMethod s);

struct Tuning;

/// MCA-style parameter assignment, the configuration path the paper drives
/// through OpenMPI's `--mca` flags. Applies one `key=value` pair (e.g.
/// "xhc_fault=attach,rank=1", "xhc_fault_seed=42") to `t`; throws
/// util::Error on unknown keys or malformed values.
void apply_param(Tuning& t, std::string_view assignment);

struct Tuning {
  /// Hierarchy sensitivity: "flat", "numa", "socket", "numa+socket",
  /// "l3+numa+socket" (paper §III-A).
  std::string sensitivity = "numa+socket";

  /// Messages at or below this size use the copy-in-copy-out path
  /// (paper §III-D; default 1 KB).
  std::size_t cico_threshold = 1024;

  /// Pipeline chunk size per hierarchy level, innermost first; the last
  /// entry repeats for deeper levels (paper §III-B).
  std::vector<std::size_t> chunk_bytes = {kDefaultChunkBytes};

  /// Single-copy mechanism and registration caching (paper §III-C).
  smsc::Mechanism mechanism = smsc::Mechanism::kXpmem;
  bool reg_cache = true;
  /// Registration-cache capacity (mappings per endpoint); least-recently
  /// used mappings are evicted beyond it. The default is far above any
  /// communicator's working set, so eviction only engages when a test or
  /// deployment tightens it.
  std::size_t reg_cache_entries = 1024;

  /// Experiment variants.
  FlagLayout flag_layout = FlagLayout::kSingle;
  SyncMethod sync = SyncMethod::kSingleWriter;

  /// pt2pt layer (tuned baseline): eager/rendezvous switchover.
  std::size_t eager_threshold = 4096;

  /// Allreduce: minimum number of bytes a member must take on before
  /// another member joins the intra-group reduction (paper §IV-B, step 2a).
  std::size_t min_reduce_bytes = 256;

  /// CICO shared-segment size per rank.
  std::size_t cico_segment_bytes = 256 * 1024;

  /// Observability master switch (DESIGN.md § Observability): when false
  /// (default), components ignore any attached obs::Observer and span /
  /// counter sites cost one predictable branch — benchmark numbers are
  /// unaffected. When true, an attached Observer collects spans + metrics.
  bool trace = false;

  /// Latency-histogram switch (DESIGN.md § Observatory): when true (and
  /// trace is on, so an Observer is attached), wait sites, chunk loops and
  /// whole ops additionally record into the Observer's per-rank histogram
  /// set. Off by default; disabled sites cost one null check.
  bool hist = false;

  /// Fault-injection plan (DESIGN.md § Fault injection & degradation),
  /// parsed by fault::Plan::parse. Empty (default) disables injection
  /// entirely — components hold no injector and fault sites cost one
  /// pointer test.
  std::string faults;
  /// Seed of the per-rank fault decision streams.
  std::uint64_t fault_seed = 1;

  /// Multi-tenant identity (DESIGN.md § Multi-tenant service). `comm_name`
  /// prefixes every ledger flag name of the component's control planes
  /// ("comm3'training'/ctl0/h0/announce"), so watchdog aborts and sim
  /// deadlock reports name the owning communicator; empty (the default)
  /// keeps the historical single-communicator names byte-identical.
  /// `comm_id` is matched against `comm=` fault-clause filters; -1 (the
  /// default) matches only clauses with no comm filter.
  std::string comm_name;
  int comm_id = -1;

  /// Size-class dispatcher (DESIGN.md § Large-message paths). Allreduce
  /// payloads strictly larger than `rs_ag_threshold` bytes take the
  /// hierarchical reduce-scatter + allgather path; bcast payloads strictly
  /// larger than `stripe_threshold` take the multi-leader striped path.
  /// Everything at or below a threshold runs the unchanged latency path
  /// (paper §III-B pipeline), so below-threshold behavior is bit-identical
  /// to a build without the large paths. 0 disables a large path entirely.
  std::size_t rs_ag_threshold = 128 * 1024;
  std::size_t stripe_threshold = 128 * 1024;

  /// Pipeline chunk size per hierarchy level for the large-message paths,
  /// innermost first, last entry repeating — the large paths move far more
  /// bytes per flag, so they default to coarser chunks than `chunk_bytes`.
  std::vector<std::size_t> large_chunk_bytes = {kDefaultLargeChunkBytes};

  /// Fallback pipeline chunk size, shared by the `chunk_bytes` default
  /// initializer and the empty-vector fallback of `chunk_for_level` (one
  /// source of truth; they silently diverged once).
  static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;
  static constexpr std::size_t kDefaultLargeChunkBytes = 64 * 1024;

  std::size_t chunk_for_level(int level) const noexcept {
    return pick_chunk(chunk_bytes, level, kDefaultChunkBytes);
  }

  std::size_t large_chunk_for_level(int level) const noexcept {
    return pick_chunk(large_chunk_bytes, level, kDefaultLargeChunkBytes);
  }

 private:
  static std::size_t pick_chunk(const std::vector<std::size_t>& v, int level,
                                std::size_t fallback) noexcept {
    if (v.empty()) return fallback;
    const std::size_t i = static_cast<std::size_t>(level);
    return i < v.size() ? v[i] : v.back();
  }
};

}  // namespace xhc::coll
