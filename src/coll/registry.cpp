#include "coll/registry.h"

#include "base/shm_component.h"
#include "base/tuned.h"
#include "base/ucc.h"
#include "base/xbrc.h"
#include "core/xhc_component.h"
#include "util/check.h"

namespace xhc::coll {

std::unique_ptr<Component> make_component(std::string_view name,
                                          mach::Machine& machine,
                                          Tuning tuning) {
  if (name == "xhc") {
    return std::make_unique<core::XhcComponent>(machine, std::move(tuning),
                                                "xhc");
  }
  if (name == "xhc-flat") {
    tuning.sensitivity = "flat";
    return std::make_unique<core::XhcComponent>(machine, std::move(tuning),
                                                "xhc-flat");
  }
  if (name == "tuned") {
    return std::make_unique<base::TunedComponent>(machine, std::move(tuning));
  }
  if (name == "sm") {
    tuning.sensitivity = "flat";
    tuning.sync = SyncMethod::kAtomicFetchAdd;
    return std::make_unique<base::ShmComponent>(machine, std::move(tuning),
                                                "sm");
  }
  if (name == "ucc") {
    return std::make_unique<base::UccComponent>(machine, std::move(tuning));
  }
  if (name == "smhc") {
    // Socket-aware on multi-socket machines; [18]'s flat variant otherwise
    // (the paper does the same on Epyc-1P, §V-C).
    tuning.sensitivity =
        machine.topology().n_sockets() > 1 ? "socket" : "flat";
    tuning.sync = SyncMethod::kSingleWriter;
    return std::make_unique<base::ShmComponent>(machine, std::move(tuning),
                                                "smhc");
  }
  if (name == "smhc-flat") {
    tuning.sensitivity = "flat";
    tuning.sync = SyncMethod::kSingleWriter;
    return std::make_unique<base::ShmComponent>(machine, std::move(tuning),
                                                "smhc-flat");
  }
  if (name == "xbrc") {
    return std::make_unique<base::XbrcComponent>(machine, std::move(tuning));
  }
  XHC_REQUIRE(false, "unknown component '", std::string(name), "'");
  return nullptr;
}

std::vector<std::string_view> component_names() {
  return {"xhc", "xhc-flat", "tuned", "sm", "ucc", "smhc", "smhc-flat",
          "xbrc"};
}

std::vector<std::string_view> bcast_component_names() {
  return {"xhc", "xhc-flat", "tuned", "sm", "ucc", "smhc"};
}

std::vector<std::string_view> allreduce_component_names() {
  return {"xhc", "xhc-flat", "tuned", "sm", "ucc", "xbrc"};
}

}  // namespace xhc::coll
