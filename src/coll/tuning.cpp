#include "coll/tuning.h"

#include <cstdlib>

#include "fault/fault.h"
#include "util/check.h"

namespace xhc::coll {

const char* to_string(FlagLayout l) {
  switch (l) {
    case FlagLayout::kSingle:
      return "single";
    case FlagLayout::kMultiSharedLine:
      return "shared";
    case FlagLayout::kMultiSeparateLines:
      return "separated";
  }
  return "?";
}

const char* to_string(SyncMethod s) {
  switch (s) {
    case SyncMethod::kSingleWriter:
      return "single-writer";
    case SyncMethod::kAtomicFetchAdd:
      return "atomics";
  }
  return "?";
}

namespace {

std::size_t parse_bytes(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  XHC_CHECK(end != nullptr && *end == '\0' && !value.empty(), key,
            ": bad byte count '", value, "'");
  return static_cast<std::size_t>(v);
}

}  // namespace

void apply_param(Tuning& t, std::string_view assignment) {
  const auto eq = assignment.find('=');
  XHC_CHECK(eq != std::string_view::npos && eq > 0,
            "tuning parameter must be key=value, got '", assignment, "'");
  const std::string key(assignment.substr(0, eq));
  const std::string value(assignment.substr(eq + 1));
  if (key == "xhc_fault") {
    // Validate eagerly so a bad spec fails at configuration time, not at
    // communicator construction.
    (void)fault::Plan::parse(value);
    t.faults = value;
  } else if (key == "xhc_fault_seed") {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    XHC_CHECK(end != nullptr && *end == '\0' && !value.empty(),
              "xhc_fault_seed: bad integer '", value, "'");
    t.fault_seed = static_cast<std::uint64_t>(v);
  } else if (key == "xhc_hist") {
    XHC_CHECK(value == "0" || value == "1", "xhc_hist: expected 0 or 1, got '",
              value, "'");
    t.hist = value == "1";
  } else if (key == "xhc_reg_cache_entries") {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    XHC_CHECK(end != nullptr && *end == '\0' && !value.empty() && v > 0,
              "xhc_reg_cache_entries: bad capacity '", value, "'");
    t.reg_cache_entries = static_cast<std::size_t>(v);
  } else if (key == "xhc_comm_name") {
    t.comm_name = value;
  } else if (key == "xhc_comm_id") {
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    XHC_CHECK(end != nullptr && *end == '\0' && !value.empty() && v >= -1,
              "xhc_comm_id: bad id '", value, "'");
    t.comm_id = static_cast<int>(v);
  } else if (key == "xhc_rs_ag_threshold") {
    t.rs_ag_threshold = parse_bytes(key, value);
  } else if (key == "xhc_stripe_threshold") {
    t.stripe_threshold = parse_bytes(key, value);
  } else if (key == "xhc_large_chunk_bytes") {
    // Comma-separated per-level list, innermost first, e.g. "65536,262144".
    std::vector<std::size_t> chunks;
    std::size_t pos = 0;
    while (pos <= value.size()) {
      const std::size_t comma = value.find(',', pos);
      const std::string part =
          value.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const std::size_t c = parse_bytes(key, part);
      XHC_CHECK(c > 0, "xhc_large_chunk_bytes: chunk must be nonzero");
      chunks.push_back(c);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    t.large_chunk_bytes = std::move(chunks);
  } else {
    XHC_CHECK(false, "unknown tuning parameter '", key, "'");
  }
}

}  // namespace xhc::coll
