#include "coll/tuning.h"

namespace xhc::coll {

const char* to_string(FlagLayout l) {
  switch (l) {
    case FlagLayout::kSingle:
      return "single";
    case FlagLayout::kMultiSharedLine:
      return "shared";
    case FlagLayout::kMultiSeparateLines:
      return "separated";
  }
  return "?";
}

const char* to_string(SyncMethod s) {
  switch (s) {
    case SyncMethod::kSingleWriter:
      return "single-writer";
    case SyncMethod::kAtomicFetchAdd:
      return "atomics";
  }
  return "?";
}

}  // namespace xhc::coll
