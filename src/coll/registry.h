// Component registry — constructs any collective framework by name, the way
// OpenMPI's MCA selects coll components (paper §II-A, §V-C).
//
// Names:
//   "xhc"        XHC, numa+socket-aware hierarchy (XHC-tree in the paper)
//   "xhc-flat"   XHC with a flat tree
//   "tuned"      pt2pt-based trees/rings (OpenMPI default)
//   "sm"         shared-memory CICO, atomic fetch-add sync
//   "ucc"        UCC model: socket-level static trees, XPMEM
//   "smhc"       shared-memory hierarchical collectives [18], socket-aware
//   "smhc-flat"  SMHC's flat variant
//   "xbrc"       XPMEM-based reduction collectives [5], flat
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "coll/component.h"

namespace xhc::coll {

std::unique_ptr<Component> make_component(std::string_view name,
                                          mach::Machine& machine,
                                          Tuning tuning = {});

/// All registry names, paper-evaluation order.
std::vector<std::string_view> component_names();

/// The subset compared in the paper's bcast figures (XBRC is
/// reduction-only) and allreduce figures.
std::vector<std::string_view> bcast_component_names();
std::vector<std::string_view> allreduce_component_names();

}  // namespace xhc::coll
