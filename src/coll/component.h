// Collective component interface — the equivalent of OpenMPI's coll
// framework (paper §II-A). One Component instance exists per communicator;
// its constructor allocates shared control state, and every rank then calls
// the collective methods concurrently from inside a Machine::run region.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "coll/tuning.h"
#include "mach/machine.h"
#include "obs/observer.h"
#include "p2p/counters.h"
#include "smsc/reg_cache.h"

namespace xhc::coll {

class Component {
 public:
  virtual ~Component() = default;

  virtual std::string_view name() const noexcept = 0;

  /// MPI_Bcast: on entry the root's `buf` holds the payload; on exit every
  /// rank's `buf` does. Must be called by all ranks collectively.
  virtual void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                     int root) = 0;

  /// MPI_Allreduce: element-wise reduction of all ranks' `sbuf` into every
  /// rank's `rbuf`. `sbuf == rbuf` (in place) is supported.
  virtual void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                         std::size_t count, mach::DType dtype,
                         mach::ROp op) = 0;

  /// MPI_Reduce: reduction into the root's `rbuf` (paper §VII lists Reduce
  /// as ongoing work; XHC and tuned provide native implementations).
  /// Deviation from MPI: `rbuf` must be a valid buffer on every rank — the
  /// hierarchical single-copy algorithm accumulates subtree partials in the
  /// leaders' receive buffers. The default implementation falls back to
  /// allreduce (correct, but moves more data than necessary).
  virtual void reduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                      std::size_t count, mach::DType dtype, mach::ROp op,
                      int root) {
    (void)root;
    allreduce(ctx, sbuf, rbuf, count, dtype, op);
  }

  /// MPI_Barrier (paper §VII). The default implementation piggybacks on a
  /// one-element allreduce; XHC provides a native flag-only gather/release.
  virtual void barrier(mach::Ctx& ctx) {
    std::uint64_t in = 1;
    std::uint64_t out = 0;
    allreduce(ctx, &in, &out, 1, mach::DType::kI64, mach::ROp::kSum);
  }

  /// Optional traffic accounting (Table II); components that move data
  /// directly record one entry per leader↔member transfer. Wrapper
  /// components forward the counter to their inner implementation.
  virtual void set_traffic_counter(p2p::TrafficCounter* counter) noexcept {
    traffic_ = counter;
  }

  /// Aggregate registration-cache statistics (XPMEM components), or nullopt.
  virtual std::optional<smsc::RegCache::Stats> reg_cache_stats() const {
    return std::nullopt;
  }

  /// Attaches a span/metrics sink. Collection is additionally gated by the
  /// component's Tuning::trace knob: instrumented components override this
  /// to drop the pointer when tracing is off, so the default configuration
  /// pays only a null check per site. Call outside parallel regions;
  /// `observer` (when kept) must outlive the component or be detached with
  /// nullptr.
  virtual void set_observer(obs::Observer* observer) noexcept {
    observer_ = observer;
  }

  Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

 protected:
  void record_traffic(int src_rank, int dst_rank) {
    if (traffic_ != nullptr) traffic_->record(src_rank, dst_rank);
  }

  obs::Observer* observer() const noexcept { return observer_; }
  /// Recorder for XHC_TRACE sites; null when collection is off.
  obs::Recorder* trace_sink() const noexcept {
    return observer_ != nullptr ? &observer_->trace() : nullptr;
  }
  /// Books `delta` against counter `c` for the calling rank (no-op when no
  /// observer is attached). Named to avoid clashing with `count` parameters.
  void book(const mach::Ctx& ctx, obs::Counter c,
            std::uint64_t delta) const noexcept {
    if (observer_ != nullptr) observer_->metrics().add(ctx.rank(), c, delta);
  }

 private:
  p2p::TrafficCounter* traffic_ = nullptr;
  obs::Observer* observer_ = nullptr;
};

}  // namespace xhc::coll
