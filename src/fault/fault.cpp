#include "fault/fault.h"

#include <cstdlib>
#include <cstdio>

#include "util/check.h"
#include "util/str.h"

namespace xhc::fault {

namespace {

/// Decorrelates per-rank streams: two ranks sharing a seed must not mirror
/// each other's decisions (golden-ratio stride, then splitmix scrambles).
constexpr std::uint64_t kRankStride = 0x9e3779b97f4a7c15ull;

struct KindName {
  Kind kind;
  const char* name;
};

constexpr KindName kKinds[] = {
    {Kind::kAttach, "attach"},       {Kind::kExpose, "expose"},
    {Kind::kRegMiss, "regmiss"},     {Kind::kShm, "shm"},
    {Kind::kStraggler, "straggler"}, {Kind::kFlagDelay, "flagdelay"},
    {Kind::kFlagDrop, "flagdrop"},
};

double parse_double(std::string_view key, const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  XHC_CHECK(end != nullptr && *end == '\0' && !s.empty(),
            "fault spec: bad number '", s, "' for ", key);
  return v;
}

long long parse_int(std::string_view key, const std::string& s) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  XHC_CHECK(end != nullptr && *end == '\0' && !s.empty(),
            "fault spec: bad integer '", s, "' for ", key);
  return v;
}

std::uint64_t parse_u64(std::string_view key, const std::string& s) {
  const long long v = parse_int(key, s);
  XHC_CHECK(v >= 0, "fault spec: ", key, " must be >= 0, got ", v);
  return static_cast<std::uint64_t>(v);
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

const char* to_string(Kind k) noexcept {
  for (const auto& kn : kKinds) {
    if (kn.kind == k) return kn.name;
  }
  return "?";
}

Plan Plan::parse(std::string_view spec) {
  Plan plan;
  for (const std::string& raw : util::split(spec, ';')) {
    // Tolerate stray separators ("a;;b", trailing ';').
    std::string clause_str;
    for (const char c : raw) {
      if (c != ' ' && c != '\t') clause_str += c;
    }
    if (clause_str.empty()) continue;

    const std::vector<std::string> fields = util::split(clause_str, ',');
    Clause c;
    bool known = false;
    for (const auto& kn : kKinds) {
      if (fields[0] == kn.name) {
        c.kind = kn.kind;
        known = true;
        break;
      }
    }
    XHC_CHECK(known, "fault spec: unknown fault kind '", fields[0], "'");

    for (std::size_t i = 1; i < fields.size(); ++i) {
      const auto eq = fields[i].find('=');
      XHC_CHECK(eq != std::string::npos && eq > 0,
                "fault spec: expected key=value, got '", fields[i], "'");
      const std::string key = fields[i].substr(0, eq);
      const std::string val = fields[i].substr(eq + 1);
      if (key == "rank") {
        c.rank = static_cast<int>(parse_int(key, val));
      } else if (key == "owner") {
        c.owner = static_cast<int>(parse_int(key, val));
      } else if (key == "level") {
        c.level = static_cast<int>(parse_int(key, val));
      } else if (key == "comm") {
        c.comm = static_cast<int>(parse_int(key, val));
        XHC_CHECK(c.comm >= 0, "fault spec: comm must be >= 0, got ", c.comm);
      } else if (key == "after") {
        c.after = parse_u64(key, val);
      } else if (key == "count") {
        c.count = parse_u64(key, val);
      } else if (key == "prob") {
        c.prob = parse_double(key, val);
        XHC_CHECK(c.prob >= 0.0 && c.prob <= 1.0,
                  "fault spec: prob must be in [0,1], got ", c.prob);
      } else if (key == "delay") {
        c.delay = parse_double(key, val);
        XHC_CHECK(c.delay >= 0.0, "fault spec: delay must be >= 0, got ",
                  c.delay);
      } else if (key == "chain") {
        c.chain = static_cast<int>(parse_int(key, val));
        XHC_CHECK(c.chain == 1 || c.chain == 2,
                  "fault spec: chain must be 1 or 2, got ", c.chain);
      } else {
        XHC_CHECK(false, "fault spec: unknown key '", key, "'");
      }
    }
    if ((c.kind == Kind::kStraggler || c.kind == Kind::kFlagDelay) &&
        c.delay == 0.0) {
      XHC_CHECK(false, "fault spec: ", fault::to_string(c.kind),
                " requires delay=<seconds>");
    }
    plan.clauses.push_back(c);
  }
  return plan;
}

std::string Plan::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(clauses.size());
  for (const Clause& c : clauses) {
    std::string s = fault::to_string(c.kind);
    if (c.rank >= 0) s += ",rank=" + std::to_string(c.rank);
    if (c.owner >= 0) s += ",owner=" + std::to_string(c.owner);
    if (c.level >= 0) s += ",level=" + std::to_string(c.level);
    if (c.comm >= 0) s += ",comm=" + std::to_string(c.comm);
    if (c.after != 0) s += ",after=" + std::to_string(c.after);
    if (c.count != std::numeric_limits<std::uint64_t>::max()) {
      s += ",count=" + std::to_string(c.count);
    }
    if (c.prob != 1.0) s += ",prob=" + fmt_double(c.prob);
    if (c.delay != 0.0) s += ",delay=" + fmt_double(c.delay);
    if (c.chain != 1) s += ",chain=" + std::to_string(c.chain);
    parts.push_back(std::move(s));
  }
  return util::join(parts, ";");
}

Injector::Injector(Plan plan, std::uint64_t seed, int n_ranks, int comm_id)
    : plan_(std::move(plan)), seed_(seed), comm_id_(comm_id) {
  XHC_REQUIRE(n_ranks > 0, "injector needs at least one rank");
  rows_.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    rows_.emplace_back(seed ^
                       (static_cast<std::uint64_t>(r) + 1) * kRankStride);
    rows_.back().st.resize(plan_.clauses.size());
  }
}

bool Injector::decide(Row& row, std::size_t ci) {
  const Clause& c = plan_.clauses[ci];
  // Tenant filter: a clause aimed at another communicator is invisible —
  // it consumes no opportunity and no rng draw, so the remaining clauses'
  // decision streams match a plan without it.
  if (c.comm >= 0 && c.comm != comm_id_) return false;
  ClauseState& st = row.st[ci];
  ++st.seen;
  if (st.seen <= c.after) return false;
  if (st.fired >= c.count) return false;
  if (c.prob < 1.0 && row.rng.next_double() >= c.prob) return false;
  ++st.fired;
  return true;
}

int Injector::attach_failure_depth(int rank, int owner) {
  Row& row = rows_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const Clause& c = plan_.clauses[i];
    if (c.kind != Kind::kAttach) continue;
    if (c.rank >= 0 && c.rank != rank) continue;
    if (c.owner >= 0 && c.owner != owner) continue;
    if (decide(row, i)) return c.chain;
  }
  return 0;
}

bool Injector::expose_fails(int rank) {
  Row& row = rows_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const Clause& c = plan_.clauses[i];
    if (c.kind != Kind::kExpose) continue;
    if (c.rank >= 0 && c.rank != rank) continue;
    if (decide(row, i)) return true;
  }
  return false;
}

bool Injector::force_reg_miss(int rank, int owner) {
  Row& row = rows_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const Clause& c = plan_.clauses[i];
    if (c.kind != Kind::kRegMiss) continue;
    if (c.rank >= 0 && c.rank != rank) continue;
    if (c.owner >= 0 && c.owner != owner) continue;
    if (decide(row, i)) return true;
  }
  return false;
}

bool Injector::shm_alloc_fails(int owner) {
  Row& row = rows_[static_cast<std::size_t>(owner)];
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const Clause& c = plan_.clauses[i];
    if (c.kind != Kind::kShm) continue;
    if (c.rank >= 0 && c.rank != owner) continue;
    if (decide(row, i)) return true;
  }
  return false;
}

double Injector::straggler_delay(int rank, int level) {
  Row& row = rows_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const Clause& c = plan_.clauses[i];
    if (c.kind != Kind::kStraggler) continue;
    if (c.rank >= 0 && c.rank != rank) continue;
    if (c.level >= 0 && c.level != level) continue;
    if (decide(row, i)) return c.delay;
  }
  return 0.0;
}

FlagAction Injector::on_publish(int rank) {
  Row& row = rows_[static_cast<std::size_t>(rank)];
  FlagAction action;
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const Clause& c = plan_.clauses[i];
    if (c.kind != Kind::kFlagDelay && c.kind != Kind::kFlagDrop) continue;
    if (c.rank >= 0 && c.rank != rank) continue;
    if (!decide(row, i)) continue;
    if (c.kind == Kind::kFlagDrop) {
      action.drop = true;
    } else {
      action.delay += c.delay;
    }
  }
  return action;
}

std::unique_ptr<Injector> make_injector(const std::string& spec,
                                        std::uint64_t seed, int n_ranks,
                                        int comm_id) {
  Plan plan = Plan::parse(spec);
  if (plan.empty()) return nullptr;
  return std::make_unique<Injector>(std::move(plan), seed, n_ranks, comm_id);
}

void* alloc_with_retry(mach::Machine& machine, Injector* injector, int owner,
                       std::size_t bytes, bool zero, int max_attempts,
                       std::uint64_t* retries) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (injector != nullptr && injector->shm_alloc_fails(owner)) {
      if (retries != nullptr) ++*retries;
      continue;
    }
    return machine.alloc(owner, bytes, 64, zero);
  }
  return nullptr;
}

}  // namespace xhc::fault
