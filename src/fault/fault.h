// Deterministic fault injection (DESIGN.md § Fault injection & degradation).
//
// A fault plan is a seed plus a list of clauses parsed from a compact spec
// string (`Tuning::faults`, `--fault=` in the benches). Each clause names a
// fault kind — failed XPMEM attach/expose, forced registration-cache miss,
// shm segment allocation failure, straggler stall, delayed/dropped flag
// publication — with optional filters (rank, owner, hierarchy level) and
// firing discipline (skip the first `after` opportunities, fire at most
// `count` times, fire with probability `prob`).
//
// Decisions are drawn from per-rank SplitMix64 streams seeded from
// (seed, rank) only, so a rank's fault schedule is a pure function of the
// plan — independent of host thread interleaving. On SimMachine the injected
// stalls advance virtual time, so chaos runs are bit-reproducible; on
// RealMachine they are real sleeps. With no plan configured components hold
// a null Injector pointer and every injection site is a single pointer test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mach/machine.h"
#include "util/cacheline.h"
#include "util/prng.h"

namespace xhc::fault {

/// What a clause injects. Keep to_string / parse in fault.cpp in sync.
enum class Kind : unsigned char {
  kAttach,     ///< xpmem_attach fails; endpoint degrades the owner's path
  kExpose,     ///< xpmem_make fails; owner retries (bounded) then proceeds
  kRegMiss,    ///< registration-cache lookup forced to miss
  kShm,        ///< shared-segment allocation fails (CICO pool, shm rings)
  kStraggler,  ///< extra latency at an operation/chunk boundary
  kFlagDelay,  ///< flag publication delayed by `delay` seconds
  kFlagDrop,   ///< flag publication silently dropped
};

const char* to_string(Kind k) noexcept;

/// One fault rule. Defaults mean "every opportunity, every rank".
struct Clause {
  Kind kind = Kind::kStraggler;
  int rank = -1;    ///< only this rank (-1: any)
  int owner = -1;   ///< attach/regmiss: only this peer's buffers (-1: any)
  int level = -1;   ///< straggler: only this hierarchy level (-1: any)
  int comm = -1;    ///< only the communicator with this id (-1: any) —
                    ///< matched against the injector's comm id so chaos
                    ///< runs can target one tenant (Tuning::comm_id)
  std::uint64_t after = 0;  ///< skip the first `after` opportunities per rank
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
                            ///< fire at most `count` times per rank
  double prob = 1.0;        ///< firing probability per opportunity
  double delay = 0.0;       ///< straggler / flagdelay: seconds
  int chain = 1;            ///< attach: degradation depth (1: next mechanism,
                            ///< 2: straight to CICO bounce)
};

/// A parsed fault plan. Spec grammar: clauses separated by ';', fields by
/// ','; the first field is the kind, the rest are key=value pairs, e.g.
///   "attach,rank=1,count=1;straggler,delay=1e-4,prob=0.25,level=0"
struct Plan {
  std::vector<Clause> clauses;

  /// Throws util::Error on unknown kinds/keys, malformed numbers, or
  /// out-of-range values. An empty/blank spec parses to an empty plan.
  static Plan parse(std::string_view spec);
  /// Canonical spec string: parse(to_string()) round-trips.
  std::string to_string() const;
  bool empty() const noexcept { return clauses.empty(); }
};

/// Decision for one flag publication.
struct FlagAction {
  bool drop = false;
  double delay = 0.0;
};

/// Draws fault decisions for every rank of one component. Query methods are
/// called from the owning rank's thread only (per-rank padded rows, no
/// atomics); construction and shm queries happen on the constructing thread
/// before the parallel region.
class Injector {
 public:
  /// `comm_id` identifies the owning communicator for `comm=` clause
  /// filters: a clause with comm>=0 fires only when comm == comm_id (and
  /// consumes no rng while filtered out, so decision streams match a plan
  /// without the clause). The default -1 (single-communicator components)
  /// matches only unfiltered clauses.
  Injector(Plan plan, std::uint64_t seed, int n_ranks, int comm_id = -1);

  /// 0: attach succeeds. 1: fail, degrade the owner to the next mechanism.
  /// 2: fail, degrade the owner straight to the CICO bounce path.
  int attach_failure_depth(int rank, int owner);
  bool expose_fails(int rank);
  bool force_reg_miss(int rank, int owner);
  /// One shm allocation attempt by `owner` fails.
  bool shm_alloc_fails(int owner);
  /// Extra seconds to stall at a (rank, level) opportunity; 0 = none.
  double straggler_delay(int rank, int level);
  FlagAction on_publish(int rank);

  const Plan& plan() const noexcept { return plan_; }
  std::uint64_t seed() const noexcept { return seed_; }
  int n_ranks() const noexcept { return static_cast<int>(rows_.size()); }
  int comm_id() const noexcept { return comm_id_; }

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

 private:
  struct ClauseState {
    std::uint64_t seen = 0;   ///< opportunities offered (post-filter)
    std::uint64_t fired = 0;  ///< faults actually injected
  };
  /// One rank's decision stream + per-clause counters; padded so rank
  /// threads never share a line.
  struct alignas(util::kCacheLine) Row {
    explicit Row(std::uint64_t s) : rng(s) {}
    util::SplitMix64 rng;
    std::vector<ClauseState> st;
  };

  /// Offers clause `ci` one opportunity on `row`; true when it fires.
  bool decide(Row& row, std::size_t ci);

  Plan plan_;
  std::uint64_t seed_;
  int comm_id_;
  std::vector<Row> rows_;
};

/// Injector from a tuning spec; null when the spec is empty (components keep
/// a null pointer and every fault site stays a single branch).
std::unique_ptr<Injector> make_injector(const std::string& spec,
                                        std::uint64_t seed, int n_ranks,
                                        int comm_id = -1);

/// Allocates `bytes` owned by `owner`, retrying up to `max_attempts` times
/// when the injector fails the attempt (modeling transient shm exhaustion).
/// Returns nullptr when every attempt failed — the caller degrades (smaller
/// segment) or raises a named error. `*retries` (optional) accumulates the
/// number of failed attempts.
void* alloc_with_retry(mach::Machine& machine, Injector* injector, int owner,
                       std::size_t bytes, bool zero = true,
                       int max_attempts = 3, std::uint64_t* retries = nullptr);

}  // namespace xhc::fault
