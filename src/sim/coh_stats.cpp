#include "sim/coh_stats.h"

#include "util/cacheline.h"

namespace xhc::sim {

const char* to_string(CohEvent e) noexcept {
  switch (e) {
    case CohEvent::kLocalHit:
      return "local_hit";
    case CohEvent::kLlcHit:
      return "llc_hit";
    case CohEvent::kSlcHit:
      return "slc_hit";
    case CohEvent::kHitm:
      return "hitm";
    case CohEvent::kSpinRefetch:
      return "spin_refetch";
    case CohEvent::kRemoteFill:
      return "remote_fill";
    case CohEvent::kInvalBroadcast:
      return "invalidation";
    case CohEvent::kOwnershipTransfer:
      return "ownership_transfer";
    case CohEvent::kRmw:
      return "rmw";
    case CohEvent::kBlockLocalLlc:
      return "block_local_llc";
    case CohEvent::kBlockSlc:
      return "block_slc";
    case CohEvent::kBlockProducerLlc:
      return "block_producer_llc";
    case CohEvent::kBlockMemory:
      return "block_memory";
    case CohEvent::kBlockInval:
      return "block_invalidation";
    case CohEvent::kCount_:
      break;
  }
  return "?";
}

CohStats::Row& CohStats::row(int core) { return per_core_[core]; }

CohLineCounters& CohStats::line(const void* addr) {
  CohLineCounters& l = lines_[util::line_of(addr)];
  if (l.addrs.size() < CohLineCounters::kMaxLineAddrs) l.addrs.insert(addr);
  return l;
}

void CohStats::on_line_read(const void* addr, int core, CohEvent kind,
                            int owner_core) {
  row(core)[static_cast<int>(kind)] += 1;
  CohLineCounters& l = line(addr);
  ++l.reads;
  switch (kind) {
    case CohEvent::kLocalHit:
      ++l.local_hits;
      break;
    case CohEvent::kLlcHit:
      ++l.llc_hits;
      break;
    case CohEvent::kSlcHit:
      ++l.slc_hits;
      break;
    case CohEvent::kHitm:
      ++l.hitm;
      ++hitm_pairs_[{owner_core, core}];
      break;
    case CohEvent::kRemoteFill:
      ++l.remote_fills;
      break;
    default:
      break;
  }
}

void CohStats::on_line_write(const void* addr, int core, bool invalidated,
                             bool transfer) {
  Row& r = row(core);
  CohLineCounters& l = line(addr);
  ++l.writes;
  l.writer_cores.insert(core);
  if (l.written_addrs.size() < CohLineCounters::kMaxLineAddrs) {
    l.written_addrs.insert(addr);
  }
  if (invalidated) {
    r[static_cast<int>(CohEvent::kInvalBroadcast)] += 1;
    ++l.invalidations;
  }
  if (transfer) {
    r[static_cast<int>(CohEvent::kOwnershipTransfer)] += 1;
    ++l.transfers;
  }
}

void CohStats::on_line_rmw(const void* addr, int core, bool transfer) {
  Row& r = row(core);
  r[static_cast<int>(CohEvent::kRmw)] += 1;
  CohLineCounters& l = line(addr);
  ++l.rmws;
  l.writer_cores.insert(core);
  if (l.written_addrs.size() < CohLineCounters::kMaxLineAddrs) {
    l.written_addrs.insert(addr);
  }
  if (transfer) {
    r[static_cast<int>(CohEvent::kOwnershipTransfer)] += 1;
    ++l.transfers;
  }
}

void CohStats::on_spin_refetch(const void* addr, int core, int owner_core,
                               std::uint64_t n) {
  if (n == 0) return;
  row(core)[static_cast<int>(CohEvent::kSpinRefetch)] += n;
  line(addr).spin_refetches += n;
  hitm_pairs_[{owner_core, core}] += n;
}

void CohStats::on_block_read(int core, CohEvent kind) {
  row(core)[static_cast<int>(kind)] += 1;
}

void CohStats::on_block_inval(int core) {
  row(core)[static_cast<int>(CohEvent::kBlockInval)] += 1;
}

std::uint64_t CohStats::total(CohEvent e) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [core, r] : per_core_) sum += r[static_cast<int>(e)];
  return sum;
}

std::uint64_t CohStats::core_count(int core, CohEvent e) const noexcept {
  auto it = per_core_.find(core);
  return it == per_core_.end() ? 0 : it->second[static_cast<int>(e)];
}

std::array<std::uint64_t, kNumCohEvents> CohStats::publish_delta(int core) {
  std::array<std::uint64_t, kNumCohEvents> delta{};
  auto it = per_core_.find(core);
  if (it == per_core_.end()) return delta;
  Row& pub = published_[core];
  for (int e = 0; e < kNumCohEvents; ++e) {
    delta[static_cast<std::size_t>(e)] = it->second[static_cast<std::size_t>(e)] -
                                         pub[static_cast<std::size_t>(e)];
    pub[static_cast<std::size_t>(e)] = it->second[static_cast<std::size_t>(e)];
  }
  return delta;
}

std::set<int> CohStats::active_cores() const {
  std::set<int> cores;
  for (const auto& [core, r] : per_core_) cores.insert(core);
  return cores;
}

void CohStats::reset() {
  per_core_.clear();
  published_.clear();
  lines_.clear();
  hitm_pairs_.clear();
}

}  // namespace xhc::sim
