// Modeled hardware performance counters for the coherence models.
//
// The line model (control flags) and the cache model (payload buffers)
// simulate MESI-like mechanics — dirty-owner service, invalidation
// broadcasts, exclusive-ownership transfer — but historically only as
// virtual-time costs. CohStats makes every one of those transitions
// countable: per-core event counters, a per-line table keyed by cache-line
// address (the raw material for flag-name attribution via
// verify::Ledger::flag_name), and a sparse owner→reader HITM pair map.
//
// Accounting is strictly observational: the models consult `enabled()`
// before recording, never the other way around, so virtual timestamps are
// bit-identical whether tracking is on or off (ISSUE 6 acceptance).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace xhc::sim {

/// One modeled coherence transition. The line events mirror the branches of
/// LineModel::read/write/rmw; the block events mirror CacheModel's ServeKind
/// resolution and version-bump invalidations.
enum class CohEvent : int {
  // Control-flag line model.
  kLocalHit = 0,        ///< read of an unowned or self-owned line
  kLlcHit,              ///< read served by a peer copy in the reader's LLC
  kSlcHit,              ///< read served by the system-level cache (ARM)
  kHitm,                ///< read serviced by the remote dirty owner's core
  kSpinRefetch,         ///< spinner's copy invalidated by a store mid-wait
  kRemoteFill,          ///< clean remote fill (providing LLC group)
  kInvalBroadcast,      ///< store that had to invalidate sharers/SLC copy
  kOwnershipTransfer,   ///< write/RMW moved exclusive ownership off a core
  kRmw,                 ///< atomic read-modify-write issued
  // Payload-buffer cache model.
  kBlockLocalLlc,       ///< block read served from the reader's LLC group
  kBlockSlc,            ///< block read served from the SLC
  kBlockProducerLlc,    ///< block read served from the producer's LLC group
  kBlockMemory,         ///< block read served from home NUMA memory
  kBlockInval,          ///< block write bumped the version over live copies
  kCount_  // sentinel
};

const char* to_string(CohEvent e) noexcept;

constexpr int kNumCohEvents = static_cast<int>(CohEvent::kCount_);

/// Per-line accumulation. Address sets are bounded (kMaxLineAddrs) — enough
/// to name every flag packed into one 64-byte line.
struct CohLineCounters {
  static constexpr std::size_t kMaxLineAddrs = 16;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmws = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t slc_hits = 0;
  std::uint64_t hitm = 0;            ///< dirty-owner services
  std::uint64_t spin_refetches = 0;  ///< mid-wait invalidation re-fetches
  std::uint64_t remote_fills = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t transfers = 0;       ///< ownership transfers
  std::set<int> writer_cores;
  std::set<const void*> written_addrs;  ///< distinct flag addrs stored to
  std::set<const void*> addrs;          ///< all distinct addrs touched
};

/// The observatory's accumulator. One instance per SimMachine; both models
/// hold a pointer and record into it only while `enabled()`.
class CohStats {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  // --- line-model hooks ----------------------------------------------------
  /// A read classified as `kind` (kLocalHit/kLlcHit/kSlcHit/kHitm/
  /// kRemoteFill). `owner_core` is the core that serviced a kHitm read
  /// (ignored otherwise, pass -1).
  void on_line_read(const void* addr, int core, CohEvent kind, int owner_core);
  /// A store; `invalidated` when sharer copies had to be broadcast-
  /// invalidated, `transfer` when ownership moved off `prev_owner`.
  void on_line_write(const void* addr, int core, bool invalidated,
                     bool transfer);
  /// An RMW; always acquires exclusive ownership, `transfer` when that
  /// ownership moved off another core.
  void on_line_rmw(const void* addr, int core, bool transfer);
  /// `n` modeled re-fetches by a blocked spinner on `core`: the line it was
  /// waiting on was stored to `n` extra times before its wait resumed, each
  /// store invalidating the spinner's copy. `owner_core` services them.
  void on_spin_refetch(const void* addr, int core, int owner_core,
                       std::uint64_t n);

  // --- cache-model hooks ---------------------------------------------------
  void on_block_read(int core, CohEvent kind);
  void on_block_inval(int core);

  // --- consumption ---------------------------------------------------------
  std::uint64_t total(CohEvent e) const noexcept;
  std::uint64_t core_count(int core, CohEvent e) const noexcept;
  const std::map<std::uintptr_t, CohLineCounters>& lines() const noexcept {
    return lines_;
  }
  /// (owner_core, reader_core) → HITM-class service count (HITM reads plus
  /// spin re-fetches).
  const std::map<std::pair<int, int>, std::uint64_t>& hitm_pairs()
      const noexcept {
    return hitm_pairs_;
  }

  /// Delta of every per-core counter since the previous publish_delta call
  /// for that core; advances the published watermark. Repeated publishes of
  /// an idle machine therefore add zero — the contract that keeps
  /// obs::Metrics::reset_counters and multi-sweep publishing double-count
  /// free.
  std::array<std::uint64_t, kNumCohEvents> publish_delta(int core);

  /// Cores that have recorded at least one event, in ascending order.
  std::set<int> active_cores() const;

  void reset();

 private:
  using Row = std::array<std::uint64_t, kNumCohEvents>;
  Row& row(int core);
  CohLineCounters& line(const void* addr);

  bool enabled_ = false;
  std::map<int, Row> per_core_;
  std::map<int, Row> published_;
  std::map<std::uintptr_t, CohLineCounters> lines_;
  std::map<std::pair<int, int>, std::uint64_t> hitm_pairs_;
};

}  // namespace xhc::sim
