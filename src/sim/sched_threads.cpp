// Thread-backed virtual-time scheduler (SimBackend::kThreads).
//
// One host thread per rank; the shared SchedState decides every handoff and
// this backend realizes it with per-rank condition variables under one
// mutex. Each handoff costs two kernel context switches, which is why the
// fiber backend is the default — this backend exists as the reference whose
// cross-rank interactions are real synchronized memory accesses, checkable
// under ThreadSanitizer.
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/sched_internal.h"
#include "sim/scheduler.h"
#include "util/check.h"

namespace xhc::sim {

namespace {

using detail::SchedState;
using detail::Status;

class ThreadScheduler final : public VirtualScheduler {
 public:
  ThreadScheduler(int n, double epoch) : state_(n, epoch) {
    cvs_ = std::vector<std::condition_variable>(static_cast<std::size_t>(n));
  }

  void run(const std::function<void(int)>& body) override {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(state_.n()));
    for (int r = 0; r < state_.n(); ++r) {
      threads.emplace_back([this, &body, r] { worker(body, r); });
    }
    for (auto& t : threads) t.join();
    if (first_error_) std::rethrow_exception(first_error_);
  }

  double now(int r) override {
    // The clock of a running rank is only mutated by that rank, but the
    // mutex is what publishes earlier cross-thread promotions; keeping it
    // here is what makes this backend the TSan-clean reference.
    std::unique_lock<std::mutex> lock(mu_);
    return state_.rank(r).vtime;
  }

  void advance(int r, double dt) override {
    XHC_REQUIRE(dt >= 0.0, "cannot advance time backwards (dt=", dt, ")");
    std::unique_lock<std::mutex> lock(mu_);
    state_.rank(r).vtime += dt;
    switch_if_needed(lock, r, state_.yield_point(r));
  }

  void lift(int r, double t) override {
    std::unique_lock<std::mutex> lock(mu_);
    detail::RankState& self = state_.rank(r);
    self.vtime = std::max(self.vtime, t);
    switch_if_needed(lock, r, state_.yield_point(r));
  }

  double wait_until_raw(int r, const void* channel, PredFn fn,
                        void* ctx) override {
    std::unique_lock<std::mutex> lock(mu_);
    detail::RankState& self = state_.rank(r);
    while (true) {
      if (const auto resume = fn(ctx)) {
        self.vtime = std::max(self.vtime, *resume);
        switch_if_needed(lock, r, state_.yield_point(r));
        return self.vtime;
      }
      const int next = state_.block(r, channel, fn, ctx);
      if (next == SchedState::kDeadlock) report_deadlock();
      suspend(lock, r, next);
    }
  }

  void notify(const void* channel) override {
    std::unique_lock<std::mutex> lock(mu_);
    state_.notify(channel);
  }

  void barrier(int r, double extra_cost) override {
    std::unique_lock<std::mutex> lock(mu_);
    const auto res = state_.barrier_arrive(r, extra_cost);
    if (!res.blocked) {
      switch_if_needed(lock, r, res.next);
      return;
    }
    if (res.next == SchedState::kDeadlock) report_deadlock();
    suspend(lock, r, res.next);
    // Resumed: vtime already lifted to the barrier release time.
  }

  void abort_all() override {
    std::unique_lock<std::mutex> lock(mu_);
    aborted_ = true;
    for (auto& cv : cvs_) cv.notify_all();
  }

  int n_ranks() const noexcept override { return state_.n(); }
  SimBackend backend() const noexcept override {
    return SimBackend::kThreads;
  }

  void set_channel_namer(
      std::function<std::string(const void*)> namer) override {
    state_.set_channel_namer(std::move(namer));
  }

  void set_pick_hook(PickHook hook) override {
    state_.set_pick_hook(std::move(hook));
  }

 private:
  void worker(const std::function<void(int)>& body, int r) {
    bool started = false;
    try {
      start(r);
      started = true;
      body(r);
    } catch (...) {
      record_error(std::current_exception());
      abort_all();
    }
    if (!started) return;
    try {
      finish(r);
    } catch (...) {
      // Deadlock discovered while finishing, or aborted mid-handoff: make
      // sure the parked ranks unwind too.
      record_error(std::current_exception());
      abort_all();
    }
  }

  void start(int r) {
    std::unique_lock<std::mutex> lock(mu_);
    XHC_CHECK(state_.rank(r).status == Status::kNotStarted, "rank ", r,
              " started twice");
    if (state_.attach(r)) {
      const int first = state_.begin_first();
      if (first != r) cvs_[static_cast<std::size_t>(first)].notify_one();
    }
    wait_for_token(lock, r);
  }

  void finish(int r) {
    std::unique_lock<std::mutex> lock(mu_);
    // When the run is aborting, every parked rank was already woken by
    // abort_all and is unwinding on its own; don't misreport the drained
    // ready set as a deadlock.
    if (aborted_) return;
    const int next = state_.finish(r);
    if (next == SchedState::kAllDone) return;
    if (next == SchedState::kDeadlock) report_deadlock();
    cvs_[static_cast<std::size_t>(next)].notify_one();
  }

  /// After a SchedState decision: if the token moved, wake the new runner
  /// and park until it comes back.
  void switch_if_needed(std::unique_lock<std::mutex>& lock, int r, int next) {
    if (next == r) return;
    suspend(lock, r, next);
  }

  /// Wakes `next` and parks rank r until it is Running again.
  void suspend(std::unique_lock<std::mutex>& lock, int r, int next) {
    cvs_[static_cast<std::size_t>(next)].notify_one();
    wait_for_token(lock, r);
  }

  void wait_for_token(std::unique_lock<std::mutex>& lock, int r) {
    detail::RankState& self = state_.rank(r);
    if (self.status != Status::kRunning) {
      cvs_[static_cast<std::size_t>(r)].wait(lock, [&self, this] {
        return self.status == Status::kRunning || aborted_;
      });
    }
    if (aborted_) {
      throw util::Error("simulation aborted (a rank threw an exception)");
    }
  }

  [[noreturn]] void report_deadlock() const {
    throw util::Error(state_.describe());
  }

  void record_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (!first_error_) first_error_ = std::move(e);
  }

  std::mutex mu_;
  SchedState state_;
  std::vector<std::condition_variable> cvs_;
  bool aborted_ = false;

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace

std::unique_ptr<VirtualScheduler> make_thread_scheduler(int n, double epoch) {
  return std::make_unique<ThreadScheduler>(n, epoch);
}

}  // namespace xhc::sim
