#include "sim/sim_machine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "obs/coh.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/cacheline.h"
#include "util/check.h"
#include "util/memops.h"
#include "util/prng.h"

namespace xhc::sim {

// ---------------------------------------------------------------------------
// FlagHist

void SimMachine::FlagHist::append(std::uint64_t value, double t) {
  entries.emplace_back(value, t);
  if (entries.size() > 4096) {
    // Keep the window bounded; the dropped prefix is summarized by the
    // floor watermark (waits for long-passed thresholds resume at the
    // window start, which can only over-estimate slightly).
    for (std::size_t i = 0; i < 2048; ++i) {
      floor_value = entries.front().first;
      floor_time = entries.front().second;
      entries.pop_front();
    }
  }
}

std::optional<double> SimMachine::FlagHist::crossing(std::uint64_t v) const {
  if (v == 0) return 0.0;
  if (floor_value >= v) return floor_time;
  // Values are non-decreasing (monotone counters / fetch-adds), so binary
  // search for the first entry reaching v.
  auto it = std::lower_bound(
      entries.begin(), entries.end(), v,
      [](const std::pair<std::uint64_t, double>& e, std::uint64_t val) {
        return e.first < val;
      });
  if (it == entries.end()) return std::nullopt;
  return it->second;
}

std::uint64_t SimMachine::FlagHist::value_at(double t) const {
  std::uint64_t value = floor_value;
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->second <= t) {
      value = it->first;
    } else {
      break;
    }
  }
  return value;
}

std::uint64_t SimMachine::FlagHist::last_value() const {
  return entries.empty() ? floor_value : entries.back().first;
}

// ---------------------------------------------------------------------------
// SimCtx

class SimMachine::SimCtx final : public mach::Ctx {
 public:
  SimCtx(SimMachine* m, int rank, double run_epoch)
      : m_(m),
        rank_(rank),
        core_(m->map_.core_of(rank)),
        run_epoch_(run_epoch) {}

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return m_->n_ranks(); }
  int core() const noexcept override { return core_; }

  double now() override { return m_->sched_->now(rank_) - run_epoch_; }

  void charge(double seconds) override {
    m_->sched_->advance(rank_, seconds);
  }

  void copy(void* dst, const void* src, std::size_t n) override {
    const double t = m_->sched_->now(rank_);
    const auto* src_block = m_->registry_.find(src);
    const auto* dst_block = m_->registry_.find(dst);
    const double d = m_->price_read(src_block, core_, n, t, 1.0);
    util::copy_payload(dst, src, n);
    if (dst_block != nullptr) m_->cache_.on_write(dst_block->id, core_);
    if (m_->access_ != nullptr) {
      m_->access_->on_data(rank_, src, n, /*write=*/false);
      m_->access_->on_data(rank_, dst, n, /*write=*/true);
    }
    m_->sched_->advance(rank_, d);
  }

  void reduce(void* dst, const void* src, std::size_t count,
              mach::DType dtype, mach::ROp op) override {
    const std::size_t n = count * mach::dtype_size(dtype);
    const double t = m_->sched_->now(rank_);
    const auto* src_block = m_->registry_.find(src);
    const auto* dst_block = m_->registry_.find(dst);
    // Fetch the source operand (at reduction throughput), then the
    // destination operand, which is also read-modified-written.
    const double d1 = m_->price_read(src_block, core_, n, t,
                                     m_->params_.reduce_bw_factor);
    const double d2 = m_->price_read(dst_block, core_, n, t + d1, 1.0);
    mach::reduce_apply(dst, src, count, dtype, op);
    if (dst_block != nullptr) m_->cache_.on_write(dst_block->id, core_);
    if (m_->access_ != nullptr) {
      m_->access_->on_data(rank_, src, n, /*write=*/false);
      m_->access_->on_data(rank_, dst, n, /*write=*/true);
    }
    m_->sched_->advance(rank_, d1 + d2);
  }

  void write_payload(void* dst, std::size_t n, std::uint64_t seed) override {
    util::fill_pattern(dst, n, seed);
    const auto* block = m_->registry_.find(dst);
    if (block != nullptr) m_->cache_.on_write(block->id, core_);
    if (m_->access_ != nullptr) {
      m_->access_->on_data(rank_, dst, n, /*write=*/true);
    }
    const double d = m_->params_.copy_base +
                     static_cast<double>(n) / m_->params_.intra_numa.bw;
    m_->sched_->advance(rank_, d);
  }

  void flag_store(mach::Flag& f, std::uint64_t v) override {
    const double t = m_->sched_->now(rank_);
    const double done = m_->lines_.write(&f, core_, t);
    f.v.store(v, std::memory_order_release);
    m_->flag_hist_[&f].append(v, done);
#if XHC_VERIFY_ENABLED
    // The ledger records the same publish time the model uses, so the
    // read-side cross-check compares like with like.
    m_->verify_ledger().on_store(&f, rank_, v, done);
#endif
    if (m_->access_ != nullptr) {
      m_->access_->on_flag(rank_, &f, AccessSink::FlagOp::kStore, v);
    }
    m_->sched_->notify(&f);
    m_->sched_->advance(rank_, done - t);
  }

  std::uint64_t flag_read(const mach::Flag& f) override {
    const double t = m_->sched_->now(rank_);
    const double done = m_->lines_.read(&f, core_, t);
    const std::uint64_t value = m_->flag_hist_[&f].value_at(done);
#if XHC_VERIFY_ENABLED
    m_->verify_ledger().on_observe(&f, rank_, value, done);
#endif
    if (m_->access_ != nullptr) {
      m_->access_->on_flag(rank_, &f, AccessSink::FlagOp::kRead, value);
    }
    m_->sched_->advance(rank_, done - t);
    return value;
  }

  void flag_wait_ge(const mach::Flag& f, std::uint64_t v) override {
    if (m_->access_ != nullptr) {
      m_->access_->on_flag(rank_, &f, AccessSink::FlagOp::kWaitEnter, v);
    }
    FlagHist& hist = m_->flag_hist_[&f];
    // Fast path: the value is already published — the fetch overlaps with
    // the surrounding reads (a scan over set flags exposes only part of the
    // miss latency).
    const double now = m_->sched_->now(rank_);
    if (const auto crossing = hist.crossing(v);
        crossing.has_value() && *crossing <= now) {
      const double done =
          m_->lines_.read(&f, core_, now, /*pipelined=*/true);
#if XHC_VERIFY_ENABLED
      m_->verify_ledger().on_wait_resume(&f, rank_, v, done);
#endif
      m_->sched_->advance(rank_, done - now);
      return;
    }
    // One suspension is the virtual-time analogue of a spin phase.
    ++wait_spins_;
    const bool coh = m_->coh_.enabled();
    const std::uint64_t seq0 = coh ? m_->lines_.store_seq(&f) : 0;
    const double resume = m_->sched_->wait_until(
        rank_, &f, [&hist, v]() { return hist.crossing(v); });
    if (coh) {
      // Every store that landed on the watched line while this rank was
      // blocked invalidated its spinning copy and forced a re-fetch from
      // the (dirty) owner; the final fetch is priced by the read below, the
      // earlier ones are the pure false-sharing overhead a packed layout
      // pays. Accounting only — the virtual clock is untouched.
      const std::uint64_t landed = m_->lines_.store_seq(&f) - seq0;
      if (landed > 1) {
        m_->coh_.on_spin_refetch(&f, core_, m_->lines_.owner_of(&f),
                                 landed - 1);
      }
    }
    // Pay for actually fetching the line at the resume time (the line-model
    // serializes concurrent fetchers — the fan-in effect).
    const double done = m_->lines_.read(&f, core_, resume);
#if XHC_VERIFY_ENABLED
    m_->verify_ledger().on_wait_resume(&f, rank_, v, done);
#endif
    m_->sched_->advance(rank_, done - resume);
    // Record the blocked virtual time (entry → line fetched). Pure
    // observation: no charge, so timings are unchanged whether or not a
    // histogram set is attached.
    if (obs::HistSet* h = m_->wait_hist(); h != nullptr) {
      h->record(rank_, obs::HistKind::kFlagWait, done - now);
    }
    if (obs::TimeSeries* s = m_->wait_series(); s != nullptr) {
      s->record(rank_, m_->wait_series_id(), done, done - now);
    }
  }

  std::uint64_t fetch_add(mach::Flag& f, std::uint64_t delta) override {
    const double t = m_->sched_->now(rank_);
    const double done = m_->lines_.rmw(&f, core_, t);
    FlagHist& hist = m_->flag_hist_[&f];
    const std::uint64_t prev = hist.last_value();
    const std::uint64_t next = prev + delta;
    f.v.store(next, std::memory_order_release);
    hist.append(next, done);
#if XHC_VERIFY_ENABLED
    m_->verify_ledger().on_rmw(&f, rank_, next, done);
#endif
    if (m_->access_ != nullptr) {
      m_->access_->on_flag(rank_, &f, AccessSink::FlagOp::kRmw, next);
    }
    m_->sched_->notify(&f);
    m_->sched_->advance(rank_, done - t);
    return prev;
  }

  void barrier() override {
    m_->sched_->barrier(rank_, m_->params_.barrier_cost);
  }

 private:
  SimMachine* const m_;
  const int rank_;
  const int core_;
  const double run_epoch_;
};

// ---------------------------------------------------------------------------
// SimMachine

SimMachine::SimMachine(topo::Topology topo, int n_ranks,
                       topo::MapPolicy policy)
    // Both the delegation argument and params_for only read `topo`.
    : SimMachine(topo, n_ranks, policy, params_for(topo)) {}

SimMachine::SimMachine(topo::Topology topo, int n_ranks,
                       topo::MapPolicy policy, SimParams params)
    : topo_(std::move(topo)),
      map_(topo_, n_ranks, policy),
      params_(params),
      cache_(&topo_, &params_),
      lines_(&topo_, &params_) {
  cache_.set_stats(&coh_);
  lines_.set_stats(&coh_);
  setup_ledger();
}

SimMachine::~SimMachine() = default;

void SimMachine::setup_ledger() {
  ledger_ = ResourceLedger();
  if (topo_.has_shared_llc() && params_.llc_port_bw > 0) {
    for (int l = 0; l < topo_.n_llc(); ++l) {
      ledger_.set_capacity({ResKind::kLlcPort, l}, params_.llc_port_bw);
    }
  }
  for (int n = 0; n < topo_.n_numa(); ++n) {
    ledger_.set_capacity({ResKind::kNumaChannel, n}, params_.numa_mem_bw);
  }
  for (int s = 0; s < topo_.n_sockets(); ++s) {
    ledger_.set_capacity({ResKind::kSocketFabric, s},
                         params_.socket_fabric_bw);
  }
  if (topo_.n_sockets() > 1) {
    ledger_.set_capacity({ResKind::kXSocketLink, 0}, params_.xsocket_bw);
  }
  if (params_.slc_bw > 0) {
    ledger_.set_capacity({ResKind::kSlc, 0}, params_.slc_bw);
  }
}

void* SimMachine::alloc(int owner_rank, std::size_t bytes, std::size_t align,
                        bool zero) {
  XHC_REQUIRE(owner_rank >= 0 && owner_rank < n_ranks(), "owner rank ",
              owner_rank, " out of range");
  if (align < 64) align = 64;
  const std::size_t rounded = (bytes + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  XHC_CHECK(p != nullptr, "allocation of ", bytes, " bytes failed");
  if (zero) std::memset(p, 0, rounded ? rounded : align);
  const std::uint64_t id =
      registry_.insert(p, rounded ? rounded : align, owner_rank);
  const int home_numa = topo_.core(map_.core_of(owner_rank)).numa;
  cache_.add_block(id, rounded ? rounded : align, home_numa);
  return p;
}

void SimMachine::free(void* p) {
  if (p == nullptr) return;
  const auto* block = registry_.find(p);
  if (block != nullptr) {
    cache_.remove_block(block->id);
    verify_ledger().forget_range(block->base, block->bytes);
#if XHC_VERIFY_ENABLED
    // Stale publish history on a reused address would poison the ledger
    // cross-check, so checked builds scrub it. The plain build keeps the
    // historical behavior so virtual-time output stays bit-identical.
    forget_flag_history(block->base, block->bytes);
#endif
  }
  registry_.erase(p);
  std::free(p);
}

void SimMachine::forget_flag_history(const void* base, std::size_t bytes) {
  const auto* lo = static_cast<const std::byte*>(base);
  for (auto it = flag_hist_.begin(); it != flag_hist_.end();) {
    const auto* a = reinterpret_cast<const std::byte*>(it->first);
    if (a >= lo && a < lo + bytes) {
      it = flag_hist_.erase(it);
    } else {
      ++it;
    }
  }
}

double SimMachine::price_read(const mach::AllocRegistry::Block* block,
                              int core, std::size_t n, double t,
                              double bw_divisor) {
  ServeInfo info = (block != nullptr)
                       ? cache_.on_read(block->id, core, n)
                       : cache_.local_read(core);
  const LinkCost* link = nullptr;
  ResId res[3];
  int n_res = 0;

  switch (info.kind) {
    case ServeKind::kLocalLlc:
      link = &params_.llc_local;
      break;
    case ServeKind::kSlc:
      link = &params_.slc;
      res[n_res++] = {ResKind::kSlc, 0};
      break;
    case ServeKind::kProducerLlc:
      link = &params_.path(info.distance);
      res[n_res++] = {ResKind::kLlcPort, info.src_llc};
      break;
    case ServeKind::kMemory:
      link = &params_.path(info.distance);
      res[n_res++] = {ResKind::kNumaChannel, info.src_numa};
      break;
  }

  // Path crossings share the fabric / inter-socket link.
  const topo::CorePlace& reader = topo_.core(core);
  if (info.kind != ServeKind::kLocalLlc) {
    if (info.distance == topo::Distance::kCrossSocket) {
      res[n_res++] = {ResKind::kXSocketLink, 0};
    } else if (info.distance == topo::Distance::kCrossNuma) {
      res[n_res++] = {ResKind::kSocketFabric, reader.socket};
    }
  }

  double bw = link->bw;
  for (int i = 0; i < n_res; ++i) bw = std::min(bw, ledger_.share(res[i], t));
  const double duration = params_.copy_base + link->lat +
                          static_cast<double>(n) * bw_divisor / bw;
  for (int i = 0; i < n_res; ++i) ledger_.book(res[i], t, t + duration);
  return duration;
}

bool SimMachine::coh_report(obs::CohReport* out) const {
  if (out == nullptr) return true;
  obs::CohReport report;

  report.totals.local_hits = coh_.total(CohEvent::kLocalHit);
  report.totals.llc_hits = coh_.total(CohEvent::kLlcHit);
  report.totals.slc_hits = coh_.total(CohEvent::kSlcHit);
  report.totals.hitm = coh_.total(CohEvent::kHitm);
  report.totals.spin_refetches = coh_.total(CohEvent::kSpinRefetch);
  report.totals.remote_fills = coh_.total(CohEvent::kRemoteFill);
  report.totals.invalidations = coh_.total(CohEvent::kInvalBroadcast);
  report.totals.transfers = coh_.total(CohEvent::kOwnershipTransfer);
  report.totals.rmws = coh_.total(CohEvent::kRmw);

  // Per-line rows, attributed through the verifier's flag registry. Lines
  // no registered flag covers are folded into one "(unregistered)" row:
  // raw addresses are not reproducible across processes, and the report
  // must be byte-deterministic.
  obs::CohLine anon;
  anon.name = "(unregistered)";
  bool have_anon = false;
  for (const auto& [id, c] : coh_.lines()) {
    std::vector<std::string> names;
    for (const void* a : c.addrs) {
      std::string n = verify_ledger().flag_name(a);
      if (n.empty()) continue;
      if (std::find(names.begin(), names.end(), n) == names.end()) {
        names.push_back(std::move(n));
      }
    }
    obs::CohLine l;
    l.line = id;
    l.reads = c.reads;
    l.writes = c.writes;
    l.rmws = c.rmws;
    l.local_hits = c.local_hits;
    l.llc_hits = c.llc_hits;
    l.slc_hits = c.slc_hits;
    l.hitm = c.hitm;
    l.spin_refetches = c.spin_refetches;
    l.remote_fills = c.remote_fills;
    l.invalidations = c.invalidations;
    l.transfers = c.transfers;
    l.writer_cores = static_cast<int>(c.writer_cores.size());
    l.written_flags = static_cast<int>(c.written_addrs.size());
    l.false_sharing = l.written_flags >= 2 || l.writer_cores >= 2;
    if (names.empty()) {
      anon.reads += l.reads;
      anon.writes += l.writes;
      anon.rmws += l.rmws;
      anon.local_hits += l.local_hits;
      anon.llc_hits += l.llc_hits;
      anon.slc_hits += l.slc_hits;
      anon.hitm += l.hitm;
      anon.spin_refetches += l.spin_refetches;
      anon.remote_fills += l.remote_fills;
      anon.invalidations += l.invalidations;
      anon.transfers += l.transfers;
      anon.writer_cores = std::max(anon.writer_cores, l.writer_cores);
      anon.written_flags += l.written_flags;
      have_anon = true;
      continue;
    }
    l.name = names.front();
    if (names.size() > 1) {
      l.name += " (+" + std::to_string(names.size() - 1) + ")";
    }
    report.lines.push_back(std::move(l));
  }
  if (have_anon) report.lines.push_back(std::move(anon));
  std::sort(report.lines.begin(), report.lines.end(),
            [](const obs::CohLine& a, const obs::CohLine& b) {
              if (a.activity() != b.activity()) {
                return a.activity() > b.activity();
              }
              return a.name < b.name;  // names are process-independent
            });

  // HITM matrix, cores translated to ranks (HITM services always involve
  // rank-hosting cores; -1 rows would mean a modeling bug, keep them
  // visible rather than dropping them).
  std::map<std::pair<int, int>, std::uint64_t> by_rank;
  for (const auto& [pair, count] : coh_.hitm_pairs()) {
    by_rank[{map_.rank_on(pair.first), map_.rank_on(pair.second)}] += count;
  }
  for (const auto& [pair, count] : by_rank) {
    report.hitm_pairs.push_back({pair.first, pair.second, count});
  }
  std::sort(report.hitm_pairs.begin(), report.hitm_pairs.end(),
            [](const obs::CohPair& a, const obs::CohPair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.owner_rank != b.owner_rank) {
                return a.owner_rank < b.owner_rank;
              }
              return a.reader_rank < b.reader_rank;
            });

  *out = std::move(report);
  return true;
}

void SimMachine::publish_coh_counters(obs::Metrics& m) {
  static constexpr std::pair<CohEvent, obs::Counter> kMap[] = {
      {CohEvent::kLocalHit, obs::Counter::kCohLocalHit},
      {CohEvent::kLlcHit, obs::Counter::kCohLlcHit},
      {CohEvent::kSlcHit, obs::Counter::kCohSlcHit},
      {CohEvent::kHitm, obs::Counter::kCohHitm},
      {CohEvent::kSpinRefetch, obs::Counter::kCohSpinRefetch},
      {CohEvent::kRemoteFill, obs::Counter::kCohRemoteFill},
      {CohEvent::kInvalBroadcast, obs::Counter::kCohInval},
      {CohEvent::kOwnershipTransfer, obs::Counter::kCohOwnershipTransfer},
      {CohEvent::kRmw, obs::Counter::kCohRmw},
      {CohEvent::kBlockLocalLlc, obs::Counter::kCohBlockLocalLlc},
      {CohEvent::kBlockSlc, obs::Counter::kCohBlockSlc},
      {CohEvent::kBlockProducerLlc, obs::Counter::kCohBlockProducerLlc},
      {CohEvent::kBlockMemory, obs::Counter::kCohBlockMemory},
      {CohEvent::kBlockInval, obs::Counter::kCohBlockInval},
  };
  const int n = std::min(n_ranks(), m.n_ranks());
  for (int r = 0; r < n; ++r) {
    const auto delta = coh_.publish_delta(map_.core_of(r));
    for (const auto& [event, counter] : kMap) {
      const std::uint64_t d = delta[static_cast<std::size_t>(
          static_cast<int>(event))];
      if (d != 0) m.add(r, counter, d);
    }
  }
}

mach::RunResult SimMachine::run(const std::function<void(mach::Ctx&)>& fn) {
  const int n = n_ranks();
  const double run_epoch = epoch_;
  sched_ = VirtualScheduler::create(n, run_epoch, backend_);
  // Deadlock reports name blocked channels via the verifier's flag
  // registry (flag waits use the flag's address as the channel).
  sched_->set_channel_namer(
      [this](const void* chan) { return verify_ledger().flag_name(chan); });
  if (pick_hook_) sched_->set_pick_hook(pick_hook_);

  mach::RunResult result;
  result.rank_time.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> end_time(static_cast<std::size_t>(n), run_epoch);

  std::exception_ptr error;
  try {
    // The scheduler owns the execution substrate (fibers or threads),
    // aborts the other ranks when one throws, and rethrows the
    // chronologically-first exception once everyone has unwound.
    sched_->run([&](int r) {
      SimCtx ctx(this, r, run_epoch);
      fn(ctx);
      end_time[static_cast<std::size_t>(r)] = sched_->now(r);
    });
  } catch (...) {
    error = std::current_exception();
  }

  for (int r = 0; r < n; ++r) {
    result.rank_time[static_cast<std::size_t>(r)] =
        end_time[static_cast<std::size_t>(r)] - run_epoch;
    result.max_time = std::max(result.max_time,
                               result.rank_time[static_cast<std::size_t>(r)]);
    epoch_ = std::max(epoch_, end_time[static_cast<std::size_t>(r)]);
  }
  sched_.reset();

  if (error) std::rethrow_exception(error);
  return result;
}

}  // namespace xhc::sim
