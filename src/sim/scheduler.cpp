#include "sim/scheduler.h"

#include <sstream>

#include "util/check.h"

namespace xhc::sim {

VirtualScheduler::VirtualScheduler(int n, double epoch) {
  XHC_REQUIRE(n > 0, "need at least one thread");
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto t = std::make_unique<ThreadState>();
    t->vtime = epoch;
    threads_.push_back(std::move(t));
  }
}

VirtualScheduler::~VirtualScheduler() = default;

bool VirtualScheduler::is_min_ready_locked(int r) const {
  const ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    if (t.status != Status::kReady) continue;
    if (t.vtime < self.vtime ||
        (t.vtime == self.vtime && static_cast<int>(i) < r)) {
      return false;
    }
  }
  return true;
}

int VirtualScheduler::pick_locked() const {
  int best = -1;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    if (t.status != Status::kReady) continue;
    if (best < 0 ||
        t.vtime < threads_[static_cast<std::size_t>(best)]->vtime ||
        (t.vtime == threads_[static_cast<std::size_t>(best)]->vtime &&
         static_cast<int>(i) < best)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void VirtualScheduler::promote_dirty_locked() {
  for (auto& tp : threads_) {
    ThreadState& t = *tp;
    if (t.status != Status::kBlocked || !t.dirty) continue;
    t.dirty = false;
    if (!t.pred) continue;
    if (auto resume = t.pred()) {
      t.vtime = std::max(t.vtime, *resume);
      t.status = Status::kReady;
      t.channel = nullptr;
      t.pred = nullptr;
    }
  }
}

void VirtualScheduler::report_deadlock_locked() const {
  std::ostringstream os;
  os << "virtual-time deadlock; thread states:";
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    os << " [" << i << ":";
    switch (t.status) {
      case Status::kNotStarted:
        os << "unstarted";
        break;
      case Status::kReady:
        os << "ready";
        break;
      case Status::kRunning:
        os << "running";
        break;
      case Status::kBlocked:
        os << "blocked@" << t.channel;
        break;
      case Status::kDone:
        os << "done";
        break;
    }
    os << " t=" << t.vtime << "]";
  }
  throw util::Error(os.str());
}

void VirtualScheduler::handoff_locked(std::unique_lock<std::mutex>& lock,
                                      int r, Status self_status) {
  ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  self.status = self_status;
  promote_dirty_locked();
  const int pick = pick_locked();
  if (pick < 0) {
    bool all_done = true;
    for (const auto& tp : threads_) {
      if (tp->status != Status::kDone) all_done = false;
    }
    if (all_done) {
      running_ = -1;
      return;
    }
    report_deadlock_locked();
  }
  if (pick == r) {
    self.status = Status::kRunning;
    running_ = r;
    return;
  }
  running_ = pick;
  ThreadState& next = *threads_[static_cast<std::size_t>(pick)];
  next.status = Status::kRunning;
  next.cv.notify_one();
  if (self_status == Status::kDone) return;
  self.cv.wait(lock, [&self, this] {
    return self.status == Status::kRunning || aborted_;
  });
  check_abort_locked();
}

void VirtualScheduler::start(int r) {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  XHC_CHECK(self.status == Status::kNotStarted, "thread ", r,
            " started twice");
  self.status = Status::kReady;
  // The token is granted only once every thread has attached, so the first
  // runner is deterministic regardless of host thread start order.
  bool all_attached = true;
  for (const auto& tp : threads_) {
    if (tp->status == Status::kNotStarted) all_attached = false;
  }
  if (all_attached) {
    const int pick = pick_locked();
    XHC_CHECK(pick >= 0, "no ready thread at startup");
    running_ = pick;
    ThreadState& first = *threads_[static_cast<std::size_t>(pick)];
    first.status = Status::kRunning;
    if (pick != r) first.cv.notify_one();
  }
  if (self.status != Status::kRunning) {
    self.cv.wait(lock, [&self, this] {
      return self.status == Status::kRunning || aborted_;
    });
  }
  check_abort_locked();
}

void VirtualScheduler::finish(int r) {
  std::unique_lock<std::mutex> lock(mu_);
  handoff_locked(lock, r, Status::kDone);
}

double VirtualScheduler::now(int r) {
  std::unique_lock<std::mutex> lock(mu_);
  return threads_[static_cast<std::size_t>(r)]->vtime;
}

void VirtualScheduler::advance(int r, double dt) {
  XHC_REQUIRE(dt >= 0.0, "cannot advance time backwards (dt=", dt, ")");
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  self.vtime += dt;
  promote_dirty_locked();
  if (!is_min_ready_locked(r)) {
    handoff_locked(lock, r, Status::kReady);
  }
}

void VirtualScheduler::lift(int r, double t) {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  self.vtime = std::max(self.vtime, t);
  promote_dirty_locked();
  if (!is_min_ready_locked(r)) {
    handoff_locked(lock, r, Status::kReady);
  }
}

double VirtualScheduler::wait_until(
    int r, const void* channel, std::function<std::optional<double>()> pred) {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  while (true) {
    if (auto resume = pred()) {
      self.vtime = std::max(self.vtime, *resume);
      promote_dirty_locked();
      if (!is_min_ready_locked(r)) {
        handoff_locked(lock, r, Status::kReady);
      }
      return self.vtime;
    }
    self.channel = channel;
    self.pred = pred;
    self.dirty = false;
    handoff_locked(lock, r, Status::kBlocked);
  }
}

void VirtualScheduler::notify(const void* channel) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& tp : threads_) {
    if (tp->status == Status::kBlocked && tp->channel == channel) {
      tp->dirty = true;
    }
  }
}

void VirtualScheduler::abort_all() {
  std::unique_lock<std::mutex> lock(mu_);
  aborted_ = true;
  for (auto& tp : threads_) tp->cv.notify_all();
}

void VirtualScheduler::check_abort_locked() const {
  if (aborted_) {
    throw util::Error("simulation aborted (a rank threw an exception)");
  }
}

void VirtualScheduler::barrier(int r, double extra_cost) {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadState& self = *threads_[static_cast<std::size_t>(r)];
  const std::uint64_t gen = barrier_gen_;
  barrier_max_time_ = std::max(barrier_max_time_, self.vtime);
  ++barrier_arrived_;

  int live = 0;
  for (const auto& tp : threads_) {
    if (tp->status != Status::kDone) ++live;
  }
  if (barrier_arrived_ >= live) {
    barrier_release_ = barrier_max_time_ + extra_cost;
    barrier_arrived_ = 0;
    barrier_max_time_ = 0.0;
    ++barrier_gen_;
    for (auto& tp : threads_) {
      if (tp->status == Status::kBlocked && tp->channel == &barrier_gen_) {
        tp->dirty = true;
      }
    }
    self.vtime = std::max(self.vtime, barrier_release_);
    promote_dirty_locked();
    if (!is_min_ready_locked(r)) {
      handoff_locked(lock, r, Status::kReady);
    }
    return;
  }

  const double release_snapshot_gen = static_cast<double>(gen);
  (void)release_snapshot_gen;
  self.channel = &barrier_gen_;
  self.pred = [this, gen]() -> std::optional<double> {
    if (barrier_gen_ != gen) return barrier_release_;
    return std::nullopt;
  };
  self.dirty = false;
  handoff_locked(lock, r, Status::kBlocked);
  // Resumed: vtime already lifted to barrier_release_ by the promoter.
}

}  // namespace xhc::sim
