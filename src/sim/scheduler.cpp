// Backend selection for the virtual-time scheduler. The actual engines
// live in sched_fibers.cpp / sched_threads.cpp over the shared state
// machine in sched_internal.h.
#include "sim/scheduler.h"

#include <cstdlib>
#include <string_view>

#include "util/check.h"

namespace xhc::sim {

// Defined by the backend translation units.
std::unique_ptr<VirtualScheduler> make_fiber_scheduler(int n, double epoch);
std::unique_ptr<VirtualScheduler> make_thread_scheduler(int n, double epoch);

SimBackend backend_from_env() {
  const char* raw = std::getenv("XHC_SIM_BACKEND");
  if (raw == nullptr || *raw == '\0') return SimBackend::kFiber;
  const std::string_view v(raw);
  if (v == "fiber" || v == "fibers") return SimBackend::kFiber;
  if (v == "thread" || v == "threads") return SimBackend::kThreads;
  throw util::Error(util::detail::concat(
      "XHC_SIM_BACKEND must be 'fiber' or 'threads', got '", v, "'"));
}

std::unique_ptr<VirtualScheduler> VirtualScheduler::create(int n, double epoch,
                                                           SimBackend backend) {
  XHC_REQUIRE(n > 0, "need at least one rank");
  // On sanitized builds make_fiber_scheduler itself degrades to threads.
  if (backend == SimBackend::kFiber) return make_fiber_scheduler(n, epoch);
  return make_thread_scheduler(n, epoch);
}

}  // namespace xhc::sim
