// Deterministic virtual-time scheduler.
//
// Exactly one rank executes at a time: the ready rank with the minimal
// (virtual time, rank) key. Ranks hand the token off whenever their clock
// advances past another ready rank and park when they block on a condition.
// Because the running rank is always the unique minimum, a simulation's
// event order — and therefore every virtual timestamp — is a pure function
// of the program, independent of host scheduling.
//
// Two execution backends implement the identical scheduling discipline
// (shared state machine in sched_internal.h, so virtual timestamps are
// bit-identical between them):
//
//   * kFiber (default) — every rank is a stackful fiber multiplexed onto
//     the calling host thread. A handoff is a user-space stack switch
//     (tens of ns): no mutex, no condition variables, no kernel arbitration
//     on the hot path — the host-side analogue of the paper's single-writer
//     flag philosophy. TSan builds keep this backend: every switch is
//     announced through the sanitizer fiber API, so races between simulated
//     ranks are checked on the default backend too. Only ASan builds fall
//     back to threads (create() does so silently).
//   * kThreads — one host thread per rank, handoffs via per-rank condition
//     variables under one mutex. ~two kernel context switches per handoff,
//     but every cross-rank interaction is a real synchronized memory
//     access, making this the TSan-friendly reference backend.
//
// Conditions are expressed as (channel, predicate) pairs: a blocked rank is
// re-examined only when somebody calls notify(channel); a channel→waiters
// hash map keeps that proportional to actual dependencies, and the ready
// set is an O(log n) binary min-heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace xhc::sim {

/// Host execution substrate of the virtual-time engine. Virtual timestamps
/// are identical between backends; only host-side speed differs.
enum class SimBackend {
  kFiber,    ///< all ranks on one host thread; user-space handoffs
  kThreads,  ///< one host thread per rank; condvar handoffs (TSan reference)
};

/// Backend selected by the XHC_SIM_BACKEND environment variable
/// ("fiber" | "threads"); kFiber when unset. Throws util::Error on an
/// unrecognized value.
SimBackend backend_from_env();

/// True when this build can run the fiber backend. False only under
/// AddressSanitizer, where create() silently uses threads; TSan builds run
/// fibers with sanitizer-visible (annotated) switches.
bool fiber_backend_available() noexcept;

class VirtualScheduler {
 public:
  /// Non-capturing predicate thunk: called with the context pointer given
  /// to wait_until_raw; returns the resume time when the condition holds.
  using PredFn = std::optional<double> (*)(void*);

  /// Exploration hook (src/check/): consulted at every scheduling decision
  /// with the runnable candidate ranks in ascending order (at a running
  /// rank's yield point the list includes that rank itself). Returns the
  /// rank to run next, or -1 to defer to the default minimal-(vtime, rank)
  /// policy. Null — the default — keeps the schedule bit-identical to the
  /// unhooked engine. The hook perturbs only execution (wall) order; flag
  /// visibility stays virtual-time-filtered, so hooked runs still satisfy
  /// every timestamp invariant.
  using PickHook = std::function<int(const std::vector<int>&)>;

  static std::unique_ptr<VirtualScheduler> create(int n, double epoch,
                                                  SimBackend backend);

  virtual ~VirtualScheduler() = default;

  /// Executes body(r) once for every rank r under virtual-time scheduling
  /// and returns when all ranks have finished or unwound. If any rank
  /// throws (including a deadlock report), every other rank is aborted and
  /// the chronologically-first exception is rethrown.
  virtual void run(const std::function<void(int)>& body) = 0;

  // -- rank side (callable only by rank `r` while it runs) ------------------

  /// Virtual clock of `r`.
  virtual double now(int r) = 0;
  /// Advances r's clock by `dt` and yields if another rank became minimal.
  virtual void advance(int r, double dt) = 0;
  /// Raises r's clock to at least `t` (no-op if already past) and yields.
  virtual void lift(int r, double t) = 0;

  /// Blocks `r` until `pred()` returns an engaged resume time. `pred` is
  /// evaluated only while `r` is the scheduled rank, and re-examined only
  /// after a notify(channel). Returns r's clock after resumption (max of
  /// its previous clock and the predicate's resume time). The predicate is
  /// captured by reference — no allocation — which is safe because the
  /// caller's frame stays live for the whole (possibly suspended) call.
  template <typename Pred>
  double wait_until(int r, const void* channel, Pred&& pred) {
    using P = std::remove_reference_t<Pred>;
    return wait_until_raw(
        r, channel,
        [](void* p) -> std::optional<double> {
          return (*static_cast<P*>(p))();
        },
        const_cast<std::remove_const_t<P>*>(std::addressof(pred)));
  }
  virtual double wait_until_raw(int r, const void* channel, PredFn fn,
                                void* ctx) = 0;

  /// Marks every rank blocked on `channel` for predicate re-evaluation.
  /// Call after mutating the state the predicates inspect.
  virtual void notify(const void* channel) = 0;

  /// Full barrier over all live ranks; everyone resumes at
  /// (max arrival time + extra_cost).
  virtual void barrier(int r, double extra_cost) = 0;

  /// Aborts the simulation: wakes every parked rank and makes all further
  /// scheduler calls throw, so the remaining ranks unwind instead of
  /// waiting forever on flags that will never be stored.
  virtual void abort_all() = 0;

  /// Installs a channel→name mapping used by the deadlock report, so a
  /// blocked rank is described as blocked@'ctl0/h0.announce' instead of a
  /// raw address. Empty result falls back to the address. Call before run().
  virtual void set_channel_namer(
      std::function<std::string(const void*)> namer) = 0;

  /// Installs the exploration pick hook (see PickHook). Call before run().
  virtual void set_pick_hook(PickHook hook) = 0;

  // -- observers ------------------------------------------------------------
  virtual int n_ranks() const noexcept = 0;
  virtual SimBackend backend() const noexcept = 0;
};

}  // namespace xhc::sim
