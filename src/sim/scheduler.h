// Deterministic virtual-time scheduler.
//
// Ranks execute on real host threads, but exactly one thread runs at a time:
// the ready thread with the minimal (virtual time, rank) key. Threads hand
// the token off whenever their clock advances past another ready thread and
// park when they block on a condition. Because the running thread is always
// the unique minimum and all state transitions happen under one mutex, a
// simulation's event order — and therefore every virtual timestamp — is a
// pure function of the program, independent of host scheduling.
//
// Conditions are expressed as (channel, predicate) pairs: a blocked thread
// is re-examined only when somebody calls notify(channel), keeping the
// wake-up work proportional to actual dependencies.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace xhc::sim {

class VirtualScheduler {
 public:
  /// `n` worker threads; `epoch` is the starting virtual time of this run.
  VirtualScheduler(int n, double epoch);
  ~VirtualScheduler();

  // -- worker-thread side ---------------------------------------------------

  /// First call of a worker; blocks until the thread is scheduled.
  void start(int r);
  /// Final call of a worker; hands the token to the next thread.
  void finish(int r);

  /// Virtual clock of `r` (callable only by `r` while it runs).
  double now(int r);
  /// Advances r's clock by `dt` and yields if another thread became minimal.
  void advance(int r, double dt);
  /// Raises r's clock to at least `t` (no-op if already past) and yields.
  void lift(int r, double t);

  /// Blocks `r` until `pred()` returns an engaged resume time. `pred` is
  /// evaluated under the scheduler lock, only by the running thread, and
  /// only after a notify(channel). Returns r's clock after resumption
  /// (max of its previous clock and the predicate's resume time).
  double wait_until(int r, const void* channel,
                    std::function<std::optional<double>()> pred);

  /// Marks every thread blocked on `channel` for predicate re-evaluation.
  /// Call after mutating the state the predicates inspect.
  void notify(const void* channel);

  /// Full barrier over all n threads; everyone resumes at
  /// (max arrival time + extra_cost).
  void barrier(int r, double extra_cost);

  /// Aborts the simulation: wakes every parked thread and makes all further
  /// scheduler calls throw. Used when a worker throws, so the remaining
  /// threads unwind instead of waiting forever on flags that will never be
  /// stored.
  void abort_all();

  // -- observers -------------------------------------------------------------
  int n_threads() const noexcept { return static_cast<int>(threads_.size()); }

 private:
  enum class Status { kNotStarted, kReady, kRunning, kBlocked, kDone };

  struct ThreadState {
    double vtime = 0.0;
    Status status = Status::kNotStarted;
    const void* channel = nullptr;
    std::function<std::optional<double>()> pred;
    bool dirty = false;  ///< channel notified since last predicate check
    std::condition_variable cv;
  };

  // All private methods require mu_ held.
  void promote_dirty_locked();
  /// Picks and wakes the next thread. `self_status` is the state the caller
  /// transitions into; if the caller remains the minimum it keeps running.
  void handoff_locked(std::unique_lock<std::mutex>& lock, int r,
                      Status self_status);
  bool is_min_ready_locked(int r) const;
  int pick_locked() const;
  [[noreturn]] void report_deadlock_locked() const;

  void check_abort_locked() const;

  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  int running_ = -1;
  bool aborted_ = false;

  // Barrier state.
  int barrier_arrived_ = 0;
  double barrier_max_time_ = 0.0;
  double barrier_release_ = 0.0;
  std::uint64_t barrier_gen_ = 0;
};

}  // namespace xhc::sim
